// Command hbfleet drives a fleet-scale heartbeat monitoring run: many
// thousands of independent accelerated-heartbeat clusters multiplexed
// into one process as struct-of-arrays rows over sharded timer wheels
// (internal/fleet), with per-epoch rollup up an aggregation tree.
//
//	hbfleet                              # default 10k-endpoint run, summary table
//	hbfleet -clusters 16384 -members 64  # a 1,048,576-endpoint fleet
//	hbfleet -bench -label pr7-fleet-1m   # timed run, append to BENCH_mc.json
//	hbfleet -alloc-check                 # fail unless steady state is 0 allocs/epoch
//
// The run is deterministic for a given seed and topology at any -workers
// value. -alloc-check and the missed-deadline assertion back the CI smoke
// step; -bench appends a validated fleet entry to the benchmark history.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("hbfleet", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		clusters   = fs.Int("clusters", 157, "leaf heartbeat clusters")
		members    = fs.Int("members", 64, "monitored endpoints per cluster")
		shards     = fs.Int("shards", 64, "independent event loops (topology: changes results)")
		workers    = fs.Int("workers", 1, "goroutines driving shards (results identical at any value)")
		epochs     = fs.Int("epochs", 30, "rollup epochs to run after warmup")
		warmup     = fs.Int("warmup", 5, "untimed warmup epochs")
		tmin       = fs.Uint("tmin", 2, "protocol tmin, ticks")
		tmax       = fs.Uint("tmax", 16, "protocol tmax, ticks")
		loss       = fs.Float64("loss", 0, "independent per-message loss probability")
		killEvery  = fs.Int("kill-every", 64, "crash one endpoint per shard every this many ticks (0 = never)")
		seed       = fs.Int64("seed", 1, "seed for the per-shard RNG streams")
		bench      = fs.Bool("bench", false, "append a fleet entry to the benchmark history")
		out        = fs.String("out", "BENCH_mc.json", "benchmark history file (with -bench)")
		label      = fs.String("label", "fleet-run", "history entry label (with -bench)")
		allocCheck = fs.Bool("alloc-check", false, "fail unless a steady-state epoch is 0 allocs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := fleet.Config{
		Clusters:    *clusters,
		ClusterSize: *members,
		Shards:      *shards,
		Workers:     *workers,
		Core:        core.Config{TMin: core.Tick(*tmin), TMax: core.Tick(*tmax)},
		LossProb:    *loss,
		KillEvery:   sim.Time(*killEvery),
		Seed:        *seed,
	}
	f, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(w, "hbfleet:", err)
		return 1
	}
	fmt.Fprintf(w, "fleet: %d endpoints (%d clusters x %d), %d shards, %d workers\n",
		f.Endpoints(), *clusters, *members, *shards, *workers)

	if err := f.RunEpochs(*warmup); err != nil {
		fmt.Fprintln(w, "hbfleet:", err)
		return 1
	}
	before := f.Stats()
	start := time.Now()
	if err := f.RunEpochs(*epochs); err != nil {
		fmt.Fprintln(w, "hbfleet:", err)
		return 1
	}
	elapsed := time.Since(start)
	st := f.Stats()
	beatsPerSec := float64(st.Beats-before.Beats) / elapsed.Seconds()
	p50, p99, samples := f.DetectionLatency()

	fmt.Fprintf(w, "ran %d epochs (%d virtual ticks) in %v\n",
		*epochs, f.Now(), elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput: %.0f beats/s sustained\n", beatsPerSec)
	fmt.Fprintf(w, "root: %d/%d alive, %d detections (%d kills, %d false suspects)\n",
		st.Root.Alive, st.Root.Total, st.Root.Detections, st.Kills, st.FalseSuspects)
	fmt.Fprintf(w, "detection latency: p50=%d p99=%d ticks over %d samples\n", p50, p99, samples)
	fmt.Fprintf(w, "health: %d missed deadlines, %d silent links, %d stale children, %d latency overflows\n",
		st.MissedDeadlines, st.SilentLinks, st.StaleChildren, st.LatencyOverflow)

	if st.MissedDeadlines != 0 || st.SilentLinks != 0 || st.StaleChildren != 0 {
		fmt.Fprintln(w, "hbfleet: FAIL: the run violated its health invariants")
		return 1
	}

	allocsPerEpoch := int64(-1)
	if *allocCheck || *bench {
		// The per-beat hot path holds the simulator's 0-alloc standard;
		// measure a whole steady-state epoch on the already-warm fleet.
		avg := testing.AllocsPerRun(5, func() {
			if err := f.RunEpochs(1); err != nil {
				panic(err)
			}
		})
		allocsPerEpoch = int64(avg)
		fmt.Fprintf(w, "steady state: %d allocs/epoch\n", allocsPerEpoch)
		if *allocCheck && allocsPerEpoch != 0 {
			fmt.Fprintln(w, "hbfleet: FAIL: steady-state epoch allocates")
			return 1
		}
	}

	if *bench {
		entry := benchjson.Entry{
			Label:    *label,
			Date:     time.Now().UTC().Format(time.RFC3339),
			Go:       runtime.Version(),
			MaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:   runtime.NumCPU(),
			Fleet: &benchjson.FleetMetrics{
				Endpoints:        f.Endpoints(),
				Clusters:         *clusters,
				Shards:           *shards,
				Workers:          *workers,
				Epochs:           *epochs,
				BeatsPerSec:      beatsPerSec,
				P50Ticks:         int(p50),
				P99Ticks:         int(p99),
				DetectionSamples: samples,
				AllocsPerEpoch:   allocsPerEpoch,
				MissedDeadlines:  st.MissedDeadlines,
			},
		}
		if entry.NumCPU == 1 && *workers > 1 {
			entry.Note = benchjson.CoordinationOverheadNote
		}
		if err := benchjson.Append(*out, entry); err != nil {
			fmt.Fprintln(w, "hbfleet:", err)
			return 1
		}
		fmt.Fprintf(w, "appended entry %q to %s\n", *label, *out)
	}
	return 0
}
