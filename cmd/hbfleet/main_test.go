package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// The CI smoke configuration: a ~10k-endpoint fleet with fault injection
// must hold every health invariant (zero missed deadlines, no silent
// shard links, no stale aggregator children) and a 0-alloc steady state.
func TestSmoke10kEndpoints(t *testing.T) {
	var buf strings.Builder
	code := run([]string{
		"-clusters", "157", "-members", "64",
		"-epochs", "10", "-warmup", "2",
		"-kill-every", "50",
		"-alloc-check",
	}, &buf)
	out := buf.String()
	if code != 0 {
		t.Fatalf("smoke run failed (%d):\n%s", code, out)
	}
	for _, want := range []string{
		"fleet: 10048 endpoints",
		"0 missed deadlines, 0 silent links, 0 stale children",
		"steady state: 0 allocs/epoch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// -bench appends a validated fleet entry through the shared history path.
func TestBenchAppendsEntry(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	code := run([]string{
		"-clusters", "16", "-members", "8", "-shards", "4",
		"-epochs", "8", "-warmup", "2", "-kill-every", "40",
		"-bench", "-label", "test-fleet", "-out", out,
	}, &buf)
	if code != 0 {
		t.Fatalf("bench run failed (%d):\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), `appended entry "test-fleet"`) {
		t.Errorf("no append confirmation:\n%s", buf.String())
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var buf strings.Builder
	if code := run([]string{"-clusters", "0"}, &buf); code == 0 {
		t.Error("zero clusters accepted")
	}
	if code := run([]string{"-nope"}, &buf); code != 2 {
		t.Error("unknown flag not a usage error")
	}
}
