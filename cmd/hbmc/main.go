// Command hbmc regenerates the paper's Q1/Q2/Q3 surfaces with the
// vectorized Monte-Carlo ensemble engine (internal/ensemble): every
// variant of the protocol family at ensemble trial counts, with 95%
// confidence intervals from the streaming accumulators.
//
//	hbmc                         # all three sweeps at 100k trials/point
//	hbmc -q3 -trials 250000      # just the reliability surface, denser
//	hbmc -baseline               # also time the per-trial simulator path
//	hbmc -bench -label pr9-mc    # append an ensemble entry to BENCH_mc.json
//
// Results are deterministic for a given seed at any -workers value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/benchjson"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/ensemble"
	"repro/internal/netem"
	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// Canonical sweep parameters, matching cmd/hbsim's protocols so the
// ensemble tables are directly comparable with the per-trial ones.
var (
	q1TMaxes = []core.Tick{8, 16, 32, 64, 128}
	q2Times  = [][2]core.Tick{{2, 8}, {2, 16}, {4, 16}, {8, 16}, {2, 32}, {8, 32}}
	q3Losses = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5}
	q1TMin   = core.Tick(2)
	q3TMin   = core.Tick(2)
	q3TMax   = core.Tick(16)
)

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("hbmc", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		q1       = fs.Bool("q1", false, "Q1: steady-state overhead sweep")
		q2       = fs.Bool("q2", false, "Q2: detection-latency sweep")
		q3       = fs.Bool("q3", false, "Q3: false-detection reliability sweep")
		trials   = fs.Int("trials", 100000, "Monte-Carlo trials per sweep point")
		n        = fs.Int("n", 3, "members for the multi-process variants")
		workers  = fs.Int("workers", 1, "trial-block workers (results identical at any value)")
		seed     = fs.Int64("seed", 7, "campaign base seed")
		baseline = fs.Bool("baseline", false, "also time the per-trial simulator on the Q3 workload")
		bench    = fs.Bool("bench", false, "append an ensemble entry to the benchmark history")
		out      = fs.String("out", "BENCH_mc.json", "benchmark history file (with -bench)")
		label    = fs.String("label", "mc-run", "history entry label (with -bench)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !*q1 && !*q2 && !*q3 {
		*q1, *q2, *q3 = true, true, true
	}
	variants := ensemble.Variants(*n)

	totalTrials := 0
	points := 0
	start := time.Now()

	if *q1 {
		pts, err := ensemble.SweepOverhead(variants, q1TMin, q1TMaxes)
		if err != nil {
			fmt.Fprintln(w, "hbmc:", err)
			return 1
		}
		printOverhead(w, variants, pts)
		totalTrials += len(pts)
		points += len(pts)
	}
	if *q2 {
		pts, err := ensemble.SweepDetection(variants, q2Times, *trials, *seed, *workers)
		if err != nil {
			fmt.Fprintln(w, "hbmc:", err)
			return 1
		}
		printDetection(w, pts)
		totalTrials += len(pts) * *trials
		points += len(pts)
	}
	if *q3 {
		pts, err := ensemble.SweepReliability(variants, q3TMin, q3TMax, q3Losses, *trials, *seed, *workers)
		if err != nil {
			fmt.Fprintln(w, "hbmc:", err)
			return 1
		}
		printReliability(w, pts)
		totalTrials += len(pts) * *trials
		points += len(pts)
	}
	elapsed := time.Since(start)
	trialsPerSec := float64(totalTrials) / elapsed.Seconds()
	fmt.Fprintf(w, "ensemble: %d points, %d trials in %v (%.0f trials/s, %d workers, %d cpus)\n",
		points, totalTrials, elapsed.Round(time.Millisecond), trialsPerSec, *workers, runtime.NumCPU())

	var baseRate, speedup float64
	if *baseline || *bench {
		baseRate, speedup = measureBaseline(w, *seed)
	}

	if *bench {
		entry := benchjson.Entry{
			Label:    *label,
			Date:     time.Now().UTC().Format(time.RFC3339),
			Go:       runtime.Version(),
			MaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:   runtime.NumCPU(),
			Ensemble: &benchjson.EnsembleMetrics{
				TrialsPerPoint:       *trials,
				Points:               points,
				Workers:              *workers,
				TrialsPerSec:         trialsPerSec,
				BaselineTrialsPerSec: baseRate,
				Speedup:              speedup,
			},
		}
		if entry.NumCPU == 1 && *workers > 1 {
			entry.Note = benchjson.CoordinationOverheadNote
		}
		if err := benchjson.Append(*out, entry); err != nil {
			fmt.Fprintln(w, "hbmc:", err)
			return 1
		}
		fmt.Fprintf(w, "appended entry %q to %s\n", *label, *out)
	}
	return 0
}

// q3Workload is the acceptance workload the ensemble/simulator speedup is
// stated on: the Q3 binary false-detection shape.
func q3Workload(trials int, seed int64) ensemble.Config {
	return ensemble.Config{
		Protocol: ensemble.ProtocolBinary,
		Core:     core.Config{TMin: q3TMin, TMax: q3TMax},
		N:        1,
		Link:     netem.LinkConfig{LossProb: 0.1},
		Horizon:  4000,
		Trials:   trials,
		Seed:     seed,
	}
}

// measureBaseline times the per-trial simulator (scenario path) and the
// ensemble on the identical Q3 workload at workers=1 and reports both
// rates plus the per-core speedup.
func measureBaseline(w io.Writer, seed int64) (baseRate, speedup float64) {
	const ensTrials, simTrials = 8192, 192
	cfg := q3Workload(ensTrials, seed)

	start := time.Now()
	if _, err := ensemble.Run(cfg); err != nil {
		fmt.Fprintln(w, "hbmc: baseline ensemble:", err)
		return 0, 0
	}
	ensRate := float64(ensTrials) / time.Since(start).Seconds()

	start = time.Now()
	_, err := scenario.MeasureReliability(scenario.ReliabilityConfig{
		Cluster: detector.ClusterConfig{
			Protocol: cfg.Protocol, Core: cfg.Core, N: cfg.N,
		},
		LossProb: cfg.Link.LossProb,
		Horizon:  cfg.Horizon,
		Trials:   simTrials,
		Seed:     seed,
	})
	if err != nil {
		fmt.Fprintln(w, "hbmc: baseline simulator:", err)
		return 0, 0
	}
	baseRate = float64(simTrials) / time.Since(start).Seconds()
	speedup = ensRate / baseRate
	fmt.Fprintf(w, "q3 workload, 1 worker: ensemble %.0f trials/s, simulator %.0f trials/s, speedup %.1fx\n",
		ensRate, baseRate, speedup)
	return baseRate, speedup
}

func printOverhead(w io.Writer, variants []ensemble.Variant, pts []ensemble.OverheadPoint) {
	fmt.Fprintln(w, "== Q1: steady-state overhead (messages/tick), fault-free, all variants")
	fmt.Fprintf(w, "%8s %8s", "tmax", "tmin")
	for _, v := range variants {
		fmt.Fprintf(w, " %10s", v.Name)
	}
	fmt.Fprintf(w, " %10s %10s\n", "plain-det", "plain-tol")
	for ti, tmax := range q1TMaxes {
		fmt.Fprintf(w, "%8d %8d", tmax, q1TMin)
		for vi := range variants {
			p := pts[vi*len(q1TMaxes)+ti]
			fmt.Fprintf(w, " %10.4f", p.MsgsPerTick)
		}
		// Plain baselines dimensioned for the binary variant's detection
		// bound: one tolerated miss, and the same halving loss tolerance.
		cc := core.Config{TMin: q1TMin, TMax: tmax}
		bound := cc.CoordinatorDetectionBound()
		k := cc.LossTolerance()
		fmt.Fprintf(w, " %10.4f %10.4f\n",
			scenario.PlainOverhead(1, bound/2),
			scenario.PlainOverhead(1, bound/core.Tick(k+1)))
	}
	fmt.Fprintln(w)
}

func printDetection(w io.Writer, pts []ensemble.DetectionPoint) {
	fmt.Fprintln(w, "== Q2: crash detection latency (ticks), all variants")
	fmt.Fprintf(w, "%12s %5s %5s %6s %16s %6s %6s %6s %6s %7s\n",
		"variant", "tmin", "tmax", "bound", "mean ± 95% CI", "p50", "p99", "max", "missed", "trials")
	var coarse float64
	for _, p := range pts {
		fmt.Fprintf(w, "%12s %5d %5d %6d %9.2f ± %4.2f %6.0f %6.0f %6.0f %6d %7d\n",
			p.Variant, p.TMin, p.TMax, p.Bound, p.MeanDelay, p.CI95, p.P50, p.P99, p.Max, p.Missed, p.Trials)
		if p.QuantRes > coarse {
			coarse = p.QuantRes
		}
	}
	if coarse > 1 {
		fmt.Fprintf(w, "(coarsened sketch: p50/p99 are bucket lower edges, up to %.3g ticks low)\n", coarse)
	}
	fmt.Fprintln(w)
}

func printReliability(w io.Writer, pts []ensemble.ReliabilityPoint) {
	fmt.Fprintln(w, "== Q3: false-detection probability vs loss, all variants")
	fmt.Fprintf(w, "%12s %6s %10s %21s %18s %7s\n",
		"variant", "loss", "p(false)", "Wilson 95%", "mean TTF ± CI", "trials")
	for _, p := range pts {
		fmt.Fprintf(w, "%12s %6.2f %10.5f [%8.5f, %8.5f] %10.1f ± %5.1f %7d\n",
			p.Variant, p.Loss, p.PFalse, p.WilsonLo, p.WilsonHi, p.MeanTTF, p.TTFCI95, p.Trials)
	}
	fmt.Fprintln(w)
}
