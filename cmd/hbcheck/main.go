// Command hbcheck model-checks the accelerated heartbeat protocols and
// regenerates the verification tables of the analysis:
//
//	hbcheck -table 1        # binary family (Table 1)
//	hbcheck -table 2        # expanding + dynamic (Table 2)
//	hbcheck -table fixed    # corrected protocols (§6), all entries T
//	hbcheck -table all      # everything
//	hbcheck -table 2 -workers 4   # fan cells over 4 goroutines, same output
//	hbcheck -variant binary -tmin 10 -prop R2 -trace
//	hbcheck -variant binary -tmin 9 -workers 8   # parallel BFS, same verdict/trace
//	hbcheck -analyze                  # structural analysis of all six variants
//	hbcheck -analyze -variant dynamic # pre-flight analysis, then the check
//
// Exit status is 0 when every verdict matches the analysis' expectation
// (tables mode) or when the requested property holds (single mode).
// -analyze runs ta.Analyze as a pre-flight over the model(s) about to be
// explored — with no table or variant, over all six variants (original and
// corrected) — and refuses to run the BFS on a model with structural
// problems (exit 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/trace"
)

func main() {
	var (
		table     = flag.String("table", "", "regenerate a verification table: 1, 2, fixed, or all")
		variant   = flag.String("variant", "", "single check: binary, revised-binary, two-phase, static, expanding, dynamic")
		prop      = flag.String("prop", "R1", "single check: property R1, R2 or R3")
		tmin      = flag.Int("tmin", 1, "single check: tmin")
		tmax      = flag.Int("tmax", 10, "tmax (tables use the paper's 10)")
		n         = flag.Int("n", 0, "participants (default: 2 for static, 1 otherwise)")
		fixed     = flag.Bool("fixed", false, "single check: check the corrected (§6) protocol")
		showTrace = flag.Bool("trace", false, "single check: print the counter-example when the property fails")
		maxStates = flag.Int("max-states", 20_000_000, "state-space limit per check")
		workers   = flag.Int("workers", 0, "worker goroutines: parallel-BFS workers for a single check, concurrent table cells for tables (0 = GOMAXPROCS); results are identical at any count")
		analyze   = flag.Bool("analyze", false, "run the structural model analysis (ta.Analyze) before exploring; alone: analyze all six variants and exit")
	)
	flag.Parse()

	opts := mc.Options{MaxStates: *maxStates}
	switch {
	case *table != "":
		// Pre-flight every variant the tables will build before spending
		// minutes of BFS on a structurally broken model.
		if *analyze {
			if err := runAnalyzeAll(int32(*tmin), int32(*tmax)); err != nil {
				fmt.Fprintln(os.Stderr, "hbcheck:", err)
				os.Exit(1)
			}
		}
		// Tables parallelise across cells (each cell is an independent
		// model), so the per-cell BFS stays sequential.
		if err := runTables(*table, int32(*tmax), *workers, opts); err != nil {
			fmt.Fprintln(os.Stderr, "hbcheck:", err)
			os.Exit(1)
		}
	case *variant != "":
		// A single check has only one model, so the workers go to the
		// BFS itself. Counts and counter-example traces are identical
		// at any worker count.
		opts.Workers = *workers
		if opts.Workers <= 0 {
			opts.Workers = runtime.GOMAXPROCS(0)
		}
		if *analyze {
			v, err := parseVariant(*variant)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hbcheck:", err)
				os.Exit(1)
			}
			cfg := models.Config{TMin: int32(*tmin), TMax: int32(*tmax), Variant: v, N: defaultN(v, *n), Fixed: *fixed}
			if err := analyzeConfig(cfg); err != nil {
				fmt.Fprintln(os.Stderr, "hbcheck:", err)
				os.Exit(1)
			}
		}
		ok, err := runSingle(*variant, *prop, int32(*tmin), int32(*tmax), *n, *fixed, *showTrace, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbcheck:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(2)
		}
	case *analyze:
		if err := runAnalyzeAll(int32(*tmin), int32(*tmax)); err != nil {
			fmt.Fprintln(os.Stderr, "hbcheck:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(1)
	}
}

// analyzeConfig builds cfg's network and runs the structural analysis,
// printing every problem; a non-nil error means the model failed.
func analyzeConfig(cfg models.Config) error {
	m, err := models.Build(cfg)
	if err != nil {
		return err
	}
	problems := m.Net.Analyze()
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "analyze %v tmin=%d tmax=%d fixed=%v: %s\n",
			cfg.Variant, cfg.TMin, cfg.TMax, cfg.Fixed, p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("analyze: %v (tmin=%d tmax=%d fixed=%v): %d problem(s)",
			cfg.Variant, cfg.TMin, cfg.TMax, cfg.Fixed, len(problems))
	}
	return nil
}

// runAnalyzeAll analyzes all six variants, original and corrected, at the
// given constants.
func runAnalyzeAll(tmin, tmax int32) error {
	for _, v := range []models.Variant{
		models.Binary, models.RevisedBinary, models.TwoPhase,
		models.Static, models.Expanding, models.Dynamic,
	} {
		for _, fixed := range []bool{false, true} {
			cfg := models.Config{TMin: tmin, TMax: tmax, Variant: v, N: defaultN(v, 0), Fixed: fixed}
			if err := analyzeConfig(cfg); err != nil {
				return err
			}
			fmt.Printf("analyze %v tmin=%d tmax=%d fixed=%v: ok\n", v, tmin, tmax, fixed)
		}
	}
	return nil
}

func parseVariant(s string) (models.Variant, error) {
	for _, v := range []models.Variant{
		models.Binary, models.RevisedBinary, models.TwoPhase,
		models.Static, models.Expanding, models.Dynamic,
	} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func parseProp(s string) (models.Property, error) {
	switch strings.ToUpper(s) {
	case "R1":
		return models.R1, nil
	case "R2":
		return models.R2, nil
	case "R3":
		return models.R3, nil
	}
	return 0, fmt.Errorf("unknown property %q", s)
}

func defaultN(v models.Variant, n int) int {
	if n > 0 {
		return n
	}
	if v == models.Static {
		return 2
	}
	return 1
}

func runSingle(variant, prop string, tmin, tmax int32, n int, fixed, showTrace bool, opts mc.Options) (bool, error) {
	v, err := parseVariant(variant)
	if err != nil {
		return false, err
	}
	p, err := parseProp(prop)
	if err != nil {
		return false, err
	}
	cfg := models.Config{TMin: tmin, TMax: tmax, Variant: v, N: defaultN(v, n), Fixed: fixed}
	verdict, err := models.Verify(cfg, p, opts)
	if err != nil {
		return false, err
	}
	status := "satisfied"
	if !verdict.Satisfied {
		status = "VIOLATED"
	}
	fmt.Printf("%v %v tmin=%d tmax=%d fixed=%v: %s (%d states, %d transitions)\n",
		v, p, tmin, tmax, fixed, status,
		verdict.Result.StatesExplored, verdict.Result.TransitionsExplored)
	if !verdict.Satisfied && showTrace {
		title := fmt.Sprintf("counter-example for %v on the %v protocol (tmin=%d, tmax=%d)", p, v, tmin, tmax)
		if err := trace.Render(os.Stdout, title, verdict.Result.Trace); err != nil {
			return false, err
		}
	}
	return verdict.Satisfied, nil
}

func runTables(which string, tmax int32, workers int, opts mc.Options) error {
	run := func(title string, spec models.TableSpec) error {
		fmt.Println("==", title)
		cells, err := models.RunTable(spec)
		if err != nil {
			return err
		}
		fmt.Print(models.FormatTable(cells))
		return nil
	}
	tmins := models.DefaultTMins()
	table1 := models.TableSpec{
		Variants: []models.Variant{models.Binary, models.RevisedBinary, models.TwoPhase, models.Static},
		TMins:    tmins, TMax: tmax, N: 2, Opts: opts, Workers: workers,
	}
	table2 := models.TableSpec{
		Variants: []models.Variant{models.Expanding, models.Dynamic},
		TMins:    tmins, TMax: tmax, N: 1, Opts: opts, Workers: workers,
	}
	fixed1 := table1
	fixed1.Fixed = true
	fixed2 := table2
	fixed2.Fixed = true

	switch which {
	case "1":
		return run("Table 1: binary family, original protocols (expect R1: F F F T T; R2/R3: T T T T F; two-phase R1 diverges at tmin=9)", table1)
	case "2":
		return run("Table 2: expanding and dynamic, original protocols (expect R1: F F F T T; R2: T T F F F; R3: T T T T F)", table2)
	case "fixed":
		if err := run("Corrected binary family (§6, expect all T)", fixed1); err != nil {
			return err
		}
		return run("Corrected expanding and dynamic (§6, expect all T)", fixed2)
	case "all":
		for _, t := range []struct {
			title string
			spec  models.TableSpec
		}{
			{"Table 1: binary family, original protocols", table1},
			{"Table 2: expanding and dynamic, original protocols", table2},
			{"Corrected binary family (§6)", fixed1},
			{"Corrected expanding and dynamic (§6)", fixed2},
		} {
			if err := run(t.title, t.spec); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown table %q (want 1, 2, fixed or all)", which)
	}
}
