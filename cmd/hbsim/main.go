// Command hbsim runs the quantitative Monte-Carlo experiments (the
// reconstructed 1998 evaluation): steady-state overhead, crash-detection
// latency, and false-detection probability under message loss, for the
// accelerated protocols against the plain fixed-period baseline.
//
//	hbsim -exp overhead
//	hbsim -exp detection -trials 200
//	hbsim -exp reliability -trials 400
//	hbsim -exp topo -trials 70
//	hbsim -exp all
//	hbsim -faults 'crash t=200 node=1; restart t=800 node=1' -trials 50
//	hbsim -faults campaign.txt
//
// -exp topo runs the adaptive topology campaigns (rack-correlated loss,
// asymmetric WAN latency, churn storm) with piecewise conformance
// checking attached: every retune is confirmed against its envelope
// level and the run fails on any unconfirmed divergence.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: overhead, detection, reliability, topo or all")
		trials  = flag.Int("trials", 200, "Monte-Carlo trials per data point")
		seed    = flag.Int64("seed", 1, "base random seed")
		sched   = flag.String("faults", "", "fault campaign: a schedule file path or an inline schedule (see internal/faults)")
		horizon = flag.Int64("horizon", 5000, "virtual ticks per fault-campaign trial")
	)
	flag.Parse()
	faultsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "faults" {
			faultsSet = true
		}
	})

	var err error
	switch {
	case faultsSet && *sched == "":
		err = fmt.Errorf("-faults: empty schedule")
	case *sched != "":
		err = campaign(*sched, sim.Time(*horizon), *trials, *seed)
	case *exp == "overhead":
		err = overhead()
	case *exp == "detection":
		err = detection(*trials, *seed)
	case *exp == "reliability":
		err = reliability(*trials, *seed)
	case *exp == "topo":
		err = topo(*trials, *seed)
	case *exp == "all":
		if err = overhead(); err == nil {
			if err = detection(*trials, *seed); err == nil {
				err = reliability(*trials, *seed)
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbsim:", err)
		os.Exit(1)
	}
}

// campaign: replay a scripted fault schedule over a self-healing dynamic
// cluster and report survival, healing effort and fault-layer counters.
// The argument is a file path if one exists, otherwise an inline schedule.
func campaign(arg string, horizon sim.Time, trials int, seed int64) error {
	text := arg
	if b, err := os.ReadFile(arg); err == nil {
		text = string(b)
	}
	sched, err := faults.ParseSchedule(text)
	if err != nil {
		return err
	}
	res, err := scenario.RunCampaign(scenario.CampaignConfig{
		Cluster: detector.ClusterConfig{
			Protocol:    detector.ProtocolDynamic,
			Core:        core.Config{TMin: 2, TMax: 16},
			N:           3,
			AllowRejoin: true,
		},
		Schedule: sched,
		Heal: &detector.SupervisorConfig{
			CheckEvery: 8,
			Backoff:    detector.Backoff{Base: 2, Max: 32, Jitter: 0.25},
		},
		Horizon: horizon,
		Trials:  trials,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("== fault campaign: dynamic protocol (tmin=2, tmax=16, n=3) + supervisor")
	fmt.Println("   schedule:")
	fmt.Print(indent(sched.Format(), "     "))
	surv, _ := res.Survived.Value()
	fmt.Printf("   survived at t=%d:  %.3f of %d trials\n", horizon, surv, trials)
	fmt.Printf("   restarts/trial:    %s\n", res.Restarts.Describe())
	fmt.Printf("   events/trial:      %s\n", res.Events.Describe())
	fmt.Printf("   fault layer:       %+v\n", res.Faults)
	if res.ScheduleErrors > 0 {
		fmt.Printf("   WARNING: %d schedule events failed to apply (unknown node?)\n",
			res.ScheduleErrors)
	}
	return nil
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += prefix + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

func acceleratedCluster(tmin, tmax core.Tick) detector.ClusterConfig {
	return detector.ClusterConfig{
		Protocol: detector.ProtocolBinary,
		Core:     core.Config{TMin: tmin, TMax: tmax},
	}
}

// overhead: Q1 — steady-state message rate vs tmax, against the plain
// baseline dimensioned for the same worst-case detection bound and the
// same loss tolerance.
func overhead() error {
	fmt.Println("== Q1: steady-state overhead (messages/tick), fault-free, binary protocol")
	fmt.Printf("%8s %8s %14s %22s %22s\n",
		"tmax", "tmin", "accelerated", "plain @same detect", "plain @same tolerance")
	tmin := core.Tick(2)
	for _, tmax := range []core.Tick{8, 16, 32, 64, 128} {
		res, err := scenario.MeasureOverhead(scenario.OverheadConfig{
			Cluster:  acceleratedCluster(tmin, tmax),
			Duration: sim.Time(tmax) * 400,
		})
		if err != nil {
			return err
		}
		// Plain baseline dimensioned to the same detection bound with a
		// single tolerated miss: period = bound/2.
		bound := acceleratedCluster(tmin, tmax).Core.CoordinatorDetectionBound()
		plainSameDetect := scenario.PlainOverhead(1, bound/2)
		// Plain baseline matching the accelerated loss tolerance
		// (log2(tmax/tmin) consecutive losses) at the same bound:
		// period = bound/(k+1).
		k := acceleratedCluster(tmin, tmax).Core.LossTolerance()
		plainSameTol := scenario.PlainOverhead(1, bound/core.Tick(k+1))
		fmt.Printf("%8d %8d %14.4f %22.4f %22.4f\n",
			tmax, tmin, res.MessagesPerTick, plainSameDetect, plainSameTol)
	}
	fmt.Println()
	return nil
}

// detection: Q2 — crash-to-detection latency distribution vs (tmin, tmax),
// checked against the corrected bound.
func detection(trials int, seed int64) error {
	fmt.Println("== Q2: crash detection latency (ticks), binary protocol")
	fmt.Printf("%8s %8s %10s %43s\n", "tmax", "tmin", "bound", "measured crash→suspicion delay")
	for _, cfg := range []struct{ tmin, tmax core.Tick }{
		{2, 8}, {2, 16}, {4, 16}, {8, 16}, {2, 32}, {8, 32},
	} {
		cluster := acceleratedCluster(cfg.tmin, cfg.tmax)
		cluster.Link = netem.LinkConfig{MaxDelay: sim.Time(cfg.tmin) / 2}
		res, err := scenario.MeasureDetection(scenario.DetectionConfig{
			Cluster:     cluster,
			CrashAt:     sim.Time(cfg.tmax) * 10,
			CrashJitter: sim.Time(cfg.tmax),
			Horizon:     sim.Time(cfg.tmax) * 22,
			Trials:      trials,
			Seed:        seed,
		})
		if err != nil {
			return err
		}
		if res.Missed > 0 {
			return fmt.Errorf("tmax=%d: %d crashes undetected", cfg.tmax, res.Missed)
		}
		fmt.Printf("%8d %8d %10d %43s\n", cfg.tmax, cfg.tmin, res.Bound, res.Delays.Describe())
	}
	fmt.Println()
	return nil
}

// topo: D — adaptive topology campaigns under correlated failure, with
// piecewise conformance checking. Mirrors the TestTopologyCampaign* /
// TestChaosSmoke gates in internal/scenario at CLI-selectable scale.
func topo(trials int, seed int64) error {
	env := models.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}
	fmt.Println("== D: adaptive topology campaigns (envelope tmin=2, tmax 4..8), piecewise conformance")
	fmt.Printf("%22s %9s %3s %8s %10s %10s %10s %10s %12s\n",
		"scenario", "variant", "n", "retunes", "saturated", "confirmed", "degraded", "dropped", "unconfirmed")
	for _, tc := range []struct {
		variant  models.Variant
		n        int
		scenario func(int) (scenario.TopologyScenario, error)
	}{
		{models.Static, 2, scenario.RackLossScenario},
		{models.Expanding, 1, scenario.WANDelayScenario},
		{models.Dynamic, 1, scenario.ChurnStormScenario},
	} {
		sc, err := tc.scenario(tc.n)
		if err != nil {
			return err
		}
		tmin, tmax := env.Point(0)
		res, err := scenario.RunCampaign(scenario.CampaignConfig{
			Cluster: detector.ClusterConfig{
				Adaptive: &core.AdaptiveOptions{
					Envelope: core.Envelope{
						TMinLo: core.Tick(env.TMinLo), TMinHi: core.Tick(env.TMinHi),
						TMaxLo: core.Tick(env.TMaxLo), TMaxHi: core.Tick(env.TMaxHi),
					},
					Window: 2, WidenAt: 0.25, TightenAt: 0.1, HoldRounds: 4,
				},
				AllowRejoin: tc.variant == models.Dynamic,
			},
			Schedule: sc.Schedule,
			Horizon:  1200,
			Trials:   trials,
			Seed:     seed,
			Conform: &conform.CampaignCheck{
				Model:    models.Config{TMin: tmin, TMax: tmax, Variant: tc.variant, N: tc.n, Fixed: true},
				Envelope: &env,
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%22s %9s %3d %8d %10d %10d %10d %10d %12d\n",
			sc.Name, tc.variant, tc.n, res.Retunes, res.Saturations,
			res.ConfirmedDivergences, res.DegradedDivergences,
			res.Faults.DroppedLoss, len(res.Divergences))
		if len(res.Divergences) > 0 {
			if err := res.Divergences[0].Render(os.Stderr, "unconfirmed divergence"); err != nil {
				return err
			}
			return fmt.Errorf("%s: %d unconfirmed divergences", sc.Name, len(res.Divergences))
		}
	}
	fmt.Println()
	return nil
}

// reliability: Q3 — probability of a false (loss-induced) inactivation
// within a horizon, accelerated vs plain at matched message rate.
func reliability(trials int, seed int64) error {
	fmt.Println("== Q3: false-detection probability within 4000 ticks vs per-message loss rate")
	fmt.Println("   accelerated binary (tmin=2, tmax=16) vs plain (period=16, 1 miss) at equal message rate")
	fmt.Printf("%8s %14s %14s\n", "loss", "accelerated", "plain")
	horizon := sim.Time(4000)
	for _, loss := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5} {
		acc, err := scenario.MeasureReliability(scenario.ReliabilityConfig{
			Cluster:  acceleratedCluster(2, 16),
			LossProb: loss,
			Horizon:  horizon,
			Trials:   trials,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		plain, err := scenario.MeasurePlainReliability(
			scenario.PlainClusterConfig{Period: 16, MissLimit: 1, N: 1},
			loss, horizon, trials, seed)
		if err != nil {
			return err
		}
		pa, _ := acc.FalseDetection.Value()
		pp, _ := plain.FalseDetection.Value()
		fmt.Printf("%8.2f %14.3f %14.3f\n", loss, pa, pp)
	}
	fmt.Println()
	return nil
}
