// Command hblts generates the transition systems of the isolated binary
// protocol processes (Figures 1 and 2 of the analysis): the full reachable
// graph, then the weak-trace reduction the analysis applies, exported as
// text, Aldebaran (.aut) or Graphviz (.dot).
//
//	hblts -proc p0 -tmin 1 -tmax 2              # stats + transitions
//	hblts -proc p1 -format dot > p1.dot
//	hblts -proc p0 -format aut -no-reduce
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/ta"
)

func main() {
	var (
		proc     = flag.String("proc", "p0", "process to isolate: p0 or p1")
		tmin     = flag.Int("tmin", 1, "tmin (the figures use 1)")
		tmax     = flag.Int("tmax", 2, "tmax (the figures use 2)")
		format   = flag.String("format", "text", "output: text, aut or dot")
		noReduce = flag.Bool("no-reduce", false, "emit the full graph instead of the weak-trace reduction")
		hideTick = flag.Bool("hide-tick", false, "hide tick transitions before reducing")
	)
	flag.Parse()

	if err := run(*proc, int32(*tmin), int32(*tmax), *format, !*noReduce, *hideTick); err != nil {
		fmt.Fprintln(os.Stderr, "hblts:", err)
		os.Exit(1)
	}
}

func run(proc string, tmin, tmax int32, format string, reduce, hideTick bool) error {
	var (
		net *ta.Network
		err error
	)
	switch proc {
	case "p0":
		net, err = models.BuildIsolatedP0(tmin, tmax)
	case "p1":
		net, err = models.BuildIsolatedP1(tmin, tmax)
	default:
		return fmt.Errorf("unknown process %q (want p0 or p1)", proc)
	}
	if err != nil {
		return err
	}
	l, err := mc.BuildLTS(net, mc.Options{})
	if err != nil {
		return err
	}
	full := l
	if hideTick {
		l = l.Hide(func(label string) bool { return label == "tick" })
	}
	if reduce {
		l, err = l.WeakTraceReduce(mc.Options{})
		if err != nil {
			return err
		}
	}
	switch format {
	case "text":
		fmt.Printf("isolated %s (tmin=%d, tmax=%d): %d states, %d transitions",
			proc, tmin, tmax, full.NumStates, len(full.Transitions))
		if reduce {
			fmt.Printf(" -> reduced: %d states, %d transitions", l.NumStates, len(l.Transitions))
		}
		fmt.Println()
		for _, t := range l.Transitions {
			fmt.Printf("  s%d --%s--> s%d\n", t.From, t.Label, t.To)
		}
		return nil
	case "aut":
		return l.WriteAUT(os.Stdout)
	case "dot":
		return l.WriteDOT(os.Stdout, proc)
	default:
		return fmt.Errorf("unknown format %q (want text, aut or dot)", format)
	}
}
