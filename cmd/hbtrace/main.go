// Command hbtrace regenerates the counter-example figures of the analysis
// as ASCII message-sequence charts:
//
//	hbtrace            # all five figures (10a, 10b, 11, 12, 13)
//	hbtrace -fig 11    # one figure
//	hbtrace -list      # catalogue
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/ta"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("hbtrace", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		fig       = fs.String("fig", "", "figure to reproduce (10a, 10b, 11, 12, 13); empty = all")
		list      = fs.Bool("list", false, "list the figure catalogue")
		maxStates = fs.Int("max-states", 20_000_000, "state-space limit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, f := range models.Figures() {
			fmt.Fprintf(w, "%-4s %v/%v tmin=%d tmax=%d: %s\n",
				f.ID, f.Cfg.Variant, f.Prop, f.Cfg.TMin, f.Cfg.TMax, f.Title)
		}
		return 0
	}

	figures := models.Figures()
	if *fig != "" {
		f, err := models.FindFigure(*fig)
		if err != nil {
			fmt.Fprintln(w, "hbtrace:", err)
			return 1
		}
		figures = []models.Figure{f}
	}
	opts := mc.Options{MaxStates: *maxStates}
	for _, f := range figures {
		if err := render(w, f, opts); err != nil {
			fmt.Fprintln(w, "hbtrace:", err)
			return 1
		}
		fmt.Fprintln(w)
	}
	return 0
}

func render(w io.Writer, f models.Figure, opts mc.Options) error {
	steps, err := witness(f, opts)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure %s — %s", f.ID, f.Title)
	return trace.Render(w, title, steps)
}

// witness finds the figure's counter-example. Figure 10a additionally
// requires the stale-beat shape (p[0] heard from p[1] at least once), the
// feature distinguishing it from the trivial 10b decay.
func witness(f models.Figure, opts mc.Options) ([]mc.Step, error) {
	if f.ID == "10a" {
		m, err := models.Build(f.Cfg)
		if err != nil {
			return nil, err
		}
		res, err := m.VerifyGoal(func(s *ta.State) bool {
			return m.R1Violated(s) && m.EverDelivered(s, 0) && !m.MessageLost(s)
		}, opts)
		if err != nil {
			return nil, err
		}
		if !res.Reachable {
			return nil, fmt.Errorf("figure 10a: stale-beat counter-example not found")
		}
		return res.Trace, nil
	}
	v, err := f.Reproduce(opts)
	if err != nil {
		return nil, err
	}
	return v.Result.Trace, nil
}
