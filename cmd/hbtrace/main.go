// Command hbtrace regenerates the counter-example figures of the analysis
// as ASCII message-sequence charts:
//
//	hbtrace            # all five figures (10a, 10b, 11, 12, 13)
//	hbtrace -fig 11    # one figure
//	hbtrace -list      # catalogue
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/ta"
	"repro/internal/trace"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to reproduce (10a, 10b, 11, 12, 13); empty = all")
		list      = flag.Bool("list", false, "list the figure catalogue")
		maxStates = flag.Int("max-states", 20_000_000, "state-space limit")
	)
	flag.Parse()

	if *list {
		for _, f := range models.Figures() {
			fmt.Printf("%-4s %v/%v tmin=%d tmax=%d: %s\n",
				f.ID, f.Cfg.Variant, f.Prop, f.Cfg.TMin, f.Cfg.TMax, f.Title)
		}
		return
	}

	figures := models.Figures()
	if *fig != "" {
		f, err := models.FindFigure(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbtrace:", err)
			os.Exit(1)
		}
		figures = []models.Figure{f}
	}
	opts := mc.Options{MaxStates: *maxStates}
	for _, f := range figures {
		if err := render(f, opts); err != nil {
			fmt.Fprintln(os.Stderr, "hbtrace:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func render(f models.Figure, opts mc.Options) error {
	steps, err := witness(f, opts)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure %s — %s", f.ID, f.Title)
	return trace.Render(os.Stdout, title, steps)
}

// witness finds the figure's counter-example. Figure 10a additionally
// requires the stale-beat shape (p[0] heard from p[1] at least once), the
// feature distinguishing it from the trivial 10b decay.
func witness(f models.Figure, opts mc.Options) ([]mc.Step, error) {
	if f.ID == "10a" {
		m, err := models.Build(f.Cfg)
		if err != nil {
			return nil, err
		}
		res, err := m.VerifyGoal(func(s *ta.State) bool {
			return m.R1Violated(s) && m.EverDelivered(s, 0) && !m.MessageLost(s)
		}, opts)
		if err != nil {
			return nil, err
		}
		if !res.Reachable {
			return nil, fmt.Errorf("figure 10a: stale-beat counter-example not found")
		}
		return res.Trace, nil
	}
	v, err := f.Reproduce(opts)
	if err != nil {
		return nil, err
	}
	return v.Result.Trace, nil
}
