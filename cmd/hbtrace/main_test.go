package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden runs hbtrace with args and compares the output against
// testdata/<name>.golden. `go test -update` rewrites the files.
func checkGolden(t *testing.T, name string, args ...string) {
	t.Helper()
	var buf bytes.Buffer
	if code := run(args, &buf); code != 0 {
		t.Fatalf("run(%v) = %d\n%s", args, code, buf.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -update ./cmd/hbtrace` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

// The golden MSCs pin the model-checker witnesses: the BFS explores
// deterministically, so any change to these charts means the models, the
// checker's search order, or the renderer changed.
func TestGoldenFigure11(t *testing.T) { checkGolden(t, "fig11", "-fig", "11") }
func TestGoldenFigure12(t *testing.T) { checkGolden(t, "fig12", "-fig", "12") }
func TestGoldenList(t *testing.T)     { checkGolden(t, "list", "-list") }

func TestUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-fig", "99"}, &buf); code != 1 {
		t.Fatalf("run(-fig 99) = %d, want 1\n%s", code, buf.String())
	}
}
