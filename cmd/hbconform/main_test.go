package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden runs hbconform with args, requires exit status want, and
// compares the output against testdata/<name>.golden. `go test -update`
// rewrites the files.
func checkGolden(t *testing.T, name string, want int, args ...string) {
	t.Helper()
	var buf bytes.Buffer
	if code := run(args, &buf); code != want {
		t.Fatalf("run(%v) = %d, want %d\n%s", args, code, want, buf.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantOut, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -update` in cmd/hbconform to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), wantOut) {
		t.Fatalf("output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), wantOut)
	}
}

// TestConformGoldenMutantDivergence pins the divergence report for the expiry+1
// mutant: the crash of p[0] forces the model to inactivate p[1] at the
// bound, the late watchdog stays silent, and the checker renders the MSC
// prefix plus the stuck-time explanation. This is the user-facing shape of
// every conformance failure, so it gets a golden file.
func TestConformGoldenMutantDivergence(t *testing.T) {
	checkGolden(t, "mutant_expiry", 1,
		"-variant", "binary", "-tmin", "2", "-tmax", "4", "-fixed",
		"-horizon", "30", "-schedule", "crash t=9 node=0",
		"-mutate", "expiry+1", "-seed", "3")
}

// TestConformGoldenCleanRun pins the conforming single-run output, including the
// summary line and verdict section.
func TestConformGoldenCleanRun(t *testing.T) {
	checkGolden(t, "clean_run", 0,
		"-variant", "binary", "-tmin", "2", "-tmax", "4", "-fixed",
		"-horizon", "24", "-seed", "1")
}

// TestConformGoldenConsistentViolation pins the verdict-diff output for an
// unfixed run that overshoots the claimed bound — the runtime monitor
// fires and the model checker confirms the violation is reachable, so the
// run still exits 0.
func TestConformGoldenConsistentViolation(t *testing.T) {
	checkGolden(t, "consistent_violation", 0,
		"-variant", "binary", "-tmin", "1", "-tmax", "3",
		"-horizon", "20", "-schedule", "loss t=0 all pgb=1 pbg=0 lb=1",
		"-seed", "5")
}

// TestConformGoldenStreamMutant pins the online-checking output for the
// expiry+1 mutant: the stream checker catches the same divergence as
// offline replay (the MSC render is byte-identical), then attaches a
// shrunk offline reproduction to the incident.
func TestConformGoldenStreamMutant(t *testing.T) {
	checkGolden(t, "stream_mutant", 1,
		"-stream", "-variant", "binary", "-tmin", "2", "-tmax", "4", "-fixed",
		"-horizon", "30", "-schedule", "crash t=9 node=0",
		"-mutate", "expiry+1", "-seed", "3")
}

// TestConformGoldenStreamClean pins the conforming online-checking output.
func TestConformGoldenStreamClean(t *testing.T) {
	checkGolden(t, "stream_clean", 0,
		"-stream", "-variant", "binary", "-tmin", "2", "-tmax", "4", "-fixed",
		"-horizon", "24", "-seed", "1")
}

// TestConformGoldenStreamViolation pins the incident line for a runtime
// R1 violation the model confirms reachable: reported online through the
// incident path, exit status stays 0.
func TestConformGoldenStreamViolation(t *testing.T) {
	checkGolden(t, "stream_violation", 0,
		"-stream", "-variant", "binary", "-tmin", "1", "-tmax", "3",
		"-horizon", "20", "-schedule", "loss t=0 all pgb=1 pbg=0 lb=1",
		"-seed", "5")
}

// TestStreamRenderMatchesOffline requires the streamed divergence report
// to embed the exact MSC render the offline checker produces for the same
// run — the byte-identical-incident contract, checked end to end through
// the CLI.
func TestStreamRenderMatchesOffline(t *testing.T) {
	args := []string{
		"-variant", "binary", "-tmin", "2", "-tmax", "4", "-fixed",
		"-horizon", "30", "-schedule", "crash t=9 node=0",
		"-mutate", "expiry+1", "-seed", "3",
	}
	var offline, stream bytes.Buffer
	if code := run(args, &offline); code != 1 {
		t.Fatalf("offline run = %d, want 1\n%s", code, offline.String())
	}
	if code := run(append([]string{"-stream"}, args...), &stream); code != 1 {
		t.Fatalf("stream run = %d, want 1\n%s", code, stream.String())
	}
	off := offline.Bytes()
	start := bytes.Index(off, []byte("trace before divergence"))
	end := bytes.Index(off, []byte("model allows: "))
	if start < 0 || end < start {
		t.Fatalf("offline output has no divergence section:\n%s", offline.String())
	}
	section := off[start : end+bytes.IndexByte(off[end:], '\n')+1]
	if !bytes.Contains(stream.Bytes(), section) {
		t.Fatalf("stream output does not embed the offline render:\noffline:\n%s\nstream:\n%s",
			offline.String(), stream.String())
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-variant", "nope", "-horizon", "5"}, &buf); code != 2 {
		t.Fatalf("unknown variant: run = %d, want 2\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{"-mutate", "expiry+1"}, &buf); code != 2 {
		t.Fatalf("mutate without -horizon: run = %d, want 2\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{"-stream"}, &buf); code != 2 {
		t.Fatalf("stream without -horizon: run = %d, want 2\n%s", code, buf.String())
	}
}
