// Command hbconform checks the detector runtime against the timed-automata
// models by differential trace checking (internal/conform).
//
// Walk mode (default): seeded random-walk campaigns per variant —
//
//	hbconform -variant all -walks 200 -seed 1
//
// Single-run mode (-horizon > 0): one fully specified, deterministic run —
//
//	hbconform -variant binary -tmin 2 -tmax 4 -fixed -horizon 30 \
//	    -schedule 'crash t=9 node=0' -mutate expiry+1
//
// With -stream the single run is checked online while it executes
// (internal/conform.StreamChecker) instead of by offline replay: incidents
// are reported as they fire, violations are cross-checked against the
// model inline, and a divergence is shrunk to a minimal reproduction.
//
// Exit status 1 when any divergence or verdict mismatch is found.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mc"
	"repro/internal/models"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

var variants = []models.Variant{
	models.Binary, models.RevisedBinary, models.TwoPhase,
	models.Static, models.Expanding, models.Dynamic,
}

func parseVariant(name string) (models.Variant, error) {
	for _, v := range variants {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q (have all, %s)", name, variantNames())
}

func variantNames() string {
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.String()
	}
	return strings.Join(names, ", ")
}

// loadSchedule reads a fault schedule from a file, or parses the flag
// value itself when it is not a readable file (inline schedules).
func loadSchedule(spec string) (*faults.Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	text := spec
	if data, err := os.ReadFile(spec); err == nil {
		text = string(data)
	}
	return faults.ParseSchedule(text)
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("hbconform", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		variant   = fs.String("variant", "all", "protocol variant, or all (walk mode only)")
		walks     = fs.Int("walks", 200, "random walks per variant")
		seed      = fs.Int64("seed", 1, "campaign seed (walk mode) or simulator seed (single-run mode)")
		shrink    = fs.Bool("shrink", true, "minimise failing walks before reporting")
		maxStates = fs.Int("max-states", 0, "state limit per specification LTS (0: default)")
		schedule  = fs.String("schedule", "", "fault schedule: a file path or inline text")
		tmin      = fs.Int("tmin", 2, "tmin (single-run mode)")
		tmax      = fs.Int("tmax", 4, "tmax (single-run mode)")
		n         = fs.Int("n", 1, "participants (single-run mode)")
		fixed     = fs.Bool("fixed", false, "apply the §6 fixes (single-run mode)")
		horizon   = fs.Int("horizon", 0, "virtual run length; > 0 selects single-run mode")
		maxDelay  = fs.Int("maxdelay", 0, "per-direction link delay bound (single-run mode)")
		mutate    = fs.String("mutate", "", "inject a named detector defect (single-run mode)")
		stream    = fs.Bool("stream", false, "check online while the run executes (single-run mode)")
		workers   = fs.Int("workers", 1, "concurrent walks per campaign; results are identical at any count (walk mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *horizon > 0 {
		if *stream {
			return runStreamSingle(w, *variant, *tmin, *tmax, *n, *fixed, *horizon, *maxDelay, *seed, *maxStates, *schedule, *mutate)
		}
		return runSingle(w, *variant, *tmin, *tmax, *n, *fixed, *horizon, *maxDelay, *seed, *maxStates, *schedule, *mutate)
	}
	if *schedule != "" || *mutate != "" || *stream {
		fmt.Fprintln(w, "hbconform: -schedule/-mutate/-stream need single-run mode (set -horizon)")
		return 2
	}
	return runWalks(w, *variant, *walks, *seed, *maxStates, *shrink, *workers)
}

// singleConfig assembles the RunConfig for single-run mode from flags.
func singleConfig(variantName string, tmin, tmax, n int, fixed bool, horizon, maxDelay int, seed int64, schedule, mutate string) (conform.RunConfig, error) {
	v, err := parseVariant(variantName)
	if err != nil {
		return conform.RunConfig{}, err
	}
	sched, err := loadSchedule(schedule)
	if err != nil {
		return conform.RunConfig{}, fmt.Errorf("schedule: %v", err)
	}
	wrap, err := conform.Mutation(mutate)
	if err != nil {
		return conform.RunConfig{}, err
	}
	return conform.RunConfig{
		Model: models.Config{
			TMin: int32(tmin), TMax: int32(tmax),
			Variant: v, N: n, Fixed: fixed,
		},
		Seed:     seed,
		Horizon:  core.Tick(horizon),
		MaxDelay: core.Tick(maxDelay),
		Schedule: sched,
		Wrap:     wrap,
	}, nil
}

func runSingle(w io.Writer, variantName string, tmin, tmax, n int, fixed bool, horizon, maxDelay int, seed int64, maxStates int, schedule, mutate string) int {
	rc, err := singleConfig(variantName, tmin, tmax, n, fixed, horizon, maxDelay, seed, schedule, mutate)
	if err != nil {
		fmt.Fprintf(w, "hbconform: %v\n", err)
		return 2
	}
	opts := mc.Options{MaxStates: maxStates}
	sp, err := conform.BuildSpec(rc.Model, opts)
	if err != nil {
		fmt.Fprintf(w, "hbconform: %v\n", err)
		return 2
	}
	out, err := conform.Run(rc)
	if err != nil {
		fmt.Fprintf(w, "hbconform: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "run %s: tmin=%d tmax=%d n=%d fixed=%v seed=%d horizon=%d events=%d lost=%d\n",
		rc.Model.Variant, tmin, tmax, n, fixed, seed, horizon, len(out.Events), out.Lost)

	status := 0
	if d := sp.CheckTrace(out.Events, rc.Horizon); d != nil {
		fmt.Fprintln(w)
		if err := d.Render(w, "trace before divergence"); err != nil {
			fmt.Fprintf(w, "hbconform: render: %v\n", err)
			return 2
		}
		status = 1
	} else {
		fmt.Fprintln(w, "trace inclusion: conforms")
	}

	tv := conform.EvaluateTrace(rc.Model, out.Events, out.Lost, rc.Horizon)
	if len(tv.Violations) == 0 {
		fmt.Fprintln(w, "verdicts: no R1-R3 violations observed")
		return status
	}
	verify := func(cfg models.Config, p models.Property) (models.Verdict, error) {
		return models.Verify(cfg, p, opts)
	}
	diffs, err := conform.DiffVerdicts(rc.Model, tv, verify)
	if err != nil {
		fmt.Fprintf(w, "hbconform: verdicts: %v\n", err)
		return 2
	}
	for _, d := range diffs {
		state := "model agrees (violation reachable)"
		if d.Mismatch {
			state = "MISMATCH: model proves the property satisfied"
			status = 1
		}
		for _, viol := range d.Runtime {
			fmt.Fprintf(w, "verdict %v violated at t=%d (p[%d]): %s\n", d.Prop, viol.Time, viol.Proc, state)
		}
	}
	return status
}

// runStreamSingle checks one deterministic run online: the stream checker
// rides the cluster as its observer, violations are cross-checked against
// the model checker as they fire, and a divergence is shrunk to a minimal
// offline reproduction before reporting.
func runStreamSingle(w io.Writer, variantName string, tmin, tmax, n int, fixed bool, horizon, maxDelay int, seed int64, maxStates int, schedule, mutate string) int {
	rc, err := singleConfig(variantName, tmin, tmax, n, fixed, horizon, maxDelay, seed, schedule, mutate)
	if err != nil {
		fmt.Fprintf(w, "hbconform: %v\n", err)
		return 2
	}
	opts := mc.Options{MaxStates: maxStates}
	cc := &conform.CampaignCheck{Model: rc.Model, Opts: opts}
	verify := func(cfg models.Config, p models.Property) (models.Verdict, error) {
		return models.Verify(cfg, p, opts)
	}
	sc, err := conform.NewStreamChecker(conform.StreamConfig{
		Check: cc, Horizon: rc.Horizon, Verify: verify,
	})
	if err != nil {
		fmt.Fprintf(w, "hbconform: %v\n", err)
		return 2
	}
	res, err := conform.RunStream(rc, sc)
	if err != nil {
		fmt.Fprintf(w, "hbconform: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "stream %s: tmin=%d tmax=%d n=%d fixed=%v seed=%d horizon=%d events=%d frontier=%d\n",
		rc.Model.Variant, tmin, tmax, n, fixed, seed, horizon, res.Events, res.MaxFrontierSeen)

	status := 0
	switch {
	case res.Unconfirmed != nil:
		status = 1
		inc := res.Unconfirmed
		if sp, err := cc.Spec(); err == nil {
			if shr, sdiv, err := conform.ShrinkRun(rc, sp); err == nil && sdiv != nil {
				inc.Shrunk, inc.ShrunkDiv = &shr, sdiv
			}
		}
		fmt.Fprintln(w)
		if err := inc.Render(w, "trace before divergence"); err != nil {
			fmt.Fprintf(w, "hbconform: render: %v\n", err)
			return 2
		}
		if src := inc.Shrunk; src != nil {
			fmt.Fprintf(w, "\nshrunk reproduction:\n  hbconform -variant %s -tmin %d -tmax %d -n %d -fixed=%v -seed %d -horizon %d -maxdelay %d",
				src.Model.Variant, src.Model.TMin, src.Model.TMax, src.Model.N, src.Model.Fixed, src.Seed, src.Horizon, src.MaxDelay)
			if src.Schedule != nil {
				fmt.Fprintf(w, " -schedule '%s'", strings.TrimSpace(strings.ReplaceAll(src.Schedule.Format(), "\n", "; ")))
			}
			if mutate != "" {
				fmt.Fprintf(w, " -mutate %s", mutate)
			}
			fmt.Fprintln(w)
		}
	case res.Shed:
		fmt.Fprintf(w, "stream inclusion: shed at frontier budget (%d events unchecked)\n", res.ShedEvents)
	default:
		fmt.Fprintln(w, "stream inclusion: conforms")
	}

	violations := 0
	for _, inc := range res.Incidents {
		if inc.Kind != conform.IncidentViolation {
			continue
		}
		violations++
		fmt.Fprintf(w, "incident: %s\n", inc)
		if inc.Verified && !inc.ModelAgrees {
			status = 1
		}
	}
	if violations == 0 {
		fmt.Fprintln(w, "verdicts: no R1-R3 violations observed")
	}
	return status
}

func runWalks(w io.Writer, variantName string, walks int, seed int64, maxStates int, shrink bool, workers int) int {
	list := variants
	if variantName != "all" {
		v, err := parseVariant(variantName)
		if err != nil {
			fmt.Fprintf(w, "hbconform: %v\n", err)
			return 2
		}
		list = []models.Variant{v}
	}
	status := 0
	for _, v := range list {
		ec := conform.ExploreConfig{
			Variant: v, Walks: walks, Seed: seed,
			MaxStates: maxStates, Shrink: shrink, Workers: workers,
		}
		res, err := ec.Explore()
		if err != nil {
			fmt.Fprintf(w, "hbconform: %s: %v\n", v, err)
			return 2
		}
		fmt.Fprintf(w, "conform %s: walks=%d clean=%d events=%d consistent-violations=%d failures=%d\n",
			v, res.Walks, res.Clean, res.Events, res.ConsistentViolations, len(res.Failures))
		for _, f := range res.Failures {
			status = 1
			reportFailure(w, v, f)
		}
	}
	return status
}

func reportFailure(w io.Writer, v models.Variant, f conform.WalkFailure) {
	rc, div := f.Run, f.Div
	if f.Shrunk != nil {
		rc, div = *f.Shrunk, f.ShrunkDiv
	}
	fmt.Fprintf(w, "\nwalk %d FAILED; reproduce with:\n  hbconform -variant %s -tmin %d -tmax %d -n %d -fixed=%v -seed %d -horizon %d -maxdelay %d",
		f.Walk, v, rc.Model.TMin, rc.Model.TMax, rc.Model.N, rc.Model.Fixed, rc.Seed, rc.Horizon, rc.MaxDelay)
	if rc.Schedule != nil {
		fmt.Fprintf(w, " -schedule '%s'", strings.TrimSpace(strings.ReplaceAll(rc.Schedule.Format(), "\n", "; ")))
	}
	fmt.Fprintln(w)
	if div != nil {
		if err := div.Render(w, "trace before divergence"); err != nil {
			fmt.Fprintf(w, "hbconform: render: %v\n", err)
		}
	}
	for _, d := range f.Mismatches {
		for _, viol := range d.Runtime {
			fmt.Fprintf(w, "verdict %v violated at t=%d (p[%d]) but the model proves it satisfied\n",
				d.Prop, viol.Time, viol.Proc)
		}
	}
}
