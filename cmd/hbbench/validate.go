package main

import (
	"fmt"
	"time"
)

// validateHistory checks the whole benchmark history before it is
// written back: a malformed entry appended today becomes a silently
// broken trajectory diff months later, so the append fails loudly
// instead. Rules:
//
//   - every entry has a non-empty label, and labels are unique (a
//     duplicate label makes "the pr4-maxprocs8 row" ambiguous);
//   - every entry's date parses as RFC3339 and dates never move
//     backwards (the file is an append-only trajectory; out-of-order
//     dates mean someone rewrote history or a clock is broken);
//   - the required measurement fields are present: go version,
//     maxprocs >= 1, and positive per_sec/ns_per_op for both the
//     checker and the simulator (a zero rate means the benchmark did
//     not actually run).
func validateHistory(h History) error {
	seen := make(map[string]int, len(h.Entries))
	var prev time.Time
	for i, e := range h.Entries {
		where := fmt.Sprintf("entry %d (label %q)", i, e.Label)
		if e.Label == "" {
			return fmt.Errorf("entry %d: empty label", i)
		}
		if j, dup := seen[e.Label]; dup {
			return fmt.Errorf("%s: duplicate label (first used by entry %d); pick a distinct -label", where, j)
		}
		seen[e.Label] = i
		d, err := time.Parse(time.RFC3339, e.Date)
		if err != nil {
			return fmt.Errorf("%s: date %q is not RFC3339: %v", where, e.Date, err)
		}
		if d.Before(prev) {
			return fmt.Errorf("%s: date %s precedes the previous entry's %s; the history is append-only and must stay chronological", where, e.Date, prev.Format(time.RFC3339))
		}
		prev = d
		if e.Go == "" {
			return fmt.Errorf("%s: missing go version", where)
		}
		if e.MaxProcs < 1 {
			return fmt.Errorf("%s: maxprocs %d < 1", where, e.MaxProcs)
		}
		if err := validateMetrics("checker", e.Checker); err != nil {
			return fmt.Errorf("%s: %v", where, err)
		}
		if err := validateMetrics("simulator", e.Simulator); err != nil {
			return fmt.Errorf("%s: %v", where, err)
		}
	}
	return nil
}

func validateMetrics(name string, m Metrics) error {
	if m.PerSec <= 0 {
		return fmt.Errorf("%s per_sec %g is not positive; the benchmark did not run", name, m.PerSec)
	}
	if m.NSPerOp <= 0 {
		return fmt.Errorf("%s ns_per_op %g is not positive", name, m.NSPerOp)
	}
	return nil
}
