// Command hbbench measures the repo's hot-path throughput — model-checker
// states/s, packed-store interns/s, simulator events/s — and appends the
// results to a machine-readable benchmark history, seeding the perf
// trajectory tracked in BENCH_mc.json:
//
//	hbbench -label post-pr2                 # measure and append to BENCH_mc.json
//	hbbench -out /tmp/bench.json -table=false
//
// Each entry records ns/op and allocs/op next to the throughput metrics,
// so regressions in either speed or allocation discipline show up in the
// history diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/models"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_mc.json", "benchmark history file to append to")
		label   = flag.String("label", "run", "label for this history entry")
		table   = flag.Bool("table", true, "additionally time Table 1 (binary family) sequential vs parallel")
		workers = flag.Int("workers", 0, "BFS workers for the checker benchmark (0 = GOMAXPROCS); counts are identical at any value")
	)
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if err := run(*out, *label, *table, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "hbbench:", err)
		os.Exit(1)
	}
}

func run(out, label string, table bool, workers int) error {
	entry := benchjson.Entry{
		Label:    label,
		Date:     time.Now().UTC().Format(time.RFC3339),
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:   runtime.NumCPU(),
		Workers:  workers,
	}
	// On a single-CPU host, multi-worker rows cannot show parallel
	// speedup — they only measure coordination overhead. Flag them so a
	// later trajectory diff does not misread the row as a regression.
	if entry.NumCPU == 1 && workers > 1 {
		entry.Note = benchjson.CoordinationOverheadNote
	}

	var benchErr error
	checker := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		states := 0
		for i := 0; i < b.N; i++ {
			m, err := models.Build(models.Config{TMin: 9, TMax: 10, Variant: models.Binary, N: 1})
			if err != nil {
				benchErr = err
				return
			}
			v, err := m.Verify(models.R1, mc.Options{Workers: workers})
			if err != nil {
				benchErr = err
				return
			}
			states += v.Result.StatesExplored
		}
		b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
	})
	if benchErr != nil {
		return benchErr
	}
	entry.Checker = metrics(checker, "states/s")
	fmt.Printf("checker:   %11.0f states/s   %12d ns/op   %8d allocs/op\n",
		entry.Checker.PerSec, int64(entry.Checker.NSPerOp), entry.Checker.AllocsPerOp)

	simulator := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events := uint64(0)
		for i := 0; i < b.N; i++ {
			c, err := detector.NewCluster(detector.ClusterConfig{
				Protocol: detector.ProtocolBinary,
				Core:     core.Config{TMin: 2, TMax: 16},
				Seed:     int64(i + 1),
			})
			if err != nil {
				benchErr = err
				return
			}
			if err := c.Start(); err != nil {
				benchErr = err
				return
			}
			c.Sim.RunUntil(100_000)
			events += c.Sim.EventsExecuted()
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
	if benchErr != nil {
		return benchErr
	}
	entry.Simulator = metrics(simulator, "events/s")
	fmt.Printf("simulator: %11.0f events/s   %12d ns/op   %8d allocs/op\n",
		entry.Simulator.PerSec, int64(entry.Simulator.NSPerOp), entry.Simulator.AllocsPerOp)

	if table {
		spec := models.TableSpec{
			Variants: []models.Variant{models.Binary, models.RevisedBinary, models.TwoPhase},
			TMins:    models.DefaultTMins(),
			TMax:     10,
			N:        1,
		}
		seq, err := timeTable(spec, 1)
		if err != nil {
			return err
		}
		par, err := timeTable(spec, 0)
		if err != nil {
			return err
		}
		entry.Table1SeqMS = seq
		entry.Table1ParMS = par
		fmt.Printf("table1:    %11.0f ms sequential, %.0f ms on %d workers (%.2fx)\n",
			seq, par, runtime.GOMAXPROCS(0), seq/par)
	}

	if err := benchjson.Append(out, entry); err != nil {
		return err
	}
	fmt.Printf("appended entry %q to %s\n", label, out)
	return nil
}

func metrics(r testing.BenchmarkResult, rate string) benchjson.Metrics {
	return benchjson.Metrics{
		PerSec:      r.Extra[rate],
		NSPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func timeTable(spec models.TableSpec, workers int) (ms float64, err error) {
	spec.Workers = workers
	start := time.Now()
	if _, err := models.RunTable(spec); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Milliseconds()), nil
}
