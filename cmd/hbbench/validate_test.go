package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func goodEntry(label, date string) Entry {
	return Entry{
		Label:    label,
		Date:     date,
		Go:       "go1.24.0",
		MaxProcs: 1,
		Checker:  Metrics{PerSec: 1.2e6, NSPerOp: 8.3e8, AllocsPerOp: 1600},
		Simulator: Metrics{
			PerSec: 8.7e6, NSPerOp: 1.1e7, AllocsPerOp: 60,
		},
	}
}

func TestValidateHistory(t *testing.T) {
	cases := []struct {
		name    string
		history History
		wantErr string // empty = valid
	}{
		{
			name: "valid pair",
			history: History{Entries: []Entry{
				goodEntry("pr2-baseline", "2026-07-01T10:00:00Z"),
				goodEntry("pr4-simfast", "2026-07-20T09:30:00Z"),
			}},
		},
		{
			name:    "empty history",
			history: History{},
		},
		{
			name: "equal dates allowed",
			history: History{Entries: []Entry{
				goodEntry("a", "2026-07-01T10:00:00Z"),
				goodEntry("b", "2026-07-01T10:00:00Z"),
			}},
		},
		{
			name: "empty label",
			history: History{Entries: []Entry{
				goodEntry("", "2026-07-01T10:00:00Z"),
			}},
			wantErr: "empty label",
		},
		{
			name: "duplicate label",
			history: History{Entries: []Entry{
				goodEntry("run", "2026-07-01T10:00:00Z"),
				goodEntry("run", "2026-07-02T10:00:00Z"),
			}},
			wantErr: "duplicate label",
		},
		{
			name: "bad date",
			history: History{Entries: []Entry{
				goodEntry("a", "July 1st"),
			}},
			wantErr: "not RFC3339",
		},
		{
			name: "dates move backwards",
			history: History{Entries: []Entry{
				goodEntry("a", "2026-07-02T10:00:00Z"),
				goodEntry("b", "2026-07-01T10:00:00Z"),
			}},
			wantErr: "precedes",
		},
		{
			name: "missing go version",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEntry("a", "2026-07-01T10:00:00Z")
					e.Go = ""
					return e
				}(),
			}},
			wantErr: "missing go version",
		},
		{
			name: "zero checker rate",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEntry("a", "2026-07-01T10:00:00Z")
					e.Checker.PerSec = 0
					return e
				}(),
			}},
			wantErr: "checker per_sec",
		},
		{
			name: "zero maxprocs",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEntry("a", "2026-07-01T10:00:00Z")
					e.MaxProcs = 0
					return e
				}(),
			}},
			wantErr: "maxprocs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateHistory(tc.history)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestCheckedInHistoryValid pins the repo's actual BENCH_mc.json against
// the same rules the append path enforces, so a hand-edit that breaks
// the trajectory fails in tests before the next hbbench run trips on it.
func TestCheckedInHistoryValid(t *testing.T) {
	b, err := os.ReadFile("../../BENCH_mc.json")
	if err != nil {
		t.Skipf("no checked-in history: %v", err)
	}
	var hist History
	if err := json.Unmarshal(b, &hist); err != nil {
		t.Fatalf("BENCH_mc.json does not parse: %v", err)
	}
	if len(hist.Entries) == 0 {
		t.Fatal("BENCH_mc.json has no entries")
	}
	if err := validateHistory(hist); err != nil {
		t.Fatalf("checked-in BENCH_mc.json fails validation: %v", err)
	}
}
