// Command hbvet runs the repository's project-specific static analyzers
// (internal/lint) over the tree:
//
//	hbvet ./...                      # everything (from the module root)
//	hbvet ./internal/sim ./internal/mc
//	hbvet -check determinism,map-order ./...
//	hbvet -json ./...                # machine-readable findings (CI artifact)
//	hbvet -escape                    # compiler escape-budget gate
//	hbvet -escape -update            # regenerate the escape budget
//	hbvet -list                      # describe the checks
//
// The per-package checks enforce the conventions the checker and
// simulator correctness hangs on: deterministic replay (no wall-clock
// or global rand), map-iteration-order hygiene, the
// ta.Successors/AppendKey buffer-reuse contract, //hbvet:noalloc
// allocation discipline on annotated hot paths, and atomic-vs-plain
// access discipline. On top of them run the interprocedural checks over
// the module call graph: noalloc-closure (every function reachable from
// a //hbvet:noalloc root must be allocation-free or annotated, with
// full call chains in findings), determinism-taint (only the
// allowlisted wall-clock boundary may transitively reach time.Now or
// global math/rand), and unused-suppression (//lint:allow directives
// that suppress nothing are findings). -escape bypasses the AST layer
// entirely: it diffs the compiler's own heap diagnostics for the
// hot-path packages against the checked-in escape_budget.txt.
//
// Findings print as file:line:col: message [check]; exit status is 1
// when any finding survives //lint:allow suppression, 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		checks  = flag.String("check", "", "comma-separated subset of checks to run (default: all)")
		list    = flag.Bool("list", false, "list the available checks and exit")
		root    = flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
		jsonOut = flag.Bool("json", false, "emit findings as schema-versioned JSON on stdout")
		escape  = flag.Bool("escape", false, "run the compiler escape-budget gate instead of the AST checks")
		update  = flag.Bool("update", false, "with -escape: regenerate the budget file instead of diffing")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.ProgramAnalyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-20s %s\n", "escape-budget", "compiler heap diagnostics for hot-path packages must match escape_budget.txt (-escape)")
		return
	}

	moduleRoot := *root
	if moduleRoot == "" {
		var err error
		moduleRoot, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbvet:", err)
			os.Exit(2)
		}
	}

	var (
		n   int
		err error
	)
	if *escape {
		n, err = runEscape(moduleRoot, *update, *jsonOut)
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		n, err = run(moduleRoot, patterns, splitChecks(*checks), *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "hbvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func splitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// run loads the packages as one program, runs the per-package and
// interprocedural analyzers, and prints the findings, returning how
// many there were.
func run(root string, patterns, checks []string, jsonOut bool) (int, error) {
	ld, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return 0, err
	}
	findings := lint.NewProgram(pkgs).Run(lint.Config{Checks: checks})
	relativize(root, findings)
	return len(findings), emit(findings, jsonOut)
}

// runEscape diffs (or regenerates, with update) the compiler escape
// budget for the hot-path packages.
func runEscape(root string, update, jsonOut bool) (int, error) {
	sites, err := lint.EscapeSites(root, lint.HotPathPackages)
	if err != nil {
		return 0, err
	}
	budgetPath := filepath.Join(root, lint.EscapeBudgetFile)
	if update {
		if err := lint.WriteEscapeBudget(budgetPath, sites); err != nil {
			return 0, err
		}
		fmt.Printf("hbvet: wrote %s: %d heap-allocation site classes across %d packages\n",
			lint.EscapeBudgetFile, len(sites), len(lint.HotPathPackages))
		return 0, nil
	}
	budget, err := lint.LoadEscapeBudget(budgetPath)
	if err != nil {
		return 0, fmt.Errorf("loading escape budget (run `hbvet -escape -update` to create it): %w", err)
	}
	findings := lint.DiffEscapeBudget(budget, sites)
	return len(findings), emit(findings, jsonOut)
}

// relativize rewrites absolute finding paths to module-relative ones.
func relativize(root string, findings []lint.Finding) {
	for i := range findings {
		if r, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(r)
		}
	}
}

func emit(findings []lint.Finding, jsonOut bool) error {
	if jsonOut {
		return lint.EncodeJSON(os.Stdout, findings)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	return nil
}
