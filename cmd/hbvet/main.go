// Command hbvet runs the repository's project-specific static analyzers
// (internal/lint) over the tree:
//
//	hbvet ./...                      # everything (from the module root)
//	hbvet ./internal/sim ./internal/mc
//	hbvet -check determinism,map-order ./...
//	hbvet -list                      # describe the checks
//
// The five checks enforce the conventions the checker and simulator
// correctness hangs on: deterministic replay (no wall-clock or global
// rand), map-iteration-order hygiene, the ta.Successors/AppendKey
// buffer-reuse contract, //hbvet:noalloc allocation discipline on
// annotated hot paths, and atomic-vs-plain access discipline. Findings
// print as file:line:col: message [check]; exit status is 1 when any
// finding survives //lint:allow suppression, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		checks = flag.String("check", "", "comma-separated subset of checks to run (default: all)")
		list   = flag.Bool("list", false, "list the available checks and exit")
		root   = flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	moduleRoot := *root
	if moduleRoot == "" {
		var err error
		moduleRoot, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbvet:", err)
			os.Exit(2)
		}
	}

	n, err := run(moduleRoot, patterns, splitChecks(*checks))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "hbvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func splitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// run loads the packages and prints the findings, returning how many
// there were.
func run(root string, patterns, checks []string) (int, error) {
	ld, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return 0, err
	}
	cfg := lint.Config{Checks: checks}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range lint.RunPackage(pkg, cfg) {
			rel := f
			if r, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = r
			}
			fmt.Println(rel.String())
			total++
		}
	}
	return total, nil
}
