// Clustermon: monitor workers with the accelerated heartbeat protocol.
//
// The default mode runs the deployment shape the 1998 paper motivates —
// one coordinator exchanging beats with five workers over a lossy,
// delaying network; the run injects message loss throughout, then a
// worker crash, then shows the protocol's reaction: the crash is detected
// and, by design, the whole network winds down (heartbeat protocols
// synchronise shutdown, they do not mask failures).
//
// -fleet scales the same protocol up three orders of magnitude: hundreds
// of independent clusters multiplexed into one process as rows over
// sharded timer wheels (internal/fleet), with per-epoch liveness rollup
// up an aggregation tree instead of per-node event logs.
//
//	go run ./examples/clustermon
//	go run ./examples/clustermon -fleet
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/fleet"
	"repro/internal/netem"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("clustermon", flag.ContinueOnError)
	fs.SetOutput(w)
	fleetMode := fs.Bool("fleet", false, "monitor a whole fleet of clusters with rollup output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var err error
	if *fleetMode {
		err = runFleet(w)
	} else {
		err = runCluster(w)
	}
	if err != nil {
		fmt.Fprintln(w, "clustermon:", err)
		return 1
	}
	return 0
}

func runCluster(w io.Writer) error {
	const workers = 5
	// Original (1998) bounds: the worker watchdog of 3·tmax − tmin
	// absorbs one lost beat with slack. The §6.2 tightened 2·tmax bound
	// detects faster but tolerates barely a single loss — R2 only
	// promises no false inactivation when no message is lost at all —
	// so for a lossy deployment the looser bound is the right choice.
	cfg := core.Config{TMin: 4, TMax: 32}
	cluster, err := detector.NewCluster(detector.ClusterConfig{
		Protocol: detector.ProtocolStatic,
		Core:     cfg,
		N:        workers,
		Link:     netem.LinkConfig{LossProb: 0.01}, // 1% loss per message
		Seed:     7,
	})
	if err != nil {
		return fmt.Errorf("building cluster: %w", err)
	}
	if err := cluster.Start(); err != nil {
		return fmt.Errorf("starting cluster: %w", err)
	}

	// A long steady-state phase: 1% loss is absorbed by acceleration
	// (a false detection needs log2(32/4) = 3 consecutive losses on the
	// same worker's exchange).
	cluster.Sim.RunUntil(5000)
	st := cluster.Net.Stats()
	fmt.Fprintf(w, "t=%-5d steady state: %d beats sent, %d lost, all %d workers %v\n",
		cluster.Sim.Now(), st.Total.Sent, st.Total.Lost, workers,
		cluster.Participants[1].Status())
	if len(cluster.Events) != 0 {
		return fmt.Errorf("unexpected events during steady state: %v", cluster.Events)
	}

	// Worker 3 crashes.
	cluster.Participants[3].Crash()
	fmt.Fprintf(w, "t=%-5d worker 3 crashes\n", cluster.Sim.Now())
	cluster.Sim.RunUntil(6000)

	for _, e := range cluster.Events {
		switch e.Kind {
		case detector.EventSuspect:
			fmt.Fprintf(w, "t=%-5d p[0] suspects worker %d\n", e.Time, e.Proc)
		case detector.EventInactivated:
			if e.Voluntary {
				fmt.Fprintf(w, "t=%-5d node %d crashed\n", e.Time, e.Node)
			} else {
				fmt.Fprintf(w, "t=%-5d node %d wound down (non-voluntary)\n", e.Time, e.Node)
			}
		}
	}

	down := 0
	for _, n := range cluster.Participants {
		if n.Status() != core.StatusActive {
			down++
		}
	}
	fmt.Fprintf(w, "t=%-5d final: coordinator %v, %d/%d workers inactive — network-wide shutdown complete\n",
		cluster.Sim.Now(), cluster.Coordinator.Status(), down, workers)
	fmt.Fprintf(w, "detection bound was %d ticks after the first missed exchange (3·tmax − tmin)\n",
		cfg.CoordinatorDetectionBound())
	return nil
}

// runFleet monitors 256 independent 16-member clusters at once. At this
// scale the interesting output is not per-node events but the rollup: a
// per-epoch fleet-wide summary aggregated leaf → subtree → root, with a
// fault injector steadily crashing endpoints so detections accumulate.
func runFleet(w io.Writer) error {
	cfg := fleet.Config{
		Clusters:    256,
		ClusterSize: 16,
		Shards:      16,
		Core:        core.Config{TMin: 2, TMax: 16},
		KillEvery:   48, // one crash per shard per 48 ticks
		AggFanout:   32,
		Seed:        7,
	}
	f, err := fleet.New(cfg)
	if err != nil {
		return fmt.Errorf("building fleet: %w", err)
	}
	fmt.Fprintf(w, "fleet: %d endpoints in %d clusters, %d shards, rollup fanout %d\n",
		f.Endpoints(), cfg.Clusters, cfg.Shards, cfg.AggFanout)
	for epoch := 1; epoch <= 8; epoch++ {
		if err := f.RunEpochs(1); err != nil {
			return err
		}
		root := f.Root()
		fmt.Fprintf(w, "epoch %-2d t=%-4d root: %4d/%4d alive, %3d detections\n",
			epoch, f.Now(), root.Alive, root.Total, root.Detections)
	}
	st := f.Stats()
	p50, p99, samples := f.DetectionLatency()
	fmt.Fprintf(w, "injected %d crashes; %d detected so far, %d false suspicions\n",
		st.Kills, st.Detections, st.FalseSuspects)
	fmt.Fprintf(w, "detection latency: p50=%d p99=%d ticks over %d detections (bound %d)\n",
		p50, p99, samples, cfg.Core.CoordinatorDetectionBound())
	return nil
}
