// Clustermon: monitor a pool of workers with the static accelerated
// heartbeat protocol over a lossy, delaying network — the deployment shape
// the 1998 paper motivates. The coordinator p[0] exchanges beats with five
// workers; the run injects message loss throughout, then a worker crash,
// then shows the protocol's reaction: the crash is detected and, by
// design, the whole network winds down (heartbeat protocols synchronise
// shutdown, they do not mask failures).
//
//	go run ./examples/clustermon
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/netem"
)

func main() {
	const workers = 5
	// Original (1998) bounds: the worker watchdog of 3·tmax − tmin
	// absorbs one lost beat with slack. The §6.2 tightened 2·tmax bound
	// detects faster but tolerates barely a single loss — R2 only
	// promises no false inactivation when no message is lost at all —
	// so for a lossy deployment the looser bound is the right choice.
	cfg := core.Config{TMin: 4, TMax: 32}
	cluster, err := detector.NewCluster(detector.ClusterConfig{
		Protocol: detector.ProtocolStatic,
		Core:     cfg,
		N:        workers,
		Link:     netem.LinkConfig{LossProb: 0.01}, // 1% loss per message
		Seed:     7,
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("starting cluster: %v", err)
	}

	// A long steady-state phase: 2% loss is absorbed by acceleration
	// (a false detection needs log2(32/4) = 3 consecutive losses on the
	// same worker's exchange).
	cluster.Sim.RunUntil(5000)
	st := cluster.Net.Stats()
	fmt.Printf("t=%-5d steady state: %d beats sent, %d lost, all %d workers %v\n",
		cluster.Sim.Now(), st.Total.Sent, st.Total.Lost, workers,
		cluster.Participants[1].Status())
	if len(cluster.Events) != 0 {
		log.Fatalf("unexpected events during steady state: %v", cluster.Events)
	}

	// Worker 3 crashes.
	cluster.Participants[3].Crash()
	fmt.Printf("t=%-5d worker 3 crashes\n", cluster.Sim.Now())
	cluster.Sim.RunUntil(6000)

	for _, e := range cluster.Events {
		switch e.Kind {
		case detector.EventSuspect:
			fmt.Printf("t=%-5d p[0] suspects worker %d\n", e.Time, e.Proc)
		case detector.EventInactivated:
			if e.Voluntary {
				fmt.Printf("t=%-5d node %d crashed\n", e.Time, e.Node)
			} else {
				fmt.Printf("t=%-5d node %d wound down (non-voluntary)\n", e.Time, e.Node)
			}
		}
	}

	down := 0
	for _, n := range cluster.Participants {
		if n.Status() != core.StatusActive {
			down++
		}
	}
	fmt.Printf("t=%-5d final: coordinator %v, %d/%d workers inactive — network-wide shutdown complete\n",
		cluster.Sim.Now(), cluster.Coordinator.Status(), down, workers)
	fmt.Printf("detection bound was %d ticks after the first missed exchange (3·tmax − tmin)\n",
		cfg.CoordinatorDetectionBound())
}
