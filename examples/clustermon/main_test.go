package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden runs clustermon with args and compares the output against
// testdata/<name>.golden. `go test -update` rewrites the files. Both
// modes are fully deterministic (seeded virtual time), so the goldens pin
// the whole narrated run.
func checkGolden(t *testing.T, name string, args ...string) {
	t.Helper()
	var buf bytes.Buffer
	if code := run(args, &buf); code != 0 {
		t.Fatalf("run(%v) = %d\n%s", args, code, buf.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -update ./examples/clustermon` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

func TestGoldenCluster(t *testing.T) { checkGolden(t, "cluster") }
func TestGoldenFleet(t *testing.T)   { checkGolden(t, "fleet", "-fleet") }

func TestUnknownFlag(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-nope"}, &buf); code != 2 {
		t.Fatalf("run(-nope) = %d, want 2\n%s", code, buf.String())
	}
}
