// Verify: use the model-checking API directly — build the formal model of
// a protocol variant, check a requirement, and render the counter-example
// as a message-sequence chart. This is the programmatic face of the
// hbcheck/hbtrace tools, for embedding protocol verification in your own
// tests.
//
//	go run ./examples/verify
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/trace"
)

func main() {
	// The headline finding of the analysis: with tmin = tmax, a beat and
	// a watchdog expiry can land on the same instant, and if the timeout
	// is processed first a healthy responder kills itself (requirement
	// R2 fails).
	cfg := models.Config{TMin: 10, TMax: 10, Variant: models.Binary, N: 1}
	verdict, err := models.Verify(cfg, models.R2, mc.Options{})
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("binary protocol, tmin=tmax=10: R2 satisfied = %v (explored %d states)\n",
		verdict.Satisfied, verdict.Result.StatesExplored)
	if !verdict.Satisfied {
		if err := trace.Render(os.Stdout, "counter-example:", verdict.Result.Trace); err != nil {
			log.Fatalf("render: %v", err)
		}
	}

	// The §6 fix: give deliveries priority over same-instant timeouts and
	// adopt the corrected bounds — the requirement now holds.
	cfg.Fixed = true
	fixed, err := models.Verify(cfg, models.R2, mc.Options{})
	if err != nil {
		log.Fatalf("verify fixed: %v", err)
	}
	fmt.Printf("\nwith the §6 corrections: R2 satisfied = %v (explored %d states)\n",
		fixed.Satisfied, fixed.Result.StatesExplored)

	// Custom goals beyond R1–R3: how quickly can p[0] be non-voluntarily
	// inactivated at all?
	m, err := models.Build(models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	res, err := m.VerifyGoal(m.P0NVInactivated, mc.Options{})
	if err != nil {
		log.Fatalf("goal: %v", err)
	}
	if res.Reachable {
		last := res.Trace[len(res.Trace)-1]
		fmt.Printf("\nfastest possible p[0] self-inactivation with tmin=2, tmax=4: t=%d ticks\n", last.Time)
	}
}
