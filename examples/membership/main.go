// Membership: the dynamic accelerated heartbeat protocol under churn.
// Participants join by soliciting p[0] with beats every tmin, leave
// gracefully by flipping the beat parameter to false, and one finally
// crashes — showing the protocol's central distinction: a leave disturbs
// nobody, a crash (by design) winds down the whole network.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/netem"
)

func main() {
	cluster, err := detector.NewCluster(detector.ClusterConfig{
		Protocol: detector.ProtocolDynamic,
		Core:     core.Config{TMin: 2, TMax: 16},
		N:        3,
		Link:     netem.LinkConfig{MaxDelay: 1},
		Seed:     99,
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("starting cluster: %v", err)
	}

	// Everyone joins.
	cluster.Sim.RunUntil(100)
	printNew(cluster, 0)
	fmt.Printf("t=%-4d members joined: p[1], p[2], p[3] all %v\n",
		cluster.Sim.Now(), cluster.Participants[1].Status())

	// p[2] leaves gracefully.
	if err := cluster.Participants[2].Leave(); err != nil {
		log.Fatalf("leave: %v", err)
	}
	fmt.Printf("t=%-4d p[2] requests to leave\n", cluster.Sim.Now())
	mark := len(cluster.Events)
	cluster.Sim.RunUntil(300)
	printNew(cluster, mark)
	fmt.Printf("t=%-4d after the leave: p[1] %v, p[2] %v, p[3] %v, p[0] %v (undisturbed)\n",
		cluster.Sim.Now(),
		cluster.Participants[1].Status(), cluster.Participants[2].Status(),
		cluster.Participants[3].Status(), cluster.Coordinator.Status())

	// p[3] crashes — this one takes the network down.
	mark = len(cluster.Events)
	cluster.Participants[3].Crash()
	fmt.Printf("t=%-4d p[3] crashes\n", cluster.Sim.Now())
	cluster.Sim.RunUntil(700)
	printNew(cluster, mark)
	fmt.Printf("t=%-4d final: p[0] %v, p[1] %v, p[2] %v (left earlier, unaffected)\n",
		cluster.Sim.Now(), cluster.Coordinator.Status(),
		cluster.Participants[1].Status(), cluster.Participants[2].Status())
}

// printNew prints events recorded at or after index from.
func printNew(cluster *detector.Cluster, from int) {
	for _, e := range cluster.Events[from:] {
		switch e.Kind {
		case detector.EventJoined:
			fmt.Printf("t=%-4d p[%d] joined the protocol\n", e.Time, e.Node)
		case detector.EventLeft:
			fmt.Printf("t=%-4d p[%d] left the protocol (acknowledged by p[0])\n", e.Time, e.Node)
		case detector.EventSuspect:
			fmt.Printf("t=%-4d p[0] suspects p[%d]\n", e.Time, e.Proc)
		case detector.EventInactivated:
			if e.Voluntary {
				fmt.Printf("t=%-4d node %d crashed\n", e.Time, e.Node)
			} else {
				fmt.Printf("t=%-4d node %d wound down\n", e.Time, e.Node)
			}
		}
	}
}
