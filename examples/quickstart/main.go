// Quickstart: run the binary accelerated heartbeat protocol between p[0]
// and p[1] on the discrete-event simulator, crash p[1], and watch p[0]
// accelerate its rounds and detect the failure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detector"
)

func main() {
	cluster, err := detector.NewCluster(detector.ClusterConfig{
		Protocol: detector.ProtocolBinary,
		// tmin=2, tmax=16: one heartbeat exchange per 16 ticks when all
		// is well, with acceleration 16 → 8 → 4 → 2 on silence.
		Core: core.Config{TMin: 2, TMax: 16},
		Seed: 42,
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatalf("starting cluster: %v", err)
	}

	// Let the protocol idle in steady state for a while.
	cluster.Sim.RunUntil(200)
	fmt.Printf("t=%-4d steady state: p[0] %v, p[1] %v, %d beats on the wire\n",
		cluster.Sim.Now(), cluster.Coordinator.Status(),
		cluster.Participants[1].Status(), cluster.Net.Stats().Total.Sent)

	// Crash p[1] and let the protocol notice.
	cluster.Participants[1].Crash()
	fmt.Printf("t=%-4d p[1] crashes\n", cluster.Sim.Now())
	cluster.Sim.RunUntil(400)

	for _, e := range cluster.Events {
		switch e.Kind {
		case detector.EventSuspect:
			fmt.Printf("t=%-4d p[0] suspects p[%d] (waiting time decayed below tmin)\n", e.Time, e.Proc)
		case detector.EventInactivated:
			kind := "non-voluntarily"
			if e.Voluntary {
				kind = "voluntarily (crash)"
			}
			fmt.Printf("t=%-4d node %d inactivated %s\n", e.Time, e.Node, kind)
		}
	}
	fmt.Printf("t=%-4d final: p[0] %v, p[1] %v\n",
		cluster.Sim.Now(), cluster.Coordinator.Status(), cluster.Participants[1].Status())

	cfg := core.Config{TMin: 2, TMax: 16}
	fmt.Printf("corrected worst-case detection bound: %d ticks (3·tmax − tmin)\n",
		cfg.CoordinatorDetectionBound())
}
