package detector

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
)

// Backoff bounds the pacing of supervisor restarts: exponential growth
// from Base, capped at Max, plus an optional random jitter fraction so
// that simultaneously failed nodes do not thunder back in lockstep.
type Backoff struct {
	// Base is the delay before the first restart, in ticks (default 1).
	Base core.Tick
	// Max caps the exponential growth (default 64·Base).
	Max core.Tick
	// Jitter in [0,1] adds a uniform extra delay of up to Jitter·delay.
	Jitter float64
}

func (b Backoff) delay(attempt int, rng *rand.Rand) core.Tick {
	base := b.Base
	if base <= 0 {
		base = 1
	}
	max := b.Max
	if max <= 0 {
		max = 64 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.Jitter > 0 {
		d += core.Tick(float64(d) * b.Jitter * rng.Float64())
	}
	return d
}

// PeerState is the supervisor's graded opinion of a peer process —
// the degraded-mode distinction between a timing wobble and a confirmed
// failure.
type PeerState int

// Peer states.
const (
	// PeerHealthy: no outstanding suspicion.
	PeerHealthy PeerState = iota
	// PeerSuspected: some node's waiting time for the peer decayed below
	// tmin, but the confirmation window has not elapsed.
	PeerSuspected
	// PeerDown: the suspicion outlived the confirmation window.
	PeerDown
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerSuspected:
		return "suspected"
	case PeerDown:
		return "down"
	default:
		return fmt.Sprintf("PeerState(%d)", int(s))
	}
}

// SupervisorConfig assembles a Supervisor.
type SupervisorConfig struct {
	// Clock drives health polls, backoff waits and confirmation windows.
	Clock Clock
	// Events, if non-nil, receives both the node events routed through
	// the supervisor and the supervisor's own events (EventDown,
	// EventRestarted, EventPanic, EventGaveUp).
	Events EventSink
	// Backoff paces restarts.
	Backoff Backoff
	// MaxRestarts bounds restarts per node; <= 0 means unlimited.
	MaxRestarts int
	// CheckEvery is the health-poll period in ticks (default 8).
	CheckEvery core.Tick
	// ConfirmAfter is how long a suspicion must persist before the peer
	// is confirmed down and EventDown fires; 0 confirms immediately.
	ConfirmAfter core.Tick
	// RestartCrashed also restarts voluntarily crashed nodes. By default
	// only protocol-forced inactivations and recovered panics heal: a
	// voluntary crash is an operator action (or a scripted fault whose
	// restart is likewise scripted).
	RestartCrashed bool
	// Seed drives the backoff jitter.
	Seed int64
	// Envelope, if non-nil, enables envelope-aware backoff for adaptive
	// clusters: while the coordinator's last EventRetuned point sits above
	// the envelope floor (TMax > Envelope.TMaxLo), the network is known to
	// be losing beats, so every scheduled restart delay is stretched by
	// DegradedFactor — a node restarted into a live partition would only
	// be suspected again, and tight restart pacing turns that into a
	// restart storm.
	Envelope *core.Envelope
	// DegradedFactor multiplies restart backoff while degraded
	// (default 4; only meaningful with Envelope set).
	DegradedFactor int
}

// supervised is the per-node bookkeeping.
type supervised struct {
	node     *Node
	factory  func() (core.Machine, error)
	restarts int  // lifetime total, counts against MaxRestarts
	attempt  int  // backoff exponent; reset to 0 by a clean rejoin
	pending  bool // a restart is scheduled
	wedged   bool // a panic was recovered; machine state is suspect
	gaveUp   bool
}

// Supervisor is the self-healing layer over a set of Nodes: it recovers
// handler panics, restarts crashed or wedged nodes with bounded
// exponential backoff plus jitter, and grades peers from suspected to
// confirmed-down before notifying the application. It runs identically
// over SimClock (deterministic, single-threaded) and WallClock
// (concurrent); all methods are safe for concurrent use.
//
// Lock discipline: the supervisor never calls into a Node while holding
// its own lock, because nodes deliver events into HandleEvent while
// holding theirs.
type Supervisor struct {
	mu       sync.Mutex
	cfg      SupervisorConfig
	rng      *rand.Rand
	nodes    map[netem.NodeID]*supervised
	peers    map[core.ProcID]PeerState
	peerGen  map[core.ProcID]uint64
	polling  bool
	stopped  bool
	timers   map[uint64]func() // pending cancels, keyed by timerSeq
	timerSeq uint64
	metrics  SupervisorMetrics
}

// SupervisorMetrics exposes the supervisor's transition counters and the
// restart-storm guard state, so campaigns can assert "no restart thrash
// under partition" instead of eyeballing logs.
type SupervisorMetrics struct {
	// Suspects counts healthy→suspected peer transitions.
	Suspects int
	// Confirms counts suspected→down transitions (suspicions that
	// outlived the confirmation window uncontradicted).
	Confirms int
	// RestartsScheduled counts restarts armed (including ones later
	// invalidated by Stop).
	RestartsScheduled int
	// RestartsHeld counts restarts whose backoff was stretched by the
	// envelope-aware degraded guard.
	RestartsHeld int
	// Retunes counts EventRetuned notifications seen.
	Retunes int
	// Incidents counts structured conformance incidents reported through
	// ReportIncident by an attached online checker.
	Incidents int
	// Degraded reports whether the guard currently considers the
	// coordinator widened above the envelope floor.
	Degraded bool
	// TMin and TMax are the coordinator's last reported operating point
	// (zero until the first retune).
	TMin, TMax core.Tick
}

// Metrics returns a snapshot of the supervisor's counters.
func (s *Supervisor) Metrics() SupervisorMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// NewSupervisor builds a supervisor; nodes are attached with Manage.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("%w: supervisor needs a clock", ErrNodeConfig)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 8
	}
	if cfg.DegradedFactor <= 0 {
		cfg.DegradedFactor = 4
	}
	return &Supervisor{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[netem.NodeID]*supervised),
		peers:   make(map[core.ProcID]PeerState),
		peerGen: make(map[core.ProcID]uint64),
		timers:  make(map[uint64]func()),
	}, nil
}

// Manage places a node under supervision. factory builds the replacement
// machine for each restart; a nil factory disables restarts for this node
// (panics are still recovered and reported). The first Manage call starts
// the health-poll loop.
func (s *Supervisor) Manage(n *Node, factory func() (core.Machine, error)) error {
	if n == nil {
		return fmt.Errorf("%w: supervisor needs a node", ErrNodeConfig)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("%w: supervisor stopped", ErrNodeConfig)
	}
	if _, ok := s.nodes[n.ID()]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: node %d already supervised", ErrNodeConfig, n.ID())
	}
	s.nodes[n.ID()] = &supervised{node: n, factory: factory}
	startPoll := !s.polling
	s.polling = true
	s.mu.Unlock()

	n.SetRecover(s.onPanic)
	if startPoll {
		s.armPoll()
	}
	return nil
}

// Stop halts polling and cancels scheduled restarts and confirmations.
// Managed nodes keep running; they are just no longer healed.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopped = true
	// Cancel in arming order, not map order: under a SimClock the cancels
	// mutate the shared event heap, and a stable order keeps a stopped
	// supervisor's heap layout — and with it any replayed campaign —
	// byte-identical run to run.
	ids := make([]uint64, 0, len(s.timers))
	for id := range s.timers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cancels := make([]func(), 0, len(ids))
	for _, id := range ids {
		cancels = append(cancels, s.timers[id])
	}
	s.timers = make(map[uint64]func())
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Restarts reports how many times a node has been restarted.
func (s *Supervisor) Restarts(id netem.NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn, ok := s.nodes[id]; ok {
		return sn.restarts
	}
	return 0
}

// PeerState reports the supervisor's current opinion of a peer process.
func (s *Supervisor) PeerState(p core.ProcID) PeerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers[p]
}

// after arms a timer that Stop cancels and that forgets itself on firing,
// so a long-lived supervisor does not accumulate dead cancel funcs.
func (s *Supervisor) after(d core.Tick, fn func()) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	id := s.timerSeq
	s.timerSeq++
	//lint:allow noalloc-closure non-capturing placeholder closure is statically allocated by the compiler
	s.timers[id] = func() {} // placeholder until the clock hands us a cancel
	s.mu.Unlock()

	//lint:allow noalloc-closure self-forgetting timer wrapper allocates per armed suspicion, not per heartbeat
	cancel := s.cfg.Clock.After(d, func() {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		delete(s.timers, id)
		s.mu.Unlock()
		//lint:allow noalloc-closure fn is the confirmation closure checked at its construction site (noteSuspect)
		fn()
	})

	s.mu.Lock()
	if _, live := s.timers[id]; live {
		s.timers[id] = cancel
		s.mu.Unlock()
		return
	}
	// The timer already fired (tiny wall-clock delay) or Stop cleared it;
	// either way the map entry is gone and cancel is a no-op or due.
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		//lint:allow noalloc-closure timer cancel handle built (and checked) at arm time
		cancel()
	}
}

func (s *Supervisor) armPoll() {
	s.after(s.cfg.CheckEvery, s.poll)
}

// poll is the periodic health check: protocol-inactivated (and, if
// configured, crashed) or wedged nodes get a restart scheduled.
func (s *Supervisor) poll() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	type probe struct {
		id netem.NodeID
		sn *supervised
	}
	probes := make([]probe, 0, len(s.nodes))
	for id, sn := range s.nodes {
		probes = append(probes, probe{id, sn})
	}
	s.mu.Unlock()
	// Probe in a stable order: restart scheduling draws from the jitter
	// rng and arms same-tick timers, so map order would leak into the
	// replay trace.
	sort.Slice(probes, func(i, j int) bool { return probes[i].id < probes[j].id })

	for _, p := range probes {
		status := p.sn.node.Status()
		s.mu.Lock()
		wedged := p.sn.wedged
		s.mu.Unlock()
		needsRestart := wedged ||
			status == core.StatusInactive ||
			(status == core.StatusCrashed && s.cfg.RestartCrashed)
		if needsRestart {
			s.scheduleRestart(p.id)
		}
	}
	s.armPoll()
}

// onPanic is the node recover handler: report, mark wedged, heal. The
// panic value and operation are deliberately not rethrown — the whole
// point of supervision is to turn them into a restart.
func (s *Supervisor) onPanic(id netem.NodeID, _ string, _ any) {
	s.mu.Lock()
	sn, ok := s.nodes[id]
	if ok {
		sn.wedged = true
	}
	s.mu.Unlock()
	s.emit(Event{Time: s.cfg.Clock.Now(), Node: id, Kind: EventPanic})
	if ok {
		s.scheduleRestart(id)
	}
}

// scheduleRestart arms a backoff-delayed restart for the node unless one
// is already pending or the budget is exhausted.
func (s *Supervisor) scheduleRestart(id netem.NodeID) {
	s.mu.Lock()
	sn, ok := s.nodes[id]
	if !ok || sn.pending || sn.gaveUp || sn.factory == nil {
		s.mu.Unlock()
		return
	}
	if s.cfg.MaxRestarts > 0 && sn.restarts >= s.cfg.MaxRestarts {
		sn.gaveUp = true
		s.mu.Unlock()
		s.emit(Event{Time: s.cfg.Clock.Now(), Node: id, Kind: EventGaveUp})
		return
	}
	sn.pending = true
	d := s.cfg.Backoff.delay(sn.attempt, s.rng)
	s.metrics.RestartsScheduled++
	if s.metrics.Degraded {
		// Restart-storm guard: under a degraded (widened) envelope the
		// restarted node is likely to be suspected again; pace restarts
		// well below the loss episode's timescale.
		d *= core.Tick(s.cfg.DegradedFactor)
		s.metrics.RestartsHeld++
	}
	s.mu.Unlock()
	s.after(d, func() { s.restartNow(id) })
}

// restartNow builds the replacement machine and swaps it in.
func (s *Supervisor) restartNow(id netem.NodeID) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	sn, ok := s.nodes[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	factory := sn.factory
	s.mu.Unlock()

	m, err := factory()
	var restartErr error
	if err != nil {
		restartErr = err
	} else {
		restartErr = sn.node.Restart(m)
	}

	s.mu.Lock()
	sn.pending = false
	sn.restarts++
	sn.attempt++
	if restartErr == nil {
		sn.wedged = false
		// A restarted process is a fresh incarnation; forget old
		// suspicions about it.
		proc := core.ProcID(id)
		delete(s.peers, proc)
		s.peerGen[proc]++
	}
	s.mu.Unlock()

	if restartErr != nil {
		// The factory or swap failed (e.g. a transient bind error under a
		// real transport): try again with grown backoff.
		s.scheduleRestart(id)
		return
	}
	s.emit(Event{Time: s.cfg.Clock.Now(), Node: id, Kind: EventRestarted})
}

// HandleEvent implements EventSink. Install the supervisor as the Events
// sink of its managed nodes: it grades peer suspicions into confirmed
// downs and forwards everything — suspicions immediately (degraded mode),
// EventDown only after the confirmation window — to the configured sink.
func (s *Supervisor) HandleEvent(e Event) {
	s.emit(e)
	switch e.Kind {
	case EventSuspect:
		s.noteSuspect(e)
	case EventJoined:
		// The node itself (re)joined: it is alive, clear opinions of it,
		// and let its restart backoff start over — a clean rejoin ends
		// the failure episode the exponent was counting.
		s.clearPeer(core.ProcID(e.Node))
		s.mu.Lock()
		if sn, ok := s.nodes[e.Node]; ok {
			sn.attempt = 0
		}
		s.mu.Unlock()
	case EventRetuned:
		s.noteRetune(e)
	}
}

// ReportIncident feeds a structured incident from an attached online
// conformance checker (e.g. conform.StreamChecker) into the grading
// path: the incident is counted in the metrics and emitted to the
// configured sink as an EventIncident carrying the summary. node is the
// blamed process (the coordinator for model divergences). Unlike timers,
// incident reporting survives Stop — a checker finishing after the run
// still files its loss-gated violations.
func (s *Supervisor) ReportIncident(node netem.NodeID, detail string) {
	s.mu.Lock()
	s.metrics.Incidents++
	s.mu.Unlock()
	s.emit(Event{Time: s.cfg.Clock.Now(), Node: node, Kind: EventIncident, Detail: detail})
}

// noteRetune tracks the adaptive coordinator's operating point for the
// envelope-aware restart guard.
func (s *Supervisor) noteRetune(e Event) {
	s.mu.Lock()
	s.metrics.Retunes++
	s.metrics.TMin, s.metrics.TMax = e.TMin, e.TMax
	if s.cfg.Envelope != nil {
		s.metrics.Degraded = e.TMax > s.cfg.Envelope.TMaxLo
	}
	s.mu.Unlock()
}

func (s *Supervisor) noteSuspect(e Event) {
	s.mu.Lock()
	if s.peers[e.Proc] != PeerHealthy {
		s.mu.Unlock()
		return // already suspected or down
	}
	s.peers[e.Proc] = PeerSuspected
	s.metrics.Suspects++
	s.peerGen[e.Proc]++
	gen := s.peerGen[e.Proc]
	wait := s.cfg.ConfirmAfter
	s.mu.Unlock()
	if wait <= 0 {
		s.confirmDown(e, gen)
		return
	}
	//lint:allow noalloc-closure one confirmation closure per suspicion; suspicions are rare events, not steady state
	s.after(wait, func() { s.confirmDown(e, gen) })
}

func (s *Supervisor) confirmDown(e Event, gen uint64) {
	s.mu.Lock()
	if s.stopped || s.peerGen[e.Proc] != gen || s.peers[e.Proc] != PeerSuspected {
		s.mu.Unlock()
		return // contradicted (rejoin/restart) in the meantime
	}
	s.peers[e.Proc] = PeerDown
	s.metrics.Confirms++
	s.mu.Unlock()
	s.emit(Event{Time: s.cfg.Clock.Now(), Node: e.Node, Kind: EventDown, Proc: e.Proc})
}

func (s *Supervisor) clearPeer(p core.ProcID) {
	s.mu.Lock()
	delete(s.peers, p)
	s.peerGen[p]++
	s.mu.Unlock()
}

func (s *Supervisor) emit(e Event) {
	if s.cfg.Events != nil {
		s.cfg.Events.HandleEvent(e)
	}
}

// Retry runs op up to attempts times, sleeping base, 2·base, 4·base, …
// (wall-clock) between failures. It is the remedy for transient UDP
// bind/send errors — a socket still in TIME_WAIT, a momentarily full
// buffer — and is therefore wall-clock by design; do not call it under a
// simulated clock.
func Retry(attempts int, base time.Duration, op func() error) error {
	if attempts < 1 {
		return fmt.Errorf("%w: retry needs at least one attempt", ErrNodeConfig)
	}
	var err error
	for k := 0; k < attempts; k++ {
		if err = op(); err == nil {
			return nil
		}
		if k < attempts-1 {
			//lint:allow determinism Retry is a wall-clock utility for real deployments; simulated runs pace restarts through the Supervisor's Clock instead.
			time.Sleep(base << k)
		}
	}
	return fmt.Errorf("detector: %d attempts failed: %w", attempts, err)
}
