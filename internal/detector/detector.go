// Package detector runs the heartbeat protocol machines of internal/core
// over a clock and a transport, turning them into a usable failure
// detector — the downstream application both papers cite.
//
// A Node owns one protocol machine. It registers with a netem transport,
// decodes incoming beats, drives the machine, and executes the machine's
// actions: sending beats, (re)arming timers, and reporting liveness events
// to an EventSink. Nodes work identically over the discrete-event simulator
// (SimClock + netem.Network) and the wall clock (WallClock +
// netem.RealNetwork).
package detector

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Clock schedules callbacks in protocol ticks.
type Clock interface {
	// Now returns the current time in ticks.
	Now() core.Tick
	// After runs fn after d ticks and returns a cancel function.
	// Cancelling after the callback ran is a no-op.
	After(d core.Tick, fn func()) (cancel func())
}

// SimClock adapts a sim.Simulator to the Clock interface.
type SimClock struct {
	Sim *sim.Simulator
}

var _ Clock = SimClock{}

// Now implements Clock.
func (c SimClock) Now() core.Tick { return core.Tick(c.Sim.Now()) }

// After implements Clock.
func (c SimClock) After(d core.Tick, fn func()) (cancel func()) {
	tm, err := c.Sim.Schedule(sim.Time(d), fn)
	if err != nil {
		// Machines only arm non-negative delays; a failure here is a
		// programming error inside this package, and silently dropping
		// the timer would hang the protocol.
		//lint:allow noalloc-closure cold panic path; machines only arm non-negative delays
		panic(fmt.Sprintf("detector: scheduling timer: %v", err))
	}
	//lint:allow noalloc-closure generic-clock cancel handle allocates once per arm; the hot path arms through setSimTimer
	return func() { tm.Cancel() }
}

// WallClock implements Clock on the wall clock, mapping ticks to
// TickLen-sized slices of real time.
type WallClock struct {
	// TickLen is the physical duration of one protocol tick.
	TickLen time.Duration
	// Epoch anchors tick 0; NewWallClock sets it to the creation time.
	Epoch time.Time
}

// NewWallClock returns a wall clock whose tick 0 is now.
func NewWallClock(tickLen time.Duration) WallClock {
	return WallClock{TickLen: tickLen, Epoch: time.Now()}
}

var _ Clock = WallClock{}

// Now implements Clock.
func (c WallClock) Now() core.Tick {
	return core.Tick(time.Since(c.Epoch) / c.TickLen)
}

// After implements Clock.
func (c WallClock) After(d core.Tick, fn func()) (cancel func()) {
	t := time.AfterFunc(time.Duration(d)*c.TickLen, fn)
	//lint:allow noalloc-closure wall-clock timer handle; the 0-alloc pin drives the SimClock fast path
	return func() { t.Stop() }
}

// EventKind classifies liveness events reported by a Node.
type EventKind int

// Event kinds.
const (
	// EventInactivated: the node stopped participating (see Voluntary).
	EventInactivated EventKind = iota + 1
	// EventSuspect: the coordinator's waiting time for Proc decayed below
	// tmin.
	EventSuspect
	// EventJoined: an expanding/dynamic participant was acknowledged.
	EventJoined
	// EventLeft: a dynamic participant completed a graceful leave.
	EventLeft
	// EventDown: a Supervisor confirmed a suspected peer as down after
	// the confirmation window elapsed with no contradicting evidence.
	EventDown
	// EventRestarted: a Supervisor restarted the node with a fresh
	// machine.
	EventRestarted
	// EventPanic: a handler panic on the node was recovered.
	EventPanic
	// EventGaveUp: the Supervisor exhausted the node's restart budget.
	EventGaveUp
	// EventRetuned: an adaptive coordinator moved its timing constants to
	// a new operating point (TMin, TMax) within its envelope.
	EventRetuned
	// EventIncident: an online conformance checker reported a structured
	// incident (model divergence or R1–R3 violation) through the
	// supervisor's grading path; Detail carries the one-line summary.
	EventIncident
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventInactivated:
		return "inactivated"
	case EventSuspect:
		return "suspect"
	case EventJoined:
		return "joined"
	case EventLeft:
		return "left"
	case EventDown:
		return "down"
	case EventRestarted:
		return "restarted"
	case EventPanic:
		return "panic"
	case EventGaveUp:
		return "gave-up"
	case EventRetuned:
		return "retuned"
	case EventIncident:
		return "incident"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a liveness notification.
type Event struct {
	Time core.Tick
	Node netem.NodeID
	Kind EventKind
	// Proc is the suspected process for EventSuspect.
	Proc core.ProcID
	// Voluntary distinguishes a crash from a protocol decision for
	// EventInactivated.
	Voluntary bool
	// TMin and TMax carry the new operating point for EventRetuned.
	TMin, TMax core.Tick
	// Detail is the conformance incident summary for EventIncident.
	Detail string
}

// EventSink receives events. Implementations must be safe for the
// concurrency of the chosen clock: single-threaded under SimClock,
// concurrent under WallClock.
type EventSink interface {
	HandleEvent(Event)
}

// EventFunc adapts a function to EventSink.
type EventFunc func(Event)

// HandleEvent implements EventSink.
//
//lint:allow noalloc-closure EventFunc adapts an installer-supplied sink; the bundled sinks (Supervisor, conform) are checked in their own right
func (f EventFunc) HandleEvent(e Event) { f(e) }

// Config assembles a Node.
type Config struct {
	// ID is the node's transport address; it must equal the machine's
	// process ID convention (coordinator at 0).
	ID netem.NodeID
	// Machine is the protocol role to run.
	Machine core.Machine
	// Clock drives timers.
	Clock Clock
	// Transport carries beats. The node registers itself on creation.
	Transport netem.Transport
	// Events, if non-nil, receives liveness notifications.
	Events EventSink
	// Observe, if non-nil, receives every machine step (trigger plus
	// returned actions) before the actions are executed; see Observer.
	Observe Observer
	// ReceivePriority applies the §6.1 fix at the runtime level: a timer
	// firing is deferred behind any same-instant deliveries already in
	// flight, by re-queueing the timer callback once at zero delay. Set
	// it when the machine's Config.Fixed is set.
	ReceivePriority bool
}

// Node runs one protocol machine. All methods are safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	cfg     Config
	timers  map[core.TimerID]func() // pending cancels (generic clock path)
	seq     map[core.TimerID]uint64 // generation guard against stale fires
	started bool
	// simc is non-nil when the clock is a plain SimClock; timers then run
	// on the allocation-free fast path: sim.Timer cancellation is exact
	// and the simulation is single-threaded, so no generation guards or
	// per-arm closures are needed.
	simc      *sim.Simulator
	simTimers map[core.TimerID]*simTimer
	buf       []byte // scratch for marshalling outgoing beats
	recoverFn func(id netem.NodeID, op string, recovered any)
}

// simTimer is the per-TimerID state of the SimClock fast path. Its
// closures are built once, on the timer's first arm, and reused for every
// subsequent (re)arm.
type simTimer struct {
	tm   sim.Timer
	arm  sim.Event // scheduled at the machine's delay
	fire sim.Event // runs the machine's OnTimer
}

// ErrNodeConfig reports an invalid node configuration.
var ErrNodeConfig = errors.New("detector: invalid node config")

// NewNode builds a node and registers it with the transport.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Machine == nil || cfg.Clock == nil || cfg.Transport == nil {
		return nil, fmt.Errorf("%w: machine, clock and transport are required", ErrNodeConfig)
	}
	n := &Node{
		cfg:    cfg,
		timers: make(map[core.TimerID]func()),
		seq:    make(map[core.TimerID]uint64),
	}
	if sc, ok := cfg.Clock.(SimClock); ok {
		n.simc = sc.Sim
		n.simTimers = make(map[core.TimerID]*simTimer)
	}
	if err := cfg.Transport.Register(cfg.ID, n.onMessage); err != nil {
		return nil, fmt.Errorf("detector: registering node %d: %w", cfg.ID, err)
	}
	return n, nil
}

// ID returns the node's transport address.
func (n *Node) ID() netem.NodeID { return n.cfg.ID }

// Status reports the machine's liveness state.
func (n *Node) Status() core.Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Machine.Status()
}

// Machine returns the node's current protocol machine. After a Restart
// this is the replacement machine, not the one the node was built with.
func (n *Node) Machine() core.Machine {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Machine
}

// SetRecover installs a handler for panics escaping the protocol machine.
// With a handler installed, a panic in OnBeat/OnTimer is recovered, the
// node's remaining state is left as the machine last wrote it (possibly
// corrupt — the handler should arrange a Restart), and the handler is
// called outside the node's lock. Without a handler panics propagate, as
// before.
func (n *Node) SetRecover(fn func(id netem.NodeID, op string, recovered any)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.recoverFn = fn
}

// Restart replaces the node's machine with m and starts it, cancelling
// every pending timer and invalidating in-flight timer callbacks of the
// old machine. It is the self-healing path: a crashed, wedged, or
// protocol-inactivated node re-enters the protocol as a fresh process
// (for the dynamic protocol, the fresh machine solicits a join, which the
// coordinator treats like any joiner). The node keeps its transport
// registration.
func (n *Node) Restart(m core.Machine) error {
	if m == nil {
		return fmt.Errorf("%w: restart needs a machine", ErrNodeConfig)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, cancel := range n.timers {
		cancel()
		delete(n.timers, id)
	}
	for id := range n.seq {
		n.seq[id]++ // strand any fire already past its cancel
	}
	for _, st := range n.simTimers {
		st.tm.Cancel() // exact: a cancelled sim timer never fires
	}
	n.cfg.Machine = m
	n.started = true
	actions := m.Start(n.cfg.Clock.Now())
	n.observe(Trigger{Kind: TriggerRestart}, actions)
	n.apply(actions)
	return nil
}

// runGuarded calls fn, reports the step to the observer, and applies its
// actions; callers hold n.mu. When a recover handler is installed, a panic
// from the machine (or from applying its actions) is captured and returned
// instead of propagating; otherwise it propagates unchanged. A step whose
// machine call panics is not observed.
func (n *Node) runGuarded(tr Trigger, fn func() []core.Action) (recovered any) {
	defer func() {
		if r := recover(); r != nil {
			if n.recoverFn == nil {
				panic(r)
			}
			recovered = r
		}
	}()
	//lint:allow noalloc-closure fn is the machine-step closure built at each call site; its body is attributed to and checked at those sites
	actions := fn()
	n.observe(tr, actions)
	n.apply(actions)
	return nil
}

// Start delivers Start to the machine. It must be called exactly once.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("%w: node %d already started", ErrNodeConfig, n.cfg.ID)
	}
	n.started = true
	actions := n.cfg.Machine.Start(n.cfg.Clock.Now())
	n.observe(Trigger{Kind: TriggerStart}, actions)
	n.apply(actions)
	return nil
}

// Crash injects a voluntary inactivation.
func (n *Node) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	actions := n.cfg.Machine.Crash(n.cfg.Clock.Now())
	n.observe(Trigger{Kind: TriggerCrash}, actions)
	n.apply(actions)
}

// Leave starts a graceful departure; the machine must be a dynamic
// core.Participant.
func (n *Node) Leave() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.cfg.Machine.(*core.Participant)
	if !ok {
		return fmt.Errorf("%w: node %d machine cannot leave", ErrNodeConfig, n.cfg.ID)
	}
	actions, err := p.Leave(n.cfg.Clock.Now())
	if err != nil {
		return err
	}
	n.observe(Trigger{Kind: TriggerLeave}, actions)
	n.apply(actions)
	return nil
}

// Rejoin re-enters the protocol after a completed leave; the machine must
// be a dynamic core.Participant and the coordinator must allow rejoin.
func (n *Node) Rejoin() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.cfg.Machine.(*core.Participant)
	if !ok {
		return fmt.Errorf("%w: node %d machine cannot rejoin", ErrNodeConfig, n.cfg.ID)
	}
	actions, err := p.Rejoin(n.cfg.Clock.Now())
	if err != nil {
		return err
	}
	n.observe(Trigger{Kind: TriggerRejoin}, actions)
	n.apply(actions)
	return nil
}

// onMessage is the transport delivery handler.
func (n *Node) onMessage(msg netem.Message) {
	beat, err := core.UnmarshalBeat(msg.Payload)
	if err != nil {
		return // garbage on the wire is dropped, like a lost message
	}
	n.mu.Lock()
	rec := n.runGuarded(Trigger{Kind: TriggerBeat, Beat: beat}, func() []core.Action {
		return n.cfg.Machine.OnBeat(beat, n.cfg.Clock.Now())
	})
	h := n.recoverFn
	n.mu.Unlock()
	if rec != nil {
		h(n.cfg.ID, "beat", rec)
	}
}

// onTimer is the timer callback for generation gen of timer id.
func (n *Node) onTimer(id core.TimerID, gen uint64) {
	n.mu.Lock()
	if n.seq[id] != gen {
		n.mu.Unlock()
		return // superseded by a later SetTimer
	}
	if n.cfg.ReceivePriority {
		// §6.1: let same-instant deliveries already queued run first by
		// taking one zero-delay hop through the scheduler.
		n.seq[id]++
		gen := n.seq[id]
		//lint:allow noalloc-closure generic-clock rearm hop allocates one closure; the SimClock fast path hops through setSimTimer instead
		n.timers[id] = n.cfg.Clock.After(0, func() { n.fireTimer(id, gen) })
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.fireTimer(id, gen)
}

func (n *Node) fireTimer(id core.TimerID, gen uint64) {
	n.mu.Lock()
	if n.seq[id] != gen {
		n.mu.Unlock()
		return
	}
	delete(n.timers, id)
	//lint:allow hot-path-alloc closure does not escape runGuarded (called inline, not retained), so it stays on the stack
	rec := n.runGuarded(Trigger{Kind: TriggerTimer, Timer: id}, func() []core.Action {
		return n.cfg.Machine.OnTimer(id, n.cfg.Clock.Now())
	})
	h := n.recoverFn
	n.mu.Unlock()
	if rec != nil {
		//lint:allow noalloc-closure recover handler runs only after a machine panic, never in steady state
		h(n.cfg.ID, "timer", rec)
	}
}

// apply executes the machine's actions. Callers hold n.mu.
//
//hbvet:noalloc
func (n *Node) apply(actions []core.Action) {
	now := n.cfg.Clock.Now()
	for _, act := range actions {
		switch act.Kind {
		case core.ActSendBeat:
			// Marshal into the node's scratch buffer; transports copy the
			// payload before returning, so the buffer is free for the next
			// beat. Ignore send errors: an unknown recipient behaves like
			// a lossy link, which the protocol already tolerates.
			n.buf = act.Beat.AppendMarshal(n.buf[:0])
			_ = n.cfg.Transport.Send(n.cfg.ID, netem.NodeID(act.To), n.buf)
		case core.ActSetTimer:
			if n.simc != nil {
				n.setSimTimer(act.ID, act.Delay)
				continue
			}
			if cancel, ok := n.timers[act.ID]; ok {
				//lint:allow noalloc-closure timer cancel handle built (and checked) at arm time; the sim handle is allocation-free
				cancel()
			}
			n.seq[act.ID]++
			gen := n.seq[act.ID]
			id := act.ID
			//lint:allow hot-path-alloc generic-clock arm path; the SimClock hot path took the setSimTimer branch above
			n.timers[id] = n.cfg.Clock.After(act.Delay, func() { n.onTimer(id, gen) })
		case core.ActCancelTimer:
			if n.simc != nil {
				if st, ok := n.simTimers[act.ID]; ok {
					st.tm.Cancel()
				}
				continue
			}
			if cancel, ok := n.timers[act.ID]; ok {
				//lint:allow noalloc-closure timer cancel handle built (and checked) at arm time; the sim handle is allocation-free
				cancel()
				delete(n.timers, act.ID)
			}
			n.seq[act.ID]++
		case core.ActInactivate:
			n.emit(Event{Time: now, Node: n.cfg.ID, Kind: EventInactivated, Voluntary: act.Voluntary})
		case core.ActSuspect:
			n.emit(Event{Time: now, Node: n.cfg.ID, Kind: EventSuspect, Proc: act.Proc})
		case core.ActJoined:
			n.emit(Event{Time: now, Node: n.cfg.ID, Kind: EventJoined})
		case core.ActLeft:
			n.emit(Event{Time: now, Node: n.cfg.ID, Kind: EventLeft})
		case core.ActRetune:
			n.emit(Event{Time: now, Node: n.cfg.ID, Kind: EventRetuned, TMin: act.TMin, TMax: act.TMax})
		}
	}
}

// setSimTimer (re)arms a timer on the SimClock fast path. The simTimer's
// closures are created once per TimerID; steady-state rearms allocate
// nothing. Callers hold n.mu; the simulation itself is single-threaded,
// so the closures may touch st without the lock.
//
//hbvet:noalloc
func (n *Node) setSimTimer(id core.TimerID, d core.Tick) {
	st, ok := n.simTimers[id]
	if !ok {
		//lint:allow hot-path-alloc first-arm warm-up; one simTimer per TimerID, reused for every rearm
		st = &simTimer{}
		//lint:allow hot-path-alloc built once per TimerID on first arm, reused afterwards
		st.fire = func() { n.fireSimTimer(id) }
		if n.cfg.ReceivePriority {
			// §6.1: when the delay elapses, take one zero-delay hop
			// through the scheduler so same-instant deliveries already
			// queued run first. A SetTimer or CancelTimer landing during
			// the hop cancels it through st.tm as usual.
			//lint:allow hot-path-alloc built once per TimerID on first arm, reused afterwards
			st.arm = func() {
				tm, err := n.simc.Schedule(0, st.fire)
				if err != nil {
					//lint:allow noalloc-closure cold panic path; the zero-delay hop only fails on scheduler misuse
					panic(fmt.Sprintf("detector: scheduling timer hop: %v", err))
				}
				st.tm = tm
			}
		} else {
			st.arm = st.fire
		}
		n.simTimers[id] = st
	}
	st.tm.Cancel() // no-op unless a previous arm is still pending
	tm, err := n.simc.Schedule(sim.Time(d), st.arm)
	if err != nil {
		//lint:allow hot-path-alloc cold panic path; machines only arm non-negative delays
		panic(fmt.Sprintf("detector: scheduling timer: %v", err))
	}
	st.tm = tm
}

// fireSimTimer delivers a timer expiry to the machine on the SimClock
// fast path.
//
//hbvet:noalloc
func (n *Node) fireSimTimer(id core.TimerID) {
	n.mu.Lock()
	//lint:allow hot-path-alloc closure does not escape runGuarded (called inline, not retained), so it stays on the stack
	rec := n.runGuarded(Trigger{Kind: TriggerTimer, Timer: id}, func() []core.Action {
		return n.cfg.Machine.OnTimer(id, n.cfg.Clock.Now())
	})
	h := n.recoverFn
	n.mu.Unlock()
	if rec != nil {
		//lint:allow noalloc-closure recover handler runs only after a machine panic, never in steady state
		h(n.cfg.ID, "timer", rec)
	}
}

func (n *Node) emit(e Event) {
	if n.cfg.Events != nil {
		n.cfg.Events.HandleEvent(e)
	}
}
