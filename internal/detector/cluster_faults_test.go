package detector

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// TestClusterFaultReplayByteIdentical is the subsystem's core guarantee:
// one schedule — a crash at t1, a partition over [t2, t3], bursty
// Gilbert–Elliott loss throughout — replayed over two fresh clusters with
// the same seeds yields byte-identical event traces and statistics.
func TestClusterFaultReplayByteIdentical(t *testing.T) {
	run := func() string {
		sched := &faults.Schedule{Seed: 99, Events: []faults.Event{
			{At: 0, Kind: faults.KindLoss, AllLinks: true,
				GE: &faults.GilbertElliott{PGoodBad: 0.02, PBadGood: 0.4, LossBad: 0.8}},
			{At: 150, Kind: faults.KindCrash, Node: 2},
			{At: 300, Kind: faults.KindPartition, Node: 1},
			{At: 400, Kind: faults.KindHeal, Node: 1},
		}}
		cfg := ClusterConfig{
			Protocol: ProtocolStatic,
			Core:     core.Config{TMin: 2, TMax: 16},
			N:        2,
			Seed:     11,
			Faults:   sched,
		}
		c := newCluster(t, cfg)
		c.Sim.RunUntil(2000)
		out := fmt.Sprintf("faults=%+v\nnet=%+v\n", c.Faults.Stats(), c.Net.Stats().Total)
		for _, e := range c.Events {
			out += fmt.Sprintf("t=%d n=%d %v proc=%d vol=%v\n",
				e.Time, e.Node, e.Kind, e.Proc, e.Voluntary)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault replay diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty trace; the schedule did nothing")
	}
}

// TestClusterScheduledCrashDetected ports the manual Crash() injection
// onto the schedule path: a scripted crash must be suspected and wind the
// network down exactly like a direct one.
func TestClusterScheduledCrashDetected(t *testing.T) {
	cfg := binaryConfig()
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		{At: 100, Kind: faults.KindCrash, Node: 1},
	}}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(1000)
	if c.Participants[1].Status() != core.StatusCrashed {
		t.Fatalf("scheduled crash did not land: %v", c.Participants[1].Status())
	}
	ev, ok := c.FirstEvent(0, EventSuspect)
	if !ok || ev.Proc != 1 {
		t.Fatalf("no suspicion of p[1]: %v", c.Events)
	}
	delay := ev.Time - 100
	bound := cfg.Core.CoordinatorDetectionBound() + cfg.Core.TMin
	if delay <= 0 || delay > bound {
		t.Fatalf("detection delay %d outside (0, %d]", delay, bound)
	}
	if !c.AllInactiveBy() {
		t.Fatal("cluster not fully inactive after detection")
	}
}

// TestClusterScheduledRestartRevives: a scripted crash+restart pair over a
// self-healing dynamic cluster brings the member back as a fresh
// incarnation and the network re-forms.
func TestClusterScheduledRestartRevives(t *testing.T) {
	cfg := ClusterConfig{
		Protocol:    ProtocolDynamic,
		Core:        core.Config{TMin: 2, TMax: 10},
		N:           2,
		Seed:        21,
		AllowRejoin: true,
		Faults: &faults.Schedule{Events: []faults.Event{
			{At: 200, Kind: faults.KindCrash, Node: 1},
			{At: 600, Kind: faults.KindRestart, Node: 1},
		}},
		Heal: &SupervisorConfig{CheckEvery: 8, Backoff: Backoff{Base: 2, Max: 16}, Seed: 21},
	}
	c := newCluster(t, cfg)
	defer c.Stop()
	c.Sim.RunUntil(3000)
	if got := c.Participants[1].Status(); got != core.StatusActive {
		t.Fatalf("p[1] = %v after scheduled restart, want active", got)
	}
	if got := c.Coordinator.Status(); got != core.StatusActive {
		t.Fatalf("p[0] = %v, want active (self-heal failed): %v", got, c.Events)
	}
	if got := c.Participants[2].Status(); got != core.StatusActive {
		t.Fatalf("p[2] = %v, want active", got)
	}
	// The crash must have disturbed the network (paper semantics) and the
	// supervisor must have healed at least the coordinator afterwards.
	if _, ok := c.FirstEvent(0, EventInactivated); !ok {
		t.Fatalf("crash never wound the coordinator down: %v", c.Events)
	}
	if _, ok := c.FirstEvent(0, EventRestarted); !ok {
		t.Fatalf("supervisor never restarted the coordinator: %v", c.Events)
	}
	joins := 0
	for _, e := range c.Events {
		if e.Node == 1 && e.Kind == EventJoined {
			joins++
		}
	}
	if joins < 2 {
		t.Fatalf("p[1] joined %d times, want initial + post-restart: %v", joins, c.Events)
	}
}

// TestClusterClockDrift: a mild per-node clock drift from a schedule must
// not break a healthy cluster (the protocol tolerates rate skews well
// below the tmax/tmin ratio).
func TestClusterClockDrift(t *testing.T) {
	cfg := binaryConfig()
	cfg.Core = core.Config{TMin: 2, TMax: 16}
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		{At: 0, Kind: faults.KindDrift, Node: 1, Num: 11, Den: 10},
	}}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(4000)
	if c.Coordinator.Status() != core.StatusActive || c.Participants[1].Status() != core.StatusActive {
		t.Fatalf("mild drift killed the cluster: %v", c.Events)
	}
	if len(c.Events) != 0 {
		t.Fatalf("events under mild drift: %v", c.Events)
	}
	// The drifted clock really runs fast.
	if lo, hi := c.Clocks[1].Now(), c.Clocks[0].Now(); lo <= hi {
		t.Fatalf("drifted clock at %d, undrifted at %d; want faster", lo, hi)
	}
}

// TestClusterFaultControlErrors: schedules addressing unknown nodes fail
// loudly at the control interface.
func TestClusterFaultControlErrors(t *testing.T) {
	cfg := binaryConfig()
	cfg.Faults = &faults.Schedule{}
	c := newCluster(t, cfg)
	if err := c.CrashNode(42); err == nil {
		t.Fatal("CrashNode(42) on a 2-node cluster succeeded")
	}
	if err := c.RestartNode(42); err == nil {
		t.Fatal("RestartNode(42) succeeded")
	}
	if err := c.SetDrift(42, 2, 1, 0); err == nil {
		t.Fatal("SetDrift(42) succeeded")
	}
	if err := c.RestartNode(0); err != nil {
		t.Fatalf("RestartNode(coordinator): %v", err)
	}
}

// TestClusterFaultScheduleErrorsRecorded: a schedule event addressing an
// unknown node is recorded on the cluster instead of vanishing.
func TestClusterFaultScheduleErrorsRecorded(t *testing.T) {
	cfg := binaryConfig()
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		{At: 10, Kind: faults.KindCrash, Node: 42},
		{At: 20, Kind: faults.KindCrash, Node: 1},
	}}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(100)
	errs := c.FaultErrors()
	if len(errs) != 1 {
		t.Fatalf("FaultErrors = %v, want exactly the node-42 crash", errs)
	}
	if got := errs[0].Error(); !strings.Contains(got, "node=42") {
		t.Fatalf("error %q does not name the bad node", got)
	}
}
