package detector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// TestClusterAdaptiveSurvivesLossEpisode is the wire-level degradation
// check: under a loss episode heavy enough to false-confirm a fixed
// level-0 cluster, the adaptive cluster widens (EventRetuned), survives,
// and tightens back to the floor once the episode ends.
func TestClusterAdaptiveSurvivesLossEpisode(t *testing.T) {
	env := core.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 64}
	// A uniform 40% loss episode over [100, 500): Gilbert–Elliott pinned
	// in its lossy state. Heavy enough that the level-0 constants
	// false-confirm (round-trip miss ≈ 0.64, tolerance 2 misses), short
	// enough that widened participants ride it out on occasional beats.
	episode := &faults.GilbertElliott{PGoodBad: 1, PBadGood: 0, LossGood: 0.4, LossBad: 0.4}
	sched := &faults.Schedule{Seed: 5, Events: []faults.Event{
		{At: 100, Kind: faults.KindLoss, AllLinks: true, GE: episode},
		{At: 500, Kind: faults.KindLoss, AllLinks: true},
	}}
	cfg := ClusterConfig{
		Protocol: ProtocolStatic,
		N:        2,
		Seed:     31,
		Adaptive: &core.AdaptiveOptions{Envelope: env, Window: 4},
		Faults:   sched,
	}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(4000)

	if c.Coordinator.Status() != core.StatusActive {
		t.Fatalf("adaptive coordinator inactivated under survivable loss: %v", c.Events)
	}
	var widened, tightened bool
	for _, e := range c.Events {
		switch e.Kind {
		case EventRetuned:
			if e.TMax > env.TMaxLo {
				widened = true
			} else if widened {
				tightened = true
			}
		case EventInactivated:
			t.Fatalf("node %d inactivated: %v", e.Node, c.Events)
		}
	}
	if !widened {
		t.Fatalf("no widening retune under 70%% loss: %v", c.Events)
	}
	if !tightened {
		t.Fatalf("no tighten after the episode ended: %v", c.Events)
	}
	ac, ok := c.Coordinator.Machine().(*core.AdaptiveCoordinator)
	if !ok {
		t.Fatalf("coordinator machine is %T, want *core.AdaptiveCoordinator", c.Coordinator.Machine())
	}
	if ac.Level() != 0 {
		t.Fatalf("level = %d after recovery, want 0", ac.Level())
	}

	// The same episode against the fixed level-0 constants tears the
	// cluster down — the contrast that motivates the adaptive variant.
	fixed := ClusterConfig{
		Protocol: ProtocolStatic,
		Core:     core.Config{TMin: 2, TMax: 8},
		N:        2,
		Seed:     31,
		Faults:   sched,
	}
	fc := newCluster(t, fixed)
	fc.Sim.RunUntil(4000)
	if fc.Coordinator.Status() == core.StatusActive {
		t.Fatal("fixed cluster survived; loss episode too mild to prove degradation")
	}
}

// TestClusterAdaptiveReplayByteIdentical extends the replay guarantee to
// the adaptive variant: same seeds, same schedule, byte-identical events
// including every retune.
func TestClusterAdaptiveReplayByteIdentical(t *testing.T) {
	run := func() []Event {
		env := core.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
		cfg := ClusterConfig{
			Protocol: ProtocolStatic,
			N:        2,
			Seed:     13,
			Adaptive: &core.AdaptiveOptions{Envelope: env, Window: 4},
			Faults: &faults.Schedule{Seed: 77, Events: []faults.Event{
				{At: 50, Kind: faults.KindLoss, AllLinks: true,
					GE: &faults.GilbertElliott{PGoodBad: 0.3, PBadGood: 0.2, LossBad: 0.95}},
			}},
		}
		c := newCluster(t, cfg)
		c.Sim.RunUntil(3000)
		return c.Events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d events", len(a), len(b))
	}
	var retunes int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Kind == EventRetuned {
			retunes++
		}
	}
	if retunes == 0 {
		t.Fatal("no retunes under bursty loss; test exercises nothing")
	}
}

// TestClusterAdaptiveValidation: a broken envelope is rejected at
// assembly, not at run time.
func TestClusterAdaptiveValidation(t *testing.T) {
	_, err := NewCluster(ClusterConfig{
		Protocol: ProtocolStatic,
		N:        1,
		Adaptive: &core.AdaptiveOptions{Envelope: core.Envelope{TMinLo: 4, TMinHi: 2, TMaxLo: 8, TMaxHi: 16}},
	})
	if err == nil {
		t.Fatal("invalid envelope accepted")
	}
}
