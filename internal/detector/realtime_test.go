package detector

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
)

// TestRealTimeOverUDP runs the binary protocol end-to-end over real UDP
// sockets and the wall clock: steady state first, then a crash, then the
// coordinator's detection. Wall-clock tests are inherently jittery, so
// the tick is generous and only coarse milestones are asserted.
func TestRealTimeOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test; skipped in -short")
	}
	transport := netem.NewUDPTransport()
	defer func() {
		if err := transport.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	clock := NewWallClock(5 * time.Millisecond)
	cfg := core.Config{TMin: 4, TMax: 16}

	var mu sync.Mutex
	var events []Event
	sink := EventFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	})

	coordMachine, err := core.NewCoordinator(core.CoordinatorConfig{
		Config:     cfg,
		Membership: core.MembershipFixed,
		Members:    []core.ProcID{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewNode(Config{
		ID: 0, Machine: coordMachine, Clock: clock, Transport: transport, Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	respMachine, err := core.NewResponder(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewNode(Config{
		ID: 1, Machine: respMachine, Clock: clock, Transport: transport, Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	if err := resp.Start(); err != nil {
		t.Fatal(err)
	}

	// Steady state: several rounds without events.
	time.Sleep(time.Duration(cfg.TMax) * 5 * time.Millisecond * 6)
	mu.Lock()
	early := len(events)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("events during steady state: %v", events)
	}
	if coord.Status() != core.StatusActive || resp.Status() != core.StatusActive {
		t.Fatal("cluster not active in steady state")
	}

	// Crash the responder; detection must follow within the corrected
	// bound plus generous wall-clock slack.
	resp.Crash()
	deadline := time.Now().Add(time.Duration(cfg.CoordinatorDetectionBound()+4*cfg.TMax) * 5 * time.Millisecond)
	for time.Now().Before(deadline) {
		if coord.Status() != core.StatusActive {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if coord.Status() != core.StatusInactive {
		t.Fatalf("coordinator did not detect the crash; status %v, events %v",
			coord.Status(), events)
	}
	mu.Lock()
	defer mu.Unlock()
	var suspected bool
	for _, e := range events {
		if e.Kind == EventSuspect && e.Node == 0 && e.Proc == 1 {
			suspected = true
		}
	}
	if !suspected {
		t.Fatalf("no suspicion event recorded: %v", events)
	}
}
