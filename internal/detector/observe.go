package detector

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netem"
)

// TriggerKind classifies what caused a protocol machine step.
type TriggerKind int

// Trigger kinds.
const (
	// TriggerStart: the machine's Start was delivered (initial entry).
	TriggerStart TriggerKind = iota + 1
	// TriggerRestart: a fresh machine's Start was delivered via Restart.
	TriggerRestart
	// TriggerTimer: a timer fired (Trigger.Timer identifies it).
	TriggerTimer
	// TriggerBeat: a beat was delivered (Trigger.Beat holds it).
	TriggerBeat
	// TriggerCrash: a crash was injected.
	TriggerCrash
	// TriggerLeave: a graceful leave was initiated.
	TriggerLeave
	// TriggerRejoin: a re-entry after a completed leave was initiated.
	TriggerRejoin
)

// String implements fmt.Stringer.
func (k TriggerKind) String() string {
	switch k {
	case TriggerStart:
		return "start"
	case TriggerRestart:
		return "restart"
	case TriggerTimer:
		return "timer"
	case TriggerBeat:
		return "beat"
	case TriggerCrash:
		return "crash"
	case TriggerLeave:
		return "leave"
	case TriggerRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("TriggerKind(%d)", int(k))
	}
}

// Trigger describes the cause of one machine step.
type Trigger struct {
	Kind TriggerKind
	// Timer is the timer that fired, for TriggerTimer.
	Timer core.TimerID
	// Beat is the delivered beat, for TriggerBeat.
	Beat core.Beat
}

// Observer receives one callback per protocol machine step: the trigger
// that caused it and the actions the machine returned, before the node
// executes them. A beat delivery is observed even when the machine returns
// no actions (the delivery itself is an observable event).
//
// ObserveStep is called with the node's lock held, so steps of a single
// node arrive serialised in execution order; under a SimClock the whole
// cluster is single-threaded and the global order is the execution order.
// Observers must not call back into the node. The conformance recorder
// (internal/conform) is the intended implementation.
type Observer interface {
	ObserveStep(id netem.NodeID, now core.Tick, tr Trigger, actions []core.Action)
}

// observe reports one machine step to the configured observer. Callers
// hold n.mu.
func (n *Node) observe(tr Trigger, actions []core.Action) {
	if n.cfg.Observe != nil {
		n.cfg.Observe.ObserveStep(n.cfg.ID, n.cfg.Clock.Now(), tr, actions)
	}
}
