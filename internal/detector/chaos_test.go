package detector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/sim"
)

// TestPropertyNoFalseDetectionWithoutFaults: with lossless links and no
// crash injection, no protocol variant ever produces a liveness event,
// across random timing constants and run lengths.
func TestPropertyNoFalseDetectionWithoutFaults(t *testing.T) {
	f := func(seed int64, a, b uint8, protoRaw uint8, nRaw uint8) bool {
		tmin := core.Tick(a%8) + 1
		tmax := tmin * (core.Tick(b%4) + 2) // tmax >= 2*tmin avoids the tmin==tmax race
		protos := []Protocol{ProtocolBinary, ProtocolStatic, ProtocolExpanding, ProtocolDynamic}
		cfg := ClusterConfig{
			Protocol: protos[int(protoRaw)%len(protos)],
			Core:     core.Config{TMin: tmin, TMax: tmax},
			N:        int(nRaw%3) + 1,
			Link:     netem.LinkConfig{MaxDelay: sim.Time(tmin) / 2},
			Seed:     seed,
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		if err := c.Start(); err != nil {
			return false
		}
		c.Sim.RunUntil(sim.Time(tmax) * 60)
		for _, e := range c.Events {
			if e.Kind == EventInactivated || e.Kind == EventSuspect {
				t.Logf("cfg %+v produced %+v", cfg, e)
				return false
			}
		}
		return c.Coordinator.Status() == core.StatusActive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCrashAlwaysDetectedWithinBound: a single participant crash
// at a random time — injected through a fault schedule — is always
// detected within the corrected bound plus one round-trip, for random
// constants, and the whole network then winds down.
func TestPropertyCrashAlwaysDetectedWithinBound(t *testing.T) {
	f := func(seed int64, a, b uint8, crashRaw uint16) bool {
		tmin := core.Tick(a%8) + 1
		tmax := tmin * (core.Tick(b%4) + 2)
		crashAt := sim.Time(crashRaw%2000) + 1
		cfg := ClusterConfig{
			Protocol: ProtocolStatic,
			Core:     core.Config{TMin: tmin, TMax: tmax},
			N:        2,
			Link:     netem.LinkConfig{MaxDelay: sim.Time(tmin) / 2},
			Seed:     seed,
			Faults: &faults.Schedule{Events: []faults.Event{
				{At: crashAt, Kind: faults.KindCrash, Node: 1},
			}},
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		if err := c.Start(); err != nil {
			return false
		}
		horizon := crashAt + sim.Time(cfg.Core.CoordinatorDetectionBound()+cfg.Core.TMin)
		c.Sim.RunUntil(horizon)
		ev, ok := c.FirstEvent(0, EventSuspect)
		if !ok || ev.Proc != 1 {
			t.Logf("cfg %+v crash@%d: no suspicion (events %v)", cfg, crashAt, c.Events)
			return false
		}
		// The rest of the network follows within the responder bound.
		c.Sim.RunUntil(horizon + sim.Time(cfg.Core.ResponderBound()+cfg.Core.TMin))
		if !c.AllInactiveBy() {
			t.Logf("cfg %+v: network still partially active after shutdown window", cfg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCoordinatorCrashWindsDownEveryone: p[0]'s crash at a random
// time — injected through a fault schedule — inactivates every responder
// within its watchdog bound plus an in-flight allowance.
func TestPropertyCoordinatorCrashWindsDownEveryone(t *testing.T) {
	f := func(seed int64, a, b uint8, crashRaw uint16, fixed bool) bool {
		tmin := core.Tick(a%8) + 1
		tmax := tmin * (core.Tick(b%4) + 2)
		crashAt := sim.Time(crashRaw%2000) + 1
		cfg := ClusterConfig{
			Protocol: ProtocolStatic,
			Core:     core.Config{TMin: tmin, TMax: tmax, Fixed: fixed},
			N:        3,
			Link:     netem.LinkConfig{MaxDelay: sim.Time(tmin) / 2},
			Seed:     seed,
			Faults: &faults.Schedule{Events: []faults.Event{
				{At: crashAt, Kind: faults.KindCrash, Node: 0},
			}},
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		if err := c.Start(); err != nil {
			return false
		}
		c.Sim.RunUntil(crashAt + sim.Time(cfg.Core.ResponderBound()+cfg.Core.TMin) + 1)
		for pid, n := range c.Participants {
			if n.Status() == core.StatusActive {
				t.Logf("cfg %+v: p[%d] survived p[0]'s crash", cfg, pid)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDynamicChurnHarmless: random sequences of joins completing
// and graceful leaves never inactivate anyone, as long as nothing crashes
// and nothing is lost.
func TestPropertyDynamicChurnHarmless(t *testing.T) {
	f := func(seed int64, leaveMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := ClusterConfig{
			Protocol: ProtocolDynamic,
			Core:     core.Config{TMin: 2, TMax: 8},
			N:        4,
			Seed:     seed,
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		if err := c.Start(); err != nil {
			return false
		}
		c.Sim.RunUntil(100) // everyone joins
		leavers := map[core.ProcID]bool{}
		for i := 0; i < 4; i++ {
			if leaveMask&(1<<uint(i)) != 0 {
				pid := core.ProcID(i + 1)
				leavers[pid] = true
				c.Sim.RunUntil(c.Sim.Now() + sim.Time(rng.Intn(40)))
				if err := c.Participants[pid].Leave(); err != nil {
					return false
				}
			}
		}
		c.Sim.RunUntil(c.Sim.Now() + 1000)
		if c.Coordinator.Status() != core.StatusActive {
			t.Logf("coordinator died under churn (mask %b)", leaveMask)
			return false
		}
		for pid, n := range c.Participants {
			want := core.StatusActive
			if leavers[pid] {
				want = core.StatusLeft
			}
			if n.Status() != want {
				t.Logf("p[%d] = %v, want %v (mask %b)", pid, n.Status(), want, leaveMask)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEventTimesMonotone: recorded events never go backwards in
// virtual time, under arbitrary loss.
func TestPropertyEventTimesMonotone(t *testing.T) {
	f := func(seed int64, lossRaw uint8) bool {
		cfg := ClusterConfig{
			Protocol: ProtocolStatic,
			Core:     core.Config{TMin: 2, TMax: 8},
			N:        3,
			Link:     netem.LinkConfig{LossProb: float64(lossRaw%60) / 100, MaxDelay: 1},
			Seed:     seed,
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		if err := c.Start(); err != nil {
			return false
		}
		c.Sim.RunUntil(500)
		c.Participants[2].Crash()
		c.Sim.RunUntil(1500)
		last := core.Tick(-1)
		for _, e := range c.Events {
			if e.Time < last {
				return false
			}
			last = e.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySuspectPrecedesCoordinatorInactivation: whenever the
// coordinator inactivates non-voluntarily, a suspicion event for some
// participant is recorded at the same instant, never after.
func TestPropertySuspectPrecedesCoordinatorInactivation(t *testing.T) {
	f := func(seed int64) bool {
		cfg := ClusterConfig{
			Protocol: ProtocolBinary,
			Core:     core.Config{TMin: 2, TMax: 8},
			Link:     netem.LinkConfig{LossProb: 0.3}, // heavy loss forces breakdowns
			Seed:     seed,
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		if err := c.Start(); err != nil {
			return false
		}
		c.Sim.RunUntil(3000)
		var inact, suspect *Event
		for i := range c.Events {
			e := &c.Events[i]
			if e.Node != 0 {
				continue
			}
			if e.Kind == EventInactivated && inact == nil {
				inact = e
			}
			if e.Kind == EventSuspect && suspect == nil {
				suspect = e
			}
		}
		if inact == nil {
			return true // no breakdown this seed
		}
		return suspect != nil && suspect.Time == inact.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
