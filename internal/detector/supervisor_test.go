package detector

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// panicMachine wraps a protocol machine and panics on the next beat after
// arm() — a stand-in for a latent handler bug.
type panicMachine struct {
	core.Machine
	armed atomic.Bool
}

func (p *panicMachine) arm() { p.armed.Store(true) }

func (p *panicMachine) OnBeat(b core.Beat, now core.Tick) []core.Action {
	if p.armed.CompareAndSwap(true, false) {
		panic("injected handler bug")
	}
	return p.Machine.OnBeat(b, now)
}

// supervisedPair builds a binary coordinator/responder pair on a fresh
// simulator with the responder's machine wrapped in pm, both nodes
// reporting into sup, and the responder managed by sup.
func supervisedPair(t *testing.T, sup *Supervisor, clock Clock, net netem.Transport, pm *panicMachine) (coord, resp *Node) {
	t.Helper()
	cfg := core.Config{TMin: 2, TMax: 10}
	coordMachine, err := core.NewCoordinator(core.CoordinatorConfig{
		Config: cfg, Membership: core.MembershipFixed, Members: []core.ProcID{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err = NewNode(Config{ID: 0, Machine: coordMachine, Clock: clock, Transport: net, Events: sup})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := core.NewResponder(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	pm.Machine = inner
	resp, err = NewNode(Config{ID: 1, Machine: pm, Clock: clock, Transport: net, Events: sup})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(resp, func() (core.Machine, error) { return core.NewResponder(cfg, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	if err := resp.Start(); err != nil {
		t.Fatal(err)
	}
	return coord, resp
}

func TestSupervisorRestartsPanickedNode(t *testing.T) {
	s := sim.New(sim.WithSeed(1))
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clock := SimClock{Sim: s}
	var events []Event
	sup, err := NewSupervisor(SupervisorConfig{
		Clock:      clock,
		Events:     EventFunc(func(e Event) { events = append(events, e) }),
		CheckEvery: 4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm := &panicMachine{}
	coord, resp := supervisedPair(t, sup, clock, net, pm)

	s.RunUntil(100)
	if len(events) != 0 {
		t.Fatalf("events during steady state: %v", events)
	}
	pm.arm()
	s.RunUntil(1000)

	if sup.Restarts(1) != 1 {
		t.Fatalf("restarts = %d, want 1", sup.Restarts(1))
	}
	var sawPanic, sawRestart bool
	for _, e := range events {
		switch {
		case e.Node == 1 && e.Kind == EventPanic:
			sawPanic = true
		case e.Node == 1 && e.Kind == EventRestarted:
			sawRestart = true
		case e.Kind == EventInactivated:
			t.Fatalf("panic brought the protocol down: %v", events)
		}
	}
	if !sawPanic || !sawRestart {
		t.Fatalf("panic/restart events missing: %v", events)
	}
	// The healed pair keeps beating.
	if coord.Status() != core.StatusActive || resp.Status() != core.StatusActive {
		t.Fatalf("cluster not active after self-heal: p0=%v p1=%v",
			coord.Status(), resp.Status())
	}
	// The replacement machine is a fresh responder, not the wrapper.
	if _, wrapped := resp.Machine().(*panicMachine); wrapped {
		t.Fatal("restart kept the broken machine")
	}
}

func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	// A responder with no coordinator inactivates every ResponderBound;
	// the supervisor must retry with backoff and eventually give up.
	s := sim.New(sim.WithSeed(2))
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clock := SimClock{Sim: s}
	var events []Event
	sup, err := NewSupervisor(SupervisorConfig{
		Clock:       clock,
		Events:      EventFunc(func(e Event) { events = append(events, e) }),
		CheckEvery:  4,
		MaxRestarts: 3,
		Backoff:     Backoff{Base: 1, Max: 4},
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{TMin: 2, TMax: 10}
	m, err := core.NewResponder(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewNode(Config{ID: 1, Machine: m, Clock: clock, Transport: net, Events: sup})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(resp, func() (core.Machine, error) { return core.NewResponder(cfg, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := resp.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2000)

	if got := sup.Restarts(1); got != 3 {
		t.Fatalf("restarts = %d, want 3", got)
	}
	gaveUp := 0
	for _, e := range events {
		if e.Node == 1 && e.Kind == EventGaveUp {
			gaveUp++
		}
	}
	if gaveUp != 1 {
		t.Fatalf("gave-up events = %d, want exactly 1: %v", gaveUp, events)
	}
	if resp.Status() != core.StatusInactive {
		t.Fatalf("abandoned node status = %v, want inactive", resp.Status())
	}
}

func TestSupervisorRestartCrashedFlag(t *testing.T) {
	run := func(restartCrashed bool) (*Supervisor, *Node, *sim.Simulator) {
		s := sim.New(sim.WithSeed(3))
		net, err := netem.NewNetwork(s, netem.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		clock := SimClock{Sim: s}
		sup, err := NewSupervisor(SupervisorConfig{
			Clock: clock, CheckEvery: 4, RestartCrashed: restartCrashed, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		pm := &panicMachine{}
		_, resp := supervisedPair(t, sup, clock, net, pm)
		s.RunUntil(50)
		resp.Crash()
		s.RunUntil(100)
		return sup, resp, s
	}

	sup, resp, _ := run(false)
	if sup.Restarts(1) != 0 || resp.Status() != core.StatusCrashed {
		t.Fatalf("crashed node healed without RestartCrashed: restarts=%d status=%v",
			sup.Restarts(1), resp.Status())
	}
	sup, resp, _ = run(true)
	if sup.Restarts(1) == 0 || resp.Status() != core.StatusActive {
		t.Fatalf("RestartCrashed did not heal: restarts=%d status=%v",
			sup.Restarts(1), resp.Status())
	}
}

func TestSupervisorConfirmsDown(t *testing.T) {
	s := sim.New()
	clock := SimClock{Sim: s}
	var events []Event
	sup, err := NewSupervisor(SupervisorConfig{
		Clock:        clock,
		Events:       EventFunc(func(e Event) { events = append(events, e) }),
		ConfirmAfter: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A suspicion left uncontradicted hardens into confirmed-down.
	sup.HandleEvent(Event{Node: 0, Kind: EventSuspect, Proc: 2})
	if got := sup.PeerState(2); got != PeerSuspected {
		t.Fatalf("peer 2 = %v right after suspect, want suspected", got)
	}
	s.RunUntil(20)
	if got := sup.PeerState(2); got != PeerDown {
		t.Fatalf("peer 2 = %v after the window, want down", got)
	}
	var confirmed bool
	for _, e := range events {
		if e.Kind == EventDown && e.Proc == 2 {
			confirmed = true
		}
	}
	if !confirmed {
		t.Fatalf("no EventDown for peer 2: %v", events)
	}

	// A rejoin inside the window clears the suspicion; no EventDown fires.
	sup.HandleEvent(Event{Node: 3, Kind: EventSuspect, Proc: 3})
	s.RunUntil(25)
	sup.HandleEvent(Event{Node: 3, Kind: EventJoined})
	s.RunUntil(60)
	if got := sup.PeerState(3); got != PeerHealthy {
		t.Fatalf("peer 3 = %v after rejoin, want healthy", got)
	}
	for _, e := range events {
		if e.Kind == EventDown && e.Proc == 3 {
			t.Fatalf("contradicted suspicion still confirmed: %v", events)
		}
	}
	if got := sup.PeerState(9); got != PeerHealthy {
		t.Fatalf("unknown peer = %v, want healthy", got)
	}
	if PeerDown.String() != "down" || PeerState(9).String() == "" {
		t.Fatal("PeerState.String mismatch")
	}
}

func TestBackoffDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Backoff{Base: 2, Max: 16}
	for attempt, want := range []core.Tick{2, 4, 8, 16, 16, 16} {
		if got := b.delay(attempt, rng); got != want {
			t.Fatalf("delay(%d) = %d, want %d", attempt, got, want)
		}
	}
	// Defaults: Base 1, Max 64.
	if got := b.delay(0, rng); got != 2 {
		t.Fatalf("delay(0) = %d", got)
	}
	zero := Backoff{}
	if got := zero.delay(0, rng); got != 1 {
		t.Fatalf("zero backoff delay(0) = %d, want 1", got)
	}
	if got := zero.delay(20, rng); got != 64 {
		t.Fatalf("zero backoff delay(20) = %d, want 64", got)
	}
	// Jitter stretches the delay by at most the configured fraction.
	j := Backoff{Base: 4, Max: 4, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		if d := j.delay(0, rng); d < 4 || d > 6 {
			t.Fatalf("jittered delay %d outside [4, 6]", d)
		}
	}
}

func TestSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}); !errors.Is(err, ErrNodeConfig) {
		t.Fatalf("clockless supervisor accepted: %v", err)
	}
	s := sim.New()
	sup, err := NewSupervisor(SupervisorConfig{Clock: SimClock{Sim: s}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(nil, nil); !errors.Is(err, ErrNodeConfig) {
		t.Fatalf("nil node accepted: %v", err)
	}
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewResponder(core.Config{TMin: 2, TMax: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{ID: 1, Machine: m, Clock: SimClock{Sim: s}, Transport: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(n, nil); !errors.Is(err, ErrNodeConfig) {
		t.Fatalf("double Manage accepted: %v", err)
	}
	sup.Stop()
	if err := sup.Manage(n, nil); !errors.Is(err, ErrNodeConfig) {
		t.Fatalf("Manage after Stop accepted: %v", err)
	}
	if got := sup.Restarts(42); got != 0 {
		t.Fatalf("Restarts of unmanaged node = %d", got)
	}
}

func TestRetry(t *testing.T) {
	calls := 0
	err := Retry(5, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry: err=%v calls=%d", err, calls)
	}
	sentinel := errors.New("bind: address already in use")
	err = Retry(2, 0, func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhausted Retry did not wrap the last error: %v", err)
	}
	if err := Retry(0, 0, func() error { return nil }); !errors.Is(err, ErrNodeConfig) {
		t.Fatalf("Retry with zero attempts accepted: %v", err)
	}
}

// TestSupervisorHealsPanicMidRunRealTime is the wall-clock, -race variant:
// a handler panic strikes a live UDP cluster and the supervisor restarts
// the node while beats keep flowing on other goroutines.
func TestSupervisorHealsPanicMidRunRealTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test; skipped in -short")
	}
	transport := netem.NewUDPTransport()
	defer func() {
		if err := transport.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	clock := NewWallClock(5 * time.Millisecond)
	cfg := core.Config{TMin: 4, TMax: 16}

	var mu sync.Mutex
	var events []Event
	sup, err := NewSupervisor(SupervisorConfig{
		Clock: clock,
		Events: EventFunc(func(e Event) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, e)
		}),
		CheckEvery: 8,
		Backoff:    Backoff{Base: 1, Max: 8, Jitter: 0.3},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	coordMachine, err := core.NewCoordinator(core.CoordinatorConfig{
		Config: cfg, Membership: core.MembershipFixed, Members: []core.ProcID{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewNode(Config{ID: 0, Machine: coordMachine, Clock: clock, Transport: transport, Events: sup})
	if err != nil {
		t.Fatal(err)
	}
	pm := &panicMachine{}
	inner, err := core.NewResponder(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	pm.Machine = inner
	resp, err := NewNode(Config{ID: 1, Machine: pm, Clock: clock, Transport: transport, Events: sup})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(resp, func() (core.Machine, error) { return core.NewResponder(cfg, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	if err := resp.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the pair reach steady state, then break the responder mid-run.
	time.Sleep(300 * time.Millisecond)
	pm.arm()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sup.Restarts(1) >= 1 && resp.Status() == core.StatusActive {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sup.Restarts(1) < 1 {
		t.Fatal("supervisor never restarted the panicked node")
	}
	// Give the healed pair a few more rounds; nobody may wind down.
	time.Sleep(300 * time.Millisecond)
	if coord.Status() != core.StatusActive || resp.Status() != core.StatusActive {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("cluster did not survive the panic: p0=%v p1=%v events=%v",
			coord.Status(), resp.Status(), events)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawPanic, sawRestart bool
	for _, e := range events {
		if e.Node == 1 && e.Kind == EventPanic {
			sawPanic = true
		}
		if e.Node == 1 && e.Kind == EventRestarted {
			sawRestart = true
		}
	}
	if !sawPanic || !sawRestart {
		t.Fatalf("panic/restart events missing: %v", events)
	}
}
