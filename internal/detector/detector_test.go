package detector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

func newCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

func binaryConfig() ClusterConfig {
	return ClusterConfig{
		Protocol: ProtocolBinary,
		Core:     core.Config{TMin: 2, TMax: 10},
		Seed:     1,
	}
}

func TestBinaryClusterStaysAliveWithoutFaults(t *testing.T) {
	c := newCluster(t, binaryConfig())
	c.Sim.RunUntil(1000)
	if c.Coordinator.Status() != core.StatusActive {
		t.Fatalf("p[0] = %v, want active", c.Coordinator.Status())
	}
	if c.Participants[1].Status() != core.StatusActive {
		t.Fatalf("p[1] = %v, want active", c.Participants[1].Status())
	}
	if len(c.Events) != 0 {
		t.Fatalf("events on a fault-free run: %v", c.Events)
	}
	// Steady state: one beat each way per tmax.
	st := c.Net.Stats()
	wantBeats := uint64(1000 / 10)
	if st.Total.Sent < 2*wantBeats-4 || st.Total.Sent > 2*wantBeats+4 {
		t.Fatalf("sent %d beats over 1000 ticks, want about %d", st.Total.Sent, 2*wantBeats)
	}
}

func TestBinaryClusterDetectsResponderCrash(t *testing.T) {
	cfg := binaryConfig()
	c := newCluster(t, cfg)
	c.Sim.RunUntil(100)
	c.Participants[1].Crash()
	crashAt := core.Tick(100)
	c.Sim.RunUntil(1000)
	ev, ok := c.FirstEvent(0, EventSuspect)
	if !ok || ev.Proc != 1 {
		t.Fatalf("no suspicion of p[1]: %v", c.Events)
	}
	inact, ok := c.FirstEvent(0, EventInactivated)
	if !ok || inact.Voluntary {
		t.Fatalf("p[0] did not inactivate non-voluntarily: %v", c.Events)
	}
	// The crash can only be noticed from the first beat p[1] fails to
	// answer; detection from the crash instant is bounded by the corrected
	// bound plus one round-trip allowance.
	delay := inact.Time - crashAt
	bound := cfg.Core.CoordinatorDetectionBound() + cfg.Core.TMin
	if delay <= 0 || delay > bound {
		t.Fatalf("detection delay %d outside (0, %d]", delay, bound)
	}
	if !c.AllInactiveBy() {
		t.Fatal("cluster not fully inactive after detection")
	}
}

func TestBinaryClusterDetectsCoordinatorCrash(t *testing.T) {
	cfg := binaryConfig()
	c := newCluster(t, cfg)
	c.Sim.RunUntil(100)
	c.Coordinator.Crash()
	c.Sim.RunUntil(1000)
	ev, ok := c.FirstEvent(1, EventInactivated)
	if !ok || ev.Voluntary {
		t.Fatalf("p[1] did not inactivate: %v", c.Events)
	}
	// p[1] inactivates within its watchdog bound of the last beat it saw,
	// which is at most the bound plus a round after the crash.
	if d := ev.Time - 100; d > cfg.Core.ResponderBound()+cfg.Core.TMax {
		t.Fatalf("p[1] detection delay %d too large", d)
	}
}

func TestBinaryClusterChannelCrash(t *testing.T) {
	c := newCluster(t, binaryConfig())
	c.Sim.RunUntil(100)
	c.Net.PartitionNode(1, true)
	c.Sim.RunUntil(1000)
	if c.Coordinator.Status() != core.StatusInactive {
		t.Fatalf("p[0] = %v after channel crash", c.Coordinator.Status())
	}
	if c.Participants[1].Status() != core.StatusInactive {
		t.Fatalf("p[1] = %v after channel crash", c.Participants[1].Status())
	}
}

func TestStaticClusterSurvivesAndDetects(t *testing.T) {
	cfg := ClusterConfig{
		Protocol: ProtocolStatic,
		Core:     core.Config{TMin: 2, TMax: 10},
		N:        4,
		Seed:     3,
	}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(500)
	if len(c.Events) != 0 {
		t.Fatalf("events on fault-free static run: %v", c.Events)
	}
	c.Participants[3].Crash()
	c.Sim.RunUntil(1500)
	ev, ok := c.FirstEvent(0, EventSuspect)
	if !ok || ev.Proc != 3 {
		t.Fatalf("suspect = %v, want p[3]", c.Events)
	}
	// One crash brings down the whole network (the protocol's goal).
	if !c.AllInactiveBy() {
		t.Fatal("cluster survived a member crash")
	}
}

func TestExpandingClusterJoin(t *testing.T) {
	cfg := ClusterConfig{
		Protocol: ProtocolExpanding,
		Core:     core.Config{TMin: 2, TMax: 10},
		N:        3,
		Seed:     4,
	}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(200)
	for pid := core.ProcID(1); pid <= 3; pid++ {
		if _, ok := c.FirstEvent(netem.NodeID(pid), EventJoined); !ok {
			t.Fatalf("p[%d] never joined: %v", pid, c.Events)
		}
	}
	c.Sim.RunUntil(2000)
	if c.Coordinator.Status() != core.StatusActive {
		t.Fatal("expanding coordinator inactivated without faults")
	}
}

func TestDynamicClusterLeaveDoesNotDisturb(t *testing.T) {
	cfg := ClusterConfig{
		Protocol: ProtocolDynamic,
		Core:     core.Config{TMin: 2, TMax: 10},
		N:        3,
		Seed:     5,
	}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(200)
	if err := c.Participants[2].Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	c.Sim.RunUntil(2000)
	if _, ok := c.FirstEvent(2, EventLeft); !ok {
		t.Fatalf("p[2] never completed its leave: %v", c.Events)
	}
	// A graceful leave must not disturb anyone else.
	if c.Coordinator.Status() != core.StatusActive {
		t.Fatal("coordinator inactivated after a graceful leave")
	}
	for _, pid := range []core.ProcID{1, 3} {
		if c.Participants[pid].Status() != core.StatusActive {
			t.Fatalf("p[%d] = %v after p[2] left", pid, c.Participants[pid].Status())
		}
	}
	if c.Participants[2].Status() != core.StatusLeft {
		t.Fatalf("p[2] = %v, want left", c.Participants[2].Status())
	}
}

func TestDynamicClusterCrashDisturbsEveryone(t *testing.T) {
	cfg := ClusterConfig{
		Protocol: ProtocolDynamic,
		Core:     core.Config{TMin: 2, TMax: 10},
		N:        2,
		Seed:     6,
	}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(200)
	c.Participants[1].Crash()
	c.Sim.RunUntil(2000)
	if !c.AllInactiveBy() {
		t.Fatal("a crash (unlike a leave) must take the network down")
	}
}

func TestLeaveOnNonDynamicNode(t *testing.T) {
	c := newCluster(t, binaryConfig())
	if err := c.Participants[1].Leave(); err == nil {
		t.Fatal("Leave on a binary responder succeeded")
	}
}

func TestClusterToleratesModerateLoss(t *testing.T) {
	cfg := binaryConfig()
	cfg.Link = netem.LinkConfig{LossProb: 0.05, MaxDelay: 1}
	cfg.Core = core.Config{TMin: 2, TMax: 16}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(5000)
	// 5% loss needs log2(16/2)=3 consecutive losses (of beats or
	// replies) to kill the protocol; with seed 1 over 5000 ticks the
	// cluster stays up. This mirrors the 1998 reliability argument.
	if c.Coordinator.Status() != core.StatusActive || c.Participants[1].Status() != core.StatusActive {
		t.Fatalf("cluster died under 5%% loss: %v", c.Events)
	}
}

func TestNodeValidation(t *testing.T) {
	s := sim.New()
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	m, err := core.NewResponder(core.Config{TMin: 1, TMax: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{ID: 1, Machine: m, Clock: SimClock{Sim: s}, Transport: net})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if err := n.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := n.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	// Registering a second node with the same ID must fail.
	if _, err := NewNode(Config{ID: 1, Machine: m, Clock: SimClock{Sim: s}, Transport: net}); err == nil {
		t.Fatal("duplicate transport ID accepted")
	}
}

func TestGarbagePayloadIgnored(t *testing.T) {
	c := newCluster(t, binaryConfig())
	// Inject garbage straight at p[0]'s handler via the network.
	if err := c.Net.Register(99, func(netem.Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.Net.Send(99, 0, []byte("not a beat")); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(1000)
	if c.Coordinator.Status() != core.StatusActive {
		t.Fatal("garbage datagram disturbed the protocol")
	}
}

func TestTimerReplaceSemantics(t *testing.T) {
	// A responder's watchdog is re-armed by every beat; the superseded
	// timer must never fire. Run long enough that a stale fire would
	// inactivate p[1] despite a healthy p[0].
	cfg := binaryConfig()
	c := newCluster(t, cfg)
	c.Sim.RunUntil(sim.Time(cfg.Core.ResponderBound()) * 20)
	if c.Participants[1].Status() != core.StatusActive {
		t.Fatal("stale watchdog fire inactivated a healthy responder")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	bad := []ClusterConfig{
		{Protocol: ProtocolStatic, Core: core.Config{TMin: 1, TMax: 2}, N: 0},
		{Protocol: ProtocolStatic, Core: core.Config{TMin: 0, TMax: 2}, N: 1},
		{Protocol: Protocol(99), Core: core.Config{TMin: 1, TMax: 2}, N: 1},
	}
	for _, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{
		ProtocolBinary:    "binary",
		ProtocolStatic:    "static",
		ProtocolExpanding: "expanding",
		ProtocolDynamic:   "dynamic",
		Protocol(42):      "Protocol(42)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EventInactivated.String() != "inactivated" || EventKind(9).String() == "" {
		t.Fatal("EventKind.String mismatch")
	}
}

func TestRejoinEndToEnd(t *testing.T) {
	cfg := ClusterConfig{
		Protocol:    ProtocolDynamic,
		Core:        core.Config{TMin: 2, TMax: 10},
		N:           2,
		Seed:        8,
		AllowRejoin: true,
	}
	c := newCluster(t, cfg)
	c.Sim.RunUntil(100)
	if err := c.Participants[1].Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	c.Sim.RunUntil(300)
	if c.Participants[1].Status() != core.StatusLeft {
		t.Fatalf("p[1] = %v, want left", c.Participants[1].Status())
	}
	if err := c.Participants[1].Rejoin(); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	c.Sim.RunUntil(500)
	if c.Participants[1].Status() != core.StatusActive {
		t.Fatalf("p[1] = %v after rejoin, want active", c.Participants[1].Status())
	}
	joins := 0
	for _, e := range c.Events {
		if e.Node == 1 && e.Kind == EventJoined {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("join events = %d, want 2 (initial + rejoin)", joins)
	}
	// The rejoined member participates fully: its crash takes the
	// network down.
	c.Participants[1].Crash()
	c.Sim.RunUntil(1000)
	if !c.AllInactiveBy() {
		t.Fatal("rejoined member's crash did not wind the network down")
	}
}

func TestRejoinOnNonDynamicNode(t *testing.T) {
	c := newCluster(t, binaryConfig())
	if err := c.Participants[1].Rejoin(); err == nil {
		t.Fatal("Rejoin on a binary responder succeeded")
	}
}
