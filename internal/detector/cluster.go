package detector

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Protocol names a heartbeat protocol variant for cluster assembly.
type Protocol int

// Protocol variants.
const (
	// ProtocolBinary is the two-process accelerated protocol (N is
	// forced to 1).
	ProtocolBinary Protocol = iota + 1
	// ProtocolStatic is the fixed-membership N-process protocol.
	ProtocolStatic
	// ProtocolExpanding admits participants at run time.
	ProtocolExpanding
	// ProtocolDynamic additionally supports graceful leave.
	ProtocolDynamic
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolBinary:
		return "binary"
	case ProtocolStatic:
		return "static"
	case ProtocolExpanding:
		return "expanding"
	case ProtocolDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ClusterConfig assembles a simulated cluster: one coordinator plus N
// participants connected by a netem.Network.
type ClusterConfig struct {
	// Protocol selects the variant.
	Protocol Protocol
	// Core carries tmin/tmax and the variant/fix switches.
	Core core.Config
	// N is the number of participants (ignored for ProtocolBinary,
	// which always has exactly one).
	N int
	// Adaptive, if non-nil, runs the adaptive variant: the coordinator
	// retunes Core.TMin/TMax within Adaptive.Envelope from observed loss
	// (Core's own TMin/TMax are ignored — the run starts at the
	// envelope's level-0 point), and every participant runs at the
	// envelope's worst-case watchdog configuration, which is sound at all
	// levels (see core.Envelope.ResponderConfig).
	Adaptive *core.AdaptiveOptions
	// Link is the default unidirectional link shape. To honour the
	// papers' round-trip bound, keep MaxDelay at or below tmin/2 per
	// direction (zero-delay links are always safe).
	Link netem.LinkConfig
	// Seed drives the simulator's randomness (loss, delays).
	Seed int64
	// AllowRejoin enables the rejoin extension (ProtocolDynamic only).
	AllowRejoin bool
	// Faults, if non-nil, wraps the network in a fault-injection layer
	// and applies the schedule from virtual time 0 when Start is called.
	// The fault layer's randomness is seeded from Faults.Seed, or Seed
	// when that is zero. Every node then also gets its own driftable
	// clock, addressable through schedule drift events.
	Faults *faults.Schedule
	// Heal, if non-nil, places every node under a Supervisor built from
	// this config; the Clock and Events fields are filled in by the
	// cluster (supervisor events land in Cluster.Events like all others).
	Heal *SupervisorConfig
	// Observe, if non-nil, receives every machine step of every node; see
	// Observer. The conformance layer uses this to record abstract traces.
	Observe Observer
	// WrapMachine, if non-nil, wraps every protocol machine at
	// construction time (including machines built for restarts). The
	// conformance tests use it to inject deliberately defective machines
	// and check that trace inclusion catches them.
	WrapMachine func(id netem.NodeID, m core.Machine) core.Machine
	// TimerWheel backs the simulator's event queue with the hierarchical
	// timer wheel instead of the 4-ary heap. Execution order — and with
	// it every trace and event log — is identical on both backends
	// (pinned by TestClusterTraceIdenticalAcrossQueueBackends); the wheel
	// is the fleet-scale choice, the heap the small-cluster default.
	TimerWheel bool
}

// Cluster is a simulated deployment of one protocol instance.
type Cluster struct {
	// Sim is the virtual clock; run it to make progress.
	Sim *sim.Simulator
	// Net is the emulated network.
	Net *netem.Network
	// Transport is what the nodes actually send through: Faults when
	// fault injection is configured, otherwise Net.
	Transport netem.Transport
	// Faults is the fault-injection layer (nil without cfg.Faults).
	Faults *faults.FaultableTransport
	// Supervisor is the self-healing layer (nil without cfg.Heal).
	Supervisor *Supervisor
	// Clocks holds the per-node driftable clocks (nil without cfg.Faults).
	Clocks map[netem.NodeID]*faults.DriftClock
	// Coordinator is p[0].
	Coordinator *Node
	// Participants maps process IDs (1..N) to their nodes.
	Participants map[core.ProcID]*Node
	// Events records every liveness event in emission order.
	Events []Event

	cfg          ClusterConfig
	cancelFaults func()
	faultErrMu   sync.Mutex
	faultErrs    []error
}

// Compile-time wiring checks: a cluster is a complete fault-schedule target.
var (
	_ faults.NodeControl   = (*Cluster)(nil)
	_ faults.ClockControl  = (*Cluster)(nil)
	_ faults.MemberControl = (*Cluster)(nil)
)

// NewCluster builds and wires a cluster; Start must still be called.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Protocol == ProtocolBinary {
		cfg.N = 1
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: cluster needs at least one participant", ErrNodeConfig)
	}
	if cfg.Adaptive != nil {
		if err := cfg.Adaptive.Validate(); err != nil {
			return nil, err
		}
		// The envelope supplies the timing constants; fill Core with the
		// starting point so the config validates and non-adaptive
		// derivations (bounds, link-delay sanity) see real values.
		cfg.Core.TMin, cfg.Core.TMax = cfg.Adaptive.Envelope.Point(0)
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	simOpts := []sim.Option{sim.WithSeed(cfg.Seed)}
	if cfg.TimerWheel {
		simOpts = append(simOpts, sim.WithTimerWheel())
	}
	s := sim.New(simOpts...)
	net, err := netem.NewNetwork(s, cfg.Link)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Sim:          s,
		Net:          net,
		Participants: make(map[core.ProcID]*Node, cfg.N),
		cfg:          cfg,
	}
	c.Transport = net
	if cfg.Faults != nil {
		seed := cfg.Faults.Seed
		if seed == 0 {
			seed = cfg.Seed
		}
		c.Faults = faults.Wrap(net, netem.SimTicker{Sim: s}, seed)
		c.Transport = c.Faults
		c.Clocks = make(map[netem.NodeID]*faults.DriftClock, cfg.N+1)
	}
	sink := EventSink(EventFunc(func(e Event) { c.Events = append(c.Events, e) }))
	if cfg.Heal != nil {
		hc := *cfg.Heal
		hc.Clock = SimClock{Sim: s}
		hc.Events = sink
		sup, err := NewSupervisor(hc)
		if err != nil {
			return nil, err
		}
		c.Supervisor = sup
		sink = sup
	}
	clockFor := func(id netem.NodeID) Clock {
		if c.Clocks == nil {
			return SimClock{Sim: s}
		}
		dc := faults.NewDriftClock(SimClock{Sim: s})
		c.Clocks[id] = dc
		return dc
	}

	coordMachine, err := newCoordinatorMachine(cfg)
	if err != nil {
		return nil, err
	}
	c.Coordinator, err = NewNode(Config{
		ID:              netem.NodeID(core.CoordinatorID),
		Machine:         coordMachine,
		Clock:           clockFor(netem.NodeID(core.CoordinatorID)),
		Transport:       c.Transport,
		Events:          sink,
		Observe:         cfg.Observe,
		ReceivePriority: cfg.Core.Fixed,
	})
	if err != nil {
		return nil, err
	}

	for i := 1; i <= cfg.N; i++ {
		pid := core.ProcID(i)
		machine, err := newParticipantMachine(cfg, pid)
		if err != nil {
			return nil, err
		}
		node, err := NewNode(Config{
			ID:              netem.NodeID(pid),
			Machine:         machine,
			Clock:           clockFor(netem.NodeID(pid)),
			Transport:       c.Transport,
			Events:          sink,
			Observe:         cfg.Observe,
			ReceivePriority: cfg.Core.Fixed,
		})
		if err != nil {
			return nil, err
		}
		c.Participants[pid] = node
	}

	if c.Supervisor != nil {
		if err := c.Supervisor.Manage(c.Coordinator, func() (core.Machine, error) {
			return newCoordinatorMachine(cfg)
		}); err != nil {
			return nil, err
		}
		for i := 1; i <= cfg.N; i++ {
			pid := core.ProcID(i)
			if err := c.Supervisor.Manage(c.Participants[pid], func() (core.Machine, error) {
				return newParticipantMachine(cfg, pid)
			}); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

func newCoordinatorMachine(cfg ClusterConfig) (core.Machine, error) {
	cc := core.CoordinatorConfig{Config: cfg.Core}
	switch cfg.Protocol {
	case ProtocolBinary, ProtocolStatic:
		cc.Membership = core.MembershipFixed
		for i := 1; i <= cfg.N; i++ {
			cc.Members = append(cc.Members, core.ProcID(i))
		}
	case ProtocolExpanding:
		cc.Membership = core.MembershipExpanding
	case ProtocolDynamic:
		cc.Membership = core.MembershipDynamic
		cc.AllowRejoin = cfg.AllowRejoin
	default:
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrNodeConfig, int(cfg.Protocol))
	}
	var m core.Machine
	var err error
	if cfg.Adaptive != nil {
		m, err = core.NewAdaptiveCoordinator(cc, *cfg.Adaptive)
	} else {
		m, err = core.NewCoordinator(cc)
	}
	if err != nil {
		return nil, err
	}
	return wrapMachine(cfg, netem.NodeID(core.CoordinatorID), m), nil
}

func newParticipantMachine(cfg ClusterConfig, pid core.ProcID) (core.Machine, error) {
	if cfg.Adaptive != nil {
		cfg.Core = cfg.Adaptive.Envelope.ResponderConfig(cfg.Core)
	}
	var m core.Machine
	var err error
	switch cfg.Protocol {
	case ProtocolBinary, ProtocolStatic:
		m, err = core.NewResponder(cfg.Core, pid)
	case ProtocolExpanding:
		m, err = core.NewParticipant(cfg.Core, pid, false)
	case ProtocolDynamic:
		m, err = core.NewParticipant(cfg.Core, pid, true)
	default:
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrNodeConfig, int(cfg.Protocol))
	}
	if err != nil {
		return nil, err
	}
	return wrapMachine(cfg, netem.NodeID(pid), m), nil
}

func wrapMachine(cfg ClusterConfig, id netem.NodeID, m core.Machine) core.Machine {
	if cfg.WrapMachine == nil {
		return m
	}
	return cfg.WrapMachine(id, m)
}

// Start arms the fault schedule (if any) and starts every node: the
// coordinator first, then participants in ascending ID order, all at
// virtual time 0.
func (c *Cluster) Start() error {
	if c.cfg.Faults != nil {
		cancel, err := c.cfg.Faults.Apply(netem.SimTicker{Sim: c.Sim}, faults.Target{
			Transport: c.Faults,
			Nodes:     c,
			Clocks:    c,
			Members:   c,
			OnError: func(e faults.Event, err error) {
				c.faultErrMu.Lock()
				defer c.faultErrMu.Unlock()
				c.faultErrs = append(c.faultErrs,
					fmt.Errorf("t=%d %s node=%d: %w", e.At, e.Kind, e.Node, err))
			},
		})
		if err != nil {
			return err
		}
		c.cancelFaults = cancel
	}
	if err := c.Coordinator.Start(); err != nil {
		return err
	}
	for i := 1; i <= len(c.Participants); i++ {
		if err := c.Participants[core.ProcID(i)].Start(); err != nil {
			return err
		}
	}
	return nil
}

// Stop disarms pending fault events and halts the supervisor, leaving the
// nodes as they are. It is safe to call on a cluster without either.
func (c *Cluster) Stop() {
	if c.cancelFaults != nil {
		c.cancelFaults()
		c.cancelFaults = nil
	}
	if c.Supervisor != nil {
		c.Supervisor.Stop()
	}
}

// FaultErrors reports the schedule events that failed at fire time
// (e.g. a crash naming a node the cluster does not have). A non-empty
// result usually means the schedule does not do what its author thinks.
func (c *Cluster) FaultErrors() []error {
	c.faultErrMu.Lock()
	defer c.faultErrMu.Unlock()
	return append([]error(nil), c.faultErrs...)
}

// node resolves a transport ID to its Node.
func (c *Cluster) node(id netem.NodeID) (*Node, error) {
	if id == netem.NodeID(core.CoordinatorID) {
		return c.Coordinator, nil
	}
	if n, ok := c.Participants[core.ProcID(id)]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("%w: no node %d in cluster", ErrNodeConfig, id)
}

// CrashNode implements faults.NodeControl.
func (c *Cluster) CrashNode(id netem.NodeID) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	n.Crash()
	return nil
}

// RestartNode implements faults.NodeControl: the node gets a fresh
// machine of its configured role, as if the process image were relaunched.
func (c *Cluster) RestartNode(id netem.NodeID) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	var m core.Machine
	if id == netem.NodeID(core.CoordinatorID) {
		m, err = newCoordinatorMachine(c.cfg)
	} else {
		m, err = newParticipantMachine(c.cfg, core.ProcID(id))
	}
	if err != nil {
		return err
	}
	return n.Restart(m)
}

// LeaveNode implements faults.MemberControl: the member announces a
// graceful departure (dynamic participants only).
func (c *Cluster) LeaveNode(id netem.NodeID) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	return n.Leave()
}

// RejoinNode implements faults.MemberControl: a departed member re-enters
// the protocol (dynamic participants with rejoin enabled only).
func (c *Cluster) RejoinNode(id netem.NodeID) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	return n.Rejoin()
}

// SetDrift implements faults.ClockControl.
func (c *Cluster) SetDrift(id netem.NodeID, num, den int64, skew core.Tick) error {
	dc, ok := c.Clocks[id]
	if !ok {
		return fmt.Errorf("%w: node %d has no driftable clock (fault injection off?)", ErrNodeConfig, id)
	}
	return dc.SetDrift(num, den, skew)
}

// AllInactiveBy reports whether every node has stopped participating
// (crashed, inactivated, or left).
func (c *Cluster) AllInactiveBy() bool {
	if c.Coordinator.Status() == core.StatusActive {
		return false
	}
	for _, n := range c.Participants {
		if n.Status() == core.StatusActive {
			return false
		}
	}
	return true
}

// FirstEvent returns the first recorded event matching kind on node, or
// false if none.
func (c *Cluster) FirstEvent(node netem.NodeID, kind EventKind) (Event, bool) {
	for _, e := range c.Events {
		if e.Node == node && e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}
