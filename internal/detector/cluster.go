package detector

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Protocol names a heartbeat protocol variant for cluster assembly.
type Protocol int

// Protocol variants.
const (
	// ProtocolBinary is the two-process accelerated protocol (N is
	// forced to 1).
	ProtocolBinary Protocol = iota + 1
	// ProtocolStatic is the fixed-membership N-process protocol.
	ProtocolStatic
	// ProtocolExpanding admits participants at run time.
	ProtocolExpanding
	// ProtocolDynamic additionally supports graceful leave.
	ProtocolDynamic
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolBinary:
		return "binary"
	case ProtocolStatic:
		return "static"
	case ProtocolExpanding:
		return "expanding"
	case ProtocolDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ClusterConfig assembles a simulated cluster: one coordinator plus N
// participants connected by a netem.Network.
type ClusterConfig struct {
	// Protocol selects the variant.
	Protocol Protocol
	// Core carries tmin/tmax and the variant/fix switches.
	Core core.Config
	// N is the number of participants (ignored for ProtocolBinary,
	// which always has exactly one).
	N int
	// Link is the default unidirectional link shape. To honour the
	// papers' round-trip bound, keep MaxDelay at or below tmin/2 per
	// direction (zero-delay links are always safe).
	Link netem.LinkConfig
	// Seed drives the simulator's randomness (loss, delays).
	Seed int64
	// AllowRejoin enables the rejoin extension (ProtocolDynamic only).
	AllowRejoin bool
}

// Cluster is a simulated deployment of one protocol instance.
type Cluster struct {
	// Sim is the virtual clock; run it to make progress.
	Sim *sim.Simulator
	// Net is the emulated network.
	Net *netem.Network
	// Coordinator is p[0].
	Coordinator *Node
	// Participants maps process IDs (1..N) to their nodes.
	Participants map[core.ProcID]*Node
	// Events records every liveness event in emission order.
	Events []Event
}

// NewCluster builds and wires a cluster; Start must still be called.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Protocol == ProtocolBinary {
		cfg.N = 1
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: cluster needs at least one participant", ErrNodeConfig)
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	s := sim.New(sim.WithSeed(cfg.Seed))
	net, err := netem.NewNetwork(s, cfg.Link)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Sim:          s,
		Net:          net,
		Participants: make(map[core.ProcID]*Node, cfg.N),
	}
	clock := SimClock{Sim: s}
	sink := EventFunc(func(e Event) { c.Events = append(c.Events, e) })

	coordMachine, err := newCoordinatorMachine(cfg)
	if err != nil {
		return nil, err
	}
	c.Coordinator, err = NewNode(Config{
		ID:              netem.NodeID(core.CoordinatorID),
		Machine:         coordMachine,
		Clock:           clock,
		Transport:       net,
		Events:          sink,
		ReceivePriority: cfg.Core.Fixed,
	})
	if err != nil {
		return nil, err
	}

	for i := 1; i <= cfg.N; i++ {
		pid := core.ProcID(i)
		machine, err := newParticipantMachine(cfg, pid)
		if err != nil {
			return nil, err
		}
		node, err := NewNode(Config{
			ID:              netem.NodeID(pid),
			Machine:         machine,
			Clock:           clock,
			Transport:       net,
			Events:          sink,
			ReceivePriority: cfg.Core.Fixed,
		})
		if err != nil {
			return nil, err
		}
		c.Participants[pid] = node
	}
	return c, nil
}

func newCoordinatorMachine(cfg ClusterConfig) (core.Machine, error) {
	cc := core.CoordinatorConfig{Config: cfg.Core}
	switch cfg.Protocol {
	case ProtocolBinary, ProtocolStatic:
		cc.Membership = core.MembershipFixed
		for i := 1; i <= cfg.N; i++ {
			cc.Members = append(cc.Members, core.ProcID(i))
		}
	case ProtocolExpanding:
		cc.Membership = core.MembershipExpanding
	case ProtocolDynamic:
		cc.Membership = core.MembershipDynamic
		cc.AllowRejoin = cfg.AllowRejoin
	default:
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrNodeConfig, int(cfg.Protocol))
	}
	return core.NewCoordinator(cc)
}

func newParticipantMachine(cfg ClusterConfig, pid core.ProcID) (core.Machine, error) {
	switch cfg.Protocol {
	case ProtocolBinary, ProtocolStatic:
		return core.NewResponder(cfg.Core, pid)
	case ProtocolExpanding:
		return core.NewParticipant(cfg.Core, pid, false)
	case ProtocolDynamic:
		return core.NewParticipant(cfg.Core, pid, true)
	default:
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrNodeConfig, int(cfg.Protocol))
	}
}

// Start starts every node: the coordinator first, then participants in
// ascending ID order, all at virtual time 0.
func (c *Cluster) Start() error {
	if err := c.Coordinator.Start(); err != nil {
		return err
	}
	for i := 1; i <= len(c.Participants); i++ {
		if err := c.Participants[core.ProcID(i)].Start(); err != nil {
			return err
		}
	}
	return nil
}

// AllInactiveBy reports whether every node has stopped participating
// (crashed, inactivated, or left).
func (c *Cluster) AllInactiveBy() bool {
	if c.Coordinator.Status() == core.StatusActive {
		return false
	}
	for _, n := range c.Participants {
		if n.Status() == core.StatusActive {
			return false
		}
	}
	return true
}

// FirstEvent returns the first recorded event matching kind on node, or
// false if none.
func (c *Cluster) FirstEvent(node netem.NodeID, kind EventKind) (Event, bool) {
	for _, e := range c.Events {
		if e.Node == node && e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}
