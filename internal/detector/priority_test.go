package detector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// raceCluster engineers the §6.1 race at the runtime level: with
// tmin = tmax and a delivery delay consuming the whole round-trip budget,
// p[1]'s watchdog expiry and the beat delivery land on the same tick, with
// the watchdog's timer event queued first (it was scheduled much earlier).
func raceCluster(t *testing.T, fixed bool) *Cluster {
	t.Helper()
	cfg := ClusterConfig{
		Protocol: ProtocolBinary,
		Core:     core.Config{TMin: 10, TMax: 10, Fixed: fixed},
		Seed:     2,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Asymmetric link honouring the tmin round-trip budget: the forward
	// leg consumes all of it (beat sent at k·tmax arrives at (k+1)·tmax,
	// exactly when p[1]'s watchdog of 2·tmax can fire), replies are
	// instant.
	if err := c.Net.SetLink(0, 1, netem.LinkConfig{MinDelay: 10, MaxDelay: 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

// TestRuntimeReceivePrioritySavesResponder: with the §6 fix the same-tick
// delivery is processed before the watchdog and the cluster survives.
func TestRuntimeReceivePrioritySavesResponder(t *testing.T) {
	c := raceCluster(t, true)
	c.Sim.RunUntil(sim.Time(400))
	if c.Participants[1].Status() != core.StatusActive {
		t.Fatalf("p[1] = %v with receive priority, want active (events %v)",
			c.Participants[1].Status(), c.Events)
	}
	if c.Coordinator.Status() != core.StatusActive {
		t.Fatalf("p[0] = %v with receive priority, want active", c.Coordinator.Status())
	}
}

// TestRuntimeWithoutPriorityLosesRace: without the fix the earlier-queued
// watchdog timer fires first and p[1] falsely inactivates — the runtime
// rendition of Figure 11.
func TestRuntimeWithoutPriorityLosesRace(t *testing.T) {
	c := raceCluster(t, false)
	c.Sim.RunUntil(sim.Time(400))
	if c.Participants[1].Status() != core.StatusInactive {
		t.Fatalf("p[1] = %v without receive priority, want the Figure 11 false inactivation",
			c.Participants[1].Status())
	}
}
