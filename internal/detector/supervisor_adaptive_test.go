package detector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// lonelyResponder builds a responder with no coordinator under sup: it
// inactivates every ResponderBound, so the supervisor restarts it on a
// fixed cadence — a clean probe for restart pacing.
func lonelyResponder(t *testing.T, sup *Supervisor, clock Clock, net netem.Transport) *Node {
	t.Helper()
	cfg := core.Config{TMin: 2, TMax: 10}
	m, err := core.NewResponder(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewNode(Config{ID: 1, Machine: m, Clock: clock, Transport: net, Events: sup})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Manage(resp, func() (core.Machine, error) { return core.NewResponder(cfg, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := resp.Start(); err != nil {
		t.Fatal(err)
	}
	return resp
}

// restartTimes extracts the times of EventRestarted for node 1.
func restartTimes(events []Event) []core.Tick {
	var out []core.Tick
	for _, e := range events {
		if e.Node == 1 && e.Kind == EventRestarted {
			out = append(out, e.Time)
		}
	}
	return out
}

// TestSupervisorBackoffResetAfterCleanRejoin is the regression test for
// the backoff exponent: repeated restarts grow it, but a clean rejoin
// (EventJoined from the node) must reset it to zero so the next failure
// episode starts from Base again — only the lifetime restart budget keeps
// counting.
func TestSupervisorBackoffResetAfterCleanRejoin(t *testing.T) {
	s := sim.New(sim.WithSeed(7))
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clock := SimClock{Sim: s}
	var events []Event
	sup, err := NewSupervisor(SupervisorConfig{
		Clock:      clock,
		Events:     EventFunc(func(e Event) { events = append(events, e) }),
		CheckEvery: 4,
		Backoff:    Backoff{Base: 2, Max: 256},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	lonelyResponder(t, sup, clock, net)

	s.RunUntil(400)
	times := restartTimes(events)
	if len(times) < 3 {
		t.Fatalf("expected at least 3 restarts, got %d", len(times))
	}
	gap := func(i int) core.Tick { return times[i+1] - times[i] }
	// The exponent grows: each inter-restart gap is at least the previous
	// one plus the doubled backoff share.
	if gap(1) <= gap(0) {
		t.Fatalf("backoff not growing: gaps %d then %d", gap(0), gap(1))
	}
	attemptNow := func() int {
		sup.mu.Lock()
		defer sup.mu.Unlock()
		return sup.nodes[1].attempt
	}
	grown := attemptNow()
	if grown < 3 {
		t.Fatalf("attempt = %d after %d restarts, want >= 3", grown, len(times))
	}
	budget := sup.Restarts(1)

	// A clean rejoin ends the episode: exponent resets, budget does not.
	sup.HandleEvent(Event{Time: clock.Now(), Node: 1, Kind: EventJoined})
	if got := attemptNow(); got != 0 {
		t.Fatalf("attempt = %d after clean rejoin, want 0", got)
	}
	if got := sup.Restarts(1); got != budget {
		t.Fatalf("restart budget changed on rejoin: %d -> %d", budget, got)
	}

	// The next failure episode paces from Base again: the first
	// post-rejoin gap drops back below the grown pre-rejoin gap.
	events = events[:0]
	s.RunUntil(800)
	times = restartTimes(events)
	if len(times) < 2 {
		t.Fatalf("expected restarts after rejoin, got %d", len(times))
	}
	if first := times[1] - times[0]; first >= gap(1) {
		t.Fatalf("backoff did not reset: post-rejoin gap %d >= pre-rejoin gap %d", first, gap(1))
	}
}

// TestSupervisorEnvelopeAwareBackoff drives the same failing node twice —
// once healthy, once after a retune above the envelope floor — and checks
// that the degraded guard stretches every restart delay by
// DegradedFactor, and releases once the coordinator tightens back.
func TestSupervisorEnvelopeAwareBackoff(t *testing.T) {
	env := core.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
	run := func(retuneTMax core.Tick) ([]core.Tick, SupervisorMetrics) {
		s := sim.New(sim.WithSeed(9))
		net, err := netem.NewNetwork(s, netem.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		clock := SimClock{Sim: s}
		var events []Event
		sup, err := NewSupervisor(SupervisorConfig{
			Clock:          clock,
			Events:         EventFunc(func(e Event) { events = append(events, e) }),
			CheckEvery:     4,
			Backoff:        Backoff{Base: 8, Max: 8},
			Envelope:       &env,
			DegradedFactor: 4,
			Seed:           9,
		})
		if err != nil {
			t.Fatal(err)
		}
		lonelyResponder(t, sup, clock, net)
		if retuneTMax != 0 {
			sup.HandleEvent(Event{Node: 0, Kind: EventRetuned, TMin: 2, TMax: retuneTMax})
		}
		s.RunUntil(120)
		return restartTimes(events), sup.Metrics()
	}

	healthy, hm := run(0)
	degraded, dm := run(32)
	if len(healthy) == 0 || len(degraded) == 0 {
		t.Fatalf("expected restarts in both runs: %v / %v", healthy, degraded)
	}
	if hm.Degraded || hm.RestartsHeld != 0 {
		t.Fatalf("healthy run tripped the guard: %+v", hm)
	}
	if !dm.Degraded || dm.RestartsHeld == 0 {
		t.Fatalf("degraded run did not trip the guard: %+v", dm)
	}
	if dm.TMax != 32 {
		t.Fatalf("guard did not record the operating point: %+v", dm)
	}
	// Same seed, same poll cadence: the only difference is the stretched
	// backoff, Base·(DegradedFactor-1) = 24 ticks on the first restart.
	if d := degraded[0] - healthy[0]; d != 24 {
		t.Fatalf("first restart delayed by %d, want 24", d)
	}

	// A retune back to the envelope floor releases the guard.
	s := sim.New()
	sup, err := NewSupervisor(SupervisorConfig{Clock: SimClock{Sim: s}, Envelope: &env})
	if err != nil {
		t.Fatal(err)
	}
	sup.HandleEvent(Event{Kind: EventRetuned, TMin: 2, TMax: 32})
	if !sup.Metrics().Degraded {
		t.Fatal("widened retune did not degrade")
	}
	sup.HandleEvent(Event{Kind: EventRetuned, TMin: 2, TMax: 8})
	m := sup.Metrics()
	if m.Degraded {
		t.Fatal("floor retune did not release the guard")
	}
	if m.Retunes != 2 {
		t.Fatalf("Retunes = %d, want 2", m.Retunes)
	}
}

// TestSupervisorMetricsTransitions checks the suspect→confirmed counters.
func TestSupervisorMetricsTransitions(t *testing.T) {
	s := sim.New()
	sup, err := NewSupervisor(SupervisorConfig{Clock: SimClock{Sim: s}, ConfirmAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Peer 2: suspicion hardens into a confirm. Duplicate suspicions of an
	// already-suspected peer do not double-count.
	sup.HandleEvent(Event{Node: 0, Kind: EventSuspect, Proc: 2})
	sup.HandleEvent(Event{Node: 0, Kind: EventSuspect, Proc: 2})
	// Peer 3: contradicted inside the window, never confirmed.
	sup.HandleEvent(Event{Node: 3, Kind: EventSuspect, Proc: 3})
	sup.HandleEvent(Event{Node: 3, Kind: EventJoined})
	s.RunUntil(30)
	m := sup.Metrics()
	if m.Suspects != 2 {
		t.Fatalf("Suspects = %d, want 2", m.Suspects)
	}
	if m.Confirms != 1 {
		t.Fatalf("Confirms = %d, want 1", m.Confirms)
	}
}
