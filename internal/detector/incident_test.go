package detector

import (
	"testing"

	"repro/internal/sim"
)

// TestSupervisorReportIncident: incidents from an attached conformance
// checker are counted and emitted as EventIncident with the summary in
// Detail — including after Stop, since streaming checkers file their
// loss-gated verdicts at Finish, after the run ends.
func TestSupervisorReportIncident(t *testing.T) {
	s := sim.New(sim.WithSeed(1))
	clock := SimClock{Sim: s}
	var events []Event
	sup, err := NewSupervisor(SupervisorConfig{
		Clock:  clock,
		Events: EventFunc(func(e Event) { events = append(events, e) }),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}

	sup.ReportIncident(0, "divergence at t=7 (event 3): timeout p[0]")
	sup.Stop()
	sup.ReportIncident(2, "R2 violated at t=40 by p[2] (event 9)")

	if got := sup.Metrics().Incidents; got != 2 {
		t.Fatalf("Incidents = %d, want 2", got)
	}
	var inc []Event
	for _, e := range events {
		if e.Kind == EventIncident {
			inc = append(inc, e)
		}
	}
	if len(inc) != 2 {
		t.Fatalf("EventIncident count = %d, want 2: %v", len(inc), events)
	}
	if inc[0].Node != 0 || inc[0].Detail != "divergence at t=7 (event 3): timeout p[0]" {
		t.Fatalf("first incident = %+v", inc[0])
	}
	if inc[1].Node != 2 || inc[1].Detail != "R2 violated at t=40 by p[2] (event 9)" {
		t.Fatalf("post-Stop incident = %+v", inc[1])
	}
	if EventIncident.String() != "incident" {
		t.Fatalf("EventIncident.String() = %q", EventIncident.String())
	}
}
