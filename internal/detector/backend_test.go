package detector

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// stepLog records every machine step of every node, rendered to strings,
// so two cluster runs can be compared step for step.
type stepLog struct {
	steps []string
}

func (l *stepLog) ObserveStep(id netem.NodeID, now core.Tick, tr Trigger, actions []core.Action) {
	l.steps = append(l.steps, fmt.Sprintf("t=%d node=%d trig=%v beat=%+v timer=%v actions=%v",
		now, id, tr.Kind, tr.Beat, tr.Timer, actions))
}

// TestClusterTraceIdenticalAcrossQueueBackends pins the contract
// ClusterConfig.TimerWheel documents: the hierarchical timer wheel and
// the 4-ary heap produce the same execution order, so every machine step
// and every liveness event of a cluster run is identical on both
// backends — across protocol variants, lossy links, and random seeds.
func TestClusterTraceIdenticalAcrossQueueBackends(t *testing.T) {
	protos := []Protocol{ProtocolBinary, ProtocolStatic, ProtocolExpanding, ProtocolDynamic}
	for _, proto := range protos {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", proto, seed), func(t *testing.T) {
				run := func(wheel bool) ([]string, []Event) {
					log := &stepLog{}
					c, err := NewCluster(ClusterConfig{
						Protocol: proto,
						Core:     core.Config{TMin: 2, TMax: 16},
						N:        3,
						Link: netem.LinkConfig{
							MaxDelay: 1,
							LossProb: 0.05,
						},
						Seed:       seed,
						Observe:    log,
						TimerWheel: wheel,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := c.Start(); err != nil {
						t.Fatal(err)
					}
					c.Sim.RunUntil(2_000)
					return log.steps, c.Events
				}
				heapSteps, heapEvents := run(false)
				wheelSteps, wheelEvents := run(true)
				if len(heapSteps) == 0 {
					t.Fatal("no machine steps recorded")
				}
				if len(heapSteps) != len(wheelSteps) {
					t.Fatalf("step counts diverge: heap %d, wheel %d", len(heapSteps), len(wheelSteps))
				}
				for i := range heapSteps {
					if heapSteps[i] != wheelSteps[i] {
						t.Fatalf("step %d diverges:\n  heap:  %s\n  wheel: %s", i, heapSteps[i], wheelSteps[i])
					}
				}
				if len(heapEvents) != len(wheelEvents) {
					t.Fatalf("event counts diverge: heap %d, wheel %d", len(heapEvents), len(wheelEvents))
				}
				for i := range heapEvents {
					if heapEvents[i] != wheelEvents[i] {
						t.Fatalf("event %d diverges: heap %+v, wheel %+v", i, heapEvents[i], wheelEvents[i])
					}
				}
			})
		}
	}
}

// The same benchmark loop hbbench times, on both queue backends: event
// counts must agree exactly (the wheel changes the clock's data
// structure, never the schedule).
func TestClusterBenchmarkCountsMatchAcrossBackends(t *testing.T) {
	count := func(wheel bool) uint64 {
		c, err := NewCluster(ClusterConfig{
			Protocol:   ProtocolBinary,
			Core:       core.Config{TMin: 2, TMax: 16},
			Seed:       7,
			TimerWheel: wheel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		c.Sim.RunUntil(sim.Time(100_000))
		return c.Sim.EventsExecuted()
	}
	if h, w := count(false), count(true); h != w {
		t.Errorf("events executed diverge: heap %d, wheel %d", h, w)
	}
}
