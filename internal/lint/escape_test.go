package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeEscapeFixture lays out a fake module with one source file shaped
// so line numbers land inside known declarations, and returns its root.
func writeEscapeFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	src := `package wheel

type TimerWheel struct{ arena []int }

func (w *TimerWheel) growArena(n int) {
	w.arena = append(w.arena, make([]int, n)...)
}

func Step(n int) *int {
	x := n
	return &x
}
`
	dir := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wheel.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// TestParseEscapeOutput pins the reduction of raw -gcflags=-m output to
// site classes: only heap diagnostics count, messages with colons
// survive the field split, same-class lines aggregate into one count,
// and each class is attributed to its enclosing declaration.
func TestParseEscapeOutput(t *testing.T) {
	root := writeEscapeFixture(t)
	out := strings.Join([]string{
		"# repro/internal/core",
		"internal/core/wheel.go:5: can inline (*TimerWheel).growArena", // inline chatter: ignored
		"internal/core/wheel.go:6:28: make([]int, n) escapes to heap",
		"internal/core/wheel.go:6:28: make([]int, n) escapes to heap", // same class, second line
		"internal/core/wheel.go:10:2: moved to heap: x",
		"internal/core/wheel.go:11:9: &x does not escape", // proof, not a heap site: ignored
		"",
	}, "\n")
	sites, err := parseEscapeOutput(root, out)
	if err != nil {
		t.Fatal(err)
	}
	want := []EscapeSite{
		{File: "internal/core/wheel.go", Func: "(*TimerWheel).growArena", Message: "make([]int, n) escapes to heap", Count: 2, Line: 6},
		{File: "internal/core/wheel.go", Func: "Step", Message: "moved to heap: x", Count: 1, Line: 10},
	}
	if !reflect.DeepEqual(sites, want) {
		t.Errorf("sites:\ngot  %+v\nwant %+v", sites, want)
	}
}

// TestEscapeBudgetRoundTrip pins the budget file format: what
// WriteEscapeBudget emits, LoadEscapeBudget reads back identically
// (minus the informational Line, which is not part of the identity).
func TestEscapeBudgetRoundTrip(t *testing.T) {
	sites := []EscapeSite{
		{File: "internal/core/wheel.go", Func: "(*TimerWheel).growArena", Message: "make([]int, n) escapes to heap", Count: 2, Line: 6},
		{File: "internal/sim/sim.go", Func: "Step", Message: "moved to heap: x", Count: 1, Line: 10},
	}
	path := filepath.Join(t.TempDir(), "escape_budget.txt")
	if err := WriteEscapeBudget(path, sites); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEscapeBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]EscapeSite, len(sites))
	copy(want, sites)
	for i := range want {
		want[i].Line = 0
	}
	if !reflect.DeepEqual(loaded, want) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", loaded, want)
	}
	if diff := DiffEscapeBudget(loaded, sites); len(diff) != 0 {
		t.Errorf("freshly written budget should diff clean, got %v", diff)
	}
}

// TestDiffEscapeBudget pins the four drift classes — new, grown,
// shrunk, vanished — each as a gate failure with its own message shape.
func TestDiffEscapeBudget(t *testing.T) {
	budget := []EscapeSite{
		{File: "a.go", Func: "F", Message: "moved to heap: x", Count: 2},
		{File: "b.go", Func: "G", Message: "make([]int, n) escapes to heap", Count: 3},
		{File: "c.go", Func: "H", Message: "moved to heap: y", Count: 1},
	}
	current := []EscapeSite{
		{File: "a.go", Func: "F", Message: "moved to heap: x", Count: 4, Line: 7},      // grown
		{File: "b.go", Func: "G", Message: "make([]int, n) escapes to heap", Count: 1}, // shrunk
		{File: "d.go", Func: "K", Message: "&x escapes to heap", Count: 1, Line: 12},   // new
		// c.go H vanished
	}
	findings := DiffEscapeBudget(budget, current)
	wantSubstr := []string{
		"heap allocation sites in F grew past budget",
		"stale escape budget: G \"make([]int, n) escapes to heap\" budgets 3 sites, compiler reports 1",
		"stale escape budget: H \"moved to heap: y\" no longer reported",
		"new heap allocation site in K",
	}
	if len(findings) != len(wantSubstr) {
		t.Fatalf("want %d findings, got %v", len(wantSubstr), findings)
	}
	for i, w := range wantSubstr {
		if !strings.Contains(findings[i].Message, w) {
			t.Errorf("finding %d = %q, want it to contain %q", i, findings[i].Message, w)
		}
		if findings[i].Check != "escape-budget" {
			t.Errorf("finding %d check = %q, want escape-budget", i, findings[i].Check)
		}
	}
}
