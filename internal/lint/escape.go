package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The compiler escape-budget gate: the AST heuristics of the noalloc
// checks see likely allocation *sites*; the compiler's escape analysis
// sees the truth — boxing it introduces, receivers it spills, maps it
// grows. `hbvet -escape` runs `go build -gcflags=-m` over the hot-path
// packages, reduces the heap diagnostics to per-function allocation-site
// classes (file, enclosing function, normalized message — line numbers
// excluded so unrelated edits above a site do not churn the file), and
// diffs them against the checked-in budget. Any class that appears,
// grows, shrinks, or disappears relative to the budget is a finding:
// new heap sites fail the gate, and stale entries force a regeneration
// (`hbvet -escape -update`) so the budget always reproduces cleanly.

// HotPathPackages is the package set under the escape budget: the
// steady-state engines whose allocation behaviour the benchmarks and
// 0-alloc tests pin.
var HotPathPackages = []string{
	"./internal/core",
	"./internal/detector",
	"./internal/ensemble",
	"./internal/fleet",
	"./internal/mc",
	"./internal/sim",
}

// EscapeBudgetFile is the checked-in budget, relative to the module
// root.
const EscapeBudgetFile = "escape_budget.txt"

// EscapeSite is one class of compiler-reported heap allocation:
// everything the diagnostics say about (file, function, message),
// aggregated over lines.
type EscapeSite struct {
	File    string // module-relative, slash-separated
	Func    string // enclosing declaration ("(*TimerWheel).growArena"), or "<file>" outside any
	Message string // normalized diagnostic ("make([]wheelNode, n) escapes to heap")
	Count   int
	// Line is the first source line the class was seen at in this run;
	// informational only (not part of the identity or the budget file).
	Line int
}

// escapeKey identifies a site class in budget diffs.
func (s EscapeSite) escapeKey() string { return s.File + "\x00" + s.Func + "\x00" + s.Message }

// EscapeSites compiles the packages with -gcflags=-m under the module
// root and returns the aggregated heap-allocation site classes, sorted.
// Go ≥1.24 replays cached compiler diagnostics, so warm runs are cheap.
func EscapeSites(root string, patterns []string) ([]EscapeSite, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, out)
	}
	return parseEscapeOutput(root, string(out))
}

// parseEscapeOutput reduces compiler -m output to sorted site classes.
// Only heap diagnostics count ("escapes to heap", "moved to heap");
// inlining chatter and "does not escape" proofs are ignored.
func parseEscapeOutput(root string, out string) ([]EscapeSite, error) {
	type raw struct {
		file string
		line int
		msg  string
	}
	var raws []raw
	files := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasSuffix(line, " escapes to heap") && !strings.Contains(line, "moved to heap:") {
			continue
		}
		// file.go:line:col: message — the message may itself contain
		// colons, so split only the three leading fields.
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := filepath.ToSlash(parts[0])
		raws = append(raws, raw{file: file, line: ln, msg: strings.TrimSpace(parts[3])})
		files[file] = true
	}
	// Map lines to enclosing declarations per file.
	locators := map[string]*funcLocator{}
	for file := range files {
		loc, err := newFuncLocator(filepath.Join(root, filepath.FromSlash(file)))
		if err != nil {
			return nil, err
		}
		locators[file] = loc
	}
	agg := map[string]*EscapeSite{}
	for _, r := range raws {
		site := EscapeSite{File: r.file, Func: locators[r.file].funcAt(r.line), Message: r.msg, Line: r.line}
		if cur, ok := agg[site.escapeKey()]; ok {
			cur.Count++
			if r.line < cur.Line {
				cur.Line = r.line
			}
		} else {
			site.Count = 1
			agg[site.escapeKey()] = &site
		}
	}
	sites := make([]EscapeSite, 0, len(agg))
	for _, s := range agg {
		sites = append(sites, *s)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		if sites[i].Func != sites[j].Func {
			return sites[i].Func < sites[j].Func
		}
		return sites[i].Message < sites[j].Message
	})
	return sites, nil
}

// funcLocator maps source lines to enclosing top-level declarations of
// one file. A plain parse suffices — no type checking.
type funcLocator struct {
	fset  *token.FileSet
	spans []funcSpan
}

type funcSpan struct {
	name       string
	start, end int
}

func newFuncLocator(path string) (*funcLocator, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("lint: locating functions in %s: %w", path, err)
	}
	loc := &funcLocator{fset: fset}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		loc.spans = append(loc.spans, funcSpan{
			name:  declName(fn),
			start: fset.Position(fn.Pos()).Line,
			end:   fset.Position(fn.End()).Line,
		})
	}
	return loc, nil
}

// declName renders a declaration as the budget file names it:
// "Step", "(*TimerWheel).growArena", "Config.NextWait".
func declName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
		star = "*"
	}
	// Strip generic receiver type parameters.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok {
		t = ix.X
	}
	name := "?"
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if star != "" {
		return "(" + star + name + ")." + fn.Name.Name
	}
	return name + "." + fn.Name.Name
}

func (l *funcLocator) funcAt(line int) string {
	for _, s := range l.spans {
		if line >= s.start && line <= s.end {
			return s.name
		}
	}
	return "<file>"
}

// WriteEscapeBudget writes the budget file: a header, then one
// tab-separated line per site class.
func WriteEscapeBudget(path string, sites []EscapeSite) error {
	var b strings.Builder
	b.WriteString("# hbvet escape budget — per-function heap-allocation site classes for the\n")
	b.WriteString("# hot-path packages, from `go build -gcflags=-m` (lines: file, function,\n")
	b.WriteString("# count, diagnostic). The CI gate `hbvet -escape` fails on any drift;\n")
	b.WriteString("# regenerate with `go run ./cmd/hbvet -escape -update` after reviewing that\n")
	b.WriteString("# every new site is intentional.\n")
	for _, s := range sites {
		fmt.Fprintf(&b, "%s\t%s\t%d\t%s\n", s.File, s.Func, s.Count, s.Message)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// LoadEscapeBudget parses a budget file written by WriteEscapeBudget.
func LoadEscapeBudget(path string) ([]EscapeSite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sites []EscapeSite
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("lint: %s:%d: malformed budget line %q", path, i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("lint: %s:%d: bad site count %q", path, i+1, parts[2])
		}
		sites = append(sites, EscapeSite{File: parts[0], Func: parts[1], Count: n, Message: parts[3]})
	}
	return sites, nil
}

// DiffEscapeBudget compares the current compiler-reported sites against
// the budget and returns one finding per drifted class: growth or a new
// class is a new heap allocation site; shrinkage or disappearance is a
// stale budget entry (the gate fails on both so the checked-in file
// always reproduces from -update).
func DiffEscapeBudget(budget, current []EscapeSite) []Finding {
	budgeted := map[string]EscapeSite{}
	for _, s := range budget {
		budgeted[s.escapeKey()] = s
	}
	var findings []Finding
	seen := map[string]bool{}
	for _, s := range current {
		seen[s.escapeKey()] = true
		b, ok := budgeted[s.escapeKey()]
		switch {
		case !ok:
			findings = append(findings, Finding{
				Check: "escape-budget",
				Pos:   token.Position{Filename: s.File, Line: s.Line},
				Message: fmt.Sprintf("new heap allocation site in %s: %q ×%d is not in the escape budget; eliminate it or regenerate with hbvet -escape -update",
					s.Func, s.Message, s.Count),
			})
		case s.Count > b.Count:
			findings = append(findings, Finding{
				Check: "escape-budget",
				Pos:   token.Position{Filename: s.File, Line: s.Line},
				Message: fmt.Sprintf("heap allocation sites in %s grew past budget: %q ×%d (budget %d); eliminate the growth or regenerate with hbvet -escape -update",
					s.Func, s.Message, s.Count, b.Count),
			})
		case s.Count < b.Count:
			findings = append(findings, Finding{
				Check: "escape-budget",
				Pos:   token.Position{Filename: s.File, Line: s.Line},
				Message: fmt.Sprintf("stale escape budget: %s %q budgets %d sites, compiler reports %d; regenerate with hbvet -escape -update",
					s.Func, s.Message, b.Count, s.Count),
			})
		}
	}
	for _, s := range budget {
		if !seen[s.escapeKey()] {
			findings = append(findings, Finding{
				Check: "escape-budget",
				Pos:   token.Position{Filename: s.File},
				Message: fmt.Sprintf("stale escape budget: %s %q no longer reported by the compiler; regenerate with hbvet -escape -update",
					s.Func, s.Message),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings
}
