package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerNoAlloc checks functions annotated //hbvet:noalloc: the
// steady-state hot paths whose allocation behaviour is pinned by
// sim/alloc_test.go and the checker benchmarks. The analyzer rejects
// likely allocation sites in the annotated body:
//
//   - make and new calls;
//   - address-taken composite literals (&T{...}) and slice/map literals;
//   - closures (func literals), unless immediately invoked — a closure
//     that is stored or passed away generally escapes and allocates;
//   - append whose destination differs from its source slice (building a
//     fresh slice rather than growing a recycled one in place);
//   - implicit interface conversions of non-constant values at call
//     arguments, assignments, and returns (boxing allocates), which also
//     catches fmt.Errorf/Sprintf on hot paths;
//   - non-constant string concatenation.
//
// Warm-up branches and cold error paths inside an annotated function are
// expected to carry //lint:allow hot-path-alloc suppressions with a
// justification: the annotation then documents exactly which lines may
// allocate and why.
var AnalyzerNoAlloc = &Analyzer{
	Name: "hot-path-alloc",
	Doc:  "//hbvet:noalloc functions must not contain likely allocation sites",
	Run:  runNoAlloc,
}

// noallocDirective is the annotation marking a function's body
// allocation-free in steady state.
const noallocDirective = "//hbvet:noalloc"

// HasNoallocDirective reports whether the declaration carries the
// //hbvet:noalloc annotation (exported for the driver's self-tests).
func HasNoallocDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == noallocDirective {
			return true
		}
	}
	return false
}

func runNoAlloc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasNoallocDirective(fn) {
				continue
			}
			w := &noallocWalker{info: p.Info, fn: fn, where: "noalloc function " + fn.Name.Name, report: p.Reportf}
			w.block(fn.Body)
		}
	}
}

// noallocViolation is one likely allocation site collected by the
// walker when it runs detached from a Pass (the closure analyzer checks
// unannotated reachable functions this way).
type noallocViolation struct {
	Pos     token.Pos
	Message string
}

// collectNoallocViolations runs the allocation-site walker over fn's
// body without reporting, returning the violations in source order.
func collectNoallocViolations(info *types.Info, fn *ast.FuncDecl) []noallocViolation {
	var out []noallocViolation
	w := &noallocWalker{info: info, fn: fn, where: "function " + fn.Name.Name, report: func(pos token.Pos, format string, args ...any) {
		out = append(out, noallocViolation{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}}
	w.block(fn.Body)
	return out
}

// noallocWalker walks one annotated function body tracking just enough
// context (immediate-call parents, enclosing assignment targets) to
// classify each node.
type noallocWalker struct {
	info *types.Info
	fn   *ast.FuncDecl
	// where names the function in messages: "noalloc function Step" for
	// annotated bodies, plain "function Step" when the closure check
	// walks an unannotated reachable function.
	where  string
	report func(pos token.Pos, format string, args ...any)
}

func (w *noallocWalker) block(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if !w.immediatelyInvoked(body, node) {
				w.report(node.Pos(), "closure in %s likely escapes and allocates", w.where)
			}
			return false // the closure body runs outside the annotated path
		case *ast.CallExpr:
			w.call(node)
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					w.report(node.Pos(), "address-taken composite literal allocates in %s", w.where)
				}
			}
		case *ast.CompositeLit:
			t := w.info.TypeOf(node)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.report(node.Pos(), "%s literal allocates its backing store in %s", kindName(t), w.where)
				}
			}
		case *ast.AssignStmt:
			w.assign(node)
		case *ast.ReturnStmt:
			w.returnStmt(node)
		case *ast.BinaryExpr:
			if nt := w.info.TypeOf(node); nt != nil && node.Op.String() == "+" {
				if t, ok := nt.Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					if tv, ok := w.info.Types[node]; !ok || tv.Value == nil {
						w.report(node.Pos(), "string concatenation allocates in %s", w.where)
					}
				}
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "composite"
	}
}

// immediatelyInvoked reports whether lit appears as the Fun of a call
// expression (func(){...}()).
func (w *noallocWalker) immediatelyInvoked(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
			invoked = true
		}
		return !invoked
	})
	return invoked
}

func (w *noallocWalker) call(call *ast.CallExpr) {
	// Type conversions.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			w.ifaceConv(call.Args[0], tv.Type, "conversion")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.report(call.Pos(), "make allocates in %s", w.where)
			case "new":
				w.report(call.Pos(), "new allocates in %s", w.where)
			case "panic":
				if len(call.Args) == 1 {
					w.ifaceConv(call.Args[0], nil, "panic argument")
				}
			}
			return
		}
	}
	// Ordinary calls: check each argument against the parameter type.
	sig, ok := w.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		w.ifaceConv(arg, pt, "argument")
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		// The variadic slice itself is allocated per call.
		w.report(call.Pos(), "variadic call allocates its argument slice in %s", w.where)
	}
}

// ifaceConv flags expr when assigning it to target boxes a non-constant
// concrete value into an interface. A nil target means any-typed
// (panic).
func (w *noallocWalker) ifaceConv(expr ast.Expr, target types.Type, what string) {
	tv, ok := w.info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return // constants and nil are interned or pointer-free
	}
	if target != nil && !types.IsInterface(target) {
		return
	}
	if tv.Type == nil || types.IsInterface(tv.Type) {
		return // interface-to-interface carries the existing box
	}
	// Small pointer-shaped values (pointers, channels, maps, funcs) fit
	// the interface data word without boxing.
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	w.report(expr.Pos(), "interface %s boxes a %s and may allocate in %s", what, tv.Type.String(), w.where)
}

func (w *noallocWalker) assign(st *ast.AssignStmt) {
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		// append discipline: growing a recycled slice in place
		// (x = append(x, ...)) is amortised by the arena; any other
		// shape builds a fresh slice.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(w.info, call) {
			dst := baseObject(w.info, st.Lhs[i])
			src := baseObject(w.info, call.Args[0])
			if dst == nil || src == nil || dst != src {
				w.report(call.Pos(), "append result lands in a different slice than its source in %s; grow the recycled buffer in place (x = append(x, ...))", w.where)
			}
			continue
		}
		// Implicit interface conversion on assignment.
		if lt := w.info.TypeOf(st.Lhs[i]); lt != nil && types.IsInterface(lt) {
			w.ifaceConv(rhs, lt, "assignment")
		}
	}
}

func (w *noallocWalker) returnStmt(st *ast.ReturnStmt) {
	if w.fn.Type.Results == nil || len(st.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range w.fn.Type.Results.List {
		t := w.info.TypeOf(f.Type)
		n := max(1, len(f.Names))
		for k := 0; k < n; k++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(st.Results) != len(resultTypes) {
		return // multi-value call forwarding: conversions happen at the callee
	}
	for i, res := range st.Results {
		if types.IsInterface(resultTypes[i]) {
			w.ifaceConv(res, resultTypes[i], "return")
		}
	}
}
