package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerDeterminismTaint propagates wall-clock and global-rand taint
// through the call graph: only the allowlisted wall-clock boundary
// files may *transitively* reach time.Now, the time.Timer/Ticker rearm
// methods, or the global math/rand generator. The intraprocedural
// determinism check catches direct calls; this pass catches the
// launderers — a wrapper around time.Now, a helper that stores time.Now
// as a function value, a utility three calls up from the clock read.
//
// Taint rules:
//
//   - a function declared in an allowlisted file is a sanctioned
//     boundary: it may be tainted and does not propagate (callers of
//     detector.WallClock methods are the design, not a leak);
//   - a direct nondeterminism call covered by a //lint:allow
//     determinism suppression is likewise sanctioned and does not seed
//     taint (the justification is the boundary documentation);
//   - a *reference* to a nondeterministic function or to a tainted
//     declared function (f := time.Now; handlers[k] = wrapper) taints
//     the referencing function — the value can fire anywhere.
//
// Findings carry the full laundering chain (scenario.stamp →
// util.nowMillis → time.Now).
var AnalyzerDeterminismTaint = &ProgramAnalyzer{
	Name: "determinism-taint",
	Doc:  "only allowlisted wall-clock boundary files may transitively reach time.Now or global math/rand",
	Run:  runDeterminismTaint,
}

// taintCause records why a function is tainted: the call/reference site
// and either the stdlib source label (terminal) or the tainted callee.
type taintCause struct {
	pos    token.Pos
	label  string      // terminal stdlib source label ("time.Now"), or ""
	callee *types.Func // tainted declared callee, or nil at a terminal
	ref    bool        // tainted via function-value reference, not a call
}

func runDeterminismTaint(pp *ProgramPass) {
	prog := pp.Prog
	allow := pp.Config.WallClockAllow
	if allow == nil {
		allow = DefaultWallClockAllow
	}
	boundary := func(fn *types.Func) bool {
		d := prog.decls[fn]
		return d == nil || progFileAllowed(prog, d.decl.Pos(), allow)
	}
	// A site covered by a determinism or determinism-taint suppression is
	// a sanctioned source/edge: it neither seeds nor propagates taint.
	sanctioned := func(pos token.Pos) bool {
		a := pp.Sanctioned("determinism", pos)
		b := pp.Sanctioned("determinism-taint", pos)
		return a || b
	}

	tainted := map[*types.Func]*taintCause{}
	var queue []*types.Func

	// Seed: direct calls to and references of nondeterministic stdlib
	// functions from non-boundary functions, unless the site carries a
	// determinism suppression.
	for _, fn := range prog.declList {
		if boundary(fn) {
			continue
		}
		for _, e := range prog.calls[fn] {
			label, _, ok := nondetCallee(e.Callee)
			if !ok || sanctioned(e.Pos) {
				continue
			}
			if tainted[fn] == nil {
				tainted[fn] = &taintCause{pos: e.Pos, label: label}
				queue = append(queue, fn)
			}
		}
		if tainted[fn] != nil {
			continue
		}
		for _, r := range prog.funcRefs[fn] {
			label, _, ok := nondetCallee(r.Func)
			if !ok || sanctioned(r.Pos) {
				continue
			}
			tainted[fn] = &taintCause{pos: r.Pos, label: label, ref: true}
			queue = append(queue, fn)
			break
		}
	}

	// Reverse adjacency (calls and references), deterministic order.
	type revEdge struct {
		caller *types.Func
		pos    token.Pos
		ref    bool
	}
	rev := map[*types.Func][]revEdge{}
	for _, fn := range prog.declList {
		if boundary(fn) {
			continue // boundary callers are sanctioned consumers
		}
		for _, e := range prog.calls[fn] {
			if prog.decls[e.Callee] != nil {
				rev[e.Callee] = append(rev[e.Callee], revEdge{caller: fn, pos: e.Pos})
			}
		}
		for _, r := range prog.funcRefs[fn] {
			if prog.decls[r.Func] != nil {
				rev[r.Func] = append(rev[r.Func], revEdge{caller: fn, pos: r.Pos, ref: true})
			}
		}
	}

	// Propagate: a non-boundary function calling or referencing a
	// tainted non-boundary function is tainted. Boundary callees never
	// entered the tainted set, so propagation stops at the allowlist.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range rev[fn] {
			if tainted[e.caller] != nil {
				continue
			}
			if sanctioned(e.pos) {
				continue
			}
			tainted[e.caller] = &taintCause{pos: e.pos, callee: fn, ref: e.ref}
			queue = append(queue, e.caller)
		}
	}

	// Report, one finding per tainted function, chain down to the
	// stdlib source.
	for _, fn := range prog.declList {
		c := tainted[fn]
		if c == nil {
			continue
		}
		chain := []string{funcLabel(fn)}
		how := "calls"
		if c.ref {
			how = "captures a reference to"
		}
		for cur := c; ; {
			if cur.callee == nil {
				chain = append(chain, cur.label)
				break
			}
			chain = append(chain, funcLabel(cur.callee))
			cur = tainted[cur.callee]
		}
		pp.Reportf(c.pos, chain,
			"%s %s and so transitively reaches %s outside the wall-clock boundary (%s); thread a sim/detector clock or a seeded *rand.Rand instead, or move the boundary into the allowlist",
			funcLabel(fn), how, chain[len(chain)-1], strings.Join(chain, " → "))
	}
}

// progFileAllowed reports whether pos sits in a file matching one of
// the allowlisted path suffixes.
func progFileAllowed(prog *Program, pos token.Pos, allow []string) bool {
	name := strings.ReplaceAll(prog.Fset.Position(pos).Filename, "\\", "/")
	for _, suf := range allow {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}
