package lint

import (
	"encoding/json"
	"io"
)

// The -json findings mode: a schema-stable machine-readable rendering
// for CI artifacts, so finding sets are diffable across PRs. The schema
// is golden-tested (json_test.go); bump Version on any incompatible
// change.

// JSONVersion is the findings-schema version.
const JSONVersion = 1

// jsonReport is the top-level -json document.
type jsonReport struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// jsonFinding is one finding. File is module-relative when the caller
// relativized it (cmd/hbvet does); Chain is present only on
// interprocedural findings, outermost (root) first.
type jsonFinding struct {
	Check   string   `json:"check"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Message string   `json:"message"`
	Chain   []string `json:"chain,omitempty"`
}

// EncodeJSON writes the findings as the versioned JSON document,
// indented, with a trailing newline. An empty finding set encodes as an
// empty array, never null.
func EncodeJSON(w io.Writer, findings []Finding) error {
	report := jsonReport{Version: JSONVersion, Findings: []jsonFinding{}}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			Check:   f.Check,
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Message: f.Message,
			Chain:   f.Chain,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
