package lint

import (
	"go/token"
	"strings"
	"testing"
)

// TestEncodeJSONGolden pins the -json schema byte for byte: CI diffs
// finding artifacts across PRs, so any drift here is a breaking change
// and must bump JSONVersion.
func TestEncodeJSONGolden(t *testing.T) {
	findings := []Finding{
		{
			Check:   "hot-path-alloc",
			Pos:     token.Position{Filename: "internal/core/core.go", Line: 42, Column: 7},
			Message: "make allocates in noalloc function Step",
		},
		{
			Check:   "noalloc-closure",
			Pos:     token.Position{Filename: "internal/sim/sim.go", Line: 9, Column: 3},
			Message: "call to allocating fmt.Sprintf inside the noalloc closure: sim.StepAll → core.dispatch → fmt.Sprintf",
			Chain:   []string{"sim.StepAll", "core.dispatch", "fmt.Sprintf"},
		},
	}
	const golden = `{
  "version": 1,
  "findings": [
    {
      "check": "hot-path-alloc",
      "file": "internal/core/core.go",
      "line": 42,
      "col": 7,
      "message": "make allocates in noalloc function Step"
    },
    {
      "check": "noalloc-closure",
      "file": "internal/sim/sim.go",
      "line": 9,
      "col": 3,
      "message": "call to allocating fmt.Sprintf inside the noalloc closure: sim.StepAll → core.dispatch → fmt.Sprintf",
      "chain": [
        "sim.StepAll",
        "core.dispatch",
        "fmt.Sprintf"
      ]
    }
  ]
}
`
	var buf strings.Builder
	if err := EncodeJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Errorf("schema drift:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}
}

// TestEncodeJSONEmpty pins that an empty finding set encodes as an
// empty array, never null — consumers index findings unconditionally.
func TestEncodeJSONEmpty(t *testing.T) {
	const golden = `{
  "version": 1,
  "findings": []
}
`
	var buf strings.Builder
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Errorf("empty set drift:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}
}
