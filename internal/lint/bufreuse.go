package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerBufferReuse enforces the documented non-reentrancy contract of
// ta's successor generation and key encoding: Network.Successors,
// SuccCtx.Successors, and State.AppendKey return slices whose backing
// memory is recycled by the next call on the same value. A caller that
// recycles a buffer (passes a reused lvalue, typically buf[:0]) must not
// retain the returned slice, a subslice, or an element past that next
// call.
//
// The analyzer applies two rules to calls whose buffer argument is a
// reused lvalue (a fresh make/nil/literal buffer is exempt — nothing is
// recycled then):
//
//  1. aliasing: the result must be assigned back to the same lvalue that
//     was passed in (buf = x.Successors(s, buf[:0])), not to a second
//     variable that would silently alias the scratch buffer;
//  2. retention: the result variable (or an element/subslice of it) must
//     not escape the function — no returns, no stores into fields,
//     globals, maps, or other slices, no channel sends, no closure
//     captures — unless the escaping expression is an explicit copy
//     (State.Clone, string(...), or append onto a different slice of the
//     raw bytes is still flagged: copy first).
var AnalyzerBufferReuse = &Analyzer{
	Name: "buffer-reuse",
	Doc:  "results of ta.Successors/AppendKey with a recycled buffer must not be retained or aliased",
	Run:  runBufferReuse,
}

// taPkgPath is the package whose buffer-reuse contract is enforced.
const taPkgPath = "repro/internal/ta"

// isBufReuseTarget reports whether the call is one of the contract
// methods, returning which.
func isBufReuseTarget(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	obj := calleeObj(info, call)
	if obj == nil {
		return "", false
	}
	switch {
	case isMethod(obj, taPkgPath, "Network", "Successors"),
		isMethod(obj, taPkgPath, "SuccCtx", "Successors"):
		return "Successors", true
	case isMethod(obj, taPkgPath, "State", "AppendKey"):
		return "AppendKey", true
	}
	return "", false
}

// reusedBufferBase returns the base object of the call's buffer argument
// when that argument recycles an existing buffer (identifier or field,
// possibly resliced); nil for fresh buffers (nil, make, literals), which
// are exempt from the contract.
func reusedBufferBase(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	arg := ast.Unparen(call.Args[len(call.Args)-1])
	for {
		if sl, ok := arg.(*ast.SliceExpr); ok {
			arg = ast.Unparen(sl.X)
			continue
		}
		break
	}
	switch arg.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		// Only variables can recycle a buffer; `nil` (and any other
		// non-variable identifier) passes a fresh one.
		if v, ok := baseObject(info, arg.(ast.Expr)).(*types.Var); ok {
			return v
		}
	}
	return nil
}

func runBufferReuse(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBufReuseFunc(p, body)
			}
			return true
		})
	}
}

// checkBufReuseFunc applies both rules within one function body.
func checkBufReuseFunc(p *Pass, body *ast.BlockStmt) {
	// Pass 1: find contract calls with recycled buffers and the variables
	// their results land in.
	resultVars := map[types.Object]string{} // result var -> target name
	ast.Inspect(body, func(n ast.Node) bool {
		if _, nested := n.(*ast.FuncLit); nested {
			return false // checked with its own body
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isBufReuseTarget(p.Info, call)
		if !ok {
			return true
		}
		bufBase := reusedBufferBase(p.Info, call)
		if bufBase == nil {
			return true // fresh buffer: nothing recycled, nothing to enforce
		}
		if len(st.Lhs) != 1 {
			return true
		}
		dst := baseObject(p.Info, st.Lhs[0])
		if dst == nil {
			return true
		}
		if dst != bufBase {
			p.Reportf(st.Pos(), "result of %s aliases recycled buffer %q; assign back to %q (buf = ...Successors(s, buf[:0])) or pass a fresh buffer", name, bufBase.Name(), bufBase.Name())
			return true
		}
		resultVars[dst] = name
		return true
	})
	// Standalone contract calls whose result is discarded are fine (the
	// buffer stays owned by its lvalue); calls used as a larger
	// expression operand retain nothing by themselves.
	if len(resultVars) == 0 {
		return
	}
	// Pass 2: hunt retention sinks for the recycled result variables.
	checkRetention(p, body, resultVars)
}

// checkRetention flags expressions that let a recycled buffer (or its
// elements) outlive the next contract call.
func checkRetention(p *Pass, body *ast.BlockStmt, vars map[types.Object]string) {
	usesVar := func(e ast.Expr) (types.Object, bool) {
		// The raw variable, an index/subslice of it, or its address.
		inner := ast.Unparen(e)
		if u, ok := inner.(*ast.UnaryExpr); ok {
			inner = ast.Unparen(u.X)
		}
		obj := baseObject(p.Info, inner)
		if obj == nil {
			return nil, false
		}
		_, tracked := vars[obj]
		return obj, tracked
	}
	isCopy := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		// string(key) copies the bytes out of the arena.
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.String {
				return true
			}
			return false
		}
		// state.Clone() deep-copies the target configuration.
		if obj := calleeObj(p.Info, call); obj != nil && obj.Name() == "Clone" {
			return true
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// A closure capturing the recycled buffer can run after any
			// number of further contract calls.
			for obj, name := range vars {
				if mentionsObject(p.Info, st, obj) {
					p.Reportf(st.Pos(), "closure captures %q, the recycled %s buffer; copy what it needs first", obj.Name(), name)
				}
			}
			return false
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if isCopy(res) {
					continue
				}
				if obj, ok := usesVar(res); ok {
					p.Reportf(res.Pos(), "returning %q leaks the recycled %s buffer to the caller; copy it (or its elements) first", obj.Name(), vars[obj])
				}
			}
		case *ast.SendStmt:
			if isCopy(st.Value) {
				return true
			}
			if obj, ok := usesVar(st.Value); ok {
				p.Reportf(st.Value.Pos(), "sending %q on a channel retains the recycled %s buffer; copy it first", obj.Name(), vars[obj])
			}
		case *ast.AssignStmt:
			checkRetainingAssign(p, st, vars, usesVar, isCopy)
		}
		return true
	})
}

// checkRetainingAssign flags assignments that store a recycled buffer
// (or a piece of it) into something that outlives the next call: struct
// fields, globals, map/slice elements, dereferenced pointers, or other
// slices via append.
func checkRetainingAssign(p *Pass, st *ast.AssignStmt, vars map[types.Object]string,
	usesVar func(ast.Expr) (types.Object, bool), isCopy func(ast.Expr) bool) {
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		// append(other, v...) or append(other, v[i]) grafts the scratch
		// memory (or Transition values aliasing it) into another slice.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(p.Info, call) {
			dst := baseObject(p.Info, st.Lhs[i])
			for _, arg := range call.Args[1:] {
				if isCopy(arg) {
					continue
				}
				if obj, ok := usesVar(arg); ok && obj != dst {
					p.Reportf(arg.Pos(), "appending %q into another slice retains the recycled %s buffer; copy the element first", obj.Name(), vars[obj])
				}
			}
			continue
		}
		if isCopy(rhs) {
			continue
		}
		obj, ok := usesVar(rhs)
		if !ok {
			continue
		}
		if baseObject(p.Info, st.Lhs[i]) == obj {
			continue // self-assignment (truncation/reslice) retains nothing new
		}
		// Reassigning the contract call's own result is pass 1's concern;
		// here flag stores into longer-lived places.
		switch lhs := ast.Unparen(st.Lhs[i]).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			p.Reportf(st.Pos(), "storing %q into %s retains the recycled %s buffer past the next call; copy it first", obj.Name(), lvalueKind(lhs), vars[obj])
		}
	}
}

func lvalueKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a map/slice element"
	case *ast.StarExpr:
		return "a pointer target"
	default:
		return "a longer-lived location"
	}
}
