package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// want is one golden expectation: a finding on a specific line whose
// message contains a substring.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

// collectWants parses `// want "substr" "substr"` comments. Each
// expectation applies to the line the comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[idx+len("// want "):])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s:%d: malformed want clause %q", pos.Filename, pos.Line, rest)
					}
					end := -1
					for i := 1; i < len(rest); i++ {
						if rest[i] == '\\' {
							i++
							continue
						}
						if rest[i] == '"' {
							end = i
							break
						}
					}
					if end < 0 {
						t.Fatalf("%s:%d: unterminated want clause %q", pos.Filename, pos.Line, rest)
					}
					quoted := rest[:end+1]
					substr, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s:%d: bad want clause %s: %v", pos.Filename, pos.Line, quoted, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, substr: substr})
					rest = strings.TrimSpace(rest[end+1:])
				}
			}
		}
	}
	return out
}

// runGolden loads one testdata package, runs the named check, and
// reconciles the findings against the package's want comments.
func runGolden(t *testing.T, pkgdir, check string, cfg Config) {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("internal/lint/testdata", pkgdir))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want one package, got %d", len(pkgs))
	}
	pkg := pkgs[0]
	cfg.Checks = []string{check}
	findings := RunPackage(pkg, cfg)
	wants := collectWants(t, pkg.Fset, pkg.Files)

	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: missing finding containing %q", w.file, w.line, w.substr)
		}
	}
}

// moduleRoot walks up from the package directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the lint package")
		}
		dir = parent
	}
}

func TestGoldenDeterminism(t *testing.T) {
	runGolden(t, "determinism", "determinism", Config{
		WallClockAllow: []string{"testdata/determinism/allowed_clock.go"},
	})
}

func TestGoldenMapOrder(t *testing.T) {
	runGolden(t, "maporder", "map-order", Config{})
}

func TestGoldenBufferReuse(t *testing.T) {
	runGolden(t, "bufreuse", "buffer-reuse", Config{})
}

func TestGoldenNoAlloc(t *testing.T) {
	runGolden(t, "noalloc", "hot-path-alloc", Config{})
}

func TestGoldenSyncDiscipline(t *testing.T) {
	runGolden(t, "syncdiscipline", "sync-discipline", Config{})
}

// TestGoldenNoallocClosure is the seeded-mutant proof for the
// interprocedural closure check: allocating helpers one and two call
// levels below a //hbvet:noalloc root must be reported with the full
// call chain, boundaries cut traversal, and site-level allows do not.
func TestGoldenNoallocClosure(t *testing.T) {
	runGolden(t, "closure", "noalloc-closure", Config{})
}

func TestGoldenDeterminismTaint(t *testing.T) {
	runGolden(t, "taint", "determinism-taint", Config{
		WallClockAllow: []string{"testdata/taint/boundary.go"},
	})
}

// TestDirectiveHygiene pins the //lint:allow bookkeeping: justified and
// used directives are silent, unjustified and unused ones are findings of
// their own. (Expectations are asserted here rather than with want
// comments, which cannot share a line with the directive they describe.)
func TestDirectiveHygiene(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/lint/testdata/directives")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackage(pkgs[0], Config{Checks: []string{"determinism", "unused-suppression"}})
	var got []string
	for _, f := range findings {
		got = append(got, f.Check+": "+f.Message)
	}
	wantSubstr := []string{
		"lint: //lint:allow determinism needs a justification",
		"unused-suppression: //lint:allow determinism suppresses nothing",
	}
	if len(got) != len(wantSubstr) {
		t.Fatalf("want %d findings, got %v", len(wantSubstr), got)
	}
	for i, w := range wantSubstr {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want it to contain %q", i, got[i], w)
		}
	}

	// A run restricted away from the directive's check cannot know the
	// directive is dead: unused-suppression must stay silent about it.
	restricted := RunPackage(pkgs[0], Config{Checks: []string{"map-order", "unused-suppression"}})
	for _, f := range restricted {
		if f.Check == "unused-suppression" {
			t.Errorf("unused-suppression fired for a check that did not run: %s", f)
		}
	}
}
