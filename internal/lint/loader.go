package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/sim").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages of one module from source. It resolves
// module-internal imports by walking the module tree itself and defers
// everything else (the standard library) to the compiler's source
// importer, so it needs no go/packages, no export data, and no network.
type Loader struct {
	root    string // module root directory
	module  string // module path from go.mod
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path, nil while in progress
	typeErr []error
}

// NewLoader builds a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		root:   abs,
		module: mod,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the patterns ("./...", "./internal/sim", or plain
// directories) against the module root and returns the matched packages,
// type-checked, sorted by import path. Directories named testdata,
// vendor, or starting with "." or "_" are skipped by the recursive
// pattern but may be named explicitly.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.root, dirSet); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.root, strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, dirSet); err != nil {
				return nil, err
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.root, pat)
			}
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			dirSet[filepath.Clean(dir)] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// walk collects every package directory under base.
func (l *Loader) walk(base string, dirSet map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirSet[filepath.Clean(path)] = true
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.root)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// loadDir type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // in progress

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		if p == l.module || strings.HasPrefix(p, l.module+"/") {
			sub, err := l.loadDir(l.dirFor(p))
			if err != nil {
				return nil, err
			}
			return sub.Types, nil
		}
		return l.std.Import(p)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
