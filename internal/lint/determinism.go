package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDeterminism bans nondeterminism sources outside the explicit
// wall-clock boundary: wall-clock reads (time.Now and friends, and the
// wall-clock methods on time's timer types) and the global math/rand
// generator. Campaign replay depends on every run being a pure function
// of its seeds; one stray time.Now or rand.Intn breaks byte-identical
// replay silently.
//
// Seeded randomness is fine: methods on a *rand.Rand constructed via
// rand.New(rand.NewSource(seed)) are not flagged, only the package-level
// convenience functions that share the unseeded global generator.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock reads or global math/rand outside allowlisted wall-clock files",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package functions that read or depend on
// the physical clock. Pure constructors and conversions (time.Duration,
// time.Unix, time.Date) are fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// wallClockMethods are the methods on package time receiver types that
// re-arm or drive physical timers — the method blind spot the original
// package-function-only check had. Keyed "Type.Method".
var wallClockMethods = map[string]bool{
	"Timer.Reset":  true,
	"Ticker.Reset": true,
}

// seededRandFuncs are the math/rand package-level functions that build
// explicitly seeded state rather than touching the global generator.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors
	"NewPCG":     true,
	"NewChaCha8": true,
}

// nondetCallee classifies a function object as a nondeterminism source
// when *any* call to it depends on the wall clock or the global rand
// generator, returning a display label ("time.Now", "(*time.Timer).Reset",
// "rand.Intn"). Shared by the intraprocedural check and the
// interprocedural taint propagation.
func nondetCallee(obj *types.Func) (label string, clock bool, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false, false
	}
	sig, sigOK := obj.Type().(*types.Signature)
	if !sigOK {
		return "", false, false
	}
	switch obj.Pkg().Path() {
	case "time":
		if sig.Recv() == nil {
			if wallClockFuncs[obj.Name()] {
				return "time." + obj.Name(), true, true
			}
			return "", false, false
		}
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return "", false, false
		}
		if wallClockMethods[named.Obj().Name()+"."+obj.Name()] {
			return "(*time." + named.Obj().Name() + ")." + obj.Name(), true, true
		}
	case "math/rand", "math/rand/v2":
		if sig.Recv() == nil && !seededRandFuncs[obj.Name()] {
			return "rand." + obj.Name(), false, true
		}
	}
	return "", false, false
}

func runDeterminism(p *Pass) {
	allow := p.Config.WallClockAllow
	if allow == nil {
		allow = DefaultWallClockAllow
	}
	for _, file := range p.Files {
		if p.fileAllowed(file.Pos(), allow) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.Info, call)
			label, clock, ok := nondetCallee(obj)
			if !ok {
				// time.Time.Sub of a wall-clock read is the classic
				// "measure elapsed wall time" laundering shape; the Now
				// inside is flagged on its own, this names the pattern.
				if isMethod(obj, "time", "Time", "Sub") && mentionsWallClockCall(p.Info, call) {
					p.Reportf(call.Pos(), "time.Time.Sub over a wall-clock read measures physical elapsed time and breaks deterministic replay; use the sim/detector clock (or allowlist this file)")
				}
				return true
			}
			switch {
			case clock && obj.Type().(*types.Signature).Recv() != nil:
				p.Reportf(call.Pos(), "wall-clock method %s re-arms a physical timer and breaks deterministic replay; use the sim/detector clock (or allowlist this file)", label)
			case clock:
				p.Reportf(call.Pos(), "wall-clock read %s breaks deterministic replay; use the sim/detector clock (or allowlist this file)", label)
			default:
				p.Reportf(call.Pos(), "global %s uses the shared unseeded generator; construct a *rand.Rand from an explicit seed parameter", label)
			}
			return true
		})
	}
}

// mentionsWallClockCall reports whether the call's receiver or argument
// expressions contain a direct call to a wall-clock time function.
func mentionsWallClockCall(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		inner, ok := n.(*ast.CallExpr)
		if !ok || inner == call {
			return true
		}
		if _, clock, ok := nondetCallee(calleeObj(info, inner)); ok && clock {
			found = true
		}
		return true
	})
	return found
}
