package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDeterminism bans nondeterminism sources outside the explicit
// wall-clock boundary: wall-clock reads (time.Now and friends) and the
// global math/rand generator. Campaign replay depends on every run being
// a pure function of its seeds; one stray time.Now or rand.Intn breaks
// byte-identical replay silently.
//
// Seeded randomness is fine: methods on a *rand.Rand constructed via
// rand.New(rand.NewSource(seed)) are not flagged, only the package-level
// convenience functions that share the unseeded global generator.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock reads or global math/rand outside allowlisted wall-clock files",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package functions that read or depend on
// the physical clock. Pure constructors and conversions (time.Duration,
// time.Unix, time.Date) are fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand package-level functions that build
// explicitly seeded state rather than touching the global generator.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	allow := p.Config.WallClockAllow
	if allow == nil {
		allow = DefaultWallClockAllow
	}
	for _, file := range p.Files {
		if p.fileAllowed(file.Pos(), allow) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.Info, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods never touch the global generator or clock here
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					p.Reportf(call.Pos(), "wall-clock read time.%s breaks deterministic replay; use the sim/detector clock (or allowlist this file)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[obj.Name()] {
					p.Reportf(call.Pos(), "global rand.%s uses the shared unseeded generator; construct a *rand.Rand from an explicit seed parameter", obj.Name())
				}
			}
			return true
		})
	}
}
