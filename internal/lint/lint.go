// Package lint is a stdlib-only static-analysis framework for this
// repository: a small analyzer driver (go/ast + go/types, no external
// dependencies) plus the project-specific checks that keep the
// determinism, buffer-reuse, and allocation contracts of the checker and
// simulator hot paths honest.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature — Analyzer, Pass, Findings — but is self-contained so the
// container needs nothing beyond the Go toolchain. Checks:
//
//   - determinism: no wall-clock reads (time.Now and friends) or global
//     math/rand calls outside explicitly allowlisted wall-clock files;
//     every *rand.Rand must be built from an explicit seed expression.
//   - map-order: a range over a map whose body appends to an outer
//     slice, writes output, or sends on a channel is flagged unless the
//     collected slice is sorted afterwards — the campaign-replay bug
//     class PR 1 hit at runtime.
//   - buffer-reuse: callers of ta.Successors / ta.SuccCtx.Successors /
//     ta.State.AppendKey must not retain the returned slice (or its
//     elements) beyond the next call on the same value — see the
//     non-reentrancy contract in internal/ta.
//   - hot-path-alloc: functions annotated //hbvet:noalloc are rejected
//     if their bodies contain likely allocation sites (make/new, escaping
//     composite literals, escaping closures, appends that build fresh
//     slices, or implicit interface conversions).
//   - sync-discipline: a struct field accessed through sync/atomic in
//     one place must be accessed through sync/atomic everywhere.
//
// A finding on line N is suppressed by a comment
//
//	//lint:allow <check> <justification>
//
// on line N or line N-1. Suppressions without a justification are
// themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
	// Chain is the call chain from an interprocedural root to the
	// offending site (noalloc-closure, determinism-taint), outermost
	// first; empty for intraprocedural findings.
	Chain []string
}

// String formats the finding as file:line:col: message [check].
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Check)
}

// Analyzer is one check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Config is the driver-level configuration shared by all analyzers.
	Config Config

	findings *[]Finding
}

// Config tunes the analyzer suite.
type Config struct {
	// WallClockAllow lists path suffixes of files allowed to read the
	// wall clock and construct time-seeded state: the explicit wall-clock
	// boundary of the system (detector.WallClock, cmd/hbbench).
	WallClockAllow []string
	// Checks, when non-empty, restricts the run to the named analyzers.
	Checks []string
}

// DefaultWallClockAllow is the repository's wall-clock boundary: the
// only files that may read physical time. Everything else must get time
// from a sim.Simulator or detector.Clock and randomness from a seeded
// *rand.Rand.
var DefaultWallClockAllow = []string{
	"internal/detector/detector.go", // WallClock implementation
	"internal/netem/ticker.go",      // WallTicker implementation
	"cmd/hbbench/main.go",           // benchmark timestamps and timings
	"cmd/hbfleet/main.go",           // fleet benchmark timestamps and timings
	"cmd/hbmc/main.go",              // ensemble sweep timestamps and timings
}

// Analyzers returns the per-package suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerMapOrder,
		AnalyzerBufferReuse,
		AnalyzerNoAlloc,
		AnalyzerSyncDiscipline,
	}
}

// ProgramAnalyzer is one interprocedural check: it sees the whole
// loaded program (and its call graph) at once instead of one package.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ProgramPass)
}

// ProgramPass carries the program through one interprocedural analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Prog     *Program
	Config   Config

	findings *[]Finding
	supp     *suppressions
}

// Sanctioned reports whether pos is covered by a //lint:allow directive
// for the named check, marking the directive used. Interprocedural
// analyzers call it at decision points that produce no finding — cutting
// closure traversal through a call edge, declining to seed taint — so
// the directive still registers as live for unused-suppression.
func (p *ProgramPass) Sanctioned(check string, pos token.Pos) bool {
	return p.supp != nil && p.supp.sanction(check, p.Prog.Fset.Position(pos))
}

// SanctionedDecl reports whether the declaration carries a //lint:allow
// directive for the named check *in its doc comment*, marking the
// directive used. Declaration-level semantics (marking a whole function
// an accepted boundary) demand the doc-comment position so a site-level
// directive covering the declaration's first line — same line or the
// line above, per the suppression placement contract — cannot silently
// act as a boundary.
func (p *ProgramPass) SanctionedDecl(check string, decl *ast.FuncDecl) bool {
	if p.supp == nil || decl.Doc == nil {
		return false
	}
	return p.supp.sanctionRange(check, decl.Doc.Pos(), decl.Doc.End())
}

// Reportf records a finding at pos with an optional call chain.
func (p *ProgramPass) Reportf(pos token.Pos, chain []string, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Prog.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// ProgramAnalyzers returns the interprocedural suite in reporting
// order. unused-suppression is listed here but implemented by the
// driver (it must see every other analyzer's surviving findings).
func ProgramAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		AnalyzerNoallocClosure,
		AnalyzerDeterminismTaint,
		AnalyzerUnusedSuppression,
	}
}

// AnalyzerUnusedSuppression reports //lint:allow directives that
// suppress nothing. It is driver-implemented: after every enabled check
// has run and suppressions are applied, a directive for a check that
// ran but matched no finding is dead weight — it documents a risk that
// no longer exists. Directives for checks that did not run this
// invocation are left alone (a restricted -check run cannot know).
var AnalyzerUnusedSuppression = &ProgramAnalyzer{
	Name: "unused-suppression",
	Doc:  "//lint:allow directives must suppress at least one finding of a check that ran",
	Run:  nil, // driver-implemented, see applySuppressions
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

func (p *Pass) report(f Finding) {
	*p.findings = append(*p.findings, f)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	check     string
	line      int
	justified bool
	pos       token.Pos
}

// collectAllows parses every //lint:allow directive in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []allowDirective {
	var out []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := allowDirective{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
				if len(fields) > 0 {
					d.check = fields[0]
				}
				d.justified = len(fields) > 1
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressions is the shared //lint:allow state of one run: the parsed
// directives plus per-directive liveness. A directive is live when it
// suppressed a finding or when an analyzer consulted it at a
// non-reporting decision point (ProgramPass.Sanctioned).
type suppressions struct {
	fset   *token.FileSet
	allows []allowDirective
	used   []bool
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	allows := collectAllows(fset, files)
	return &suppressions{fset: fset, allows: allows, used: make([]bool, len(allows))}
}

// covers reports whether directive i sits on the same or the preceding
// line of pos (the suppression placement contract).
func (s *suppressions) covers(i int, pos token.Position) bool {
	d := s.allows[i]
	return s.fset.Position(d.pos).Filename == pos.Filename &&
		(d.line == pos.Line || d.line == pos.Line-1)
}

// sanction marks every directive for check covering pos as used and
// reports whether there was one.
func (s *suppressions) sanction(check string, pos token.Position) bool {
	hit := false
	for i, d := range s.allows {
		if d.check == check && s.covers(i, pos) {
			s.used[i] = true
			hit = true
		}
	}
	return hit
}

// sanctionRange marks every directive for check whose position falls in
// [lo, hi] as used and reports whether there was one. Positions compare
// directly: all packages of a program share one FileSet.
func (s *suppressions) sanctionRange(check string, lo, hi token.Pos) bool {
	hit := false
	for i, d := range s.allows {
		if d.check == check && d.pos >= lo && d.pos <= hi {
			s.used[i] = true
			hit = true
		}
	}
	return hit
}

// apply drops findings covered by an //lint:allow on the same or the
// preceding line, reports unjustified directives, and — when the
// unused-suppression check is enabled — reports directives that
// suppressed nothing although their check ran (ran holds the names of
// the checks that ran this invocation).
func (s *suppressions) apply(findings []Finding, ran map[string]bool, reportUnused bool) []Finding {
	if len(s.allows) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for i, d := range s.allows {
			if d.check == f.Check && s.covers(i, f.Pos) {
				s.used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for i, d := range s.allows {
		if !d.justified {
			kept = append(kept, Finding{
				Check:   "lint",
				Pos:     s.fset.Position(d.pos),
				Message: fmt.Sprintf("//lint:allow %s needs a justification comment", d.check),
			})
		} else if reportUnused && !s.used[i] && ran[d.check] {
			kept = append(kept, Finding{
				Check:   "unused-suppression",
				Pos:     s.fset.Position(d.pos),
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing; the risk it documents no longer exists — delete it", d.check),
			})
		}
	}
	return kept
}

// Run runs the configured analyzers — per-package and interprocedural —
// over the whole program and returns the surviving findings sorted by
// position.
func (prog *Program) Run(cfg Config) []Finding {
	var findings []Finding
	ran := map[string]bool{}
	enabled := func(name string) bool {
		return len(cfg.Checks) == 0 || containsString(cfg.Checks, name)
	}
	var allFiles []*ast.File
	for _, pkg := range prog.Pkgs {
		allFiles = append(allFiles, pkg.Files...)
	}
	supp := newSuppressions(prog.Fset, allFiles)
	for _, pkg := range prog.Pkgs {
		for _, a := range Analyzers() {
			if !enabled(a.Name) {
				continue
			}
			ran[a.Name] = true
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Config:   cfg,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	for _, a := range ProgramAnalyzers() {
		if a.Run == nil || !enabled(a.Name) {
			continue
		}
		ran[a.Name] = true
		pass := &ProgramPass{Analyzer: a, Prog: prog, Config: cfg, findings: &findings, supp: supp}
		a.Run(pass)
	}
	findings = supp.apply(findings, ran, enabled(AnalyzerUnusedSuppression.Name))
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Check < findings[j].Check
	})
	return findings
}

// RunPackage runs the configured analyzers over one loaded package
// (treated as a single-package program) and returns the surviving
// findings sorted by position.
func RunPackage(pkg *Package, cfg Config) []Finding {
	return NewProgram([]*Package{pkg}).Run(cfg)
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// fileAllowed reports whether the file at pos matches one of the
// allowlisted path suffixes.
func (p *Pass) fileAllowed(pos token.Pos, allow []string) bool {
	name := p.Fset.Position(pos).Filename
	name = strings.ReplaceAll(name, "\\", "/")
	for _, suf := range allow {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// calleeObj resolves the called function object of a call expression, or
// nil (builtin, indirect call, type conversion).
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(obj *types.Func, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name && obj.Type().(*types.Signature).Recv() == nil
}

// isMethod reports whether obj is a method named name whose receiver's
// named type lives in pkgPath and is called typeName.
func isMethod(obj *types.Func, pkgPath, typeName, name string) bool {
	if obj == nil || obj.Name() != name || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}
