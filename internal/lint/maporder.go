package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMapOrder flags range statements over maps whose body leaks the
// iteration order into observable output: appending to a slice declared
// outside the loop (without sorting it afterwards), writing to a stream,
// or sending on a channel. Go randomises map iteration, so any of these
// makes output differ run to run — the campaign-replay bug class PR 1
// hit at runtime (the supervisor polled nodes in map order, leaking the
// order into the jitter rng draw sequence).
//
// An append into an outer slice is accepted when the same slice is
// passed to a sort call (sort.* or slices.Sort*) after the loop, the
// established fix pattern.
var AnalyzerMapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "map iteration order must not leak into slices, output streams, or channels",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		// Walk function bodies so the post-loop context (for sort
		// detection) is available.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
}

// checkMapRanges finds map ranges directly inside fnBody (at any depth)
// and validates each; fnBody provides the scope searched for post-loop
// sort calls.
func checkMapRanges(p *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, nested := n.(*ast.FuncLit); nested {
			return false // visited separately with its own body scope
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, rng, fnBody)
		return true
	})
}

func checkMapRangeBody(p *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			p.Reportf(st.Pos(), "channel send inside a map range leaks map iteration order")
		case *ast.CallExpr:
			if isOutputCall(p.Info, st) {
				p.Reportf(st.Pos(), "output write inside a map range leaks map iteration order")
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || i >= len(st.Lhs) {
					continue
				}
				dst := baseObject(p.Info, st.Lhs[i])
				if dst == nil {
					continue
				}
				// Appends into a slice local to the loop body are fine:
				// the slice dies with the iteration.
				if dst.Pos() >= rng.Pos() && dst.Pos() <= rng.End() {
					continue
				}
				if sortedAfter(p.Info, fnBody, rng.End(), dst) {
					continue
				}
				p.Reportf(st.Pos(), "append to %q inside a map range records map iteration order; sort it after the loop (or iterate sorted keys)", dst.Name())
			}
		}
		return true
	})
}

// isOutputCall reports whether the call writes to a stream: fmt
// Print/Fprint functions or Write* methods.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil {
		return false
	}
	name := obj.Name()
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// baseObject resolves the variable at the base of an lvalue chain
// (x, x.f, x[i], *x all resolve to x's object).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			// For field selectors use the field object itself so distinct
			// fields of one struct stay distinct.
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			return info.ObjectOf(v.Sel)
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning
// obj appears within body after pos.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeObj(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
