package lint

import (
	"go/token"
	"go/types"
)

// AnalyzerNoallocClosure proves the //hbvet:noalloc contract over the
// whole call graph instead of one body at a time: every function
// reachable from an annotated root must itself be allocation-free (by
// the same site heuristics the intraprocedural check applies) or carry
// the annotation. Call resolution is the Program call graph: static
// calls exact, interface calls over the program's implementing type
// set, and calls through function values reported as explicit
// "dynamic call" findings — the closure cannot be proven past a callee
// the analyzer cannot name, so such sites must be restructured or
// carry a //lint:allow noalloc-closure justification.
//
// Violations carry the full call chain from the nearest annotated root
// (sim.StepAll → core.dispatch → fmt.Sprintf). Calls out of the module
// are checked against a curated table of known-allocating standard
// library functions; stdlib calls not in the table are trusted silent —
// the compiler escape-budget gate (hbvet -escape) is the backstop for
// allocations no source heuristic can see.
//
// A //lint:allow noalloc-closure directive in a function declaration's
// doc comment marks that function an accepted allocation boundary: its
// body and everything reachable only through it are excluded from the
// proof (the conformance observers, the real-network transports). The
// doc-comment position is what distinguishes a boundary — site-level
// directives inside the body suppress individual findings only and
// never cut traversal, even when they cover the declaration's first
// line. A boundary directive counts as live for unused-suppression
// even though it suppresses no literal finding.
//
// Site-level //lint:allow hot-path-alloc directives sanction this
// check's *reports* too: both checks enforce the one allocation
// contract, and a justified cold error path should not need the same
// justification twice. They never cut traversal, though — only an
// explicit noalloc-closure directive excludes a subtree from the proof.
var AnalyzerNoallocClosure = &ProgramAnalyzer{
	Name: "noalloc-closure",
	Doc:  "every function reachable from a //hbvet:noalloc root must be allocation-free or annotated",
	Run:  runNoallocClosure,
}

// allocStdlibPkgs lists external packages whose every function
// allocates (fmt formats into fresh storage on all paths).
var allocStdlibPkgs = map[string]bool{
	"fmt": true,
}

// allocStdlibFuncs lists external package-level functions known to
// allocate on their ordinary path.
var allocStdlibFuncs = map[string]bool{
	"errors.New":          true,
	"errors.Join":         true,
	"sort.Slice":          true,
	"sort.SliceStable":    true,
	"strings.Join":        true,
	"strings.Repeat":      true,
	"strings.Replace":     true,
	"strings.ReplaceAll":  true,
	"strings.Split":       true,
	"strings.SplitN":      true,
	"strings.Fields":      true,
	"strings.ToUpper":     true,
	"strings.ToLower":     true,
	"strconv.Itoa":        true,
	"strconv.FormatInt":   true,
	"strconv.FormatUint":  true,
	"strconv.FormatFloat": true,
	"strconv.Quote":       true,
	"strconv.Unquote":     true,
	"bytes.Join":          true,
	"bytes.Repeat":        true,
	"bytes.Clone":         true,
	"bytes.NewBuffer":     true,
	"bytes.NewReader":     true,
	"slices.Clone":        true,
	"slices.Concat":       true,
	"slices.Insert":       true,
	"slices.Collect":      true,
	"maps.Clone": true,
	// maps.Keys is absent deliberately: it returns an iterator with no
	// backing store.
	"math/rand.New":       true,
	"math/rand.NewSource": true,
	"math/rand.Perm":      true,
	"math/rand/v2.Perm":   true,
}

// allocStdlibMethods lists external methods known to allocate, keyed
// "pkgpath.Type.Method".
var allocStdlibMethods = map[string]bool{
	"strings.Builder.String":      true,
	"strings.Builder.Grow":        true,
	"strings.Builder.WriteString": true,
	"strings.Builder.Write":       true,
	"bytes.Buffer.String": true,
	// bytes.Buffer.Bytes is absent deliberately: it aliases the internal
	// buffer without copying.
	"time.Time.String":            true,
	"time.Time.Format":            true,
	"time.Duration.String":        true,
	"math/rand.Rand.Perm":         true,
}

// knownAllocCallee classifies a callee with no body in the program.
func knownAllocCallee(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return allocStdlibPkgs[path] || allocStdlibFuncs[path+"."+f.Name()]
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return allocStdlibMethods[path+"."+named.Obj().Name()+"."+f.Name()]
}

func runNoallocClosure(pp *ProgramPass) {
	prog := pp.Prog
	var roots []*types.Func
	for _, fn := range prog.declList {
		if HasNoallocDirective(prog.decls[fn].decl) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return
	}
	// A report is sanctioned under either allocation check's name (the
	// two checks enforce one contract); traversal is cut only by a
	// noalloc-closure directive in the declaration's doc comment — a
	// site-level allow justifies one finding, not a subtree.
	reportSanctioned := func(pos token.Pos) bool {
		a := pp.Sanctioned("noalloc-closure", pos)
		b := pp.Sanctioned("hot-path-alloc", pos)
		return a || b
	}
	w := newChainWalk(prog, roots)
	for len(w.queue) > 0 {
		fn := w.queue[0]
		w.queue = w.queue[1:]
		d := prog.decls[fn]
		if d == nil || d.decl.Body == nil {
			continue
		}
		// A doc-comment suppression marks the whole function an accepted
		// allocation boundary: skip its body and its callees.
		if pp.SanctionedDecl("noalloc-closure", d.decl) {
			continue
		}
		annotated := HasNoallocDirective(d.decl)
		// Body allocation sites of unannotated reachable functions. The
		// annotated ones are the intraprocedural analyzer's findings
		// already; re-reporting them here would double every root.
		if !annotated {
			for _, v := range collectNoallocViolations(d.pkg.Info, d.decl) {
				if reportSanctioned(v.Pos) {
					continue
				}
				pp.Reportf(v.Pos, w.chainList(fn),
					"%s — reachable from noalloc root: %s; make it allocation-free or annotate it //hbvet:noalloc",
					v.Message, w.chain(fn))
			}
		}
		// Calls the analyzer cannot resolve cut the proof short.
		for _, pos := range prog.dynCalls[fn] {
			if reportSanctioned(pos) {
				continue
			}
			pp.Reportf(pos, w.chainList(fn),
				"dynamic call through a function value inside the noalloc closure (%s); the callee set is unprovable — restructure to a static call or justify with //lint:allow noalloc-closure",
				w.chain(fn))
		}
		for _, e := range prog.calls[fn] {
			if prog.decls[e.Callee] != nil {
				if !w.visited[e.Callee] {
					w.visited[e.Callee] = true
					w.parent[e.Callee] = fn
					w.queue = append(w.queue, e.Callee)
				}
				continue
			}
			if knownAllocCallee(e.Callee) && !reportSanctioned(e.Pos) {
				chain := append(w.chainList(fn), funcLabel(e.Callee))
				pp.Reportf(e.Pos, chain,
					"call to allocating %s inside the noalloc closure: %s → %s",
					funcLabel(e.Callee), w.chain(fn), funcLabel(e.Callee))
			}
		}
	}
}
