// Package syncdiscipline is hbvet golden-test input: a field accessed
// through sync/atomic anywhere must be accessed through sync/atomic
// everywhere.
package syncdiscipline

import "sync/atomic"

type counters struct {
	hits   int64 // accessed via atomic: all access must be atomic
	misses int64 // never atomic: plain access is fine
}

func (c *counters) recordHit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) recordMiss() {
	c.misses++
}

func (c *counters) snapshotRacy() (int64, int64) {
	return c.hits, c.misses // want "\"hits\" is accessed via sync/atomic elsewhere; this plain access races"
}

func (c *counters) snapshotAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) resetSuppressed() {
	//lint:allow sync-discipline golden-test fixture: all writers are parked during reset
	c.hits = 0
}

var published int64

func publish(v int64) {
	atomic.StoreInt64(&published, v)
}

func peekRacy() int64 {
	return published // want "\"published\" is accessed via sync/atomic elsewhere; this plain access races"
}

func fresh() *counters {
	return &counters{hits: 0, misses: 0} // composite-literal construction precedes sharing
}
