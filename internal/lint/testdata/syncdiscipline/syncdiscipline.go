// Package syncdiscipline is hbvet golden-test input: a field accessed
// through sync/atomic anywhere must be accessed through sync/atomic
// everywhere.
package syncdiscipline

import "sync/atomic"

type counters struct {
	hits   int64 // accessed via atomic: all access must be atomic
	misses int64 // never atomic: plain access is fine
}

func (c *counters) recordHit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) recordMiss() {
	c.misses++
}

func (c *counters) snapshotRacy() (int64, int64) {
	return c.hits, c.misses // want "\"hits\" is accessed via sync/atomic elsewhere; this plain access races"
}

func (c *counters) snapshotAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) resetSuppressed() {
	//lint:allow sync-discipline golden-test fixture: all writers are parked during reset
	c.hits = 0
}

var published int64

func publish(v int64) {
	atomic.StoreInt64(&published, v)
}

func peekRacy() int64 {
	return published // want "\"published\" is accessed via sync/atomic elsewhere; this plain access races"
}

func fresh() *counters {
	return &counters{hits: 0, misses: 0} // composite-literal construction precedes sharing
}

// window mirrors the adaptive estimator: a ring whose elements are
// accessed through sync/atomic, so plain element accesses race — but
// len, range and reassigning the slice header touch only the header.
type window struct {
	ring  []int64 // elements accessed via atomic: element access must be atomic
	spare []int64 // never atomic: plain element access is fine
	pos   int
}

func (w *window) record(v int64) {
	atomic.StoreInt64(&w.ring[w.pos], v)
	w.pos = (w.pos + 1) % len(w.ring) // header-only use of ring: no finding
}

func (w *window) sum() int64 {
	var total int64
	for i := range w.ring { // header-only use of ring: no finding
		total += atomic.LoadInt64(&w.ring[i])
	}
	return total
}

func (w *window) peekRacy() int64 {
	return w.ring[0] // want "elements of \"ring\" are accessed via sync/atomic elsewhere; this plain element access races"
}

func (w *window) scratch() int64 {
	w.spare = append(w.spare, 0)
	return w.spare[0]
}

func (w *window) grow(n int) {
	w.ring = make([]int64, n) // header reassignment: no finding
}
