// Package directives is hbvet golden-test input for //lint:allow
// hygiene: a justified suppression is silent, an unjustified one and an
// unused one are findings of their own. The expectations live in the
// driver test (TestDirectiveHygiene) because a "want" comment cannot
// share a line with the directive it describes.
package directives

import "time"

func justified() time.Time {
	//lint:allow determinism fixture justification
	return time.Now()
}

func unjustified() time.Time {
	//lint:allow determinism
	return time.Now()
}

func unused() int {
	//lint:allow determinism nothing on the next line reads a clock
	return 1
}
