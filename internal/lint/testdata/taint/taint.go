// Package taint is hbvet golden-test input for interprocedural
// determinism taint: only boundary.go is allowlisted, so every other
// function that transitively reaches the wall clock or the global rand
// generator is a finding, reported with its full laundering chain.
package taint

import (
	"math/rand"
	"time"
)

// nowMillis launders time.Now behind a wrapper: the taint seed.
func nowMillis() int64 {
	return time.Now().UnixMilli() // want "taint.nowMillis calls and so transitively reaches time.Now outside the wall-clock boundary (taint.nowMillis → time.Now)"
}

// stamp never touches the clock directly; it is tainted transitively
// through nowMillis.
func stamp() int64 {
	return nowMillis() / 1000 // want "taint.stamp calls and so transitively reaches time.Now outside the wall-clock boundary (taint.stamp → taint.nowMillis → time.Now)"
}

// clockSource never calls the clock; capturing time.Now as a value
// taints it all the same — the value can fire anywhere.
func clockSource() func() time.Time {
	return time.Now // want "taint.clockSource captures a reference to and so transitively reaches time.Now"
}

// pick launders the global generator.
func pick(n int) int {
	return rand.Intn(n) // want "taint.pick calls and so transitively reaches rand.Intn"
}

// viaBoundary calls the allowlisted boundary: boundary functions are
// the sanctioned design, so no taint propagates to their callers.
func viaBoundary() time.Time {
	return WallNow()
}

// suppressedSource carries a justified determinism allow: the site does
// not seed taint and callers stay clean.
func suppressedSource() int64 {
	//lint:allow determinism fixture: sanctioned wall-clock source
	return time.Now().UnixNano()
}

func viaSuppressed() int64 {
	return suppressedSource()
}
