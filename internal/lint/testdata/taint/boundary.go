package taint

import "time"

// WallNow is the sanctioned wall-clock boundary: this file is on the
// WallClockAllow list, so it may read the clock and its callers are not
// tainted.
func WallNow() time.Time {
	return time.Now()
}
