// Package determinism is hbvet golden-test input: wall-clock and global
// randomness outside the allowlist. Each "want" comment pins a finding.
package determinism

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "wall-clock read time.Now breaks deterministic replay"
}

func sleepy() {
	time.Sleep(time.Second) // want "wall-clock read time.Sleep"
}

func ticking() *time.Ticker {
	return time.NewTicker(time.Second) // want "wall-clock read time.NewTicker"
}

func globalRand() int {
	return rand.Intn(10) // want "global rand.Intn uses the shared unseeded generator"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructing from a seed is the sanctioned pattern
	return r.Intn(10)
}

func methodCallsAreFine(r *rand.Rand) int {
	return r.Intn(10) // methods on an injected *rand.Rand carry their own seed
}

func durations() time.Duration {
	return 3 * time.Millisecond // arithmetic on time types reads no clock
}

func rearmTimer(t *time.Timer, d time.Duration) {
	t.Reset(d) // want "wall-clock method (*time.Timer).Reset re-arms a physical timer"
}

func rearmTicker(tk *time.Ticker, d time.Duration) {
	tk.Reset(d) // want "wall-clock method (*time.Ticker).Reset re-arms a physical timer"
}

func elapsed(start time.Time) time.Duration {
	return time.Now().Sub(start) // want "time.Time.Sub over a wall-clock read measures physical elapsed time" "wall-clock read time.Now"
}

func suppressed() time.Time {
	//lint:allow determinism golden-test fixture for a justified suppression
	return time.Now()
}
