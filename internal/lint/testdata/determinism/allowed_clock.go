package determinism

import "time"

// This file is on the test's WallClockAllow list, mirroring
// internal/detector/detector.go's WallClock: reading the wall clock here
// is the system's sanctioned time boundary.
func allowedWallClock() time.Time {
	return time.Now()
}
