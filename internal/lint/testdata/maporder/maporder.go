// Package maporder is hbvet golden-test input: map ranges whose bodies
// record, print, or send the nondeterministic iteration order.
package maporder

import (
	"fmt"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside a map range records map iteration order"
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below, so the iteration order cannot escape
	}
	sort.Strings(keys)
	return keys
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output write inside a map range leaks map iteration order"
	}
}

func sending(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside a map range leaks map iteration order"
	}
}

func innerSliceIsFine(m map[string]int) int {
	total := 0
	for k := range m {
		var local []string // declared inside the range: order cannot outlive the iteration
		local = append(local, k)
		total += len(local)
	}
	return total
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered
	}
	return out
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow map-order golden-test fixture: the caller treats the result as a set
		keys = append(keys, k)
	}
	return keys
}
