// Package noalloc is hbvet golden-test input for the //hbvet:noalloc
// contract: annotated functions are rejected on likely allocation sites;
// unannotated functions may allocate freely. This doubles as the
// regression test for "a deliberately introduced allocation in an
// annotated function is caught".
package noalloc

import "fmt"

type point struct{ x, y int }

//hbvet:noalloc
func cleanHotPath(xs []int, buf []int) []int {
	total := 0
	for _, x := range xs {
		total += x
	}
	buf = append(buf, total) // growing the recycled buffer in place is the sanctioned shape
	return buf
}

//hbvet:noalloc
func makes(n int) []int {
	return make([]int, n) // want "make allocates in noalloc function makes"
}

//hbvet:noalloc
func news() *point {
	return new(point) // want "new allocates in noalloc function news"
}

//hbvet:noalloc
func escapingLiteral() *point {
	return &point{1, 2} // want "address-taken composite literal allocates in noalloc function escapingLiteral"
}

//hbvet:noalloc
func sliceLiteral() []int {
	return []int{1, 2, 3} // want "literal allocates its backing store in noalloc function sliceLiteral"
}

//hbvet:noalloc
func escapingClosure(n int) func() int {
	return func() int { return n } // want "closure in noalloc function escapingClosure likely escapes and allocates"
}

//hbvet:noalloc
func immediateClosureIsFine(n int) int {
	return func() int { return n * 2 }() // invoked in place: inlined, never escapes
}

//hbvet:noalloc
func boxes(err error, n int) error {
	if n > 0 {
		return fmt.Errorf("n = %d", n) // want "boxes a int" "variadic call allocates its argument slice"
	}
	return err
}

//hbvet:noalloc
func concatenates(a, b string) string {
	return a + b // want "string concatenation allocates in noalloc function concatenates"
}

//hbvet:noalloc
func appendsAcross(dst, src []int) []int {
	out := append(dst, src...) // want "append result lands in a different slice than its source"
	return out
}

//hbvet:noalloc
func suppressedColdPath(n int) error {
	if n < 0 {
		//lint:allow hot-path-alloc golden-test fixture: cold error path
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

// unannotated may allocate: the contract is opt-in per function.
func unannotated(n int) []int {
	return make([]int, n)
}
