// Package bufreuse is hbvet golden-test input for the ta buffer-reuse
// contract: results of Successors/AppendKey called with a recycled buffer
// must flow back into the same buffer and must not outlive the next call.
package bufreuse

import "repro/internal/ta"

type holder struct {
	kept []ta.Transition
	key  []byte
}

func aliasing(n *ta.Network, s *ta.State, buf []ta.Transition) int {
	out := n.Successors(s, buf[:0]) // want "aliases recycled buffer \"buf\""
	return len(out)
}

func canonical(n *ta.Network, s *ta.State, buf []ta.Transition) int {
	buf = n.Successors(s, buf[:0]) // the sanctioned shape: result back into the recycled buffer
	return len(buf)
}

func freshBufferIsExempt(n *ta.Network, s *ta.State) int {
	out := n.Successors(s, nil) // fresh buffer: nothing recycled, nothing retained
	return len(out)
}

func returning(n *ta.Network, s *ta.State, buf []ta.Transition) []ta.Transition {
	buf = n.Successors(s, buf[:0])
	return buf // want "returning \"buf\" leaks the recycled Successors buffer"
}

func storing(n *ta.Network, s *ta.State, h *holder, buf []ta.Transition) {
	buf = n.Successors(s, buf[:0])
	h.kept = buf // want "storing \"buf\" into a struct field retains the recycled Successors buffer"
}

func capturing(n *ta.Network, s *ta.State, buf []ta.Transition) func() int {
	buf = n.Successors(s, buf[:0])
	return func() int { // want "closure captures \"buf\", the recycled Successors buffer"
		return len(buf)
	}
}

func appending(n *ta.Network, s *ta.State, all []ta.Transition, buf []ta.Transition) []ta.Transition {
	buf = n.Successors(s, buf[:0])
	all = append(all, buf...) // want "appending \"buf\" into another slice retains the recycled Successors buffer"
	return all
}

func cloningElement(n *ta.Network, s *ta.State, buf []ta.Transition) ta.State {
	buf = n.Successors(s, buf[:0])
	return buf[0].Target.Clone() // Clone is an explicit deep copy
}

func keyAsMapIndex(s *ta.State, seen map[string]bool, key []byte) bool {
	key = s.AppendKey(key[:0])
	return seen[string(key)] // string(...) copies the bytes out of the buffer
}

func keyStored(s *ta.State, h *holder, key []byte) {
	key = s.AppendKey(key[:0])
	h.key = key // want "storing \"key\" into a struct field retains the recycled AppendKey buffer"
}

func suppressed(n *ta.Network, s *ta.State, buf []ta.Transition) []ta.Transition {
	buf = n.Successors(s, buf[:0])
	//lint:allow buffer-reuse golden-test fixture: the caller consumes the slice before the next call
	return buf
}
