// Package closure is hbvet golden-test input for the interprocedural
// noalloc closure proof. Root is the annotated root; every want comment
// pins a finding whose message carries the full call chain, including
// the seeded mutants one and two call levels below the root.
package closure

import "errors"

//hbvet:noalloc
func Root(n int) int {
	x := direct(n)
	x += mid(n)
	x += dyn(pure)
	x += boundary(n)
	x += sitesup(n)
	x += trailer(n)
	x += annotated(n)
	if x < 0 {
		x += coldpath(n)
	}
	return x
}

// direct is the depth-1 mutant: an allocating helper one call below the
// root, reported with the two-hop chain.
func direct(n int) int {
	buf := make([]int, n) // want "make allocates in function direct — reachable from noalloc root: closure.Root → closure.direct"
	return len(buf) + n
}

// mid is allocation-free itself; helper below it is the depth-2 mutant.
func mid(n int) int {
	return helper(n) + 1
}

// helper allocates two calls below the root via a known-allocating
// stdlib callee, reported with the full three-hop chain.
func helper(n int) int {
	err := errors.New("helper underflow") // want "call to allocating errors.New inside the noalloc closure: closure.Root → closure.mid → closure.helper → errors.New"
	if n < 0 && err != nil {
		return 0
	}
	return n
}

// dyn calls through a function value: the callee set is unprovable.
func dyn(f func() int) int {
	return f() // want "dynamic call through a function value inside the noalloc closure (closure.Root → closure.dyn)"
}

func pure() int { return 1 }

// boundary is an accepted allocation boundary: the declaration-level
// directive cuts traversal, so neither its own body nor anything
// reachable only through it is reported.
//
//lint:allow noalloc-closure fixture boundary: this sink allocates by design
func boundary(n int) int {
	s := make([]int, n)
	return len(s) + behindBoundary(n)
}

// behindBoundary is reachable only through the boundary: excluded from
// the proof despite its allocation.
func behindBoundary(n int) int {
	b := make([]byte, n)
	return len(b)
}

// trailer carries a same-line directive: positionally it covers the
// declaration line, but only a doc-comment directive marks a boundary,
// so the body still reports.
func trailer(n int) int { //lint:allow noalloc-closure fixture: same-line directive stays site-level
	x := n + 1
	b := make([]byte, x) // want "make allocates in function trailer — reachable from noalloc root: closure.Root → closure.trailer"
	return len(b)
}

// sitesup carries a justified site-level allow: the directive sanctions
// only the literal finding on the next line and must not exempt the
// callee sharing its body — deeper still reports.
func sitesup(n int) int {
	//lint:allow noalloc-closure fixture: this one retry buffer is justified
	buf := make([]int, n)
	return len(buf) + deeper(n)
}

func deeper(n int) int {
	b := make([]byte, n) // want "make allocates in function deeper — reachable from noalloc root: closure.Root → closure.sitesup → closure.deeper"
	return len(b)
}

// annotated carries its own //hbvet:noalloc: the closure pass does not
// re-report its body sites (those are the intraprocedural hot-path-alloc
// check's findings already).
//
//hbvet:noalloc
func annotated(n int) int {
	s := make([]int, n)
	return len(s)
}

// coldpath shares its justification with the intraprocedural check: a
// hot-path-alloc allow sanctions the closure report for the same site.
func coldpath(n int) int {
	//lint:allow hot-path-alloc fixture: cold error path, one shared justification
	err := errors.New("cold")
	if err != nil {
		return -n
	}
	return n
}
