package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerSyncDiscipline enforces the access-discipline rule the
// parallel checker relies on (see internal/mc/parallel.go): a memory
// location accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere. Mixing an atomic.AddInt64 on one path
// with a plain read or a mutex-guarded write on another is a data race
// the race detector only catches when both paths happen to run — the
// analyzer catches it statically.
//
// Tracked locations are struct fields and package-level variables whose
// address is passed to a sync/atomic function. Fields of the typed
// atomic.* wrappers enforce their own discipline and need no analysis.
// Initialisation before the location is shared is legitimately
// non-atomic; such sites carry a //lint:allow sync-discipline
// suppression naming why publication is safe.
var AnalyzerSyncDiscipline = &Analyzer{
	Name: "sync-discipline",
	Doc:  "locations accessed via sync/atomic must be accessed via sync/atomic everywhere",
	Run:  runSyncDiscipline,
}

func runSyncDiscipline(p *Pass) {
	// Pass 1: collect locations whose address flows into sync/atomic.
	atomicLocs := map[types.Object]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op.String() != "&" {
					continue
				}
				if obj := addressableLoc(p.Info, u.X); obj != nil {
					atomicLocs[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicLocs) == 0 {
		return
	}
	// Composite-literal keys (Counter{hits: 0}) are construction, not
	// shared access; collect them so pass 2 can skip them.
	litKeys := map[*ast.Ident]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						litKeys[id] = true
					}
				}
			}
			return true
		})
	}
	// Pass 2: flag every plain (non-atomic) access to those locations.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isAtomicCall(p.Info, call) {
				return false // accesses inside the atomic call are the point
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || !atomicLocs[obj] || obj.Pos() == id.Pos() || litKeys[id] {
				return true
			}
			p.Reportf(id.Pos(), "%q is accessed via sync/atomic elsewhere; this plain access races with it (use atomic, or a //lint:allow sync-discipline with the publication argument)", obj.Name())
			return true
		})
	}
}

// isAtomicCall reports whether the call targets a sync/atomic function
// or a method of the typed atomic wrappers.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressableLoc resolves expr to a tracked location object: a struct
// field (via selector) or a package-level variable. Locals are skipped —
// their sharing is established by explicit &x handoff the analyzer
// cannot trace soundly.
func addressableLoc(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}
