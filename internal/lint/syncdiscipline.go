package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerSyncDiscipline enforces the access-discipline rule the
// parallel checker relies on (see internal/mc/parallel.go): a memory
// location accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere. Mixing an atomic.AddInt64 on one path
// with a plain read or a mutex-guarded write on another is a data race
// the race detector only catches when both paths happen to run — the
// analyzer catches it statically.
//
// Tracked locations are struct fields and package-level variables whose
// address is passed to a sync/atomic function — directly (&c.hits) or
// through an element (&a.ring[i], as the adaptive estimator's shared
// window does). Element-atomic locations flag plain element accesses
// only: len, range and slice-header assignments touch the header, not
// the shared cells. Fields of the typed atomic.* wrappers enforce their
// own discipline and need no analysis. Initialisation before the
// location is shared is legitimately non-atomic; such sites carry a
// //lint:allow sync-discipline suppression naming why publication is
// safe.
var AnalyzerSyncDiscipline = &Analyzer{
	Name: "sync-discipline",
	Doc:  "locations accessed via sync/atomic must be accessed via sync/atomic everywhere",
	Run:  runSyncDiscipline,
}

func runSyncDiscipline(p *Pass) {
	// Pass 1: collect locations whose address flows into sync/atomic.
	// atomicLocs hold locations passed whole (&c.hits); atomicElems hold
	// containers passed by element (&a.ring[i]), whose discipline covers
	// the elements but not the container header.
	atomicLocs := map[types.Object]bool{}
	atomicElems := map[types.Object]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op.String() != "&" {
					continue
				}
				if ix, ok := ast.Unparen(u.X).(*ast.IndexExpr); ok {
					if obj := addressableLoc(p.Info, ix.X); obj != nil {
						atomicElems[obj] = true
					}
					continue
				}
				if obj := addressableLoc(p.Info, u.X); obj != nil {
					atomicLocs[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicLocs) == 0 && len(atomicElems) == 0 {
		return
	}
	// Composite-literal keys (Counter{hits: 0}) are construction, not
	// shared access; collect them so pass 2 can skip them.
	litKeys := map[*ast.Ident]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						litKeys[id] = true
					}
				}
			}
			return true
		})
	}
	// Pass 2: flag every plain (non-atomic) access to those locations —
	// any mention of a whole-location one, element accesses of an
	// element-atomic one.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isAtomicCall(p.Info, n) {
					return false // accesses inside the atomic call are the point
				}
			case *ast.IndexExpr:
				obj := addressableLoc(p.Info, n.X)
				if obj == nil || !atomicElems[obj] {
					return true
				}
				p.Reportf(n.Pos(), "elements of %q are accessed via sync/atomic elsewhere; this plain element access races with it (use atomic, or a //lint:allow sync-discipline with the publication argument)", obj.Name())
				return true
			case *ast.Ident:
				obj := p.Info.ObjectOf(n)
				if obj == nil || !atomicLocs[obj] || obj.Pos() == n.Pos() || litKeys[n] {
					return true
				}
				p.Reportf(n.Pos(), "%q is accessed via sync/atomic elsewhere; this plain access races with it (use atomic, or a //lint:allow sync-discipline with the publication argument)", obj.Name())
				return true
			}
			return true
		})
	}
}

// isAtomicCall reports whether the call targets a sync/atomic function
// or a method of the typed atomic wrappers.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressableLoc resolves expr to a tracked location object: a struct
// field (via selector) or a package-level variable. Locals are skipped —
// their sharing is established by explicit &x handoff the analyzer
// cannot trace soundly.
func addressableLoc(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}
