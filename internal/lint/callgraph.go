package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is a set of loaded packages analyzed as one unit: the
// interprocedural analyzers (noalloc closure, determinism taint) need a
// module-wide call graph, not a per-package view. The loader memoizes
// packages in one shared FileSet and type-checks module-internal imports
// once, so *types.Func objects are canonical across every package in
// the program and can key the graph directly.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// decls maps every function and method declared in the program to
	// its declaration and owning package; declList holds the same
	// functions in deterministic source order (packages sorted by path,
	// files and declarations in order) for analyzers that iterate.
	decls    map[*types.Func]*declInfo
	declList []*types.Func
	// calls holds the outgoing call edges per declared function, in
	// source order. Static calls are exact; interface calls are a
	// type-set approximation (one edge per implementing type declared in
	// the program); calls through function values have no edge — they
	// are recorded in dynCalls instead.
	calls map[*types.Func][]callEdge
	// dynCalls records call sites through function values (variables,
	// fields, parameters, call results) per declared function. The
	// callee set of such a call is statically unknown, so the closure
	// analyzers treat each site as an explicit finding rather than
	// guessing.
	dynCalls map[*types.Func][]token.Pos
	// funcRefs records, per declared function, uses of other functions
	// as *values* (f := time.Now; handlers[k] = c.step): the referenced
	// function can run wherever the value flows, so taint treats a
	// reference like a call.
	funcRefs map[*types.Func][]funcRef

	// named caches the named (non-interface) types declared in the
	// program for interface-call resolution.
	named []*types.Named
	// implCache memoizes interface-method resolution per interface
	// method object.
	implCache map[*types.Func][]*types.Func
}

// declInfo ties a declared function to its AST and package.
type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// callEdge is one resolved call: caller → Callee at Pos. Iface marks
// edges added by the interface type-set approximation (possible, not
// certain, targets).
type callEdge struct {
	Callee *types.Func
	Pos    token.Pos
	Iface  bool
}

// funcRef is one use of a function as a value.
type funcRef struct {
	Func *types.Func
	Pos  token.Pos
}

// NewProgram indexes the packages and builds the call graph.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:      pkgs,
		decls:     map[*types.Func]*declInfo{},
		calls:     map[*types.Func][]callEdge{},
		dynCalls:  map[*types.Func][]token.Pos{},
		funcRefs:  map[*types.Func][]funcRef{},
		implCache: map[*types.Func][]*types.Func{},
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	prog.indexDecls()
	prog.indexNamedTypes()
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.addEdges(pkg, obj, fn)
			}
		}
	}
	return prog
}

func (prog *Program) indexDecls() {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					prog.decls[obj] = &declInfo{pkg: pkg, decl: fn}
					prog.declList = append(prog.declList, obj)
				}
			}
		}
	}
}

func (prog *Program) indexNamedTypes() {
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if named.TypeParams().Len() > 0 {
				continue // uninstantiated generics have no concrete method set
			}
			prog.named = append(prog.named, named)
		}
	}
}

// Decl returns the declaration of fn, or nil for functions without a
// body in the program (stdlib, interface methods).
func (prog *Program) Decl(fn *types.Func) *declInfo { return prog.decls[fn] }

// addEdges walks one function body (including nested function literals,
// whose calls are attributed to the enclosing declaration: literals that
// escape are flagged by the intraprocedural noalloc check, and literals
// that run inline — immediately invoked or stored-and-fired on the same
// hot path — contribute their callees to the caller's closure).
func (prog *Program) addEdges(pkg *Package, caller *types.Func, fn *ast.FuncDecl) {
	// callIdents collects the identifiers naming each call's callee so
	// the reference pass below does not double-count them as value uses.
	callIdents := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callIdents[fun] = true
		case *ast.SelectorExpr:
			callIdents[fun.Sel] = true
		}
		prog.classifyCall(pkg, caller, call)
		return true
	})
	// Function-value references outside call position: f := time.Now,
	// handlers[k] = c.step, method values, conversions of func names.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callIdents[id] {
			return true
		}
		if obj, ok := pkg.Info.Uses[id].(*types.Func); ok {
			prog.funcRefs[caller] = append(prog.funcRefs[caller], funcRef{Func: obj, Pos: id.Pos()})
		}
		return true
	})
}

// classifyCall resolves one call site into static edges, interface
// type-set edges, or a dynamic-call record.
func (prog *Program) classifyCall(pkg *Package, caller *types.Func, call *ast.CallExpr) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin, nil:
			return
		case *types.Func:
			prog.calls[caller] = append(prog.calls[caller], callEdge{Callee: obj, Pos: call.Pos()})
			return
		default: // a variable or parameter of function type
			prog.dynCalls[caller] = append(prog.dynCalls[caller], call.Pos())
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				callee := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					prog.addInterfaceEdges(caller, callee, call.Pos())
				} else {
					prog.calls[caller] = append(prog.calls[caller], callEdge{Callee: callee, Pos: call.Pos()})
				}
			case types.FieldVal: // calling a func-typed field
				prog.dynCalls[caller] = append(prog.dynCalls[caller], call.Pos())
			}
			return
		}
		// Package-qualified reference: pkg.Func or pkg.Var.
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			prog.calls[caller] = append(prog.calls[caller], callEdge{Callee: obj, Pos: call.Pos()})
		case *types.Var:
			prog.dynCalls[caller] = append(prog.dynCalls[caller], call.Pos())
		}
		return
	case *ast.FuncLit:
		// Immediately invoked: its body is walked as part of the
		// enclosing declaration, so the inner calls are already edges.
		return
	default:
		// Call of a call result, an indexed element, etc.
		prog.dynCalls[caller] = append(prog.dynCalls[caller], call.Pos())
	}
}

// addInterfaceEdges approximates an interface-method call by its type
// set: one edge per named type declared in the program that implements
// the interface, targeting that type's concrete method. Stdlib
// implementers are invisible (their declarations are not loaded), so
// the approximation is exact for module-internal dispatch and silent on
// external implementations — the documented contract of the closure
// analyzers.
func (prog *Program) addInterfaceEdges(caller, ifaceMethod *types.Func, pos token.Pos) {
	impls, ok := prog.implCache[ifaceMethod]
	if !ok {
		iface, _ := ifaceMethod.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
		if iface != nil {
			for _, named := range prog.named {
				ptr := types.NewPointer(named)
				if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
				if m, ok := obj.(*types.Func); ok {
					impls = append(impls, m)
				}
			}
			sort.Slice(impls, func(i, j int) bool { return funcLabel(impls[i]) < funcLabel(impls[j]) })
		}
		prog.implCache[ifaceMethod] = impls
	}
	for _, m := range impls {
		prog.calls[caller] = append(prog.calls[caller], callEdge{Callee: m, Pos: pos, Iface: true})
	}
}

// funcLabel renders a function for chain reporting: "sim.Step",
// "sim.(*Simulator).Run", "fmt.Sprintf".
func funcLabel(f *types.Func) string {
	name := f.Name()
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + name
	}
	t := sig.Recv().Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		star = "*"
	}
	recv := "?"
	switch t := t.(type) {
	case *types.Named:
		recv = t.Obj().Name()
	case *types.Interface:
		recv = "interface"
	}
	if star != "" {
		return pkg + "(" + star + recv + ")." + name
	}
	return pkg + recv + "." + name
}

// chainWalk is a multi-source BFS over the call graph used by both
// interprocedural analyzers. Parents records the tree for chain
// reconstruction; order is deterministic (roots in sorted label order,
// edges in source order).
type chainWalk struct {
	prog    *Program
	parent  map[*types.Func]*types.Func
	visited map[*types.Func]bool
	queue   []*types.Func
}

func newChainWalk(prog *Program, roots []*types.Func) *chainWalk {
	w := &chainWalk{
		prog:    prog,
		parent:  map[*types.Func]*types.Func{},
		visited: map[*types.Func]bool{},
	}
	sorted := append([]*types.Func(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return funcLabel(sorted[i]) < funcLabel(sorted[j]) })
	for _, r := range sorted {
		if !w.visited[r] {
			w.visited[r] = true
			w.queue = append(w.queue, r)
		}
	}
	return w
}

// chain renders the call chain from the nearest root down to fn,
// "root → mid → fn".
func (w *chainWalk) chain(fn *types.Func) string {
	var labels []string
	for f := fn; f != nil; f = w.parent[f] {
		labels = append(labels, funcLabel(f))
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	s := ""
	for i, l := range labels {
		if i > 0 {
			s += " → "
		}
		s += l
	}
	return s
}

// chainList returns the chain as a label slice for structured output.
func (w *chainWalk) chainList(fn *types.Func) []string {
	var labels []string
	for f := fn; f != nil; f = w.parent[f] {
		labels = append(labels, funcLabel(f))
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	return labels
}
