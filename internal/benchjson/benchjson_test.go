package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func goodEntry(label, date string) Entry {
	return Entry{
		Label:    label,
		Date:     date,
		Go:       "go1.24.0",
		MaxProcs: 1,
		NumCPU:   1,
		Checker:  Metrics{PerSec: 1.2e6, NSPerOp: 8.3e8, AllocsPerOp: 1600},
		Simulator: Metrics{
			PerSec: 8.7e6, NSPerOp: 1.1e7, AllocsPerOp: 60,
		},
	}
}

func goodFleetEntry(label, date string) Entry {
	return Entry{
		Label:    label,
		Date:     date,
		Go:       "go1.24.0",
		MaxProcs: 1,
		NumCPU:   1,
		Fleet: &FleetMetrics{
			Endpoints:        1 << 20,
			Clusters:         1 << 14,
			Shards:           64,
			Workers:          1,
			Epochs:           30,
			BeatsPerSec:      2.5e6,
			P50Ticks:         24,
			P99Ticks:         45,
			DetectionSamples: 900,
		},
	}
}

func goodEnsembleEntry(label, date string) Entry {
	return Entry{
		Label:    label,
		Date:     date,
		Go:       "go1.24.0",
		MaxProcs: 1,
		NumCPU:   1,
		Ensemble: &EnsembleMetrics{
			TrialsPerPoint:       100000,
			Points:               42,
			Workers:              1,
			TrialsPerSec:         1.1e5,
			BaselineTrialsPerSec: 8.0e3,
			Speedup:              13.8,
		},
	}
}

func TestValidateHistory(t *testing.T) {
	cases := []struct {
		name    string
		history History
		wantErr string // empty = valid
	}{
		{
			name: "valid pair",
			history: History{Entries: []Entry{
				goodEntry("pr2-baseline", "2026-07-01T10:00:00Z"),
				goodEntry("pr4-simfast", "2026-07-20T09:30:00Z"),
			}},
		},
		{
			name:    "empty history",
			history: History{},
		},
		{
			name: "micro and fleet entries coexist",
			history: History{Entries: []Entry{
				goodEntry("pr2-baseline", "2026-07-01T10:00:00Z"),
				goodFleetEntry("pr7-fleet-1m", "2026-08-07T10:00:00Z"),
			}},
		},
		{
			name: "ensemble entries coexist with the rest",
			history: History{Entries: []Entry{
				goodEntry("pr2-baseline", "2026-07-01T10:00:00Z"),
				goodFleetEntry("pr7-fleet-1m", "2026-08-07T10:00:00Z"),
				goodEnsembleEntry("pr9-mc", "2026-08-07T11:00:00Z"),
			}},
		},
		{
			name: "ensemble entry with zero rate",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEnsembleEntry("a", "2026-07-01T10:00:00Z")
					e.Ensemble.TrialsPerSec = 0
					return e
				}(),
			}},
			wantErr: "trials_per_sec",
		},
		{
			name: "ensemble entry with zero trials",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEnsembleEntry("a", "2026-07-01T10:00:00Z")
					e.Ensemble.TrialsPerPoint = 0
					return e
				}(),
			}},
			wantErr: "trials_per_point",
		},
		{
			name: "ensemble entry with speedup but no baseline",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEnsembleEntry("a", "2026-07-01T10:00:00Z")
					e.Ensemble.BaselineTrialsPerSec = 0
					return e
				}(),
			}},
			wantErr: "set together",
		},
		{
			name: "equal dates allowed",
			history: History{Entries: []Entry{
				goodEntry("a", "2026-07-01T10:00:00Z"),
				goodEntry("b", "2026-07-01T10:00:00Z"),
			}},
		},
		{
			name: "empty label",
			history: History{Entries: []Entry{
				goodEntry("", "2026-07-01T10:00:00Z"),
			}},
			wantErr: "empty label",
		},
		{
			name: "duplicate label",
			history: History{Entries: []Entry{
				goodEntry("run", "2026-07-01T10:00:00Z"),
				goodEntry("run", "2026-07-02T10:00:00Z"),
			}},
			wantErr: "duplicate label",
		},
		{
			name: "bad date",
			history: History{Entries: []Entry{
				goodEntry("a", "July 1st"),
			}},
			wantErr: "not RFC3339",
		},
		{
			name: "dates move backwards",
			history: History{Entries: []Entry{
				goodEntry("a", "2026-07-02T10:00:00Z"),
				goodEntry("b", "2026-07-01T10:00:00Z"),
			}},
			wantErr: "precedes",
		},
		{
			name: "missing go version",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEntry("a", "2026-07-01T10:00:00Z")
					e.Go = ""
					return e
				}(),
			}},
			wantErr: "missing go version",
		},
		{
			name: "zero checker rate",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEntry("a", "2026-07-01T10:00:00Z")
					e.Checker.PerSec = 0
					return e
				}(),
			}},
			wantErr: "checker per_sec",
		},
		{
			name: "zero maxprocs",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodEntry("a", "2026-07-01T10:00:00Z")
					e.MaxProcs = 0
					return e
				}(),
			}},
			wantErr: "maxprocs",
		},
		{
			name: "fleet entry with zero rate",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodFleetEntry("a", "2026-07-01T10:00:00Z")
					e.Fleet.BeatsPerSec = 0
					return e
				}(),
			}},
			wantErr: "beats_per_sec",
		},
		{
			name: "fleet entry with missed deadlines",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodFleetEntry("a", "2026-07-01T10:00:00Z")
					e.Fleet.MissedDeadlines = 3
					return e
				}(),
			}},
			wantErr: "missed 3 deadlines",
		},
		{
			name: "fleet entry with inverted percentiles",
			history: History{Entries: []Entry{
				func() Entry {
					e := goodFleetEntry("a", "2026-07-01T10:00:00Z")
					e.Fleet.P99Ticks = e.Fleet.P50Ticks - 1
					return e
				}(),
			}},
			wantErr: "below p50",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.history)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// Append round-trips through disk, accumulates entries, and refuses to
// extend an invalid history.
func TestAppendValidatedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Append(path, goodEntry("a", "2026-07-01T10:00:00Z")); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, goodFleetEntry("b", "2026-07-02T10:00:00Z")); err != nil {
		t.Fatal(err)
	}
	h, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 2 || h.Entries[1].Fleet == nil {
		t.Fatalf("loaded %d entries, fleet=%v", len(h.Entries), h.Entries[1].Fleet)
	}
	// A duplicate label must be rejected and leave the file untouched.
	if err := Append(path, goodEntry("a", "2026-07-03T10:00:00Z")); err == nil {
		t.Fatal("duplicate label appended")
	}
	h2, err := Load(path)
	if err != nil || len(h2.Entries) != 2 {
		t.Fatalf("history mutated by rejected append: %d entries, %v", len(h2.Entries), err)
	}
}

// TestCheckedInHistoryValid pins the repo's actual BENCH_mc.json against
// the same rules the append path enforces, so a hand-edit that breaks
// the trajectory fails in tests before the next append trips on it.
func TestCheckedInHistoryValid(t *testing.T) {
	b, err := os.ReadFile("../../BENCH_mc.json")
	if err != nil {
		t.Skipf("no checked-in history: %v", err)
	}
	var hist History
	if err := json.Unmarshal(b, &hist); err != nil {
		t.Fatalf("BENCH_mc.json does not parse: %v", err)
	}
	if len(hist.Entries) == 0 {
		t.Fatal("BENCH_mc.json has no entries")
	}
	if err := Validate(hist); err != nil {
		t.Fatalf("checked-in BENCH_mc.json fails validation: %v", err)
	}
}
