// Package benchjson is the shared schema and validated-append path for
// BENCH_mc.json, the repo's benchmark trajectory. Both writers — hbbench
// (checker/simulator micro-benchmarks) and hbfleet (the fleet-scale
// macro-benchmark) — append through Append, which validates the whole
// history before writing: the file is the artifact, and a malformed or
// out-of-order entry breaks trajectory diffs months later, so appends
// fail loudly instead.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Entry is one benchmark run in the history file. Exactly one of the two
// shapes is populated: micro entries carry Checker+Simulator, fleet
// entries carry Fleet.
type Entry struct {
	Label    string `json:"label"`
	Date     string `json:"date"`
	Go       string `json:"go"`
	MaxProcs int    `json:"maxprocs"`
	// NumCPU is runtime.NumCPU() on the measuring host. Parallel-speedup
	// numbers from a 1-CPU host measure coordination overhead only (see
	// Note); recorded so history rows are interpretable later.
	NumCPU int `json:"numcpu,omitempty"`
	// Note flags rows needing interpretation care, e.g.
	// "coordination-overhead-only" for multi-worker runs on one CPU.
	Note string `json:"note,omitempty"`
	// Workers is the BFS worker count used for the checker benchmark
	// (0 before the checker went parallel).
	Workers   int     `json:"workers,omitempty"`
	Checker   Metrics `json:"checker,omitzero"`
	Simulator Metrics `json:"simulator,omitzero"`
	// Table1SeqMS and Table1ParMS time the Table 1 binary-family
	// regeneration sequentially and with all cores, in milliseconds.
	Table1SeqMS float64 `json:"table1_seq_ms,omitempty"`
	Table1ParMS float64 `json:"table1_par_ms,omitempty"`
	// Fleet carries the hbfleet macro-benchmark, when this entry is one.
	Fleet *FleetMetrics `json:"fleet,omitempty"`
	// Ensemble carries the hbmc Monte-Carlo sweep benchmark, when this
	// entry is one.
	Ensemble *EnsembleMetrics `json:"ensemble,omitempty"`
}

// Metrics summarises one throughput benchmark.
type Metrics struct {
	// PerSec is the benchmark's primary rate: states/s for the checker,
	// events/s for the simulator.
	PerSec      float64 `json:"per_sec"`
	NSPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// FleetMetrics summarises one hbfleet benchmark run.
type FleetMetrics struct {
	Endpoints int `json:"endpoints"`
	Clusters  int `json:"clusters"`
	Shards    int `json:"shards"`
	Workers   int `json:"workers"`
	Epochs    int `json:"epochs"`
	// BeatsPerSec is sustained protocol rounds closed per wall-clock
	// second across the whole fleet.
	BeatsPerSec float64 `json:"beats_per_sec"`
	// P50Ticks/P99Ticks are detection-latency percentiles in virtual
	// ticks, over DetectionSamples detections.
	P50Ticks         int    `json:"p50_ticks"`
	P99Ticks         int    `json:"p99_ticks"`
	DetectionSamples uint64 `json:"detection_samples"`
	// AllocsPerEpoch is steady-state allocations per epoch (0 when the
	// per-beat path holds the simulator's 0-alloc standard).
	AllocsPerEpoch int64 `json:"allocs_per_epoch"`
	// MissedDeadlines counts virtual-time monotonicity violations
	// (must be 0).
	MissedDeadlines uint64 `json:"missed_deadlines"`
}

// EnsembleMetrics summarises one hbmc Monte-Carlo sweep run.
type EnsembleMetrics struct {
	// TrialsPerPoint is the Monte-Carlo sample size at each sweep point;
	// Points is how many (variant, parameter) points the sweep covered.
	TrialsPerPoint int `json:"trials_per_point"`
	Points         int `json:"points"`
	// Workers is the trial-sharding worker count (byte-identical results
	// at any value; >1 on one CPU measures coordination overhead only).
	Workers int `json:"workers"`
	// TrialsPerSec is sustained ensemble throughput over the whole sweep.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// BaselineTrialsPerSec, when measured, is the per-trial simulator
	// (scenario) path on the same workload; Speedup is the ratio.
	BaselineTrialsPerSec float64 `json:"baseline_trials_per_sec,omitempty"`
	Speedup              float64 `json:"speedup,omitempty"`
}

// History is the BENCH_mc.json document.
type History struct {
	Entries []Entry `json:"history"`
}

// CoordinationOverheadNote is the standard Note for multi-worker rows
// measured on a single CPU: worker counts above 1 cannot show speedup
// there, only coordination overhead.
const CoordinationOverheadNote = "coordination-overhead-only"

// Validate checks the whole benchmark history. Rules:
//
//   - every entry has a non-empty label, and labels are unique (a
//     duplicate label makes "the pr4-maxprocs8 row" ambiguous);
//   - every entry's date parses as RFC3339 and dates never move
//     backwards (the file is an append-only trajectory; out-of-order
//     dates mean someone rewrote history or a clock is broken);
//   - the required measurement fields are present: go version,
//     maxprocs >= 1, and one complete measurement shape — positive
//     per_sec/ns_per_op for both checker and simulator (micro entries),
//     positive endpoints/beats_per_sec (fleet entries), or positive
//     trials/points/trials_per_sec (ensemble entries).
func Validate(h History) error {
	seen := make(map[string]int, len(h.Entries))
	var prev time.Time
	for i, e := range h.Entries {
		where := fmt.Sprintf("entry %d (label %q)", i, e.Label)
		if e.Label == "" {
			return fmt.Errorf("entry %d: empty label", i)
		}
		if j, dup := seen[e.Label]; dup {
			return fmt.Errorf("%s: duplicate label (first used by entry %d); pick a distinct -label", where, j)
		}
		seen[e.Label] = i
		d, err := time.Parse(time.RFC3339, e.Date)
		if err != nil {
			return fmt.Errorf("%s: date %q is not RFC3339: %v", where, e.Date, err)
		}
		if d.Before(prev) {
			return fmt.Errorf("%s: date %s precedes the previous entry's %s; the history is append-only and must stay chronological", where, e.Date, prev.Format(time.RFC3339))
		}
		prev = d
		if e.Go == "" {
			return fmt.Errorf("%s: missing go version", where)
		}
		if e.MaxProcs < 1 {
			return fmt.Errorf("%s: maxprocs %d < 1", where, e.MaxProcs)
		}
		if e.Fleet != nil {
			if err := validateFleet(e.Fleet); err != nil {
				return fmt.Errorf("%s: %v", where, err)
			}
			continue
		}
		if e.Ensemble != nil {
			if err := validateEnsemble(e.Ensemble); err != nil {
				return fmt.Errorf("%s: %v", where, err)
			}
			continue
		}
		if err := validateMetrics("checker", e.Checker); err != nil {
			return fmt.Errorf("%s: %v", where, err)
		}
		if err := validateMetrics("simulator", e.Simulator); err != nil {
			return fmt.Errorf("%s: %v", where, err)
		}
	}
	return nil
}

func validateMetrics(name string, m Metrics) error {
	if m.PerSec <= 0 {
		return fmt.Errorf("%s per_sec %g is not positive; the benchmark did not run", name, m.PerSec)
	}
	if m.NSPerOp <= 0 {
		return fmt.Errorf("%s ns_per_op %g is not positive", name, m.NSPerOp)
	}
	return nil
}

func validateFleet(f *FleetMetrics) error {
	if f.Endpoints <= 0 {
		return fmt.Errorf("fleet endpoints %d is not positive", f.Endpoints)
	}
	if f.BeatsPerSec <= 0 {
		return fmt.Errorf("fleet beats_per_sec %g is not positive; the benchmark did not run", f.BeatsPerSec)
	}
	if f.Epochs <= 0 {
		return fmt.Errorf("fleet epochs %d is not positive", f.Epochs)
	}
	if f.P99Ticks < f.P50Ticks {
		return fmt.Errorf("fleet p99 %d below p50 %d", f.P99Ticks, f.P50Ticks)
	}
	if f.MissedDeadlines != 0 {
		return fmt.Errorf("fleet missed %d deadlines; the run is invalid", f.MissedDeadlines)
	}
	return nil
}

func validateEnsemble(m *EnsembleMetrics) error {
	if m.TrialsPerPoint <= 0 {
		return fmt.Errorf("ensemble trials_per_point %d is not positive", m.TrialsPerPoint)
	}
	if m.Points <= 0 {
		return fmt.Errorf("ensemble points %d is not positive", m.Points)
	}
	if m.Workers < 1 {
		return fmt.Errorf("ensemble workers %d < 1", m.Workers)
	}
	if m.TrialsPerSec <= 0 {
		return fmt.Errorf("ensemble trials_per_sec %g is not positive; the benchmark did not run", m.TrialsPerSec)
	}
	if m.BaselineTrialsPerSec < 0 || (m.BaselineTrialsPerSec > 0) != (m.Speedup > 0) {
		return fmt.Errorf("ensemble baseline %g and speedup %g must be set together", m.BaselineTrialsPerSec, m.Speedup)
	}
	return nil
}

// Load reads and parses a history file; a missing file is an empty
// history, not an error.
func Load(path string) (History, error) {
	var h History
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return h, nil
		}
		return h, err
	}
	if err := json.Unmarshal(b, &h); err != nil {
		return h, fmt.Errorf("parsing %s: %w", path, err)
	}
	return h, nil
}

// Append adds entry to the history at path, validating the whole file —
// not just the new entry — before writing: a corrupt earlier entry
// should block appends too.
func Append(path string, entry Entry) error {
	hist, err := Load(path)
	if err != nil {
		return err
	}
	hist.Entries = append(hist.Entries, entry)
	if err := Validate(hist); err != nil {
		return fmt.Errorf("refusing to write %s: %w", path, err)
	}
	b, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
