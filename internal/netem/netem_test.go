package netem

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func newTestNetwork(t *testing.T, def LinkConfig) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(7))
	n, err := NewNetwork(s, def)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return s, n
}

func register(t *testing.T, n Transport, id NodeID, h Handler) {
	t.Helper()
	if h == nil {
		h = func(Message) {}
	}
	if err := n.Register(id, h); err != nil {
		t.Fatalf("Register(%d): %v", id, err)
	}
}

func TestReliableDelivery(t *testing.T) {
	s, n := newTestNetwork(t, LinkConfig{MinDelay: 2, MaxDelay: 2})
	var got []Message
	register(t, n, 0, nil)
	register(t, n, 1, func(m Message) { got = append(got, m) })
	if err := n.Send(0, 1, []byte("beat")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].From != 0 || got[0].To != 1 || string(got[0].Payload) != "beat" {
		t.Fatalf("got %+v", got[0])
	}
	if s.Now() != 2 {
		t.Fatalf("delivery at %d, want 2", s.Now())
	}
}

func TestPayloadIsolation(t *testing.T) {
	s, n := newTestNetwork(t, LinkConfig{})
	var got []byte
	register(t, n, 0, nil)
	register(t, n, 1, func(m Message) { got = m.Payload })
	buf := []byte("beat")
	if err := n.Send(0, 1, buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf[0] = 'X' // sender reuses its buffer
	s.Run()
	if string(got) != "beat" {
		t.Fatalf("payload mutated in flight: %q", got)
	}
}

func TestUnknownNodes(t *testing.T) {
	_, n := newTestNetwork(t, LinkConfig{})
	register(t, n, 0, nil)
	if err := n.Send(0, 9, nil); err == nil {
		t.Fatal("Send to unknown recipient succeeded")
	}
	if err := n.Send(9, 0, nil); err == nil {
		t.Fatal("Send from unknown sender succeeded")
	}
	if err := n.Register(0, func(Message) {}); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
}

func TestTotalLoss(t *testing.T) {
	s, n := newTestNetwork(t, LinkConfig{LossProb: 1})
	delivered := 0
	register(t, n, 0, nil)
	register(t, n, 1, func(Message) { delivered++ })
	for i := 0; i < 50; i++ {
		if err := n.Send(0, 1, nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d despite loss probability 1", delivered)
	}
	st := n.Stats()
	if st.Total.Sent != 50 || st.Total.Lost != 50 {
		t.Fatalf("stats = %+v", st.Total)
	}
}

func TestLinkDownAndPartition(t *testing.T) {
	s, n := newTestNetwork(t, LinkConfig{})
	delivered := map[NodeID]int{}
	for id := NodeID(0); id < 3; id++ {
		id := id
		register(t, n, id, func(Message) { delivered[id]++ })
	}
	n.SetLinkDown(0, 1, true)
	if err := n.Send(0, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := n.Send(0, 2, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Run()
	if delivered[1] != 0 || delivered[2] != 1 {
		t.Fatalf("delivered = %v", delivered)
	}
	n.SetLinkDown(0, 1, false)
	n.PartitionNode(2, true)
	if err := n.Send(0, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := n.Send(0, 2, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := n.Send(2, 0, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Run()
	if delivered[1] != 1 || delivered[2] != 1 || delivered[0] != 0 {
		t.Fatalf("after partition, delivered = %v", delivered)
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	s, n := newTestNetwork(t, LinkConfig{MinDelay: 1, MaxDelay: 3})
	delivered := map[NodeID]int{}
	for id := NodeID(0); id < 5; id++ {
		id := id
		register(t, n, id, func(Message) { delivered[id]++ })
	}
	if err := n.Broadcast(0, []byte("hb")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	s.Run()
	if delivered[0] != 0 {
		t.Fatal("broadcast delivered to sender")
	}
	for id := NodeID(1); id < 5; id++ {
		if delivered[id] != 1 {
			t.Fatalf("node %d got %d copies", id, delivered[id])
		}
	}
}

func TestDuplication(t *testing.T) {
	s, n := newTestNetwork(t, LinkConfig{DupProb: 1})
	delivered := 0
	register(t, n, 0, nil)
	register(t, n, 1, func(Message) { delivered++ })
	if err := n.Send(0, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d copies, want 2", delivered)
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	bad := []LinkConfig{
		{LossProb: -0.1},
		{LossProb: 1.5},
		{DupProb: 2},
		{MinDelay: -1},
		{MinDelay: 5, MaxDelay: 2},
	}
	for _, cfg := range bad {
		if _, err := NewNetwork(s, cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

// TestPropertyDelayWithinBounds: every delivered message arrives within
// [MinDelay, MaxDelay] of its send time, for random bounds and loss rates.
func TestPropertyDelayWithinBounds(t *testing.T) {
	f := func(seed int64, minRaw, spanRaw uint8, lossRaw uint8) bool {
		minD := sim.Time(minRaw % 20)
		maxD := minD + sim.Time(spanRaw%20)
		loss := float64(lossRaw%100) / 100
		s := sim.New(sim.WithSeed(seed))
		n, err := NewNetwork(s, LinkConfig{LossProb: loss, MinDelay: minD, MaxDelay: maxD})
		if err != nil {
			return false
		}
		ok := true
		var sentAt sim.Time
		if err := n.Register(0, func(Message) {}); err != nil {
			return false
		}
		if err := n.Register(1, func(Message) {
			d := s.Now() - sentAt
			if d < minD || d > maxD {
				ok = false
			}
		}); err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			sentAt = s.Now()
			if err := n.Send(0, 1, nil); err != nil {
				return false
			}
			s.Run()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyConservation: sent == delivered + lost when duplication is
// off, for any loss rate.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, lossRaw uint8) bool {
		loss := float64(lossRaw%101) / 100
		s := sim.New(sim.WithSeed(seed))
		n, err := NewNetwork(s, LinkConfig{LossProb: loss})
		if err != nil {
			return false
		}
		if err := n.Register(0, func(Message) {}); err != nil {
			return false
		}
		if err := n.Register(1, func(Message) {}); err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if err := n.Send(0, 1, nil); err != nil {
				return false
			}
		}
		s.Run()
		st := n.Stats().Total
		return st.Sent == 200 && st.Delivered+st.Lost == st.Sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRealNetworkDelivery(t *testing.T) {
	n, err := NewRealNetwork(ImmediateTicker{}, 1, LinkConfig{})
	if err != nil {
		t.Fatalf("NewRealNetwork: %v", err)
	}
	var mu sync.Mutex
	got := 0
	register(t, n, 0, nil)
	register(t, n, 1, func(Message) { mu.Lock(); got++; mu.Unlock() })
	register(t, n, 2, func(Message) { mu.Lock(); got++; mu.Unlock() })
	if err := n.Broadcast(0, []byte("x")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

func TestRealNetworkConcurrentSends(t *testing.T) {
	n, err := NewRealNetwork(WallTicker{TickLen: time.Microsecond}, 1, LinkConfig{MaxDelay: 3})
	if err != nil {
		t.Fatalf("NewRealNetwork: %v", err)
	}
	var mu sync.Mutex
	got := 0
	register(t, n, 0, nil)
	register(t, n, 1, func(Message) { mu.Lock(); got++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := n.Send(0, 1, nil); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	n.Drain()
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if got != 400 {
		t.Fatalf("delivered %d, want 400", got)
	}
}

func TestRealNetworkCloseStopsDelivery(t *testing.T) {
	n, err := NewRealNetwork(WallTicker{TickLen: 20 * time.Millisecond}, 1, LinkConfig{MinDelay: 5, MaxDelay: 5})
	if err != nil {
		t.Fatalf("NewRealNetwork: %v", err)
	}
	var mu sync.Mutex
	got := 0
	register(t, n, 0, nil)
	register(t, n, 1, func(Message) { mu.Lock(); got++; mu.Unlock() })
	if err := n.Send(0, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Close() // close before the 100ms delivery timer fires
	mu.Lock()
	defer mu.Unlock()
	if got != 0 {
		t.Fatalf("delivered %d after Close, want 0", got)
	}
}
