// Package netem emulates unreliable point-to-point networks for the
// heartbeat protocols.
//
// The emulation matches the channel model of Gouda & McGuire (ICDCS'98): a
// sent message is either lost or delivered intact within a bounded delay;
// messages are never corrupted; messages sent to crashed processes are still
// delivered (the crashed process ignores them). Links are unidirectional and
// configured independently, so asymmetric delay and loss are expressible.
//
// Two implementations share the Transport interface: Network runs on a
// sim.Simulator in virtual time, and RealNetwork runs on the wall clock.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/sim"
)

// NodeID identifies a process on the network. The heartbeat papers index
// processes p[0..n]; NodeID follows that convention.
type NodeID int

// Message is a delivered datagram. Payload is owned by the transport and
// is valid only for the duration of the handler call; handlers that need
// to retain it must copy.
type Message struct {
	From    NodeID
	To      NodeID
	Payload []byte
}

// Handler receives delivered messages. Handlers run on the delivering
// goroutine (RealNetwork) or inside the simulation event (Network) and must
// not block. The message's Payload must not be retained past the call.
type Handler func(Message)

// Transport is the sending half shared by simulated and real networks.
type Transport interface {
	// Send queues payload from one node to another. It returns an error
	// only for unknown nodes; loss is silent, as on a real network.
	Send(from, to NodeID, payload []byte) error
	// Broadcast sends payload from the given node to every other
	// registered node, as independent unicasts (each may be lost or
	// delayed independently, like the per-recipient channels in the
	// static heartbeat protocol).
	Broadcast(from NodeID, payload []byte) error
	// Register attaches a node and its delivery handler.
	Register(id NodeID, h Handler) error
}

// LinkConfig shapes a unidirectional link.
type LinkConfig struct {
	// LossProb is the independent per-message loss probability in [0, 1].
	LossProb float64
	// MinDelay and MaxDelay bound the delivery delay, inclusive. Delay is
	// drawn uniformly from [MinDelay, MaxDelay]. To respect the papers'
	// round-trip bound tmin, configure each direction with
	// MaxDelay <= tmin/2 (the conservative per-direction split).
	MinDelay sim.Time
	MaxDelay sim.Time
	// DupProb is the probability that a delivered message is delivered
	// twice (second copy gets an independent delay). The heartbeat
	// protocols are idempotent, so duplication is a useful stressor.
	DupProb float64
	// Down drops every message; models a channel crash.
	Down bool
}

func (c LinkConfig) validate() error {
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("netem: loss probability %v out of [0,1]", c.LossProb)
	}
	if c.DupProb < 0 || c.DupProb > 1 {
		return fmt.Errorf("netem: duplication probability %v out of [0,1]", c.DupProb)
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("netem: bad delay bounds [%d,%d]", c.MinDelay, c.MaxDelay)
	}
	return nil
}

// LinkStats counts traffic on one unidirectional link.
type LinkStats struct {
	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Duplicated uint64
}

// Stats aggregates link statistics.
type Stats struct {
	Total LinkStats
	Links map[[2]NodeID]LinkStats
}

// Errors returned by transports.
var (
	ErrUnknownNode = errors.New("netem: unknown node")
	ErrDuplicateID = errors.New("netem: node already registered")
)

// Network is a simulated-time transport driven by a sim.Simulator.
// It is not safe for concurrent use (the simulator is single-threaded).
type Network struct {
	simr     *sim.Simulator
	rng      *rand.Rand
	handlers map[NodeID]Handler
	links    map[[2]NodeID]LinkConfig
	def      LinkConfig
	stats    Stats
	// pool recycles delivery records so the send hot path does not
	// allocate: each record carries a reusable payload buffer and a
	// pre-built scheduling closure.
	pool []*delivery
}

// delivery is a pooled in-flight message.
type delivery struct {
	net *Network
	h   Handler
	msg Message
	fn  sim.Event
}

// newDelivery draws a record from the pool, creating one (with its
// scheduling closure) only when the pool is empty.
func (n *Network) newDelivery() *delivery {
	if ln := len(n.pool); ln > 0 {
		d := n.pool[ln-1]
		n.pool = n.pool[:ln-1]
		return d
	}
	d := &delivery{net: n}
	d.fn = func() {
		// Release only after the handler returns: the payload stays valid
		// for the whole handler call, and a re-entrant Send inside the
		// handler draws a different record from the pool.
		d.h(d.msg)
		d.h = nil
		d.net.pool = append(d.net.pool, d)
	}
	return d
}

var _ Transport = (*Network)(nil)

// NewNetwork creates a simulated network with the given default link
// configuration applied to links that have no explicit configuration.
func NewNetwork(s *sim.Simulator, def LinkConfig) (*Network, error) {
	if err := def.validate(); err != nil {
		return nil, err
	}
	return &Network{
		simr:     s,
		rng:      s.Rand(),
		handlers: make(map[NodeID]Handler),
		links:    make(map[[2]NodeID]LinkConfig),
		def:      def,
		stats:    Stats{Links: make(map[[2]NodeID]LinkStats)},
	}, nil
}

// Register attaches a node.
func (n *Network) Register(id NodeID, h Handler) error {
	if _, ok := n.handlers[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	n.handlers[id] = h
	return nil
}

// SetLink overrides the configuration of the from→to link.
func (n *Network) SetLink(from, to NodeID, cfg LinkConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n.links[[2]NodeID{from, to}] = cfg
	return nil
}

// SetLinkDown raises or clears the Down flag on the from→to link.
func (n *Network) SetLinkDown(from, to NodeID, down bool) {
	key := [2]NodeID{from, to}
	cfg, ok := n.links[key]
	if !ok {
		cfg = n.def
	}
	cfg.Down = down
	n.links[key] = cfg
}

// PartitionNode takes every link to and from id down (or back up).
func (n *Network) PartitionNode(id NodeID, down bool) {
	for other := range n.handlers {
		if other == id {
			continue
		}
		n.SetLinkDown(id, other, down)
		n.SetLinkDown(other, id, down)
	}
}

func (n *Network) linkConfig(from, to NodeID) LinkConfig {
	if cfg, ok := n.links[[2]NodeID{from, to}]; ok {
		return cfg
	}
	return n.def
}

// Send implements Transport.
//
//lint:allow noalloc-closure queued-delivery network allocates pooled deliveries per send; the 0-alloc pin drives nodes over the zero-copy sim transport
func (n *Network) Send(from, to NodeID, payload []byte) error {
	if _, ok := n.handlers[from]; !ok {
		return fmt.Errorf("%w: sender %d", ErrUnknownNode, from)
	}
	h, ok := n.handlers[to]
	if !ok {
		return fmt.Errorf("%w: recipient %d", ErrUnknownNode, to)
	}
	key := [2]NodeID{from, to}
	cfg := n.linkConfig(from, to)
	st := n.stats.Links[key]
	st.Sent++
	n.stats.Total.Sent++
	if cfg.Down || n.rng.Float64() < cfg.LossProb {
		st.Lost++
		n.stats.Total.Lost++
		n.stats.Links[key] = st
		return nil
	}
	copies := 1
	if cfg.DupProb > 0 && n.rng.Float64() < cfg.DupProb {
		copies = 2
		st.Duplicated++
		n.stats.Total.Duplicated++
	}
	for i := 0; i < copies; i++ {
		delay := cfg.MinDelay
		if cfg.MaxDelay > cfg.MinDelay {
			delay += sim.Time(n.rng.Int63n(int64(cfg.MaxDelay-cfg.MinDelay) + 1))
		}
		// Each copy gets its own pooled record; the payload is copied into
		// the record's reusable buffer, so the caller may reuse payload as
		// soon as Send returns.
		d := n.newDelivery()
		d.h = h
		d.msg = Message{From: from, To: to, Payload: append(d.msg.Payload[:0], payload...)}
		if _, err := n.simr.Schedule(delay, d.fn); err != nil {
			d.h = nil
			n.pool = append(n.pool, d)
			return fmt.Errorf("netem: scheduling delivery: %w", err)
		}
		st.Delivered++
		n.stats.Total.Delivered++
	}
	n.stats.Links[key] = st
	return nil
}

// Broadcast implements Transport.
func (n *Network) Broadcast(from NodeID, payload []byte) error {
	if _, ok := n.handlers[from]; !ok {
		return fmt.Errorf("%w: sender %d", ErrUnknownNode, from)
	}
	for _, to := range n.nodeIDs() {
		if to == from {
			continue
		}
		if err := n.Send(from, to, payload); err != nil {
			return err
		}
	}
	return nil
}

// nodeIDs returns registered node IDs in ascending order so that broadcasts
// are deterministic.
func (n *Network) nodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.handlers))
	for id := range n.handlers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats {
	out := Stats{Total: n.stats.Total, Links: make(map[[2]NodeID]LinkStats, len(n.stats.Links))}
	for k, v := range n.stats.Links {
		out.Links[k] = v
	}
	return out
}

// mu-protected state makes RealNetwork safe for concurrent use.
type realNode struct {
	handler Handler
}

// RealNetwork is a wall-clock transport with the same loss/delay model,
// intended for the runnable examples. Delays are expressed in ticks and
// scaled by TickDuration.
type RealNetwork struct {
	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[NodeID]*realNode
	links    map[[2]NodeID]LinkConfig
	def      LinkConfig
	stats    Stats
	tick     Ticker
	closed   bool
	inflight sync.WaitGroup
}

// Ticker schedules callbacks after a number of ticks; it decouples
// RealNetwork from the time package for testability.
type Ticker interface {
	AfterTicks(n sim.Time, fn func()) (cancel func())
}

// NewRealNetwork creates a wall-clock network. The ticker defines the
// physical length of one virtual tick.
func NewRealNetwork(tick Ticker, seed int64, def LinkConfig) (*RealNetwork, error) {
	if err := def.validate(); err != nil {
		return nil, err
	}
	return &RealNetwork{
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[NodeID]*realNode),
		links: make(map[[2]NodeID]LinkConfig),
		def:   def,
		stats: Stats{Links: make(map[[2]NodeID]LinkStats)},
		tick:  tick,
	}, nil
}

var _ Transport = (*RealNetwork)(nil)

// Register implements Transport.
func (n *RealNetwork) Register(id NodeID, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	n.nodes[id] = &realNode{handler: h}
	return nil
}

// SetLink overrides the configuration of the from→to link.
func (n *RealNetwork) SetLink(from, to NodeID, cfg LinkConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]NodeID{from, to}] = cfg
	return nil
}

// Send implements Transport.
//
//lint:allow noalloc-closure real-network transport; the noalloc contract covers the in-process sim path, not wall-clock I/O
func (n *RealNetwork) Send(from, to NodeID, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	if _, ok := n.nodes[from]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: sender %d", ErrUnknownNode, from)
	}
	node, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: recipient %d", ErrUnknownNode, to)
	}
	key := [2]NodeID{from, to}
	cfg, okc := n.links[key]
	if !okc {
		cfg = n.def
	}
	st := n.stats.Links[key]
	st.Sent++
	n.stats.Total.Sent++
	if cfg.Down || n.rng.Float64() < cfg.LossProb {
		st.Lost++
		n.stats.Total.Lost++
		n.stats.Links[key] = st
		n.mu.Unlock()
		return nil
	}
	delay := cfg.MinDelay
	if cfg.MaxDelay > cfg.MinDelay {
		delay += sim.Time(n.rng.Int63n(int64(cfg.MaxDelay-cfg.MinDelay) + 1))
	}
	st.Delivered++
	n.stats.Total.Delivered++
	n.stats.Links[key] = st
	msg := Message{From: from, To: to, Payload: append([]byte(nil), payload...)}
	n.inflight.Add(1)
	n.mu.Unlock()

	n.tick.AfterTicks(delay, func() {
		defer n.inflight.Done()
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if !closed {
			node.handler(msg)
		}
	})
	return nil
}

// Broadcast implements Transport.
func (n *RealNetwork) Broadcast(from NodeID, payload []byte) error {
	n.mu.Lock()
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		if id != from {
			ids = append(ids, id)
		}
	}
	n.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, to := range ids {
		if err := n.Send(from, to, payload); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a copy of the accumulated statistics.
func (n *RealNetwork) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := Stats{Total: n.stats.Total, Links: make(map[[2]NodeID]LinkStats, len(n.stats.Links))}
	for k, v := range n.stats.Links {
		out.Links[k] = v
	}
	return out
}

// Drain blocks until every in-flight message has been delivered. Callers
// must not Send concurrently with Drain.
func (n *RealNetwork) Drain() {
	n.inflight.Wait()
}

// Close stops delivering messages and waits for in-flight timers to drain.
func (n *RealNetwork) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.inflight.Wait()
}
