package netem

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// collectors gathers messages with a wait helper.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) handle(m Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) waitFor(t *testing.T, n int) []Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("timed out with %d/%d messages", len(c.msgs), n)
	return nil
}

func newUDP(t *testing.T) *UDPTransport {
	t.Helper()
	u := NewUDPTransport()
	t.Cleanup(func() {
		if err := u.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return u
}

func TestUDPRoundTrip(t *testing.T) {
	u := newUDP(t)
	var rx collector
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Register(1, rx.handle); err != nil {
		t.Fatal(err)
	}
	if err := u.Send(0, 1, []byte("beat")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := rx.waitFor(t, 1)
	if msgs[0].From != 0 || msgs[0].To != 1 || string(msgs[0].Payload) != "beat" {
		t.Fatalf("got %+v", msgs[0])
	}
}

func TestUDPBroadcast(t *testing.T) {
	u := newUDP(t)
	var rx1, rx2 collector
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Register(1, rx1.handle); err != nil {
		t.Fatal(err)
	}
	if err := u.Register(2, rx2.handle); err != nil {
		t.Fatal(err)
	}
	if err := u.Broadcast(0, []byte("hb")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	rx1.waitFor(t, 1)
	rx2.waitFor(t, 1)
}

func TestUDPManyMessages(t *testing.T) {
	u := newUDP(t)
	var rx collector
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Register(1, rx.handle); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := u.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		// Loopback UDP rarely drops, but pace lightly to avoid socket
		// buffer overruns on tiny systems.
		if i%50 == 49 {
			time.Sleep(time.Millisecond)
		}
	}
	// UDP may drop; expect the vast majority on loopback.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rx.mu.Lock()
		got := len(rx.msgs)
		rx.mu.Unlock()
		if got >= n*9/10 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	rx.mu.Lock()
	defer rx.mu.Unlock()
	t.Fatalf("only %d/%d messages arrived on loopback", len(rx.msgs), n)
}

func TestUDPErrors(t *testing.T) {
	u := newUDP(t)
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Register(0, func(Message) {}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := u.Send(0, 9, nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown recipient: %v", err)
	}
	if err := u.Send(9, 0, nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown sender: %v", err)
	}
	if err := u.Send(0, 0, make([]byte, maxUDPPayload+1)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestUDPClose(t *testing.T) {
	u := NewUDPTransport()
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := u.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := u.Send(0, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: %v", err)
	}
	if err := u.Register(1, func(Message) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close: %v", err)
	}
}

func TestUDPIgnoresGarbageAndMisdelivery(t *testing.T) {
	u := newUDP(t)
	var rx collector
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Register(1, rx.handle); err != nil {
		t.Fatal(err)
	}
	// Send a valid message after garbage; only the valid one arrives.
	u.mu.Lock()
	src := u.nodes[0].conn
	dst := u.addrs[1]
	u.mu.Unlock()
	if _, err := src.WriteToUDP([]byte{1, 2, 3}, dst); err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, udpHeader)
	bad[0] = 0xFF // wrong magic
	if _, err := src.WriteToUDP(bad, dst); err != nil {
		t.Fatal(err)
	}
	if err := u.Send(0, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	msgs := rx.waitFor(t, 1)
	if string(msgs[0].Payload) != "ok" {
		t.Fatalf("got %+v", msgs[0])
	}
	rx.mu.Lock()
	defer rx.mu.Unlock()
	if len(rx.msgs) != 1 {
		t.Fatalf("garbage reached the handler: %d messages", len(rx.msgs))
	}
}

func TestUDPFrameLength(t *testing.T) {
	// The wire frame is exactly the documented 10-byte header — 2-byte
	// magic, 4-byte sender, 4-byte recipient — plus the payload.
	payload := []byte{0xDE, 0xAD, 0xBE}
	pkt := encodeFrame(3, 7, payload)
	if len(pkt) != udpHeader+len(payload) {
		t.Fatalf("frame length %d, want %d", len(pkt), udpHeader+len(payload))
	}
	if udpHeader != 2+4+4 {
		t.Fatalf("udpHeader = %d, want 2+4+4", udpHeader)
	}
	if got := uint16(pkt[0])<<8 | uint16(pkt[1]); got != udpMagic {
		t.Fatalf("magic = %#x, want %#x", got, udpMagic)
	}
	if !bytes.Equal(pkt[udpHeader:], payload) {
		t.Fatalf("payload = %x", pkt[udpHeader:])
	}
	if got := len(encodeFrame(0, 0, nil)); got != udpHeader {
		t.Fatalf("empty frame length %d, want %d", got, udpHeader)
	}
}

func TestUDPClosedBeatsPayloadValidation(t *testing.T) {
	// After Close, even an oversized payload reports ErrClosed: the
	// transport's lifecycle error wins over payload validation.
	u := NewUDPTransport()
	if err := u.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	err := u.Send(0, 0, make([]byte, maxUDPPayload+1))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed transport = %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrTooLong) {
		t.Fatalf("closed transport still validated the payload: %v", err)
	}
}
