package netem

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
)

// UDPTransport carries beats over real UDP sockets — the deployment
// substrate the 1998 paper's companion work ("alert communication
// primitives above TCP") targets. Each registered node binds its own
// socket; a 10-byte header (2-byte magic, 4-byte sender, 4-byte
// recipient) frames the payload.
// UDP supplies the loss/duplication/reordering semantics for real
// networks; for controlled experiments prefer Network or RealNetwork.
type UDPTransport struct {
	mu     sync.Mutex
	nodes  map[NodeID]*udpNode
	addrs  map[NodeID]*net.UDPAddr
	closed bool
	wg     sync.WaitGroup
}

type udpNode struct {
	conn    *net.UDPConn
	handler Handler
}

// udpMagic guards against stray datagrams.
const udpMagic = 0x4842 // "HB"

// udpHeader is the wire prefix: magic (2) + from (4) + to (4).
const udpHeader = 10

var (
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("netem: transport closed")
	// ErrTooLong reports an oversized payload.
	ErrTooLong = errors.New("netem: payload too long")
)

// maxUDPPayload bounds the heartbeat payload; beats are 4 bytes, so this
// is generous.
const maxUDPPayload = 1024

// NewUDPTransport creates an empty UDP transport.
func NewUDPTransport() *UDPTransport {
	return &UDPTransport{
		nodes: make(map[NodeID]*udpNode),
		addrs: make(map[NodeID]*net.UDPAddr),
	}
}

var _ Transport = (*UDPTransport)(nil)

// Register binds a loopback socket for the node and starts its receive
// loop. The chosen address becomes visible to the other nodes of this
// transport instance.
func (u *UDPTransport) Register(id NodeID, h Handler) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return fmt.Errorf("netem: registering node %d: %w", id, ErrClosed)
	}
	if _, ok := u.nodes[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fmt.Errorf("netem: binding node %d: %w", id, err)
	}
	n := &udpNode{conn: conn, handler: h}
	u.nodes[id] = n
	u.addrs[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go u.receiveLoop(id, n)
	return nil
}

// receiveLoop decodes datagrams and dispatches them to the handler.
func (u *UDPTransport) receiveLoop(id NodeID, n *udpNode) {
	defer u.wg.Done()
	buf := make([]byte, udpHeader+maxUDPPayload)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if sz < udpHeader {
			continue
		}
		if uint16(buf[0])<<8|uint16(buf[1]) != udpMagic {
			continue
		}
		from := NodeID(int32(uint32(buf[2])<<24 | uint32(buf[3])<<16 | uint32(buf[4])<<8 | uint32(buf[5])))
		to := NodeID(int32(uint32(buf[6])<<24 | uint32(buf[7])<<16 | uint32(buf[8])<<8 | uint32(buf[9])))
		if to != id {
			continue // misdelivered
		}
		payload := append([]byte(nil), buf[udpHeader:sz]...)
		n.handler(Message{From: from, To: to, Payload: payload})
	}
}

// Send implements Transport. A closed transport is reported before any
// payload validation, so shutdown races surface as ErrClosed, not as a
// spurious payload error.
//
//lint:allow noalloc-closure real-network transport; the noalloc contract covers the in-process sim path, not wall-clock I/O
func (u *UDPTransport) Send(from, to NodeID, payload []byte) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return fmt.Errorf("netem: send %d->%d: %w", from, to, ErrClosed)
	}
	src, ok := u.nodes[from]
	if !ok {
		u.mu.Unlock()
		return fmt.Errorf("%w: sender %d", ErrUnknownNode, from)
	}
	dst, ok := u.addrs[to]
	if !ok {
		u.mu.Unlock()
		return fmt.Errorf("%w: recipient %d", ErrUnknownNode, to)
	}
	u.mu.Unlock()

	if len(payload) > maxUDPPayload {
		return fmt.Errorf("netem: send %d->%d: %w: %d bytes", from, to, ErrTooLong, len(payload))
	}
	pkt := encodeFrame(from, to, payload)
	// Datagram sends are best-effort by design; a full socket buffer is
	// indistinguishable from network loss, which the protocol tolerates.
	if _, err := src.conn.WriteToUDP(pkt, dst); err != nil {
		return nil
	}
	return nil
}

// encodeFrame builds the wire frame: udpHeader bytes of framing followed
// by the payload.
func encodeFrame(from, to NodeID, payload []byte) []byte {
	pkt := make([]byte, udpHeader+len(payload))
	pkt[0] = byte(udpMagic >> 8)
	pkt[1] = byte(udpMagic & 0xFF)
	putNodeID(pkt[2:6], from)
	putNodeID(pkt[6:10], to)
	copy(pkt[udpHeader:], payload)
	return pkt
}

func putNodeID(b []byte, id NodeID) {
	v := uint32(int32(id))
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// Broadcast implements Transport.
func (u *UDPTransport) Broadcast(from NodeID, payload []byte) error {
	u.mu.Lock()
	ids := make([]NodeID, 0, len(u.addrs))
	for id := range u.addrs {
		if id != from {
			ids = append(ids, id)
		}
	}
	u.mu.Unlock()
	// Send in id order, not map order: UDP itself may reorder, but the
	// transport should not inject nondeterminism of its own.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, to := range ids {
		if err := u.Send(from, to, payload); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts every socket and waits for the receive loops to exit.
func (u *UDPTransport) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	conns := make([]*net.UDPConn, 0, len(u.nodes))
	for _, n := range u.nodes {
		//lint:allow map-order every socket is closed regardless of order, and Close returns only the first error of an already-unordered set
		conns = append(conns, n.conn)
	}
	u.mu.Unlock()
	var firstErr error
	for _, c := range conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	u.wg.Wait()
	return firstErr
}
