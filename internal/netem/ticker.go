package netem

import (
	"time"

	"repro/internal/sim"
)

// WallTicker maps virtual ticks to wall-clock time for RealNetwork.
type WallTicker struct {
	// TickLen is the physical duration of one tick.
	TickLen time.Duration
}

var _ Ticker = WallTicker{}

// AfterTicks implements Ticker using time.AfterFunc.
func (w WallTicker) AfterTicks(n sim.Time, fn func()) (cancel func()) {
	t := time.AfterFunc(w.TickLen*time.Duration(n), fn)
	return func() { t.Stop() }
}

// ImmediateTicker runs callbacks synchronously, ignoring the delay. It is
// useful in tests that only exercise loss and routing, not timing.
type ImmediateTicker struct{}

var _ Ticker = ImmediateTicker{}

// AfterTicks implements Ticker by calling fn inline.
func (ImmediateTicker) AfterTicks(_ sim.Time, fn func()) (cancel func()) {
	fn()
	return func() {}
}
