package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// WallTicker maps virtual ticks to wall-clock time for RealNetwork.
type WallTicker struct {
	// TickLen is the physical duration of one tick.
	TickLen time.Duration
}

var _ Ticker = WallTicker{}

// AfterTicks implements Ticker using time.AfterFunc.
//
//lint:allow noalloc-closure wall-clock ticker; the noalloc contract covers the sim path, not physical timers
func (w WallTicker) AfterTicks(n sim.Time, fn func()) (cancel func()) {
	t := time.AfterFunc(w.TickLen*time.Duration(n), fn)
	return func() { t.Stop() }
}

// SimTicker adapts a sim.Simulator to the Ticker interface, so components
// written against wall-clock tickers (RealNetwork, the fault-injection
// layer) also run deterministically in virtual time.
type SimTicker struct {
	Sim *sim.Simulator
}

var _ Ticker = SimTicker{}

// AfterTicks implements Ticker on the simulator's virtual clock.
//
//lint:allow noalloc-closure per-delayed-delivery closure on the fault-injection path, which copies payloads anyway; the 0-alloc pin uses the direct sim transport
func (t SimTicker) AfterTicks(n sim.Time, fn func()) (cancel func()) {
	tm, err := t.Sim.Schedule(n, fn)
	if err != nil {
		// Ticker delays are non-negative by contract; scheduling can only
		// fail on a negative delay, which is a programming error here.
		panic(fmt.Sprintf("netem: scheduling tick: %v", err))
	}
	return func() { tm.Cancel() }
}

// ImmediateTicker runs callbacks synchronously, ignoring the delay. It is
// useful in tests that only exercise loss and routing, not timing.
type ImmediateTicker struct{}

var _ Ticker = ImmediateTicker{}

// AfterTicks implements Ticker by calling fn inline.
//
//lint:allow noalloc-closure immediate-delivery ticker invokes and returns caller-supplied closures; used by fault campaigns, not the 0-alloc pin
func (ImmediateTicker) AfterTicks(_ sim.Time, fn func()) (cancel func()) {
	fn()
	return func() {}
}
