package faults

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// twoRackTopo: nodes 0,1 in rack 0 (zone 0); nodes 2,3 in rack 1 (zone 1).
func twoRackTopo() *Topology {
	return &Topology{
		Racks: map[netem.NodeID]int{0: 0, 1: 0, 2: 1, 3: 1},
		Zones: map[int]int{0: 0, 1: 1},
	}
}

func TestTopologyRackFail(t *testing.T) {
	topo := twoRackTopo()
	evs := topo.RackFail(100, 1)
	// Every link with exactly one endpoint in rack 1, both directions:
	// {0,1}×{2,3} and {2,3}×{0,1} = 8 directed links. Intra-rack links
	// survive — that is the correlation a flat schedule cannot express.
	if len(evs) != 8 {
		t.Fatalf("RackFail expanded to %d events, want 8: %+v", len(evs), evs)
	}
	seen := make(map[[2]netem.NodeID]bool)
	for _, e := range evs {
		if e.Kind != KindLinkDown || e.At != 100 {
			t.Fatalf("unexpected event %+v", e)
		}
		if (topo.Racks[e.From] == 1) == (topo.Racks[e.To] == 1) {
			t.Fatalf("link %d→%d does not cross the rack boundary", e.From, e.To)
		}
		seen[[2]netem.NodeID{e.From, e.To}] = true
	}
	if len(seen) != 8 {
		t.Fatalf("duplicate links in expansion: %+v", evs)
	}
	heal := topo.RackHeal(300, 1)
	if len(heal) != 8 {
		t.Fatalf("RackHeal expanded to %d events, want 8", len(heal))
	}
	for i, e := range heal {
		if e.Kind != KindLinkUp || e.From != evs[i].From || e.To != evs[i].To {
			t.Fatalf("heal %d does not mirror fail: %+v vs %+v", i, e, evs[i])
		}
	}
}

func TestTopologyZoneDelayIsOneDirectional(t *testing.T) {
	topo := twoRackTopo()
	evs := topo.ZoneDelay(50, 0, 1, 2, 4)
	// Zone 0 = {0,1}, zone 1 = {2,3}: 4 directed links, one direction.
	if len(evs) != 4 {
		t.Fatalf("ZoneDelay expanded to %d events, want 4: %+v", len(evs), evs)
	}
	for _, e := range evs {
		if e.Kind != KindDelay || e.MinDelay != 2 || e.MaxDelay != 4 {
			t.Fatalf("unexpected event %+v", e)
		}
		if topo.zone(e.From) != 0 || topo.zone(e.To) != 1 {
			t.Fatalf("link %d→%d is not zone 0 → zone 1", e.From, e.To)
		}
	}
}

func TestTopologyRackLoss(t *testing.T) {
	topo := twoRackTopo()
	ge := &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.5, LossBad: 0.9}
	evs := topo.RackLoss(10, 0, ge)
	if len(evs) != 8 {
		t.Fatalf("RackLoss expanded to %d events, want 8", len(evs))
	}
	for _, e := range evs {
		if e.Kind != KindLoss || e.GE != ge {
			t.Fatalf("unexpected event %+v", e)
		}
	}
	for _, e := range topo.RackLoss(20, 0, nil) {
		if e.GE != nil {
			t.Fatalf("clearing expansion kept a channel: %+v", e)
		}
	}
}

func TestChurnStorm(t *testing.T) {
	evs := ChurnStorm(100, 10, 40, []netem.NodeID{1, 2, 3})
	if len(evs) != 6 {
		t.Fatalf("ChurnStorm expanded to %d events, want 6", len(evs))
	}
	// Node i leaves at 100+10i and rejoins 40 ticks later; with stagger <
	// downFor the departures overlap.
	for i, id := range []netem.NodeID{1, 2, 3} {
		leave, rejoin := evs[2*i], evs[2*i+1]
		if leave.Kind != KindLeave || leave.Node != id || leave.At != sim.Time(100+10*i) {
			t.Fatalf("leave %d = %+v", i, leave)
		}
		if rejoin.Kind != KindRejoin || rejoin.Node != id || rejoin.At != leave.At+40 {
			t.Fatalf("rejoin %d = %+v", i, rejoin)
		}
	}
}

func TestParseTopologySchedule(t *testing.T) {
	text := `
seed 9
topo      racks=0:0,1:0,2:1,3:1 zones=1:1
rackfail  t=100 rack=1
rackheal  t=300 rack=1
zonedelay t=50 from=0 to=1 mindelay=2 maxdelay=4
churn     t=400 stagger=10 down=40 nodes=1,2
delay     t=0 all mindelay=1 maxdelay=1
leave     t=600 node=3
rejoin    t=700 node=3
`
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	// 8 fail + 8 heal + 4 delay + 4 churn + 1 delay + 1 leave + 1 rejoin.
	if len(s.Events) != 27 {
		t.Fatalf("parsed %d events, want 27", len(s.Events))
	}
	// The expansion is pure primitives, so Format round-trips without the
	// topo directives.
	rendered := s.Format()
	if strings.Contains(rendered, "rackfail") || strings.Contains(rendered, "topo") {
		t.Fatalf("Format leaked a topology directive:\n%s", rendered)
	}
	again, err := ParseSchedule(rendered)
	if err != nil {
		t.Fatalf("reparse of %q: %v", rendered, err)
	}
	if again.Format() != rendered {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", rendered, again.Format())
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, text := range []string{
		"rackfail t=0 rack=1",                            // no topo directive yet
		"topo racks=0:0 zones=0:0\nrackfail t=0 rack=0",  // no crossing links
		"topo racks=0:0,1:1\nrackfail rack=1",            // missing time
		"topo racks=0:0,1:1\nchurn t=0 stagger=1 down=2", // churn without nodes
		"topo racks=zzz",                                 // bad pair
		"topo",                                           // empty topology
		"topo racks=0:0,1:1\nrackfail t=0 rack=1 prob=1", // field not taken
		"delay t=0 from=0 to=0 maxdelay=2",               // self link
		"delay t=0 from=0 to=1 mindelay=5 maxdelay=2",    // inverted bounds
	} {
		if _, err := ParseSchedule(text); !errors.Is(err, ErrSchedule) {
			t.Errorf("ParseSchedule(%q) = %v, want ErrSchedule", text, err)
		}
	}
}

// TestParseRejectsOverlappingWindows: the parser used to silently accept
// a partition window opened twice and collapsed by one heal; now every
// overlapping window is an error at parse time.
func TestParseRejectsOverlappingWindows(t *testing.T) {
	for _, tc := range []struct {
		name, text string
	}{
		{"double partition", "partition t=10 node=1\npartition t=20 node=1\nheal t=30 node=1"},
		{"heal without partition", "heal t=10 node=1"},
		{"double linkdown", "linkdown t=10 from=0 to=1\nlinkdown t=20 from=0 to=1"},
		{"linkup without linkdown", "linkup t=5 from=0 to=1"},
		{"overlapping rackfails share a boundary link",
			"topo racks=0:0,1:1\nrackfail t=10 rack=0\nrackfail t=20 rack=1"},
	} {
		if _, err := ParseSchedule(tc.text); !errors.Is(err, ErrSchedule) {
			t.Errorf("%s: err = %v, want ErrSchedule", tc.name, err)
		}
	}
	// Sequential windows and a window the schedule never closes stay legal.
	for _, text := range []string{
		"partition t=10 node=1\nheal t=20 node=1\npartition t=30 node=1\nheal t=40 node=1",
		"partition t=10 node=1",
		"linkdown t=10 from=0 to=1\nlinkup t=20 from=0 to=1\nlinkdown t=30 from=1 to=0",
	} {
		if _, err := ParseSchedule(text); err != nil {
			t.Errorf("ParseSchedule(%q) = %v, want nil", text, err)
		}
	}
	// Schedule.Validate stays permissive: programmatic fault exploration
	// may build overlapping states on purpose.
	s := &Schedule{Events: []Event{
		{At: 10, Kind: KindPartition, Node: 1},
		{At: 20, Kind: KindPartition, Node: 1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate rejected overlapping windows: %v", err)
	}
}
