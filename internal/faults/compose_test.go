package faults

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

func TestLinkDelayAsymmetric(t *testing.T) {
	s := sim.New(sim.WithSeed(2))
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ft := Wrap(net, netem.SimTicker{Sim: s}, 2)
	arrivals := make(map[netem.NodeID]sim.Time)
	for i := 0; i < 2; i++ {
		id := netem.NodeID(i)
		if err := ft.Register(id, func(m netem.Message) { arrivals[m.To] = s.Now() }); err != nil {
			t.Fatal(err)
		}
	}
	// A fixed 3-tick band one way only: 0→1 arrives at t=3, 1→0 at t=0.
	ft.SetLinkDelay(0, 1, 3, 3)
	if err := ft.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(1, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if arrivals[1] != 3 {
		t.Fatalf("delayed direction arrived at t=%d, want 3", arrivals[1])
	}
	if arrivals[0] != 0 {
		t.Fatalf("undelayed direction arrived at t=%d, want 0", arrivals[0])
	}
	if st := ft.Stats(); st.Slowed != 1 {
		t.Fatalf("stats = %+v, want Slowed 1", st)
	}
	// Clearing the band restores undelayed delivery.
	ft.SetLinkDelay(0, 1, 0, 0)
	sent := s.Now()
	if err := ft.Send(0, 1, []byte{3}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if arrivals[1] != sent {
		t.Fatalf("cleared delay still deferring: arrived %d, sent %d", arrivals[1], sent)
	}
	if st := ft.Stats(); st.Slowed != 1 {
		t.Fatalf("stats after clear = %+v, want Slowed 1", st)
	}
}

func TestDelayViaSchedule(t *testing.T) {
	s := sim.New(sim.WithSeed(4))
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ft := Wrap(net, netem.SimTicker{Sim: s}, 4)
	var arrivals []sim.Time
	for i := 0; i < 2; i++ {
		if err := ft.Register(netem.NodeID(i), func(m netem.Message) { arrivals = append(arrivals, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	sched, err := ParseSchedule("delay t=10 all mindelay=2 maxdelay=2\ndelay t=30 all mindelay=0 maxdelay=0")
	if err != nil {
		t.Fatal(err)
	}
	cancel, err := sched.Apply(netem.SimTicker{Sim: s}, Target{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	send := func() {
		if err := ft.Send(0, 1, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(5)
	send() // before the band: synchronous
	s.RunUntil(20)
	send() // inside: +2 ticks
	s.RunUntil(40)
	send() // after clearing: synchronous again
	s.Run()
	want := []sim.Time{5, 22, 40}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

// simClock adapts the simulator to the faults.Clock interface so a
// DriftClock can pace a workload in virtual time.
type simClock struct{ s *sim.Simulator }

func (c simClock) Now() core.Tick { return core.Tick(c.s.Now()) }
func (c simClock) After(d core.Tick, fn func()) func() {
	if _, err := c.s.Schedule(sim.Time(d), func() { fn() }); err != nil {
		panic(err)
	}
	return func() {}
}

// TestGilbertElliottDriftComposition pins the composition of a bursty
// loss channel and a drifted sender clock on one transport against the
// analytic product: the drift arithmetic is exact, so a 3/2-fast clock
// sending every 3 local ticks emits exactly one message per 2 real ticks,
// and the Gilbert–Elliott channel thins that stream by its stationary
// loss π_good·LossGood + π_bad·LossBad with π_bad = pgb/(pgb+pbg).
func TestGilbertElliottDriftComposition(t *testing.T) {
	const (
		deadline = 20000
		pgb, pbg = 0.1, 0.3
		lg, lb   = 0.05, 0.9
	)
	run := func(num, den int64, localPeriod core.Tick) Stats {
		s := sim.New(sim.WithSeed(11))
		net, err := netem.NewNetwork(s, netem.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ft := Wrap(net, netem.SimTicker{Sim: s}, 11)
		for i := 0; i < 2; i++ {
			if err := ft.Register(netem.NodeID(i), func(netem.Message) {}); err != nil {
				t.Fatal(err)
			}
		}
		ft.SetLoss(&GilbertElliott{PGoodBad: pgb, PBadGood: pbg, LossGood: lg, LossBad: lb})
		dc := NewDriftClock(simClock{s})
		if err := dc.SetDrift(num, den, 0); err != nil {
			t.Fatal(err)
		}
		var pump func()
		pump = func() {
			if err := ft.Send(0, 1, []byte{1}); err != nil {
				t.Fatal(err)
			}
			dc.After(localPeriod, pump)
		}
		pump()
		s.RunUntil(deadline)
		return ft.Stats()
	}

	fast := run(3, 2, 3) // 3 local ticks at rate 3/2 = exactly 2 real ticks
	slow := run(1, 1, 3) // undrifted baseline: one send per 3 real ticks
	// The drift side of the product is exact integer arithmetic: the fast
	// clock emits 3/2 as many messages over the same real window.
	if want := uint64(deadline / 2); fast.Intercepted < want || fast.Intercepted > want+1 {
		t.Fatalf("drifted sender emitted %d messages, want ~%d", fast.Intercepted, want)
	}
	if want := uint64(deadline / 3); slow.Intercepted < want || slow.Intercepted > want+1 {
		t.Fatalf("undrifted sender emitted %d messages, want ~%d", slow.Intercepted, want)
	}
	// The loss side matches the stationary analytic rate on both streams.
	piBad := pgb / (pgb + pbg)
	analytic := (1-piBad)*lg + piBad*lb
	for _, st := range []Stats{fast, slow} {
		frac := float64(st.DroppedLoss) / float64(st.Intercepted)
		if math.Abs(frac-analytic) > 0.05 {
			t.Fatalf("loss fraction %v, want analytic %v ± 0.05 (stats %+v)", frac, analytic, st)
		}
	}
}
