package faults

import (
	"math"
	"math/rand"
	"testing"
)

// TestGilbertElliottSteadyState checks the chain's long-run loss rate
// against the analytic value. The two-state chain's stationary
// distribution puts PGoodBad/(PGoodBad+PBadGood) mass on Bad (the state
// is advanced before each loss draw, so the draw sees the stationary
// post-transition state), giving
//
//	loss = (1-piBad)*LossGood + piBad*LossBad.
func TestGilbertElliottSteadyState(t *testing.T) {
	cases := []GilbertElliott{
		{PGoodBad: 0.05, PBadGood: 0.5, LossGood: 0, LossBad: 1},
		{PGoodBad: 0.3, PBadGood: 0.3, LossGood: 0.1, LossBad: 0.9},
		{PGoodBad: 0.01, PBadGood: 0.2, LossGood: 0, LossBad: 0.5},
		{PGoodBad: 1, PBadGood: 1, LossGood: 0.2, LossBad: 0.8}, // alternates
	}
	const messages = 400_000
	for i, g := range cases {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		ch := geChannel{params: g}
		lost := 0
		for m := 0; m < messages; m++ {
			if ch.Lose(rng) {
				lost++
			}
		}
		piBad := g.PGoodBad / (g.PGoodBad + g.PBadGood)
		want := (1-piBad)*g.LossGood + piBad*g.LossBad
		got := float64(lost) / messages
		// Correlated losses inflate the variance of the empirical rate
		// relative to i.i.d. sampling; 1% absolute tolerance is ~10 sigma
		// for the burstiest case here at 400k messages.
		if math.Abs(got-want) > 0.01 {
			t.Errorf("case %d (%+v): loss rate %.4f, analytic %.4f", i, g, got, want)
		}
	}
}
