package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// newSimTransport builds a lossless, zero-delay simulated network wrapped
// in a fault layer, with n registered nodes delivering into rx.
func newSimTransport(t *testing.T, n int, seed int64) (*sim.Simulator, *FaultableTransport, *[]netem.Message) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	net, err := netem.NewNetwork(s, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ft := Wrap(net, netem.SimTicker{Sim: s}, seed)
	rx := &[]netem.Message{}
	for i := 0; i < n; i++ {
		id := netem.NodeID(i)
		if err := ft.Register(id, func(m netem.Message) { *rx = append(*rx, m) }); err != nil {
			t.Fatal(err)
		}
	}
	return s, ft, rx
}

func TestPartitionDropsBothDirections(t *testing.T) {
	s, ft, rx := newSimTransport(t, 3, 1)
	ft.SetPartitioned(1, true)
	for _, pair := range [][2]netem.NodeID{{0, 1}, {1, 0}, {1, 2}, {0, 2}} {
		if err := ft.Send(pair[0], pair[1], []byte{1, 0, 0, 0}); err != nil {
			t.Fatalf("Send %v: %v", pair, err)
		}
	}
	s.Run()
	if len(*rx) != 1 || (*rx)[0].From != 0 || (*rx)[0].To != 2 {
		t.Fatalf("partition leaked: %+v", *rx)
	}
	ft.SetPartitioned(1, false)
	if err := ft.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(*rx) != 2 {
		t.Fatalf("healed partition still dropping: %+v", *rx)
	}
	st := ft.Stats()
	if st.DroppedPartition != 3 || st.Intercepted != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkDownIsUnidirectional(t *testing.T) {
	s, ft, rx := newSimTransport(t, 2, 1)
	ft.SetLinkDown(0, 1, true)
	if err := ft.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(1, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(*rx) != 1 || (*rx)[0].From != 1 {
		t.Fatalf("unexpected deliveries %+v", *rx)
	}
}

func TestMutedNodeSendsNothingButReceives(t *testing.T) {
	s, ft, rx := newSimTransport(t, 2, 1)
	ft.SetNodeMuted(1, true)
	if err := ft.Send(1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(0, 1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// The papers' channel model: crashed processes still receive.
	if len(*rx) != 1 || (*rx)[0].To != 1 {
		t.Fatalf("unexpected deliveries %+v", *rx)
	}
}

func TestBroadcastGoesThroughFaultLayer(t *testing.T) {
	s, ft, rx := newSimTransport(t, 4, 1)
	ft.SetPartitioned(2, true)
	if err := ft.Broadcast(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	var tos []netem.NodeID
	for _, m := range *rx {
		tos = append(tos, m.To)
	}
	sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	if fmt.Sprint(tos) != "[1 3]" {
		t.Fatalf("broadcast recipients = %v, want [1 3]", tos)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// A nearly-absorbing bad state with certain loss must produce long
	// loss bursts; the good state is lossless, so every loss burst is a
	// bad-state excursion.
	ch := geChannel{params: GilbertElliott{PGoodBad: 0.05, PBadGood: 0.2, LossGood: 0, LossBad: 1}}
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	losses, bursts, cur := 0, 0, 0
	var maxBurst int
	for i := 0; i < n; i++ {
		if ch.Lose(rng) {
			losses++
			cur++
			if cur > maxBurst {
				maxBurst = cur
			}
		} else {
			if cur > 0 {
				bursts++
			}
			cur = 0
		}
	}
	// Stationary bad-state share is pgb/(pgb+pbg) = 0.2; allow slack.
	if frac := float64(losses) / n; frac < 0.1 || frac > 0.3 {
		t.Fatalf("loss fraction %v outside [0.1, 0.3]", frac)
	}
	// Mean burst length ~ 1/pbg = 5; independent loss at the same rate
	// would give ~1.25. Require clear burstiness.
	if mean := float64(losses) / float64(bursts); mean < 2.5 {
		t.Fatalf("mean burst length %v, want >= 2.5 (bursty)", mean)
	}
	if maxBurst < 10 {
		t.Fatalf("max burst %d, want >= 10", maxBurst)
	}
}

func TestGilbertElliottValidate(t *testing.T) {
	bad := GilbertElliott{PGoodBad: 1.5}
	if err := bad.Validate(); !errors.Is(err, ErrSchedule) {
		t.Fatalf("out-of-range param accepted: %v", err)
	}
	if err := (GilbertElliott{}).Validate(); err != nil {
		t.Fatalf("zero value rejected: %v", err)
	}
}

func TestDuplicationAndReordering(t *testing.T) {
	s, ft, rx := newSimTransport(t, 2, 3)
	ft.SetDuplication(1)
	if err := ft.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(*rx) != 2 {
		t.Fatalf("dup prob 1 delivered %d copies", len(*rx))
	}
	*rx = (*rx)[:0]
	ft.SetDuplication(0)
	ft.SetReordering(1, 4)
	if err := ft.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := len(*rx); got != 0 {
		t.Fatalf("reordered message delivered synchronously (%d)", got)
	}
	s.Run()
	if len(*rx) != 1 {
		t.Fatalf("reordered message lost (%d)", len(*rx))
	}
	st := ft.Stats()
	if st.Duplicated != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative time", Event{At: -1, Kind: KindCrash}},
		{"self link", Event{Kind: KindLinkDown, From: 2, To: 2}},
		{"bad dup prob", Event{Kind: KindDup, Prob: 2}},
		{"reorder without delay", Event{Kind: KindReorder, Prob: 0.5}},
		{"zero drift rate", Event{Kind: KindDrift, Num: 0, Den: 1}},
		{"bad GE", Event{Kind: KindLoss, AllLinks: true, GE: &GilbertElliott{LossBad: -1}}},
		{"unknown kind", Event{Kind: Kind(99)}},
	}
	for _, tc := range cases {
		s := Schedule{Events: []Event{tc.ev}}
		if err := s.Validate(); !errors.Is(err, ErrSchedule) {
			t.Errorf("%s: err = %v, want ErrSchedule", tc.name, err)
		}
	}
}

func TestScheduleApply(t *testing.T) {
	s, ft, rx := newSimTransport(t, 2, 5)
	sched := &Schedule{Events: []Event{
		{At: 10, Kind: KindPartition, Node: 1},
		{At: 20, Kind: KindHeal, Node: 1},
	}}
	cancel, err := sched.Apply(netem.SimTicker{Sim: s}, Target{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	send := func() {
		if err := ft.Send(0, 1, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(5)
	send() // before the partition: delivered
	s.RunUntil(15)
	send() // during: dropped
	s.RunUntil(25)
	send() // after heal: delivered
	s.Run()
	if len(*rx) != 2 {
		t.Fatalf("got %d deliveries, want 2: %+v", len(*rx), *rx)
	}
}

func TestScheduleApplyRequiresControls(t *testing.T) {
	s, ft, _ := newSimTransport(t, 2, 5)
	sched := &Schedule{Events: []Event{{Kind: KindDrift, Node: 1, Num: 2, Den: 1}}}
	if _, err := sched.Apply(netem.SimTicker{Sim: s}, Target{Transport: ft}); !errors.Is(err, ErrSchedule) {
		t.Fatalf("drift without ClockControl accepted: %v", err)
	}
	sched = &Schedule{Events: []Event{{Kind: KindRestart, Node: 1}}}
	if _, err := sched.Apply(netem.SimTicker{Sim: s}, Target{Transport: ft}); !errors.Is(err, ErrSchedule) {
		t.Fatalf("restart without NodeControl accepted: %v", err)
	}
	if _, err := sched.Apply(netem.SimTicker{Sim: s}, Target{}); !errors.Is(err, ErrSchedule) {
		t.Fatalf("nil transport accepted: %v", err)
	}
}

// TestFaultReplayDeterminism: the same schedule and seed over two fresh
// simulated transports produce byte-identical delivery traces and stats,
// even with every stochastic fault enabled.
func TestFaultReplayDeterminism(t *testing.T) {
	run := func() string {
		s, ft, rx := newSimTransport(t, 3, 42)
		sched := &Schedule{Events: []Event{
			{At: 0, Kind: KindLoss, AllLinks: true,
				GE: &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, LossBad: 0.9}},
			{At: 0, Kind: KindDup, Prob: 0.2},
			{At: 0, Kind: KindReorder, Prob: 0.3, MaxDelay: 5},
			{At: 50, Kind: KindPartition, Node: 2},
			{At: 120, Kind: KindHeal, Node: 2},
		}}
		cancel, err := sched.Apply(netem.SimTicker{Sim: s}, Target{Transport: ft})
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
		// A deterministic send workload: every node beats every other
		// node every 3 ticks.
		var pump func()
		pump = func() {
			for from := netem.NodeID(0); from < 3; from++ {
				if err := ft.Broadcast(from, []byte{byte(from), 0, 0, 0}); err != nil {
					t.Fatal(err)
				}
			}
			if s.Now() < 200 {
				if _, err := s.Schedule(3, pump); err != nil {
					t.Fatal(err)
				}
			}
		}
		pump()
		s.RunUntil(300)
		out := fmt.Sprintf("stats=%+v\n", ft.Stats())
		for _, m := range *rx {
			out += fmt.Sprintf("%d->%d %x\n", m.From, m.To, m.Payload)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}
