package faults

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Clock is the tick-scheduling interface the drift wrapper needs; it is
// structurally identical to detector.Clock, restated here so the fault
// layer does not depend on the runtime package.
type Clock interface {
	Now() core.Tick
	After(d core.Tick, fn func()) (cancel func())
}

// DriftClock wraps a Clock and skews it: the local clock advances Num
// local ticks per Den real ticks, plus any accumulated skew jumps. A rate
// above 1 models a fast clock (its timers fire early in real terms); below
// 1, a slow one. Rate changes are anchored at the moment of the change so
// local time never jumps backwards from a rate change alone.
//
// The arithmetic is integer-only, so drifting clocks stay deterministic
// under the simulator. DriftClock is safe for concurrent use when the
// wrapped clock is.
type DriftClock struct {
	mu          sync.Mutex
	inner       Clock
	num, den    int64
	anchorReal  core.Tick // inner time of the last rate change
	anchorLocal core.Tick // local time at that moment
}

// NewDriftClock wraps inner with an initially undrifted (rate 1/1, skew 0)
// clock.
func NewDriftClock(inner Clock) *DriftClock {
	return &DriftClock{inner: inner, num: 1, den: 1}
}

// SetDrift changes the rate to num/den local ticks per real tick and jumps
// local time forward by skew ticks. It returns an error for non-positive
// rate components.
func (c *DriftClock) SetDrift(num, den int64, skew core.Tick) error {
	if num <= 0 || den <= 0 {
		return fmt.Errorf("%w: drift rate %d/%d must be positive", ErrSchedule, num, den)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.inner.Now()
	c.anchorLocal = c.localAt(now) + skew
	c.anchorReal = now
	c.num, c.den = num, den
	return nil
}

// localAt maps an inner time to local time. Callers hold c.mu.
func (c *DriftClock) localAt(real core.Tick) core.Tick {
	return c.anchorLocal + core.Tick(int64(real-c.anchorReal)*c.num/c.den)
}

// Now returns the drifted local time.
func (c *DriftClock) Now() core.Tick {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.localAt(c.inner.Now())
}

// After schedules fn after d local ticks, which is d·den/num real ticks
// (rounded up, so a timer never fires locally early).
func (c *DriftClock) After(d core.Tick, fn func()) (cancel func()) {
	c.mu.Lock()
	num, den := c.num, c.den
	c.mu.Unlock()
	real := (int64(d)*den + num - 1) / num
	return c.inner.After(core.Tick(real), fn)
}
