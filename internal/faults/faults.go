// Package faults is a deterministic, seedable fault-injection subsystem
// for the heartbeat protocols.
//
// The heartbeat papers define their protocols *by* behaviour under faults —
// message loss, process crash, partition, and eventual rejoin — so the
// repository needs a first-class way to script a reproducible fault
// campaign. A Schedule is an ordered list of timed fault events (node
// crash/restart, unidirectional and full partitions, bursty Gilbert–Elliott
// loss, duplication, reordering, asymmetric link latency, membership churn,
// per-node clock drift). Applying the same
// schedule with the same seed replays identically, whether the transport
// underneath is the virtual-time netem.Network, the wall-clock
// netem.RealNetwork, or real UDP sockets: all three are wrapped by the
// same FaultableTransport and driven by the same netem.Ticker abstraction.
//
// The package deliberately depends only on core, netem and sim, so both
// the detector runtime and test code in any layer can use it.
package faults

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// ErrSchedule reports an invalid fault schedule or fault parameter.
var ErrSchedule = errors.New("faults: invalid schedule")

// Kind enumerates the fault event types a Schedule can express.
type Kind int

// Fault event kinds.
const (
	// KindCrash crashes a process. With a NodeControl attached the
	// process machine is crashed; otherwise the transport mutes every
	// send from the node (the network-visible effect of a crash).
	KindCrash Kind = iota + 1
	// KindRestart restarts a previously crashed process via NodeControl
	// and unmutes its sends.
	KindRestart
	// KindPartition isolates a node: every message to or from it is
	// dropped at send time (messages already in flight still arrive,
	// as on a real network).
	KindPartition
	// KindHeal ends a node's partition.
	KindHeal
	// KindLinkDown takes the unidirectional From→To link down.
	KindLinkDown
	// KindLinkUp restores the unidirectional From→To link.
	KindLinkUp
	// KindLoss installs a Gilbert–Elliott loss channel on the From→To
	// link, or on every link when AllLinks is set. A nil GE clears it.
	KindLoss
	// KindDup sets the message duplication probability (Prob).
	KindDup
	// KindReorder sets the reordering probability (Prob) and the maximum
	// extra delay (MaxDelay) applied to reordered messages.
	KindReorder
	// KindDrift sets a node's clock rate to Num/Den local ticks per real
	// tick and applies a one-off skew jump of Skew ticks (ClockControl
	// required).
	KindDrift
	// KindDelay adds a uniform MinDelay..MaxDelay extra latency to every
	// surviving message on the From→To link, or on every link when
	// AllLinks is set. Unlike KindReorder it is unconditional, so a
	// one-directional delay models asymmetric WAN latency. MinDelay =
	// MaxDelay = 0 clears the delay.
	KindDelay
	// KindLeave makes a member voluntarily leave the protocol via
	// MemberControl — the clean half of churn, as opposed to KindCrash.
	KindLeave
	// KindRejoin brings a departed member back via MemberControl with a
	// fresh machine, modelling churn re-arrival.
	KindRejoin
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindLinkDown:
		return "linkdown"
	case KindLinkUp:
		return "linkup"
	case KindLoss:
		return "loss"
	case KindDup:
		return "dup"
	case KindReorder:
		return "reorder"
	case KindDrift:
		return "drift"
	case KindDelay:
		return "delay"
	case KindLeave:
		return "leave"
	case KindRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timed fault. Which fields are meaningful depends on Kind.
type Event struct {
	// At is the virtual time (in ticks from schedule application) the
	// fault takes effect.
	At sim.Time
	// Kind selects the fault type.
	Kind Kind
	// Node is the target process for Crash/Restart/Partition/Heal/Drift.
	Node netem.NodeID
	// From and To name the unidirectional link for LinkDown/LinkUp and
	// for per-link Loss.
	From, To netem.NodeID
	// AllLinks makes a Loss event apply to every link instead of From→To.
	AllLinks bool
	// GE is the loss channel for KindLoss; nil clears the channel.
	GE *GilbertElliott
	// Prob is the probability for KindDup/KindReorder.
	Prob float64
	// MinDelay is the lower bound of the extra latency for KindDelay
	// (ticks).
	MinDelay sim.Time
	// MaxDelay bounds the extra delay of reordered messages and the extra
	// latency of KindDelay (ticks).
	MaxDelay sim.Time
	// Num/Den is the clock rate for KindDrift (local ticks per tick).
	Num, Den int64
	// Skew is a one-off clock jump for KindDrift, in ticks.
	Skew core.Tick
}

func (e Event) validate() error {
	if e.At < 0 {
		return fmt.Errorf("%w: %v at negative time %d", ErrSchedule, e.Kind, e.At)
	}
	switch e.Kind {
	case KindCrash, KindRestart, KindPartition, KindHeal:
		// Node may be any registered ID; nothing further to check.
	case KindLinkDown, KindLinkUp:
		if e.From == e.To {
			return fmt.Errorf("%w: %v on self-link %d→%d", ErrSchedule, e.Kind, e.From, e.To)
		}
	case KindLoss:
		if e.GE != nil {
			if err := e.GE.Validate(); err != nil {
				return err
			}
		}
		if !e.AllLinks && e.From == e.To {
			return fmt.Errorf("%w: loss on self-link %d→%d", ErrSchedule, e.From, e.To)
		}
	case KindDup:
		if !probOK(e.Prob) {
			return fmt.Errorf("%w: duplication probability %v out of [0,1]", ErrSchedule, e.Prob)
		}
	case KindReorder:
		if !probOK(e.Prob) {
			return fmt.Errorf("%w: reorder probability %v out of [0,1]", ErrSchedule, e.Prob)
		}
		if e.Prob > 0 && e.MaxDelay < 1 {
			return fmt.Errorf("%w: reordering needs MaxDelay >= 1, got %d", ErrSchedule, e.MaxDelay)
		}
	case KindDrift:
		if e.Num <= 0 || e.Den <= 0 {
			return fmt.Errorf("%w: drift rate %d/%d must be positive", ErrSchedule, e.Num, e.Den)
		}
	case KindDelay:
		if e.MinDelay < 0 {
			return fmt.Errorf("%w: delay lower bound %d negative", ErrSchedule, e.MinDelay)
		}
		if e.MaxDelay < e.MinDelay {
			return fmt.Errorf("%w: delay bounds inverted: %d..%d", ErrSchedule, e.MinDelay, e.MaxDelay)
		}
		if !e.AllLinks && e.From == e.To {
			return fmt.Errorf("%w: delay on self-link %d→%d", ErrSchedule, e.From, e.To)
		}
	case KindLeave, KindRejoin:
		// Node may be any registered ID; nothing further to check.
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrSchedule, int(e.Kind))
	}
	return nil
}

// probOK reports whether v is a probability. Written positively so that
// NaN — which compares false against everything — is rejected too.
func probOK(v float64) bool { return v >= 0 && v <= 1 }

// Schedule is a scripted fault campaign. Events are applied in time order;
// events with equal times apply in slice order. The zero value is a valid
// empty schedule.
type Schedule struct {
	// Seed drives every random decision of the fault layer (loss,
	// duplication, reorder delays). Two applications of the same schedule
	// with the same seed against deterministic transports replay
	// identically.
	Seed int64
	// Events is the fault script.
	Events []Event
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// NodeControl lets a schedule crash and restart protocol processes, not
// just their network links. detector.Cluster implements it.
type NodeControl interface {
	// CrashNode voluntarily inactivates the process.
	CrashNode(id netem.NodeID) error
	// RestartNode replaces the process's machine with a fresh one and
	// starts it.
	RestartNode(id netem.NodeID) error
}

// ClockControl lets a schedule skew and drift per-node clocks.
// detector.Cluster implements it when fault injection is enabled.
type ClockControl interface {
	// SetDrift sets the node clock's rate to num/den local ticks per real
	// tick and jumps it forward by skew local ticks.
	SetDrift(id netem.NodeID, num, den int64, skew core.Tick) error
}

// MemberControl lets a schedule drive clean membership churn — voluntary
// leaves and rejoins, as opposed to NodeControl's crashes and restarts.
// detector.Cluster implements it for the dynamic protocol variants.
type MemberControl interface {
	// LeaveNode makes the member announce a voluntary leave.
	LeaveNode(id netem.NodeID) error
	// RejoinNode brings a departed member back with a fresh machine.
	RejoinNode(id netem.NodeID) error
}

// Target binds a schedule to the things it manipulates. Transport is
// required; Nodes, Clocks and Members are optional (see the Kind docs for
// the fallback behaviour).
type Target struct {
	Transport *FaultableTransport
	Nodes     NodeControl
	Clocks    ClockControl
	Members   MemberControl
	// OnError, if non-nil, observes control actions that fail at fire
	// time (e.g. crashing a node the cluster does not have). A schedule
	// fires asynchronously and has no caller to return an error to, so
	// without a hook such events are silent no-ops — which can make a
	// whole chaos experiment vacuous without anyone noticing.
	OnError func(e Event, err error)
}

// Apply validates the schedule and arms one timer per event on tick,
// relative to the moment of the call. It returns a cancel function that
// disarms any events that have not fired yet.
//
// Apply itself performs no fault; events at time 0 fire on the tick's
// first zero-delay callback (for netem.SimTicker that is the next
// simulator step, before any later-scheduled work at the same tick).
func (s *Schedule) Apply(tick netem.Ticker, tgt Target) (cancel func(), err error) {
	if tgt.Transport == nil {
		return nil, fmt.Errorf("%w: target transport is required", ErrSchedule)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for i, e := range s.Events {
		if e.Kind == KindDrift && tgt.Clocks == nil {
			return nil, fmt.Errorf("%w: event %d: drift needs a ClockControl", ErrSchedule, i)
		}
		if e.Kind == KindRestart && tgt.Nodes == nil {
			return nil, fmt.Errorf("%w: event %d: restart needs a NodeControl", ErrSchedule, i)
		}
		if (e.Kind == KindLeave || e.Kind == KindRejoin) && tgt.Members == nil {
			return nil, fmt.Errorf("%w: event %d: %v needs a MemberControl", ErrSchedule, i, e.Kind)
		}
	}
	// Arm in time order so that same-tick events fire in schedule order
	// under FIFO tickers (netem.SimTicker preserves scheduling order).
	order := make([]int, len(s.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Events[order[a]].At < s.Events[order[b]].At
	})
	cancels := make([]func(), 0, len(order))
	for _, i := range order {
		e := s.Events[i]
		cancels = append(cancels, tick.AfterTicks(e.At, func() { applyEvent(e, tgt) }))
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}, nil
}

// applyEvent executes one fault. Control errors go to Target.OnError
// when set and are dropped otherwise: a schedule naming an unknown node
// behaves like a fault on a node that does not exist, which is a no-op
// on a real network too.
func applyEvent(e Event, tgt Target) {
	fail := func(err error) {
		if err != nil && tgt.OnError != nil {
			tgt.OnError(e, err)
		}
	}
	ft := tgt.Transport
	switch e.Kind {
	case KindCrash:
		ft.SetNodeMuted(e.Node, true)
		if tgt.Nodes != nil {
			fail(tgt.Nodes.CrashNode(e.Node))
		}
	case KindRestart:
		ft.SetNodeMuted(e.Node, false)
		if tgt.Nodes != nil {
			fail(tgt.Nodes.RestartNode(e.Node))
		}
	case KindPartition:
		ft.SetPartitioned(e.Node, true)
	case KindHeal:
		ft.SetPartitioned(e.Node, false)
	case KindLinkDown:
		ft.SetLinkDown(e.From, e.To, true)
	case KindLinkUp:
		ft.SetLinkDown(e.From, e.To, false)
	case KindLoss:
		if e.AllLinks {
			ft.SetLoss(e.GE)
		} else {
			ft.SetLinkLoss(e.From, e.To, e.GE)
		}
	case KindDup:
		ft.SetDuplication(e.Prob)
	case KindReorder:
		ft.SetReordering(e.Prob, e.MaxDelay)
	case KindDrift:
		if tgt.Clocks != nil {
			fail(tgt.Clocks.SetDrift(e.Node, e.Num, e.Den, e.Skew))
		}
	case KindDelay:
		if e.AllLinks {
			ft.SetDelay(e.MinDelay, e.MaxDelay)
		} else {
			ft.SetLinkDelay(e.From, e.To, e.MinDelay, e.MaxDelay)
		}
	case KindLeave:
		if tgt.Members != nil {
			fail(tgt.Members.LeaveNode(e.Node))
		}
	case KindRejoin:
		if tgt.Members != nil {
			fail(tgt.Members.RejoinNode(e.Node))
		}
	}
}
