package faults

import (
	"fmt"
	"math/rand"
)

// GilbertElliott parameterises the classic two-state bursty-loss channel:
// the channel alternates between a Good and a Bad state, transitioning
// with fixed probabilities on every message, and loses each message with
// a state-dependent probability. With PBadGood small the channel produces
// the correlated loss bursts that the accelerated protocols' tolerance
// bound (~log2(tmax/tmin) consecutive losses) is about, which independent
// Bernoulli loss (netem.LinkConfig.LossProb) cannot express.
type GilbertElliott struct {
	// PGoodBad is the per-message probability of entering the Bad state
	// from the Good state.
	PGoodBad float64
	// PBadGood is the per-message probability of returning to the Good
	// state; its inverse is the mean burst length in messages.
	PBadGood float64
	// LossGood is the loss probability while Good (often 0).
	LossGood float64
	// LossBad is the loss probability while Bad (often close to 1).
	LossBad float64
}

// Validate checks that all four parameters are probabilities.
func (g GilbertElliott) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", g.PGoodBad},
		{"PBadGood", g.PBadGood},
		{"LossGood", g.LossGood},
		{"LossBad", g.LossBad},
	} {
		if !probOK(p.v) {
			return fmt.Errorf("%w: Gilbert–Elliott %s %v out of [0,1]", ErrSchedule, p.name, p.v)
		}
	}
	return nil
}

// GEProcess is the mutable chain state of one Gilbert–Elliott channel.
// The fault layer keeps one per link; the fleet keeps one per cluster to
// model shared-fate bursts across a cluster's whole membership. The zero
// value is not meaningful — build processes with NewProcess.
type GEProcess struct {
	params GilbertElliott
	bad    bool
}

// NewProcess returns a chain in the Good state with these parameters.
func (g GilbertElliott) NewProcess() GEProcess { return GEProcess{params: g} }

// geChannel is the per-link chain state of the fault-injection transport.
type geChannel = GEProcess

//hbvet:noalloc
// Lose advances the chain one message and reports whether that message is
// lost. The caller supplies the random source so each owner (fault layer,
// fleet shard) draws from its own seeded stream.
func (c *GEProcess) Lose(rng *rand.Rand) bool {
	if c.bad {
		if rng.Float64() < c.params.PBadGood {
			c.bad = false
		}
	} else {
		if rng.Float64() < c.params.PGoodBad {
			c.bad = true
		}
	}
	loss := c.params.LossGood
	if c.bad {
		loss = c.params.LossBad
	}
	return rng.Float64() < loss
}
