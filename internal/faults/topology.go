package faults

import (
	"fmt"
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Topology places the cluster's nodes into a rack/zone hierarchy so that
// fault campaigns can express *correlated* failures — the shared-fate
// domains a flat per-link schedule cannot: a dead top-of-rack switch cuts
// every link crossing that rack at once, a congested WAN path delays every
// message from one zone to another in one direction only.
//
// Topology is purely an expander: each helper returns ordinary primitive
// Events (linkdown/linkup, loss, delay, leave/rejoin), so the resulting
// Schedule still validates, formats, byte-replays and feeds the model
// checker exactly like a hand-written one. Expansion order is sorted by
// node ID, so the same topology always produces the same event list.
type Topology struct {
	// Racks maps each node to its rack number.
	Racks map[netem.NodeID]int
	// Zones maps each rack to its zone (availability domain / WAN region).
	// Racks absent from the map are in zone 0.
	Zones map[int]int
}

// Validate rejects an empty topology.
func (t *Topology) Validate() error {
	if len(t.Racks) == 0 {
		return fmt.Errorf("%w: topology has no racks", ErrSchedule)
	}
	return nil
}

// nodes returns every placed node in ascending ID order.
func (t *Topology) nodes() []netem.NodeID {
	ids := make([]netem.NodeID, 0, len(t.Racks))
	for id := range t.Racks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// zone returns the zone of a node, defaulting to 0 for unmapped racks.
func (t *Topology) zone(id netem.NodeID) int {
	return t.Zones[t.Racks[id]]
}

// crossRackLinks lists every directed link with exactly one endpoint in
// rack, in ascending (from, to) order — the links a top-of-rack switch
// failure severs.
func (t *Topology) crossRackLinks(rack int) [][2]netem.NodeID {
	ids := t.nodes()
	var links [][2]netem.NodeID
	for _, from := range ids {
		for _, to := range ids {
			if from == to {
				continue
			}
			if (t.Racks[from] == rack) != (t.Racks[to] == rack) {
				links = append(links, [2]netem.NodeID{from, to})
			}
		}
	}
	return links
}

// zoneLinks lists every directed link from a node in fromZone to a node
// in toZone, in ascending order. One direction only: an asymmetric path
// needs a second expansion with the zones swapped.
func (t *Topology) zoneLinks(fromZone, toZone int) [][2]netem.NodeID {
	ids := t.nodes()
	var links [][2]netem.NodeID
	for _, from := range ids {
		if t.zone(from) != fromZone {
			continue
		}
		for _, to := range ids {
			if from == to || t.zone(to) != toZone {
				continue
			}
			links = append(links, [2]netem.NodeID{from, to})
		}
	}
	return links
}

// RackFail severs rack from the rest of the cluster at time at — a
// top-of-rack switch death: every link crossing the rack boundary goes
// down in both directions while intra-rack links keep working.
func (t *Topology) RackFail(at sim.Time, rack int) []Event {
	var evs []Event
	for _, l := range t.crossRackLinks(rack) {
		evs = append(evs, Event{At: at, Kind: KindLinkDown, From: l[0], To: l[1]})
	}
	return evs
}

// RackHeal restores the links RackFail severed.
func (t *Topology) RackHeal(at sim.Time, rack int) []Event {
	var evs []Event
	for _, l := range t.crossRackLinks(rack) {
		evs = append(evs, Event{At: at, Kind: KindLinkUp, From: l[0], To: l[1]})
	}
	return evs
}

// RackLoss installs ge on every link crossing the rack boundary — a
// degrading uplink losing correlated bursts on all of the rack's traffic
// at once. A nil ge clears the channels.
func (t *Topology) RackLoss(at sim.Time, rack int, ge *GilbertElliott) []Event {
	var evs []Event
	for _, l := range t.crossRackLinks(rack) {
		evs = append(evs, Event{At: at, Kind: KindLoss, From: l[0], To: l[1], GE: ge})
	}
	return evs
}

// ZoneDelay adds a uniform min..max latency band on every link from
// fromZone to toZone at time at — one direction only, so congested or
// asymmetric WAN paths compose from two calls. min = max = 0 clears it,
// and scheduling several ZoneDelay expansions at different times yields
// time-varying latency.
func (t *Topology) ZoneDelay(at sim.Time, fromZone, toZone int, min, max sim.Time) []Event {
	var evs []Event
	for _, l := range t.zoneLinks(fromZone, toZone) {
		evs = append(evs, Event{At: at, Kind: KindDelay, From: l[0], To: l[1], MinDelay: min, MaxDelay: max})
	}
	return evs
}

// ChurnStorm makes every given node leave and later rejoin, staggered so
// departures overlap: node i leaves at at+i·stagger and rejoins downFor
// ticks later. With stagger < downFor several members are out at once —
// the mass join/leave churn the dynamic protocol variants must absorb.
// The node list is expanded in the order given (callers wanting sorted
// expansion pass a sorted list).
func ChurnStorm(at, stagger, downFor sim.Time, nodes []netem.NodeID) []Event {
	var evs []Event
	for i, id := range nodes {
		off := at + sim.Time(i)*stagger
		evs = append(evs,
			Event{At: off, Kind: KindLeave, Node: id},
			Event{At: off + downFor, Kind: KindRejoin, Node: id},
		)
	}
	return evs
}
