package faults

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestParseSchedule(t *testing.T) {
	text := `
# a full campaign
seed 42
loss      t=0 all pgb=0.05 pbg=0.5 lb=0.9
crash     t=100 node=1
restart   t=400 node=1
partition t=200 node=2; heal t=400 node=2
linkdown  t=50 from=1 to=0
linkup    t=80 from=1 to=0
dup       t=0 prob=0.05
reorder   t=0 prob=0.1 maxdelay=3
drift     t=0 node=2 rate=102/100 skew=5
`
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Fatalf("seed = %d", s.Seed)
	}
	if len(s.Events) != 10 {
		t.Fatalf("parsed %d events, want 10: %+v", len(s.Events), s.Events)
	}
	loss := s.Events[0]
	if loss.Kind != KindLoss || !loss.AllLinks || loss.GE == nil ||
		loss.GE.PGoodBad != 0.05 || loss.GE.PBadGood != 0.5 || loss.GE.LossBad != 0.9 {
		t.Fatalf("loss event = %+v", loss)
	}
	if e := s.Events[1]; e.Kind != KindCrash || e.At != 100 || e.Node != 1 {
		t.Fatalf("crash event = %+v", e)
	}
	if e := s.Events[3]; e.Kind != KindPartition || e.At != 200 || e.Node != 2 {
		t.Fatalf("partition event = %+v", e)
	}
	if e := s.Events[9]; e.Kind != KindDrift || e.Num != 102 || e.Den != 100 || e.Skew != 5 {
		t.Fatalf("drift event = %+v", e)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	text := "seed 7\ncrash t=10 node=3\nloss t=0 all pgb=0.1 pbg=0.5 lg=0 lb=1\nreorder t=5 prob=0.2 maxdelay=4\n"
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSchedule(s.Format())
	if err != nil {
		t.Fatalf("reparse of %q: %v", s.Format(), err)
	}
	if again.Format() != s.Format() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", s.Format(), again.Format())
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, text := range []string{
		"explode t=1",               // unknown directive
		"crash node=1",              // missing time
		"crash t=x node=1",          // bad time
		"dup t=0 prob=nope",         // bad float
		"crash t=0 node=1 x=2",      // unknown field
		"drift t=0 node=1 rate=0/0", // zero rate
		"seed",                      // missing value
		"reorder t=0 prob=0.5",      // missing maxdelay
	} {
		if _, err := ParseSchedule(text); !errors.Is(err, ErrSchedule) {
			t.Errorf("ParseSchedule(%q) = %v, want ErrSchedule", text, err)
		}
	}
}

func TestDriftClock(t *testing.T) {
	fc := &fakeClock{}
	dc := NewDriftClock(fc)
	if dc.Now() != 0 {
		t.Fatalf("fresh drift clock at %d", dc.Now())
	}
	fc.now = 100
	if dc.Now() != 100 {
		t.Fatalf("rate 1/1 clock at %d, want 100", dc.Now())
	}
	// Double speed from t=100: local = 100 + 2*(real-100).
	if err := dc.SetDrift(2, 1, 0); err != nil {
		t.Fatal(err)
	}
	fc.now = 110
	if got := dc.Now(); got != 120 {
		t.Fatalf("fast clock at %d, want 120", got)
	}
	// A 10-local-tick timer needs only 5 real ticks.
	dc.After(10, func() {})
	if fc.lastAfter != 5 {
		t.Fatalf("After(10) scheduled %d real ticks, want 5", fc.lastAfter)
	}
	// Skew jumps are applied on top, and rate changes anchor continuously.
	if err := dc.SetDrift(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	if got := dc.Now(); got != 127 {
		t.Fatalf("after skew at %d, want 127", got)
	}
	fc.now = 120
	if got := dc.Now(); got != 132 {
		t.Fatalf("slow clock at %d, want 132", got)
	}
	// Rounding up: a 3-local-tick timer at rate 1/2 takes 6 real ticks;
	// at rate 2/1 a 3-tick timer takes ceil(3/2)=2.
	dc.After(3, func() {})
	if fc.lastAfter != 6 {
		t.Fatalf("After(3) at rate 1/2 scheduled %d, want 6", fc.lastAfter)
	}
	if err := dc.SetDrift(2, 1, 0); err != nil {
		t.Fatal(err)
	}
	dc.After(3, func() {})
	if fc.lastAfter != 2 {
		t.Fatalf("After(3) at rate 2/1 scheduled %d, want 2", fc.lastAfter)
	}
	if err := dc.SetDrift(0, 1, 0); !errors.Is(err, ErrSchedule) {
		t.Fatalf("zero rate accepted: %v", err)
	}
}

type fakeClock struct {
	now       int64
	lastAfter int64
}

func (f *fakeClock) Now() core.Tick { return core.Tick(f.now) }
func (f *fakeClock) After(d core.Tick, fn func()) func() {
	f.lastAfter = int64(d)
	return func() {}
}
