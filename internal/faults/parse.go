package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// ParseSchedule parses the textual fault-schedule format used by scenario
// files and hbsim's -faults flag. Directives are separated by newlines or
// semicolons; '#' starts a comment. Each directive is a kind followed by
// key=value fields (and the bare flag "all" for loss):
//
//	seed 42
//	loss      t=0 all pgb=0.05 pbg=0.5 lg=0 lb=0.9   # Gilbert–Elliott
//	loss      t=0 from=1 to=0 pgb=0.1 pbg=0.5 lb=1
//	crash     t=100 node=1
//	restart   t=400 node=1
//	partition t=200 node=2
//	heal      t=400 node=2
//	linkdown  t=50 from=1 to=0
//	linkup    t=80 from=1 to=0
//	dup       t=0 prob=0.05
//	reorder   t=0 prob=0.1 maxdelay=3
//	drift     t=0 node=2 rate=102/100 skew=5
//
// Omitted Gilbert–Elliott fields default to zero, matching the struct.
func ParseSchedule(text string) (*Schedule, error) {
	s := &Schedule{}
	lines := strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' })
	for li, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		kindWord, args := strings.ToLower(fields[0]), fields[1:]
		if kindWord == "seed" {
			if len(args) != 1 {
				return nil, fmt.Errorf("%w: line %d: seed takes one value", ErrSchedule, li+1)
			}
			v, err := strconv.ParseInt(args[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad seed %q", ErrSchedule, li+1, args[0])
			}
			s.Seed = v
			continue
		}
		ev, err := parseEvent(kindWord, args)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", li+1, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

var kindNames = map[string]Kind{
	"crash":     KindCrash,
	"restart":   KindRestart,
	"partition": KindPartition,
	"heal":      KindHeal,
	"linkdown":  KindLinkDown,
	"linkup":    KindLinkUp,
	"loss":      KindLoss,
	"dup":       KindDup,
	"reorder":   KindReorder,
	"drift":     KindDrift,
}

// eventKeys lists the key=value fields each directive understands, beyond
// the universal t/at. Fields outside this list are rejected: Format only
// renders a kind's own fields, so a stray field would otherwise parse,
// silently set an unused Event field, and be lost on the round trip.
var eventKeys = map[Kind]string{
	KindCrash:     " node ",
	KindRestart:   " node ",
	KindPartition: " node ",
	KindHeal:      " node ",
	KindLinkDown:  " from to ",
	KindLinkUp:    " from to ",
	KindLoss:      " from to pgb pbg lg lb ",
	KindDup:       " prob ",
	KindReorder:   " prob maxdelay ",
	KindDrift:     " node rate skew ",
}

func parseEvent(kindWord string, args []string) (Event, error) {
	kind, ok := kindNames[kindWord]
	if !ok {
		return Event{}, fmt.Errorf("%w: unknown directive %q", ErrSchedule, kindWord)
	}
	ev := Event{Kind: kind, At: -1, Num: 1, Den: 1}
	var ge GilbertElliott
	var haveGE bool
	for _, arg := range args {
		if strings.EqualFold(arg, "all") {
			if kind != KindLoss {
				return Event{}, fmt.Errorf("%w: %s does not take %q", ErrSchedule, kindWord, arg)
			}
			ev.AllLinks = true
			continue
		}
		key, val, found := strings.Cut(arg, "=")
		if !found {
			return Event{}, fmt.Errorf("%w: expected key=value, got %q", ErrSchedule, arg)
		}
		key = strings.ToLower(key)
		if key != "t" && key != "at" && !strings.Contains(eventKeys[kind], " "+key+" ") {
			return Event{}, fmt.Errorf("%w: %s does not take field %q", ErrSchedule, kindWord, key)
		}
		switch key {
		case "t", "at":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad time %q", ErrSchedule, val)
			}
			ev.At = sim.Time(v)
		case "node":
			v, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad node %q", ErrSchedule, val)
			}
			ev.Node = netem.NodeID(v)
		case "from", "to":
			v, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			if key == "from" {
				ev.From = netem.NodeID(v)
			} else {
				ev.To = netem.NodeID(v)
			}
		case "prob":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad probability %q", ErrSchedule, val)
			}
			ev.Prob = v
		case "maxdelay":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad maxdelay %q", ErrSchedule, val)
			}
			ev.MaxDelay = sim.Time(v)
		case "pgb", "pbg", "lg", "lb":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			haveGE = true
			switch key {
			case "pgb":
				ge.PGoodBad = v
			case "pbg":
				ge.PBadGood = v
			case "lg":
				ge.LossGood = v
			case "lb":
				ge.LossBad = v
			}
		case "rate":
			num, den, found := strings.Cut(val, "/")
			if !found {
				den = "1"
			}
			n, err1 := strconv.ParseInt(num, 10, 64)
			d, err2 := strconv.ParseInt(den, 10, 64)
			if err1 != nil || err2 != nil {
				return Event{}, fmt.Errorf("%w: bad rate %q", ErrSchedule, val)
			}
			ev.Num, ev.Den = n, d
		case "skew":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad skew %q", ErrSchedule, val)
			}
			ev.Skew = core.Tick(v)
		default:
			return Event{}, fmt.Errorf("%w: unknown field %q", ErrSchedule, key)
		}
	}
	if ev.At < 0 {
		return Event{}, fmt.Errorf("%w: %s needs t=<time>", ErrSchedule, kindWord)
	}
	if kind == KindLoss && haveGE {
		ev.GE = &ge
	}
	return ev, nil
}

// Format renders the schedule back to the textual form ParseSchedule
// accepts, for logging and round-trip tests.
func (s *Schedule) Format() string {
	var b strings.Builder
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", s.Seed)
	}
	for _, e := range s.Events {
		name := e.Kind.String()
		fmt.Fprintf(&b, "%s t=%d", name, e.At)
		switch e.Kind {
		case KindCrash, KindRestart, KindPartition, KindHeal:
			fmt.Fprintf(&b, " node=%d", e.Node)
		case KindLinkDown, KindLinkUp:
			fmt.Fprintf(&b, " from=%d to=%d", e.From, e.To)
		case KindLoss:
			if e.AllLinks {
				b.WriteString(" all")
			} else {
				fmt.Fprintf(&b, " from=%d to=%d", e.From, e.To)
			}
			if e.GE != nil {
				fmt.Fprintf(&b, " pgb=%g pbg=%g lg=%g lb=%g",
					e.GE.PGoodBad, e.GE.PBadGood, e.GE.LossGood, e.GE.LossBad)
			}
		case KindDup:
			fmt.Fprintf(&b, " prob=%g", e.Prob)
		case KindReorder:
			fmt.Fprintf(&b, " prob=%g maxdelay=%d", e.Prob, e.MaxDelay)
		case KindDrift:
			fmt.Fprintf(&b, " node=%d rate=%d/%d skew=%d", e.Node, e.Num, e.Den, e.Skew)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
