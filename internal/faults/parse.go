package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

// ParseSchedule parses the textual fault-schedule format used by scenario
// files and hbsim's -faults flag. Directives are separated by newlines or
// semicolons; '#' starts a comment. Each directive is a kind followed by
// key=value fields (and the bare flag "all" for loss):
//
//	seed 42
//	loss      t=0 all pgb=0.05 pbg=0.5 lg=0 lb=0.9   # Gilbert–Elliott
//	loss      t=0 from=1 to=0 pgb=0.1 pbg=0.5 lb=1
//	crash     t=100 node=1
//	restart   t=400 node=1
//	partition t=200 node=2
//	heal      t=400 node=2
//	linkdown  t=50 from=1 to=0
//	linkup    t=80 from=1 to=0
//	dup       t=0 prob=0.05
//	reorder   t=0 prob=0.1 maxdelay=3
//	drift     t=0 node=2 rate=102/100 skew=5
//	delay     t=0 from=0 to=1 mindelay=2 maxdelay=4
//	leave     t=100 node=2
//	rejoin    t=300 node=2
//
// A topo directive places nodes into racks and racks into zones; the
// topology directives after it expand to the primitive events above at
// parse time (Format renders the expansion, so round trips still hold):
//
//	topo      racks=0:0,1:0,2:1,3:1 zones=1:1
//	rackfail  t=100 rack=1            # linkdown on every boundary link
//	rackheal  t=300 rack=1
//	rackloss  t=100 rack=1 pgb=0.1 pbg=0.5 lb=0.9   # no GE fields clears
//	zonedelay t=50 from=0 to=1 mindelay=2 maxdelay=4 # one direction only
//	churn     t=100 stagger=10 down=40 nodes=1,2,3
//
// Omitted Gilbert–Elliott fields default to zero, matching the struct.
//
// ParseSchedule additionally rejects overlapping fault windows: a
// partition of an already-partitioned node, a linkdown of a link that is
// already down, or a heal/linkup without a matching opener is an error
// rather than a silently collapsed window.
func ParseSchedule(text string) (*Schedule, error) {
	s := &Schedule{}
	var topo *Topology
	lines := strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' })
	for li, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		kindWord, args := strings.ToLower(fields[0]), fields[1:]
		switch kindWord {
		case "seed":
			if len(args) != 1 {
				return nil, fmt.Errorf("%w: line %d: seed takes one value", ErrSchedule, li+1)
			}
			v, err := strconv.ParseInt(args[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad seed %q", ErrSchedule, li+1, args[0])
			}
			s.Seed = v
			continue
		case "topo":
			t, err := parseTopo(args)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", li+1, err)
			}
			topo = t
			continue
		case "rackfail", "rackheal", "rackloss", "zonedelay", "churn":
			evs, err := expandTopo(topo, kindWord, args)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", li+1, err)
			}
			s.Events = append(s.Events, evs...)
			continue
		}
		ev, err := parseEvent(kindWord, args)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", li+1, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := checkWindows(s); err != nil {
		return nil, err
	}
	return s, nil
}

// parseTopo parses "topo racks=node:rack,... [zones=rack:zone,...]".
func parseTopo(args []string) (*Topology, error) {
	t := &Topology{Racks: map[netem.NodeID]int{}, Zones: map[int]int{}}
	for _, arg := range args {
		key, val, found := strings.Cut(arg, "=")
		if !found {
			return nil, fmt.Errorf("%w: expected key=value, got %q", ErrSchedule, arg)
		}
		switch strings.ToLower(key) {
		case "racks":
			for _, pair := range strings.Split(val, ",") {
				ns, rs, ok := strings.Cut(pair, ":")
				if !ok {
					return nil, fmt.Errorf("%w: racks wants node:rack pairs, got %q", ErrSchedule, pair)
				}
				n, err1 := strconv.Atoi(ns)
				r, err2 := strconv.Atoi(rs)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("%w: bad racks pair %q", ErrSchedule, pair)
				}
				t.Racks[netem.NodeID(n)] = r
			}
		case "zones":
			for _, pair := range strings.Split(val, ",") {
				rs, zs, ok := strings.Cut(pair, ":")
				if !ok {
					return nil, fmt.Errorf("%w: zones wants rack:zone pairs, got %q", ErrSchedule, pair)
				}
				r, err1 := strconv.Atoi(rs)
				z, err2 := strconv.Atoi(zs)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("%w: bad zones pair %q", ErrSchedule, pair)
				}
				t.Zones[r] = z
			}
		default:
			return nil, fmt.Errorf("%w: topo does not take field %q", ErrSchedule, key)
		}
	}
	return t, t.Validate()
}

// topoKeys lists the fields each topology directive understands.
var topoKeys = map[string]string{
	"rackfail":  " rack ",
	"rackheal":  " rack ",
	"rackloss":  " rack pgb pbg lg lb ",
	"zonedelay": " from to mindelay maxdelay ",
	"churn":     " stagger down nodes ",
}

// expandTopo expands one topology directive into primitive events.
func expandTopo(topo *Topology, kindWord string, args []string) ([]Event, error) {
	if topo == nil {
		return nil, fmt.Errorf("%w: %s needs a prior topo directive", ErrSchedule, kindWord)
	}
	var (
		at         = sim.Time(-1)
		rack       int
		fromZ, toZ int
		minD, maxD sim.Time
		stagger    sim.Time
		down       sim.Time
		nodes      []netem.NodeID
		ge         GilbertElliott
		haveGE     bool
	)
	for _, arg := range args {
		key, val, found := strings.Cut(arg, "=")
		if !found {
			return nil, fmt.Errorf("%w: expected key=value, got %q", ErrSchedule, arg)
		}
		key = strings.ToLower(key)
		if key != "t" && key != "at" && !strings.Contains(topoKeys[kindWord], " "+key+" ") {
			return nil, fmt.Errorf("%w: %s does not take field %q", ErrSchedule, kindWord, key)
		}
		var intDst *sim.Time
		switch key {
		case "t", "at":
			intDst = &at
		case "mindelay":
			intDst = &minD
		case "maxdelay":
			intDst = &maxD
		case "stagger":
			intDst = &stagger
		case "down":
			intDst = &down
		}
		switch key {
		case "t", "at", "mindelay", "maxdelay", "stagger", "down":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			*intDst = sim.Time(v)
		case "rack", "from", "to":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			switch key {
			case "rack":
				rack = v
			case "from":
				fromZ = v
			case "to":
				toZ = v
			}
		case "nodes":
			for _, ns := range strings.Split(val, ",") {
				n, err := strconv.Atoi(ns)
				if err != nil {
					return nil, fmt.Errorf("%w: bad node %q in nodes", ErrSchedule, ns)
				}
				nodes = append(nodes, netem.NodeID(n))
			}
		case "pgb", "pbg", "lg", "lb":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			haveGE = true
			switch key {
			case "pgb":
				ge.PGoodBad = v
			case "pbg":
				ge.PBadGood = v
			case "lg":
				ge.LossGood = v
			case "lb":
				ge.LossBad = v
			}
		}
	}
	if at < 0 {
		return nil, fmt.Errorf("%w: %s needs t=<time>", ErrSchedule, kindWord)
	}
	var evs []Event
	switch kindWord {
	case "rackfail":
		evs = topo.RackFail(at, rack)
	case "rackheal":
		evs = topo.RackHeal(at, rack)
	case "rackloss":
		var g *GilbertElliott
		if haveGE {
			g = &ge
		}
		evs = topo.RackLoss(at, rack, g)
	case "zonedelay":
		evs = topo.ZoneDelay(at, fromZ, toZ, minD, maxD)
	case "churn":
		if len(nodes) == 0 {
			return nil, fmt.Errorf("%w: churn needs nodes=<id,...>", ErrSchedule)
		}
		evs = ChurnStorm(at, stagger, down, nodes)
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("%w: %s expands to no events (empty fault domain)", ErrSchedule, kindWord)
	}
	return evs, nil
}

// checkWindows rejects overlapping fault windows: opening a window that
// is already open (double partition, double linkdown) or closing one that
// is not. A heal that silently collapses two overlapping windows used to
// reopen connectivity an outer window still claims; now it is a parse
// error. Checking lives here rather than in Schedule.Validate so that
// programmatic fault-space exploration may still build transient
// overlapping states on purpose.
func checkWindows(s *Schedule) error {
	order := make([]int, len(s.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Events[order[a]].At < s.Events[order[b]].At
	})
	part := make(map[netem.NodeID]bool)
	link := make(map[[2]netem.NodeID]bool)
	for _, i := range order {
		e := s.Events[i]
		switch e.Kind {
		case KindPartition:
			if part[e.Node] {
				return fmt.Errorf("%w: event %d: partition of node %d at t=%d overlaps an open partition window",
					ErrSchedule, i, e.Node, e.At)
			}
			part[e.Node] = true
		case KindHeal:
			if !part[e.Node] {
				return fmt.Errorf("%w: event %d: heal of node %d at t=%d without an open partition window",
					ErrSchedule, i, e.Node, e.At)
			}
			part[e.Node] = false
		case KindLinkDown:
			key := [2]netem.NodeID{e.From, e.To}
			if link[key] {
				return fmt.Errorf("%w: event %d: linkdown %d→%d at t=%d overlaps an open link window",
					ErrSchedule, i, e.From, e.To, e.At)
			}
			link[key] = true
		case KindLinkUp:
			key := [2]netem.NodeID{e.From, e.To}
			if !link[key] {
				return fmt.Errorf("%w: event %d: linkup %d→%d at t=%d without an open link window",
					ErrSchedule, i, e.From, e.To, e.At)
			}
			link[key] = false
		}
	}
	return nil
}

var kindNames = map[string]Kind{
	"crash":     KindCrash,
	"restart":   KindRestart,
	"partition": KindPartition,
	"heal":      KindHeal,
	"linkdown":  KindLinkDown,
	"linkup":    KindLinkUp,
	"loss":      KindLoss,
	"dup":       KindDup,
	"reorder":   KindReorder,
	"drift":     KindDrift,
	"delay":     KindDelay,
	"leave":     KindLeave,
	"rejoin":    KindRejoin,
}

// eventKeys lists the key=value fields each directive understands, beyond
// the universal t/at. Fields outside this list are rejected: Format only
// renders a kind's own fields, so a stray field would otherwise parse,
// silently set an unused Event field, and be lost on the round trip.
var eventKeys = map[Kind]string{
	KindCrash:     " node ",
	KindRestart:   " node ",
	KindPartition: " node ",
	KindHeal:      " node ",
	KindLinkDown:  " from to ",
	KindLinkUp:    " from to ",
	KindLoss:      " from to pgb pbg lg lb ",
	KindDup:       " prob ",
	KindReorder:   " prob maxdelay ",
	KindDrift:     " node rate skew ",
	KindDelay:     " from to mindelay maxdelay ",
	KindLeave:     " node ",
	KindRejoin:    " node ",
}

func parseEvent(kindWord string, args []string) (Event, error) {
	kind, ok := kindNames[kindWord]
	if !ok {
		return Event{}, fmt.Errorf("%w: unknown directive %q", ErrSchedule, kindWord)
	}
	ev := Event{Kind: kind, At: -1, Num: 1, Den: 1}
	var ge GilbertElliott
	var haveGE bool
	for _, arg := range args {
		if strings.EqualFold(arg, "all") {
			if kind != KindLoss && kind != KindDelay {
				return Event{}, fmt.Errorf("%w: %s does not take %q", ErrSchedule, kindWord, arg)
			}
			ev.AllLinks = true
			continue
		}
		key, val, found := strings.Cut(arg, "=")
		if !found {
			return Event{}, fmt.Errorf("%w: expected key=value, got %q", ErrSchedule, arg)
		}
		key = strings.ToLower(key)
		if key != "t" && key != "at" && !strings.Contains(eventKeys[kind], " "+key+" ") {
			return Event{}, fmt.Errorf("%w: %s does not take field %q", ErrSchedule, kindWord, key)
		}
		switch key {
		case "t", "at":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad time %q", ErrSchedule, val)
			}
			ev.At = sim.Time(v)
		case "node":
			v, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad node %q", ErrSchedule, val)
			}
			ev.Node = netem.NodeID(v)
		case "from", "to":
			v, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			if key == "from" {
				ev.From = netem.NodeID(v)
			} else {
				ev.To = netem.NodeID(v)
			}
		case "prob":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad probability %q", ErrSchedule, val)
			}
			ev.Prob = v
		case "mindelay", "maxdelay":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			if key == "mindelay" {
				ev.MinDelay = sim.Time(v)
			} else {
				ev.MaxDelay = sim.Time(v)
			}
		case "pgb", "pbg", "lg", "lb":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad %s %q", ErrSchedule, key, val)
			}
			haveGE = true
			switch key {
			case "pgb":
				ge.PGoodBad = v
			case "pbg":
				ge.PBadGood = v
			case "lg":
				ge.LossGood = v
			case "lb":
				ge.LossBad = v
			}
		case "rate":
			num, den, found := strings.Cut(val, "/")
			if !found {
				den = "1"
			}
			n, err1 := strconv.ParseInt(num, 10, 64)
			d, err2 := strconv.ParseInt(den, 10, 64)
			if err1 != nil || err2 != nil {
				return Event{}, fmt.Errorf("%w: bad rate %q", ErrSchedule, val)
			}
			ev.Num, ev.Den = n, d
		case "skew":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad skew %q", ErrSchedule, val)
			}
			ev.Skew = core.Tick(v)
		default:
			return Event{}, fmt.Errorf("%w: unknown field %q", ErrSchedule, key)
		}
	}
	if ev.At < 0 {
		return Event{}, fmt.Errorf("%w: %s needs t=<time>", ErrSchedule, kindWord)
	}
	if kind == KindLoss && haveGE {
		ev.GE = &ge
	}
	return ev, nil
}

// Format renders the schedule back to the textual form ParseSchedule
// accepts, for logging and round-trip tests.
func (s *Schedule) Format() string {
	var b strings.Builder
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", s.Seed)
	}
	for _, e := range s.Events {
		name := e.Kind.String()
		fmt.Fprintf(&b, "%s t=%d", name, e.At)
		switch e.Kind {
		case KindCrash, KindRestart, KindPartition, KindHeal:
			fmt.Fprintf(&b, " node=%d", e.Node)
		case KindLinkDown, KindLinkUp:
			fmt.Fprintf(&b, " from=%d to=%d", e.From, e.To)
		case KindLoss:
			if e.AllLinks {
				b.WriteString(" all")
			} else {
				fmt.Fprintf(&b, " from=%d to=%d", e.From, e.To)
			}
			if e.GE != nil {
				fmt.Fprintf(&b, " pgb=%g pbg=%g lg=%g lb=%g",
					e.GE.PGoodBad, e.GE.PBadGood, e.GE.LossGood, e.GE.LossBad)
			}
		case KindDup:
			fmt.Fprintf(&b, " prob=%g", e.Prob)
		case KindReorder:
			fmt.Fprintf(&b, " prob=%g maxdelay=%d", e.Prob, e.MaxDelay)
		case KindDrift:
			fmt.Fprintf(&b, " node=%d rate=%d/%d skew=%d", e.Node, e.Num, e.Den, e.Skew)
		case KindDelay:
			if e.AllLinks {
				b.WriteString(" all")
			} else {
				fmt.Fprintf(&b, " from=%d to=%d", e.From, e.To)
			}
			fmt.Fprintf(&b, " mindelay=%d maxdelay=%d", e.MinDelay, e.MaxDelay)
		case KindLeave, KindRejoin:
			fmt.Fprintf(&b, " node=%d", e.Node)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
