package faults

import (
	"reflect"
	"testing"
)

// FuzzParseSchedule checks the parser/formatter round trip: any schedule
// the parser accepts must Format to text that reparses to a deeply equal
// schedule, and Format must be a fixpoint from then on. This property is
// what lets hbconform print a failing walk's schedule inline as a
// copy-pasteable reproduction.
//
// Bugs this has caught (now fixed and covered by the seed corpus):
//   - NaN probabilities passed validation ("prob < 0 || prob > 1" is false
//     for NaN) and then broke DeepEqual after the round trip.
//   - Fields of one directive were silently accepted on another (e.g.
//     "crash t=0 prob=0.5", "crash t=0 all") and dropped by Format.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"seed 42\nloss t=0 all pgb=0.05 pbg=0.5 lb=0.9\ncrash t=100 node=1",
		"restart t=400 node=1\npartition t=200 node=2; heal t=400 node=2",
		"linkdown t=50 from=1 to=0\nlinkup t=80 from=1 to=0",
		"dup t=0 prob=0.05\nreorder t=0 prob=0.1 maxdelay=3",
		"drift t=0 node=2 rate=102/100 skew=5",
		"loss t=3 from=1 to=0 pgb=0.1 pbg=0.5 lb=1",
		"# comment only\n\n;;",
		"dup t=0 prob=NaN",
		"crash t=0 node=1 prob=0.5",
		"crash t=0 all",
		"seed -9223372036854775808",
		"loss t=0 all pgb=1e-300 pbg=0.5 lb=0.25",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		formatted := s.Format()
		again, err := ParseSchedule(formatted)
		if err != nil {
			t.Fatalf("Format output rejected: %v\ninput: %q\nformatted: %q", err, text, formatted)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip diverged\ninput: %q\nfirst: %+v\nsecond: %+v", text, s, again)
		}
		if got := again.Format(); got != formatted {
			t.Fatalf("Format not a fixpoint\nfirst: %q\nsecond: %q", formatted, got)
		}
	})
}
