package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Stats counts the fault layer's interventions.
type Stats struct {
	// Intercepted is the number of Send calls seen.
	Intercepted uint64
	// DroppedMuted counts sends dropped because the sender is crashed.
	DroppedMuted uint64
	// DroppedPartition counts sends dropped by a partition or downed link.
	DroppedPartition uint64
	// DroppedLoss counts sends lost by a Gilbert–Elliott channel.
	DroppedLoss uint64
	// Duplicated counts extra copies injected.
	Duplicated uint64
	// Delayed counts sends given an extra reordering delay.
	Delayed uint64
	// Slowed counts sends given extra link latency by a delay range.
	Slowed uint64
	// SendErrors counts errors from the wrapped transport on delayed
	// sends, which have no caller left to report to.
	SendErrors uint64
}

// FaultableTransport wraps any netem.Transport and applies the mutable
// fault state a Schedule drives: per-node crash muting and partitions,
// per-link downs, Gilbert–Elliott loss channels and latency bands,
// duplication, and reordering. All decisions draw from one seeded random
// stream, so a run
// over the deterministic simulator replays exactly; faults apply at send
// time, uniformly across netem.Network, netem.RealNetwork and
// netem.UDPTransport.
//
// It is safe for concurrent use (the wrapped transport permitting).
type FaultableTransport struct {
	mu    sync.Mutex
	inner netem.Transport
	tick  netem.Ticker
	rng   *rand.Rand

	ids         []netem.NodeID
	muted       map[netem.NodeID]bool
	partitioned map[netem.NodeID]bool
	linkDown    map[[2]netem.NodeID]bool
	lossDefault *GilbertElliott
	lossLinks   map[[2]netem.NodeID]*GilbertElliott
	channels    map[[2]netem.NodeID]*geChannel
	delayAll    delayRange
	delayLinks  map[[2]netem.NodeID]delayRange
	dupProb     float64
	reorderProb float64
	reorderMax  sim.Time

	stats Stats
}

var _ netem.Transport = (*FaultableTransport)(nil)

// Wrap builds a fault layer over inner. The ticker schedules reordering
// delays (netem.SimTicker for virtual time, netem.WallTicker for real
// time); seed drives every random fault decision.
func Wrap(inner netem.Transport, tick netem.Ticker, seed int64) *FaultableTransport {
	return &FaultableTransport{
		inner:       inner,
		tick:        tick,
		rng:         rand.New(rand.NewSource(seed)),
		muted:       make(map[netem.NodeID]bool),
		partitioned: make(map[netem.NodeID]bool),
		linkDown:    make(map[[2]netem.NodeID]bool),
		lossLinks:   make(map[[2]netem.NodeID]*GilbertElliott),
		channels:    make(map[[2]netem.NodeID]*geChannel),
		delayLinks:  make(map[[2]netem.NodeID]delayRange),
	}
}

// delayRange is a uniform extra-latency band; the zero value means no
// extra latency.
type delayRange struct {
	min, max sim.Time
}

// Register implements netem.Transport, tracking the node set so that
// Broadcast can fan out through the fault layer.
func (f *FaultableTransport) Register(id netem.NodeID, h netem.Handler) error {
	if err := f.inner.Register(id, h); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ids = append(f.ids, id)
	sort.Slice(f.ids, func(i, j int) bool { return f.ids[i] < f.ids[j] })
	return nil
}

// SetNodeMuted drops (or stops dropping) every send from id — the
// network-visible half of a process crash.
func (f *FaultableTransport) SetNodeMuted(id netem.NodeID, muted bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.muted[id] = muted
}

// SetPartitioned isolates (or heals) a node in both directions.
func (f *FaultableTransport) SetPartitioned(id netem.NodeID, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned[id] = down
}

// SetLinkDown takes the unidirectional from→to link down or up.
func (f *FaultableTransport) SetLinkDown(from, to netem.NodeID, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.linkDown[[2]netem.NodeID{from, to}] = down
}

// SetLoss installs ge as the Gilbert–Elliott loss channel for every link
// without a per-link override; nil clears it. Chain state is reset.
func (f *FaultableTransport) SetLoss(ge *GilbertElliott) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lossDefault = ge
	f.channels = make(map[[2]netem.NodeID]*geChannel)
}

// SetLinkLoss installs a per-link Gilbert–Elliott channel; nil reverts the
// link to the default channel.
func (f *FaultableTransport) SetLinkLoss(from, to netem.NodeID, ge *GilbertElliott) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]netem.NodeID{from, to}
	if ge == nil {
		delete(f.lossLinks, key)
	} else {
		f.lossLinks[key] = ge
	}
	delete(f.channels, key)
}

// SetDelay adds a uniform min..max extra latency to every surviving
// message on links without a per-link override; min = max = 0 clears it.
// Inverted or negative bounds are normalised to empty.
func (f *FaultableTransport) SetDelay(min, max sim.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayAll = normDelay(min, max)
}

// SetLinkDelay adds a uniform min..max extra latency on the from→to link
// only — one direction, so an asymmetric path is two calls with different
// bounds. min = max = 0 reverts the link to the default delay.
func (f *FaultableTransport) SetLinkDelay(from, to netem.NodeID, min, max sim.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]netem.NodeID{from, to}
	d := normDelay(min, max)
	if d == (delayRange{}) {
		delete(f.delayLinks, key)
	} else {
		f.delayLinks[key] = d
	}
}

func normDelay(min, max sim.Time) delayRange {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	return delayRange{min: min, max: max}
}

// SetDuplication sets the probability that a surviving message is sent
// twice. Out-of-range values are clamped to [0,1].
func (f *FaultableTransport) SetDuplication(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dupProb = clamp01(p)
}

// SetReordering sets the probability that a surviving message is delayed
// by a uniform 1..max extra ticks before reaching the wrapped transport,
// letting later messages overtake it.
func (f *FaultableTransport) SetReordering(p float64, max sim.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reorderProb = clamp01(p)
	if max < 1 {
		f.reorderProb = 0
		max = 0
	}
	f.reorderMax = max
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Stats returns a copy of the intervention counters.
func (f *FaultableTransport) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// channel returns the chain state for a link, creating it lazily from the
// per-link or default parameters. Callers hold f.mu.
func (f *FaultableTransport) channel(key [2]netem.NodeID) *geChannel {
	if ch, ok := f.channels[key]; ok {
		return ch
	}
	params := f.lossDefault
	if p, ok := f.lossLinks[key]; ok {
		params = p
	}
	if params == nil {
		return nil
	}
	//lint:allow noalloc-closure one Gilbert-Elliott channel per link, built lazily on first use and cached
	ch := &geChannel{params: *params}
	f.channels[key] = ch
	return ch
}

// Send implements netem.Transport. Fault decisions happen at send time:
// a message en route when a partition starts still arrives, exactly as on
// a physical network.
func (f *FaultableTransport) Send(from, to netem.NodeID, payload []byte) error {
	f.mu.Lock()
	f.stats.Intercepted++
	if f.muted[from] {
		f.stats.DroppedMuted++
		f.mu.Unlock()
		return nil
	}
	key := [2]netem.NodeID{from, to}
	if f.partitioned[from] || f.partitioned[to] || f.linkDown[key] {
		f.stats.DroppedPartition++
		f.mu.Unlock()
		return nil
	}
	if ch := f.channel(key); ch != nil && ch.Lose(f.rng) {
		f.stats.DroppedLoss++
		f.mu.Unlock()
		return nil
	}
	copies := 1
	if f.dupProb > 0 && f.rng.Float64() < f.dupProb {
		copies = 2
		f.stats.Duplicated++
	}
	lat := f.delayAll
	if d, ok := f.delayLinks[key]; ok {
		lat = d
	}
	var delayBuf [2]sim.Time
	delays := delayBuf[:copies]
	for i := range delays {
		if f.reorderProb > 0 && f.rng.Float64() < f.reorderProb {
			delays[i] = 1 + sim.Time(f.rng.Int63n(int64(f.reorderMax)))
			f.stats.Delayed++
		}
		if lat.max > 0 {
			extra := lat.min
			if span := int64(lat.max - lat.min); span > 0 {
				extra += sim.Time(f.rng.Int63n(span + 1))
			}
			if extra > 0 {
				delays[i] += extra
				f.stats.Slowed++
			}
		}
	}
	f.mu.Unlock()

	var firstErr error
	for _, d := range delays {
		if d == 0 {
			if err := f.inner.Send(from, to, payload); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		// The caller may reuse payload after Send returns; the delayed
		// copy needs its own buffer.
		//lint:allow noalloc-closure delayed delivery copies the payload because the caller may reuse its buffer after Send returns
		data := append([]byte(nil), payload...)
		//lint:allow noalloc-closure per-delayed-delivery timer closure; fault-delayed sends are off the steady-state path
		f.tick.AfterTicks(d, func() {
			if err := f.inner.Send(from, to, data); err != nil {
				f.mu.Lock()
				f.stats.SendErrors++
				f.mu.Unlock()
			}
		})
	}
	return firstErr
}

// Broadcast implements netem.Transport as independent unicasts through
// the fault layer, in ascending ID order for determinism.
func (f *FaultableTransport) Broadcast(from netem.NodeID, payload []byte) error {
	f.mu.Lock()
	ids := append([]netem.NodeID(nil), f.ids...)
	f.mu.Unlock()
	for _, to := range ids {
		if to == from {
			continue
		}
		if err := f.Send(from, to, payload); err != nil {
			return fmt.Errorf("faults: broadcast %d→%d: %w", from, to, err)
		}
	}
	return nil
}
