package conform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netem"
)

// Mutation returns a machine wrapper injecting a named, deliberate defect
// into the detector — the classic mutation-testing check that the
// conformance layer actually catches timing bugs:
//
//   - "expiry+1": every participant arms its inactivation watchdog one
//     tick late. Caught as a stuck-time divergence: once beats stop (crash
//     p[0]), the model forces "inactivate nv p[i]" at the bound, and the
//     runtime produces nothing for one more tick.
//   - "round-1": the coordinator arms its round timer one tick early.
//     Caught as an unexpected "timeout p[0]": the model's timeout guard
//     requires the full round to elapse.
func Mutation(name string) (func(netem.NodeID, core.Machine) core.Machine, error) {
	switch name {
	case "":
		return nil, nil
	case "expiry+1":
		return func(id netem.NodeID, m core.Machine) core.Machine {
			if id == netem.NodeID(core.CoordinatorID) {
				return m
			}
			return &skewMachine{inner: m, timer: core.TimerExpiry, delta: 1}
		}, nil
	case "round-1":
		return func(id netem.NodeID, m core.Machine) core.Machine {
			if id != netem.NodeID(core.CoordinatorID) {
				return m
			}
			return &skewMachine{inner: m, timer: core.TimerRound, delta: -1}
		}, nil
	default:
		return nil, fmt.Errorf("conform: unknown mutation %q (have expiry+1, round-1)", name)
	}
}

// skewMachine shifts every SetTimer of one timer ID by delta ticks
// (clamped to at least one tick, so a skewed machine cannot busy-loop the
// simulator), leaving the wrapped machine otherwise untouched.
type skewMachine struct {
	inner core.Machine
	timer core.TimerID
	delta core.Tick
}

func (m *skewMachine) skew(actions []core.Action) []core.Action {
	for i, a := range actions {
		if a.Kind == core.ActSetTimer && a.ID == m.timer {
			a.Delay += m.delta
			if a.Delay < 1 {
				a.Delay = 1
			}
			actions[i] = a
		}
	}
	return actions
}

func (m *skewMachine) Start(now core.Tick) []core.Action {
	return m.skew(m.inner.Start(now))
}

func (m *skewMachine) OnTimer(id core.TimerID, now core.Tick) []core.Action {
	return m.skew(m.inner.OnTimer(id, now))
}

func (m *skewMachine) OnBeat(b core.Beat, now core.Tick) []core.Action {
	return m.skew(m.inner.OnBeat(b, now))
}

func (m *skewMachine) Crash(now core.Tick) []core.Action {
	return m.skew(m.inner.Crash(now))
}

func (m *skewMachine) Status() core.Status { return m.inner.Status() }
