package conform

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/sim"
)

// checkRun executes one run and requires conformance, dumping the trace
// and divergence report on failure.
func checkRun(t *testing.T, rc RunConfig) {
	t.Helper()
	sp, err := BuildSpec(rc.Model, mc.Options{})
	if err != nil {
		t.Fatalf("BuildSpec: %v", err)
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := sp.CheckTrace(out.Events, rc.Horizon); d != nil {
		var b strings.Builder
		if err := d.Render(&b, "divergence"); err != nil {
			t.Fatalf("render: %v", err)
		}
		t.Fatalf("divergence:\n%s", b.String())
	}
}

func TestConformCleanBinary(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		rc := RunConfig{
			Model:   models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: fixed},
			Seed:    1,
			Horizon: 24,
		}
		checkRun(t, rc)
	}
}

func TestConformCleanAllVariantsSmoke(t *testing.T) {
	for _, v := range []models.Variant{
		models.Binary, models.RevisedBinary, models.TwoPhase,
		models.Static, models.Expanding, models.Dynamic,
	} {
		n := 1
		if v == models.Static {
			n = 2
		}
		rc := RunConfig{
			Model:   models.Config{TMin: 1, TMax: 2, Variant: v, N: n, Fixed: true},
			Seed:    7,
			Horizon: 15,
		}
		checkRun(t, rc)
	}
}

func TestConformCrashScheduleBinary(t *testing.T) {
	rc := RunConfig{
		Model: models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true},
		Seed:  3,
		Schedule: &faults.Schedule{Events: []faults.Event{
			{At: 9, Kind: faults.KindCrash, Node: 0},
		}},
		Horizon: 30,
	}
	checkRun(t, rc)
}

// TestConformMutantExpiryCaught pins the mutation-testing acceptance
// criterion: a detector whose participant watchdog fires one tick late is
// caught by trace inclusion as a stuck-time divergence — the model forces
// "inactivate nv p[1]" at the bound, the mutant stays silent.
func TestConformMutantExpiryCaught(t *testing.T) {
	wrap, err := Mutation("expiry+1")
	if err != nil {
		t.Fatal(err)
	}
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	rc := RunConfig{
		Model: model,
		Seed:  3,
		Schedule: &faults.Schedule{Events: []faults.Event{
			{At: 9, Kind: faults.KindCrash, Node: 0},
		}},
		Horizon: 30,
		Wrap:    wrap,
	}
	sp, err := BuildSpec(model, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	d := sp.CheckTrace(out.Events, rc.Horizon)
	if d == nil {
		t.Fatal("mutant expiry+1 not caught")
	}
	if d.Label != LabelTick {
		t.Fatalf("expected stuck-time divergence, got label %q", d.Label)
	}
	found := false
	for _, e := range d.Expected {
		if e == "inactivate nv p[1]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the model to force inactivate nv p[1]; allows %v", d.Expected)
	}
}

// TestConformMutantRoundEarlyCaught: a coordinator that times out one
// tick early produces a "timeout p[0]" the model's guard forbids.
func TestConformMutantRoundEarlyCaught(t *testing.T) {
	wrap, err := Mutation("round-1")
	if err != nil {
		t.Fatal(err)
	}
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	rc := RunConfig{Model: model, Seed: 3, Horizon: 20, Wrap: wrap}
	sp, err := BuildSpec(model, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	d := sp.CheckTrace(out.Events, rc.Horizon)
	if d == nil {
		t.Fatal("mutant round-1 not caught")
	}
}

func TestCheckScheduleRejectsUnsupported(t *testing.T) {
	s := &faults.Schedule{Events: []faults.Event{
		{At: 1, Kind: faults.KindDrift, Node: 1, Num: 2, Den: 1},
	}}
	if err := CheckSchedule(s); err == nil {
		t.Fatal("drift schedule accepted")
	}
	rc := RunConfig{
		Model:    models.Config{TMin: 1, TMax: 2, Variant: models.Binary, N: 1, Fixed: true},
		Schedule: s, Horizon: 10,
	}
	if _, err := Run(rc); err == nil {
		t.Fatal("Run accepted a drift schedule")
	}
}

func TestEvaluateTraceR1(t *testing.T) {
	cfg := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	bound := core.Tick(cfg.DetectionBound()) // 8
	// p[1] delivers once at t=2, then goes silent; p[0] stays active
	// beyond the bound.
	events := []Event{
		{Time: 2, Label: "deliver beat to p[0] from p[1]"},
	}
	tv := EvaluateTrace(cfg, events, 0, 2+bound+4)
	if len(tv.ByProp(models.R1)) != 1 {
		t.Fatalf("want one R1 violation, got %+v", tv.Violations)
	}
	if got := tv.ByProp(models.R1)[0].Time; got != 2+bound+1 {
		t.Fatalf("R1 violation at t=%d, want %d", got, 2+bound+1)
	}
	// Same trace, but p[0] inactivates within the bound: clean.
	events2 := append(events, Event{Time: 2 + bound, Label: "inactivate nv p[0]"})
	tv2 := EvaluateTrace(cfg, events2, 0, 2+bound+4)
	if len(tv2.ByProp(models.R1)) != 0 {
		t.Fatalf("unexpected R1 violation: %+v", tv2.Violations)
	}
	// And an R3 violation: p[0] nv-inactivated while p[1] fine... but
	// p[1] was silent, so only when p[1] is still OK. Here p[1] never
	// crashed, so the R3 premise holds on a loss-free run.
	if len(tv2.ByProp(models.R3)) != 1 {
		t.Fatalf("want one R3 violation, got %+v", tv2.Violations)
	}
	// Lossy run: R3 vacuous.
	tv3 := EvaluateTrace(cfg, events2, 1, 2+bound+4)
	if len(tv3.ByProp(models.R3)) != 0 {
		t.Fatalf("R3 must be vacuous under loss: %+v", tv3.Violations)
	}
}

func TestRecorderResetAndEvents(t *testing.T) {
	rc := RunConfig{
		Model:   models.Config{TMin: 1, TMax: 2, Variant: models.Binary, N: 1, Fixed: true},
		Seed:    1,
		Horizon: 8,
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) == 0 {
		t.Fatal("no events recorded")
	}
	var last core.Tick
	for _, ev := range out.Events {
		if ev.Time < last {
			t.Fatalf("events out of order: %+v", out.Events)
		}
		last = ev.Time
	}
	if out.Lost != 0 {
		t.Fatalf("unexpected losses: %d", out.Lost)
	}
	_ = sim.Time(0) // keep the import honest if assertions above change
}
