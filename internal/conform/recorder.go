package conform

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/netem"
)

// Recorder abstracts detector machine steps into model-alphabet events.
// It implements detector.Observer; attach it via Config.Observe or
// ClusterConfig.Observe. Safe for concurrent use (wall-clock nodes call
// from timer goroutines).
//
// Events outside the model alphabet — graceful leaves, restarts, rejoins,
// stray beats — are recorded under honest non-model labels, so the
// checker reports them as divergences instead of silently dropping them.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns a copy of the recorded trace.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Reset clears the recorded trace.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// ObserveStep implements detector.Observer.
//
//lint:allow noalloc-closure the recording observer allocates trace labels by design; conformance runs trade allocations for checking
func (r *Recorder) ObserveStep(id netem.NodeID, now core.Tick, tr detector.Trigger, actions []core.Action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	abstractStep(func(label string) {
		r.events = append(r.events, Event{Time: now, Label: label})
	}, id, tr, actions)
}

// abstractStep maps one machine step (trigger plus returned actions) onto
// zero or more model-alphabet labels, emitted through add in order. It is
// the single abstraction shared by the Recorder (which retains events)
// and the StreamChecker (which checks and discards them), so the two
// observers cannot disagree about what a step means.
func abstractStep(add func(string), id netem.NodeID, tr detector.Trigger, actions []core.Action) {
	coord := id == netem.NodeID(core.CoordinatorID)

	switch tr.Kind {
	case detector.TriggerBeat:
		// The delivery itself is observable regardless of the machine's
		// reaction: the model delivers to inactive processes too (their
		// receive self-loops consume the beat).
		b := tr.Beat
		switch {
		case coord && b.Stay:
			add(labelDeliverToP0(int(b.From)))
		case coord:
			add(labelDeliverLeaveToP0(int(b.From)))
		case b.From == core.CoordinatorID && b.Stay:
			add(labelDeliverToP(int(id)))
		case b.From == core.CoordinatorID:
			// The coordinator's directed leave acknowledgement; no model
			// counterpart (the model's leaver concludes from its own beat).
			add(fmt.Sprintf("deliver leave ack to %s", pname(int(id))))
		default:
			add(fmt.Sprintf("deliver stray beat to %s from %s", pname(int(id)), pname(int(b.From))))
		}
		addReactions(add, id, tr, actions)

	case detector.TriggerTimer:
		if coord && tr.Timer == core.TimerRound {
			if len(actions) == 0 {
				return // stale fire on an inactive machine
			}
			add(labelTimeoutP0)
		}
		addReactions(add, id, tr, actions)

	case detector.TriggerStart:
		addReactions(add, id, tr, actions)

	case detector.TriggerCrash:
		for _, a := range actions {
			if a.Kind == core.ActInactivate && a.Voluntary {
				add(labelCrash(int(id)))
			}
		}

	case detector.TriggerLeave:
		add(labelDecideLeave(int(id)))
		addReactions(add, id, tr, actions)

	case detector.TriggerRejoin:
		add(fmt.Sprintf("%s: rejoin", pname(int(id))))
		addReactions(add, id, tr, actions)

	case detector.TriggerRestart:
		add(fmt.Sprintf("%s: restart", pname(int(id))))
		addReactions(add, id, tr, actions)
	}
}

// addReactions records the observable actions of one machine step: sends,
// inactivations and retunes. Suspect/Joined/Left notifications and timer
// (re)arming are not part of the model's trace alphabet — except that the
// coordinator's round continuation is keyed off SetTimer{TimerRound},
// because the model broadcasts "p[0]: send beat" even to an empty
// membership while the runtime's send loop then emits nothing.
func addReactions(add func(string), id netem.NodeID, tr detector.Trigger, actions []core.Action) {
	coord := id == netem.NodeID(core.CoordinatorID)
	sentBeat := false
	for _, act := range actions {
		switch act.Kind {
		case core.ActSendBeat:
			switch {
			case coord && act.Beat.Stay:
				// Coalesce the per-member unicasts of one round into the
				// model's single broadcast. Emitted via the SetTimer key
				// below for timeouts; directly for the revised init.
				if tr.Kind != detector.TriggerTimer && !sentBeat {
					sentBeat = true
					add(labelSendBeat(0))
				}
			case coord:
				add(fmt.Sprintf("p[0]: send leave ack to %s", pname(int(act.To))))
			case act.Beat.Stay:
				if tr.Kind == detector.TriggerBeat {
					add(labelSendBeat(int(id))) // reply to a delivered beat
				} else {
					add(labelSendJoin(int(id))) // join solicitation (start or resend)
				}
			default:
				add(labelSendLeave(int(id)))
			}
		case core.ActSetTimer:
			if coord && act.ID == core.TimerRound && tr.Kind == detector.TriggerTimer && !sentBeat {
				sentBeat = true
				add(labelSendBeat(0))
			}
		case core.ActRetune:
			add(labelRetune(act.TMin, act.TMax))
		case core.ActInactivate:
			if act.Voluntary {
				add(labelCrash(int(id)))
			} else {
				add(labelInactivate(int(id)))
			}
		}
	}
}
