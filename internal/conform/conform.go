// Package conform checks the detector runtime against the timed-automata
// models: a differential, trace-based conformance layer in the spirit of
// runtime verification of distributed protocols.
//
// The pieces:
//
//   - A Recorder (a detector.Observer) abstracts every machine step of a
//     running cluster into the event alphabet internal/models uses for LTS
//     labels — "p[0]: send beat", "deliver beat to p[1]", "timeout p[0]",
//     "inactivate nv p[1]", … — with virtual timestamps. It works over any
//     clock; under the discrete-event simulator the recorded order is the
//     execution order.
//   - A Spec is the variant's model LTS (built monitor-free via
//     mc.BuildLTS) with unobservable labels hidden and the join-delivery
//     labels merged into the plain delivery labels (the wire does not
//     distinguish them). Spec.CheckTrace replays a recorded trace by
//     antichain simulation: a frontier of model states is advanced through
//     tau-closure, "tick" steps for time passing, and the visible labels of
//     the trace. An empty frontier is a divergence — the runtime did
//     something (or let time pass) that no model execution matches — and is
//     reported with the consumed prefix as an ASCII message sequence chart.
//   - EvaluateTrace re-evaluates the paper's requirements R1–R3 directly
//     on a recorded trace, so chaos campaigns double as spec-conformance
//     runs, and DiffVerdicts cross-checks runtime verdicts against the
//     model checker's.
//   - Explore drives seeded random walks (randomised timing constants,
//     node counts, fault schedules) through all of the above and shrinks
//     failing runs to minimal schedules.
//
// Scope: message loss is unobservable at the runtime level (a lost beat
// leaves no event), so the checker tracks the lost-versus-in-flight
// ambiguity inside the frontier. Graceful leave and process restart are
// excluded from conformance runs: the runtime's leave protocol
// (leaver-initiated, with an out-of-band coordinator acknowledgement) is
// structurally different from the model's reply-piggybacked leave, and
// restart has no model counterpart. Their events carry honest non-model
// labels, so a trace containing them is reported as divergent rather than
// silently accepted.
//
// Adaptive clusters retune their timing constants inside a verified
// envelope; no single model covers such a run. CampaignCheck.
// CheckTraceAdaptive checks those traces piecewise: each segment against
// the specification of the envelope level in force, each retune confirmed
// against the envelope's level set, and the by-design non-model events
// above classified as confirmed divergences instead of failures.
package conform

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Event is one abstract runtime event: a model-alphabet label at a
// virtual time.
type Event struct {
	Time  core.Tick
	Label string
}

// LabelTick is the time-passing label of the model LTS. A Divergence with
// this label means the model forced a visible action at Time that the
// runtime did not produce.
const LabelTick = "tick"

func pname(i int) string { return fmt.Sprintf("p[%d]", i) }

// Label constructors for the shared runtime/model alphabet.
func labelDeliverToP0(from int) string {
	return fmt.Sprintf("deliver beat to p[0] from %s", pname(from))
}

func labelDeliverLeaveToP0(from int) string {
	return fmt.Sprintf("deliver leave beat to p[0] from %s", pname(from))
}

func labelDeliverToP(i int) string { return fmt.Sprintf("deliver beat to %s", pname(i)) }

func labelSendBeat(i int) string { return fmt.Sprintf("%s: send beat", pname(i)) }

func labelSendJoin(i int) string { return fmt.Sprintf("%s: send join beat", pname(i)) }

func labelSendLeave(i int) string { return fmt.Sprintf("%s: send leave beat", pname(i)) }

func labelDecideLeave(i int) string { return fmt.Sprintf("%s: decide leave", pname(i)) }

func labelInactivate(i int) string { return fmt.Sprintf("inactivate nv %s", pname(i)) }

func labelCrash(i int) string { return fmt.Sprintf("crash %s", pname(i)) }

const labelTimeoutP0 = "timeout p[0]"

// labelRetune is the adaptive coordinator's level transition. It is not
// part of any single model's alphabet — the piecewise checker
// (CheckTraceAdaptive) consumes it by switching to the specification of
// the target operating point.
const retunePrefix = "p[0]: retune to ("

func labelRetune(tmin, tmax core.Tick) string {
	return fmt.Sprintf("p[0]: retune to (%d,%d)", tmin, tmax)
}

// parseRetune extracts the operating point of a retune label. It is
// strict: the label must round-trip through labelRetune exactly. The
// earlier Sscanf implementation accepted trailing junk ("p[0]: retune to
// (2,4)x" parsed as a valid retune), which FuzzStreamChecker caught — a
// malformed label would have been confirmed as an envelope transition
// and reseeded the piecewise checker's frontier.
func parseRetune(label string) (int32, int32, bool) {
	// Cheap prefix reject first, in its own frame: the piecewise checker
	// calls this on every out-of-alphabet label, and the slow path's
	// Sscanf arguments escape (heap-allocating even on a miss) if they
	// share a frame with this check.
	if !strings.HasPrefix(label, retunePrefix) {
		return 0, 0, false
	}
	return parseRetuneSlow(label)
}

func parseRetuneSlow(label string) (tmin, tmax int32, ok bool) {
	n, err := fmt.Sscanf(label, "p[0]: retune to (%d,%d)", &tmin, &tmax)
	if err != nil || n != 2 || label != labelRetune(core.Tick(tmin), core.Tick(tmax)) {
		return 0, 0, false
	}
	return tmin, tmax, true
}

// parseLabel matches a label against a one-verb format like
// "crash p[%d]", extracting the process index.
func parseLabel(label, format string, proc *int) bool {
	n, err := fmt.Sscanf(label, format, proc)
	return err == nil && n == 1
}
