package conform

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mc"
	"repro/internal/models"
)

// specLabel maps a raw model-LTS label to the conformance alphabet. The
// second result is false for labels the runtime cannot observe, which
// become internal (tau) steps of the specification:
//
//   - the empty label and mc.Tau (internal model transitions, including
//     channel busy-drops),
//   - "p[0]: start" (the unrevised coordinator's silent init),
//   - every "lose …" label (loss leaves no runtime event; the checker
//     tracks lost-versus-delivered ambiguity in its frontier),
//   - "p[i] gives no reply" (an inactive responder consuming a beat on
//     the model's channel; the runtime-side delivery is recorded at the
//     node, not the channel),
//   - "p[i]: suppress duplicate join" (internal joiner bookkeeping),
//   - "error R1 …" (monitor transitions; specs are built monitor-free,
//     this is belt and braces).
//
// Join-beat deliveries to the coordinator are merged into the plain
// delivery label: on the wire a join solicitation is an ordinary beat,
// and the runtime cannot tell which model channel carried it.
func specLabel(label string) (string, bool) {
	switch {
	case label == "" || label == mc.Tau || label == "p[0]: start":
		return "", false
	case strings.HasPrefix(label, "lose "):
		return "", false
	case strings.HasSuffix(label, "gives no reply"):
		return "", false
	case strings.HasSuffix(label, "suppress duplicate join"):
		return "", false
	case strings.HasPrefix(label, "error R1"):
		return "", false
	case strings.HasPrefix(label, "deliver join beat "):
		return strings.Replace(label, "deliver join beat", "deliver beat", 1), true
	}
	return label, true
}

// visEdge is one visible transition: an interned label and a target state.
type visEdge struct {
	label, to int32
}

// Spec is a variant's model LTS prepared for trace-inclusion checking:
// monitor-free, with unobservable labels hidden, in CSR adjacency form.
type Spec struct {
	Cfg models.Config
	// NumStates and NumTransitions report the size of the underlying LTS.
	NumStates, NumTransitions int

	labelIDs   map[string]int32
	labelNames []string
	tickID     int32

	visOff []int32
	vis    []visEdge
	tauOff []int32
	tauTo  []int32
}

// BuildSpec builds the conformance specification for a model
// configuration. The R1 monitors are dropped (they are observers, not
// protocol behaviour, and their clocks inflate the state space).
func BuildSpec(cfg models.Config, opts mc.Options) (*Spec, error) {
	cfg.NoMonitor = true
	m, err := models.Build(cfg)
	if err != nil {
		return nil, err
	}
	lts, err := mc.BuildLTS(m.Net, opts)
	if err != nil {
		return nil, fmt.Errorf("conform: building %v LTS: %w", cfg.Variant, err)
	}
	if lts.Initial != 0 {
		return nil, fmt.Errorf("conform: unexpected initial state %d", lts.Initial)
	}

	sp := &Spec{
		Cfg:            cfg,
		NumStates:      lts.NumStates,
		NumTransitions: len(lts.Transitions),
		labelIDs:       make(map[string]int32, 32),
	}
	intern := func(name string) int32 {
		id, ok := sp.labelIDs[name]
		if !ok {
			id = int32(len(sp.labelNames))
			sp.labelNames = append(sp.labelNames, name)
			sp.labelIDs[name] = id
		}
		return id
	}
	sp.tickID = intern(LabelTick)

	// Two counting-sort passes build the CSR adjacency.
	visCount := make([]int32, lts.NumStates+1)
	tauCount := make([]int32, lts.NumStates+1)
	for _, t := range lts.Transitions {
		if _, vis := specLabel(t.Label); vis {
			visCount[t.From]++
		} else {
			tauCount[t.From]++
		}
	}
	sp.visOff = make([]int32, lts.NumStates+1)
	sp.tauOff = make([]int32, lts.NumStates+1)
	for s := 0; s < lts.NumStates; s++ {
		sp.visOff[s+1] = sp.visOff[s] + visCount[s]
		sp.tauOff[s+1] = sp.tauOff[s] + tauCount[s]
	}
	sp.vis = make([]visEdge, sp.visOff[lts.NumStates])
	sp.tauTo = make([]int32, sp.tauOff[lts.NumStates])
	visNext := append([]int32(nil), sp.visOff...)
	tauNext := append([]int32(nil), sp.tauOff...)
	for _, t := range lts.Transitions {
		if name, vis := specLabel(t.Label); vis {
			sp.vis[visNext[t.From]] = visEdge{label: intern(name), to: int32(t.To)}
			visNext[t.From]++
		} else {
			sp.tauTo[tauNext[t.From]] = int32(t.To)
			tauNext[t.From]++
		}
	}
	return sp, nil
}

// Alphabet returns the sorted visible labels of the specification.
func (sp *Spec) Alphabet() []string {
	out := append([]string(nil), sp.labelNames...)
	sort.Strings(out)
	return out
}
