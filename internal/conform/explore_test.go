package conform

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/mc"
	"repro/internal/models"
)

// TestExploreSmallCampaign runs a miniature walk campaign end to end and
// checks the books balance: every walk is either clean or a failure, and
// the campaign is deterministic in its seed.
func TestExploreSmallCampaign(t *testing.T) {
	ec := ExploreConfig{Variant: models.Binary, Walks: 6, Seed: 2, Shrink: true}
	res, err := ec.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks != 6 || res.Clean+len(res.Failures) != 6 {
		t.Fatalf("books don't balance: %+v", res)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("healthy detector failed a walk: %+v", res.Failures[0])
	}
	if res.Events == 0 {
		t.Fatal("no events recorded across the campaign")
	}
	again, err := ec.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if again.Clean != res.Clean || again.Events != res.Events ||
		again.ConsistentViolations != res.ConsistentViolations {
		t.Fatalf("campaign not deterministic: %+v vs %+v", res, again)
	}
}

// TestExploreWorkersDeterminism pins the campaign contract: any Workers
// count produces the same campaign result as a sequential run.
func TestExploreWorkersDeterminism(t *testing.T) {
	base := ExploreConfig{Variant: models.Binary, Walks: 8, Seed: 5, Shrink: true, Workers: 1}
	want, err := base.Explore()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		ec := base
		ec.Workers = workers
		got, err := ec.Explore()
		if err != nil {
			t.Fatalf("Explore(workers=%d): %v", workers, err)
		}
		if got.Walks != want.Walks || got.Clean != want.Clean ||
			got.Events != want.Events ||
			got.ConsistentViolations != want.ConsistentViolations ||
			len(got.Failures) != len(want.Failures) {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, want)
		}
	}
}

// TestShrinkRunMinimisesMutant shrinks the expiry+1 repro: the padded
// link-failure event is irrelevant and must be dropped, the crash is
// load-bearing and must survive, and the horizon is trimmed to just past
// the divergence.
func TestShrinkRunMinimisesMutant(t *testing.T) {
	wrap, err := Mutation("expiry+1")
	if err != nil {
		t.Fatal(err)
	}
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	rc := RunConfig{
		Model: model,
		Seed:  3,
		Schedule: &faults.Schedule{Events: []faults.Event{
			{At: 25, Kind: faults.KindLinkDown, From: 1, To: 0},
			{At: 9, Kind: faults.KindCrash, Node: 0},
			{At: 27, Kind: faults.KindLinkUp, From: 1, To: 0},
		}},
		Horizon: 40,
		Wrap:    wrap,
	}
	sp, err := BuildSpec(model, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shrunk, div, err := ShrinkRun(rc, sp)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("shrunk run no longer diverges")
	}
	if n := len(shrunk.Schedule.Events); n != 1 || shrunk.Schedule.Events[0].Kind != faults.KindCrash {
		t.Fatalf("shrink kept %d events: %+v", n, shrunk.Schedule.Events)
	}
	if shrunk.Horizon != div.Time+1 {
		t.Fatalf("horizon %d not trimmed to %d", shrunk.Horizon, div.Time+1)
	}

	// The report surface: Error() names the stuck time, Render draws the
	// MSC prefix plus the model's allowed set.
	if msg := div.Error(); !strings.Contains(msg, "stuck") && !strings.Contains(msg, "diverge") {
		t.Fatalf("unhelpful divergence error: %q", msg)
	}
	var b strings.Builder
	if err := div.Render(&b, "shrunk divergence"); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"shrunk divergence", "model allows", "inactivate nv p[1]"} {
		if !strings.Contains(b.String(), frag) {
			t.Fatalf("render missing %q:\n%s", frag, b.String())
		}
	}

	// A healthy run refuses to shrink.
	if _, _, err := ShrinkRun(RunConfig{Model: model, Seed: 3, Horizon: 20}, sp); err == nil {
		t.Fatal("ShrinkRun accepted a conforming run")
	}
}

func TestDiffVerdicts(t *testing.T) {
	cfg := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	tv := TraceVerdicts{LossFree: true, Violations: []ReqViolation{
		{Prop: models.R1, Proc: 1, Time: 11},
	}}
	calls := 0
	fake := func(satisfied bool) VerifyFunc {
		return func(models.Config, models.Property) (models.Verdict, error) {
			calls++
			return models.Verdict{Satisfied: satisfied}, nil
		}
	}
	diffs, err := DiffVerdicts(cfg, tv, fake(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !diffs[0].Mismatch || diffs[0].Prop != models.R1 {
		t.Fatalf("diffs = %+v", diffs)
	}
	diffs, err = DiffVerdicts(cfg, tv, fake(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || diffs[0].Mismatch {
		t.Fatalf("consistent violation flagged as mismatch: %+v", diffs)
	}
	// Properties without runtime violations are never model-checked.
	if calls != 2 {
		t.Fatalf("verify called %d times, want 2", calls)
	}
}

func TestSpecAlphabetAndCampaignCheck(t *testing.T) {
	check := &CampaignCheck{Model: models.Config{TMin: 1, TMax: 2, Variant: models.Binary, N: 1, Fixed: true}}
	sp, err := check.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if sp2, _ := check.Spec(); sp2 != sp {
		t.Fatal("CampaignCheck rebuilt the spec")
	}
	alpha := sp.Alphabet()
	for _, want := range []string{LabelTick, "timeout p[0]", "p[0]: send beat",
		"deliver beat to p[1]", "deliver beat to p[0] from p[1]", "inactivate nv p[1]"} {
		found := false
		for _, a := range alpha {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("alphabet missing %q: %v", want, alpha)
		}
	}
	if _, err := ClusterFor(models.Config{TMin: 1, TMax: 2, Variant: models.Binary, N: 1, FixBounds: true}); err == nil {
		t.Fatal("ablation config accepted")
	}
}

// TestLabelConstructors pins the event vocabulary against its parser: the
// verdict monitors rely on parseLabel inverting every constructor.
func TestLabelConstructors(t *testing.T) {
	var proc int
	for _, tc := range []struct {
		label, format string
		proc          int
	}{
		{labelDeliverToP0(3), "deliver beat to p[0] from p[%d]", 3},
		{labelDeliverLeaveToP0(2), "deliver leave beat to p[0] from p[%d]", 2},
		{labelDeliverToP(4), "deliver beat to p[%d]", 4},
		{labelSendJoin(1), "p[%d]: send join beat", 1},
		{labelSendLeave(5), "p[%d]: send leave beat", 5},
		{labelDecideLeave(6), "p[%d]: decide leave", 6},
		{labelInactivate(7), "inactivate nv p[%d]", 7},
		{labelCrash(8), "crash p[%d]", 8},
	} {
		if !parseLabel(tc.label, tc.format, &proc) || proc != tc.proc {
			t.Fatalf("parseLabel(%q, %q) failed (proc=%d)", tc.label, tc.format, proc)
		}
	}
	if parseLabel(labelSendBeat(1), "deliver beat to p[%d]", &proc) {
		t.Fatal("parseLabel matched the wrong shape")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.ObserveStep(1, 3, detector.Trigger{Kind: detector.TriggerCrash},
		[]core.Action{core.Inactivate(true)})
	if ev := r.Events(); len(ev) != 1 || ev[0].Label != labelCrash(1) || ev[0].Time != 3 {
		t.Fatalf("events = %v", ev)
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("reset did not clear events")
	}
}

// TestSkewMachineClamp: the mutation wrapper clamps skewed delays to one
// tick so a mutant cannot busy-loop the simulator, and passes everything
// else through.
func TestSkewMachineClamp(t *testing.T) {
	inner := fakeMachine{actions: []core.Action{
		core.SetTimer(core.TimerExpiry, 1),
		core.SetTimer(core.TimerRound, 5),
	}}
	sk := &skewMachine{inner: inner, timer: core.TimerExpiry, delta: -3}
	for _, acts := range [][]core.Action{
		sk.Start(0), sk.OnTimer(core.TimerExpiry, 1), sk.OnBeat(core.Beat{}, 2), sk.Crash(3),
	} {
		if acts[0].Delay != 1 {
			t.Fatalf("clamped delay = %d, want 1", acts[0].Delay)
		}
		if acts[1].Delay != 5 {
			t.Fatalf("other timer skewed: %d", acts[1].Delay)
		}
	}
	if sk.Status() != core.StatusActive {
		t.Fatalf("status = %v", sk.Status())
	}
}

type fakeMachine struct{ actions []core.Action }

func (f fakeMachine) Start(core.Tick) []core.Action { return append([]core.Action(nil), f.actions...) }
func (f fakeMachine) OnTimer(core.TimerID, core.Tick) []core.Action {
	return append([]core.Action(nil), f.actions...)
}
func (f fakeMachine) OnBeat(core.Beat, core.Tick) []core.Action {
	return append([]core.Action(nil), f.actions...)
}
func (f fakeMachine) Crash(core.Tick) []core.Action { return append([]core.Action(nil), f.actions...) }
func (f fakeMachine) Status() core.Status           { return core.StatusActive }
