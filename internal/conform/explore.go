package conform

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/netem"
	"repro/internal/sim"
)

// ExploreConfig drives a seeded random-walk conformance campaign for one
// variant: many short deterministic runs with randomised timing
// constants, node counts, link delays and fault schedules, each recorded
// and checked for trace inclusion plus R1–R3 verdict consistency.
type ExploreConfig struct {
	Variant models.Variant
	// Walks is the number of runs (default 100).
	Walks int
	// Seed makes the whole campaign deterministic: walk w derives its
	// parameters from Seed and w alone.
	Seed int64
	// MaxStates bounds each specification LTS (0: mc's default).
	MaxStates int
	// Shrink minimises failing runs (drop schedule events, trim horizon,
	// zero link delay) before reporting.
	Shrink bool
	// Verify overrides the model-checking backend for verdict diffing;
	// nil uses models.Verify, cached per (config, property). With Workers
	// above one, a custom Verify is serialised behind a mutex.
	Verify VerifyFunc
	// Workers is the number of concurrent walks; values below 2 run the
	// campaign on the calling goroutine. The result is identical at any
	// worker count: each walk derives its parameters from Seed and its
	// index alone, and outcomes are aggregated in walk order.
	Workers int
}

// WalkFailure is one non-conforming walk.
type WalkFailure struct {
	Walk int
	Run  RunConfig
	// Div is the trace divergence (nil for pure verdict mismatches).
	Div *Divergence
	// Mismatches are verdict diffs where the runtime violated a property
	// the model checker proves satisfied.
	Mismatches []VerdictDiff
	// Shrunk is the minimised reproduction, when shrinking was on and
	// succeeded; ShrunkDiv is its divergence.
	Shrunk    *RunConfig
	ShrunkDiv *Divergence
}

// ExploreResult summarises a campaign.
type ExploreResult struct {
	Variant models.Variant
	Walks   int
	// Clean counts fully conforming walks.
	Clean int
	// Events counts recorded events across all walks.
	Events int
	// ConsistentViolations counts runtime requirement violations that the
	// model checker confirms are possible in the model too — expected for
	// unfixed configurations, and evidence the verdict monitors fire.
	ConsistentViolations int
	Failures             []WalkFailure
}

// specCache deduplicates specification builds across concurrent walks:
// the first walk to request a model config builds its Spec; every other
// walk blocks on that build through the entry's once.
type specCache struct {
	mu      sync.Mutex
	opts    mc.Options
	entries map[models.Config]*specEntry
}

type specEntry struct {
	once sync.Once
	sp   *Spec
	err  error
}

func (c *specCache) get(cfg models.Config) (*Spec, error) {
	c.mu.Lock()
	e, ok := c.entries[cfg]
	if !ok {
		e = &specEntry{}
		c.entries[cfg] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.sp, e.err = BuildSpec(cfg, c.opts) })
	return e.sp, e.err
}

// cachedVerify wraps models.Verify with a per-(config, property) cache
// safe for concurrent walks; like specCache, concurrent requests for the
// same key share one model-checking run.
func cachedVerify(opts mc.Options) VerifyFunc {
	type vkey struct {
		cfg  models.Config
		prop models.Property
	}
	type ventry struct {
		once sync.Once
		v    models.Verdict
		err  error
	}
	var mu sync.Mutex
	cache := make(map[vkey]*ventry)
	return func(cfg models.Config, p models.Property) (models.Verdict, error) {
		k := vkey{cfg, p}
		mu.Lock()
		e, ok := cache[k]
		if !ok {
			e = &ventry{}
			cache[k] = e
		}
		mu.Unlock()
		e.once.Do(func() { e.v, e.err = models.Verify(cfg, p, opts) })
		return e.v, e.err
	}
}

// walkOutcome is one walk's contribution to the campaign result.
type walkOutcome struct {
	clean      bool
	events     int
	consistent int
	fail       *WalkFailure
	err        error
}

// Explore runs the campaign. It returns an error only for infrastructure
// failures (spec construction, broken schedules); non-conformance lands
// in the result's Failures.
func (ec ExploreConfig) Explore() (*ExploreResult, error) {
	walks := ec.Walks
	if walks <= 0 {
		walks = 100
	}
	opts := mc.Options{MaxStates: ec.MaxStates}
	specs := &specCache{opts: opts, entries: make(map[models.Config]*specEntry)}
	verify := ec.Verify
	switch {
	case verify == nil:
		verify = cachedVerify(opts)
	case ec.Workers > 1:
		// A caller-supplied backend makes no thread-safety promise.
		var mu sync.Mutex
		inner := verify
		verify = func(cfg models.Config, p models.Property) (models.Verdict, error) {
			mu.Lock()
			defer mu.Unlock()
			return inner(cfg, p)
		}
	}

	runWalk := func(w int) walkOutcome {
		rng := rand.New(rand.NewSource(ec.Seed + int64(w)*0x9e3779b97f4a7c))
		rc := walkRun(ec.Variant, rng)
		sp, err := specs.get(rc.Model)
		if err != nil {
			return walkOutcome{err: err}
		}
		out, err := Run(rc)
		if err != nil {
			return walkOutcome{err: fmt.Errorf("conform: walk %d: %w", w, err)}
		}
		o := walkOutcome{events: len(out.Events)}
		div := sp.CheckTrace(out.Events, rc.Horizon)
		tv := EvaluateTrace(rc.Model, out.Events, out.Lost, rc.Horizon)
		diffs, err := DiffVerdicts(rc.Model, tv, verify)
		if err != nil {
			return walkOutcome{err: fmt.Errorf("conform: walk %d: %w", w, err)}
		}
		var mismatches []VerdictDiff
		for _, d := range diffs {
			if d.Mismatch {
				mismatches = append(mismatches, d)
			} else {
				o.consistent += len(d.Runtime)
			}
		}
		if div == nil && len(mismatches) == 0 {
			o.clean = true
			return o
		}
		fail := &WalkFailure{Walk: w, Run: rc, Div: div, Mismatches: mismatches}
		if ec.Shrink && div != nil {
			if shrunk, sdiv, err := ShrinkRun(rc, sp); err == nil {
				fail.Shrunk, fail.ShrunkDiv = &shrunk, sdiv
			}
		}
		o.fail = fail
		return o
	}

	outs := make([]walkOutcome, walks)
	if workers := min(ec.Workers, walks); workers > 1 {
		// Workers claim walk indices from an atomic counter and write into
		// per-walk slots; aggregation below runs in walk order, so the
		// result is independent of claim interleaving.
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					w := int(next.Add(1)) - 1
					if w >= walks {
						return
					}
					outs[w] = runWalk(w)
				}
			}()
		}
		wg.Wait()
	} else {
		for w := 0; w < walks; w++ {
			outs[w] = runWalk(w)
			if outs[w].err != nil {
				break // later slots stay zero; aggregation stops here anyway
			}
		}
	}

	res := &ExploreResult{Variant: ec.Variant, Walks: walks}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Events += o.events
		res.ConsistentViolations += o.consistent
		if o.clean {
			res.Clean++
		}
		if o.fail != nil {
			res.Failures = append(res.Failures, *o.fail)
		}
	}
	return res, nil
}

// walkTimings are the (tmin, tmax) pairs walks draw from: small enough to
// keep specification LTSes cheap, varied enough to exercise the timing
// boundaries.
var walkTimings = [...][2]int32{{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {2, 4}}

// walkRun derives one run's parameters from the walk's rng.
func walkRun(variant models.Variant, rng *rand.Rand) RunConfig {
	tm := walkTimings[rng.Intn(len(walkTimings))]
	n := 1
	// Two participants only for the static variant: its N=2 LTS stays
	// around 10^5 states, while the expanding/dynamic join machinery
	// pushes N=2 into the tens of millions (minutes per spec build).
	// Static N=2 covers multi-participant interleaving; the join protocol
	// is exercised at N=1.
	if variant == models.Static {
		n = 1 + rng.Intn(2)
	}
	fixed := rng.Intn(2) == 0
	// Random link delay only under the fixed semantics: there both the
	// runtime (timer requeue) and the model (receive priority) order
	// same-instant deliveries before timeouts. Unfixed, FIFO scheduling
	// can resolve that race differently than the model's busy-dropping
	// capacity-one channel — a known modelling gap, not a detector bug.
	var maxDelay core.Tick
	if fixed && tm[0] >= 2 && rng.Intn(2) == 0 {
		maxDelay = core.Tick(tm[0] / 2)
	}
	horizon := core.Tick(6*int(tm[1]) + rng.Intn(8))
	return RunConfig{
		Model: models.Config{
			TMin: tm[0], TMax: tm[1],
			Variant: variant, N: n, Fixed: fixed,
		},
		Seed:     rng.Int63(),
		Horizon:  horizon,
		MaxDelay: maxDelay,
		Schedule: walkSchedule(rng, n, horizon),
	}
}

// walkSchedule draws 0–2 model-compatible fault events.
func walkSchedule(rng *rand.Rand, n int, horizon core.Tick) *faults.Schedule {
	num := rng.Intn(3)
	if num == 0 {
		return nil
	}
	s := &faults.Schedule{Seed: rng.Int63()}
	for k := 0; k < num; k++ {
		at := sim.Time(rng.Intn(int(horizon)))
		switch rng.Intn(4) {
		case 0:
			s.Events = append(s.Events, faults.Event{
				At: at, Kind: faults.KindCrash, Node: netem.NodeID(rng.Intn(n + 1)),
			})
		case 1:
			ge := faults.GilbertElliott{
				PGoodBad: 0.2 + 0.3*rng.Float64(),
				PBadGood: 0.3 + 0.5*rng.Float64(),
				LossGood: 0,
				LossBad:  0.5 + 0.5*rng.Float64(),
			}
			s.Events = append(s.Events, faults.Event{
				At: at, Kind: faults.KindLoss, AllLinks: true, GE: &ge,
			})
		case 2:
			p := netem.NodeID(1 + rng.Intn(n))
			from, to := netem.NodeID(0), p
			if rng.Intn(2) == 0 {
				from, to = p, netem.NodeID(0)
			}
			s.Events = append(s.Events,
				faults.Event{At: at, Kind: faults.KindLinkDown, From: from, To: to},
				faults.Event{At: at + sim.Time(1+rng.Intn(6)), Kind: faults.KindLinkUp, From: from, To: to},
			)
		default:
			node := netem.NodeID(rng.Intn(n + 1))
			s.Events = append(s.Events,
				faults.Event{At: at, Kind: faults.KindPartition, Node: node},
				faults.Event{At: at + sim.Time(1+rng.Intn(6)), Kind: faults.KindHeal, Node: node},
			)
		}
	}
	return s
}

// ShrinkRun minimises a failing run while it keeps diverging: greedily
// drop schedule events, then trim the horizon to just past the
// divergence, then zero the link delay. Runs are deterministic, so every
// candidate is simply re-executed.
func ShrinkRun(rc RunConfig, sp *Spec) (RunConfig, *Divergence, error) {
	fails := func(c RunConfig) *Divergence {
		out, err := Run(c)
		if err != nil {
			return nil
		}
		return sp.CheckTrace(out.Events, c.Horizon)
	}
	best := rc
	div := fails(best)
	if div == nil {
		return rc, nil, fmt.Errorf("conform: shrink: run no longer diverges")
	}
	for changed := true; changed; {
		changed = false
		if best.Schedule == nil {
			break
		}
		for i := range best.Schedule.Events {
			cand := best
			if len(best.Schedule.Events) == 1 {
				cand.Schedule = nil
			} else {
				sched := *best.Schedule
				sched.Events = slices.Delete(slices.Clone(best.Schedule.Events), i, i+1)
				cand.Schedule = &sched
			}
			if d := fails(cand); d != nil {
				best, div, changed = cand, d, true
				break
			}
		}
	}
	if div.Time+1 < best.Horizon {
		cand := best
		cand.Horizon = div.Time + 1
		if d := fails(cand); d != nil {
			best, div = cand, d
		}
	}
	if best.MaxDelay > 0 {
		cand := best
		cand.MaxDelay = 0
		if d := fails(cand); d != nil {
			best, div = cand, d
		}
	}
	return best, div, nil
}
