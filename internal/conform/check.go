package conform

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/trace"
)

// Divergence reports the first point where a recorded trace leaves the
// model's behaviour.
type Divergence struct {
	Cfg models.Config
	// Events is the full recorded trace; Events[:Index] was consumed
	// before the divergence.
	Events []Event
	// Index is the offending event's position, or len(Events) when the
	// trace ran out while the model still forced an action.
	Index int
	// Time is the virtual time of the divergence.
	Time core.Tick
	// Label is the runtime event no model execution matches; LabelTick
	// when the model refused to let time pass (a forced visible action the
	// runtime never produced).
	Label string
	// Expected lists the visible labels (and possibly LabelTick) the model
	// allows at the divergence point, sorted.
	Expected []string
}

// Error implements error, so a Divergence can travel as one.
func (d *Divergence) Error() string {
	if d.Label == LabelTick {
		return fmt.Sprintf("conform: %v diverges at t=%d: model forces one of [%s], runtime produced nothing",
			d.Cfg.Variant, d.Time, strings.Join(d.Expected, ", "))
	}
	return fmt.Sprintf("conform: %v diverges at t=%d (event %d): runtime produced %q, model allows [%s]",
		d.Cfg.Variant, d.Time, d.Index, d.Label, strings.Join(d.Expected, ", "))
}

// mscTail bounds the rendered prefix of a divergence report.
const mscTail = 40

// Render writes a human-readable divergence report: the consumed trace
// prefix as an ASCII message sequence chart (internal/trace), then the
// offending step and what the model would have allowed.
func (d *Divergence) Render(w io.Writer, title string) error {
	prefix := d.Events[:d.Index]
	skipped := 0
	if len(prefix) > mscTail {
		skipped = len(prefix) - mscTail
		prefix = prefix[skipped:]
	}
	steps := make([]mc.Step, 0, len(prefix))
	for _, ev := range prefix {
		steps = append(steps, mc.Step{Label: ev.Label, Time: int(ev.Time)})
	}
	if skipped > 0 {
		if _, err := fmt.Fprintf(w, "… %d earlier events omitted …\n", skipped); err != nil {
			return err
		}
	}
	if err := trace.Render(w, title, steps); err != nil {
		return err
	}
	if d.Label == LabelTick {
		if _, err := fmt.Fprintf(w, "\nstuck at t=%d: the model forces a visible action before time can pass\n", d.Time); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "\ndivergence at t=%d (event %d): runtime produced %q\n", d.Time, d.Index, d.Label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "model allows: %s\n", strings.Join(d.Expected, ", "))
	return err
}

// checker advances a frontier (antichain) of model states over a trace.
// mark is a generation-stamped membership set, so no clearing between
// steps.
type checker struct {
	sp   *Spec
	cur  []int32
	next []int32
	mark []int32
	gen  int32
}

func newChecker(sp *Spec) *checker {
	c := &checker{sp: sp, mark: make([]int32, sp.NumStates)}
	c.gen++
	c.mark[0] = c.gen
	c.cur = c.closure(append(c.cur, 0))
	return c
}

// newCheckerAll seeds the frontier with every state of the specification.
// The piecewise checker uses it after a confirmed divergence (a retune or
// a by-design non-model event): the runtime's exact model state is no
// longer known, so the suffix is checked against every possible
// continuation — an over-approximation that can only under-report, never
// fabricate, further divergences.
func newCheckerAll(sp *Spec) *checker {
	c := &checker{sp: sp, mark: make([]int32, sp.NumStates)}
	c.gen++
	c.cur = make([]int32, sp.NumStates)
	for s := range c.cur {
		c.cur[s] = int32(s)
		c.mark[s] = c.gen
	}
	return c
}

// closure extends set (whose members are marked with the current
// generation) with everything reachable by tau steps, in place.
func (c *checker) closure(set []int32) []int32 {
	sp := c.sp
	for i := 0; i < len(set); i++ {
		s := set[i]
		for j := sp.tauOff[s]; j < sp.tauOff[s+1]; j++ {
			t := sp.tauTo[j]
			if c.mark[t] != c.gen {
				c.mark[t] = c.gen
				set = append(set, t)
			}
		}
	}
	return set
}

// step advances the frontier over one visible label (LabelTick for time).
// It reports false — leaving the frontier untouched, so Expected can be
// computed — when no model state can take the label.
func (c *checker) step(label int32) bool {
	sp := c.sp
	c.gen++
	out := c.next[:0]
	for _, s := range c.cur {
		for j := sp.visOff[s]; j < sp.visOff[s+1]; j++ {
			e := sp.vis[j]
			if e.label == label && c.mark[e.to] != c.gen {
				c.mark[e.to] = c.gen
				out = append(out, e.to)
			}
		}
	}
	if len(out) == 0 {
		c.next = out
		return false
	}
	out = c.closure(out)
	c.next = c.cur
	c.cur = out
	return true
}

// enabled returns the sorted visible labels the current frontier can take.
func (c *checker) enabled() []string {
	sp := c.sp
	seen := make(map[int32]bool, 8)
	var out []string
	for _, s := range c.cur {
		for j := sp.visOff[s]; j < sp.visOff[s+1]; j++ {
			if id := sp.vis[j].label; !seen[id] {
				seen[id] = true
				out = append(out, sp.labelNames[id])
			}
		}
	}
	sort.Strings(out)
	return out
}

// CheckTrace replays a recorded trace against the specification and
// returns the first divergence, or nil when every event (and the passage
// of time up to horizon) is matched by some model execution. Events must
// be in recorded order; an event timestamped earlier than the checker's
// current time (possible under wall clocks) is replayed at the current
// time. It is a thin offline loop over the incremental streamEngine, so
// replaying a recorded trace and streaming it (StreamChecker) return
// identical results by construction.
func (sp *Spec) CheckTrace(events []Event, horizon core.Tick) *Divergence {
	e := newStreamEngine(sp, 0)
	for i, ev := range events {
		// A plain engine's feed never errors (no level switches).
		if d, _ := e.feed(i, ev); d != nil {
			return d.divergence(events)
		}
	}
	if d := e.finish(horizon, len(events)); d != nil {
		return d.divergence(events)
	}
	return nil
}
