package conform

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/models"
)

// adaptiveCheck builds a CampaignCheck for the smallest adaptive shape:
// a static coordinator-plus-one cluster over a two-level envelope.
func adaptiveCheck(t *testing.T) *CampaignCheck {
	t.Helper()
	env := models.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}
	return &CampaignCheck{
		Model:    models.Config{TMin: 2, TMax: 4, Variant: models.Static, N: 1, Fixed: true},
		Envelope: &env,
	}
}

func TestCheckTraceAdaptiveNeedsEnvelope(t *testing.T) {
	c := adaptiveCheck(t)
	c.Envelope = nil
	if _, err := c.CheckTraceAdaptive(nil, 0); err == nil {
		t.Fatal("CheckTraceAdaptive without an envelope succeeded")
	}
}

func TestCheckTraceAdaptiveRetuneOutsideEnvelope(t *testing.T) {
	c := adaptiveCheck(t)
	events := []Event{{Time: 0, Label: labelRetune(3, 5)}}
	res, err := c.CheckTraceAdaptive(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed == nil {
		t.Fatal("retune to a point outside the envelope was confirmed")
	}
	if res.Unconfirmed.Label != labelRetune(3, 5) {
		t.Fatalf("divergence label = %q", res.Unconfirmed.Label)
	}
}

func TestCheckTraceAdaptiveUnknownLabelUnconfirmed(t *testing.T) {
	c := adaptiveCheck(t)
	events := []Event{{Time: 0, Label: "p[1]: frobnicate"}}
	res, err := c.CheckTraceAdaptive(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed == nil {
		t.Fatal("an unexplained label outside degraded mode was not reported")
	}
}

func TestCheckTraceAdaptiveByDesignConfirmed(t *testing.T) {
	c := adaptiveCheck(t)
	events := []Event{{Time: 0, Label: "p[1]: restart"}}
	res, err := c.CheckTraceAdaptive(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed != nil {
		t.Fatalf("by-design restart reported unconfirmed: %s", res.Unconfirmed.Label)
	}
	if res.Confirmed != 1 {
		t.Fatalf("Confirmed = %d, want 1", res.Confirmed)
	}
}

// TestCheckTraceAdaptiveSaturation drives the checker into degraded mode
// with a retune that re-holds the level-0 point: unexplained events are
// then tolerated (and counted), and time passes unchecked.
func TestCheckTraceAdaptiveSaturation(t *testing.T) {
	c := adaptiveCheck(t)
	events := []Event{
		{Time: 0, Label: labelRetune(2, 4)},
		{Time: 0, Label: "p[1]: frobnicate"},
	}
	res, err := c.CheckTraceAdaptive(events, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed != nil {
		t.Fatalf("degraded mode reported unconfirmed: %s", res.Unconfirmed.Label)
	}
	if res.Retunes != 1 || res.Saturations != 1 || res.Degraded != 1 {
		t.Fatalf("Retunes/Saturations/Degraded = %d/%d/%d, want 1/1/1",
			res.Retunes, res.Saturations, res.Degraded)
	}
}

// TestCheckTraceAdaptiveLevelChangeResumes pins that a level-changing
// retune ends degraded mode: checking resumes at the new level, so the
// same unexplained label that degraded mode tolerated is a divergence
// again.
func TestCheckTraceAdaptiveLevelChangeResumes(t *testing.T) {
	c := adaptiveCheck(t)
	events := []Event{
		{Time: 0, Label: labelRetune(2, 4)},
		{Time: 0, Label: "p[1]: frobnicate"},
		{Time: 0, Label: labelRetune(2, 8)},
		{Time: 0, Label: "p[1]: frobnicate"},
	}
	res, err := c.CheckTraceAdaptive(events, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed == nil {
		t.Fatal("checking did not resume after the level change")
	}
	if res.Retunes != 2 || res.FinalLevel != 1 || res.Degraded != 1 {
		t.Fatalf("Retunes/FinalLevel/Degraded = %d/%d/%d, want 2/1/1",
			res.Retunes, res.FinalLevel, res.Degraded)
	}
}

func TestParseRetuneRoundTrip(t *testing.T) {
	tmin, tmax, ok := parseRetune(labelRetune(2, 8))
	if !ok || tmin != 2 || tmax != 8 {
		t.Fatalf("parseRetune(labelRetune(2,8)) = %d, %d, %v", tmin, tmax, ok)
	}
	if _, _, ok := parseRetune("deliver beat to p[0] from p[1]"); ok {
		t.Fatal("parseRetune accepted a non-retune label")
	}
}

func TestConfirmedByDesign(t *testing.T) {
	for _, label := range []string{
		"p[1]: decide leave", "p[1]: send leave beat",
		"deliver leave ack to p[1]", "p[0]: send leave ack to p[1]",
		"p[1]: restart", "p[1]: rejoin",
		"deliver stray beat to p[1] from p[2]",
	} {
		if !confirmedByDesign(label) {
			t.Errorf("confirmedByDesign(%q) = false", label)
		}
	}
	for _, label := range []string{
		"deliver beat to p[0] from p[1]", "p[1]: send beat",
		"timeout p[0]", "tick", "crash p[1]",
	} {
		if confirmedByDesign(label) {
			t.Errorf("confirmedByDesign(%q) = true", label)
		}
	}
}

// TestCheckScheduleAdmitsTopologyKinds pins that latency, leave and
// rejoin events pass the schedule gate: delays ride the model's
// nondeterministic transit, leaves and rejoins carry honest non-model
// labels for the piecewise checker to classify.
func TestCheckScheduleAdmitsTopologyKinds(t *testing.T) {
	sched, err := faults.ParseSchedule(
		"topo racks=0:0,1:1 zones=1:1\n" +
			"zonedelay t=10 from=0 to=1 mindelay=1 maxdelay=1\n" +
			"churn t=50 stagger=10 down=40 nodes=1\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSchedule(sched); err != nil {
		t.Fatal(err)
	}
}
