package conform

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/netem"
	"repro/internal/trace"
)

// divergePoint is a divergence located by the shared streaming engine,
// before it is bound to a full offline trace (Divergence) or to a bounded
// incident tail (Incident).
type divergePoint struct {
	cfg      models.Config
	index    int
	time     core.Tick
	label    string
	expected []string
}

func (d *divergePoint) divergence(events []Event) *Divergence {
	return &Divergence{
		Cfg: d.cfg, Events: events, Index: d.index,
		Time: d.time, Label: d.label, Expected: d.expected,
	}
}

// streamEngine advances the antichain frontier one event at a time. It is
// the single implementation behind offline replay (Spec.CheckTrace,
// CampaignCheck.CheckTraceAdaptive) and the online StreamChecker, so the
// two cannot drift: the offline checkers are thin loops over feed/finish,
// and streaming verdicts are byte-identical to offline replay by
// construction.
//
// With a positive maxFrontier the engine enforces a hard antichain
// budget: a frontier stepped past the budget sheds the inclusion check —
// the sampled-observer degradation of a production checker under a trace
// its memory envelope cannot follow — instead of growing without bound.
// Shedding is one-way and sound: it can only under-report divergences,
// never fabricate one, and the R1–R3 monitor is unaffected. The frontier
// is intrinsically bounded by the spec's state count (states are deduped
// per generation); the budget caps the sustained width well below that.
// All-states reseeds after confirmed divergences are exempt (they are
// O(NumStates) by construction and collapse on the next step); the budget
// gates stepped frontiers only, which is also what maxFrontierSeen
// tracks.
type streamEngine struct {
	check *CampaignCheck   // spec source for piecewise mode; nil in plain mode
	env   *models.Envelope // nil: plain single-spec mode
	sp    *Spec
	ck    *checker
	now   core.Tick

	level    int
	degraded bool

	confirmed   int
	degradedEvs int
	retunes     int
	saturations int
	finalLevel  int

	maxFrontier     int
	shed            bool
	shedEvents      int
	maxFrontierSeen int
}

// newStreamEngine builds a plain (single-specification) engine.
func newStreamEngine(sp *Spec, maxFrontier int) *streamEngine {
	e := &streamEngine{sp: sp, ck: newChecker(sp), maxFrontier: maxFrontier}
	e.noteFrontier()
	return e
}

// newAdaptiveEngine builds a piecewise engine over the campaign's
// envelope, starting at level 0 (per CheckTraceAdaptive's contract).
func newAdaptiveEngine(c *CampaignCheck, maxFrontier int) (*streamEngine, error) {
	if c.Envelope == nil {
		return nil, fmt.Errorf("%w: piecewise streaming needs an envelope", ErrUnsupported)
	}
	sp, err := c.SpecAt(0)
	if err != nil {
		return nil, err
	}
	e := &streamEngine{
		check: c, env: c.Envelope, sp: sp,
		ck: newChecker(sp), maxFrontier: maxFrontier,
	}
	e.noteFrontier()
	return e, nil
}

func (e *streamEngine) noteFrontier() {
	if n := len(e.ck.cur); n > e.maxFrontierSeen {
		e.maxFrontierSeen = n
	}
	if e.maxFrontier > 0 && len(e.ck.cur) > e.maxFrontier {
		e.shed = true
	}
}

// stepNoted steps the frontier and applies the budget on success.
func (e *streamEngine) stepNoted(id int32) bool {
	if !e.ck.step(id) {
		return false
	}
	e.noteFrontier()
	return true
}

// reseed restarts the frontier from every state of the current spec, the
// over-approximation used after confirmed divergences. A shed engine
// skips it: inclusion checking is already suspended for good.
func (e *streamEngine) reseed() {
	if e.shed {
		return
	}
	e.ck = newCheckerAll(e.sp)
}

func (e *streamEngine) diverge(idx int, label string) *divergePoint {
	return &divergePoint{
		cfg: e.sp.Cfg, index: idx, time: e.now,
		label: label, expected: e.ck.enabled(),
	}
}

// advance moves time forward to target, stepping the model's tick label.
// In degraded mode time passes unchecked (and, matching the offline
// piecewise checker exactly, out-of-order timestamps move it backwards);
// a shed engine advances monotonically without stepping.
func (e *streamEngine) advance(to core.Tick, idx int) *divergePoint {
	if e.degraded {
		e.now = to
		return nil
	}
	for e.now < to {
		if e.shed {
			e.now = to
			return nil
		}
		if !e.ck.step(e.sp.tickID) {
			return e.diverge(idx, LabelTick)
		}
		e.now++
		e.noteFrontier()
	}
	return nil
}

// feed consumes event i. A non-nil divergePoint is the first unconfirmed
// divergence — the engine must not be fed further. The error path is spec
// construction for a newly entered envelope level.
func (e *streamEngine) feed(i int, ev Event) (*divergePoint, error) {
	if d := e.advance(ev.Time, i); d != nil {
		return d, nil
	}
	if e.env == nil {
		if e.shed {
			e.shedEvents++
			return nil, nil
		}
		id, known := e.sp.labelIDs[ev.Label]
		if !known || !e.stepNoted(id) {
			return e.diverge(i, ev.Label), nil
		}
		return nil, nil
	}
	// Piecewise adaptive mode, mirroring CheckTraceAdaptive's rules in
	// order: in-alphabet step, envelope-confirmed retune, by-design
	// divergence, degraded tolerance, unconfirmed.
	if id, known := e.sp.labelIDs[ev.Label]; known {
		if e.degraded {
			return nil, nil
		}
		if e.shed {
			e.shedEvents++
			return nil, nil
		}
		if e.stepNoted(id) {
			return nil, nil
		}
	}
	if tmin, tmax, ok := parseRetune(ev.Label); ok {
		next, ok := envelopeLevelOf(*e.env, tmin, tmax)
		if !ok {
			return e.diverge(i, ev.Label), nil
		}
		e.retunes++
		if next == e.level {
			e.degraded = true
			e.saturations++
			return nil, nil
		}
		e.degraded = false
		e.level = next
		e.finalLevel = next
		sp, err := e.check.SpecAt(next)
		if err != nil {
			return nil, err
		}
		e.sp = sp
		e.reseed()
		return nil, nil
	}
	switch {
	case confirmedByDesign(ev.Label):
		e.confirmed++
	case e.degraded:
		e.degradedEvs++
		return nil, nil
	default:
		if e.shed {
			e.shedEvents++
			return nil, nil
		}
		return e.diverge(i, ev.Label), nil
	}
	e.reseed()
	return nil, nil
}

// finish checks the final passage of time up to the horizon.
func (e *streamEngine) finish(horizon core.Tick, idx int) *divergePoint {
	return e.advance(horizon, idx)
}

// fill copies the piecewise counters into an offline result.
func (e *streamEngine) fill(res *PiecewiseResult) {
	res.Confirmed = e.confirmed
	res.Degraded = e.degradedEvs
	res.Retunes = e.retunes
	res.Saturations = e.saturations
	res.FinalLevel = e.finalLevel
}

// levelInForce is the envelope level the engine is checking against, or
// baseLevel for a plain engine.
func (e *streamEngine) levelInForce() int {
	if e.env == nil {
		return baseLevel
	}
	return e.level
}

// monViolation is a requirement violation observed online, possibly
// contingent on the run's final loss count (the no-loss premise of
// R2/R3, which a live checker only learns at Finish).
type monViolation struct {
	v             ReqViolation
	needsLossFree bool
}

// traceMonitor evaluates R1–R3 incrementally, one event at a time, with
// O(n) state and no retained trace. It is the engine behind EvaluateTrace
// (which knows the loss count up front) and the StreamChecker (which
// learns it at Finish). R1 violations are definitive the moment their
// monitoring interval closes; R2/R3 candidates are buffered in trace
// order and resolved against the loss count, so the final Violations list
// is identical to offline evaluation.
type traceMonitor struct {
	n       int
	bound   core.Tick
	horizon core.Tick

	inact0 string // labelInactivate(0), built once
	crash0 string // labelCrash(0), built once

	active0  bool
	p0End    core.Tick
	activeP  []bool
	jnd      []bool
	armed    []bool
	lastBeat []core.Tick

	viol   []monViolation
	fresh  []ReqViolation // R1s confirmed by the last observe; reused
	closed bool
}

func newTraceMonitor(cfg models.Config, horizon core.Tick) *traceMonitor {
	n := cfg.N
	fixedMembers := true
	switch cfg.Variant {
	case models.Expanding, models.Dynamic:
		fixedMembers = false
	}
	m := &traceMonitor{
		n:        n,
		bound:    core.Tick(cfg.DetectionBound()),
		horizon:  horizon,
		inact0:   labelInactivate(0),
		crash0:   labelCrash(0),
		active0:  true,
		p0End:    farFuture,
		activeP:  make([]bool, n+1),
		jnd:      make([]bool, n+1),
		armed:    make([]bool, n+1),
		lastBeat: make([]core.Tick, n+1),
	}
	for i := 1; i <= n; i++ {
		m.activeP[i] = true
		m.jnd[i] = fixedMembers
		m.armed[i] = fixedMembers
	}
	return m
}

// Label prefixes of the monitor's dispatch, parsed allocation-free by
// procIndex (strict: prefix, digits, closing bracket, nothing else).
const (
	prefDeliverBeatP0  = "deliver beat to p[0] from p["
	prefDeliverLeaveP0 = "deliver leave beat to p[0] from p["
	prefInactivate     = "inactivate nv p["
	prefCrash          = "crash p["
)

// procIndex parses the process index of a label of the exact form
// prefix + digits + "]". Unlike Sscanf it rejects signs, spaces and
// trailing junk, so a malformed label cannot impersonate a real one.
func procIndex(label, prefix string) (int, bool) {
	if !strings.HasPrefix(label, prefix) {
		return 0, false
	}
	rest := label[len(prefix):]
	if len(rest) < 2 || rest[len(rest)-1] != ']' {
		return 0, false
	}
	p := 0
	for i := 0; i < len(rest)-1; i++ {
		c := rest[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		p = p*10 + int(c-'0')
		if p > 1<<20 {
			return 0, false
		}
	}
	return p, true
}

// closeR1 checks the monitoring interval (lastBeat, next] for p[i]: a
// violation exists when the deadline elapsed with no delivery while p[0]
// stayed active, observably within the horizon.
func (m *traceMonitor) closeR1(i int, next core.Tick) {
	deadline := m.lastBeat[i] + m.bound
	if next > deadline && m.p0End > deadline && m.horizon > deadline {
		v := ReqViolation{Prop: models.R1, Proc: i, Time: deadline + 1}
		m.viol = append(m.viol, monViolation{v: v})
		m.fresh = append(m.fresh, v)
	}
}

func (m *traceMonitor) allOKExcept(skip int) bool {
	for j := 1; j <= m.n; j++ {
		if j != skip && !(m.activeP[j] || !m.jnd[j]) {
			return false
		}
	}
	return true
}

// observe consumes one event and returns the R1 violations it confirmed.
// The returned slice is valid until the next observe or finishTime call.
// The dispatch order mirrors EvaluateTrace's switch exactly.
func (m *traceMonitor) observe(ev Event) []ReqViolation {
	m.fresh = m.fresh[:0]
	label := ev.Label
	if p, ok := procIndex(label, prefDeliverBeatP0); ok {
		if p >= 1 && p <= m.n {
			if m.armed[p] {
				m.closeR1(p, ev.Time)
			}
			m.armed[p] = true
			m.lastBeat[p] = ev.Time
			m.jnd[p] = true
		}
		return m.fresh
	}
	if p, ok := procIndex(label, prefDeliverLeaveP0); ok {
		if p >= 1 && p <= m.n {
			if m.armed[p] {
				m.closeR1(p, ev.Time)
			}
			m.armed[p] = false
			m.jnd[p] = false
		}
		return m.fresh
	}
	switch label {
	case m.inact0:
		if m.allOKExcept(0) {
			v := ReqViolation{Prop: models.R3, Time: ev.Time}
			m.viol = append(m.viol, monViolation{v: v, needsLossFree: true})
		}
		m.active0 = false
		if m.p0End == farFuture {
			m.p0End = ev.Time
		}
		return m.fresh
	case m.crash0:
		m.active0 = false
		if m.p0End == farFuture {
			m.p0End = ev.Time
		}
		return m.fresh
	}
	if p, ok := procIndex(label, prefInactivate); ok {
		if p >= 1 && p <= m.n {
			if m.active0 && m.allOKExcept(p) {
				v := ReqViolation{Prop: models.R2, Proc: p, Time: ev.Time}
				m.viol = append(m.viol, monViolation{v: v, needsLossFree: true})
			}
			m.activeP[p] = false
		}
		return m.fresh
	}
	if p, ok := procIndex(label, prefCrash); ok {
		if p >= 1 && p <= m.n {
			m.activeP[p] = false
		}
	}
	return m.fresh
}

// finishTime closes the still-armed R1 monitoring intervals at the end of
// the run. The returned slice is reused like observe's. Idempotent.
func (m *traceMonitor) finishTime() []ReqViolation {
	m.fresh = m.fresh[:0]
	if m.closed {
		return m.fresh
	}
	m.closed = true
	for i := 1; i <= m.n; i++ {
		if m.armed[i] {
			m.closeR1(i, farFuture)
		}
	}
	return m.fresh
}

// verdicts resolves the loss-contingent candidates against the final loss
// count; the result is identical to EvaluateTrace on the full trace.
func (m *traceMonitor) verdicts(lost uint64) TraceVerdicts {
	tv := TraceVerdicts{LossFree: lost == 0}
	for _, pv := range m.viol {
		if pv.needsLossFree && lost != 0 {
			continue
		}
		tv.Violations = append(tv.Violations, pv.v)
	}
	return tv
}

// IncidentKind classifies structured incidents.
type IncidentKind int

// Incident kinds.
const (
	// IncidentDivergence: the stream left the model (an unconfirmed
	// divergence; inclusion checking stops here).
	IncidentDivergence IncidentKind = iota + 1
	// IncidentViolation: a requirement (R1–R3) was violated on the stream.
	IncidentViolation
)

// String implements fmt.Stringer.
func (k IncidentKind) String() string {
	switch k {
	case IncidentDivergence:
		return "divergence"
	case IncidentViolation:
		return "violation"
	default:
		return fmt.Sprintf("IncidentKind(%d)", int(k))
	}
}

// Incident is a structured conformance incident assembled online from
// bounded state: enough to render the same first-divergence report as
// offline replay (from the bounded tail), plus triage fields for the
// supervisor's grading path.
type Incident struct {
	Kind IncidentKind
	// Cfg is the model configuration in force (the envelope level's, for
	// piecewise streams).
	Cfg models.Config
	// Level is the envelope level in force when the incident fired, or -1
	// for non-adaptive streams.
	Level int
	// Seq is the offending event's position in the full stream — the
	// offline Divergence.Index equivalent.
	Seq int
	// Time is the virtual time of the incident (for violations, the time
	// the violation became observable, which can precede the current
	// event's timestamp).
	Time core.Tick
	// Label and Expected describe a divergence: the unmatched runtime
	// label (LabelTick for a forced model action the runtime never
	// produced) and the sorted labels the model allows.
	Label    string
	Expected []string
	// Prop and Proc describe a violation (see ReqViolation).
	Prop models.Property
	Proc int
	// Verified reports the violation was cross-checked against the model
	// checker; ModelAgrees then means the model admits the violation too —
	// the paper's expected counter-example. Verified && !ModelAgrees is
	// the serious case: the runtime violated a property the model proves
	// satisfied.
	Verified    bool
	ModelAgrees bool
	// Skipped and Tail are the bounded MSC context: the last events
	// preceding the incident and how many earlier ones the memory budget
	// dropped. With the default tail size, Render output is byte-identical
	// to the offline Divergence.Render of the same divergence.
	Skipped int
	Tail    []Event
	// Shrunk and ShrunkDiv hold a minimised offline reproduction when
	// triage ran ShrinkRun on the incident's run configuration.
	Shrunk    *RunConfig
	ShrunkDiv *Divergence
}

// String is the one-line summary forwarded to the supervisor.
func (inc *Incident) String() string {
	if inc.Kind == IncidentViolation {
		note := ""
		if inc.Verified {
			if inc.ModelAgrees {
				note = ", model-confirmed"
			} else {
				note = ", model disagrees"
			}
		}
		return fmt.Sprintf("%v violated at t=%d by %s (event %d%s)",
			inc.Prop, inc.Time, pname(inc.Proc), inc.Seq, note)
	}
	if inc.Label == LabelTick {
		return fmt.Sprintf("divergence at t=%d: model forces one of [%s], runtime produced nothing",
			inc.Time, strings.Join(inc.Expected, ", "))
	}
	return fmt.Sprintf("divergence at t=%d (event %d): runtime produced %q, model allows [%s]",
		inc.Time, inc.Seq, inc.Label, strings.Join(inc.Expected, ", "))
}

// Render writes the incident report: the bounded tail as an ASCII message
// sequence chart, then the incident line. For divergences the output is
// byte-identical to Divergence.Render on the offline trace, provided the
// stream's tail budget matches the offline report bound (the default).
func (inc *Incident) Render(w io.Writer, title string) error {
	if inc.Skipped > 0 {
		if _, err := fmt.Fprintf(w, "… %d earlier events omitted …\n", inc.Skipped); err != nil {
			return err
		}
	}
	steps := make([]mc.Step, 0, len(inc.Tail))
	for _, ev := range inc.Tail {
		steps = append(steps, mc.Step{Label: ev.Label, Time: int(ev.Time)})
	}
	if err := trace.Render(w, title, steps); err != nil {
		return err
	}
	switch {
	case inc.Kind == IncidentViolation:
		_, err := fmt.Fprintf(w, "\nviolation at t=%d (event %d): %s\n", inc.Time, inc.Seq, inc.String())
		return err
	case inc.Label == LabelTick:
		if _, err := fmt.Fprintf(w, "\nstuck at t=%d: the model forces a visible action before time can pass\n", inc.Time); err != nil {
			return err
		}
	default:
		if _, err := fmt.Fprintf(w, "\ndivergence at t=%d (event %d): runtime produced %q\n", inc.Time, inc.Seq, inc.Label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "model allows: %s\n", strings.Join(inc.Expected, ", "))
	return err
}

// StreamConfig assembles a StreamChecker.
type StreamConfig struct {
	// Check supplies the model and the shared per-level spec cache.
	// Check.Envelope == nil checks against the single base specification;
	// otherwise the stream is checked piecewise across envelope levels,
	// exactly as CheckTraceAdaptive would offline.
	Check *CampaignCheck
	// Horizon is the virtual time Finish checks the passage of time up to.
	Horizon core.Tick
	// MaxFrontier, when positive, is the hard antichain budget: past it
	// the checker sheds inclusion checking (monitor-only degradation)
	// instead of growing without bound. 0 means unbudgeted.
	MaxFrontier int
	// Tail bounds the incident MSC context (default 40, matching offline
	// divergence reports; incident renders are then byte-identical).
	Tail int
	// Verify, if non-nil, cross-checks each violation incident against
	// the model checker (use cachedVerify-style backends: it runs inline
	// on the event path at incident time).
	Verify VerifyFunc
	// OnIncident, if non-nil, receives each incident as it is assembled.
	// Called under the checker's lock — do not call back into the checker.
	OnIncident func(*Incident)
}

// StreamChecker is the online conformance checker: a detector.Observer
// that abstracts machine steps into model-alphabet events (exactly as
// Recorder does) and checks them incrementally — antichain frontier
// advance per event, piecewise across envelope retunes, plus the
// streaming R1–R3 monitor — in bounded memory, with no retained trace
// beyond the incident tail ring. Safe for concurrent use.
type StreamChecker struct {
	mu     sync.Mutex
	cfg    StreamConfig
	eng    *streamEngine
	mon    *traceMonitor
	monCfg models.Config
	sup    *detector.Supervisor

	add    func(string) // pre-bound abstractStep target (no per-step closure)
	obsNow core.Tick

	seq         int
	tail        []Event // ring buffer of the last len(tail) events
	done        bool    // inclusion stopped at the first unconfirmed divergence
	failed      error   // internal error (level spec construction)
	incidents   []*Incident
	unconfirmed *Incident
	finished    bool
	result      *StreamResult
}

// NewStreamChecker builds a stream checker. Specs come from the shared
// CampaignCheck cache, so many concurrent checkers (one per cluster under
// a campaign) share one spec build per operating point.
func NewStreamChecker(cfg StreamConfig) (*StreamChecker, error) {
	if cfg.Check == nil {
		return nil, fmt.Errorf("%w: stream checker needs a CampaignCheck", ErrUnsupported)
	}
	if cfg.Tail <= 0 {
		cfg.Tail = mscTail
	}
	var (
		eng    *streamEngine
		monCfg models.Config
	)
	if env := cfg.Check.Envelope; env != nil {
		e, err := newAdaptiveEngine(cfg.Check, cfg.MaxFrontier)
		if err != nil {
			return nil, err
		}
		eng = e
		// R1's detection bound varies with the level in force; monitor at
		// the envelope ceiling — the loosest bound — so online violations
		// can only be under-, never over-reported across retunes.
		monCfg = env.LevelConfig(cfg.Check.Model, env.Levels()-1)
	} else {
		sp, err := cfg.Check.Spec()
		if err != nil {
			return nil, err
		}
		eng = newStreamEngine(sp, cfg.MaxFrontier)
		monCfg = cfg.Check.Model
	}
	sc := &StreamChecker{
		cfg:    cfg,
		eng:    eng,
		mon:    newTraceMonitor(monCfg, cfg.Horizon),
		monCfg: monCfg,
		tail:   make([]Event, cfg.Tail),
	}
	sc.add = func(label string) { sc.feedLocked(Event{Time: sc.obsNow, Label: label}) }
	return sc, nil
}

// BindSupervisor forwards every subsequent incident to the supervisor's
// grading path (detector.Supervisor.ReportIncident). Bind after building
// the cluster and before starting it.
func (sc *StreamChecker) BindSupervisor(sup *detector.Supervisor) {
	sc.mu.Lock()
	sc.sup = sup
	sc.mu.Unlock()
}

// ObserveStep implements detector.Observer: the machine step is
// abstracted into model-alphabet events and checked immediately, without
// being retained.
//
//lint:allow noalloc-closure the streaming checker allocates incident records by design; conformance runs trade allocations for checking
func (sc *StreamChecker) ObserveStep(id netem.NodeID, now core.Tick, tr detector.Trigger, actions []core.Action) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.obsNow = now
	abstractStep(sc.add, id, tr, actions)
}

// Feed consumes one pre-abstracted event — a recorded trace replayed
// incrementally, or a generated corpus. Live clusters attach the checker
// as an Observer instead.
func (sc *StreamChecker) Feed(ev Event) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.feedLocked(ev)
}

func (sc *StreamChecker) feedLocked(ev Event) {
	if sc.finished {
		return
	}
	i := sc.seq
	if !sc.done && sc.failed == nil {
		d, err := sc.eng.feed(i, ev)
		switch {
		case err != nil:
			sc.failed = err
			sc.done = true
		case d != nil:
			sc.done = true
			sc.unconfirmed = sc.divergenceIncident(d)
			sc.emit(sc.unconfirmed)
		}
	}
	for _, v := range sc.mon.observe(ev) {
		sc.violationIncident(v, i)
	}
	sc.tail[i%len(sc.tail)] = ev
	sc.seq++
}

// tailLen is the number of live ring entries.
func (sc *StreamChecker) tailLen() int {
	if sc.seq < len(sc.tail) {
		return sc.seq
	}
	return len(sc.tail)
}

// newIncident snapshots the bounded context shared by all incident kinds.
// The tail holds the events before the current one (the offline report's
// prefix), so it excludes the offending event itself.
func (sc *StreamChecker) newIncident(kind IncidentKind, seq int) *Incident {
	n := sc.tailLen()
	t := make([]Event, n)
	start := sc.seq - n
	for k := 0; k < n; k++ {
		t[k] = sc.tail[(start+k)%len(sc.tail)]
	}
	return &Incident{
		Kind:    kind,
		Cfg:     sc.monCfg,
		Level:   sc.eng.levelInForce(),
		Seq:     seq,
		Skipped: seq - n,
		Tail:    t,
	}
}

func (sc *StreamChecker) divergenceIncident(d *divergePoint) *Incident {
	inc := sc.newIncident(IncidentDivergence, d.index)
	inc.Cfg = d.cfg
	inc.Time = d.time
	inc.Label = d.label
	inc.Expected = d.expected
	return inc
}

func (sc *StreamChecker) violationIncident(v ReqViolation, seq int) {
	inc := sc.newIncident(IncidentViolation, seq)
	inc.Time = v.Time
	inc.Prop = v.Prop
	inc.Proc = v.Proc
	if sc.cfg.Verify != nil {
		// A verification error leaves the incident unverified rather than
		// suppressing it: the violation stands on the trace alone.
		if verdict, err := sc.cfg.Verify(sc.monCfg, v.Prop); err == nil {
			inc.Verified = true
			inc.ModelAgrees = !verdict.Satisfied
		}
	}
	sc.emit(inc)
}

func (sc *StreamChecker) emit(inc *Incident) {
	sc.incidents = append(sc.incidents, inc)
	if sc.cfg.OnIncident != nil {
		sc.cfg.OnIncident(inc)
	}
	if sc.sup != nil {
		sc.sup.ReportIncident(netem.NodeID(inc.Proc), inc.String())
	}
}

// StreamResult summarises a finished stream.
type StreamResult struct {
	// Events is the number of events consumed.
	Events int
	// Incidents lists every incident in emission order, including the
	// loss-gated R2/R3 violations resolved at Finish.
	Incidents []*Incident
	// Unconfirmed is the first unconfirmed divergence (inclusion checking
	// stopped there; the R1–R3 monitor kept running), nil when the stream
	// conformed.
	Unconfirmed *Incident
	// Piecewise counters, field-for-field what CheckTraceAdaptive's
	// PiecewiseResult reports offline. For a non-adaptive stream FinalLevel
	// is -1 and the other four are zero.
	Confirmed, Degraded, Retunes, Saturations, FinalLevel int
	// Shed reports the inclusion check was dropped by the frontier budget;
	// ShedEvents counts events skipped while shed, and MaxFrontierSeen is
	// the high-water stepped antichain width.
	Shed            bool
	ShedEvents      int
	MaxFrontierSeen int
	// Verdicts is the run's R1–R3 outcome, identical to EvaluateTrace on
	// the full trace.
	Verdicts TraceVerdicts
}

// Finish closes the stream at the configured horizon: it checks the final
// passage of time, closes the R1 monitoring intervals, resolves the
// loss-contingent R2/R3 candidates against the run's loss count, and
// returns the summary. Further events are ignored; repeated calls return
// the same result. The error reports an internal failure (a level spec
// that could not be built), never non-conformance.
func (sc *StreamChecker) Finish(lost uint64) (*StreamResult, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.finished {
		return sc.result, sc.failed
	}
	sc.finished = true
	if sc.failed == nil && !sc.done {
		if d := sc.eng.finish(sc.cfg.Horizon, sc.seq); d != nil {
			sc.done = true
			sc.unconfirmed = sc.divergenceIncident(d)
			sc.emit(sc.unconfirmed)
		}
	}
	for _, v := range sc.mon.finishTime() {
		sc.violationIncident(v, sc.seq)
	}
	if lost == 0 {
		for _, pv := range sc.mon.viol {
			if pv.needsLossFree {
				sc.violationIncident(pv.v, sc.seq)
			}
		}
	}
	finalLevel := baseLevel
	if sc.eng.env != nil {
		finalLevel = sc.eng.finalLevel
	}
	sc.result = &StreamResult{
		Events:          sc.seq,
		Incidents:       sc.incidents,
		Unconfirmed:     sc.unconfirmed,
		Confirmed:       sc.eng.confirmed,
		Degraded:        sc.eng.degradedEvs,
		Retunes:         sc.eng.retunes,
		Saturations:     sc.eng.saturations,
		FinalLevel:      finalLevel,
		Shed:            sc.eng.shed,
		ShedEvents:      sc.eng.shedEvents,
		MaxFrontierSeen: sc.eng.maxFrontierSeen,
		Verdicts:        sc.mon.verdicts(lost),
	}
	return sc.result, sc.failed
}

// RunStream drives one simulated cluster with the stream checker attached
// as its observer — the online counterpart of Run+CheckTrace — and
// finishes the stream with the run's loss count. Build the checker with
// Horizon equal to rc.Horizon.
func RunStream(rc RunConfig, sc *StreamChecker) (*StreamResult, error) {
	_, lost, err := runObserved(rc, sc)
	if err != nil {
		return nil, err
	}
	return sc.Finish(lost)
}
