package conform

import (
	"math"

	"repro/internal/core"
	"repro/internal/models"
)

// ReqViolation is one requirement violation observed on a recorded trace.
type ReqViolation struct {
	Prop models.Property
	// Proc is the blamed participant (R1: the silent one p[0] failed to
	// detect; R2: the one inactivated); 0 for R3.
	Proc int
	// Time is the tick at which the violation became observable.
	Time core.Tick
}

// TraceVerdicts is the outcome of evaluating R1–R3 on one recorded trace.
type TraceVerdicts struct {
	// LossFree reports the no-loss premise of R2/R3 held (no message was
	// dropped by links, faults, partitions, or crashed senders).
	LossFree bool
	// Violations lists every observed violation, in trace order per
	// property. R2/R3 violations are only reported on loss-free runs
	// (their premise); R1 applies regardless of loss.
	Violations []ReqViolation
}

// ByProp filters the violations of one property.
func (tv TraceVerdicts) ByProp(p models.Property) []ReqViolation {
	var out []ReqViolation
	for _, v := range tv.Violations {
		if v.Prop == p {
			out = append(out, v)
		}
	}
	return out
}

const farFuture = core.Tick(math.MaxInt64 / 2)

// EvaluateTrace re-evaluates the paper's requirements directly on a
// recorded trace, mirroring the model predicates of
// internal/models/requirements.go:
//
//   - R1: after the last beat delivered from p[i] (or from the start, for
//     fixed-membership variants), p[0] must stop being active within the
//     claimed detection bound. Only violations observable within horizon
//     are reported (the bound must elapse before the run ends).
//   - R2: no participant non-voluntarily inactivates while no message was
//     lost, p[0] is active, and every other participant is alive or
//     excused (never joined, or left).
//   - R3: p[0] does not non-voluntarily inactivate while no message was
//     lost and every participant is alive or excused.
//
// "Joined" is p[0]'s view, reconstructed from delivery events exactly as
// the model's jnd variables are driven by the delivery channels.
func EvaluateTrace(cfg models.Config, events []Event, lost uint64, horizon core.Tick) TraceVerdicts {
	n := cfg.N
	fixedMembers := true
	switch cfg.Variant {
	case models.Expanding, models.Dynamic:
		fixedMembers = false
	}
	bound := core.Tick(cfg.DetectionBound())
	lossFree := lost == 0

	tv := TraceVerdicts{LossFree: lossFree}
	active0 := true
	p0End := farFuture // first time p[0] stopped being active
	activeP := make([]bool, n+1)
	jnd := make([]bool, n+1)
	armed := make([]bool, n+1)
	lastBeat := make([]core.Tick, n+1)
	for i := 1; i <= n; i++ {
		activeP[i] = true
		jnd[i] = fixedMembers
		armed[i] = fixedMembers
	}

	// closeR1 checks the monitoring interval (last, next] for p[i]: a
	// violation exists when the deadline elapsed with no delivery while
	// p[0] stayed active, observably within the horizon.
	closeR1 := func(i int, next core.Tick) {
		deadline := lastBeat[i] + bound
		if next > deadline && p0End > deadline && horizon > deadline {
			tv.Violations = append(tv.Violations, ReqViolation{Prop: models.R1, Proc: i, Time: deadline + 1})
		}
	}
	participantOK := func(j int) bool { return activeP[j] || !jnd[j] }

	for _, ev := range events {
		var proc int
		switch {
		case parseLabel(ev.Label, "deliver beat to p[0] from p[%d]", &proc):
			if proc >= 1 && proc <= n {
				if armed[proc] {
					closeR1(proc, ev.Time)
				}
				armed[proc] = true
				lastBeat[proc] = ev.Time
				jnd[proc] = true
			}
		case parseLabel(ev.Label, "deliver leave beat to p[0] from p[%d]", &proc):
			if proc >= 1 && proc <= n {
				if armed[proc] {
					closeR1(proc, ev.Time)
				}
				armed[proc] = false
				jnd[proc] = false
			}
		case ev.Label == labelInactivate(0):
			if lossFree && allOK(n, participantOK) {
				tv.Violations = append(tv.Violations, ReqViolation{Prop: models.R3, Time: ev.Time})
			}
			active0 = false
			if p0End == farFuture {
				p0End = ev.Time
			}
		case ev.Label == labelCrash(0):
			active0 = false
			if p0End == farFuture {
				p0End = ev.Time
			}
		case parseLabel(ev.Label, "inactivate nv p[%d]", &proc):
			if proc >= 1 && proc <= n {
				if lossFree && active0 && allOKExcept(n, proc, participantOK) {
					tv.Violations = append(tv.Violations, ReqViolation{Prop: models.R2, Proc: proc, Time: ev.Time})
				}
				activeP[proc] = false
			}
		case parseLabel(ev.Label, "crash p[%d]", &proc):
			if proc >= 1 && proc <= n {
				activeP[proc] = false
			}
		}
	}
	for i := 1; i <= n; i++ {
		if armed[i] {
			closeR1(i, farFuture)
		}
	}
	return tv
}

func allOK(n int, ok func(int) bool) bool {
	return allOKExcept(n, 0, ok)
}

func allOKExcept(n, skip int, ok func(int) bool) bool {
	for j := 1; j <= n; j++ {
		if j != skip && !ok(j) {
			return false
		}
	}
	return true
}

// VerifyFunc model-checks one property of one configuration; usually
// models.Verify with fixed options, possibly behind a cache.
type VerifyFunc func(models.Config, models.Property) (models.Verdict, error)

// VerdictDiff cross-references one property's runtime violations with the
// model checker's verdict.
type VerdictDiff struct {
	Prop    models.Property
	Runtime []ReqViolation
	Model   models.Verdict
	// Mismatch: the runtime violated a property the model checker proves
	// satisfied — a conformance failure. (The converse — model violable,
	// runtime trace clean — is expected: one trace cannot witness every
	// schedule.)
	Mismatch bool
}

// DiffVerdicts checks every property the trace violated against the
// model. Properties with no runtime violation are skipped (nothing to
// contradict), so the expensive model check only runs on suspicious runs.
func DiffVerdicts(cfg models.Config, tv TraceVerdicts, verify VerifyFunc) ([]VerdictDiff, error) {
	var out []VerdictDiff
	for _, p := range []models.Property{models.R1, models.R2, models.R3} {
		viol := tv.ByProp(p)
		if len(viol) == 0 {
			continue
		}
		v, err := verify(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, VerdictDiff{Prop: p, Runtime: viol, Model: v, Mismatch: v.Satisfied})
	}
	return out, nil
}
