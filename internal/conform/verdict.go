package conform

import (
	"math"

	"repro/internal/core"
	"repro/internal/models"
)

// ReqViolation is one requirement violation observed on a recorded trace.
type ReqViolation struct {
	Prop models.Property
	// Proc is the blamed participant (R1: the silent one p[0] failed to
	// detect; R2: the one inactivated); 0 for R3.
	Proc int
	// Time is the tick at which the violation became observable.
	Time core.Tick
}

// TraceVerdicts is the outcome of evaluating R1–R3 on one recorded trace.
type TraceVerdicts struct {
	// LossFree reports the no-loss premise of R2/R3 held (no message was
	// dropped by links, faults, partitions, or crashed senders).
	LossFree bool
	// Violations lists every observed violation, in trace order per
	// property. R2/R3 violations are only reported on loss-free runs
	// (their premise); R1 applies regardless of loss.
	Violations []ReqViolation
}

// ByProp filters the violations of one property.
func (tv TraceVerdicts) ByProp(p models.Property) []ReqViolation {
	var out []ReqViolation
	for _, v := range tv.Violations {
		if v.Prop == p {
			out = append(out, v)
		}
	}
	return out
}

const farFuture = core.Tick(math.MaxInt64 / 2)

// EvaluateTrace re-evaluates the paper's requirements directly on a
// recorded trace, mirroring the model predicates of
// internal/models/requirements.go:
//
//   - R1: after the last beat delivered from p[i] (or from the start, for
//     fixed-membership variants), p[0] must stop being active within the
//     claimed detection bound. Only violations observable within horizon
//     are reported (the bound must elapse before the run ends).
//   - R2: no participant non-voluntarily inactivates while no message was
//     lost, p[0] is active, and every other participant is alive or
//     excused (never joined, or left).
//   - R3: p[0] does not non-voluntarily inactivate while no message was
//     lost and every participant is alive or excused.
//
// "Joined" is p[0]'s view, reconstructed from delivery events exactly as
// the model's jnd variables are driven by the delivery channels.
//
// EvaluateTrace is the offline loop over the incremental traceMonitor
// (the same engine the StreamChecker runs online), so streaming and
// offline verdicts are identical by construction: here the loss count is
// known up front, online the loss-contingent R2/R3 candidates resolve at
// Finish.
func EvaluateTrace(cfg models.Config, events []Event, lost uint64, horizon core.Tick) TraceVerdicts {
	m := newTraceMonitor(cfg, horizon)
	for _, ev := range events {
		m.observe(ev)
	}
	m.finishTime()
	return m.verdicts(lost)
}

// VerifyFunc model-checks one property of one configuration; usually
// models.Verify with fixed options, possibly behind a cache.
type VerifyFunc func(models.Config, models.Property) (models.Verdict, error)

// VerdictDiff cross-references one property's runtime violations with the
// model checker's verdict.
type VerdictDiff struct {
	Prop    models.Property
	Runtime []ReqViolation
	Model   models.Verdict
	// Mismatch: the runtime violated a property the model checker proves
	// satisfied — a conformance failure. (The converse — model violable,
	// runtime trace clean — is expected: one trace cannot witness every
	// schedule.)
	Mismatch bool
}

// DiffVerdicts checks every property the trace violated against the
// model. Properties with no runtime violation are skipped (nothing to
// contradict), so the expensive model check only runs on suspicious runs.
func DiffVerdicts(cfg models.Config, tv TraceVerdicts, verify VerifyFunc) ([]VerdictDiff, error) {
	var out []VerdictDiff
	for _, p := range []models.Property{models.R1, models.R2, models.R3} {
		viol := tv.ByProp(p)
		if len(viol) == 0 {
			continue
		}
		v, err := verify(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, VerdictDiff{Prop: p, Runtime: viol, Model: v, Mismatch: v.Satisfied})
	}
	return out, nil
}
