package conform

import (
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"math/rand"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/sim"
)

// streamAll replays a trace through a fresh StreamChecker one event at a
// time and finishes it, mirroring what a live cluster's observer does.
func streamAll(t *testing.T, cfg StreamConfig, events []Event, lost uint64) *StreamResult {
	t.Helper()
	sc, err := NewStreamChecker(cfg)
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	for _, ev := range events {
		sc.Feed(ev)
	}
	res, err := sc.Finish(lost)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res
}

// requireSameDivergence checks a streaming incident against the offline
// divergence of the same trace: same location, same diagnosis, and a
// byte-identical rendered report.
func requireSameDivergence(t *testing.T, d *Divergence, inc *Incident, events []Event) {
	t.Helper()
	if (d == nil) != (inc == nil) {
		t.Fatalf("offline divergence %v vs streaming incident %v", d, inc)
	}
	if d == nil {
		return
	}
	if inc.Kind != IncidentDivergence {
		t.Fatalf("incident kind = %v", inc.Kind)
	}
	if inc.Seq != d.Index || inc.Time != d.Time || inc.Label != d.Label ||
		!reflect.DeepEqual(inc.Expected, d.Expected) {
		t.Fatalf("incident (seq=%d t=%d %q %v) != divergence (index=%d t=%d %q %v)",
			inc.Seq, inc.Time, inc.Label, inc.Expected, d.Index, d.Time, d.Label, d.Expected)
	}
	var off, on strings.Builder
	if err := d.Render(&off, "report"); err != nil {
		t.Fatal(err)
	}
	if err := inc.Render(&on, "report"); err != nil {
		t.Fatal(err)
	}
	if off.String() != on.String() {
		t.Fatalf("rendered reports differ:\n--- offline ---\n%s\n--- streaming ---\n%s", off.String(), on.String())
	}
}

// walkDiff is one walk's comparison summary; identical across worker
// counts by the determinism contract.
type walkDiff struct {
	variant  models.Variant
	walk     int
	events   int
	diverged bool
}

// TestStreamDifferential is the corpus differential: every variant's
// random-walk corpus, replayed event by event through the StreamChecker,
// must produce verdicts and first-divergence reports identical to offline
// CheckTrace/EvaluateTrace on the recorded trace — at 1 worker and at 8.
func TestStreamDifferential(t *testing.T) {
	const walksPerVariant = 6
	variants := []models.Variant{
		models.Binary, models.RevisedBinary, models.TwoPhase,
		models.Static, models.Expanding, models.Dynamic,
	}
	// One CampaignCheck per model config: streaming and offline share the
	// same cached spec, and concurrent walks share one build.
	var (
		checksMu sync.Mutex
		checks   = map[models.Config]*CampaignCheck{}
	)
	checkFor := func(m models.Config) *CampaignCheck {
		checksMu.Lock()
		defer checksMu.Unlock()
		c, ok := checks[m]
		if !ok {
			c = &CampaignCheck{Model: m}
			checks[m] = c
		}
		return c
	}

	runWalk := func(t *testing.T, variant models.Variant, w int) walkDiff {
		rng := rand.New(rand.NewSource(23 + int64(w)*0x9e3779b97f4a7c))
		rc := walkRun(variant, rng)
		check := checkFor(rc.Model)
		sp, err := check.Spec()
		if err != nil {
			t.Fatalf("spec: %v", err)
		}
		out, err := Run(rc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		div := sp.CheckTrace(out.Events, rc.Horizon)
		tv := EvaluateTrace(rc.Model, out.Events, out.Lost, rc.Horizon)

		sres := streamAll(t, StreamConfig{Check: check, Horizon: rc.Horizon}, out.Events, out.Lost)
		if sres.Events != len(out.Events) {
			t.Fatalf("stream consumed %d events, trace has %d", sres.Events, len(out.Events))
		}
		requireSameDivergence(t, div, sres.Unconfirmed, out.Events)
		if !reflect.DeepEqual(sres.Verdicts, tv) {
			t.Fatalf("verdicts differ:\n  stream:  %+v\n  offline: %+v", sres.Verdicts, tv)
		}
		return walkDiff{variant: variant, walk: w, events: len(out.Events), diverged: div != nil}
	}

	corpus := func(t *testing.T, workers int) []walkDiff {
		type job struct {
			variant models.Variant
			walk    int
		}
		var jobs []job
		for _, v := range variants {
			for w := 0; w < walksPerVariant; w++ {
				jobs = append(jobs, job{v, w})
			}
		}
		outs := make([]walkDiff, len(jobs))
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					outs[i] = runWalk(t, jobs[i].variant, jobs[i].walk)
				}
			}()
		}
		wg.Wait()
		return outs
	}

	seq := corpus(t, 1)
	par := corpus(t, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("worker count changed the corpus outcome:\n  1: %+v\n  8: %+v", seq, par)
	}
	total := 0
	for _, d := range seq {
		total += d.events
		if d.diverged {
			t.Fatalf("healthy walk diverged: %+v", d)
		}
	}
	if total == 0 {
		t.Fatal("corpus recorded no events")
	}
}

// adaptiveClusterTrace records one real adaptive cluster run (Gilbert-
// Elliott loss driving the coordinator through its envelope) and returns
// the trace and its loss count.
func adaptiveClusterTrace(t *testing.T, check *CampaignCheck, seed int64, horizon core.Tick) ([]Event, uint64) {
	t.Helper()
	cc, err := ClusterFor(check.Model)
	if err != nil {
		t.Fatal(err)
	}
	env := check.Envelope
	cc.Adaptive = &core.AdaptiveOptions{
		Envelope: core.Envelope{
			TMinLo: core.Tick(env.TMinLo), TMinHi: core.Tick(env.TMinHi),
			TMaxLo: core.Tick(env.TMaxLo), TMaxHi: core.Tick(env.TMaxHi),
		},
		Window: 2, WidenAt: 0.25, TightenAt: 0.1, HoldRounds: 4,
	}
	cc.Seed = seed
	cc.Faults = &faults.Schedule{
		Seed: seed,
		Events: []faults.Event{
			{At: 100, Kind: faults.KindLoss, AllLinks: true, GE: &faults.GilbertElliott{
				PGoodBad: 0.3, PBadGood: 0.4, LossGood: 0, LossBad: 0.9,
			}},
		},
	}
	rec := NewRecorder()
	cc.Observe = rec
	c, err := detector.NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(sim.Time(horizon))
	c.Stop()
	lost := c.Net.Stats().Total.Lost
	if c.Faults != nil {
		fs := c.Faults.Stats()
		lost += fs.DroppedMuted + fs.DroppedPartition + fs.DroppedLoss
	}
	return rec.Events(), lost
}

// TestStreamAdaptiveDifferential: real adaptive runs — retunes included —
// checked piecewise online must match CheckTraceAdaptive on the recorded
// trace, counter for counter, and the R1–R3 verdicts must match
// EvaluateTrace at the envelope ceiling (the StreamChecker's monitor
// configuration).
func TestStreamAdaptiveDifferential(t *testing.T) {
	env := models.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}
	check := &CampaignCheck{
		Model:    models.Config{TMin: 2, TMax: 4, Variant: models.Static, N: 2, Fixed: true},
		Envelope: &env,
	}
	const horizon = core.Tick(1200)
	monCfg := env.LevelConfig(check.Model, env.Levels()-1)

	totalRetunes := 0
	for seed := int64(1); seed <= 6; seed++ {
		events, lost := adaptiveClusterTrace(t, check, seed, horizon)
		pr, err := check.CheckTraceAdaptive(events, horizon)
		if err != nil {
			t.Fatalf("seed %d: CheckTraceAdaptive: %v", seed, err)
		}
		if pr.Unconfirmed != nil {
			t.Fatalf("seed %d: healthy adaptive run diverged: %v", seed, pr.Unconfirmed)
		}
		sres := streamAll(t, StreamConfig{Check: check, Horizon: horizon}, events, lost)
		requireSameDivergence(t, pr.Unconfirmed, sres.Unconfirmed, events)
		if sres.Confirmed != pr.Confirmed || sres.Degraded != pr.Degraded ||
			sres.Retunes != pr.Retunes || sres.Saturations != pr.Saturations ||
			sres.FinalLevel != pr.FinalLevel {
			t.Fatalf("seed %d: piecewise counters differ:\n  stream:  %+v\n  offline: %+v", seed, sres, pr)
		}
		tv := EvaluateTrace(monCfg, events, lost, horizon)
		if !reflect.DeepEqual(sres.Verdicts, tv) {
			t.Fatalf("seed %d: verdicts differ:\n  stream:  %+v\n  offline: %+v", seed, sres.Verdicts, tv)
		}
		totalRetunes += sres.Retunes
	}
	if totalRetunes == 0 {
		t.Fatal("no seed drove the coordinator through a retune — the piecewise path was never exercised")
	}
}

// TestRunStreamMatchesFeed: attaching the checker as a live observer
// (abstracting machine steps as they happen) is equivalent to feeding the
// recorded trace of the same run.
func TestRunStreamMatchesFeed(t *testing.T) {
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	check := &CampaignCheck{Model: model}
	rc := RunConfig{
		Model: model,
		Seed:  3,
		Schedule: &faults.Schedule{Events: []faults.Event{
			{At: 9, Kind: faults.KindCrash, Node: 1},
		}},
		Horizon: 30,
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	fed := streamAll(t, StreamConfig{Check: check, Horizon: rc.Horizon}, out.Events, out.Lost)

	live, err := NewStreamChecker(StreamConfig{Check: check, Horizon: rc.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := RunStream(rc, live)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lres, fed) {
		t.Fatalf("live observation and replay differ:\n  live: %+v\n  fed:  %+v", lres, fed)
	}
	if lres.Events != len(out.Events) {
		t.Fatalf("live stream saw %d events, recorder saw %d", lres.Events, len(out.Events))
	}
}

// streamEarliest replays a mutant trace one event at a time and returns
// the feed index at which the first divergence incident fired.
func streamEarliest(t *testing.T, check *CampaignCheck, events []Event, horizon core.Tick) (*Incident, int) {
	t.Helper()
	firedAt := -1
	feeding := -1
	cfg := StreamConfig{Check: check, Horizon: horizon, OnIncident: func(inc *Incident) {
		if inc.Kind == IncidentDivergence && firedAt == -1 {
			firedAt = feeding
		}
	}}
	sc, err := NewStreamChecker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		feeding = i
		sc.Feed(ev)
	}
	feeding = len(events)
	res, err := sc.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed == nil {
		t.Fatal("mutant not caught by the stream checker")
	}
	return res.Unconfirmed, firedAt
}

// TestStreamMutantExpiryEarliest ports the expiry+1 mutation to the
// streaming path: the stuck-time divergence must fire at the earliest
// possible event — exactly where offline replay locates it — not at
// teardown.
func TestStreamMutantExpiryEarliest(t *testing.T) {
	wrap, err := Mutation("expiry+1")
	if err != nil {
		t.Fatal(err)
	}
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	check := &CampaignCheck{Model: model}
	rc := RunConfig{
		Model: model,
		Seed:  3,
		Schedule: &faults.Schedule{Events: []faults.Event{
			{At: 9, Kind: faults.KindCrash, Node: 0},
		}},
		Horizon: 30,
		Wrap:    wrap,
	}
	sp, err := check.Spec()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	d := sp.CheckTrace(out.Events, rc.Horizon)
	if d == nil {
		t.Fatal("offline replay missed the mutant")
	}
	if d.Label != LabelTick {
		t.Fatalf("expected a stuck-time divergence, got %q", d.Label)
	}
	inc, firedAt := streamEarliest(t, check, out.Events, rc.Horizon)
	if firedAt != d.Index {
		t.Fatalf("incident fired while feeding event %d, earliest possible is %d", firedAt, d.Index)
	}
	requireSameDivergence(t, d, inc, out.Events)
}

// TestStreamMutantRoundEarliest: the round-1 mutation's forbidden
// "timeout p[0]" is flagged the moment that event streams in.
func TestStreamMutantRoundEarliest(t *testing.T) {
	wrap, err := Mutation("round-1")
	if err != nil {
		t.Fatal(err)
	}
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	check := &CampaignCheck{Model: model}
	rc := RunConfig{Model: model, Seed: 3, Horizon: 20, Wrap: wrap}
	sp, err := check.Spec()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	d := sp.CheckTrace(out.Events, rc.Horizon)
	if d == nil {
		t.Fatal("offline replay missed the mutant")
	}
	inc, firedAt := streamEarliest(t, check, out.Events, rc.Horizon)
	if firedAt != d.Index {
		t.Fatalf("incident fired while feeding event %d, earliest possible is %d", firedAt, d.Index)
	}
	requireSameDivergence(t, d, inc, out.Events)
}

// TestStreamFrontierBudget pins the memory-budget degradation contract: a
// budget at the trace's high-water frontier width changes nothing; a
// budget below it sheds the inclusion check — monitor still live, no
// fabricated divergence — instead of growing the frontier.
func TestStreamFrontierBudget(t *testing.T) {
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	check := &CampaignCheck{Model: model}
	rc := RunConfig{Model: model, Seed: 5, Horizon: 40}
	out, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	tv := EvaluateTrace(model, out.Events, out.Lost, rc.Horizon)

	base := streamAll(t, StreamConfig{Check: check, Horizon: rc.Horizon}, out.Events, out.Lost)
	if base.Shed || base.Unconfirmed != nil {
		t.Fatalf("unbudgeted healthy run degraded: %+v", base)
	}
	high := base.MaxFrontierSeen
	if high < 2 {
		t.Fatalf("trace never widened the frontier (high water %d); pick a richer run", high)
	}

	within := streamAll(t, StreamConfig{Check: check, Horizon: rc.Horizon, MaxFrontier: high}, out.Events, out.Lost)
	if within.Shed || within.ShedEvents != 0 || within.Unconfirmed != nil {
		t.Fatalf("budget at the high-water mark degraded the check: %+v", within)
	}
	if within.MaxFrontierSeen != high {
		t.Fatalf("high water changed under an inert budget: %d vs %d", within.MaxFrontierSeen, high)
	}

	shed := streamAll(t, StreamConfig{Check: check, Horizon: rc.Horizon, MaxFrontier: 1}, out.Events, out.Lost)
	if !shed.Shed {
		t.Fatal("budget of 1 did not shed")
	}
	if shed.Unconfirmed != nil {
		t.Fatalf("shedding fabricated a divergence: %v", shed.Unconfirmed)
	}
	if shed.ShedEvents == 0 {
		t.Fatal("shed run skipped no events")
	}
	// The R1–R3 monitor is independent of the frontier budget.
	if !reflect.DeepEqual(shed.Verdicts, tv) {
		t.Fatalf("shedding changed the verdicts: %+v vs %+v", shed.Verdicts, tv)
	}
}

// TestStreamMillionEventAllocFree pins bounded memory the hard way: one
// million generated events through a saturated (degraded) piecewise
// checker, with the incident tail ring and the R1–R3 monitor live, must
// allocate nothing per event in steady state — the checker's footprint
// does not grow with the stream.
func TestStreamMillionEventAllocFree(t *testing.T) {
	env := models.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}
	check := &CampaignCheck{
		Model:    models.Config{TMin: 2, TMax: 4, Variant: models.Static, N: 1, Fixed: true},
		Envelope: &env,
	}
	sc, err := NewStreamChecker(StreamConfig{Check: check, Horizon: core.Tick(1) << 40})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: a retune re-holding the level-0 point enters degraded
	// mode, the sampled-observer regime whose per-event cost must be flat.
	sc.Feed(Event{Time: 0, Label: labelRetune(2, 4)})

	const events = 1 << 20
	now := core.Tick(0)
	beat := labelDeliverToP0(1)
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < events; i++ {
			now++
			label := "p[1]: frobnicate"
			if i%2 == 0 {
				label = beat
			}
			sc.Feed(Event{Time: now, Label: label})
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state feed allocates %v per 2^20 events, want 0", allocs)
	}
	res, err := sc.Finish(1) // lossy: R2/R3 vacuous
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed != nil {
		t.Fatalf("degraded stream diverged: %v", res.Unconfirmed)
	}
	if res.Events < 2*events {
		t.Fatalf("stream consumed %d events, want >= %d", res.Events, 2*events)
	}
	if res.MaxFrontierSeen == 0 {
		t.Fatal("frontier high water was never tracked")
	}
}
