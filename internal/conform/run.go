package conform

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/mc"
	"repro/internal/models"
	"repro/internal/netem"
	"repro/internal/sim"
)

// ErrUnsupported reports a configuration the conformance layer cannot
// soundly check.
var ErrUnsupported = errors.New("conform: unsupported configuration")

// RunConfig describes one recorded conformance run.
type RunConfig struct {
	// Model is the configuration whose runtime realisation to drive. The
	// ablation knobs FixPriority/FixBounds are unsupported (the runtime
	// only implements both fixes together, via core.Config.Fixed).
	Model models.Config
	// Seed drives the simulator and fault-layer randomness.
	Seed int64
	// Horizon is the virtual time to run (and check time passing) to.
	Horizon core.Tick
	// MaxDelay is the per-direction link delay bound. Keep it 0 for
	// unfixed models: with random delays, FIFO scheduling can force the
	// runtime's timeout ahead of a same-instant reply delivery, which the
	// unfixed model resolves the other way via a channel busy-drop —
	// a spurious divergence, not a protocol bug.
	MaxDelay core.Tick
	// Schedule is an optional fault schedule; see CheckSchedule for the
	// supported event kinds.
	Schedule *faults.Schedule
	// Wrap, if non-nil, wraps every machine (see Mutation); used to prove
	// the checker catches defective detectors.
	Wrap func(id netem.NodeID, m core.Machine) core.Machine
}

// RunResult is a recorded conformance run.
type RunResult struct {
	// Events is the recorded abstract trace.
	Events []Event
	// Lost counts messages dropped anywhere (link loss, fault-layer loss,
	// partitions, crashed senders): the no-loss premise of R2/R3.
	Lost uint64
	// Cluster is the finished cluster, for further inspection.
	Cluster *detector.Cluster
}

// CheckSchedule reports whether a fault schedule stays within the
// model's world: crashes, message loss, partitions and link failures map
// onto model transitions ("crash p[i]", "lose …"), and added latency
// rides the model's nondeterministic message transit (keep delays within
// the round-trip bound, see RunConfig.MaxDelay). Graceful leaves and
// rejoins are admitted too — their runtime handshake differs from the
// model's by design, so their events carry honest non-model labels that
// plain CheckTrace reports as divergent and the piecewise checker
// (CheckTraceAdaptive) classifies as confirmed. Restarts, duplication,
// reordering and clock drift have no model counterpart at all.
func CheckSchedule(s *faults.Schedule) error {
	if s == nil {
		return nil
	}
	for _, e := range s.Events {
		switch e.Kind {
		case faults.KindCrash, faults.KindLoss, faults.KindPartition,
			faults.KindHeal, faults.KindLinkDown, faults.KindLinkUp,
			faults.KindDelay, faults.KindLeave, faults.KindRejoin:
		default:
			return fmt.Errorf("%w: schedule event %v has no model counterpart", ErrUnsupported, e.Kind)
		}
	}
	return nil
}

// ClusterFor maps a model configuration onto the runtime cluster shape
// that realises it (protocol, variant flags, timing constants, N). Callers
// that build their own clusters — e.g. scenario campaigns with conformance
// checking attached — use it to guarantee the deployment matches the model
// being checked against.
func ClusterFor(m models.Config) (detector.ClusterConfig, error) {
	return clusterConfig(m)
}

// clusterConfig maps a model configuration onto a runtime cluster.
func clusterConfig(m models.Config) (detector.ClusterConfig, error) {
	if err := m.Validate(); err != nil {
		return detector.ClusterConfig{}, err
	}
	if (m.FixPriority || m.FixBounds) && !m.Fixed {
		return detector.ClusterConfig{}, fmt.Errorf("%w: runtime has no ablation knobs, use Fixed", ErrUnsupported)
	}
	cc := detector.ClusterConfig{
		N: m.N,
		Core: core.Config{
			TMin:  core.Tick(m.TMin),
			TMax:  core.Tick(m.TMax),
			Fixed: m.Fixed,
		},
	}
	switch m.Variant {
	case models.Binary:
		cc.Protocol = detector.ProtocolBinary
	case models.RevisedBinary:
		cc.Protocol = detector.ProtocolBinary
		cc.Core.Revised = true
	case models.TwoPhase:
		cc.Protocol = detector.ProtocolBinary
		cc.Core.TwoPhase = true
	case models.Static:
		cc.Protocol = detector.ProtocolStatic
	case models.Expanding:
		cc.Protocol = detector.ProtocolExpanding
	case models.Dynamic:
		cc.Protocol = detector.ProtocolDynamic
	default:
		return detector.ClusterConfig{}, fmt.Errorf("%w: unknown variant %v", ErrUnsupported, m.Variant)
	}
	return cc, nil
}

// Run drives one simulated cluster with the recorder attached and returns
// the recorded trace. The run is deterministic in (Model, Seed, Horizon,
// MaxDelay, Schedule).
func Run(rc RunConfig) (*RunResult, error) {
	rec := NewRecorder()
	cl, lost, err := runObserved(rc, rec)
	if err != nil {
		return nil, err
	}
	return &RunResult{Events: rec.Events(), Lost: lost, Cluster: cl}, nil
}

// runObserved drives one simulated cluster with an observer attached —
// the shared guts of Run (Recorder) and RunStream (StreamChecker) — and
// returns the stopped cluster plus the run's total loss count (the
// no-loss premise of R2/R3).
func runObserved(rc RunConfig, obs detector.Observer) (*detector.Cluster, uint64, error) {
	if err := CheckSchedule(rc.Schedule); err != nil {
		return nil, 0, err
	}
	cc, err := clusterConfig(rc.Model)
	if err != nil {
		return nil, 0, err
	}
	cc.Seed = rc.Seed
	cc.Link = netem.LinkConfig{MaxDelay: sim.Time(rc.MaxDelay)}
	cc.Faults = rc.Schedule
	cc.WrapMachine = rc.Wrap
	cc.Observe = obs

	cl, err := detector.NewCluster(cc)
	if err != nil {
		return nil, 0, err
	}
	if err := cl.Start(); err != nil {
		return nil, 0, err
	}
	cl.Sim.RunUntil(sim.Time(rc.Horizon))
	cl.Stop()
	if errs := cl.FaultErrors(); len(errs) > 0 {
		return nil, 0, fmt.Errorf("conform: fault schedule failed: %w", errs[0])
	}

	lost := cl.Net.Stats().Total.Lost
	if cl.Faults != nil {
		fs := cl.Faults.Stats()
		lost += fs.DroppedMuted + fs.DroppedPartition + fs.DroppedLoss
	}
	return cl, lost, nil
}

// CampaignCheck attaches conformance checking to scenario campaigns: the
// model configuration the cluster under test realises, plus exploration
// options for building its LTS. Specs are built once per operating point
// and shared across trials.
type CampaignCheck struct {
	Model models.Config
	// Envelope, if non-nil, marks the campaign as adaptive: the runtime
	// coordinator retunes within this envelope and traces are checked
	// piecewise against the per-level specifications (CheckTraceAdaptive).
	// Model.TMin/TMax are then overridden per level via
	// models.Envelope.LevelConfig; the rest of Model (variant, N, Fixed)
	// still shapes every level.
	Envelope *models.Envelope
	Opts     mc.Options

	mu    sync.Mutex
	specs map[int]levelSpec
}

type levelSpec struct {
	sp  *Spec
	err error
}

// baseLevel keys the non-envelope specification (the Model as given).
const baseLevel = -1

// Spec returns the (lazily built, cached) specification of the base
// model configuration.
func (c *CampaignCheck) Spec() (*Spec, error) { return c.specAt(baseLevel) }

// SpecAt returns the (lazily built, cached) specification of one
// envelope level. It requires Envelope to be set.
func (c *CampaignCheck) SpecAt(level int) (*Spec, error) {
	if c.Envelope == nil {
		return nil, fmt.Errorf("%w: SpecAt without an envelope", ErrUnsupported)
	}
	if level < 0 || level >= c.Envelope.Levels() {
		return nil, fmt.Errorf("%w: envelope has no level %d", ErrUnsupported, level)
	}
	return c.specAt(level)
}

func (c *CampaignCheck) specAt(level int) (*Spec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.specs[level]; ok {
		return e.sp, e.err
	}
	cfg := c.Model
	if level != baseLevel {
		cfg = c.Envelope.LevelConfig(c.Model, level)
	}
	sp, err := BuildSpec(cfg, c.Opts)
	if c.specs == nil {
		c.specs = make(map[int]levelSpec, 4)
	}
	c.specs[level] = levelSpec{sp: sp, err: err}
	return sp, err
}
