package conform

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
)

// PiecewiseResult is the outcome of envelope-aware piecewise trace
// checking. A campaign gates on Unconfirmed == nil: every event either
// matched the specification in force, was a model-confirmed envelope
// transition, or belongs to a runtime mechanism that is excluded from
// conformance by design (and said so with an honest label).
type PiecewiseResult struct {
	// Unconfirmed is the first divergence no rule explains, nil when the
	// whole trace (and the passage of time up to the horizon) is covered.
	Unconfirmed *Divergence
	// Confirmed counts divergences explained by design: the runtime leave
	// handshake, restarts, rejoins, and stray beats between participants.
	Confirmed int
	// Degraded counts events outside the level alphabet seen in degraded
	// mode — between a saturated retune (the coordinator re-holding the
	// envelope ceiling) and the next level change, where the runtime
	// intentionally behaves like a plain heartbeat rather than the
	// accelerated model.
	Degraded int
	// Retunes counts envelope transitions, each confirmed against the
	// envelope's level set before the checker switched specifications.
	Retunes int
	// Saturations counts retunes that re-held the current point: the
	// degradation endpoint where widening has nowhere left to go.
	Saturations int
	// FinalLevel is the envelope level whose specification was in force
	// when the trace ended.
	FinalLevel int
}

// confirmedByDesign classifies divergence labels the conformance scope
// excludes on purpose (see the package comment): the runtime's
// leaver-initiated leave handshake (decide/send/deliver leave, leave
// acks), supervisor restarts, churn rejoins, and the stray beats a
// departed or restarted node may still receive. Anything else — including
// LabelTick, a forced model action the runtime never produced — stays
// unconfirmed.
func confirmedByDesign(label string) bool {
	switch {
	case strings.Contains(label, "leave"):
		return true
	case strings.HasSuffix(label, ": restart"), strings.HasSuffix(label, ": rejoin"):
		return true
	case strings.HasPrefix(label, "deliver stray beat"):
		return true
	}
	return false
}

// CheckTraceAdaptive replays a recorded trace of an adaptive cluster
// against the envelope's family of specifications, piecewise:
//
//   - Between retunes the trace must be included in the LTS of the level
//     in force, exactly as Spec.CheckTrace demands — same antichain
//     simulation, same tick discipline.
//   - A retune label is confirmed by locating its operating point among
//     the envelope's levels (a point outside the verified family is an
//     unconfirmed divergence). The checker then switches to that level's
//     specification with the frontier reseeded to every state: the model
//     family has no transition connecting the levels, so the suffix is
//     checked against all continuations of the new level.
//   - Divergences at by-design non-model events (confirmedByDesign) are
//     counted and the frontier likewise reseeded at the current level.
//   - A retune that re-holds the current point is saturation: the
//     coordinator is at the envelope ceiling under sustained loss,
//     converting every round into a grace round — plain-heartbeat
//     behaviour that is deliberately NOT a trace of the fixed top-level
//     model (whose reachable states correlate a silent member's watchdog
//     with the coordinator's decayed budget and so force a suspicion the
//     degraded runtime refuses). From that point until the next level
//     change the checker is in degraded mode: trace inclusion is
//     suspended (there is no model to check against), events outside the
//     level's alphabet are counted in Degraded, and checking resumes
//     from the all-states frontier at the next level change.
//
// The all-states reseed — and degraded mode's suspended checking — make
// the piecewise check an over-approximation after the first confirmed
// divergence: it can miss a real divergence, never invent one, so "zero
// unconfirmed divergences" remains a sound campaign gate.
// Like Spec.CheckTrace it is a thin offline loop over the incremental
// streamEngine, so offline piecewise replay and online streaming
// (StreamChecker over an envelope) return identical results by
// construction.
func (c *CampaignCheck) CheckTraceAdaptive(events []Event, horizon core.Tick) (*PiecewiseResult, error) {
	if c.Envelope == nil {
		return nil, fmt.Errorf("%w: CheckTraceAdaptive needs an envelope", ErrUnsupported)
	}
	e, err := newAdaptiveEngine(c, 0)
	if err != nil {
		return nil, err
	}
	res := &PiecewiseResult{}
	for i, ev := range events {
		d, err := e.feed(i, ev)
		if err != nil {
			return nil, err
		}
		if d != nil {
			res.Unconfirmed = d.divergence(events)
			e.fill(res)
			return res, nil
		}
	}
	if d := e.finish(horizon, len(events)); d != nil {
		res.Unconfirmed = d.divergence(events)
	}
	e.fill(res)
	return res, nil
}

// envelopeLevelOf locates an operating point among the envelope's levels.
func envelopeLevelOf(env models.Envelope, tmin, tmax int32) (int, bool) {
	for level := 0; level < env.Levels(); level++ {
		if lo, hi := env.Point(level); lo == tmin && hi == tmax {
			return level, true
		}
	}
	return 0, false
}
