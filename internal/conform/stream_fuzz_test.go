package conform

import (
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

// fuzzHorizon bounds the fuzzed streams' time checking.
const fuzzHorizon = core.Tick(64)

// fuzzChecks builds the fuzz target's specs once per process: the
// smallest adaptive family plus its plain base spec.
var fuzzChecks = sync.OnceValues(func() (*CampaignCheck, *CampaignCheck) {
	env := models.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Static, N: 1, Fixed: true}
	return &CampaignCheck{Model: model, Envelope: &env}, &CampaignCheck{Model: model}
})

// parseFuzzTrace decodes an event per line, "<time> <label>", skipping
// lines that don't parse. Times are arbitrary (negative, out of order);
// labels are arbitrary bytes. Capped so a single input stays cheap.
func parseFuzzTrace(data string) []Event {
	var events []Event
	for _, line := range strings.Split(data, "\n") {
		t, label, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			continue
		}
		events = append(events, Event{Time: core.Tick(n), Label: label})
		if len(events) >= 1<<12 {
			break
		}
	}
	return events
}

// FuzzStreamChecker feeds arbitrary event sequences — malformed retune
// labels, out-of-order virtual timestamps, garbage labels — through the
// streaming checker and demands it (a) never panics, (b) is
// deterministic, and (c) agrees byte-for-byte with the offline replay
// checkers on verdicts, piecewise counters, and the first divergence.
// This target caught the trailing-junk bug in parseRetune ("p[0]: retune
// to (2,4)x" was accepted as an envelope transition).
func FuzzStreamChecker(f *testing.F) {
	f.Add("0 p[0]: retune to (2,4)\n1 p[1]: frobnicate\n2 deliver beat to p[0] from p[1]")
	f.Add("0 p[0]: retune to (2,4)x\n1 p[0]: retune to (2,8)\n3 timeout p[0]")
	f.Add("5 deliver beat to p[0] from p[1]\n2 p[1]: send beat\n-3 tick")
	f.Add("0 p[0]: retune to (3,5)\n1 p[0]: retune to (-2,4)")
	f.Add("1 p[1]: send beat\n2 deliver beat to p[0] from p[1]\n3 timeout p[0]\n63 inactivate nv p[1]")
	f.Add("0 p[1]: decide leave\n1 p[1]: restart\n2 p[1]: rejoin\n3 deliver stray beat to p[1] from p[2]")
	f.Fuzz(func(t *testing.T, data string) {
		events := parseFuzzTrace(data)
		adaptive, plain := fuzzChecks()

		// Piecewise: offline CheckTraceAdaptive is the oracle.
		pr, err := adaptive.CheckTraceAdaptive(events, fuzzHorizon)
		if err != nil {
			t.Fatalf("CheckTraceAdaptive: %v", err)
		}
		run := func() *StreamResult {
			sc, err := NewStreamChecker(StreamConfig{Check: adaptive, Horizon: fuzzHorizon})
			if err != nil {
				t.Fatalf("NewStreamChecker: %v", err)
			}
			for _, ev := range events {
				sc.Feed(ev)
			}
			res, err := sc.Finish(0)
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			return res
		}
		sres := run()
		requireSameDivergence(t, pr.Unconfirmed, sres.Unconfirmed, events)
		if sres.Confirmed != pr.Confirmed || sres.Degraded != pr.Degraded ||
			sres.Retunes != pr.Retunes || sres.Saturations != pr.Saturations ||
			sres.FinalLevel != pr.FinalLevel {
			t.Fatalf("piecewise counters differ:\n  stream:  %+v\n  offline: %+v", sres, pr)
		}
		env := adaptive.Envelope
		monCfg := env.LevelConfig(adaptive.Model, env.Levels()-1)
		if tv := EvaluateTrace(monCfg, events, 0, fuzzHorizon); !reflect.DeepEqual(sres.Verdicts, tv) {
			t.Fatalf("verdicts differ:\n  stream:  %+v\n  offline: %+v", sres.Verdicts, tv)
		}
		if again := run(); !reflect.DeepEqual(again, sres) {
			t.Fatalf("stream checking is nondeterministic:\n  first:  %+v\n  second: %+v", sres, again)
		}

		// Plain: offline Spec.CheckTrace is the oracle.
		sp, err := plain.Spec()
		if err != nil {
			t.Fatalf("Spec: %v", err)
		}
		div := sp.CheckTrace(events, fuzzHorizon)
		psc, err := NewStreamChecker(StreamConfig{Check: plain, Horizon: fuzzHorizon})
		if err != nil {
			t.Fatalf("NewStreamChecker(plain): %v", err)
		}
		for _, ev := range events {
			psc.Feed(ev)
		}
		pres, err := psc.Finish(0)
		if err != nil {
			t.Fatalf("Finish(plain): %v", err)
		}
		requireSameDivergence(t, div, pres.Unconfirmed, events)

		// parseRetune must stay a strict inverse of labelRetune.
		for _, ev := range events {
			if tmin, tmax, ok := parseRetune(ev.Label); ok {
				if ev.Label != labelRetune(core.Tick(tmin), core.Tick(tmax)) {
					t.Fatalf("parseRetune accepted %q as (%d,%d), which renders %q",
						ev.Label, tmin, tmax, labelRetune(core.Tick(tmin), core.Tick(tmax)))
				}
			}
		}
	})
}
