package models

import (
	"testing"
)

// TestRunTableParallelDeterminism pins the parallel-table contract: any
// worker count must return cells — and therefore FormatTable output and
// VerdictStrings — byte-identical to sequential execution.
func TestRunTableParallelDeterminism(t *testing.T) {
	spec := TableSpec{
		Variants: []Variant{Binary, Expanding},
		TMins:    []int32{1, 2, 4},
		TMax:     4,
		N:        1,
	}
	seq := spec
	seq.Workers = 1
	par := spec
	par.Workers = 8

	seqCells, err := RunTable(seq)
	if err != nil {
		t.Fatalf("sequential RunTable: %v", err)
	}
	parCells, err := RunTable(par)
	if err != nil {
		t.Fatalf("parallel RunTable: %v", err)
	}

	if len(seqCells) != len(parCells) {
		t.Fatalf("cell counts differ: %d sequential, %d parallel", len(seqCells), len(parCells))
	}
	for i := range seqCells {
		s, p := seqCells[i], parCells[i]
		if s.Variant != p.Variant || s.TMin != p.TMin || s.Prop != p.Prop ||
			s.Verdict.Satisfied != p.Verdict.Satisfied ||
			s.Verdict.Result.StatesExplored != p.Verdict.Result.StatesExplored ||
			s.Verdict.Result.TransitionsExplored != p.Verdict.Result.TransitionsExplored {
			t.Fatalf("cell %d differs: sequential %+v, parallel %+v", i, s, p)
		}
	}
	if sf, pf := FormatTable(seqCells), FormatTable(parCells); sf != pf {
		t.Fatalf("FormatTable differs:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", sf, pf)
	}
	for _, variant := range spec.Variants {
		for _, tmin := range spec.TMins {
			sv := VerdictString(seqCells, variant, tmin)
			pv := VerdictString(parCells, variant, tmin)
			if sv != pv {
				t.Fatalf("%v tmin=%d: verdicts %q sequential, %q parallel", variant, tmin, sv, pv)
			}
		}
	}
}

// TestRunTableErrorPrefix pins the failure contract: the error of the
// earliest failing cell is reported and the returned cells are exactly the
// clean prefix before it, for sequential and parallel runs alike.
func TestRunTableErrorPrefix(t *testing.T) {
	spec := TableSpec{
		Variants: []Variant{Binary},
		TMins:    []int32{1, 2},
		TMax:     4,
		N:        1,
	}
	// A one-state limit fails every cell immediately; the earliest is
	// (Binary, tmin=1, R1), so no clean prefix exists.
	spec.Opts.MaxStates = 1
	for _, workers := range []int{1, 4} {
		spec.Workers = workers
		cells, err := RunTable(spec)
		if err == nil {
			t.Fatalf("workers=%d: expected state-limit error", workers)
		}
		want := "table cell binary tmin=1 R1"
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("workers=%d: error %q, want prefix %q", workers, got, want)
		}
		if len(cells) != 0 {
			t.Fatalf("workers=%d: %d cells returned before earliest failure, want 0", workers, len(cells))
		}
	}
}
