package models

import (
	"repro/internal/ta"
)

// buildChannel constructs the pair channel between p[0] and p[i+1]
// (Figure 5 of the analysis, reconstructed input-enabled — see the
// package comment). One clock carries the shared round-trip budget: it is
// reset when p[0]'s beat enters the channel and keeps running through the
// reply leg, so the forward delay plus the reply delay never exceeds tmin,
// exactly the papers' "tmin is an upper bound on the round-trip delay".
func (m *Model) buildChannel(i int) {
	cfg := m.Cfg
	net := m.Net
	tmin := cfg.TMin
	rt := net.Clock("rt_"+pname(i), tmin+1)
	jnd := m.vJnd[i]
	active := m.vActive[i]
	lost := m.vLost
	dynamic := cfg.Variant == Dynamic

	var c chanRefs
	c.rt = rt
	a := &ta.Automaton{Name: "Ch" + pname(i)}
	c.idle = addLoc(a, ta.Location{Name: "Idle"})
	c.fly = addLoc(a, ta.Location{
		Name:      "Fwd",
		Invariant: func(s *ta.State) bool { return s.Clocks[rt] <= tmin },
	})
	// Await is transient within an instant: p[i] either replies from its
	// committed Rcvd location or, being inactive, never will.
	c.await = addLoc(a, ta.Location{Name: "Await", Kind: ta.Urgent})
	c.replyTrue = addLoc(a, ta.Location{
		Name:      "Reply",
		Invariant: func(s *ta.State) bool { return s.Clocks[rt] <= tmin },
	})
	c.replyFalse = -1
	if dynamic {
		c.replyFalse = addLoc(a, ta.Location{
			Name:      "ReplyFalse",
			Invariant: func(s *ta.State) bool { return s.Clocks[rt] <= tmin },
		})
	}
	a.Init = c.idle

	// Accept p[0]'s broadcast for joined members; the budget starts now.
	a.Edges = append(a.Edges, ta.Edge{
		From: c.idle, To: c.fly,
		Chan:   m.chBcast,
		Guard:  func(s *ta.State) bool { return s.Vars[jnd] == 1 },
		Update: func(s *ta.State) { s.Clocks[rt] = 0 },
	})
	// Forward leg: deliver to p[i] (keeping the budget running), or lose.
	a.Edges = append(a.Edges,
		ta.Edge{
			From: c.fly, To: c.await,
			Chan: m.chDlv[i], Send: true,
			Label: "deliver beat to " + pname(i),
			Class: ta.ClassDeliver,
		},
		ta.Edge{
			From: c.fly, To: c.idle,
			Label:  "lose beat to " + pname(i),
			Update: func(s *ta.State) { s.Vars[lost] = 1 },
		},
	)
	// The reply, if any, arrives in the same instant as the delivery.
	a.Edges = append(a.Edges,
		ta.Edge{From: c.await, To: c.replyTrue, Chan: m.chReply[i]},
		ta.Edge{
			From: c.await, To: c.idle,
			Guard: func(s *ta.State) bool { return s.Vars[active] == 0 },
			Label: pname(i) + " gives no reply",
		},
	)
	if dynamic {
		a.Edges = append(a.Edges, ta.Edge{
			From: c.await, To: c.replyFalse, Chan: m.chReplyFalse[i],
		})
	}
	// Reply leg: deliver to p[0] within the remaining budget, or lose.
	a.Edges = append(a.Edges,
		ta.Edge{
			From: c.replyTrue, To: c.idle,
			Chan: m.chDlvTrue[i], Send: true,
			Label: "deliver beat to p[0] from " + pname(i),
			Class: ta.ClassDeliver,
		},
		ta.Edge{
			From: c.replyTrue, To: c.idle,
			Label:  "lose beat from " + pname(i),
			Update: func(s *ta.State) { s.Vars[lost] = 1 },
		},
	)
	if dynamic {
		a.Edges = append(a.Edges,
			ta.Edge{
				From: c.replyFalse, To: c.idle,
				Chan: m.chDlvFalse[i], Send: true,
				Label: "deliver leave beat to p[0] from " + pname(i),
				Class: ta.ClassDeliver,
			},
			ta.Edge{
				From: c.replyFalse, To: c.idle,
				Label:  "lose leave beat from " + pname(i),
				Update: func(s *ta.State) { s.Vars[lost] = 1 },
			},
		)
	}
	// Input-enabledness: a beat arriving while the channel is busy is
	// dropped and recorded as a loss (see the package comment for why
	// this is sound for R1–R3).
	for _, loc := range []int{c.fly, c.await, c.replyTrue} {
		a.Edges = append(a.Edges, ta.Edge{
			From: loc, To: loc,
			Chan:   m.chBcast,
			Guard:  func(s *ta.State) bool { return s.Vars[jnd] == 1 },
			Update: func(s *ta.State) { s.Vars[lost] = 1 },
		})
	}
	if dynamic {
		a.Edges = append(a.Edges, ta.Edge{
			From: c.replyFalse, To: c.replyFalse,
			Chan:   m.chBcast,
			Guard:  func(s *ta.State) bool { return s.Vars[jnd] == 1 },
			Update: func(s *ta.State) { s.Vars[lost] = 1 },
		})
	}

	c.aut = len(net.Automata())
	net.Add(a)
	m.chs = append(m.chs, c)
}

// buildJoinChannel carries p[i+1]'s solicitations to p[0]. Its delay is
// bounded by tmax, not tmin: the papers' round-trip budget applies to
// exchanges initiated by p[0], and the analysis' Figure 13 counter-example
// depends on a solicitation arriving a full round after it was sent
// ("received at p[0] right after the first time-out"). The channel holds
// one solicitation at a time; the joiner suppresses re-solicitation while
// one is outstanding (solicitations are idempotent), so overlap never
// counts as message loss.
func (m *Model) buildJoinChannel(i int) {
	cfg := m.Cfg
	net := m.Net
	bound := cfg.TMax
	rt := net.Clock("rtj_"+pname(i), bound+1)
	lost := m.vLost

	var c joinChanRefs
	c.rt = rt
	a := &ta.Automaton{Name: "JoinCh" + pname(i)}
	c.idle = addLoc(a, ta.Location{Name: "Idle"})
	c.fly = addLoc(a, ta.Location{
		Name:      "Fwd",
		Invariant: func(s *ta.State) bool { return s.Clocks[rt] <= bound },
	})
	a.Init = c.idle

	a.Edges = append(a.Edges,
		ta.Edge{
			From: c.idle, To: c.fly,
			Chan:   m.chJoin[i],
			Update: func(s *ta.State) { s.Clocks[rt] = 0 },
		},
		ta.Edge{
			From: c.fly, To: c.idle,
			Chan: m.chDlvTrue[i], Send: true,
			Label: "deliver join beat to p[0] from " + pname(i),
			Class: ta.ClassDeliver,
		},
		ta.Edge{
			From: c.fly, To: c.idle,
			Label:  "lose join beat from " + pname(i),
			Update: func(s *ta.State) { s.Vars[lost] = 1 },
		},
	)
	c.aut = len(net.Automata())
	net.Add(a)
	m.jchs = append(m.jchs, c)
}
