package models

import (
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/ta"
	"repro/internal/trace"
)

// expected verdicts per variant: R1, R2, R3 over the paper's tmin sweep
// {1, 4, 5, 9, 10} at tmax = 10.
//
// Binary, revised binary and static reproduce Table 1 of the analysis;
// expanding and dynamic reproduce Table 2. The two-phase protocol is not a
// column of Table 1 (its inactivation rule is under-specified in the 1998
// paper; the analysis only notes its counter-examples coincide with the
// binary ones where reported) — under the inactivation rule implemented
// here (a missed round at t == tmin exhausts p[0]) its R1 row diverges at
// tmin = 9: the stale-reset round plus the tmin probe takes
// 2·tmax + tmin > 2·tmax.
var expectedOriginal = map[Variant][3]string{
	Binary:        {"FFFTT", "TTTTF", "TTTTF"},
	RevisedBinary: {"FFFTT", "TTTTF", "TTTTF"},
	TwoPhase:      {"FFFFT", "TTTTF", "TTTTF"},
	Static:        {"FFFTT", "TTTTF", "TTTTF"},
	Expanding:     {"FFFTT", "TTFFF", "TTTTF"},
	Dynamic:       {"FFFTT", "TTFFF", "TTTTF"},
}

func participantsFor(v Variant) int {
	if v == Static {
		return 2
	}
	return 1
}

// checkRow verifies one (variant, property) row against the expected
// T/F string over the tmin sweep.
func checkRow(t *testing.T, variant Variant, prop Property, fixed bool, want string) {
	t.Helper()
	for i, tmin := range DefaultTMins() {
		cfg := Config{
			TMin:    tmin,
			TMax:    10,
			Variant: variant,
			N:       participantsFor(variant),
			Fixed:   fixed,
		}
		v, err := Verify(cfg, prop, mc.Options{MaxStates: 20_000_000})
		if err != nil {
			t.Fatalf("%v %v tmin=%d: %v", variant, prop, tmin, err)
		}
		wantSat := want[i] == 'T'
		if v.Satisfied != wantSat {
			detail := ""
			if !v.Satisfied {
				detail = "\n" + trace.Summary(v.Result.Trace)
			}
			t.Errorf("%v %v tmin=%d fixed=%v: satisfied=%v, want %v%s",
				variant, prop, tmin, fixed, v.Satisfied, wantSat, detail)
		}
	}
}

func TestTable1BinaryFamily(t *testing.T) {
	for _, variant := range []Variant{Binary, RevisedBinary, TwoPhase} {
		rows := expectedOriginal[variant]
		for pi, prop := range []Property{R1, R2, R3} {
			checkRow(t, variant, prop, false, rows[pi])
		}
	}
}

func TestTable1Static(t *testing.T) {
	if testing.Short() {
		t.Skip("static exploration reaches millions of states; skipped in -short")
	}
	rows := expectedOriginal[Static]
	for pi, prop := range []Property{R1, R2, R3} {
		checkRow(t, Static, prop, false, rows[pi])
	}
}

func TestTable2ExpandingDynamic(t *testing.T) {
	for _, variant := range []Variant{Expanding, Dynamic} {
		rows := expectedOriginal[variant]
		for pi, prop := range []Property{R1, R2, R3} {
			checkRow(t, variant, prop, false, rows[pi])
		}
	}
}

// TestFixedProtocolsSatisfyEverything is the §6 result: with receive
// priority and the corrected bounds, every requirement holds on every
// data set.
func TestFixedProtocolsSatisfyEverything(t *testing.T) {
	variants := []Variant{Binary, RevisedBinary, TwoPhase, Expanding, Dynamic}
	if !testing.Short() {
		variants = append(variants, Static)
	}
	for _, variant := range variants {
		for _, prop := range []Property{R1, R2, R3} {
			checkRow(t, variant, prop, true, "TTTTT")
		}
	}
}

func TestRunTableAndFormat(t *testing.T) {
	cells, err := RunTable(TableSpec{
		Variants: []Variant{Binary},
		TMins:    []int32{1, 10},
		TMax:     10,
		N:        1,
		Opts:     mc.Options{MaxStates: 5_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	if got := VerdictString(cells, Binary, 1); got != "FTT" {
		t.Fatalf("verdicts tmin=1 = %q, want FTT", got)
	}
	if got := VerdictString(cells, Binary, 10); got != "TFF" {
		t.Fatalf("verdicts tmin=10 = %q, want TFF", got)
	}
	out := FormatTable(cells)
	for _, frag := range []string{"binary protocol", "R1", "R3", "tmin"} {
		if !contains(out, frag) {
			t.Fatalf("formatted table missing %q:\n%s", frag, out)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestFigureCatalogue reproduces every counter-example figure and asserts
// the shape the analysis describes.
func TestFigureCatalogue(t *testing.T) {
	opts := mc.Options{MaxStates: 10_000_000}

	t.Run("10a stale beat stretches R1 past 2tmax", func(t *testing.T) {
		f, err := FindFigure("10a")
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(f.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The distinguishing feature of 10(a) over 10(b): p[0] received
		// at least one beat from p[1] and still overshoots the bound.
		res, err := m.VerifyGoal(func(s *ta.State) bool {
			return m.R1Violated(s) && m.EverDelivered(s, 0) && !m.MessageLost(s)
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reachable {
			t.Fatal("stale-beat R1 counter-example not found")
		}
		last := res.Trace[len(res.Trace)-1]
		if last.Time <= 20 {
			t.Fatalf("error at %d, want after 2·tmax=20", last.Time)
		}
		if !contains(trace.Summary(res.Trace), "deliver beat to p[0]") {
			t.Fatalf("trace lacks the stale delivery:\n%s", trace.Summary(res.Trace))
		}
	})

	t.Run("10b plain decay overshoots at 2tmin<=tmax", func(t *testing.T) {
		f, err := FindFigure("10b")
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Reproduce(opts)
		if err != nil {
			t.Fatal(err)
		}
		last := v.Result.Trace[len(v.Result.Trace)-1]
		if last.Time <= 20 {
			t.Fatalf("error at %d, want after 2·tmax", last.Time)
		}
	})

	t.Run("11 simultaneous beat and watchdog at p[1]", func(t *testing.T) {
		f, err := FindFigure("11")
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Reproduce(opts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(f.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := v.Result.Trace[len(v.Result.Trace)-1]
		if !m.ParticipantNVInactivated(&last.State, 0) {
			t.Fatal("p[1] not NV-inactivated in the witness")
		}
		if m.MessageLost(&last.State) {
			t.Fatal("witness uses a lost message")
		}
		// The race happens exactly at p[1]'s watchdog bound
		// 3·tmax − tmin = 2·tmax = 20.
		if last.Time != 20 {
			t.Fatalf("p[1] inactivated at %d, want 20", last.Time)
		}
	})

	t.Run("12 simultaneous reply and round timeout at p[0]", func(t *testing.T) {
		f, err := FindFigure("12")
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Reproduce(opts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(f.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := v.Result.Trace[len(v.Result.Trace)-1]
		if !m.P0NVInactivated(&last.State) {
			t.Fatal("p[0] not NV-inactivated in the witness")
		}
		if !m.ParticipantAlive(&last.State, 0) {
			t.Fatal("p[1] not alive at p[0]'s inactivation")
		}
	})

	t.Run("13 joiner acknowledged too late at 2tmin>=tmax", func(t *testing.T) {
		f, err := FindFigure("13")
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Reproduce(opts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(f.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := v.Result.Trace[len(v.Result.Trace)-1]
		if !m.ParticipantNVInactivated(&last.State, 0) {
			t.Fatal("p[1] not NV-inactivated")
		}
		if !m.P0Alive(&last.State) {
			t.Fatal("p[0] not alive at the violation")
		}
		// The joiner gives up at 3·tmax − tmin = 25 without ever joining.
		if last.Time != 25 {
			t.Fatalf("give-up at %d, want 25", last.Time)
		}
	})
}

func TestFindFigureUnknown(t *testing.T) {
	if _, err := FindFigure("99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(Figures()) != 5 {
		t.Fatalf("catalogue has %d figures, want 5", len(Figures()))
	}
}

// TestReproduceFailsWhenSatisfied: Reproduce must reject a figure whose
// property actually holds (guards against silently-green "reproductions").
func TestReproduceFailsWhenSatisfied(t *testing.T) {
	f := Figure{
		ID:   "bogus",
		Cfg:  Config{TMin: 9, TMax: 10, Variant: Binary, N: 1},
		Prop: R1, // satisfied at tmin=9
	}
	if _, err := f.Reproduce(mc.Options{MaxStates: 5_000_000}); err == nil {
		t.Fatal("Reproduce on a satisfied property must fail")
	}
}
