package models

import (
	"fmt"

	"repro/internal/mc"
)

// Figure identifies one counter-example figure of the analysis and the
// configuration that reproduces it.
type Figure struct {
	// ID is the figure number in the analysis ("10a", "10b", "11", "12",
	// "13").
	ID string
	// Title describes the scenario.
	Title string
	// Cfg is the model configuration exhibiting the counter-example.
	Cfg Config
	// Prop is the violated requirement.
	Prop Property
}

// Figures returns the counter-example catalogue of §5.5, with the paper's
// parameters (tmax = 10).
func Figures() []Figure {
	return []Figure{
		{
			ID:    "10a",
			Title: "R1 counter-example, 2·tmin < tmax: a stale reply restores t=tmax and detection stretches past 2·tmax (binary, tmin=1)",
			Cfg:   Config{TMin: 1, TMax: 10, Variant: Binary, N: 1},
			Prop:  R1,
		},
		{
			ID:    "10b",
			Title: "R1 counter-example, 2·tmin <= tmax: even the plain decay overshoots 2·tmax (binary, tmin=5)",
			Cfg:   Config{TMin: 5, TMax: 10, Variant: Binary, N: 1},
			Prop:  R1,
		},
		{
			ID:    "11",
			Title: "R2 counter-example, tmin = tmax: beat and watchdog expire simultaneously at p[1]; the timeout wins (binary, tmin=10)",
			Cfg:   Config{TMin: 10, TMax: 10, Variant: Binary, N: 1},
			Prop:  R2,
		},
		{
			ID:    "12",
			Title: "R3 counter-example, tmin = tmax: reply and round timeout arrive simultaneously at p[0]; the timeout wins (binary, tmin=10)",
			Cfg:   Config{TMin: 10, TMax: 10, Variant: Binary, N: 1},
			Prop:  R3,
		},
		{
			ID:    "13",
			Title: "R2 counter-example, 2·tmin >= tmax: a join request lands just after p[0]'s timeout and the acknowledgement takes 2·tmax + tmin (expanding, tmin=5)",
			Cfg:   Config{TMin: 5, TMax: 10, Variant: Expanding, N: 1},
			Prop:  R2,
		},
	}
}

// FindFigure locates a figure by ID.
func FindFigure(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("%w: unknown figure %q", ErrConfig, id)
}

// Reproduce model-checks the figure's property and returns the
// counter-example trace. It fails if the property unexpectedly holds.
func (f Figure) Reproduce(opts mc.Options) (Verdict, error) {
	v, err := Verify(f.Cfg, f.Prop, opts)
	if err != nil {
		return Verdict{}, err
	}
	if v.Satisfied {
		return v, fmt.Errorf("figure %s: %v unexpectedly satisfied on %v", f.ID, f.Prop, f.Cfg.Variant)
	}
	return v, nil
}
