package models

import (
	"errors"
	"testing"

	"repro/internal/mc"
	"repro/internal/ta"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"binary", Config{TMin: 1, TMax: 10, Variant: Binary, N: 1}, true},
		{"equal bounds", Config{TMin: 10, TMax: 10, Variant: Dynamic, N: 1}, true},
		{"zero tmin", Config{TMin: 0, TMax: 10, Variant: Binary, N: 1}, false},
		{"tmax below tmin", Config{TMin: 5, TMax: 4, Variant: Binary, N: 1}, false},
		{"no variant", Config{TMin: 1, TMax: 10, N: 1}, false},
		{"zero participants", Config{TMin: 1, TMax: 10, Variant: Static, N: 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Build(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("Build = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrConfig) {
				t.Fatalf("error %v is not ErrConfig", err)
			}
		})
	}
}

func TestBinaryVariantsForceSingleParticipant(t *testing.T) {
	for _, v := range []Variant{Binary, RevisedBinary, TwoPhase} {
		m, err := Build(Config{TMin: 1, TMax: 10, Variant: v, N: 5})
		if err != nil {
			t.Fatalf("Build(%v): %v", v, err)
		}
		if len(m.ps) != 1 {
			t.Fatalf("%v built %d participants, want 1", v, len(m.ps))
		}
	}
}

func TestBoundsSelection(t *testing.T) {
	orig := Config{TMin: 4, TMax: 10, Variant: Expanding, N: 1}
	if orig.responderBound() != 26 || orig.joinerBound() != 26 || orig.r1Bound() != 20 {
		t.Fatalf("original bounds: %d %d %d", orig.responderBound(), orig.joinerBound(), orig.r1Bound())
	}
	fixed := orig
	fixed.Fixed = true
	if fixed.responderBound() != 20 || fixed.joinerBound() != 24 || fixed.r1Bound() != 26 {
		t.Fatalf("fixed bounds: %d %d %d", fixed.responderBound(), fixed.joinerBound(), fixed.r1Bound())
	}
	// Fixed R1 bound collapses to 2·tmax when 2·tmin > tmax.
	tight := Config{TMin: 9, TMax: 10, Variant: Binary, N: 1, Fixed: true}
	if tight.r1Bound() != 20 {
		t.Fatalf("fixed tight r1 bound = %d, want 20", tight.r1Bound())
	}
	tp := Config{TMin: 4, TMax: 10, Variant: TwoPhase, N: 1, Fixed: true}
	if tp.r1Bound() != 24 {
		t.Fatalf("fixed two-phase r1 bound = %d, want 24", tp.r1Bound())
	}
}

func TestVariantAndPropertyStrings(t *testing.T) {
	if Binary.String() != "binary" || Dynamic.String() != "dynamic" || Variant(42).String() == "" {
		t.Fatal("Variant.String mismatch")
	}
	if R1.String() != "R1" || R3.String() != "R3" || Property(9).String() == "" {
		t.Fatal("Property.String mismatch")
	}
}

// TestNoDeadlocks: the composed models must never reach a configuration
// with no successors — every state either acts or lets time pass. A
// deadlock would indicate a synchronisation bug (e.g. a committed location
// with no enabled edge).
func TestNoDeadlocks(t *testing.T) {
	configs := []Config{
		{TMin: 2, TMax: 4, Variant: Binary, N: 1},
		{TMin: 4, TMax: 4, Variant: Binary, N: 1},
		{TMin: 2, TMax: 4, Variant: RevisedBinary, N: 1},
		{TMin: 2, TMax: 4, Variant: TwoPhase, N: 1},
		{TMin: 2, TMax: 4, Variant: Static, N: 2},
		{TMin: 2, TMax: 4, Variant: Expanding, N: 1},
		{TMin: 2, TMax: 4, Variant: Dynamic, N: 1},
		{TMin: 2, TMax: 4, Variant: Dynamic, N: 1, Fixed: true},
		{TMin: 4, TMax: 4, Variant: Dynamic, N: 1, Fixed: true},
	}
	for _, cfg := range configs {
		m, err := Build(cfg)
		if err != nil {
			t.Fatalf("Build(%+v): %v", cfg, err)
		}
		var buf []ta.Transition
		deadlock := func(s *ta.State) bool {
			buf = m.Net.Successors(s, buf[:0])
			return len(buf) == 0
		}
		res, err := mc.CheckReachability(m.Net, deadlock, mc.Options{MaxStates: 2_000_000})
		if err != nil {
			t.Fatalf("%v: %v", cfg.Variant, err)
		}
		if res.Reachable {
			t.Fatalf("%+v: deadlock reachable", cfg)
		}
	}
}

// TestLostFlagMonotone: once raised, lostMsg stays raised (the R2/R3
// pruning relies on this).
func TestLostFlagMonotone(t *testing.T) {
	m, err := Build(Config{TMin: 2, TMax: 4, Variant: Binary, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf []ta.Transition
	violates := func(s *ta.State) bool {
		if s.Vars[m.vLost] != 1 {
			return false
		}
		buf = m.Net.Successors(s, buf[:0])
		for _, tr := range buf {
			if tr.Target.Vars[m.vLost] != 1 {
				return true
			}
		}
		return false
	}
	res, err := mc.CheckReachability(m.Net, violates, mc.Options{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("lostMsg can be cleared")
	}
}

// TestFaultFreeRunsForever: with loss edges pruned away and no crashes, no
// process is ever inactivated in the original binary protocol when
// tmin < tmax (the boundary race needs tmin == tmax).
func TestFaultFreeRunsForever(t *testing.T) {
	m, err := Build(Config{TMin: 2, TMax: 4, Variant: Binary, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	lost := m.vLost
	bad := func(s *ta.State) bool {
		if s.Vars[lost] == 1 {
			return false
		}
		crashed := int(s.Locs[m.p0.aut]) == m.p0.vInact ||
			int(s.Locs[m.ps[0].aut]) == m.ps[0].vInact
		if crashed {
			return false
		}
		return m.P0NVInactivated(s) || m.ParticipantNVInactivated(s, 0)
	}
	// Prune lossy and crashed branches: what remains is the fault-free
	// behaviour.
	prune := func(s *ta.State) bool {
		return s.Vars[lost] == 1 ||
			int(s.Locs[m.p0.aut]) == m.p0.vInact ||
			int(s.Locs[m.ps[0].aut]) == m.ps[0].vInact
	}
	res, err := mc.CheckReachability(m.Net, bad, mc.Options{MaxStates: 2_000_000, Prune: prune})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("fault-free binary run inactivated a process")
	}
}

func TestMonitorAllBuildsAllMonitors(t *testing.T) {
	one, err := Build(Config{TMin: 2, TMax: 4, Variant: Static, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Build(Config{TMin: 2, TMax: 4, Variant: Static, N: 3, MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.mons) != 1 || len(all.mons) != 3 {
		t.Fatalf("monitors: default %d (want 1), all %d (want 3)", len(one.mons), len(all.mons))
	}
}

func TestViolationUnknownProperty(t *testing.T) {
	m, err := Build(Config{TMin: 1, TMax: 2, Variant: Binary, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Violation(Property(9)); err == nil {
		t.Fatal("unknown property accepted")
	}
	if _, err := m.Verify(Property(9), mc.Options{}); err == nil {
		t.Fatal("Verify with unknown property accepted")
	}
}

func TestIsolatedP0StateSpace(t *testing.T) {
	net, err := BuildIsolatedP0(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	states, trans, err := mc.CountStates(net, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if states < 5 || states > 200 {
		t.Fatalf("isolated p0 states = %d, expected a small space", states)
	}
	if trans <= states {
		t.Fatalf("transitions = %d for %d states", trans, states)
	}
	if _, err := BuildIsolatedP0(0, 2); err == nil {
		t.Fatal("bad constants accepted")
	}
}

func TestIsolatedP1StateSpace(t *testing.T) {
	net, err := BuildIsolatedP1(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := mc.CountStates(net, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if states < 5 || states > 200 {
		t.Fatalf("isolated p1 states = %d", states)
	}
	if _, err := BuildIsolatedP1(3, 2); err == nil {
		t.Fatal("bad constants accepted")
	}
}
