package models

import (
	"testing"

	"repro/internal/mc"
)

// TestStateSpacePins regression-pins the exact reachable state and
// transition counts of every variant at (tmin=2, tmax=4). The packed
// state store must explore the identical state space as the original
// map-based BFS, so any drift here means the checker's semantics — not
// just its speed — changed.
func TestStateSpacePins(t *testing.T) {
	cases := []struct {
		variant             Variant
		n                   int
		states, transitions int
	}{
		{Binary, 1, 6484, 13247},
		{RevisedBinary, 1, 6987, 14273},
		{TwoPhase, 1, 6484, 13247},
		{Static, 2, 599689, 1641988},
		{Expanding, 1, 55831, 140904},
		{Dynamic, 1, 101306, 267496},
	}
	for _, tc := range cases {
		m, err := Build(Config{TMin: 2, TMax: 4, Variant: tc.variant, N: tc.n})
		if err != nil {
			t.Fatalf("Build(%v): %v", tc.variant, err)
		}
		states, transitions, err := mc.CountStates(m.Net, mc.Options{})
		if err != nil {
			t.Fatalf("CountStates(%v): %v", tc.variant, err)
		}
		if states != tc.states || transitions != tc.transitions {
			t.Errorf("%v (n=%d): %d states, %d transitions; pinned %d, %d",
				tc.variant, tc.n, states, transitions, tc.states, tc.transitions)
		}
	}
}
