package models

import (
	"fmt"

	"repro/internal/mc"
	"repro/internal/ta"
)

// The shutdown monitor checks the 1998 paper's headline goal (§1 of the
// analysis): "if one or more processes ever choose to become inactive,
// then all processes in the network eventually become inactive" — made
// checkable as a bounded-inevitability property: within ShutdownBound
// ticks of the first voluntary inactivation, no process is still active
// (gracefully departed dynamic participants are exempt; leaving is not a
// fault).

// ShutdownBound returns a sound bound for the timely-shutdown property.
// Worst chain: a beat from the crashed member may still be in flight
// (up to tmin on a reply channel, up to tmax for a solicitation), the
// coordinator's detection runs from that last receipt, its final beats
// take up to tmin to land, and the surviving participants' watchdogs
// expire a responder bound later. A crashed coordinator needs only the
// last two terms, so the sum covers both directions.
func (c Config) ShutdownBound() int32 {
	inflight := c.TMin
	if c.joinPhase() {
		inflight = c.TMax // solicitations are bounded by tmax, not tmin
	}
	return inflight + c.CoordinatorDetectionBoundInt() + c.TMin + c.responderBound()
}

// CoordinatorDetectionBoundInt mirrors core.Config.
// CoordinatorDetectionBound for the model's constants.
func (c Config) CoordinatorDetectionBoundInt() int32 {
	if c.Variant == TwoPhase {
		if c.TMax == c.TMin {
			return 2 * c.TMax
		}
		return 2*c.TMax + c.TMin
	}
	if 2*c.TMin > c.TMax {
		return 2 * c.TMax
	}
	return 3*c.TMax - c.TMin
}

// ShutdownModel wraps a Model with the shutdown monitor attached.
type ShutdownModel struct {
	*Model
	monAut   int
	errLoc   int
	vCrashed int
}

// BuildWithShutdownMonitor builds the protocol model plus a monitor that
// errors when, bound ticks after the first voluntary inactivation, some
// process is still active (and, for dynamic, has not left).
func BuildWithShutdownMonitor(cfg Config, bound int32) (*ShutdownModel, error) {
	if bound < 1 {
		return nil, fmt.Errorf("%w: shutdown bound must be positive", ErrConfig)
	}
	m, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	sm := &ShutdownModel{Model: m}
	net := m.Net

	sm.vCrashed = net.Var("crashed", 0)
	clock := net.Clock("shutdown_delay", bound+2)

	// Arm the monitor when a crash concerns the network: p[0] crashing,
	// a joined participant crashing, or a beat from an already-crashed
	// process being delivered (the delivery is what creates the doomed
	// membership — a process whose only solicitation was lost was never
	// part of the network, and p[0] rightly runs on without it).
	crashed := sm.vCrashed
	arm := func(s *ta.State) {
		if s.Vars[crashed] == 0 {
			s.Vars[crashed] = 1
			s.Clocks[clock] = 0
		}
	}
	instrument := func(e *ta.Edge, when func(s *ta.State) bool) {
		prev := e.Update
		e.Update = func(s *ta.State) {
			armNow := when == nil || when(s) // evaluate before prev mutates
			if prev != nil {
				prev(s)
			}
			if armNow {
				arm(s)
			}
		}
	}
	for ai, a := range net.Automata() {
		for ei := range a.Edges {
			e := &a.Edges[ei]
			switch {
			case e.Label == "crash p[0]":
				instrument(e, nil)
			case len(e.Label) >= 5 && e.Label[:5] == "crash":
				// A participant: find which one by automaton index.
				for i, p := range m.ps {
					if p.aut == ai {
						jnd := m.vJnd[i]
						instrument(e, func(s *ta.State) bool { return s.Vars[jnd] == 1 })
					}
				}
			}
		}
	}
	// Deliveries from already-crashed participants arm the monitor too.
	p0aut := net.Automata()[m.p0.aut]
	for ei := range p0aut.Edges {
		e := &p0aut.Edges[ei]
		for i := range m.ps {
			if e.Chan == m.chDlvTrue[i] && e.From == m.p0.alive {
				active := m.vActive[i]
				instrument(e, func(s *ta.State) bool { return s.Vars[active] == 0 })
			}
		}
	}

	// wronglyLive characterises an incomplete shutdown: either p[0] still
	// counts a dead member (it must wind down), or p[0] is gone and some
	// non-leaving participant is still up (its watchdog must fire). A
	// crash that the network never admitted — or that completed its
	// graceful leave before anyone noticed — obliges nobody.
	wronglyLive := func(s *ta.State) bool {
		if s.Vars[m.vActive0] == 1 {
			for i := range m.ps {
				if s.Vars[m.vJnd[i]] == 1 && s.Vars[m.vActive[i]] == 0 {
					return true
				}
			}
			return false
		}
		for i := range m.ps {
			if s.Vars[m.vActive[i]] != 1 {
				continue
			}
			if m.Cfg.Variant == Dynamic && s.Vars[m.vLeave[i]] == 1 {
				continue // graceful leavers are exempt
			}
			return true
		}
		return false
	}

	mon := &ta.Automaton{Name: "ShutdownMon"}
	watch := addLoc(mon, ta.Location{Name: "Watch"})
	sm.errLoc = addLoc(mon, ta.Location{Name: "Error"})
	mon.Init = watch
	mon.Edges = append(mon.Edges, ta.Edge{
		From: watch, To: sm.errLoc,
		Guard: func(s *ta.State) bool {
			return s.Vars[crashed] == 1 && s.Clocks[clock] > bound && wronglyLive(s)
		},
		Label: "error shutdown",
	})
	sm.monAut = len(net.Automata())
	net.Add(mon)
	return sm, nil
}

// Violated reports whether the shutdown monitor reached Error.
func (sm *ShutdownModel) Violated(s *ta.State) bool {
	return int(s.Locs[sm.monAut]) == sm.errLoc
}

// VerifyShutdown builds the monitored model and checks the property.
// Satisfied means every reachable post-crash configuration winds the whole
// network down within the bound.
func VerifyShutdown(cfg Config, bound int32, opts mc.Options) (Verdict, error) {
	sm, err := BuildWithShutdownMonitor(cfg, bound)
	if err != nil {
		return Verdict{}, err
	}
	res, err := mc.CheckReachability(sm.Net, sm.Violated, opts)
	if err != nil {
		return Verdict{}, fmt.Errorf("checking shutdown on %v: %w", cfg.Variant, err)
	}
	return Verdict{Cfg: cfg, Satisfied: !res.Reachable, Result: res}, nil
}
