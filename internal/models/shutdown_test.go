package models

import (
	"testing"

	"repro/internal/mc"
)

// TestShutdownGoalHolds verifies the 1998 paper's headline goal on the
// original protocols: after any voluntary inactivation, the whole network
// becomes inactive within ShutdownBound ticks — under arbitrary loss and
// crash interleavings.
func TestShutdownGoalHolds(t *testing.T) {
	configs := []Config{
		{TMin: 1, TMax: 4, Variant: Binary, N: 1},
		{TMin: 2, TMax: 4, Variant: Binary, N: 1},
		{TMin: 4, TMax: 4, Variant: Binary, N: 1},
		{TMin: 2, TMax: 4, Variant: RevisedBinary, N: 1},
		{TMin: 2, TMax: 4, Variant: TwoPhase, N: 1},
		{TMin: 2, TMax: 4, Variant: Expanding, N: 1},
		{TMin: 2, TMax: 4, Variant: Dynamic, N: 1},
		{TMin: 2, TMax: 4, Variant: Binary, N: 1, Fixed: true},
		{TMin: 2, TMax: 4, Variant: Dynamic, N: 1, Fixed: true},
	}
	for _, cfg := range configs {
		v, err := VerifyShutdown(cfg, cfg.ShutdownBound(), mc.Options{MaxStates: 10_000_000})
		if err != nil {
			t.Fatalf("%v tmin=%d fixed=%v: %v", cfg.Variant, cfg.TMin, cfg.Fixed, err)
		}
		if !v.Satisfied {
			t.Errorf("%v tmin=%d fixed=%v: shutdown goal violated within %d ticks",
				cfg.Variant, cfg.TMin, cfg.Fixed, cfg.ShutdownBound())
		}
	}
}

// TestShutdownGoalStatic covers the multi-participant chain: p[1] crashes,
// p[0] detects and inactivates, and p[2]'s watchdog then winds it down.
func TestShutdownGoalStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("static shutdown exploration is heavy; skipped in -short")
	}
	cfg := Config{TMin: 2, TMax: 4, Variant: Static, N: 2}
	v, err := VerifyShutdown(cfg, cfg.ShutdownBound(), mc.Options{MaxStates: 30_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfied {
		t.Fatalf("static shutdown goal violated within %d ticks", cfg.ShutdownBound())
	}
}

// TestShutdownBoundTight: a substantially smaller bound is violated, so
// the property is not vacuous.
func TestShutdownBoundTight(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 4, Variant: Binary, N: 1}
	tight := cfg.CoordinatorDetectionBoundInt() - 1 // below even the detection bound
	v, err := VerifyShutdown(cfg, tight, mc.Options{MaxStates: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfied {
		t.Fatalf("shutdown within %d ticks unexpectedly holds; monitor may be vacuous", tight)
	}
}

// TestShutdownLeaverExempt: in the dynamic protocol a gracefully departed
// participant must not count as "still active" for the shutdown goal.
func TestShutdownLeaverExempt(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 4, Variant: Dynamic, N: 1}
	// The bound holds even though traces exist where p[1] leaves and
	// p[0] then crashes, with p[1] never inactivating.
	v, err := VerifyShutdown(cfg, cfg.ShutdownBound(), mc.Options{MaxStates: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfied {
		t.Fatal("leaver wrongly counted as a live process")
	}
}

func TestShutdownBoundValidation(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 4, Variant: Binary, N: 1}
	if _, err := BuildWithShutdownMonitor(cfg, 0); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := VerifyShutdown(Config{}, 10, mc.Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
