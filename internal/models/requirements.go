package models

import (
	"fmt"

	"repro/internal/mc"
	"repro/internal/ta"
)

// Property names the requirements of §5 of the analysis.
type Property int

// The three requirements.
const (
	// R1: if p[0] receives no beat from p[i] for the claimed detection
	// bound, p[0] inactivates.
	R1 Property = iota + 1
	// R2: no participant is non-voluntarily inactivated while p[0] is
	// alive, no message was lost, and every other participant is alive
	// (or never joined, or left).
	R2
	// R3: p[0] is not non-voluntarily inactivated while no message was
	// lost and every joined participant is alive (or left).
	R3
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case R1:
		return "R1"
	case R2:
		return "R2"
	case R3:
		return "R3"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// R1Violated reports whether any R1 monitor reached its Error location.
func (m *Model) R1Violated(s *ta.State) bool {
	for _, mo := range m.mons {
		if int(s.Locs[mo.aut]) == mo.errLoc {
			return true
		}
	}
	return false
}

// participantOK reports whether participant i cannot legitimately be
// blamed for a network-wide inactivation: it is currently alive, or p[0]
// does not (or no longer) count on it — which covers completed leaves,
// whose false beat clears jnd at p[0]. A process that crashes mid-leave is
// NOT excused: a crash is a crash, and network-wide inactivation is then
// the intended outcome.
func (m *Model) participantOK(s *ta.State, i int) bool {
	return s.Vars[m.vActive[i]] == 1 || s.Vars[m.vJnd[i]] == 0
}

// R2Violated: some participant is non-voluntarily inactivated although no
// message was lost, p[0] is still active, and every other participant is
// alive or excused.
func (m *Model) R2Violated(s *ta.State) bool {
	if s.Vars[m.vLost] == 1 || s.Vars[m.vActive0] != 1 {
		return false
	}
	for i, p := range m.ps {
		if int(s.Locs[p.aut]) != p.nvInact {
			continue
		}
		ok := true
		for j := range m.ps {
			if j != i && !m.participantOK(s, j) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// R3Violated: p[0] is non-voluntarily inactivated although no message was
// lost and every participant is alive or excused.
func (m *Model) R3Violated(s *ta.State) bool {
	if s.Vars[m.vLost] == 1 || int(s.Locs[m.p0.aut]) != m.p0.nvInact {
		return false
	}
	for i := range m.ps {
		if !m.participantOK(s, i) {
			return false
		}
	}
	return true
}

// Violation returns the predicate for a property.
func (m *Model) Violation(p Property) (func(*ta.State) bool, error) {
	switch p {
	case R1:
		return m.R1Violated, nil
	case R2:
		return m.R2Violated, nil
	case R3:
		return m.R3Violated, nil
	default:
		return nil, fmt.Errorf("%w: unknown property %d", ErrConfig, int(p))
	}
}

// Verdict is the outcome of checking one property on one configuration.
type Verdict struct {
	Cfg      Config
	Property Property
	// Satisfied is true when no violating state is reachable.
	Satisfied bool
	// Result carries exploration statistics and, when the property fails,
	// a minimal counter-example trace.
	Result mc.Result
}

// Verify model-checks one property. R2 and R3 exclude lossy traces by
// premise, so exploration is pruned at the first message loss (sound: the
// lostMsg flag is monotone and both predicates require it clear).
func Verify(cfg Config, prop Property, opts mc.Options) (Verdict, error) {
	m, err := Build(cfg)
	if err != nil {
		return Verdict{}, err
	}
	return m.Verify(prop, opts)
}

// Verify model-checks one property on an already-built model.
func (m *Model) Verify(prop Property, opts mc.Options) (Verdict, error) {
	pred, err := m.Violation(prop)
	if err != nil {
		return Verdict{}, err
	}
	if prop == R2 || prop == R3 {
		lost := m.vLost
		opts.Prune = func(s *ta.State) bool { return s.Vars[lost] == 1 }
	}
	res, err := mc.CheckReachability(m.Net, pred, opts)
	if err != nil {
		return Verdict{}, fmt.Errorf("checking %v on %v: %w", prop, m.Cfg.Variant, err)
	}
	return Verdict{Cfg: m.Cfg, Property: prop, Satisfied: !res.Reachable, Result: res}, nil
}
