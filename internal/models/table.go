package models

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/mc"
)

// TableSpec describes a verification table: a tmin sweep checked for
// R1–R3 on one or more variants, as in Tables 1 and 2 of the analysis.
type TableSpec struct {
	// Variants are the protocols included in the table.
	Variants []Variant
	// TMins is the sweep (the paper uses 1, 4, 5, 9, 10).
	TMins []int32
	// TMax is the fixed upper bound (the paper uses 10).
	TMax int32
	// N is the participant count per model.
	N int
	// Fixed checks the corrected protocols instead of the originals.
	Fixed bool
	// Opts tunes the model checker.
	Opts mc.Options
	// Workers bounds how many cells are verified concurrently; 0 means
	// runtime.GOMAXPROCS(0). Cells are independent models, so any worker
	// count returns results byte-identical to sequential execution.
	Workers int
}

// DefaultTMins is the data-set sweep of the analysis.
func DefaultTMins() []int32 { return []int32{1, 4, 5, 9, 10} }

// Cell is one verdict of a table.
type Cell struct {
	Variant Variant
	TMin    int32
	Prop    Property
	Verdict Verdict
}

// RunTable evaluates every (variant, tmin, property) combination. Cells
// fan out over spec.Workers goroutines (each cell builds its own model, so
// they share nothing) and are reassembled in spec order: the result — and
// on failure, the error and the completed-cell prefix — is identical for
// every worker count. The first error cancels the remaining cells.
func RunTable(spec TableSpec) ([]Cell, error) {
	jobs := make([]Cell, 0, len(spec.Variants)*len(spec.TMins)*3)
	for _, variant := range spec.Variants {
		for _, tmin := range spec.TMins {
			for _, prop := range []Property{R1, R2, R3} {
				jobs = append(jobs, Cell{Variant: variant, TMin: tmin, Prop: prop})
			}
		}
	}
	run := func(c *Cell) error {
		cfg := Config{
			TMin:    c.TMin,
			TMax:    spec.TMax,
			Variant: c.Variant,
			N:       spec.N,
			Fixed:   spec.Fixed,
		}
		v, err := Verify(cfg, c.Prop, spec.Opts)
		if err != nil {
			return fmt.Errorf("table cell %v tmin=%d %v: %w", c.Variant, c.TMin, c.Prop, err)
		}
		c.Verdict = v
		return nil
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			if err := run(&jobs[i]); err != nil {
				return jobs[:i], err
			}
		}
		return jobs, nil
	}

	// Workers claim cell indices in order from a shared counter and stop
	// claiming after the first error. Claims are monotone, so once the
	// earliest-failing index is known, every earlier cell has completed
	// cleanly — exactly the prefix a sequential run would return.
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errs := make([]error, len(jobs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if errs[i] = run(&jobs[i]); errs[i] != nil {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return jobs[:i], err
		}
	}
	return jobs, nil
}

// FormatTable renders cells in the layout of the paper's tables: one block
// per variant, properties as rows, the tmin sweep as columns, T/F entries.
func FormatTable(cells []Cell) string {
	var sb strings.Builder
	byVariant := map[Variant][]Cell{}
	var order []Variant
	for _, c := range cells {
		if _, ok := byVariant[c.Variant]; !ok {
			order = append(order, c.Variant)
		}
		byVariant[c.Variant] = append(byVariant[c.Variant], c)
	}
	for _, variant := range order {
		vs := byVariant[variant]
		var tmins []int32
		seen := map[int32]bool{}
		for _, c := range vs {
			if !seen[c.TMin] {
				seen[c.TMin] = true
				tmins = append(tmins, c.TMin)
			}
		}
		fmt.Fprintf(&sb, "%s protocol\n", variant)
		fmt.Fprintf(&sb, "  %-6s", "tmin")
		for _, tm := range tmins {
			fmt.Fprintf(&sb, " %3d", tm)
		}
		sb.WriteString("\n")
		for _, prop := range []Property{R1, R2, R3} {
			fmt.Fprintf(&sb, "  %-6s", prop)
			for _, tm := range tmins {
				mark := "?"
				for _, c := range vs {
					if c.TMin == tm && c.Prop == prop {
						if c.Verdict.Satisfied {
							mark = "T"
						} else {
							mark = "F"
						}
					}
				}
				fmt.Fprintf(&sb, " %3s", mark)
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// VerdictString flattens the R1R2R3 verdicts for one variant and tmin into
// a compact "FTT"-style string, for tests.
func VerdictString(cells []Cell, variant Variant, tmin int32) string {
	out := ""
	for _, prop := range []Property{R1, R2, R3} {
		for _, c := range cells {
			if c.Variant == variant && c.TMin == tmin && c.Prop == prop {
				if c.Verdict.Satisfied {
					out += "T"
				} else {
					out += "F"
				}
			}
		}
	}
	return out
}
