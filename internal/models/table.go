package models

import (
	"fmt"
	"strings"

	"repro/internal/mc"
)

// TableSpec describes a verification table: a tmin sweep checked for
// R1–R3 on one or more variants, as in Tables 1 and 2 of the analysis.
type TableSpec struct {
	// Variants are the protocols included in the table.
	Variants []Variant
	// TMins is the sweep (the paper uses 1, 4, 5, 9, 10).
	TMins []int32
	// TMax is the fixed upper bound (the paper uses 10).
	TMax int32
	// N is the participant count per model.
	N int
	// Fixed checks the corrected protocols instead of the originals.
	Fixed bool
	// Opts tunes the model checker.
	Opts mc.Options
}

// DefaultTMins is the data-set sweep of the analysis.
func DefaultTMins() []int32 { return []int32{1, 4, 5, 9, 10} }

// Cell is one verdict of a table.
type Cell struct {
	Variant Variant
	TMin    int32
	Prop    Property
	Verdict Verdict
}

// RunTable evaluates every (variant, tmin, property) combination.
func RunTable(spec TableSpec) ([]Cell, error) {
	var cells []Cell
	for _, variant := range spec.Variants {
		for _, tmin := range spec.TMins {
			for _, prop := range []Property{R1, R2, R3} {
				cfg := Config{
					TMin:    tmin,
					TMax:    spec.TMax,
					Variant: variant,
					N:       spec.N,
					Fixed:   spec.Fixed,
				}
				v, err := Verify(cfg, prop, spec.Opts)
				if err != nil {
					return cells, fmt.Errorf("table cell %v tmin=%d %v: %w", variant, tmin, prop, err)
				}
				cells = append(cells, Cell{Variant: variant, TMin: tmin, Prop: prop, Verdict: v})
			}
		}
	}
	return cells, nil
}

// FormatTable renders cells in the layout of the paper's tables: one block
// per variant, properties as rows, the tmin sweep as columns, T/F entries.
func FormatTable(cells []Cell) string {
	var sb strings.Builder
	byVariant := map[Variant][]Cell{}
	var order []Variant
	for _, c := range cells {
		if _, ok := byVariant[c.Variant]; !ok {
			order = append(order, c.Variant)
		}
		byVariant[c.Variant] = append(byVariant[c.Variant], c)
	}
	for _, variant := range order {
		vs := byVariant[variant]
		var tmins []int32
		seen := map[int32]bool{}
		for _, c := range vs {
			if !seen[c.TMin] {
				seen[c.TMin] = true
				tmins = append(tmins, c.TMin)
			}
		}
		fmt.Fprintf(&sb, "%s protocol\n", variant)
		fmt.Fprintf(&sb, "  %-6s", "tmin")
		for _, tm := range tmins {
			fmt.Fprintf(&sb, " %3d", tm)
		}
		sb.WriteString("\n")
		for _, prop := range []Property{R1, R2, R3} {
			fmt.Fprintf(&sb, "  %-6s", prop)
			for _, tm := range tmins {
				mark := "?"
				for _, c := range vs {
					if c.TMin == tm && c.Prop == prop {
						if c.Verdict.Satisfied {
							mark = "T"
						} else {
							mark = "F"
						}
					}
				}
				fmt.Fprintf(&sb, " %3s", mark)
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// VerdictString flattens the R1R2R3 verdicts for one variant and tmin into
// a compact "FTT"-style string, for tests.
func VerdictString(cells []Cell, variant Variant, tmin int32) string {
	out := ""
	for _, prop := range []Property{R1, R2, R3} {
		for _, c := range cells {
			if c.Variant == variant && c.TMin == tmin && c.Prop == prop {
				if c.Verdict.Satisfied {
					out += "T"
				} else {
					out += "F"
				}
			}
		}
	}
	return out
}
