package models

import (
	"testing"

	"repro/internal/mc"
)

// TestAblationPriorityOnly isolates the §6.1 receive-priority fix: it
// removes the simultaneity races (R2/R3 at tmin = tmax) but cannot repair
// R1, whose failures come from the wrong claimed bound, not from event
// ordering.
func TestAblationPriorityOnly(t *testing.T) {
	opts := mc.Options{MaxStates: 10_000_000}
	// R2 and R3 at tmin = tmax = 10: fixed by priority alone.
	for _, prop := range []Property{R2, R3} {
		cfg := Config{TMin: 10, TMax: 10, Variant: Binary, N: 1, FixPriority: true}
		v, err := Verify(cfg, prop, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Satisfied {
			t.Errorf("%v with priority-only fix: still violated", prop)
		}
	}
	// R1 at tmin = 1: still violated with priority alone.
	cfg := Config{TMin: 1, TMax: 10, Variant: Binary, N: 1, FixPriority: true}
	v, err := Verify(cfg, R1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfied {
		t.Error("R1 with priority-only fix: unexpectedly satisfied (bound fix should be required)")
	}
}

// TestAblationBoundsOnly isolates the §6.2 corrected bounds: they repair
// R1 everywhere but leave the simultaneity races (R2/R3 at tmin = tmax)
// in place — the two fixes are complementary, as §6 argues.
func TestAblationBoundsOnly(t *testing.T) {
	opts := mc.Options{MaxStates: 10_000_000}
	// R1 across the sweep: repaired by the corrected bound alone.
	for _, tmin := range DefaultTMins() {
		cfg := Config{TMin: tmin, TMax: 10, Variant: Binary, N: 1, FixBounds: true}
		v, err := Verify(cfg, R1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Satisfied {
			t.Errorf("R1 tmin=%d with bounds-only fix: still violated", tmin)
		}
	}
	// R2/R3 at tmin = tmax: still violated without priority.
	for _, prop := range []Property{R2, R3} {
		cfg := Config{TMin: 10, TMax: 10, Variant: Binary, N: 1, FixBounds: true}
		v, err := Verify(cfg, prop, opts)
		if err != nil {
			t.Fatal(err)
		}
		if v.Satisfied {
			t.Errorf("%v with bounds-only fix: unexpectedly satisfied (priority should be required)", prop)
		}
	}
}

// TestAblationExpandingR2 decomposes the expanding-protocol R2 repair.
//
// The §6.1 receive priority is ESSENTIAL (matching the analysis): with
// only the corrected bounds, the acknowledgement can still land exactly on
// the (corrected) give-up instant and the timeout wins the race.
//
// In this model the priority fix is additionally SUFFICIENT for R2: the
// solicitation channel's delay is bounded by tmax — the same worst case
// §6.2 assumes when deriving the corrected 2·tmax + tmin bound ("join
// request received right after starting a new round") — so the only
// no-loss path to a late join acknowledgement runs through same-instant
// races, all of which the priority re-orders. The analysis instead deems
// §6.1 "essential but not sufficient" for the expanding protocol, which
// presupposes solicitations delayable strictly beyond one round; see
// EXPERIMENTS.md for the discussion of this divergence.
func TestAblationExpandingR2(t *testing.T) {
	opts := mc.Options{MaxStates: 10_000_000}
	// Bounds + priority (full fix): satisfied.
	full := Config{TMin: 5, TMax: 10, Variant: Expanding, N: 1, Fixed: true}
	v, err := Verify(full, R2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfied {
		t.Error("full fix on expanding R2 tmin=5: still violated")
	}
	// Bounds alone: the deadline race survives — priority is essential.
	for _, tmin := range []int32{5, 9} {
		bounds := Config{TMin: tmin, TMax: 10, Variant: Expanding, N: 1, FixBounds: true}
		v, err = Verify(bounds, R2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if v.Satisfied {
			t.Errorf("bounds-only on expanding R2 tmin=%d: unexpectedly satisfied", tmin)
		}
	}
	// Priority alone: sufficient under this model's tmax-bounded
	// solicitation delay.
	prio := Config{TMin: 9, TMax: 10, Variant: Expanding, N: 1, FixPriority: true}
	v, err = Verify(prio, R2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfied {
		t.Error("priority-only on expanding R2 tmin=9: violated (expected sufficient under tmax-bounded solicitations)")
	}
}
