package models

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/trace"
)

// TestEnvelopeMirrorsCore pins the model-side envelope arithmetic against
// the runtime original: every level of every envelope must agree, or the
// verified family is not the family the coordinator retunes through.
func TestEnvelopeMirrorsCore(t *testing.T) {
	envs := []Envelope{
		{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 64},
		{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 16},
		{TMinLo: 1, TMinHi: 4, TMaxLo: 5, TMaxHi: 40},
		{TMinLo: 3, TMinHi: 3, TMaxLo: 3, TMaxHi: 3},
		{TMinLo: 2, TMinHi: 6, TMaxLo: 7, TMaxHi: 100},
	}
	for _, env := range envs {
		ce := core.Envelope{
			TMinLo: core.Tick(env.TMinLo), TMinHi: core.Tick(env.TMinHi),
			TMaxLo: core.Tick(env.TMaxLo), TMaxHi: core.Tick(env.TMaxHi),
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("%+v: %v", env, err)
		}
		if err := ce.Validate(); err != nil {
			t.Fatalf("core %+v: %v", ce, err)
		}
		if env.Levels() != ce.Levels() {
			t.Fatalf("%+v: levels %d vs core %d", env, env.Levels(), ce.Levels())
		}
		for level := -1; level <= env.Levels(); level++ {
			tmin, tmax := env.Point(level)
			ctmin, ctmax := ce.Point(level)
			if core.Tick(tmin) != ctmin || core.Tick(tmax) != ctmax {
				t.Fatalf("%+v level %d: point (%d,%d) vs core (%d,%d)",
					env, level, tmin, tmax, ctmin, ctmax)
			}
		}
	}
	if err := (Envelope{TMinLo: 4, TMinHi: 2, TMaxLo: 8, TMaxHi: 8}).Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("inverted envelope accepted: %v", err)
	}
}

func TestEnvelopeLevelConfig(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 16}
	base := Config{Variant: Binary, N: 1, Fixed: true}
	for level, want := range [][2]int32{{2, 4}, {2, 8}, {2, 16}} {
		cfg := env.LevelConfig(base, level)
		if cfg.TMin != want[0] || cfg.TMax != want[1] || cfg.WatchdogTMax != 16 {
			t.Fatalf("level %d config = %+v", level, cfg)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("level %d config invalid: %v", level, err)
		}
	}
}

// TestWatchdogDecoupledBounds: participant bounds follow WatchdogTMax, the
// R1 detection bound stays a function of the coordinator's constants.
func TestWatchdogDecoupledBounds(t *testing.T) {
	base := Config{TMin: 4, TMax: 10, Variant: Expanding, N: 1}
	dec := base
	dec.WatchdogTMax = 20
	if dec.responderBound() != 56 || dec.joinerBound() != 56 {
		t.Fatalf("original decoupled bounds: %d %d", dec.responderBound(), dec.joinerBound())
	}
	fixedDec := dec
	fixedDec.Fixed = true
	if fixedDec.responderBound() != 40 || fixedDec.joinerBound() != 44 {
		t.Fatalf("fixed decoupled bounds: %d %d", fixedDec.responderBound(), fixedDec.joinerBound())
	}
	fixedBase := base
	fixedBase.Fixed = true
	if fixedDec.r1Bound() != fixedBase.r1Bound() {
		t.Fatalf("r1 bound leaked the watchdog tmax: %d vs %d", fixedDec.r1Bound(), fixedBase.r1Bound())
	}
	if _, err := Build(Config{TMin: 2, TMax: 10, WatchdogTMax: 5, Variant: Binary, N: 1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("watchdog below tmax accepted: %v", err)
	}
}

// TestVerifyEnvelopeBinary is the verification closure for the adaptive
// degradation path: R1–R3 hold at every operating point of the envelope
// (corner points included) with the participants' watchdog pinned at the
// envelope ceiling, exactly as the adaptive cluster deploys them.
func TestVerifyEnvelopeBinary(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 16}
	base := Config{Variant: Binary, N: 1, Fixed: true}
	verdicts, err := VerifyEnvelope(base, env, []Property{R1, R2, R3}, mc.Options{MaxStates: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 9 {
		t.Fatalf("got %d verdicts, want 9 (3 levels x 3 properties)", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Satisfied {
			t.Errorf("%v fails at (%d,%d):\n%s", v.Property, v.Cfg.TMin, v.Cfg.TMax,
				trace.Summary(v.Result.Trace))
		}
		if v.Cfg.WatchdogTMax != env.TMaxHi {
			t.Fatalf("level config lost the watchdog ceiling: %+v", v.Cfg)
		}
	}
	// Corner points: the first verdicts run the floor, the last the top.
	if verdicts[0].Cfg.TMax != 4 || verdicts[len(verdicts)-1].Cfg.TMax != 16 {
		t.Fatalf("corner points missing: first tmax %d, last tmax %d",
			verdicts[0].Cfg.TMax, verdicts[len(verdicts)-1].Cfg.TMax)
	}
}

// TestVerifyEnvelopeDynamic covers the dynamic variant (the one the churn
// campaigns drive) over a two-level envelope.
func TestVerifyEnvelopeDynamic(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}
	base := Config{Variant: Dynamic, N: 1, Fixed: true}
	verdicts, err := VerifyEnvelope(base, env, []Property{R1, R2, R3}, mc.Options{MaxStates: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 6 {
		t.Fatalf("got %d verdicts, want 6", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Satisfied {
			t.Errorf("%v fails at (%d,%d):\n%s", v.Property, v.Cfg.TMin, v.Cfg.TMax,
				trace.Summary(v.Result.Trace))
		}
	}
}

func TestVerifyEnvelopeRejectsBadEnvelope(t *testing.T) {
	_, err := VerifyEnvelope(Config{Variant: Binary, N: 1}, Envelope{TMinLo: 0, TMaxLo: 4, TMaxHi: 8},
		[]Property{R1}, mc.Options{})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("invalid envelope accepted: %v", err)
	}
}
