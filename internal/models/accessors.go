package models

import (
	"fmt"

	"repro/internal/mc"
	"repro/internal/ta"
)

// P0Alive reports whether p[0] is in its Alive location.
func (m *Model) P0Alive(s *ta.State) bool {
	return int(s.Locs[m.p0.aut]) == m.p0.alive
}

// P0NVInactivated reports whether p[0] was non-voluntarily inactivated.
func (m *Model) P0NVInactivated(s *ta.State) bool {
	return int(s.Locs[m.p0.aut]) == m.p0.nvInact
}

// ParticipantAlive reports whether p[i+1] is alive (Alive or mid-reply).
func (m *Model) ParticipantAlive(s *ta.State, i int) bool {
	loc := int(s.Locs[m.ps[i].aut])
	return loc == m.ps[i].alive || loc == m.ps[i].rcvd
}

// ParticipantNVInactivated reports whether p[i+1] was non-voluntarily
// inactivated.
func (m *Model) ParticipantNVInactivated(s *ta.State, i int) bool {
	return int(s.Locs[m.ps[i].aut]) == m.ps[i].nvInact
}

// EverDelivered reports whether p[0] has ever received a beat from p[i+1].
func (m *Model) EverDelivered(s *ta.State, i int) bool {
	return s.Vars[m.vEver[i]] == 1
}

// MessageLost reports whether any message was lost so far.
func (m *Model) MessageLost(s *ta.State) bool {
	return s.Vars[m.vLost] == 1
}

// Joined reports whether p[0] currently counts p[i+1] as a member.
func (m *Model) Joined(s *ta.State, i int) bool {
	return s.Vars[m.vJnd[i]] == 1
}

// VerifyGoal checks reachability of an arbitrary goal predicate on the
// model, for scenario-shaped queries beyond R1–R3.
func (m *Model) VerifyGoal(goal func(*ta.State) bool, opts mc.Options) (mc.Result, error) {
	res, err := mc.CheckReachability(m.Net, goal, opts)
	if err != nil {
		return res, fmt.Errorf("checking goal on %v: %w", m.Cfg.Variant, err)
	}
	return res, nil
}
