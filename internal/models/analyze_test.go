package models

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mc"
)

// TestAnalyzeAllVariantsClean runs the structural model analysis over
// every variant, original and corrected: the shipped models must be free
// of dead locations, dead channels, unsatisfiable guards, useless resets,
// and cap-soundness violations. This is the test behind the
// `hbcheck -analyze` CI gate.
func TestAnalyzeAllVariantsClean(t *testing.T) {
	for _, v := range []Variant{Binary, RevisedBinary, TwoPhase, Static, Expanding, Dynamic} {
		for _, fixed := range []bool{false, true} {
			n := 1
			if v == Static || v == Expanding || v == Dynamic {
				n = 2
			}
			m, err := Build(Config{TMin: 1, TMax: 3, Variant: v, N: n, Fixed: fixed})
			if err != nil {
				t.Fatalf("%v fixed=%v: %v", v, fixed, err)
			}
			for _, p := range m.Net.Analyze() {
				t.Errorf("%v fixed=%v: %s", v, fixed, p)
			}
		}
	}
}

// TestAnalyzePreflightCost pins the EXPERIMENTS.md claim that the
// -analyze pre-flight is negligible next to any exploration that is
// itself expensive. The probe grid is polynomial in the model's
// structure (locations x clocks x caps), the BFS exponential in its
// behavior: static at n=3 analyzes in well under a second while its BFS
// exceeds 20M states (minutes). The smallest table configurations
// explore in tens of milliseconds — there the pre-flight is a fixed
// sub-second cost, not a relative saving — so the test uses the n=3
// model, capped at 2M states to bound suite time: even that truncated
// prefix of the exploration must dwarf the analysis.
func TestAnalyzePreflightCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	cfg := Config{TMin: 2, TMax: 10, Variant: Static, N: 3, Fixed: true}
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if p := m.Net.Analyze(); len(p) > 0 {
		t.Fatalf("unexpected problems: %v", p)
	}
	analyzeTime := time.Since(start)
	if analyzeTime > 5*time.Second {
		t.Errorf("analysis took %v; the pre-flight must stay sub-second-scale per model", analyzeTime)
	}

	start = time.Now()
	// The full space is >20M states; the capped run is a lower bound on
	// the BFS cost. Hitting the limit is the expected outcome.
	_, err = Verify(cfg, R1, mc.Options{MaxStates: 2_000_000})
	verifyTime := time.Since(start)
	if err != nil && !strings.Contains(err.Error(), "state limit exceeded") {
		t.Fatal(err)
	}
	t.Logf("analyze %v, verify (first <=2M states) %v", analyzeTime, verifyTime)
	if analyzeTime > verifyTime {
		t.Errorf("analysis (%v) slower than the BFS prefix it gates (%v)", analyzeTime, verifyTime)
	}
}
