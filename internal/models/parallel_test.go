package models

import (
	"fmt"
	"testing"

	"repro/internal/mc"
)

// traceRepr renders a witness trace in full — labels, delay flags, times,
// and the packed state encodings — so two traces compare byte-identical
// or not at all.
func traceRepr(steps []mc.Step) string {
	out := ""
	for _, s := range steps {
		out += fmt.Sprintf("%q %v %d %x\n", s.Label, s.Delay, s.Time, s.State.AppendKey(nil))
	}
	return out
}

// TestParallelCheckDeterminism pins the tentpole guarantee of the
// parallel checker: for every variant, reachability results — state and
// transition counts, verdict, and the canonical counter-example trace —
// are identical at any worker count. R1 on the unfixed models is
// violated, so the trace path is exercised, not just the counts.
func TestParallelCheckDeterminism(t *testing.T) {
	cases := []struct {
		variant Variant
		n       int
	}{
		{Binary, 1},
		{RevisedBinary, 1},
		{TwoPhase, 1},
		{Static, 2},
		{Expanding, 1},
		{Dynamic, 1},
	}
	anyReachable := false
	for _, tc := range cases {
		if testing.Short() && tc.variant == Static {
			continue // three full 600k-state sweeps; minutes under -race
		}
		t.Run(fmt.Sprintf("%v", tc.variant), func(t *testing.T) {
			cfg := Config{TMin: 2, TMax: 4, Variant: tc.variant, N: tc.n}
			var base Verdict
			for _, workers := range []int{1, 2, 8} {
				v, err := Verify(cfg, R1, mc.Options{Workers: workers})
				if err != nil {
					t.Fatalf("Verify(R1, workers=%d): %v", workers, err)
				}
				if workers == 1 {
					base = v
					if v.Result.Reachable {
						anyReachable = true
					}
					continue
				}
				if v.Satisfied != base.Satisfied ||
					v.Result.StatesExplored != base.Result.StatesExplored ||
					v.Result.TransitionsExplored != base.Result.TransitionsExplored {
					t.Errorf("workers=%d: satisfied=%v states=%d transitions=%d; workers=1: %v %d %d",
						workers, v.Satisfied, v.Result.StatesExplored, v.Result.TransitionsExplored,
						base.Satisfied, base.Result.StatesExplored, base.Result.TransitionsExplored)
				}
				if got, want := traceRepr(v.Result.Trace), traceRepr(base.Result.Trace); got != want {
					t.Errorf("workers=%d trace diverged from workers=1:\n%s\nvs\n%s", workers, got, want)
				}
			}
		})
	}
	if !anyReachable {
		t.Error("no variant produced a counter-example; trace determinism was not exercised")
	}
}

// TestParallelLTSDeterminism pins that BuildLTS emits the byte-identical
// transition system at any worker count — the conformance layer's CSR
// construction depends on the exact transition order.
func TestParallelLTSDeterminism(t *testing.T) {
	m, err := Build(Config{TMin: 2, TMax: 4, Variant: Binary, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := mc.BuildLTS(m.Net, mc.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		l, err := mc.BuildLTS(m.Net, mc.Options{Workers: workers})
		if err != nil {
			t.Fatalf("BuildLTS(workers=%d): %v", workers, err)
		}
		if l.NumStates != base.NumStates || len(l.Transitions) != len(base.Transitions) {
			t.Fatalf("workers=%d: %d states %d transitions; workers=1: %d %d",
				workers, l.NumStates, len(l.Transitions), base.NumStates, len(base.Transitions))
		}
		for i := range l.Transitions {
			if l.Transitions[i] != base.Transitions[i] {
				t.Fatalf("workers=%d: transition %d = %+v, workers=1 has %+v",
					workers, i, l.Transitions[i], base.Transitions[i])
			}
		}
	}
}
