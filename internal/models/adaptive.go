package models

import (
	"fmt"

	"repro/internal/mc"
)

// Envelope is the model-side mirror of core.Envelope: the degradation
// clamp of the adaptive variant, discretised into operating points by the
// same doubling arithmetic (level 0 at (TMinLo, TMaxLo), each level
// doubling both constants clamped at their Hi bounds). The runtime
// coordinator only ever retunes to one of these points, so verifying
// R1–R3 at every level verifies every configuration the adaptive variant
// can reach; the cross-check test in adaptive_test.go pins this
// arithmetic against core's tick-domain original.
type Envelope struct {
	// TMinLo and TMinHi bound tmin; 0 < TMinLo <= TMinHi.
	TMinLo, TMinHi int32
	// TMaxLo and TMaxHi bound tmax; TMinHi <= TMaxLo <= TMaxHi.
	TMaxLo, TMaxHi int32
}

// Validate checks the envelope ordering constraints (same rules as
// core.Envelope.Validate).
func (e Envelope) Validate() error {
	if e.TMinLo <= 0 {
		return fmt.Errorf("%w: envelope tmin lower bound %d must be positive", ErrConfig, e.TMinLo)
	}
	if e.TMinHi < e.TMinLo {
		return fmt.Errorf("%w: envelope tmin bounds inverted (%d > %d)", ErrConfig, e.TMinLo, e.TMinHi)
	}
	if e.TMaxLo < e.TMinHi {
		return fmt.Errorf("%w: envelope needs TMinHi <= TMaxLo, got %d > %d", ErrConfig, e.TMinHi, e.TMaxLo)
	}
	if e.TMaxHi < e.TMaxLo {
		return fmt.Errorf("%w: envelope tmax bounds inverted (%d > %d)", ErrConfig, e.TMaxLo, e.TMaxHi)
	}
	return nil
}

// Levels is the number of operating points: tmax doubles from TMaxLo
// until it reaches (clamped) TMaxHi.
func (e Envelope) Levels() int {
	n := 1
	for t := e.TMaxLo; t < e.TMaxHi; t *= 2 {
		n++
	}
	return n
}

// Point returns the operating point of a level, clamped to the valid
// range exactly as core.Envelope.Point.
func (e Envelope) Point(level int) (tmin, tmax int32) {
	if level < 0 {
		level = 0
	}
	if max := e.Levels() - 1; level > max {
		level = max
	}
	tmin, tmax = e.TMinLo, e.TMaxLo
	for i := 0; i < level; i++ {
		if tmin*2 <= e.TMinHi {
			tmin *= 2
		} else {
			tmin = e.TMinHi
		}
		if tmax*2 <= e.TMaxHi {
			tmax *= 2
		} else {
			tmax = e.TMaxHi
		}
	}
	return tmin, tmax
}

// LevelConfig derives the model configuration of one envelope level: the
// coordinator's constants are the level's operating point, while the
// participants' watchdog stays at the envelope ceiling — the split the
// adaptive runtime deploys (participants never learn the current level).
func (e Envelope) LevelConfig(base Config, level int) Config {
	base.TMin, base.TMax = e.Point(level)
	base.WatchdogTMax = e.TMaxHi
	return base
}

// VerifyEnvelope model-checks the given properties at every level of the
// envelope — the closure argument for the adaptive variant: each retune
// lands on a verified operating point, so the degradation path as a whole
// inherits R1–R3 from its corner points and everything between.
func VerifyEnvelope(base Config, env Envelope, props []Property, opts mc.Options) ([]Verdict, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	verdicts := make([]Verdict, 0, env.Levels()*len(props))
	for level := 0; level < env.Levels(); level++ {
		cfg := env.LevelConfig(base, level)
		for _, p := range props {
			v, err := Verify(cfg, p, opts)
			if err != nil {
				return nil, fmt.Errorf("level %d: %w", level, err)
			}
			verdicts = append(verdicts, v)
		}
	}
	return verdicts, nil
}
