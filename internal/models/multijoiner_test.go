package models

import (
	"errors"
	"testing"

	"repro/internal/mc"
)

// TestExpandingTwoJoinersR2 checks that the Figure 13 joiner violation is
// still found with two concurrent joiners — the configuration the
// analysis' dynamic formulas are written for (p[0] plus p[1], p[2]).
// Exhaustively verifying the SATISFIED cells at N=2 (and any dynamic N=2
// cell) exceeds a laptop-scale exploration budget; those cells rest on
// the N=1 results plus participant symmetry.
func TestExpandingTwoJoinersR2(t *testing.T) {
	if testing.Short() {
		t.Skip("two-joiner exploration is heavy; skipped in -short")
	}
	// Dynamic with two joiners exceeds a laptop-scale exploration budget
	// (the leave machinery multiplies the interleavings); the expanding
	// protocol exhibits the same joiner race.
	for _, variant := range []Variant{Expanding} {
		cfg := Config{TMin: 5, TMax: 10, Variant: variant, N: 2}
		v, err := Verify(cfg, R2, mc.Options{MaxStates: 12_000_000})
		if errors.Is(err, mc.ErrStateLimit) {
			t.Skipf("%v: state space exceeds the exploration budget", variant)
		}
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if v.Satisfied {
			t.Errorf("%v N=2 tmin=5: R2 unexpectedly satisfied", variant)
		}
	}
}
