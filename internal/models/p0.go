package models

import (
	"fmt"

	"repro/internal/ta"
)

// buildP0 constructs the coordinator automaton (Figures 3 and 7 of the
// analysis). Its round bookkeeping (per-participant rcvd flags and waiting
// times, the min rule, the halving/two-phase acceleration) lives in shared
// variables so the timeout decision can be expressed as guarded edges from
// the committed Time_Out location.
func (m *Model) buildP0() {
	cfg := m.Cfg
	net := m.Net

	m.p0.waiting = net.Clock("waiting0", cfg.TMax+1)
	m.p0.t = net.Var("t0", cfg.TMax)

	waiting := m.p0.waiting
	tVar := m.p0.t

	a := &ta.Automaton{Name: "P0"}
	m.p0.init = addLoc(a, ta.Location{Name: "Init", Kind: ta.Committed})
	m.p0.alive = addLoc(a, ta.Location{
		Name: "Alive",
		Invariant: func(s *ta.State) bool {
			return s.Clocks[waiting] <= s.Vars[tVar]
		},
	})
	m.p0.timeout = addLoc(a, ta.Location{Name: "TimeOut", Kind: ta.Committed})
	m.p0.vInact = addLoc(a, ta.Location{Name: "VInact"})
	m.p0.nvInact = addLoc(a, ta.Location{Name: "NVInact"})
	a.Init = m.p0.init

	// Start-up: the revised protocol beats immediately; the original
	// simply enters the first round.
	if cfg.Variant == RevisedBinary {
		a.Edges = append(a.Edges, ta.Edge{
			From: m.p0.init, To: m.p0.alive,
			Chan: m.chBcast, Send: true,
			Label: "p[0]: send beat",
		})
	} else {
		a.Edges = append(a.Edges, ta.Edge{
			From: m.p0.init, To: m.p0.alive,
			Label: "p[0]: start",
		})
	}

	// Voluntary inactivation, any time while alive.
	active0 := m.vActive0
	a.Edges = append(a.Edges, ta.Edge{
		From: m.p0.alive, To: m.p0.vInact,
		Label:  "crash p[0]",
		Update: func(s *ta.State) { s.Vars[active0] = 0 },
	})

	// Round timeout: forced by the invariant at waiting == t.
	a.Edges = append(a.Edges, ta.Edge{
		From: m.p0.alive, To: m.p0.timeout,
		Guard: func(s *ta.State) bool { return s.Clocks[waiting] == s.Vars[tVar] },
		Label: "timeout p[0]",
		Class: ta.ClassTimeout,
	})

	// Decision: inactivate when some joined participant's waiting time
	// decayed below tmin, otherwise commit the new round and broadcast.
	a.Edges = append(a.Edges, ta.Edge{
		From: m.p0.timeout, To: m.p0.nvInact,
		Guard: func(s *ta.State) bool {
			_, ok := m.timeoutOutcome(s)
			return !ok
		},
		Label:  "inactivate nv p[0]",
		Update: func(s *ta.State) { s.Vars[active0] = 0 },
	})
	a.Edges = append(a.Edges, ta.Edge{
		From: m.p0.timeout, To: m.p0.alive,
		Guard: func(s *ta.State) bool {
			_, ok := m.timeoutOutcome(s)
			return ok
		},
		Chan: m.chBcast, Send: true,
		Label:  "p[0]: send beat",
		Update: func(s *ta.State) { m.applyTimeout(s) },
	})

	m.p0.aut = len(net.Automata())
	net.Add(a)
}

// wireP0Edges adds p[0]'s receive edges; deferred until all channels
// exist.
func (m *Model) wireP0Edges() {
	a := m.Net.Automata()[m.p0.aut]
	for i := 0; i < m.Cfg.N; i++ {
		i := i
		rcvd, jnd, ever := m.vRcvd[i], m.vJnd[i], m.vEver[i]
		// A true beat from p[i]: mark received (and joined, for the
		// expanding/dynamic protocols).
		a.Edges = append(a.Edges, ta.Edge{
			From: m.p0.alive, To: m.p0.alive,
			Chan: m.chDlvTrue[i],
			Update: func(s *ta.State) {
				s.Vars[rcvd] = 1
				s.Vars[ever] = 1
				if s.Vars[jnd] == 0 {
					// A new member starts with a grace round.
					s.Vars[jnd] = 1
					s.Vars[m.vTM[i]] = m.Cfg.TMax
				}
			},
		})
		// Inactivated processes still receive, without reacting.
		for _, loc := range []int{m.p0.vInact, m.p0.nvInact} {
			a.Edges = append(a.Edges, ta.Edge{
				From: loc, To: loc, Chan: m.chDlvTrue[i],
			})
		}
		if m.Cfg.Variant == Dynamic {
			// A false beat is a leave: forget the member.
			a.Edges = append(a.Edges, ta.Edge{
				From: m.p0.alive, To: m.p0.alive,
				Chan: m.chDlvFalse[i],
				Update: func(s *ta.State) {
					s.Vars[jnd] = 0
					s.Vars[rcvd] = 0
				},
			})
			for _, loc := range []int{m.p0.vInact, m.p0.nvInact} {
				a.Edges = append(a.Edges, ta.Edge{
					From: loc, To: loc, Chan: m.chDlvFalse[i],
				})
			}
		}
	}
}

// addLoc appends a location and returns its index.
func addLoc(a *ta.Automaton, l ta.Location) int {
	a.Locations = append(a.Locations, l)
	return len(a.Locations) - 1
}

// pname renders the conventional process name p[i+1].
func pname(i int) string { return fmt.Sprintf("p[%d]", i+1) }
