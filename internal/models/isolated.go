package models

import (
	"fmt"

	"repro/internal/ta"
)

// BuildIsolatedP0 builds p[0] of the binary protocol composed with a
// chaotic environment that consumes its beats and may deliver a beat from
// p[1] at any time — the closed-system rendering of the open process
// semantics used for Figure 1 of the analysis (p[0]'s own transition
// system). Labels match the figure: tick, receive/send beats, timeout,
// voluntary and non-voluntary inactivation.
func BuildIsolatedP0(tmin, tmax int32) (*ta.Network, error) {
	if tmin <= 0 || tmax < tmin {
		return nil, fmt.Errorf("%w: need 0 < tmin <= tmax", ErrConfig)
	}
	net := ta.NewNetwork()
	waiting := net.Clock("waiting", tmax+1)
	t := net.Var("t", tmax)
	rcvd := net.Var("rcvd", 1)

	p0 := &ta.Automaton{Name: "P0"}
	alive := addLoc(p0, ta.Location{
		Name:      "Alive",
		Invariant: func(s *ta.State) bool { return s.Clocks[waiting] <= s.Vars[t] },
	})
	timeout := addLoc(p0, ta.Location{Name: "TimeOut", Kind: ta.Committed})
	vInact := addLoc(p0, ta.Location{Name: "VInact"})
	nvInact := addLoc(p0, ta.Location{Name: "NVInact"})
	p0.Init = alive

	rcv := net.Chan("rcv_hb1", false)
	snd := net.Chan("snd_hb0", false)

	p0.Edges = append(p0.Edges,
		ta.Edge{From: alive, To: vInact, Label: "inactivate v p0"},
		ta.Edge{
			From: alive, To: alive, Chan: rcv,
			Update: func(s *ta.State) { s.Vars[rcvd] = 1 },
		},
		ta.Edge{From: vInact, To: vInact, Chan: rcv},
		ta.Edge{From: nvInact, To: nvInact, Chan: rcv},
		ta.Edge{
			From: alive, To: timeout,
			Guard: func(s *ta.State) bool { return s.Clocks[waiting] == s.Vars[t] },
			Label: "timeout at P0",
		},
		ta.Edge{
			From: timeout, To: alive,
			Guard: func(s *ta.State) bool {
				return s.Vars[rcvd] == 1 || s.Vars[t]/2 >= tmin
			},
			Chan: snd, Send: true,
			Label: "for p1(hb0)",
			Update: func(s *ta.State) {
				if s.Vars[rcvd] == 1 {
					s.Vars[t] = tmax
				} else {
					s.Vars[t] = s.Vars[t] / 2
				}
				s.Vars[rcvd] = 0
				s.Clocks[waiting] = 0
			},
		},
		ta.Edge{
			From: timeout, To: nvInact,
			Guard: func(s *ta.State) bool {
				return s.Vars[rcvd] == 0 && s.Vars[t]/2 < tmin
			},
			Label: "inactivate nv p0",
		},
	)
	net.Add(p0)
	addChaoticPeer(net, rcv, snd, "from p1(hb1)")
	return net, nil
}

// BuildIsolatedP1 builds p[1] of the binary protocol against a chaotic
// environment, for Figure 2 of the analysis.
func BuildIsolatedP1(tmin, tmax int32) (*ta.Network, error) {
	if tmin <= 0 || tmax < tmin {
		return nil, fmt.Errorf("%w: need 0 < tmin <= tmax", ErrConfig)
	}
	net := ta.NewNetwork()
	bound := 3*tmax - tmin
	wfb := net.Clock("waitingforbeat", bound+1)

	p1 := &ta.Automaton{Name: "P1"}
	alive := addLoc(p1, ta.Location{
		Name:      "Alive",
		Invariant: func(s *ta.State) bool { return s.Clocks[wfb] <= bound },
	})
	rcvd := addLoc(p1, ta.Location{Name: "Rcvd", Kind: ta.Committed})
	vInact := addLoc(p1, ta.Location{Name: "VInact"})
	nvInact := addLoc(p1, ta.Location{Name: "NVInact"})
	p1.Init = alive

	rcv := net.Chan("rcv_hb0", false)
	snd := net.Chan("snd_hb1", false)

	p1.Edges = append(p1.Edges,
		ta.Edge{From: alive, To: vInact, Label: "inactivate v p1"},
		ta.Edge{From: alive, To: rcvd, Chan: rcv},
		ta.Edge{
			From: rcvd, To: alive, Chan: snd, Send: true,
			Label:  "for p0(hb1)",
			Update: func(s *ta.State) { s.Clocks[wfb] = 0 },
		},
		ta.Edge{
			From: alive, To: nvInact,
			Guard: func(s *ta.State) bool { return s.Clocks[wfb] == bound },
			Label: "inactivate nv p1",
		},
		ta.Edge{From: vInact, To: vInact, Chan: rcv},
		ta.Edge{From: nvInact, To: nvInact, Chan: rcv},
	)
	net.Add(p1)
	addChaoticPeer(net, rcv, snd, "from p0(hb0)")
	return net, nil
}

// addChaoticPeer adds an environment automaton that may send on rcv at any
// time and always accepts snd — the most general context, so the composed
// system's behaviour is exactly the process's own.
func addChaoticPeer(net *ta.Network, rcv, snd ta.ChanID, rcvLabel string) {
	env := &ta.Automaton{Name: "Env"}
	idle := addLoc(env, ta.Location{Name: "Chaos"})
	env.Init = idle
	env.Edges = append(env.Edges,
		ta.Edge{From: idle, To: idle, Chan: rcv, Send: true, Label: rcvLabel},
		ta.Edge{From: idle, To: idle, Chan: snd},
	)
	net.Add(env)
}
