package models

import (
	"repro/internal/ta"
)

// buildMonitor constructs the R1 watchdog for participant i (Figure 9):
// it observes every beat from p[i] delivered at p[0] and raises Error when
// p[0] stays active for more than the claimed detection bound without one.
// For the expanding/dynamic protocols the monitor arms on the first
// delivery (p[0] cannot be obliged to react to a process it has never
// heard from) and disarms when p[i]'s leave is delivered.
func (m *Model) buildMonitor(i int) {
	cfg := m.Cfg
	net := m.Net
	bound := cfg.r1Bound()
	delay := net.Clock("r1delay_"+pname(i), bound+2)
	active0 := m.vActive0

	var mo monRefs
	mo.delay = delay
	a := &ta.Automaton{Name: "MonR1" + pname(i)}
	idle := -1
	if cfg.joinPhase() {
		idle = addLoc(a, ta.Location{Name: "Idle"})
	}
	mo.watch = addLoc(a, ta.Location{Name: "Watch"})
	mo.errLoc = addLoc(a, ta.Location{Name: "Error"})
	// Off is entered only by a delivered leave, which exists only in the
	// dynamic protocol; elsewhere it would be dead (ta.Analyze flags it).
	mo.off = -1
	if cfg.Variant == Dynamic {
		mo.off = addLoc(a, ta.Location{Name: "Off"})
	}
	if idle >= 0 {
		a.Init = idle
		a.Edges = append(a.Edges, ta.Edge{
			From: idle, To: mo.watch,
			Chan:   m.chDlvTrue[i],
			Update: func(s *ta.State) { s.Clocks[delay] = 0 },
		})
		if cfg.Variant == Dynamic {
			a.Edges = append(a.Edges, ta.Edge{
				From: idle, To: mo.off, Chan: m.chDlvFalse[i],
			})
		}
	} else {
		a.Init = mo.watch
	}
	a.Edges = append(a.Edges,
		// Every delivered beat from p[i] resets the watchdog.
		ta.Edge{
			From: mo.watch, To: mo.watch,
			Chan:   m.chDlvTrue[i],
			Update: func(s *ta.State) { s.Clocks[delay] = 0 },
		},
		// R1 violation: the bound elapsed and p[0] is still active.
		ta.Edge{
			From: mo.watch, To: mo.errLoc,
			Guard: func(s *ta.State) bool {
				return s.Clocks[delay] > bound && s.Vars[active0] == 1
			},
			Label: "error R1 " + pname(i),
		},
	)
	if cfg.Variant == Dynamic {
		// A delivered leave ends p[0]'s obligation for p[i].
		a.Edges = append(a.Edges, ta.Edge{
			From: mo.watch, To: mo.off, Chan: m.chDlvFalse[i],
		})
	}
	mo.aut = len(net.Automata())
	net.Add(a)
	m.mons = append(m.mons, mo)
}
