// Package models contains the formal timed-automata models of the
// accelerated heartbeat protocols — the reproduction of the UPPAAL models
// in the Atif–Mousavi analysis (Figures 3–9) over the internal/ta
// framework — together with the requirement predicates R1–R3 and the
// verdict harness that regenerates the analysis' verification tables.
//
// # Model structure
//
// A model composes, for n participants:
//
//   - p[0] (the coordinator), with its round clock, waiting-time variable
//     and per-participant rcvd/tm/jnd bookkeeping;
//   - p[i] automata: responders (binary/static) or joiners
//     (expanding/dynamic);
//   - one pair channel per participant carrying the beat exchange with a
//     shared round-trip budget clock bounded by tmin, with nondeterministic
//     loss that raises the global lostMsg flag;
//   - for joiners, a solicitation channel from p[i] to p[0];
//   - one R1 monitor per participant (Figure 9).
//
// # Faithfulness notes
//
// The channel automata are input-enabled reconstructions rather than
// edge-for-edge copies of Figure 5 (the figures are ambiguous about
// receptiveness corners). A send arriving while the channel is busy is
// dropped with lostMsg set; this is sound for all three requirements: R2
// and R3 exclude lossy traces by premise, and extra loss can only make
// p[0] inactivate sooner, which cannot fabricate an R1 violation. The
// busy corner itself is reachable only in traces that already lost a
// message or crashed a process.
package models

import (
	"errors"
	"fmt"

	"repro/internal/ta"
)

// Variant selects the protocol to model.
type Variant int

// Protocol variants of the ICDCS'98 paper (plus the 2004 revision).
const (
	// Binary is the two-process protocol, p[0] waiting a full first round.
	Binary Variant = iota + 1
	// RevisedBinary starts with an immediate beat (McGuire–Gouda 2004).
	RevisedBinary
	// TwoPhase drops the waiting time straight to tmin on a miss.
	TwoPhase
	// Static runs the binary exchange against n fixed participants.
	Static
	// Expanding admits participants that solicit with beats every tmin.
	Expanding
	// Dynamic additionally lets participants leave gracefully.
	Dynamic
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Binary:
		return "binary"
	case RevisedBinary:
		return "revised-binary"
	case TwoPhase:
		return "two-phase"
	case Static:
		return "static"
	case Expanding:
		return "expanding"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterises a model build.
type Config struct {
	// TMin and TMax are the protocol constants (0 < TMin <= TMax).
	TMin, TMax int32
	// WatchdogTMax, when non-zero, decouples the participants' watchdog
	// bounds from the coordinator's TMax: the bounds are derived from this
	// value instead (must be >= TMax). The adaptive variant runs its
	// participants at the envelope's worst-case point while the
	// coordinator operates at a tighter level; this knob mirrors that
	// split in the model.
	WatchdogTMax int32
	// Variant selects the protocol.
	Variant Variant
	// N is the number of participants; forced to 1 for the binary
	// variants.
	N int
	// Fixed applies both §6 corrections: receive priority and the
	// corrected time bounds.
	Fixed bool
	// FixPriority applies only the §6.1 receive-priority fix (deliveries
	// before same-instant timeouts) — an ablation knob; implied by Fixed.
	FixPriority bool
	// FixBounds applies only the §6.2 corrected time bounds — an
	// ablation knob; implied by Fixed.
	FixBounds bool
	// MonitorAll attaches an R1 monitor to every participant. By default
	// only p[1] is monitored: participants are fully symmetric in the
	// model (identical constants, independent channels), so R1 holds for
	// p[1] iff it holds for every p[i], and dropping the other monitors'
	// clocks shrinks the state space considerably.
	MonitorAll bool
	// NoMonitor drops the R1 monitors entirely. Trace-inclusion checking
	// (internal/conform) wants the bare protocol LTS: monitor clocks both
	// inflate the state space and introduce "error R1" transitions that are
	// no part of the protocol's observable behaviour.
	NoMonitor bool
}

// ErrConfig reports an invalid model configuration.
var ErrConfig = errors.New("models: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TMin <= 0 || c.TMax < c.TMin {
		return fmt.Errorf("%w: need 0 < tmin <= tmax, got %d, %d", ErrConfig, c.TMin, c.TMax)
	}
	if c.WatchdogTMax != 0 && c.WatchdogTMax < c.TMax {
		return fmt.Errorf("%w: watchdog tmax %d below tmax %d", ErrConfig, c.WatchdogTMax, c.TMax)
	}
	switch c.Variant {
	case Binary, RevisedBinary, TwoPhase, Static, Expanding, Dynamic:
	default:
		return fmt.Errorf("%w: unknown variant %d", ErrConfig, int(c.Variant))
	}
	if c.N < 1 {
		return fmt.Errorf("%w: need at least one participant", ErrConfig)
	}
	return nil
}

// binaryFamily reports whether the variant has fixed membership.
func (c Config) binaryFamily() bool {
	switch c.Variant {
	case Binary, RevisedBinary, TwoPhase, Static:
		return true
	default:
		return false
	}
}

// joinPhase reports whether participants solicit before joining.
func (c Config) joinPhase() bool { return !c.binaryFamily() }

// fixPriority reports whether the §6.1 receive-priority fix is in force.
func (c Config) fixPriority() bool { return c.Fixed || c.FixPriority }

// fixBounds reports whether the §6.2 corrected bounds are in force.
func (c Config) fixBounds() bool { return c.Fixed || c.FixBounds }

// watchdogTMax is the tmax the participants' watchdog bounds derive from:
// the coordinator's, unless WatchdogTMax decouples them.
func (c Config) watchdogTMax() int32 {
	if c.WatchdogTMax != 0 {
		return c.WatchdogTMax
	}
	return c.TMax
}

// responderBound is p[i]'s steady-state watchdog bound.
func (c Config) responderBound() int32 {
	if c.fixBounds() {
		return 2 * c.watchdogTMax()
	}
	return 3*c.watchdogTMax() - c.TMin
}

// joinerBound is p[i]'s solicitation-phase bound.
func (c Config) joinerBound() int32 {
	if c.fixBounds() {
		return 2*c.watchdogTMax() + c.TMin
	}
	return 3*c.watchdogTMax() - c.TMin
}

// DetectionBound is the R1 detection bound the configuration claims:
// p[0] must inactivate within this many ticks of the last beat delivered
// from a silent participant. Exported for the runtime verdict monitors of
// internal/conform, which re-evaluate R1 on recorded traces.
func (c Config) DetectionBound() int32 { return c.r1Bound() }

// r1Bound is the monitored detection bound for R1: the 1998 claim of
// 2·tmax, or the corrected §6.2 bound.
func (c Config) r1Bound() int32 {
	if !c.fixBounds() {
		return 2 * c.TMax
	}
	switch {
	case c.Variant == TwoPhase && c.TMax == c.TMin:
		return 2 * c.TMax
	case c.Variant == TwoPhase:
		return 2*c.TMax + c.TMin
	case 2*c.TMin > c.TMax:
		return 2 * c.TMax
	default:
		return 3*c.TMax - c.TMin
	}
}

// p0Refs locates p[0]'s pieces in the network.
type p0Refs struct {
	aut                                   int
	init, alive, timeout, vInact, nvInact int
	waiting                               int // clock
	t                                     int // var: current round length
}

// piRefs locates participant i's pieces.
type piRefs struct {
	aut                                 int
	start, alive, rcvd, vInact, nvInact int
	wfb                                 int // clock: waiting-for-beat
	wtj                                 int // clock: waiting-to-join (joiners)
}

// chanRefs locates the pair channel for participant i.
type chanRefs struct {
	aut                                     int
	idle, fly, await, replyTrue, replyFalse int
	rt                                      int // clock: round-trip budget
}

// joinChanRefs locates the solicitation channel for participant i.
type joinChanRefs struct {
	aut       int
	idle, fly int
	rt        int // clock: one-way budget
}

// monRefs locates the R1 monitor for participant i.
type monRefs struct {
	aut                int
	watch, errLoc, off int
	delay              int // clock
}

// Model is a built protocol model plus everything the requirement
// predicates need.
type Model struct {
	Cfg Config
	Net *ta.Network

	p0   p0Refs
	ps   []piRefs
	chs  []chanRefs
	jchs []joinChanRefs
	mons []monRefs

	// variables
	vActive0 int
	vActive  []int // per participant
	vRcvd    []int
	vTM      []int
	vJnd     []int
	vLeave   []int // dynamic only; -1 otherwise
	vEver    []int // p[0] ever received a beat from p[i]
	vLost    int

	// channels
	chBcast      ta.ChanID   // p[0]'s beat, broadcast to all pair channels
	chDlv        []ta.ChanID // pair channel delivers to p[i]
	chReply      []ta.ChanID // p[i] replies into the pair channel
	chReplyFalse []ta.ChanID // p[i]'s leave reply (dynamic only)
	chDlvTrue    []ta.ChanID // deliveries to p[0] with a true beat (broadcast: p[0] + monitor)
	chDlvFalse   []ta.ChanID // deliveries to p[0] with a false (leave) beat
	chJoin       []ta.ChanID // p[i]'s solicitation into the join channel
}

// Build constructs the timed-automata network for the configuration.
func Build(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Variant {
	case Binary, RevisedBinary, TwoPhase:
		cfg.N = 1
	}
	m := &Model{Cfg: cfg, Net: ta.NewNetwork()}
	m.Net.SetReceivePriority(cfg.fixPriority())
	m.declareVars()
	m.declareChans()
	m.buildP0()
	for i := 0; i < cfg.N; i++ {
		m.buildChannel(i)
		if cfg.joinPhase() {
			// Built before the participant: the joiner's re-solicitation
			// edges inspect the join channel's occupancy.
			m.buildJoinChannel(i)
		}
		m.buildParticipant(i)
		if (i == 0 || cfg.MonitorAll) && !cfg.NoMonitor {
			m.buildMonitor(i)
		}
	}
	m.wireP0Edges()
	return m, nil
}

// declareVars creates the shared variable set.
func (m *Model) declareVars() {
	cfg := m.Cfg
	n := m.Net
	m.vActive0 = n.Var("active0", 1)
	m.vLost = n.Var("lostMsg", 0)
	jndInit := int32(0)
	if cfg.binaryFamily() {
		jndInit = 1
	}
	for i := 0; i < cfg.N; i++ {
		m.vActive = append(m.vActive, n.Var(fmt.Sprintf("active%d", i+1), 1))
		m.vRcvd = append(m.vRcvd, n.Var(fmt.Sprintf("rcvd%d", i+1), 1))
		m.vTM = append(m.vTM, n.Var(fmt.Sprintf("tm%d", i+1), cfg.TMax))
		m.vJnd = append(m.vJnd, n.Var(fmt.Sprintf("jnd%d", i+1), jndInit))
		if cfg.Variant == Dynamic {
			m.vLeave = append(m.vLeave, n.Var(fmt.Sprintf("leave%d", i+1), 0))
		} else {
			m.vLeave = append(m.vLeave, -1)
		}
		m.vEver = append(m.vEver, n.Var(fmt.Sprintf("ever%d", i+1), 0))
	}
}

// declareChans creates the synchronisation channels.
func (m *Model) declareChans() {
	n := m.Net
	m.chBcast = n.Chan("bcast0", true)
	for i := 0; i < m.Cfg.N; i++ {
		m.chDlv = append(m.chDlv, n.Chan(fmt.Sprintf("dlv_p%d", i+1), false))
		m.chReply = append(m.chReply, n.Chan(fmt.Sprintf("reply_p%d", i+1), false))
		if m.Cfg.Variant == Dynamic {
			m.chReplyFalse = append(m.chReplyFalse, n.Chan(fmt.Sprintf("reply_false_p%d", i+1), false))
		} else {
			m.chReplyFalse = append(m.chReplyFalse, 0)
		}
		m.chDlvTrue = append(m.chDlvTrue, n.Chan(fmt.Sprintf("dlv0_true_p%d", i+1), true))
		if m.Cfg.Variant == Dynamic {
			// Leave beats exist only in the dynamic protocol; declaring the
			// channel elsewhere leaves it dead (ta.Analyze flags it).
			m.chDlvFalse = append(m.chDlvFalse, n.Chan(fmt.Sprintf("dlv0_false_p%d", i+1), true))
		} else {
			m.chDlvFalse = append(m.chDlvFalse, 0)
		}
		if m.Cfg.joinPhase() {
			m.chJoin = append(m.chJoin, n.Chan(fmt.Sprintf("join_p%d", i+1), false))
		} else {
			m.chJoin = append(m.chJoin, 0)
		}
	}
}

// nextTM computes the §2 acceleration rule for one participant given the
// pre-timeout state.
func (m *Model) nextTM(s *ta.State, i int) (next int32, alive bool) {
	tm := s.Vars[m.vTM[i]]
	if s.Vars[m.vRcvd[i]] == 1 {
		return m.Cfg.TMax, true
	}
	if m.Cfg.Variant == TwoPhase {
		if tm <= m.Cfg.TMin {
			return tm, false
		}
		return m.Cfg.TMin, true
	}
	next = tm / 2
	if next < m.Cfg.TMin {
		return next, false
	}
	return next, true
}

// timeoutOutcome evaluates p[0]'s decision at a round timeout: ok is false
// when some joined participant's waiting time has decayed below tmin, and
// otherwise newT is the next round length (tmax when nobody has joined).
func (m *Model) timeoutOutcome(s *ta.State) (newT int32, ok bool) {
	newT = m.Cfg.TMax
	for i := 0; i < m.Cfg.N; i++ {
		if s.Vars[m.vJnd[i]] != 1 {
			continue
		}
		next, alive := m.nextTM(s, i)
		if !alive {
			return 0, false
		}
		if next < newT {
			newT = next
		}
	}
	return newT, true
}

// applyTimeout commits the round bookkeeping after a continue decision.
func (m *Model) applyTimeout(s *ta.State) {
	newT, _ := m.timeoutOutcome(s)
	for i := 0; i < m.Cfg.N; i++ {
		if s.Vars[m.vJnd[i]] != 1 {
			continue
		}
		next, _ := m.nextTM(s, i)
		s.Vars[m.vTM[i]] = next
		s.Vars[m.vRcvd[i]] = 0
	}
	s.Vars[m.p0.t] = newT
	s.Clocks[m.p0.waiting] = 0
}
