package models

import (
	"repro/internal/ta"
)

// buildParticipant constructs p[i+1]: a responder (Figure 4) for the
// binary/static variants, or a joiner (Figures 6 and 8) for the
// expanding/dynamic variants.
func (m *Model) buildParticipant(i int) {
	if m.Cfg.binaryFamily() {
		m.buildResponder(i)
	} else {
		m.buildJoiner(i)
	}
}

// buildResponder is Figure 4: reply immediately, inactivate after the
// watchdog bound without a beat.
func (m *Model) buildResponder(i int) {
	cfg := m.Cfg
	net := m.Net
	bound := cfg.responderBound()
	wfb := net.Clock("wfb_"+pname(i), bound+1)

	var p piRefs
	p.start = -1
	p.wfb = wfb
	p.wtj = -1
	a := &ta.Automaton{Name: "P" + pname(i)}
	p.alive = addLoc(a, ta.Location{
		Name:      "Alive",
		Invariant: func(s *ta.State) bool { return s.Clocks[wfb] <= bound },
	})
	p.rcvd = addLoc(a, ta.Location{Name: "Rcvd", Kind: ta.Committed})
	p.vInact = addLoc(a, ta.Location{Name: "VInact"})
	p.nvInact = addLoc(a, ta.Location{Name: "NVInact"})
	a.Init = p.alive

	active := m.vActive[i]
	a.Edges = append(a.Edges,
		// Delivery of p[0]'s beat.
		ta.Edge{From: p.alive, To: p.rcvd, Chan: m.chDlv[i]},
		// Immediate reply, pushing out the watchdog.
		ta.Edge{
			From: p.rcvd, To: p.alive,
			Chan: m.chReply[i], Send: true,
			Label:  pname(i) + ": send beat",
			Update: func(s *ta.State) { s.Clocks[wfb] = 0 },
		},
		// Watchdog expiry.
		ta.Edge{
			From: p.alive, To: p.nvInact,
			Guard:  func(s *ta.State) bool { return s.Clocks[wfb] == bound },
			Label:  "inactivate nv " + pname(i),
			Update: func(s *ta.State) { s.Vars[active] = 0 },
			Class:  ta.ClassTimeout,
		},
		// Voluntary inactivation.
		ta.Edge{
			From: p.alive, To: p.vInact,
			Label:  "crash " + pname(i),
			Update: func(s *ta.State) { s.Vars[active] = 0 },
		},
		// Inactivated processes receive without reacting.
		ta.Edge{From: p.vInact, To: p.vInact, Chan: m.chDlv[i]},
		ta.Edge{From: p.nvInact, To: p.nvInact, Chan: m.chDlv[i]},
	)
	p.aut = len(net.Automata())
	net.Add(a)
	m.ps = append(m.ps, p)
}

// buildJoiner is Figure 6 (expanding) / Figure 8 (dynamic): solicit every
// tmin until acknowledged, then respond; dynamically, optionally decide to
// leave, conveyed by a false reply, after which non-voluntary inactivation
// is disabled.
func (m *Model) buildJoiner(i int) {
	cfg := m.Cfg
	net := m.Net
	dynamic := cfg.Variant == Dynamic
	jb := cfg.joinerBound()
	rb := cfg.responderBound()
	maxBound := jb
	if rb > maxBound {
		maxBound = rb
	}
	wfb := net.Clock("wfb_"+pname(i), maxBound+1)
	wtj := net.Clock("wtj_"+pname(i), cfg.TMin+1)
	joined := net.Var("joined_"+pname(i), 0)
	active := m.vActive[i]
	leave := m.vLeave[i]

	var p piRefs
	p.wfb = wfb
	p.wtj = wtj
	a := &ta.Automaton{Name: "P" + pname(i)}
	p.start = addLoc(a, ta.Location{Name: "Start", Kind: ta.Urgent})
	p.alive = addLoc(a, ta.Location{
		Name: "Alive",
		Invariant: func(s *ta.State) bool {
			// Unjoined: next solicitation is due within tmin.
			if s.Vars[joined] == 0 && s.Clocks[wtj] > cfg.TMin {
				return false
			}
			// Leaving processes are exempt from the watchdog.
			if dynamic && s.Vars[leave] == 1 {
				return true
			}
			if s.Vars[joined] == 1 {
				return s.Clocks[wfb] <= rb
			}
			return s.Clocks[wfb] <= jb
		},
	})
	p.rcvd = addLoc(a, ta.Location{Name: "Rcvd", Kind: ta.Committed})
	p.vInact = addLoc(a, ta.Location{Name: "VInact"})
	p.nvInact = addLoc(a, ta.Location{Name: "NVInact"})
	a.Init = p.start

	// Initial solicitation: the start location is urgent (Figure 6), so
	// the process cannot abstain by idling.
	a.Edges = append(a.Edges, ta.Edge{
		From: p.start, To: p.alive,
		Chan: m.chJoin[i], Send: true,
		Label: pname(i) + ": send join beat",
		Update: func(s *ta.State) {
			s.Clocks[wtj] = 0
			s.Clocks[wfb] = 0
		},
	})
	// Re-solicit every tmin while unjoined — unless the previous
	// solicitation is still in flight, in which case the duplicate is
	// suppressed (solicitations are idempotent; see buildJoinChannel).
	jch := m.jchs[i]
	jchIdle := func(s *ta.State) bool { return int(s.Locs[jch.aut]) == jch.idle }
	a.Edges = append(a.Edges,
		ta.Edge{
			From: p.alive, To: p.alive,
			Guard: func(s *ta.State) bool {
				return s.Vars[joined] == 0 && s.Clocks[wtj] == cfg.TMin && jchIdle(s)
			},
			Chan: m.chJoin[i], Send: true,
			Label:  pname(i) + ": send join beat",
			Update: func(s *ta.State) { s.Clocks[wtj] = 0 },
		},
		ta.Edge{
			From: p.alive, To: p.alive,
			Guard: func(s *ta.State) bool {
				return s.Vars[joined] == 0 && s.Clocks[wtj] == cfg.TMin && !jchIdle(s)
			},
			Label:  pname(i) + ": suppress duplicate join",
			Update: func(s *ta.State) { s.Clocks[wtj] = 0 },
		},
	)
	// Delivery of p[0]'s beat acknowledges the join.
	a.Edges = append(a.Edges, ta.Edge{
		From: p.alive, To: p.rcvd, Chan: m.chDlv[i],
		Update: func(s *ta.State) { s.Vars[joined] = 1 },
	})
	// Reply: a true beat normally, a false beat when leaving.
	replyGuard := func(wantLeave bool) ta.Guard {
		return func(s *ta.State) bool {
			if !dynamic {
				return !wantLeave
			}
			return (s.Vars[leave] == 1) == wantLeave
		}
	}
	a.Edges = append(a.Edges, ta.Edge{
		From: p.rcvd, To: p.alive,
		Guard: replyGuard(false),
		Chan:  m.chReply[i], Send: true,
		Label:  pname(i) + ": send beat",
		Update: func(s *ta.State) { s.Clocks[wfb] = 0 },
	})
	if dynamic {
		a.Edges = append(a.Edges, ta.Edge{
			From: p.rcvd, To: p.alive,
			Guard: replyGuard(true),
			Chan:  m.chReplyFalse[i], Send: true,
			Label:  pname(i) + ": send leave beat",
			Update: func(s *ta.State) { s.Clocks[wfb] = 0 },
		})
		// The decision to leave, any time after joining.
		a.Edges = append(a.Edges, ta.Edge{
			From: p.alive, To: p.alive,
			Guard: func(s *ta.State) bool {
				return s.Vars[joined] == 1 && s.Vars[leave] == 0
			},
			Label:  pname(i) + ": decide leave",
			Update: func(s *ta.State) { s.Vars[leave] = 1 },
		})
	}
	// Watchdog expiry: before joining at the joiner bound, after joining
	// at the responder bound; leaving processes are exempt.
	expiry := func(wantJoined bool, bound int32) ta.Edge {
		return ta.Edge{
			From: p.alive, To: p.nvInact,
			Guard: func(s *ta.State) bool {
				if dynamic && s.Vars[leave] == 1 {
					return false
				}
				return (s.Vars[joined] == 1) == wantJoined && s.Clocks[wfb] == bound
			},
			Label:  "inactivate nv " + pname(i),
			Update: func(s *ta.State) { s.Vars[active] = 0 },
			Class:  ta.ClassTimeout,
		}
	}
	a.Edges = append(a.Edges, expiry(false, jb), expiry(true, rb))
	// Voluntary inactivation and receptive inactive states.
	a.Edges = append(a.Edges,
		ta.Edge{
			From: p.alive, To: p.vInact,
			Label:  "crash " + pname(i),
			Update: func(s *ta.State) { s.Vars[active] = 0 },
		},
		ta.Edge{From: p.vInact, To: p.vInact, Chan: m.chDlv[i]},
		ta.Edge{From: p.nvInact, To: p.nvInact, Chan: m.chDlv[i]},
	)
	p.aut = len(net.Automata())
	net.Add(a)
	m.ps = append(m.ps, p)
}
