// Package ta implements a discrete-time timed-automata modeling framework
// in the style of UPPAAL, specialised to the needs of the accelerated
// heartbeat analysis.
//
// A Network is a parallel composition of automata over shared integer
// variables and integer-valued clocks. Time advances in unit ticks: a delay
// transition increments every (uncapped) clock by one and is enabled only
// when no automaton occupies an urgent or committed location and every
// location invariant still holds after the increment. Discrete transitions
// are internal edges, binary handshakes (a! with a?), or broadcasts (a!
// with every enabled a? receiver). Committed locations have priority over
// everything and block time, as in UPPAAL.
//
// All constants in the heartbeat models are naturals, and the original
// mCRL2 formalisation is itself discrete-time (explicit tick actions and
// counting stopwatches), so exploring integer clock valuations — capped at
// each clock's largest relevant constant — is exact for this model class.
//
// Because clocks are plain integers in the state vector, updates may
// assign them arbitrarily (e.g. copying one clock into another), which the
// channel models use to share a round-trip budget across the two legs of a
// heartbeat exchange.
package ta

import "fmt"

// LocKind classifies a location's urgency.
type LocKind int

// Location kinds. Urgent locations block delay transitions; committed
// locations additionally get exclusive priority for the next discrete
// transition.
const (
	Normal LocKind = iota
	Urgent
	Committed
)

// EdgeClass tags edges for the §6.1 receive-priority fix: when a network
// has priorities enabled and any Deliver-class transition is enabled,
// Timeout-class transitions are suppressed.
type EdgeClass int

// Edge classes.
const (
	// ClassDefault edges are unaffected by priorities.
	ClassDefault EdgeClass = iota
	// ClassDeliver marks message-delivery transitions.
	ClassDeliver
	// ClassTimeout marks timeout transitions (suppressed under priority
	// when a delivery is enabled).
	ClassTimeout
)

// State is a configuration of the network: one location per automaton plus
// the flat clock and variable vectors. Clocks and variables share value
// semantics; only clocks advance on delay transitions.
type State struct {
	Locs   []uint8
	Clocks []int32
	Vars   []int32
}

// Clone returns a deep copy.
func (s *State) Clone() State {
	return State{
		Locs:   append([]uint8(nil), s.Locs...),
		Clocks: append([]int32(nil), s.Clocks...),
		Vars:   append([]int32(nil), s.Vars...),
	}
}

//hbvet:noalloc
// AppendKey appends the state's canonical key encoding to buf and returns
// the extended slice: the location vector verbatim, then each clock and
// variable as a big-endian 16-bit truncation. It never allocates beyond
// growing buf, so a caller reusing one buffer encodes states alloc-free.
func (s *State) AppendKey(buf []byte) []byte {
	buf = append(buf, s.Locs...)
	for _, c := range s.Clocks {
		buf = append(buf, byte(uint16(c)>>8), byte(uint16(c)))
	}
	for _, v := range s.Vars {
		buf = append(buf, byte(uint16(v)>>8), byte(uint16(v)))
	}
	return buf
}

// KeyLen returns the length of the state's AppendKey encoding.
func (s *State) KeyLen() int {
	return len(s.Locs) + 2*len(s.Clocks) + 2*len(s.Vars)
}

// Key returns the AppendKey encoding as a string, usable as a map key.
func (s *State) Key() string {
	return string(s.AppendKey(make([]byte, 0, s.KeyLen())))
}

//hbvet:noalloc
// DecodeKey rebuilds the state encoded by AppendKey into s, reusing s's
// slice capacity. numLocs and numClocks fix the layout; the variable count
// is the remainder of the key. Values round-trip exactly when they fit in
// int16 — the same 16-bit truncation AppendKey applies (wider values
// already collide as keys, so no checker that dedups on keys can tell the
// difference).
func (s *State) DecodeKey(key []byte, numLocs, numClocks int) {
	s.Locs = append(s.Locs[:0], key[:numLocs]...)
	key = key[numLocs:]
	s.Clocks = s.Clocks[:0]
	for i := 0; i < numClocks; i++ {
		s.Clocks = append(s.Clocks, int32(int16(uint16(key[2*i])<<8|uint16(key[2*i+1]))))
	}
	key = key[2*numClocks:]
	s.Vars = s.Vars[:0]
	for i := 0; i+1 < len(key); i += 2 {
		s.Vars = append(s.Vars, int32(int16(uint16(key[i])<<8|uint16(key[i+1]))))
	}
}

// Guard is a predicate over a configuration; nil means true.
type Guard func(s *State) bool

// Update mutates a configuration; nil means no effect.
type Update func(s *State)

// ChanID identifies a synchronisation channel; zero means an internal
// (tau) edge.
type ChanID int

// Location is a node of an automaton's control graph.
type Location struct {
	Name string
	Kind LocKind
	// Invariant must hold for time to pass while the automaton occupies
	// this location: a delay is allowed only if the invariant still
	// holds after all clocks advance. nil means no constraint.
	Invariant Guard
}

// Edge is a transition of one automaton.
type Edge struct {
	From, To int
	Guard    Guard
	// Chan and Send select synchronisation: Chan == 0 is internal;
	// otherwise Send distinguishes a! from a?.
	Chan   ChanID
	Send   bool
	Update Update
	// Label names the action for traces (the sending side's label wins
	// for synchronisations).
	Label string
	Class EdgeClass
}

// Automaton is one component of the network.
type Automaton struct {
	Name      string
	Locations []Location
	Edges     []Edge
	Init      int
	index     int // position in the network
}

// Channel declares a synchronisation channel.
type Channel struct {
	Name      string
	Broadcast bool
}

// Network is a parallel composition.
type Network struct {
	automata   []*Automaton
	channels   []Channel // index 0 reserved (internal)
	clockNames []string
	clockCaps  []int32
	varNames   []string
	varInit    []int32
	// priority enables the §6.1 receive-priority rule.
	priority bool
	// compiled edge indices, built lazily
	compiled  bool
	sendEdges map[ChanID][]edgeRef
	recvEdges map[ChanID][]edgeRef
	// defaultCtx backs the convenience Network.Successors method.
	defaultCtx *SuccCtx
}

type edgeRef struct {
	aut  int
	edge int
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{channels: []Channel{{Name: "internal"}}}
}

// SetReceivePriority enables the §6.1 fix: whenever a ClassDeliver
// transition is enabled AND due (its initiating automaton's invariant
// blocks further delay), ClassTimeout transitions are suppressed until
// the delivery (or a competing non-timeout move, such as a loss) happens.
func (n *Network) SetReceivePriority(on bool) { n.priority = on }

// Clock declares a clock with the given state-space cap: once a clock
// reaches its cap it stops advancing, which is sound as long as every
// guard and invariant mentioning it only distinguishes values below the
// cap. Returns the clock's index.
func (n *Network) Clock(name string, cap int32) int {
	if cap < 1 {
		panic(fmt.Sprintf("ta: clock %q needs a positive cap", name))
	}
	n.clockNames = append(n.clockNames, name)
	n.clockCaps = append(n.clockCaps, cap)
	return len(n.clockNames) - 1
}

// Var declares an integer variable with an initial value and returns its
// index.
func (n *Network) Var(name string, init int32) int {
	n.varNames = append(n.varNames, name)
	n.varInit = append(n.varInit, init)
	return len(n.varNames) - 1
}

// Chan declares a synchronisation channel and returns its ID.
func (n *Network) Chan(name string, broadcast bool) ChanID {
	n.channels = append(n.channels, Channel{Name: name, Broadcast: broadcast})
	return ChanID(len(n.channels) - 1)
}

// Add registers an automaton and returns it for edge/location population.
func (n *Network) Add(a *Automaton) *Automaton {
	a.index = len(n.automata)
	n.automata = append(n.automata, a)
	n.compiled = false
	return a
}

// Automata returns the registered automata in composition order.
func (n *Network) Automata() []*Automaton { return n.automata }

// ClockName returns the declared name of clock i.
func (n *Network) ClockName(i int) string { return n.clockNames[i] }

// VarName returns the declared name of variable i.
func (n *Network) VarName(i int) string { return n.varNames[i] }

// NumClocks returns the number of declared clocks.
func (n *Network) NumClocks() int { return len(n.clockNames) }

// NumVars returns the number of declared variables.
func (n *Network) NumVars() int { return len(n.varNames) }

// LocationName resolves automaton aut's location loc.
func (n *Network) LocationName(aut int, loc uint8) string {
	return n.automata[aut].Locations[loc].Name
}

// LocationIndex finds the index of the named location in automaton aut,
// or -1.
func (n *Network) LocationIndex(aut *Automaton, name string) int {
	for i, l := range aut.Locations {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Initial returns the initial configuration.
func (n *Network) Initial() State {
	s := State{
		Locs:   make([]uint8, len(n.automata)),
		Clocks: make([]int32, len(n.clockNames)),
		Vars:   append([]int32(nil), n.varInit...),
	}
	for i, a := range n.automata {
		s.Locs[i] = uint8(a.Init)
	}
	return s
}

// Transition is one outgoing move of a configuration.
type Transition struct {
	// Label is "tick" for delay transitions, otherwise the action label.
	Label string
	// Delay marks the delay (tick) transition.
	Delay bool
	// Class carries the edge class for priority filtering.
	Class EdgeClass
	// src is the initiating automaton (the sender for synchronisations),
	// used to decide whether a delivery is due for priority filtering.
	src int
	// Target is the successor configuration.
	Target State
}

// compile builds the channel-to-edge indices.
func (n *Network) compile() {
	if n.compiled {
		return
	}
	n.sendEdges = make(map[ChanID][]edgeRef)
	n.recvEdges = make(map[ChanID][]edgeRef)
	for ai, a := range n.automata {
		for ei, e := range a.Edges {
			if e.Chan == 0 {
				continue
			}
			if e.Send {
				n.sendEdges[e.Chan] = append(n.sendEdges[e.Chan], edgeRef{ai, ei})
			} else {
				n.recvEdges[e.Chan] = append(n.recvEdges[e.Chan], edgeRef{ai, ei})
			}
		}
	}
	n.compiled = true
}

//hbvet:noalloc
// enabled reports whether edge e of automaton a can fire in s (location
// and guard only; synchronisation is the caller's concern).
func (n *Network) enabled(s *State, a int, e *Edge) bool {
	if int(s.Locs[a]) != e.From {
		return false
	}
	//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
	return e.Guard == nil || e.Guard(s)
}

// SuccCtx is a successor-generation context: it owns the scratch buffers
// Successors reuses between calls, so distinct contexts over one (fully
// built, read-only) Network may generate successors concurrently — one
// context per worker goroutine. The network must not be modified (Add,
// Clock, Var, Chan, SetReceivePriority) after contexts are created.
//
// A SuccCtx itself is not safe for concurrent use, and its buffer-reuse
// contract matches Network.Successors: targets live in buf's spare
// capacity and scratch masks are valid only until the next call on the
// same context.
type SuccCtx struct {
	n *Network
	// scratch buffers reused across Successors calls. None of them
	// escape a call.
	scratchCommitted []bool
	scratchMust      []bool
	scratchSeen      []bool
	scratchRecv      []edgeRef
	scratchTick      State
}

// NewSuccCtx compiles the network (if needed) and returns a fresh
// successor-generation context. Create one per worker goroutine; the
// creation itself must happen before any concurrent use of the network.
func (n *Network) NewSuccCtx() *SuccCtx {
	n.compile()
	return &SuccCtx{n: n}
}

//hbvet:noalloc
// committedActive returns the set of automata in committed locations, or
// nil if none. The returned mask is a scratch buffer valid only until the
// next Successors call on this context.
func (c *SuccCtx) committedActive(s *State) []bool {
	n := c.n
	var mask []bool
	for i, a := range n.automata {
		if a.Locations[s.Locs[i]].Kind == Committed {
			if mask == nil {
				if len(c.scratchCommitted) != len(n.automata) {
					//lint:allow hot-path-alloc scratch warm-up, sized once per context; steady state reuses the mask
					c.scratchCommitted = make([]bool, len(n.automata))
				}
				mask = c.scratchCommitted
				clear(mask)
			}
			mask[i] = true
		}
	}
	return mask
}

//hbvet:noalloc
// appendTarget extends buf by one transition whose target starts as a
// copy of src, reusing the spare slot's slice capacity (dead entries left
// beyond len(buf) by a caller recycling its buffer with buf[:0] donate
// their slices), and returns the grown buffer plus a pointer to the new
// entry for the caller to finish. Building the target in place keeps it
// off the heap: guard and update closures receive a pointer into buf's
// backing array, not a stack local that escape analysis would box per
// transition. A caller that decides against the transition simply keeps
// the shorter original buffer.
func appendTarget(buf []Transition, src *State) ([]Transition, *Transition) {
	i := len(buf)
	if i < cap(buf) {
		buf = buf[:i+1]
	} else {
		buf = append(buf, Transition{})
	}
	tr := &buf[i]
	tr.Label, tr.Delay, tr.Class, tr.src = "", false, ClassDefault, 0
	t := &tr.Target
	t.Locs = append(t.Locs[:0], src.Locs...)
	t.Clocks = append(t.Clocks[:0], src.Clocks...)
	t.Vars = append(t.Vars[:0], src.Vars...)
	return buf, tr
}

// Successors appends all outgoing transitions of s to buf and returns it.
//
// Target states reuse the spare capacity of buf beyond len(buf): a caller
// may recycle its buffer with buf[:0] between calls, but must not retain a
// Transition.Target from an earlier call while doing so (copy the state or
// its key first). This method reuses one internal default context, so it
// must not be called concurrently on one Network, nor re-entered from a
// Guard, Invariant, or Update closure. Concurrent exploration goes through
// per-worker contexts from NewSuccCtx instead.
func (n *Network) Successors(s *State, buf []Transition) []Transition {
	if n.defaultCtx == nil || !n.compiled {
		n.defaultCtx = n.NewSuccCtx()
	}
	return n.defaultCtx.Successors(s, buf)
}

//hbvet:noalloc
// Successors appends all outgoing transitions of s to buf and returns it.
// See Network.Successors for the buffer-reuse contract; the enumeration
// order is fixed by the network's declaration order and identical across
// contexts.
func (c *SuccCtx) Successors(s *State, buf []Transition) []Transition {
	n := c.n
	committed := c.committedActive(s)
	start := len(buf)

	// Internal edges.
	for ai, a := range n.automata {
		for ei := range a.Edges {
			e := &a.Edges[ei]
			if e.Chan != 0 || !n.enabled(s, ai, e) {
				continue
			}
			if committed != nil && !committed[ai] {
				continue
			}
			var tr *Transition
			buf, tr = appendTarget(buf, s)
			tr.Target.Locs[ai] = uint8(e.To)
			if e.Update != nil {
				//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
				e.Update(&tr.Target)
			}
			tr.Label, tr.Class, tr.src = e.Label, e.Class, ai
		}
	}

	// Handshakes and broadcasts.
	for ch := ChanID(1); ch < ChanID(len(n.channels)); ch++ {
		if n.channels[ch].Broadcast {
			buf = c.broadcastSuccessors(s, ch, committed, buf)
		} else {
			buf = n.handshakeSuccessors(s, ch, committed, buf)
		}
	}

	// Receive-priority (§6.1): if any delivery is due at this instant —
	// enabled, and its channel cannot let time pass — it is processed
	// before timeouts.
	if n.priority {
		buf = c.applyPriority(s, buf, start)
	}

	// Delay transition.
	return n.appendDelay(s, committed, buf)
}

//hbvet:noalloc
// handshakeSuccessors pairs each enabled sender with each enabled receiver
// in a different automaton.
func (n *Network) handshakeSuccessors(s *State, ch ChanID, committed []bool, buf []Transition) []Transition {
	for _, sr := range n.sendEdges[ch] {
		se := &n.automata[sr.aut].Edges[sr.edge]
		if !n.enabled(s, sr.aut, se) {
			continue
		}
		for _, rr := range n.recvEdges[ch] {
			if rr.aut == sr.aut {
				continue
			}
			re := &n.automata[rr.aut].Edges[rr.edge]
			if !n.enabled(s, rr.aut, re) {
				continue
			}
			if committed != nil && !committed[sr.aut] && !committed[rr.aut] {
				continue
			}
			var tr *Transition
			buf, tr = appendTarget(buf, s)
			t := &tr.Target
			t.Locs[sr.aut] = uint8(se.To)
			t.Locs[rr.aut] = uint8(re.To)
			if se.Update != nil {
				//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
				se.Update(t)
			}
			if re.Update != nil {
				//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
				re.Update(t)
			}
			tr.Label = se.Label
			if tr.Label == "" {
				tr.Label = re.Label
			}
			tr.Class = se.Class
			if re.Class != ClassDefault {
				tr.Class = re.Class
			}
			tr.src = sr.aut
		}
	}
	return buf
}

//hbvet:noalloc
// broadcastSuccessors fires each enabled sender together with every
// enabled receiver (receivers never block a broadcast).
func (c *SuccCtx) broadcastSuccessors(s *State, ch ChanID, committed []bool, buf []Transition) []Transition {
	n := c.n
	for _, sr := range n.sendEdges[ch] {
		se := &n.automata[sr.aut].Edges[sr.edge]
		if !n.enabled(s, sr.aut, se) {
			continue
		}
		// Collect at most one enabled receive edge per automaton. The
		// heartbeat models never have two enabled receivers on the same
		// broadcast channel in one automaton; the first (declaration
		// order) wins, matching UPPAAL's deterministic model layout.
		if len(c.scratchSeen) != len(n.automata) {
			//lint:allow hot-path-alloc scratch warm-up, sized once per context; steady state reuses the mask
			c.scratchSeen = make([]bool, len(n.automata))
		}
		seen := c.scratchSeen
		clear(seen)
		receivers := c.scratchRecv[:0]
		for _, rr := range n.recvEdges[ch] {
			if rr.aut == sr.aut || seen[rr.aut] {
				continue
			}
			re := &n.automata[rr.aut].Edges[rr.edge]
			if n.enabled(s, rr.aut, re) {
				receivers = append(receivers, rr)
				seen[rr.aut] = true
			}
		}
		c.scratchRecv = receivers
		if committed != nil && !committed[sr.aut] {
			anyCommitted := false
			for _, rr := range receivers {
				if committed[rr.aut] {
					anyCommitted = true
					break
				}
			}
			if !anyCommitted {
				continue
			}
		}
		var tr *Transition
		buf, tr = appendTarget(buf, s)
		t := &tr.Target
		t.Locs[sr.aut] = uint8(se.To)
		if se.Update != nil {
			//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
			se.Update(t)
		}
		tr.Label, tr.Class, tr.src = se.Label, se.Class, sr.aut
		for _, rr := range receivers {
			re := &n.automata[rr.aut].Edges[rr.edge]
			t.Locs[rr.aut] = uint8(re.To)
			if re.Update != nil {
				//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
				re.Update(t)
			}
			if re.Class != ClassDefault {
				tr.Class = re.Class
			}
		}
	}
	return buf
}

//hbvet:noalloc
// appendDelay appends the tick transition to buf if time may pass.
func (n *Network) appendDelay(s *State, committed []bool, buf []Transition) []Transition {
	if committed != nil {
		return buf
	}
	for i, a := range n.automata {
		if a.Locations[s.Locs[i]].Kind == Urgent {
			return buf
		}
	}
	grown, tr := appendTarget(buf, s)
	t := &tr.Target
	for i := range t.Clocks {
		if t.Clocks[i] < n.clockCaps[i] {
			t.Clocks[i]++
		}
	}
	for i, a := range n.automata {
		inv := a.Locations[s.Locs[i]].Invariant
		//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
		if inv != nil && !inv(t) {
			// Retract the speculative entry: the shorter buf leaves the
			// slot (and its slices) in spare capacity for the next reuse.
			return buf
		}
	}
	tr.Label, tr.Delay = "tick", true
	return grown
}

//hbvet:noalloc
// applyPriority implements the §6.1 fix: ClassTimeout transitions are
// suppressed while some enabled ClassDeliver transition is DUE — its
// initiating automaton (the channel) can no longer let time pass, so the
// message is being offered at this very instant. A delivery that could
// still wait does not pre-empt timeouts: the fix re-orders simultaneous
// events, it does not shrink channel delays. Only entries from index
// start on are considered.
func (c *SuccCtx) applyPriority(s *State, buf []Transition, start int) []Transition {
	anyDue := false
	var mustMove []bool // lazily computed per initiating automaton
	for _, t := range buf[start:] {
		if t.Class != ClassDeliver {
			continue
		}
		if mustMove == nil {
			mustMove = c.mustMoveNow(s)
		}
		if mustMove[t.src] {
			anyDue = true
			break
		}
	}
	if !anyDue {
		return buf
	}
	// Filter by swapping rather than copying: a plain copy would leave a
	// second Transition aliasing a survivor's Target slices in the spare
	// capacity, which reuseTarget would later scribble over.
	keep := start
	for i := start; i < len(buf); i++ {
		if buf[i].Class != ClassTimeout {
			buf[keep], buf[i] = buf[i], buf[keep]
			keep++
		}
	}
	return buf[:keep]
}

//hbvet:noalloc
// mustMoveNow reports, per automaton, whether its current location's
// invariant would fail after one tick — i.e. the automaton must take a
// discrete transition before time passes. The returned mask and the ticked
// state are scratch buffers valid only until the next Successors call on
// this context.
func (c *SuccCtx) mustMoveNow(s *State) []bool {
	n := c.n
	t := &c.scratchTick
	t.Locs = append(t.Locs[:0], s.Locs...)
	t.Clocks = append(t.Clocks[:0], s.Clocks...)
	t.Vars = append(t.Vars[:0], s.Vars...)
	for i := range t.Clocks {
		if t.Clocks[i] < n.clockCaps[i] {
			t.Clocks[i]++
		}
	}
	if len(c.scratchMust) != len(n.automata) {
		//lint:allow hot-path-alloc scratch warm-up, sized once per context; steady state reuses the mask
		c.scratchMust = make([]bool, len(n.automata))
	}
	out := c.scratchMust
	for i, a := range n.automata {
		inv := a.Locations[s.Locs[i]].Invariant
		//lint:allow noalloc-closure model-defined predicate (guard/update/invariant); the automaton definition contract requires it allocation-free, pinned by the mc alloc tests
		out[i] = inv != nil && !inv(t)
	}
	return out
}
