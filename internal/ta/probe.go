package ta

// Probe-state machinery for the model analyzer (analyze.go). Guards and
// updates are opaque closures, so the analyzer evaluates them over a
// deterministic grid of configurations: a few base vectors refined by
// single- and pairwise-coordinate scans. All enumeration is in declared
// order, so results are reproducible.

// probeCoord is one mutable coordinate of the probe grid: a location
// index, a clock, or a variable, together with its candidate values.
type probeCoord struct {
	kind int // coordLoc, coordClock, coordVar
	idx  int
	vals []int32
}

const (
	coordLoc = iota
	coordClock
	coordVar
)

type probeCtx struct {
	n      *Network
	bases  []State
	coords []probeCoord
}

func newProbeCtx(n *Network) *probeCtx {
	pc := &probeCtx{n: n}

	// Base vectors: the initial configuration, all-zeros, and all clocks
	// at their caps (variables at their initial values).
	init := n.Initial()
	zeros := init.Clone()
	for i := range zeros.Clocks {
		zeros.Clocks[i] = 0
	}
	for i := range zeros.Vars {
		zeros.Vars[i] = 0
	}
	caps := init.Clone()
	for i, c := range n.clockCaps {
		caps.Clocks[i] = c
	}
	pc.bases = []State{init, zeros, caps}

	// Variable candidates: small integers, every declared initial value,
	// and every clock cap (the model constants — tmin, tmax, n — surface
	// as caps), each ±1.
	varVals := []int32{-1, 0, 1, 2}
	for _, v := range n.varInit {
		varVals = append(varVals, v)
	}
	for _, c := range n.clockCaps {
		varVals = append(varVals, c-1, c)
	}
	varVals = dedupInt32(varVals)

	for ai, a := range n.automata {
		locs := make([]int32, len(a.Locations))
		for i := range locs {
			locs[i] = int32(i)
		}
		pc.coords = append(pc.coords, probeCoord{coordLoc, ai, locs})
	}
	for ci, cap := range n.clockCaps {
		// Clocks get their full reachable range: caps are small by
		// construction (the largest relevant constant plus one), and model
		// guards compare clocks against arbitrary interior constants.
		pc.coords = append(pc.coords, probeCoord{coordClock, ci, fullRange(cap)})
	}
	for vi := range n.varInit {
		pc.coords = append(pc.coords, probeCoord{coordVar, vi, varVals})
	}
	return pc
}

// fullRange returns [0, 1, ..., cap].
func fullRange(cap int32) []int32 {
	out := make([]int32, cap+1)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func dedupInt32(vals []int32) []int32 {
	seen := make(map[int32]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (c probeCoord) get(s *State) int32 {
	switch c.kind {
	case coordLoc:
		return int32(s.Locs[c.idx])
	case coordClock:
		return s.Clocks[c.idx]
	default:
		return s.Vars[c.idx]
	}
}

func (c probeCoord) set(s *State, v int32) {
	switch c.kind {
	case coordLoc:
		s.Locs[c.idx] = uint8(v)
	case coordClock:
		s.Clocks[c.idx] = v
	default:
		s.Vars[c.idx] = v
	}
}

// forEach enumerates the probe grid with automaton fixAut pinned to
// location fixLoc: each base vector, then single-coordinate scans, then
// ordered pairwise scans. visit returning true stops the enumeration
// early. The state passed to visit is reused; visit must not retain it.
func (pc *probeCtx) forEach(fixAut, fixLoc int, visit func(*State) bool) bool {
	for _, base := range pc.bases {
		s := base.Clone()
		if fixAut >= 0 {
			s.Locs[fixAut] = uint8(fixLoc)
		}
		if visit(&s) {
			return true
		}
		for i, ci := range pc.coords {
			if ci.kind == coordLoc && ci.idx == fixAut {
				continue // the probed automaton stays at fixLoc
			}
			save := ci.get(&s)
			for _, v := range ci.vals {
				ci.set(&s, v)
				if visit(&s) {
					ci.set(&s, save)
					return true
				}
				for _, cj := range pc.coords[i+1:] {
					if cj.kind == coordLoc && cj.idx == fixAut {
						continue
					}
					save2 := cj.get(&s)
					for _, v2 := range cj.vals {
						cj.set(&s, v2)
						if visit(&s) {
							cj.set(&s, save2)
							ci.set(&s, save)
							return true
						}
					}
					cj.set(&s, save2)
				}
			}
			ci.set(&s, save)
		}
	}
	return false
}

// forEachLite enumerates a cheaper context grid: each base vector plus
// single-coordinate scans only (no pairs). Used where the probed closure
// itself supplies a further scanned dimension — clock-read and clock-cap
// checks vary one clock on top of each context, so the combination still
// covers pairwise interactions. withVars=false pins the variables at
// their base values (the cap checks use this: scanning variables would
// probe values outside any reachable domain and manufacture spurious
// cap-soundness differences).
func (pc *probeCtx) forEachLite(fixAut, fixLoc int, withVars bool, visit func(*State) bool) bool {
	for _, base := range pc.bases {
		s := base.Clone()
		if fixAut >= 0 {
			s.Locs[fixAut] = uint8(fixLoc)
		}
		if visit(&s) {
			return true
		}
		for _, ci := range pc.coords {
			if ci.kind == coordLoc && ci.idx == fixAut {
				continue
			}
			if ci.kind == coordVar && !withVars {
				continue
			}
			save := ci.get(&s)
			for _, v := range ci.vals {
				ci.set(&s, v)
				if visit(&s) {
					ci.set(&s, save)
					return true
				}
			}
			ci.set(&s, save)
		}
	}
	return false
}

// safeEval evaluates g on s, treating a panic (a closure indexing state
// it was never meant to see) as "unknown": the probe is skipped rather
// than crashing the analyzer.
func safeEval(g Guard, s *State) (result, ok bool) {
	defer func() {
		if recover() != nil {
			result, ok = false, false
		}
	}()
	return g(s), true
}

// satisfiable reports whether pred is true on at least one probe state
// with automaton aut at location loc. Closures that panic on synthetic
// states make the check inconclusive, which counts as satisfiable (no
// false alarm from a probe artefact).
func (pc *probeCtx) satisfiable(aut, loc int, pred Guard) bool {
	panicked := false
	sat := pc.forEach(aut, loc, func(s *State) bool {
		v, ok := safeEval(pred, s)
		if !ok {
			panicked = true
			return true
		}
		return v
	})
	return sat || panicked
}

// distinguishable reports whether g1 and g2 differ on any probe state
// with automaton aut at location loc.
func (pc *probeCtx) distinguishable(aut, loc int, g1, g2 Guard) bool {
	return pc.forEach(aut, loc, func(s *State) bool {
		v1, ok1 := safeEval(g1, s)
		v2, ok2 := safeEval(g2, s)
		if !ok1 || !ok2 {
			return true // inconclusive: treat as distinguishable
		}
		return v1 != v2
	})
}

// safeApply runs update u on a clone of s and returns the result; ok is
// false if u panicked.
func safeApply(u Update, s *State) (out State, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	out = s.Clone()
	u(&out)
	return out, true
}

// updatesDiffer reports whether u1 and u2 produce different states from
// any probe state with automaton aut at location loc. nil updates are
// identity.
func (pc *probeCtx) updatesDiffer(aut, loc int, u1, u2 Update) bool {
	id := func(s *State) { _ = s }
	if u1 == nil {
		u1 = id
	}
	if u2 == nil {
		u2 = id
	}
	return pc.forEach(aut, loc, func(s *State) bool {
		o1, ok1 := safeApply(u1, s)
		o2, ok2 := safeApply(u2, s)
		if !ok1 || !ok2 {
			return true // inconclusive: treat as differing
		}
		return !statesEqual(&o1, &o2)
	})
}

func statesEqual(a, b *State) bool {
	if len(a.Locs) != len(b.Locs) || len(a.Clocks) != len(b.Clocks) || len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Locs {
		if a.Locs[i] != b.Locs[i] {
			return false
		}
	}
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] {
			return false
		}
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	return true
}

// writtenClocks returns the clocks that update u assigns a value
// different from the one it read, on any probe state with automaton aut
// at location loc.
func (pc *probeCtx) writtenClocks(aut, loc int, u Update) []int {
	written := make([]bool, len(pc.n.clockCaps))
	pc.forEachLite(aut, loc, true, func(s *State) bool {
		out, ok := safeApply(u, s)
		if !ok {
			return false
		}
		for i := range written {
			if out.Clocks[i] != s.Clocks[i] {
				written[i] = true
			}
		}
		return false
	})
	var out []int
	for i, w := range written {
		if w {
			out = append(out, i)
		}
	}
	return out
}

// clockRead reports whether varying clock ci can change the value of any
// guard or invariant, or the effect of any update on a coordinate other
// than ci itself. A clock nothing reads only inflates the state space.
func (pc *probeCtx) clockRead(ci int) bool {
	n := pc.n
	vals := fullRange(n.clockCaps[ci])
	variesGuard := func(aut, loc int, g Guard) bool {
		return pc.forEachLite(aut, loc, true, func(s *State) bool {
			save := s.Clocks[ci]
			defer func() { s.Clocks[ci] = save }()
			first, any := false, false
			for _, v := range vals {
				s.Clocks[ci] = v
				got, ok := safeEval(g, s)
				if !ok {
					return true // inconclusive: count as read
				}
				if !any {
					first, any = got, true
				} else if got != first {
					return true
				}
			}
			return false
		})
	}
	variesUpdate := func(aut, loc int, u Update) bool {
		return pc.forEachLite(aut, loc, true, func(s *State) bool {
			save := s.Clocks[ci]
			defer func() { s.Clocks[ci] = save }()
			var first State
			any := false
			for _, v := range vals {
				s.Clocks[ci] = v
				out, ok := safeApply(u, s)
				if !ok {
					return true // inconclusive: count as read
				}
				// The written copy of ci itself trivially tracks the
				// input; neutralise it before comparing effects.
				out.Clocks[ci] = 0
				if !any {
					first, any = out, true
				} else if !statesEqual(&first, &out) {
					return true
				}
			}
			return false
		})
	}
	for ai, a := range n.automata {
		for li, loc := range a.Locations {
			if loc.Invariant != nil && variesGuard(ai, li, loc.Invariant) {
				return true
			}
		}
		for _, e := range a.Edges {
			if e.From < 0 || e.From >= len(a.Locations) {
				continue
			}
			if e.Guard != nil && variesGuard(ai, e.From, e.Guard) {
				return true
			}
			if e.Update != nil && variesUpdate(ai, e.From, e.Update) {
				return true
			}
		}
	}
	return false
}

// capDistinguished reports whether g differs between clock ci at its cap
// and at cap+1 or cap+2, in some probe context where inv (the source
// location's invariant, nil for none) holds at both values. Such a guard
// breaks the capping soundness condition: the capped exploration would
// hold the clock at cap while the true run moves past it.
func (pc *probeCtx) capDistinguished(aut, loc, ci int, inv, g Guard) bool {
	cap := pc.n.clockCaps[ci]
	return pc.forEachLite(aut, loc, false, func(s *State) bool {
		save := s.Clocks[ci]
		defer func() { s.Clocks[ci] = save }()
		s.Clocks[ci] = cap
		if inv != nil {
			if held, ok := safeEval(inv, s); !ok || !held {
				return false
			}
		}
		atCap, ok := safeEval(g, s)
		if !ok {
			return false
		}
		for _, beyond := range []int32{cap + 1, cap + 2} {
			s.Clocks[ci] = beyond
			if inv != nil {
				if held, ok := safeEval(inv, s); !ok || !held {
					continue
				}
			}
			got, ok := safeEval(g, s)
			if !ok {
				continue
			}
			if got != atCap {
				return true
			}
		}
		return false
	})
}
