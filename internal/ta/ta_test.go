package ta

import (
	"testing"
	"testing/quick"
)

// tinyTimer builds a one-automaton network: wait until clock == limit,
// then fire and stop.
func tinyTimer(limit int32) (*Network, *Automaton) {
	n := NewNetwork()
	c := n.Clock("x", limit+1)
	a := n.Add(&Automaton{
		Name: "timer",
		Locations: []Location{
			{Name: "Wait", Invariant: func(s *State) bool { return s.Clocks[c] <= limit }},
			{Name: "Done"},
		},
		Edges: []Edge{{
			From:  0,
			To:    1,
			Guard: func(s *State) bool { return s.Clocks[c] == limit },
			Label: "fire",
		}},
	})
	return n, a
}

func labels(trs []Transition) []string {
	out := make([]string, len(trs))
	for i, t := range trs {
		out[i] = t.Label
	}
	return out
}

func TestDelayUntilInvariantBound(t *testing.T) {
	n, _ := tinyTimer(3)
	s := n.Initial()
	// Three ticks allowed, then the invariant forces the edge.
	for i := 0; i < 3; i++ {
		trs := n.Successors(&s, nil)
		var tick *Transition
		for j := range trs {
			if trs[j].Delay {
				tick = &trs[j]
			}
		}
		if tick == nil {
			t.Fatalf("step %d: no tick in %v", i, labels(trs))
		}
		s = tick.Target
	}
	trs := n.Successors(&s, nil)
	if len(trs) != 1 || trs[0].Label != "fire" || trs[0].Delay {
		t.Fatalf("at the bound, successors = %v, want only fire", labels(trs))
	}
	s = trs[0].Target
	if s.Locs[0] != 1 {
		t.Fatalf("loc = %d, want Done", s.Locs[0])
	}
	// Done has no invariant: time flows freely, no discrete moves.
	trs = n.Successors(&s, nil)
	if len(trs) != 1 || !trs[0].Delay {
		t.Fatalf("after fire, successors = %v, want only tick", labels(trs))
	}
}

func TestGuardBeforeBoundAllowsBoth(t *testing.T) {
	// With guard x >= 1 and invariant x <= 3 both tick and fire coexist.
	n := NewNetwork()
	c := n.Clock("x", 4)
	n.Add(&Automaton{
		Name: "a",
		Locations: []Location{
			{Name: "Wait", Invariant: func(s *State) bool { return s.Clocks[c] <= 3 }},
			{Name: "Done"},
		},
		Edges: []Edge{{From: 0, To: 1, Guard: func(s *State) bool { return s.Clocks[c] >= 1 }, Label: "fire"}},
	})
	s := n.Initial()
	s = n.Successors(&s, nil)[0].Target // only tick at x=0
	trs := n.Successors(&s, nil)
	if len(trs) != 2 {
		t.Fatalf("successors = %v, want fire+tick", labels(trs))
	}
}

func TestClockCapStopsAdvance(t *testing.T) {
	n := NewNetwork()
	c := n.Clock("x", 2)
	n.Add(&Automaton{Name: "idle", Locations: []Location{{Name: "L"}}})
	s := n.Initial()
	for i := 0; i < 5; i++ {
		trs := n.Successors(&s, nil)
		s = trs[0].Target
	}
	if s.Clocks[c] != 2 {
		t.Fatalf("clock = %d, want capped at 2", s.Clocks[c])
	}
}

func TestHandshake(t *testing.T) {
	n := NewNetwork()
	ch := n.Chan("msg", false)
	v := n.Var("sum", 0)
	n.Add(&Automaton{
		Name:      "sender",
		Locations: []Location{{Name: "S0"}, {Name: "S1"}},
		Edges: []Edge{{
			From: 0, To: 1, Chan: ch, Send: true, Label: "msg!",
			Update: func(s *State) { s.Vars[v] += 1 },
		}},
	})
	n.Add(&Automaton{
		Name:      "receiver",
		Locations: []Location{{Name: "R0"}, {Name: "R1"}},
		Edges: []Edge{{
			From: 0, To: 1, Chan: ch, Send: false,
			Update: func(s *State) { s.Vars[v] *= 10 },
		}},
	})
	s := n.Initial()
	trs := n.Successors(&s, nil)
	var sync *Transition
	for i := range trs {
		if trs[i].Label == "msg!" {
			sync = &trs[i]
		}
	}
	if sync == nil {
		t.Fatalf("no handshake in %v", labels(trs))
	}
	if sync.Target.Locs[0] != 1 || sync.Target.Locs[1] != 1 {
		t.Fatalf("handshake moved to %v", sync.Target.Locs)
	}
	// Sender update runs before receiver update: (0+1)*10 = 10.
	if sync.Target.Vars[v] != 10 {
		t.Fatalf("sum = %d, want 10 (sender then receiver)", sync.Target.Vars[v])
	}
	// After the move, no partner remains: only tick.
	s = sync.Target
	trs = n.Successors(&s, nil)
	if len(trs) != 1 || !trs[0].Delay {
		t.Fatalf("after handshake, successors = %v", labels(trs))
	}
}

func TestHandshakeBlocksWithoutPartner(t *testing.T) {
	n := NewNetwork()
	ch := n.Chan("msg", false)
	n.Add(&Automaton{
		Name:      "sender",
		Locations: []Location{{Name: "S0"}, {Name: "S1"}},
		Edges:     []Edge{{From: 0, To: 1, Chan: ch, Send: true, Label: "msg!"}},
	})
	s := n.Initial()
	trs := n.Successors(&s, nil)
	if len(trs) != 1 || !trs[0].Delay {
		t.Fatalf("lone sender: successors = %v, want only tick", labels(trs))
	}
}

func TestBroadcastReachesAllEnabledReceivers(t *testing.T) {
	n := NewNetwork()
	ch := n.Chan("hb", true)
	n.Add(&Automaton{
		Name:      "caster",
		Locations: []Location{{Name: "C0"}, {Name: "C1"}},
		Edges:     []Edge{{From: 0, To: 1, Chan: ch, Send: true, Label: "hb!"}},
	})
	for i := 0; i < 3; i++ {
		n.Add(&Automaton{
			Name:      "listener",
			Locations: []Location{{Name: "L0"}, {Name: "L1"}},
			Edges:     []Edge{{From: 0, To: 1, Chan: ch, Send: false}},
		})
	}
	// A listener that is not enabled (different location) must not block.
	blocked := n.Add(&Automaton{
		Name:      "deaf",
		Locations: []Location{{Name: "D0"}, {Name: "D1"}},
		Edges:     []Edge{{From: 1, To: 0, Chan: ch, Send: false}},
	})
	_ = blocked
	s := n.Initial()
	trs := n.Successors(&s, nil)
	var cast *Transition
	for i := range trs {
		if trs[i].Label == "hb!" {
			cast = &trs[i]
		}
	}
	if cast == nil {
		t.Fatalf("no broadcast in %v", labels(trs))
	}
	want := []uint8{1, 1, 1, 1, 0}
	for i, w := range want {
		if cast.Target.Locs[i] != w {
			t.Fatalf("locs = %v, want %v", cast.Target.Locs, want)
		}
	}
}

func TestBroadcastWithNoReceiversStillFires(t *testing.T) {
	n := NewNetwork()
	ch := n.Chan("hb", true)
	n.Add(&Automaton{
		Name:      "caster",
		Locations: []Location{{Name: "C0"}, {Name: "C1"}},
		Edges:     []Edge{{From: 0, To: 1, Chan: ch, Send: true, Label: "hb!"}},
	})
	s := n.Initial()
	trs := n.Successors(&s, nil)
	found := false
	for _, tr := range trs {
		if tr.Label == "hb!" {
			found = true
		}
	}
	if !found {
		t.Fatalf("broadcast without receivers blocked: %v", labels(trs))
	}
}

func TestCommittedPriorityAndNoDelay(t *testing.T) {
	n := NewNetwork()
	n.Add(&Automaton{
		Name: "c",
		Locations: []Location{
			{Name: "Go", Kind: Committed},
			{Name: "Done"},
		},
		Edges: []Edge{{From: 0, To: 1, Label: "commit-step"}},
	})
	n.Add(&Automaton{
		Name:      "other",
		Locations: []Location{{Name: "O0"}, {Name: "O1"}},
		Edges:     []Edge{{From: 0, To: 1, Label: "other-step"}},
	})
	s := n.Initial()
	trs := n.Successors(&s, nil)
	if len(trs) != 1 || trs[0].Label != "commit-step" {
		t.Fatalf("committed state: successors = %v, want only commit-step", labels(trs))
	}
}

func TestUrgentBlocksDelayOnly(t *testing.T) {
	n := NewNetwork()
	n.Add(&Automaton{
		Name: "u",
		Locations: []Location{
			{Name: "Hurry", Kind: Urgent},
			{Name: "Done"},
		},
		Edges: []Edge{{From: 0, To: 1, Label: "hurry-step"}},
	})
	n.Add(&Automaton{
		Name:      "other",
		Locations: []Location{{Name: "O0"}, {Name: "O1"}},
		Edges:     []Edge{{From: 0, To: 1, Label: "other-step"}},
	})
	s := n.Initial()
	trs := n.Successors(&s, nil)
	if len(trs) != 2 {
		t.Fatalf("urgent state: successors = %v, want both steps, no tick", labels(trs))
	}
	for _, tr := range trs {
		if tr.Delay {
			t.Fatal("delay allowed in urgent location")
		}
	}
}

// priorityNet models the §6.1 race: a channel whose delivery window is
// [0, bound] (invariant-forced at the bound) alongside a process with a
// timeout due at the same bound.
func priorityNet(priority bool, bound int32) *Network {
	n := NewNetwork()
	n.SetReceivePriority(priority)
	c := n.Clock("x", bound+1)
	n.Add(&Automaton{
		Name: "chan",
		Locations: []Location{
			{Name: "Fly", Invariant: func(s *State) bool { return s.Clocks[c] <= bound }},
			{Name: "Done"},
		},
		Edges: []Edge{{From: 0, To: 1, Label: "deliver", Class: ClassDeliver}},
	})
	n.Add(&Automaton{
		Name: "proc",
		Locations: []Location{
			{Name: "Wait", Invariant: func(s *State) bool { return s.Clocks[c] <= bound }},
			{Name: "Dead"},
		},
		Edges: []Edge{{
			From: 0, To: 1, Label: "timeout", Class: ClassTimeout,
			Guard: func(s *State) bool { return s.Clocks[c] == bound },
		}},
	})
	return n
}

func advanceTo(t *testing.T, n *Network, s State, ticks int) State {
	t.Helper()
	for i := 0; i < ticks; i++ {
		trs := n.Successors(&s, nil)
		var tick *Transition
		for j := range trs {
			if trs[j].Delay {
				tick = &trs[j]
			}
		}
		if tick == nil {
			t.Fatalf("no tick at step %d: %v", i, labels(trs))
		}
		s = tick.Target
	}
	return s
}

func TestReceivePrioritySuppressesTimeoutAtDueDelivery(t *testing.T) {
	n := priorityNet(true, 3)
	s := advanceTo(t, n, n.Initial(), 3)
	// At the bound both deliver and timeout are enabled and the delivery
	// is due: the timeout must be suppressed.
	trs := n.Successors(&s, nil)
	seen := map[string]bool{}
	for _, tr := range trs {
		seen[tr.Label] = true
	}
	if seen["timeout"] {
		t.Fatalf("timeout survived a due delivery: %v", labels(trs))
	}
	if !seen["deliver"] {
		t.Fatalf("delivery missing: %v", labels(trs))
	}
}

func TestReceivePriorityAllowsTimeoutWhileDeliveryCanWait(t *testing.T) {
	// Delivery window is longer than the timeout instant: at the timeout
	// the delivery is enabled but NOT due, so both orders remain.
	n := NewNetwork()
	n.SetReceivePriority(true)
	c := n.Clock("x", 10)
	n.Add(&Automaton{
		Name: "chan",
		Locations: []Location{
			{Name: "Fly", Invariant: func(s *State) bool { return s.Clocks[c] <= 8 }},
			{Name: "Done"},
		},
		Edges: []Edge{{From: 0, To: 1, Label: "deliver", Class: ClassDeliver}},
	})
	n.Add(&Automaton{
		Name: "proc",
		Locations: []Location{
			{Name: "Wait", Invariant: func(s *State) bool { return s.Clocks[c] <= 3 }},
			{Name: "Dead"},
		},
		Edges: []Edge{{
			From: 0, To: 1, Label: "timeout", Class: ClassTimeout,
			Guard: func(s *State) bool { return s.Clocks[c] == 3 },
		}},
	})
	s := advanceTo(t, n, n.Initial(), 3)
	trs := n.Successors(&s, nil)
	seen := map[string]bool{}
	for _, tr := range trs {
		seen[tr.Label] = true
	}
	if !seen["timeout"] || !seen["deliver"] {
		t.Fatalf("want both orders while delivery can wait: %v", labels(trs))
	}
}

func TestReceivePriorityOffKeepsBothOrders(t *testing.T) {
	n := priorityNet(false, 3)
	s := advanceTo(t, n, n.Initial(), 3)
	trs := n.Successors(&s, nil)
	seen := map[string]bool{}
	for _, tr := range trs {
		seen[tr.Label] = true
	}
	if !seen["timeout"] || !seen["deliver"] {
		t.Fatalf("without priority, want both: %v", labels(trs))
	}
}

func TestReceivePriorityKeepsTimeoutWhenNoDelivery(t *testing.T) {
	n := NewNetwork()
	n.SetReceivePriority(true)
	n.Add(&Automaton{
		Name:      "p",
		Locations: []Location{{Name: "L"}, {Name: "T"}},
		Edges:     []Edge{{From: 0, To: 1, Label: "timeout", Class: ClassTimeout}},
	})
	s := n.Initial()
	trs := n.Successors(&s, nil)
	found := false
	for _, tr := range trs {
		if tr.Label == "timeout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("timeout wrongly suppressed: %v", labels(trs))
	}
}

func TestStateKeyInjective(t *testing.T) {
	f := func(l1, l2 uint8, c1, c2, v1 int16) bool {
		a := State{Locs: []uint8{l1}, Clocks: []int32{int32(c1)}, Vars: []int32{int32(v1)}}
		b := State{Locs: []uint8{l2}, Clocks: []int32{int32(c2)}, Vars: []int32{int32(v1)}}
		same := l1 == l2 && c1 == c2
		return (a.Key() == b.Key()) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	f := func(l uint8, c1, c2, v int16) bool {
		s := State{Locs: []uint8{l, l + 1}, Clocks: []int32{int32(c1), int32(c2)}, Vars: []int32{int32(v)}}
		buf := s.AppendKey(make([]byte, 0, s.KeyLen()))
		return string(buf) == s.Key() && len(buf) == s.KeyLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeyRoundTrip(t *testing.T) {
	f := func(l1, l2 uint8, c1, c2 int16, v1, v2, v3 int16) bool {
		s := State{
			Locs:   []uint8{l1, l2},
			Clocks: []int32{int32(c1), int32(c2)},
			Vars:   []int32{int32(v1), int32(v2), int32(v3)},
		}
		var d State
		d.DecodeKey(s.AppendKey(nil), len(s.Locs), len(s.Clocks))
		return d.Key() == s.Key() &&
			d.Locs[0] == l1 && d.Locs[1] == l2 &&
			d.Clocks[0] == int32(c1) && d.Clocks[1] == int32(c2) &&
			d.Vars[0] == int32(v1) && d.Vars[1] == int32(v2) && d.Vars[2] == int32(v3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeyReusesSlices(t *testing.T) {
	s := State{Locs: []uint8{1}, Clocks: []int32{2}, Vars: []int32{3}}
	d := s.Clone()
	locs, clocks, vars := &d.Locs[0], &d.Clocks[0], &d.Vars[0]
	d.DecodeKey(s.AppendKey(nil), 1, 1)
	if &d.Locs[0] != locs || &d.Clocks[0] != clocks || &d.Vars[0] != vars {
		t.Fatal("DecodeKey reallocated equally-sized slices")
	}
}

// TestSuccessorsBufferReuse pins the Successors buffer contract: entries
// up to len stay valid within a call, recycling with buf[:0] reuses the
// dead targets' slices, and exploration over a recycled buffer allocates
// nothing in steady state.
func TestSuccessorsBufferReuse(t *testing.T) {
	n, _ := tinyTimer(3)
	s := n.Initial()
	buf := n.Successors(&s, nil)
	if len(buf) == 0 {
		t.Fatal("no successors")
	}
	next := buf[0].Target.Clone() // contract: copy before recycling
	buf = n.Successors(&next, buf[:0])
	if len(buf) == 0 {
		t.Fatal("no successors after reuse")
	}
	// Warmed up, generating successors from a stable state allocates
	// nothing.
	allocs := testing.AllocsPerRun(100, func() {
		buf = n.Successors(&s, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Successors allocs/run = %v, want 0", allocs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := State{Locs: []uint8{1}, Clocks: []int32{2}, Vars: []int32{3}}
	c := s.Clone()
	c.Locs[0] = 9
	c.Clocks[0] = 9
	c.Vars[0] = 9
	if s.Locs[0] != 1 || s.Clocks[0] != 2 || s.Vars[0] != 3 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestNetworkAccessors(t *testing.T) {
	n := NewNetwork()
	c := n.Clock("x", 5)
	v := n.Var("flag", 1)
	a := n.Add(&Automaton{Name: "a", Locations: []Location{{Name: "Init"}, {Name: "End"}}})
	if n.ClockName(c) != "x" || n.VarName(v) != "flag" {
		t.Fatal("name accessors")
	}
	if n.NumClocks() != 1 || n.NumVars() != 1 {
		t.Fatal("count accessors")
	}
	if n.LocationName(0, 0) != "Init" {
		t.Fatal("LocationName")
	}
	if n.LocationIndex(a, "End") != 1 || n.LocationIndex(a, "Nope") != -1 {
		t.Fatal("LocationIndex")
	}
	s := n.Initial()
	if s.Vars[v] != 1 {
		t.Fatal("initial var value not applied")
	}
}

func TestClockCapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cap accepted")
		}
	}()
	n := NewNetwork()
	n.Clock("bad", 0)
}
