package ta

import (
	"fmt"
	"sort"
)

// This file is the structural model analyzer behind `hbcheck -analyze` and
// `hbvet`'s Layer 2: a pre-flight pass over a built Network that catches
// model-construction bugs before any BFS runs. Guards, invariants, and
// updates are opaque Go closures, so the analyzer cannot inspect them
// symbolically; instead it evaluates them concretely over a deterministic
// probe grid — a handful of base configurations (initial, all-zero,
// all-at-cap) refined by single- and pairwise-coordinate scans over each
// location index, each clock's landmark values ({0, 1, cap/2, cap-1,
// cap}), and each variable's candidate constants (initials, clock caps,
// small integers). The grid is deterministic, so the analyzer's verdict
// is reproducible run to run.
//
// Satisfiability-style checks (unsat-guard, unsat-invariant, nondet-pair,
// useless-reset) are therefore heuristic in one direction only: a guard
// reported unsatisfiable was false on every probe, which for the guard
// shapes this repository builds (conjunctions of interval bounds over at
// most two coordinates) is a proof. A guard needing three or more
// specific non-landmark coordinates simultaneously could in principle be
// a false positive; none of the six protocol variants comes close. The
// structural checks (edge ranges, unreachable locations, dead channels)
// are exact.
//
// Checks:
//
//   - structure: edge endpoints or channel ids out of range, initial
//     location out of range, more locations than the uint8 state vector
//     can index, handshake sends with no possible partner (and the
//     symmetric dead receives), channels declared but never used.
//   - unreachable: locations no edge path from Init can reach (guards
//     ignored, so a flagged location is unreachable under any valuation).
//   - unsat-invariant: a location invariant false on every probe: the
//     location can never be occupied.
//   - unsat-guard: an edge guard false on every probe satisfying the
//     source location's invariant — the edge can never fire.
//   - nondet-pair: two same-label, same-channel edges from one location
//     whose guards agree on every probe: either a duplicate edge (same
//     effect) or unintended nondeterminism (different effect).
//   - useless-reset: an update writes a clock that no guard, invariant,
//     or other update ever reads.
//   - clock-cap: a guard or invariant distinguishes clock values at or
//     above the clock's cap, breaking the capping soundness condition
//     documented on Network.Clock.
type Problem struct {
	// Check names the analysis that fired (see the list above).
	Check string
	// Automaton is the owning automaton's name ("" for network-level
	// problems such as unused channels).
	Automaton string
	// Where pinpoints the location, edge, or declaration.
	Where string
	// Message explains the problem.
	Message string
}

// String formats the problem as automaton/where: message [check].
func (p Problem) String() string {
	prefix := p.Where
	if p.Automaton != "" {
		prefix = p.Automaton + ": " + prefix
	}
	return fmt.Sprintf("%s: %s [%s]", prefix, p.Message, p.Check)
}

// Analyze runs every structural check over the network and returns the
// problems sorted by automaton, then position. A healthy model returns
// nil; the checker's -analyze pre-flight refuses to explore a model with
// any problem.
func (n *Network) Analyze() []Problem {
	n.compile()
	a := &analysis{n: n, pc: newProbeCtx(n)}
	a.checkStructure()
	a.checkReachability()
	a.checkGuards()
	a.checkNondetPairs()
	a.checkClockUse()
	a.checkClockCaps()
	sort.SliceStable(a.problems, func(i, j int) bool {
		if a.problems[i].Automaton != a.problems[j].Automaton {
			return a.problems[i].Automaton < a.problems[j].Automaton
		}
		return a.problems[i].Where < a.problems[j].Where
	})
	return a.problems
}

type analysis struct {
	n        *Network
	pc       *probeCtx
	problems []Problem
}

func (a *analysis) reportf(check string, aut int, where, format string, args ...any) {
	name := ""
	if aut >= 0 {
		name = a.n.automata[aut].Name
	}
	a.problems = append(a.problems, Problem{
		Check:     check,
		Automaton: name,
		Where:     where,
		Message:   fmt.Sprintf(format, args...),
	})
}

// edgeDesc renders edge ei of automaton ai as "from -> to (label)".
func (a *analysis) edgeDesc(ai, ei int) string {
	aut := a.n.automata[ai]
	e := aut.Edges[ei]
	name := func(loc int) string {
		if loc >= 0 && loc < len(aut.Locations) {
			return aut.Locations[loc].Name
		}
		return fmt.Sprintf("#%d", loc)
	}
	label := e.Label
	if label == "" {
		label = "tau"
	}
	return fmt.Sprintf("edge %s -> %s (%s)", name(e.From), name(e.To), label)
}

// ---------------------------------------------------------------------------
// structure

func (a *analysis) checkStructure() {
	n := a.n
	chanUsed := make([]bool, len(n.channels))
	chanUsed[0] = true // pseudo-channel for internal edges
	for ai, aut := range n.automata {
		if len(aut.Locations) == 0 {
			a.reportf("structure", ai, "automaton", "has no locations")
			continue
		}
		if len(aut.Locations) > 256 {
			a.reportf("structure", ai, "automaton",
				"%d locations overflow the uint8 location vector (max 256)", len(aut.Locations))
		}
		if aut.Init < 0 || aut.Init >= len(aut.Locations) {
			a.reportf("structure", ai, "automaton",
				"initial location %d out of range [0, %d)", aut.Init, len(aut.Locations))
		}
		for ei, e := range aut.Edges {
			if e.From < 0 || e.From >= len(aut.Locations) || e.To < 0 || e.To >= len(aut.Locations) {
				a.reportf("structure", ai, a.edgeDesc(ai, ei),
					"endpoint out of range [0, %d)", len(aut.Locations))
				continue
			}
			if e.Chan < 0 || int(e.Chan) >= len(n.channels) {
				a.reportf("structure", ai, a.edgeDesc(ai, ei),
					"channel id %d out of range [0, %d)", e.Chan, len(n.channels))
				continue
			}
			if e.Chan != 0 {
				chanUsed[e.Chan] = true
			}
		}
	}
	for ci := 1; ci < len(n.channels); ci++ {
		ch := ChanID(ci)
		if !chanUsed[ci] {
			a.reportf("structure", -1, fmt.Sprintf("channel %q", n.channels[ci].Name),
				"declared but never used on any edge")
			continue
		}
		sends, recvs := n.sendEdges[ch], n.recvEdges[ch]
		if n.channels[ci].Broadcast {
			// A broadcast send fires even with zero receivers, but a
			// receive with no sender can never fire.
			if len(recvs) > 0 && len(sends) == 0 {
				for _, r := range recvs {
					a.reportf("structure", r.aut, a.edgeDesc(r.aut, r.edge),
						"receives on broadcast channel %q, which has no sender", n.channels[ci].Name)
				}
			}
			continue
		}
		// Handshakes need a partner in a different automaton.
		for _, s := range sends {
			if !hasPartner(recvs, s.aut) {
				a.reportf("structure", s.aut, a.edgeDesc(s.aut, s.edge),
					"sends on channel %q, which has no receiver outside this automaton", n.channels[ci].Name)
			}
		}
		for _, r := range recvs {
			if !hasPartner(sends, r.aut) {
				a.reportf("structure", r.aut, a.edgeDesc(r.aut, r.edge),
					"receives on channel %q, which has no sender outside this automaton", n.channels[ci].Name)
			}
		}
	}
}

// hasPartner reports whether refs contains an edge of an automaton other
// than self (a handshake cannot pair two edges of one automaton).
func hasPartner(refs []edgeRef, self int) bool {
	for _, r := range refs {
		if r.aut != self {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// unreachable

// checkReachability flags locations that no edge path from Init can
// reach, with guards ignored — an over-approximation of reachability, so
// every flagged location is genuinely dead.
func (a *analysis) checkReachability() {
	for ai, aut := range a.n.automata {
		if aut.Init < 0 || aut.Init >= len(aut.Locations) {
			continue // already a structure problem
		}
		seen := make([]bool, len(aut.Locations))
		stack := []int{aut.Init}
		seen[aut.Init] = true
		for len(stack) > 0 {
			loc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range aut.Edges {
				if e.From == loc && e.To >= 0 && e.To < len(aut.Locations) && !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		for li, ok := range seen {
			if !ok {
				a.reportf("unreachable", ai, fmt.Sprintf("location %s", aut.Locations[li].Name),
					"no edge path from initial location %s reaches it", aut.Locations[aut.Init].Name)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// guard and invariant satisfiability

func (a *analysis) checkGuards() {
	for ai, aut := range a.n.automata {
		invSat := make([]bool, len(aut.Locations))
		for li, loc := range aut.Locations {
			inv := loc.Invariant
			invSat[li] = inv == nil || a.pc.satisfiable(ai, li, inv)
			if !invSat[li] {
				a.reportf("unsat-invariant", ai, fmt.Sprintf("location %s", loc.Name),
					"invariant is false on every probe state; the location can never be occupied")
			}
		}
		for ei, e := range aut.Edges {
			if e.Guard == nil || e.From < 0 || e.From >= len(aut.Locations) {
				continue
			}
			if !invSat[e.From] {
				continue // cascading; the invariant problem covers it
			}
			inv := aut.Locations[e.From].Invariant
			guard := e.Guard
			pred := func(s *State) bool {
				return (inv == nil || inv(s)) && guard(s)
			}
			if !a.pc.satisfiable(ai, e.From, pred) {
				a.reportf("unsat-guard", ai, a.edgeDesc(ai, ei),
					"guard is false on every probe state satisfying %s's invariant; the edge can never fire",
					aut.Locations[e.From].Name)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// nondeterministic same-label pairs

// checkNondetPairs looks for pairs of edges out of one location with the
// same label and synchronisation whose guards agree on every probe: a
// duplicate edge if the effects agree too, unintended nondeterminism if
// they differ.
func (a *analysis) checkNondetPairs() {
	for ai, aut := range a.n.automata {
		for i, e1 := range aut.Edges {
			for j := i + 1; j < len(aut.Edges); j++ {
				e2 := aut.Edges[j]
				if e1.From != e2.From || e1.Label != e2.Label ||
					e1.Chan != e2.Chan || e1.Send != e2.Send || e1.Class != e2.Class {
					continue
				}
				if e1.From < 0 || e1.From >= len(aut.Locations) {
					continue
				}
				if a.pc.distinguishable(ai, e1.From, guardOrTrue(e1.Guard), guardOrTrue(e2.Guard)) {
					continue
				}
				sameTarget := e1.To == e2.To &&
					!a.pc.updatesDiffer(ai, e1.From, e1.Update, e2.Update)
				if sameTarget {
					a.reportf("nondet-pair", ai, a.edgeDesc(ai, i),
						"duplicate of %s: same guard, target, and effect on every probe", a.edgeDesc(ai, j))
				} else {
					a.reportf("nondet-pair", ai, a.edgeDesc(ai, i),
						"guards agree with %s on every probe but the effects differ: unintended nondeterminism?",
						a.edgeDesc(ai, j))
				}
			}
		}
	}
}

func guardOrTrue(g Guard) Guard {
	if g == nil {
		return func(*State) bool { return true }
	}
	return g
}

// ---------------------------------------------------------------------------
// useless clock resets

// checkClockUse flags updates that write a clock no guard, invariant, or
// update ever reads: the reset only inflates the state space.
func (a *analysis) checkClockUse() {
	n := a.n
	if len(n.clockCaps) == 0 {
		return
	}
	read := make([]bool, len(n.clockCaps))
	for ci := range n.clockCaps {
		read[ci] = a.pc.clockRead(ci)
	}
	for ai, aut := range n.automata {
		for ei, e := range aut.Edges {
			if e.Update == nil || e.From < 0 || e.From >= len(aut.Locations) {
				continue
			}
			for _, ci := range a.pc.writtenClocks(ai, e.From, e.Update) {
				if !read[ci] {
					a.reportf("useless-reset", ai, a.edgeDesc(ai, ei),
						"writes clock %q, which no guard, invariant, or update reads", n.clockNames[ci])
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// clock cap soundness

// checkClockCaps verifies the soundness condition documented on
// Network.Clock: capping is exact only while no guard or invariant
// distinguishes clock values at or above the cap. Each guard is probed at
// cap versus cap+1 and cap+2 (in contexts where the source invariant
// admits both values); a difference means the capped exploration diverges
// from the true unbounded semantics.
func (a *analysis) checkClockCaps() {
	for ci := range a.n.clockCaps {
		for ai, aut := range a.n.automata {
			for li, loc := range aut.Locations {
				if loc.Invariant == nil {
					continue
				}
				if a.pc.capDistinguished(ai, li, ci, nil, loc.Invariant) {
					a.reportf("clock-cap", ai, fmt.Sprintf("location %s", loc.Name),
						"invariant distinguishes %q values at or above its cap %d; raise the cap",
						a.n.clockNames[ci], a.n.clockCaps[ci])
				}
			}
			for ei, e := range aut.Edges {
				if e.Guard == nil || e.From < 0 || e.From >= len(aut.Locations) {
					continue
				}
				if a.pc.capDistinguished(ai, e.From, ci, aut.Locations[e.From].Invariant, e.Guard) {
					a.reportf("clock-cap", ai, a.edgeDesc(ai, ei),
						"guard distinguishes %q values at or above its cap %d; raise the cap",
						a.n.clockNames[ci], a.n.clockCaps[ci])
				}
			}
		}
	}
}
