package ta

import (
	"strings"
	"testing"
)

// twoLoc builds a minimal healthy network: Idle --(x>=1, reset x)--> Busy
// --(tau)--> Idle with an invariant keeping x at most 3. Every mutant test
// below starts from a broken variation of this shape.
func twoLoc() *Network {
	n := NewNetwork()
	x := n.Clock("x", 4)
	a := &Automaton{Name: "A"}
	a.Locations = []Location{
		{Name: "Idle", Invariant: func(s *State) bool { return s.Clocks[x] <= 3 }},
		{Name: "Busy"},
	}
	a.Edges = []Edge{
		{From: 0, To: 1, Label: "go",
			Guard:  func(s *State) bool { return s.Clocks[x] >= 1 },
			Update: func(s *State) { s.Clocks[x] = 0 }},
		{From: 1, To: 0, Label: "done",
			Guard: func(s *State) bool { return s.Clocks[x] >= 2 }},
	}
	n.Add(a)
	return n
}

func problemsWith(t *testing.T, n *Network, check string) []Problem {
	t.Helper()
	var out []Problem
	for _, p := range n.Analyze() {
		if p.Check == check {
			out = append(out, p)
		}
	}
	return out
}

func TestAnalyzeCleanModel(t *testing.T) {
	if got := twoLoc().Analyze(); len(got) != 0 {
		t.Fatalf("clean model reported problems: %v", got)
	}
}

func TestAnalyzeDeadLocation(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Locations = append(a.Locations, Location{Name: "Orphan"})
	ps := problemsWith(t, n, "unreachable")
	if len(ps) != 1 || !strings.Contains(ps[0].Where, "Orphan") {
		t.Fatalf("want one unreachable problem naming Orphan, got %v", ps)
	}
}

func TestAnalyzeContradictoryGuard(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Edges = append(a.Edges, Edge{From: 1, To: 0, Label: "never",
		Guard: func(s *State) bool { return s.Clocks[0] < 2 && s.Clocks[0] > 5 }})
	ps := problemsWith(t, n, "unsat-guard")
	if len(ps) != 1 || !strings.Contains(ps[0].Where, "never") {
		t.Fatalf("want one unsat-guard problem on edge 'never', got %v", ps)
	}
}

// TestAnalyzeSwappedBounds models the classic tmin/tmax swap: the source
// invariant caps the clock at the (smaller) value intended as tmax while
// the guard waits for the (larger) value intended as tmin, so the edge
// can never fire.
func TestAnalyzeSwappedBounds(t *testing.T) {
	tmin, tmax := int32(5), int32(2) // swapped by the mutant
	n := NewNetwork()
	x := n.Clock("x", 8)
	a := &Automaton{Name: "A"}
	a.Locations = []Location{
		{Name: "Wait", Invariant: func(s *State) bool { return s.Clocks[x] <= tmax }},
		{Name: "Fired"},
	}
	a.Edges = []Edge{
		{From: 0, To: 1, Label: "timeout",
			Guard: func(s *State) bool { return s.Clocks[x] >= tmin }},
	}
	n.Add(a)
	ps := problemsWith(t, n, "unsat-guard")
	if len(ps) != 1 || !strings.Contains(ps[0].Where, "timeout") {
		t.Fatalf("want one unsat-guard problem on the timeout edge, got %v", ps)
	}
}

func TestAnalyzeUnsatInvariant(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Locations[1].Invariant = func(s *State) bool { return false }
	if ps := problemsWith(t, n, "unsat-invariant"); len(ps) != 1 {
		t.Fatalf("want one unsat-invariant problem, got %v", ps)
	}
}

func TestAnalyzeDuplicateEdge(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Edges = append(a.Edges, Edge{From: 1, To: 0, Label: "done",
		Guard: func(s *State) bool { return s.Clocks[0] >= 2 }})
	ps := problemsWith(t, n, "nondet-pair")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, "duplicate") {
		t.Fatalf("want one duplicate-edge problem, got %v", ps)
	}
}

func TestAnalyzeNondetPair(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Locations = append(a.Locations, Location{Name: "Other"})
	// Same label and guard as "done" but a different target.
	a.Edges = append(a.Edges,
		Edge{From: 1, To: 2, Label: "done",
			Guard: func(s *State) bool { return s.Clocks[0] >= 2 }},
		Edge{From: 2, To: 0, Label: "back"})
	ps := problemsWith(t, n, "nondet-pair")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, "nondeterminism") {
		t.Fatalf("want one nondeterminism problem, got %v", ps)
	}
}

func TestAnalyzeUselessReset(t *testing.T) {
	n := twoLoc()
	y := n.Clock("y", 4) // declared, reset below, never read
	a := n.Automata()[0]
	a.Edges[1].Update = func(s *State) { s.Clocks[y] = 0 }
	ps := problemsWith(t, n, "useless-reset")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, `"y"`) {
		t.Fatalf("want one useless-reset problem for clock y, got %v", ps)
	}
}

func TestAnalyzeClockCapTooSmall(t *testing.T) {
	n := NewNetwork()
	x := n.Clock("x", 3)
	a := &Automaton{Name: "A"}
	a.Locations = []Location{{Name: "L"}, {Name: "M"}}
	// x == 3 at cap 3: the capped clock parks at 3 and stays enabled
	// forever, while the true unbounded run passes 3 and disables it.
	a.Edges = []Edge{{From: 0, To: 1, Label: "exact",
		Guard: func(s *State) bool { return s.Clocks[x] == 3 }}}
	n.Add(a)
	ps := problemsWith(t, n, "clock-cap")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, `"x"`) {
		t.Fatalf("want one clock-cap problem for x, got %v", ps)
	}
}

func TestAnalyzeDeadChannel(t *testing.T) {
	n := twoLoc()
	n.Chan("orphan", false)
	ps := problemsWith(t, n, "structure")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, "never used") {
		t.Fatalf("want one unused-channel problem, got %v", ps)
	}
}

func TestAnalyzeHandshakeWithoutPartner(t *testing.T) {
	n := twoLoc()
	ch := n.Chan("lonely", false)
	a := n.Automata()[0]
	a.Edges = append(a.Edges, Edge{From: 0, To: 1, Chan: ch, Send: true, Label: "offer"})
	ps := problemsWith(t, n, "structure")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, "no receiver") {
		t.Fatalf("want one missing-receiver problem, got %v", ps)
	}
}

func TestAnalyzeEdgeOutOfRange(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Edges = append(a.Edges, Edge{From: 0, To: 7, Label: "off the map"})
	ps := problemsWith(t, n, "structure")
	if len(ps) != 1 || !strings.Contains(ps[0].Message, "out of range") {
		t.Fatalf("want one out-of-range problem, got %v", ps)
	}
	// The broken edge must not poison reachability: Busy stays reachable
	// through the healthy edge, so no unreachable problems.
	if ps := problemsWith(t, n, "unreachable"); len(ps) != 0 {
		t.Fatalf("unexpected unreachable problems: %v", ps)
	}
}

// TestAnalyzePanickyGuard checks that a closure panicking on synthetic
// probe states makes checks inconclusive rather than crashing or
// reporting false problems.
func TestAnalyzePanickyGuard(t *testing.T) {
	n := twoLoc()
	a := n.Automata()[0]
	a.Edges = append(a.Edges, Edge{From: 0, To: 1, Label: "touchy",
		Guard: func(s *State) bool {
			if s.Clocks[0] > 2 {
				panic("synthetic state")
			}
			return s.Clocks[0] == 1
		}})
	for _, p := range n.Analyze() {
		if p.Check != "nondet-pair" { // touchy vs go may be indistinguishable; fine
			t.Errorf("unexpected problem: %s", p)
		}
	}
}
