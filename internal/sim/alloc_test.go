package sim

import "testing"

// TestScheduleStepAllocFree pins the kernel hot path at zero allocations
// in steady state: once the node arena and heap have grown to the working
// set, Schedule/Step/Cancel cycles must not allocate at all.
func TestScheduleStepAllocFree(t *testing.T) {
	s := New()
	fn := func() {}
	// Warm the arena and heap to the working-set size.
	for i := 0; i < 64; i++ {
		if _, err := s.Schedule(Time(i%7), fn); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		var tms [8]Timer
		for i := range tms {
			tm, err := s.Schedule(Time(i%3), fn)
			if err != nil {
				t.Fatal(err)
			}
			tms[i] = tm
		}
		tms[5].Cancel()
		tms[1].Cancel()
		for s.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule/Step/Cancel allocates %v per cycle, want 0", allocs)
	}
}

// TestStaleHandleAfterReuse pins the generation guard: once a node is
// recycled into a new timer, handles to the old incarnation must stay
// inert — Cancel must not kill the new occupant.
func TestStaleHandleAfterReuse(t *testing.T) {
	s := New()
	old, err := s.Schedule(1, func() {})
	if err != nil {
		t.Fatal(err)
	}
	s.Run() // old fires; its node returns to the free list

	fired := false
	fresh, err := s.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if fresh.idx != old.idx {
		t.Fatalf("free list did not recycle the node (old %d, fresh %d)", old.idx, fresh.idx)
	}
	if old.Active() {
		t.Fatal("stale handle reports Active")
	}
	if old.Cancel() {
		t.Fatal("stale handle cancelled the recycled node's event")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled timer did not fire")
	}
}

// TestCancelInsideEvent pins eager removal under re-entrancy: an event
// cancelling a later timer must prevent it, and Pending must be exact.
func TestCancelInsideEvent(t *testing.T) {
	s := New()
	fired := false
	victim, err := s.Schedule(10, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(5, func() {
		if !victim.Cancel() {
			t.Error("Cancel inside event returned false")
		}
		if s.Pending() != 0 {
			t.Errorf("Pending = %d after eager cancel, want 0", s.Pending())
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}
