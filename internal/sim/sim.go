// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives virtual time: events are scheduled at integer ticks and
// executed in nondecreasing time order. Events scheduled for the same tick
// run in FIFO order (scheduling order), which makes runs reproducible and
// lets protocol code express the "simultaneous events" races that the
// accelerated heartbeat analysis exercises.
//
// A Simulator is not safe for concurrent use; it is single-threaded by
// design so that every run with the same seed and the same scheduling
// sequence produces the same trace.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, measured in ticks. The tick has no fixed
// physical meaning; protocol code interprets it (the heartbeat protocols use
// the same unit as tmin and tmax).
type Time int64

// ErrPastTime is returned when an event is scheduled before the current
// virtual time.
var ErrPastTime = errors.New("sim: schedule time is in the past")

// Event is a callback executed when its scheduled time is reached.
type Event func()

// Timer is a handle to a scheduled event. Its zero value is not useful;
// timers are created by Simulator.Schedule and Simulator.ScheduleAt.
type Timer struct {
	at        Time
	seq       uint64
	fn        Event
	index     int // heap index; -1 when not queued
	cancelled bool
}

// At reports the virtual time the timer fires at.
func (t *Timer) At() Time { return t.at }

// Cancelled reports whether Cancel was called before the timer fired.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Cancel prevents the timer's event from running. Cancelling an already
// fired or already cancelled timer is a no-op. It reports whether the
// cancellation prevented a pending event.
func (t *Timer) Cancel() bool {
	if t.cancelled || t.index < 0 {
		return false
	}
	t.cancelled = true
	return true
}

// Simulator owns a virtual clock and an event queue.
type Simulator struct {
	now       Time
	queue     eventQueue
	seq       uint64
	rng       *rand.Rand
	executed  uint64
	scheduled uint64
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithSeed seeds the simulator's random source. Two simulators with the
// same seed and the same scheduling sequence behave identically.
func WithSeed(seed int64) Option {
	return func(s *Simulator) { s.rng = rand.New(rand.NewSource(seed)) }
}

// New returns a Simulator with virtual time 0.
func New(opts ...Option) *Simulator {
	s := &Simulator{rng: rand.New(rand.NewSource(1))}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsExecuted returns the number of events run so far.
func (s *Simulator) EventsExecuted() uint64 { return s.executed }

// EventsScheduled returns the number of events scheduled so far.
func (s *Simulator) EventsScheduled() uint64 { return s.scheduled }

// Pending returns the number of events waiting in the queue, including
// cancelled timers that have not been drained yet.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule runs fn after d ticks. A negative d is an error; d == 0 runs fn
// at the current tick, after all events already queued for this tick.
func (s *Simulator) Schedule(d Time, fn Event) (*Timer, error) {
	if d < 0 {
		return nil, fmt.Errorf("%w: delay %d", ErrPastTime, d)
	}
	return s.scheduleAt(s.now+d, fn), nil
}

// ScheduleAt runs fn at absolute virtual time t.
func (s *Simulator) ScheduleAt(t Time, fn Event) (*Timer, error) {
	if t < s.now {
		return nil, fmt.Errorf("%w: at %d, now %d", ErrPastTime, t, s.now)
	}
	return s.scheduleAt(t, fn), nil
}

func (s *Simulator) scheduleAt(t Time, fn Event) *Timer {
	s.seq++
	s.scheduled++
	tm := &Timer{at: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, tm)
	return tm
}

// Step executes the next pending event, advancing virtual time to its
// scheduled tick. It reports whether an event was executed; false means the
// queue is empty.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		tm := heap.Pop(&s.queue).(*Timer)
		if tm.cancelled {
			continue
		}
		s.now = tm.at
		s.executed++
		tm.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty and returns the final
// virtual time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events scheduled at or before deadline, then advances
// the clock to deadline (even if the queue drained earlier or later events
// remain pending).
func (s *Simulator) RunUntil(deadline Time) Time {
	for {
		tm := s.peek()
		if tm == nil || tm.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor is RunUntil(Now()+d).
func (s *Simulator) RunFor(d Time) Time { return s.RunUntil(s.now + d) }

// peek returns the earliest non-cancelled pending timer, draining cancelled
// entries from the head of the queue.
func (s *Simulator) peek() *Timer {
	for s.queue.Len() > 0 {
		tm := s.queue[0]
		if !tm.cancelled {
			return tm
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence number). The sequence
// tiebreak preserves FIFO order among same-tick events.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	tm := x.(*Timer)
	tm.index = len(*q)
	*q = append(*q, tm)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*q = old[:n-1]
	return tm
}
