// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives virtual time: events are scheduled at integer ticks and
// executed in nondecreasing time order. Events scheduled for the same tick
// run in FIFO order (scheduling order), which makes runs reproducible and
// lets protocol code express the "simultaneous events" races that the
// accelerated heartbeat analysis exercises.
//
// The hot path is allocation-free: timers live in a pooled node arena
// recycled through a free list, handles are plain values guarded by
// generation counters, and the event queue is an indexed 4-ary heap of
// node indices — no per-event allocation, no interface boxing, and exact
// (eager) removal on Cancel.
//
// A Simulator is not safe for concurrent use; it is single-threaded by
// design so that every run with the same seed and the same scheduling
// sequence produces the same trace.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, measured in ticks. The tick has no fixed
// physical meaning; protocol code interprets it (the heartbeat protocols use
// the same unit as tmin and tmax).
type Time int64

// ErrPastTime is returned when an event is scheduled before the current
// virtual time.
var ErrPastTime = errors.New("sim: schedule time is in the past")

// Event is a callback executed when its scheduled time is reached.
type Event func()

// timerNode is a pooled event record. Nodes are recycled through the
// simulator's free list; gen distinguishes the current incarnation from
// stale Timer handles.
type timerNode struct {
	at      Time
	seq     uint64
	fn      Event
	heapIdx int32 // position in the heap; -1 when not queued (heap backend)
	gen     uint32
	wt      WheelTimer // wheel handle (wheel backend)
}

// Timer is a value handle to a scheduled event. Its zero value is inert;
// timers are created by Simulator.Schedule and Simulator.ScheduleAt. A
// handle survives its event: once the event fires or is cancelled the
// underlying node is recycled and the handle's generation goes stale, so
// Cancel and Active on an old handle are safe no-ops.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Active reports whether the timer is still pending — scheduled, and
// neither fired nor cancelled.
func (t Timer) Active() bool {
	return t.s != nil && t.s.nodes[t.idx].gen == t.gen
}

// At reports the virtual time a pending timer fires at; 0 once the timer
// has fired or been cancelled.
func (t Timer) At() Time {
	if !t.Active() {
		return 0
	}
	return t.s.nodes[t.idx].at
}

//hbvet:noalloc
// Cancel prevents the timer's event from running, removing it from the
// event queue immediately. Cancelling an already fired or already
// cancelled timer is a no-op. It reports whether the cancellation
// prevented a pending event.
func (t Timer) Cancel() bool {
	s := t.s
	if s == nil {
		return false
	}
	nd := &s.nodes[t.idx]
	if nd.gen != t.gen {
		return false
	}
	if s.wheel != nil {
		if !s.wheel.Cancel(nd.wt) {
			return false
		}
		s.release(t.idx)
		return true
	}
	if nd.heapIdx < 0 {
		return false
	}
	s.heapRemove(int(nd.heapIdx))
	s.release(t.idx)
	return true
}

// Simulator owns a virtual clock and an event queue.
type Simulator struct {
	now       Time
	nodes     []timerNode
	free      []int32
	heap      []int32
	seq       uint64
	rng       *rand.Rand
	executed  uint64
	scheduled uint64
	// wheel, when non-nil, replaces the 4-ary heap as the event queue;
	// firing order is identical (see WithTimerWheel).
	wheel *TimerWheel
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithSeed seeds the simulator's random source. Two simulators with the
// same seed and the same scheduling sequence behave identically.
func WithSeed(seed int64) Option {
	return func(s *Simulator) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithTimerWheel replaces the 4-ary heap event queue with the
// hierarchical timer wheel: O(1) Schedule/Cancel instead of O(log n),
// built for fleet-scale working sets of hundreds of thousands of pending
// timers. Execution order is bit-for-bit identical to the heap —
// (time, schedule order), pinned by the property tests in wheel_test.go —
// so any run may switch backends without changing its trace.
func WithTimerWheel() Option {
	return func(s *Simulator) { s.wheel = NewTimerWheel() }
}

// New returns a Simulator with virtual time 0.
func New(opts ...Option) *Simulator {
	s := &Simulator{rng: rand.New(rand.NewSource(1))}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsExecuted returns the number of events run so far.
func (s *Simulator) EventsExecuted() uint64 { return s.executed }

// EventsScheduled returns the number of events scheduled so far.
func (s *Simulator) EventsScheduled() uint64 { return s.scheduled }

// Pending returns the exact number of events waiting in the queue
// (cancelled timers are removed eagerly, so none linger).
func (s *Simulator) Pending() int {
	if s.wheel != nil {
		return s.wheel.Len()
	}
	return len(s.heap)
}

//hbvet:noalloc
// Schedule runs fn after d ticks. A negative d is an error; d == 0 runs fn
// at the current tick, after all events already queued for this tick.
func (s *Simulator) Schedule(d Time, fn Event) (Timer, error) {
	if d < 0 {
		//lint:allow hot-path-alloc cold error path; the steady-state pin in alloc_test.go never schedules negative delays
		return Timer{}, fmt.Errorf("%w: delay %d", ErrPastTime, d)
	}
	return s.scheduleAt(s.now+d, fn), nil
}

//hbvet:noalloc
// ScheduleAt runs fn at absolute virtual time t.
func (s *Simulator) ScheduleAt(t Time, fn Event) (Timer, error) {
	if t < s.now {
		//lint:allow hot-path-alloc cold error path; scheduling in the past is a caller bug, not a hot-path event
		return Timer{}, fmt.Errorf("%w: at %d, now %d", ErrPastTime, t, s.now)
	}
	return s.scheduleAt(t, fn), nil
}

//hbvet:noalloc
func (s *Simulator) scheduleAt(t Time, fn Event) Timer {
	s.seq++
	s.scheduled++
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.nodes = append(s.nodes, timerNode{})
		idx = int32(len(s.nodes) - 1)
	}
	nd := &s.nodes[idx]
	nd.at, nd.seq, nd.fn = t, s.seq, fn
	if s.wheel != nil {
		nd.wt = s.wheel.Schedule(t, uint32(idx))
	} else {
		s.heapPush(idx)
	}
	return Timer{s: s, idx: idx, gen: nd.gen}
}

//hbvet:noalloc
// release recycles a node: the generation bump invalidates every
// outstanding handle, and dropping fn releases the closure.
func (s *Simulator) release(idx int32) {
	nd := &s.nodes[idx]
	nd.gen++
	nd.fn = nil
	s.free = append(s.free, idx)
}

//hbvet:noalloc
// Step executes the next pending event, advancing virtual time to its
// scheduled tick. It reports whether an event was executed; false means the
// queue is empty.
func (s *Simulator) Step() bool {
	var idx int32
	if s.wheel != nil {
		payload, _, ok := s.wheel.Pop()
		if !ok {
			return false
		}
		idx = int32(payload)
	} else {
		if len(s.heap) == 0 {
			return false
		}
		idx = s.heapRemove(0)
	}
	nd := &s.nodes[idx]
	s.now = nd.at
	s.executed++
	fn := nd.fn
	// Recycle before running: fn may re-enter Schedule, and the stale
	// generation keeps the event's own Timer handle inert either way.
	s.release(idx)
	//lint:allow noalloc-closure the event callback is the scheduled work itself; each callee is proven at its own //hbvet:noalloc annotation
	fn()
	return true
}

// Run executes events until the queue is empty and returns the final
// virtual time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events scheduled at or before deadline, then advances
// the clock to deadline (even if the queue drained earlier or later events
// remain pending).
func (s *Simulator) RunUntil(deadline Time) Time {
	if s.wheel != nil {
		for {
			at, ok := s.wheel.NextAt()
			if !ok || at > deadline {
				break
			}
			s.Step()
		}
	} else {
		for len(s.heap) > 0 && s.nodes[s.heap[0]].at <= deadline {
			s.Step()
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor is RunUntil(Now()+d).
func (s *Simulator) RunFor(d Time) Time { return s.RunUntil(s.now + d) }

// The event queue is an implicit 4-ary min-heap of node indices ordered
// by (time, sequence number); the sequence tiebreak preserves FIFO order
// among same-tick events. A 4-ary layout halves the tree depth of a
// binary heap, and sifting compares pooled nodes directly — no interface
// calls, no boxing.

const heapArity = 4

//hbvet:noalloc
func (s *Simulator) heapLess(a, b int32) bool {
	na, nb := &s.nodes[a], &s.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

//hbvet:noalloc
func (s *Simulator) heapSwap(i, j int) {
	h := s.heap
	h[i], h[j] = h[j], h[i]
	s.nodes[h[i]].heapIdx = int32(i)
	s.nodes[h[j]].heapIdx = int32(j)
}

//hbvet:noalloc
func (s *Simulator) heapPush(idx int32) {
	s.heap = append(s.heap, idx)
	s.nodes[idx].heapIdx = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
}

//hbvet:noalloc
func (s *Simulator) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / heapArity
		if !s.heapLess(s.heap[i], s.heap[p]) {
			return
		}
		s.heapSwap(i, p)
		i = p
	}
}

//hbvet:noalloc
func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		best := first
		for c := first + 1; c < min(first+heapArity, n); c++ {
			if s.heapLess(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !s.heapLess(s.heap[best], s.heap[i]) {
			return
		}
		s.heapSwap(i, best)
		i = best
	}
}

//hbvet:noalloc
// heapRemove removes and returns the node index at heap position i,
// restoring the heap invariant.
func (s *Simulator) heapRemove(i int) int32 {
	last := len(s.heap) - 1
	if i != last {
		s.heapSwap(i, last)
	}
	idx := s.heap[last]
	s.nodes[idx].heapIdx = -1
	s.heap = s.heap[:last]
	if i != last {
		s.siftDown(i)
		s.siftUp(i)
	}
	return idx
}
