package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestWheelFireOrderMatchesReference pops a randomized schedule out of the
// wheel and checks the exact (time, sequence) order against a sorted
// reference, across delays that exercise every wheel level and the
// cascade paths between them.
func TestWheelFireOrderMatchesReference(t *testing.T) {
	type entry struct {
		at      Time
		seq     int
		payload uint32
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := NewTimerWheel()
		var want []entry
		base := Time(0)
		for i := 0; i < 5000; i++ {
			var d Time
			switch rng.Intn(10) {
			case 0:
				d = 0
			case 1, 2, 3:
				d = Time(rng.Int63n(wheelSlots)) // level 0
			case 4, 5, 6:
				d = Time(rng.Int63n(wheelSlots * wheelSlots)) // level 1
			case 7, 8:
				d = Time(rng.Int63n(1 << (wheelSlotBits * 3))) // level 2
			default:
				d = Time(rng.Int63n(1 << (wheelSlotBits * 4))) // level 3
			}
			at := base + d
			w.Schedule(at, uint32(i))
			want = append(want, entry{at: at, seq: i, payload: uint32(i)})
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		for i, e := range want {
			payload, at, ok := w.Pop()
			if !ok {
				t.Fatalf("seed %d: wheel drained after %d pops, want %d", seed, i, len(want))
			}
			if payload != e.payload || at != e.at {
				t.Fatalf("seed %d: pop %d = (payload %d, at %d), want (%d, %d)",
					seed, i, payload, at, e.payload, e.at)
			}
		}
		if _, _, ok := w.Pop(); ok {
			t.Fatalf("seed %d: wheel not empty after draining", seed)
		}
		if w.Len() != 0 {
			t.Fatalf("seed %d: Len() = %d after drain", seed, w.Len())
		}
	}
}

// TestWheelRandomOpsMatchHeapSimulator drives two simulators — one on the
// 4-ary heap, one on the wheel — through an identical randomized program
// of schedules, cancels, re-arms, and partial runs, and requires
// bit-identical traces. This is the satellite property test: the wheel
// must be a drop-in replacement for the heap.
func TestWheelRandomOpsMatchHeapSimulator(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		traceHeap := runRandomProgram(t, seed, false)
		traceWheel := runRandomProgram(t, seed, true)
		if len(traceHeap) != len(traceWheel) {
			t.Fatalf("seed %d: trace lengths differ: heap %d, wheel %d",
				seed, len(traceHeap), len(traceWheel))
		}
		for i := range traceHeap {
			if traceHeap[i] != traceWheel[i] {
				t.Fatalf("seed %d: trace[%d] differs: heap %+v, wheel %+v",
					seed, i, traceHeap[i], traceWheel[i])
			}
		}
	}
}

type fireRecord struct {
	at Time
	id int
}

// runRandomProgram executes a deterministic mixed workload (periodic
// re-arming timers, random one-shots, cancels, RunUntil windows) against
// either backend and returns the fire trace.
func runRandomProgram(t *testing.T, seed int64, wheel bool) []fireRecord {
	t.Helper()
	opts := []Option{WithSeed(seed)}
	if wheel {
		opts = append(opts, WithTimerWheel())
	}
	s := New(opts...)
	rng := rand.New(rand.NewSource(seed * 977))
	var trace []fireRecord
	nextID := 0
	var live []Timer

	var arm func(id int, d Time)
	arm = func(id int, d Time) {
		tm, err := s.Schedule(d, func() {
			trace = append(trace, fireRecord{at: s.Now(), id: id})
			// A third of timers re-arm themselves (watchdog pattern),
			// deterministically from the id so both backends agree.
			if id%3 == 0 {
				arm(id, Time(1+id%97))
			}
		})
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		live = append(live, tm)
	}

	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			var d Time
			switch rng.Intn(8) {
			case 0:
				d = 0
			case 1, 2, 3:
				d = Time(rng.Int63n(300))
			case 4, 5:
				d = Time(rng.Int63n(70_000))
			default:
				d = Time(rng.Int63n(3_000_000))
			}
			arm(nextID, d)
			nextID++
		}
		// Cancel a few random handles; stale handles are no-ops on both
		// backends, so picking from the full history is fine.
		for i := 0; i < rng.Intn(5); i++ {
			if len(live) == 0 {
				break
			}
			live[rng.Intn(len(live))].Cancel()
		}
		// Advance a random window; occasionally single-step instead.
		if rng.Intn(4) == 0 {
			s.Step()
		} else {
			s.RunUntil(s.Now() + Time(rng.Int63n(4_000)))
		}
		if rng.Intn(8) == 0 {
			// Stop re-arm chains from keeping the run infinite: drop every
			// pending timer.
			for _, tm := range live {
				tm.Cancel()
			}
			live = live[:0]
		}
	}
	for _, tm := range live {
		tm.Cancel()
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("seed %d wheel=%v: %d timers still pending after cancel sweep", seed, wheel, got)
	}
	return trace
}

// TestWheelCancelSemantics pins the cancel edge cases: zero-value
// handles, double cancel, cancel of a collected-but-unpopped (due) entry,
// and handle reuse across generations.
func TestWheelCancelSemantics(t *testing.T) {
	w := NewTimerWheel()
	if w.Cancel(WheelTimer{}) {
		t.Fatal("zero-value handle cancelled something")
	}
	a := w.Schedule(10, 1)
	b := w.Schedule(10, 2)
	c := w.Schedule(10, 3)
	if !w.Cancel(b) {
		t.Fatal("first cancel failed")
	}
	if w.Cancel(b) {
		t.Fatal("double cancel reported success")
	}
	// Peek collects the tick-10 slot into the due buffer; cancelling a
	// due entry must still work and must not break the pop sequence.
	if at, ok := w.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = (%d, %v), want (10, true)", at, ok)
	}
	if !w.Cancel(c) {
		t.Fatal("cancel of due entry failed")
	}
	if w.Active(c) {
		t.Fatal("cancelled due entry still active")
	}
	payload, at, ok := w.Pop()
	if !ok || payload != 1 || at != 10 {
		t.Fatalf("Pop = (%d, %d, %v), want (1, 10, true)", payload, at, ok)
	}
	if w.Cancel(a) {
		t.Fatal("cancel of fired entry reported success")
	}
	if _, _, ok := w.Pop(); ok {
		t.Fatal("wheel should be empty")
	}
	if w.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", w.Len())
	}
	// The freed nodes are reused; stale handles must stay inert.
	d := w.Schedule(20, 4)
	if w.Cancel(a) || w.Cancel(b) || w.Cancel(c) {
		t.Fatal("stale handle cancelled a reused node")
	}
	if !w.Active(d) {
		t.Fatal("fresh handle not active")
	}
}

// TestWheelScheduleBelowHorizon pins the peek-ahead contract: NextAt may
// advance the wheel's horizon past the caller's clock, and a subsequent
// Schedule below the horizon still fires in exact (time, seq) order.
func TestWheelScheduleBelowHorizon(t *testing.T) {
	w := NewTimerWheel()
	w.Schedule(100, 1)
	if at, ok := w.NextAt(); !ok || at != 100 {
		t.Fatalf("NextAt = (%d, %v), want (100, true)", at, ok)
	}
	if w.Now() != 100 {
		t.Fatalf("horizon = %d, want 100 after peek", w.Now())
	}
	// Caller's clock is still < 100; it schedules for t=50 and t=100.
	w.Schedule(50, 2)
	w.Schedule(100, 3)
	wantOrder := []struct {
		payload uint32
		at      Time
	}{{2, 50}, {1, 100}, {3, 100}}
	for i, want := range wantOrder {
		payload, at, ok := w.Pop()
		if !ok || payload != want.payload || at != want.at {
			t.Fatalf("pop %d = (%d, %d, %v), want (%d, %d, true)",
				i, payload, at, ok, want.payload, want.at)
		}
	}
}

// TestWheelHorizonPanic pins the overflow policy: scheduling beyond the
// 2^48-tick horizon panics rather than silently misfiling.
func TestWheelHorizonPanic(t *testing.T) {
	w := NewTimerWheel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected horizon panic")
		}
	}()
	w.Schedule(1<<(wheelSlotBits*wheelLevels), 0)
}

// TestWheelSteadyStateAllocFree pins the wheel's own 0-alloc steady
// state: once the arena and due buffer are warm, schedule/cancel/pop
// cycles allocate nothing.
func TestWheelSteadyStateAllocFree(t *testing.T) {
	w := NewTimerWheel()
	var at Time
	cycle := func() {
		at += 3
		a := w.Schedule(at+7, 1)
		b := w.Schedule(at+13, 2)
		w.Schedule(at+257, 3) // level-1 insert + later cascade
		w.Cancel(b)
		_ = a
		for {
			nx, ok := w.NextAt()
			if !ok || nx > at {
				break
			}
			w.Pop()
		}
	}
	for i := 0; i < 1000; i++ {
		cycle() // warm the arena, free list, and due buffer
	}
	if avg := testing.AllocsPerRun(2000, cycle); avg != 0 {
		t.Fatalf("steady-state wheel cycle allocates %.2f/op, want 0", avg)
	}
}

// TestSimulatorWheelAllocFree mirrors sim/alloc_test.go for the wheel
// backend: the Simulator's schedule/step hot path stays 0-alloc.
func TestSimulatorWheelAllocFree(t *testing.T) {
	s := New(WithTimerWheel())
	fns := make([]Event, 64)
	for i := range fns {
		fns[i] = func() {}
	}
	i := 0
	cycle := func() {
		fn := fns[i%len(fns)]
		i++
		tm, err := s.Schedule(Time(i%11), fn)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if i%5 == 0 {
			tm.Cancel()
		}
		s.RunUntil(s.Now() + 2)
	}
	for j := 0; j < 500; j++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(2000, cycle); avg != 0 {
		t.Fatalf("steady-state wheel-backed simulator allocates %.2f/op, want 0", avg)
	}
}
