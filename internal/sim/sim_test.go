package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var got []int
	mustSchedule(t, s, 30, func() { got = append(got, 3) })
	mustSchedule(t, s, 10, func() { got = append(got, 1) })
	mustSchedule(t, s, 20, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTickFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		mustSchedule(t, s, 5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick events ran out of FIFO order at %d: %v", i, got[:i+1])
		}
	}
}

func TestZeroDelayRunsAtCurrentTick(t *testing.T) {
	s := New()
	var at Time = -1
	mustSchedule(t, s, 7, func() {
		if _, err := s.Schedule(0, func() { at = s.Now() }); err != nil {
			t.Errorf("Schedule(0): %v", err)
		}
	})
	s.Run()
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestNegativeDelayRejected(t *testing.T) {
	s := New()
	if _, err := s.Schedule(-1, func() {}); err == nil {
		t.Fatal("Schedule(-1) succeeded, want error")
	}
	mustSchedule(t, s, 10, func() {})
	s.Run()
	if _, err := s.ScheduleAt(5, func() {}); err == nil {
		t.Fatal("ScheduleAt in the past succeeded, want error")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tm := mustSchedule(t, s, 10, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Active() {
		t.Fatal("Active() = true after Cancel")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	tm := mustSchedule(t, s, 1, func() {})
	s.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	var fired []Time
	mustSchedule(t, s, 10, func() { fired = append(fired, s.Now()) })
	mustSchedule(t, s, 50, func() { fired = append(fired, s.Now()) })
	if got := s.RunUntil(25); got != 25 {
		t.Fatalf("RunUntil(25) = %d", got)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if got := s.RunFor(25); got != 50 {
		t.Fatalf("RunFor(25) = %d, want 50", got)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want two events", fired)
	}
}

func TestRunUntilWithEventAtDeadline(t *testing.T) {
	s := New()
	fired := false
	mustSchedule(t, s, 10, func() { fired = true })
	s.RunUntil(10)
	if !fired {
		t.Fatal("event at the deadline did not run")
	}
}

func TestCounters(t *testing.T) {
	s := New()
	tm := mustSchedule(t, s, 1, func() {})
	mustSchedule(t, s, 2, func() {})
	tm.Cancel()
	s.Run()
	if s.EventsScheduled() != 2 {
		t.Fatalf("scheduled = %d, want 2", s.EventsScheduled())
	}
	if s.EventsExecuted() != 1 {
		t.Fatalf("executed = %d, want 1", s.EventsExecuted())
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(WithSeed(seed))
		var out []int64
		for i := 0; i < 64; i++ {
			out = append(out, s.Rand().Int63n(1000))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestPropertyMonotonicTime checks that for any random batch of schedules,
// events execute in nondecreasing time order and the clock never goes back.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []Time
		for _, d := range delays {
			d := Time(d % 1000)
			if _, err := s.Schedule(d, func() { times = append(times, s.Now()) }); err != nil {
				return false
			}
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNestedScheduling checks that events scheduled from inside
// events still respect time order, with random fan-out.
func TestPropertyNestedScheduling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var times []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			times = append(times, s.Now())
			if depth >= 3 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				d := Time(rng.Intn(50))
				if _, err := s.Schedule(d, func() { spawn(depth + 1) }); err != nil {
					t.Errorf("nested schedule: %v", err)
				}
			}
		}
		for i := 0; i < 5; i++ {
			d := Time(rng.Intn(100))
			if _, err := s.Schedule(d, func() { spawn(0) }); err != nil {
				return false
			}
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelSubset checks that cancelling a random subset fires
// exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(mask uint32) bool {
		s := New()
		fired := make(map[int]bool)
		var timers []Timer
		for i := 0; i < 32; i++ {
			i := i
			tm, err := s.Schedule(Time(i%7), func() { fired[i] = true })
			if err != nil {
				return false
			}
			timers = append(timers, tm)
		}
		for i, tm := range timers {
			if mask&(1<<uint(i)) != 0 {
				tm.Cancel()
			}
		}
		s.Run()
		for i := 0; i < 32; i++ {
			want := mask&(1<<uint(i)) == 0
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustSchedule(t *testing.T, s *Simulator, d Time, fn Event) Timer {
	t.Helper()
	tm, err := s.Schedule(d, fn)
	if err != nil {
		t.Fatalf("Schedule(%d): %v", d, err)
	}
	return tm
}
