package sim

// Hierarchical timer wheel: the fleet-scale alternative to the 4-ary
// indexed heap.
//
// The heap is exact and cache-friendly at cluster scale (hundreds of
// pending timers), but a fleet shard carries hundreds of thousands of
// pending watchdogs, and O(log n) sift costs on every (re)arm add up. The
// wheel makes Schedule and Cancel O(1): six levels of 256 slots each cover
// a 2^48-tick horizon, a timer lands in the finest level that can resolve
// its delay, and coarser entries cascade down one level at a time as the
// clock crosses slot boundaries.
//
// Firing order is the heap's exact order — (time, sequence) with FIFO
// tiebreak among same-tick timers. Slot lists are unordered (cascading
// can interleave old and new entries), so when the wheel advances onto a
// non-empty level-0 slot it collects the slot into a due buffer and sorts
// it by sequence number; a level-0 slot only ever holds entries of a
// single absolute tick (two times mapping to the same slot are >= 256
// ticks apart, and the farther one cannot reach level 0 before the nearer
// one fires), so the sort fully restores the global order. The
// wheel-vs-heap property tests in wheel_test.go pin this equivalence, and
// the 0-alloc steady state is pinned next to the heap's in alloc_test.go.
//
// Like the rest of the kernel, a TimerWheel is single-threaded by design.

import (
	"math/bits"
	"slices"
)

const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits
	wheelSlotMask = wheelSlots - 1
	wheelLevels   = 6
)

// wheelNode states, stored in the level field alongside real levels >= 0.
const (
	wheelFree = -1 // on the free list
	wheelDue  = -2 // collected into the due buffer, not yet popped
	wheelDead = -3 // cancelled while due; released when its turn is popped
)

// wheelNode is a pooled timer record. Slot membership is an intrusive
// doubly-linked list over node indices, so Cancel unlinks in O(1).
type wheelNode struct {
	at      Time
	seq     uint64
	payload uint32
	gen     uint32
	next    int32
	prev    int32
	level   int16
	slot    int16
}

// WheelTimer is a value handle to a scheduled wheel entry. The zero value
// is inert (generations start at 1).
type WheelTimer struct {
	idx int32
	gen uint32
}

// TimerWheel is a hierarchical timing wheel ordering (payload, time)
// entries exactly like the kernel heap: by time, then by schedule order.
type TimerWheel struct {
	now   Time // horizon: every entry still in a slot fires at or after now
	seq   uint64
	count int
	nodes []wheelNode
	free  []int32
	heads [wheelLevels][wheelSlots]int32
	// occ mirrors heads: bit s of occ[l] is set iff heads[l][s] != -1.
	// refill uses it to jump straight to the next occupied slot instead
	// of walking empty windows one by one.
	occ [wheelLevels]slotBitmap
	// due holds the collected entries of the current horizon tick in seq
	// order; dueCursor is the read position. Entries scheduled below an
	// already-advanced horizon (only possible between a peek and its pops)
	// are merge-inserted here.
	due       []int32
	dueCursor int
	seqLess   func(a, b int32) int
}

// NewTimerWheel returns an empty wheel at time 0.
func NewTimerWheel() *TimerWheel {
	w := &TimerWheel{}
	for l := range w.heads {
		for s := range w.heads[l] {
			w.heads[l][s] = -1
		}
	}
	// Built once so the hot-path sort closes over no per-call state.
	w.seqLess = func(a, b int32) int {
		sa, sb := w.nodes[a].seq, w.nodes[b].seq
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		default:
			return 0
		}
	}
	return w
}

// Len returns the number of pending (scheduled, neither fired nor
// cancelled) entries.
func (w *TimerWheel) Len() int { return w.count }

// Now returns the wheel's horizon: the tick of the entries most recently
// collected for firing. It trails the caller's logical clock between
// events and can run ahead of it after a NextAt peek.
func (w *TimerWheel) Now() Time { return w.now }

// Active reports whether the handle's entry is still pending.
func (w *TimerWheel) Active(t WheelTimer) bool {
	if t.idx < 0 || int(t.idx) >= len(w.nodes) {
		return false
	}
	nd := &w.nodes[t.idx]
	return nd.gen == t.gen && nd.level != wheelDead
}

//hbvet:noalloc
// Schedule adds an entry firing at absolute time at. Entries at the same
// tick fire in schedule order. Scheduling more than 2^48 ticks ahead of
// the horizon panics (no workload in this repository approaches it).
func (w *TimerWheel) Schedule(at Time, payload uint32) WheelTimer {
	w.seq++
	var idx int32
	if n := len(w.free); n > 0 {
		idx = w.free[n-1]
		w.free = w.free[:n-1]
	} else {
		w.nodes = append(w.nodes, wheelNode{gen: 1})
		idx = int32(len(w.nodes) - 1)
		if cap(w.free) < len(w.nodes) {
			// Reserve free-list room for every node up front, so release
			// stays allocation-free even when the live-timer population
			// later shrinks far below its high-water mark.
			//lint:allow hot-path-alloc amortised arena growth, not steady state
			grown := make([]int32, len(w.free), cap(w.nodes))
			copy(grown, w.free)
			w.free = grown
		}
	}
	nd := &w.nodes[idx]
	nd.at, nd.seq, nd.payload = at, w.seq, payload
	w.count++
	if at < w.now {
		// The horizon ran ahead of the caller's clock (peek); the entry
		// belongs inside the pending due buffer, ordered by (at, seq).
		w.insertDue(idx)
		return WheelTimer{idx: idx, gen: nd.gen}
	}
	w.insertNode(idx)
	return WheelTimer{idx: idx, gen: nd.gen}
}

//hbvet:noalloc
// Cancel removes a pending entry. It reports whether the cancellation
// prevented a pending fire; stale handles are safe no-ops.
func (w *TimerWheel) Cancel(t WheelTimer) bool {
	if t.idx < 0 || int(t.idx) >= len(w.nodes) {
		return false
	}
	nd := &w.nodes[t.idx]
	if nd.gen != t.gen {
		return false
	}
	switch {
	case nd.level >= 0:
		w.unlink(t.idx)
		w.release(t.idx)
	case nd.level == wheelDue:
		// Still referenced by the due buffer: mark dead, release when the
		// pop loop reaches it (the node must not be reused before then).
		nd.level = wheelDead
	default:
		return false
	}
	w.count--
	return true
}

//hbvet:noalloc
// Pop removes and returns the next entry in (time, schedule order). The
// horizon advances to the entry's tick.
func (w *TimerWheel) Pop() (payload uint32, at Time, ok bool) {
	for {
		if w.dueCursor == len(w.due) {
			if !w.refill() {
				return 0, 0, false
			}
		}
		idx := w.due[w.dueCursor]
		w.dueCursor++
		nd := &w.nodes[idx]
		if nd.level == wheelDead {
			w.release(idx)
			continue
		}
		payload, at = nd.payload, nd.at
		w.release(idx)
		w.count--
		return payload, at, true
	}
}

//hbvet:noalloc
// NextAt reports the tick of the next pending entry without consuming it.
// Peeking may advance the horizon past the caller's clock; entries
// scheduled in between land in the due buffer in order (see Schedule).
func (w *TimerWheel) NextAt() (Time, bool) {
	for {
		for w.dueCursor < len(w.due) {
			idx := w.due[w.dueCursor]
			if w.nodes[idx].level == wheelDead {
				w.release(idx)
				w.dueCursor++
				continue
			}
			return w.nodes[idx].at, true
		}
		if !w.refill() {
			return 0, false
		}
	}
}

//hbvet:noalloc
// refill advances the horizon to the next non-empty tick and collects its
// entries into the due buffer in seq order. It reports false when the
// wheel is empty. The occupancy bitmaps let it jump straight to the next
// occupied slot — an empty stretch costs a handful of bitmap scans, not a
// walk over every intervening window.
func (w *TimerWheel) refill() bool {
	w.due = w.due[:0]
	w.dueCursor = 0
	if w.count == 0 {
		return false
	}
	for {
		if i := w.occ[0].next(int(w.now) & wheelSlotMask); i >= 0 {
			w.now = (w.now &^ Time(wheelSlotMask)) + Time(i)
			w.collect(i)
			return true
		}
		// Level-0 window exhausted. The next entry sits in some occupied
		// slot at a coarser level (or in level 0's next cycle); every
		// occupied slot's start time is a candidate, and no entry can fire
		// before the earliest candidate, so the horizon jumps to that
		// candidate's window and the covering slots cascade down.
		best := Time(1) << (wheelSlotBits * wheelLevels) // beyond the horizon
		for l := 0; l < wheelLevels; l++ {
			shift := uint(wheelSlotBits * l)
			cur := int(w.now>>shift) & wheelSlotMask
			// Same cycle of level l: strictly-later slot index.
			if j := w.occ[l].next(cur + 1); j >= 0 {
				cand := w.now&^(Time(1)<<(shift+wheelSlotBits)-1) | Time(j)<<shift
				if cand < best {
					best = cand
				}
				continue
			}
			// Wrapped: first occupied slot belongs to level l's next cycle.
			if j := w.occ[l].next(0); j >= 0 {
				cand := (w.now>>(shift+wheelSlotBits)+1)<<(shift+wheelSlotBits) | Time(j)<<shift
				if cand < best {
					best = cand
				}
			}
		}
		w.now = best &^ Time(wheelSlotMask)
		w.cascade()
	}
}

//hbvet:noalloc
// collect drains level-0 slot i (all entries share one absolute tick)
// into the due buffer and restores seq order.
func (w *TimerWheel) collect(i int) {
	head := w.heads[0][i]
	w.heads[0][i] = -1
	w.occ[0].clear(i)
	for head != -1 {
		nd := &w.nodes[head]
		w.due = append(w.due, head)
		head = nd.next
		nd.level = wheelDue
	}
	slices.SortFunc(w.due, w.seqLess)
}

//hbvet:noalloc
// cascade redistributes, for every coarser level, the slot covering the
// new horizon — coarsest first, so level k+1 feeds level k before level k
// feeds level 0. Draining the covering slot unconditionally is safe even
// when its digit didn't change: any future-cycle entries reinsert into
// the same slot (delay still resolves to level k), and refill's
// earliest-candidate jump guarantees every entry in a covering slot fires
// at or after the new horizon.
func (w *TimerWheel) cascade() {
	for l := wheelLevels - 1; l >= 1; l-- {
		idx := int(w.now>>(wheelSlotBits*l)) & wheelSlotMask
		head := w.heads[l][idx]
		if head == -1 {
			continue
		}
		w.heads[l][idx] = -1
		w.occ[l].clear(idx)
		for head != -1 {
			next := w.nodes[head].next
			w.insertNode(head)
			head = next
		}
	}
}

//hbvet:noalloc
// insertNode files a node into the finest level that resolves its delay
// from the horizon. Lists are prepended (order within a slot is
// irrelevant; collect re-sorts by seq).
func (w *TimerWheel) insertNode(idx int32) {
	nd := &w.nodes[idx]
	d := nd.at - w.now
	level := 0
	for d >= 1<<(wheelSlotBits*(level+1)) {
		level++
		if level == wheelLevels {
			panic("sim: timer wheel horizon exceeded")
		}
	}
	slot := int16(nd.at>>(wheelSlotBits*level)) & wheelSlotMask
	nd.level, nd.slot = int16(level), slot
	nd.prev = -1
	nd.next = w.heads[level][slot]
	if nd.next != -1 {
		w.nodes[nd.next].prev = idx
	}
	w.heads[level][slot] = idx
	w.occ[level].set(int(slot))
}

//hbvet:noalloc
// insertDue merge-inserts a node into the unread tail of the due buffer,
// keeping it ordered by (at, seq).
func (w *TimerWheel) insertDue(idx int32) {
	nd := &w.nodes[idx]
	nd.level = wheelDue
	pos := w.dueCursor
	for pos < len(w.due) {
		o := &w.nodes[w.due[pos]]
		if nd.at < o.at || (nd.at == o.at && nd.seq < o.seq) {
			break
		}
		pos++
	}
	w.due = append(w.due, 0)
	copy(w.due[pos+1:], w.due[pos:])
	w.due[pos] = idx
}

//hbvet:noalloc
func (w *TimerWheel) unlink(idx int32) {
	nd := &w.nodes[idx]
	if nd.prev != -1 {
		w.nodes[nd.prev].next = nd.next
	} else {
		w.heads[nd.level][nd.slot] = nd.next
		if nd.next == -1 {
			w.occ[nd.level].clear(int(nd.slot))
		}
	}
	if nd.next != -1 {
		w.nodes[nd.next].prev = nd.prev
	}
}

// slotBitmap tracks which of a level's 256 slots are occupied.
type slotBitmap [wheelSlots / 64]uint64

//hbvet:noalloc
func (b *slotBitmap) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

//hbvet:noalloc
func (b *slotBitmap) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

//hbvet:noalloc
// next returns the smallest occupied slot index >= from, or -1.
func (b *slotBitmap) next(from int) int {
	if from >= wheelSlots {
		return -1
	}
	word := from >> 6
	if v := b[word] &^ (1<<(uint(from)&63) - 1); v != 0 {
		return word<<6 + bits.TrailingZeros64(v)
	}
	for word++; word < len(b); word++ {
		if v := b[word]; v != 0 {
			return word<<6 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

//hbvet:noalloc
// release recycles a node; the generation bump invalidates outstanding
// handles.
func (w *TimerWheel) release(idx int32) {
	nd := &w.nodes[idx]
	nd.gen++
	nd.level = wheelFree
	w.free = append(w.free, idx)
}
