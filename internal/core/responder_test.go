package core

import "testing"

func newResponder(t *testing.T, cfg Config) *Responder {
	t.Helper()
	r, err := NewResponder(cfg, 1)
	if err != nil {
		t.Fatalf("NewResponder: %v", err)
	}
	return r
}

func TestResponderRejectsCoordinatorID(t *testing.T) {
	if _, err := NewResponder(Config{TMin: 1, TMax: 10}, CoordinatorID); err == nil {
		t.Fatal("responder with ID 0 accepted")
	}
	if _, err := NewParticipant(Config{TMin: 1, TMax: 10}, CoordinatorID, false); err == nil {
		t.Fatal("participant with ID 0 accepted")
	}
}

func TestResponderRepliesImmediately(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 10}
	r := newResponder(t, cfg)
	start := r.Start(0)
	timers := actionsOf(start, ActSetTimer)
	if len(timers) != 1 || timers[0].ID != TimerExpiry || timers[0].Delay != cfg.ResponderBound() {
		t.Fatalf("start = %v, want expiry@%d", start, cfg.ResponderBound())
	}
	acts := r.OnBeat(Beat{From: 0, Stay: true}, 5)
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].To != CoordinatorID || beats[0].Beat.From != 1 {
		t.Fatalf("reply = %v", beats)
	}
	// The watchdog is pushed out by each beat.
	timers = actionsOf(acts, ActSetTimer)
	if len(timers) != 1 || timers[0].ID != TimerExpiry || timers[0].Delay != cfg.ResponderBound() {
		t.Fatalf("watchdog rearm = %v", timers)
	}
}

func TestResponderExpiryInactivates(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 10}
	r := newResponder(t, cfg)
	r.Start(0)
	acts := r.OnTimer(TimerExpiry, cfg.ResponderBound())
	inact := actionsOf(acts, ActInactivate)
	if len(inact) != 1 || inact[0].Voluntary {
		t.Fatalf("expiry = %v, want non-voluntary inactivation", acts)
	}
	if r.Status() != StatusInactive {
		t.Fatalf("status = %v", r.Status())
	}
	// Crashed/inactive responders receive but never reply — the papers'
	// channel assumption.
	if acts := r.OnBeat(Beat{From: 0, Stay: true}, 40); acts != nil {
		t.Fatalf("inactive responder replied: %v", acts)
	}
}

func TestResponderIgnoresNonCoordinatorBeats(t *testing.T) {
	r := newResponder(t, Config{TMin: 1, TMax: 10})
	r.Start(0)
	if acts := r.OnBeat(Beat{From: 2, Stay: true}, 1); acts != nil {
		t.Fatalf("replied to non-coordinator: %v", acts)
	}
}

func TestResponderCrash(t *testing.T) {
	r := newResponder(t, Config{TMin: 1, TMax: 10})
	r.Start(0)
	acts := r.Crash(3)
	if !hasAction(acts, ActCancelTimer) {
		t.Fatal("crash must cancel the watchdog")
	}
	if r.Status() != StatusCrashed {
		t.Fatalf("status = %v", r.Status())
	}
	if acts := r.OnTimer(TimerExpiry, 29); acts != nil {
		t.Fatal("crashed responder inactivated again")
	}
}

func TestFixedResponderUsesTighterBound(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 10, Fixed: true}
	r := newResponder(t, cfg)
	timers := actionsOf(r.Start(0), ActSetTimer)
	if timers[0].Delay != 20 {
		t.Fatalf("fixed watchdog = %d, want 2·tmax = 20", timers[0].Delay)
	}
}

func newParticipant(t *testing.T, cfg Config, dynamic bool) *Participant {
	t.Helper()
	p, err := NewParticipant(cfg, 2, dynamic)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	return p
}

func TestParticipantSolicitsUntilJoined(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 10}
	p := newParticipant(t, cfg, false)
	start := p.Start(0)
	beats := actionsOf(start, ActSendBeat)
	if len(beats) != 1 || beats[0].To != CoordinatorID || !beats[0].Beat.Stay {
		t.Fatalf("initial solicitation = %v", start)
	}
	var wantDelays = map[TimerID]Tick{
		TimerJoinResend: cfg.TMin,
		TimerExpiry:     cfg.JoinerBound(),
	}
	for _, st := range actionsOf(start, ActSetTimer) {
		if wantDelays[st.ID] != st.Delay {
			t.Fatalf("timer %v delay = %d, want %d", st.ID, st.Delay, wantDelays[st.ID])
		}
		delete(wantDelays, st.ID)
	}
	if len(wantDelays) != 0 {
		t.Fatalf("missing timers: %v", wantDelays)
	}
	// Resolicit every tmin while unjoined.
	acts := p.OnTimer(TimerJoinResend, 2)
	if !hasAction(acts, ActSendBeat) || !hasAction(acts, ActSetTimer) {
		t.Fatalf("resend = %v", acts)
	}
	if p.JoinedProtocol() {
		t.Fatal("joined before any beat from p[0]")
	}
	// p[0]'s first beat acknowledges the join.
	acts = p.OnBeat(Beat{From: 0, Stay: true}, 11)
	if !hasAction(acts, ActJoined) {
		t.Fatalf("join ack missing: %v", acts)
	}
	if !p.JoinedProtocol() {
		t.Fatal("JoinedProtocol() = false after ack")
	}
	replies := actionsOf(acts, ActSendBeat)
	if len(replies) != 1 || !replies[0].Beat.Stay {
		t.Fatalf("joined reply = %v", replies)
	}
	// Joined participants no longer resolicit.
	if acts := p.OnTimer(TimerJoinResend, 12); acts != nil {
		t.Fatalf("joined participant resolicited: %v", acts)
	}
	// Second beat must not re-announce the join.
	acts = p.OnBeat(Beat{From: 0, Stay: true}, 15)
	if hasAction(acts, ActJoined) {
		t.Fatal("duplicate Joined event")
	}
}

func TestParticipantGivesUpAtJoinerBound(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 10}
	p := newParticipant(t, cfg, false)
	p.Start(0)
	acts := p.OnTimer(TimerExpiry, cfg.JoinerBound())
	if !hasAction(acts, ActInactivate) || p.Status() != StatusInactive {
		t.Fatalf("joiner bound expiry: %v, status %v", acts, p.Status())
	}
}

func TestParticipantLeaveHandshake(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 10}
	p := newParticipant(t, cfg, true)
	p.Start(0)
	p.OnBeat(Beat{From: 0, Stay: true}, 5) // joined
	acts, err := p.Leave(8)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].Beat.Stay {
		t.Fatalf("leave beat = %v", beats)
	}
	// A true beat from p[0] (leave not yet processed) is answered with
	// another false beat.
	acts = p.OnBeat(Beat{From: 0, Stay: true}, 9)
	beats = actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].Beat.Stay {
		t.Fatalf("pre-ack reply = %v", beats)
	}
	// A leaving participant is never non-voluntarily inactivated.
	if acts := p.OnTimer(TimerExpiry, 100); acts != nil {
		t.Fatalf("leaving participant inactivated: %v", acts)
	}
	// The false ack completes the leave.
	acts = p.OnBeat(Beat{From: 0, Stay: false}, 12)
	if !hasAction(acts, ActLeft) || p.Status() != StatusLeft {
		t.Fatalf("leave completion: %v, status %v", acts, p.Status())
	}
	// Idempotent afterwards.
	if acts := p.OnBeat(Beat{From: 0, Stay: true}, 13); acts != nil {
		t.Fatalf("left participant reacted: %v", acts)
	}
	if acts, err := p.Leave(14); err != nil || acts != nil {
		t.Fatalf("Leave after left = %v, %v", acts, err)
	}
}

func TestParticipantLeaveRetriesEveryTMin(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 10}
	p := newParticipant(t, cfg, true)
	p.Start(0)
	p.OnBeat(Beat{From: 0, Stay: true}, 5)
	if _, err := p.Leave(8); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	acts := p.OnTimer(TimerJoinResend, 10)
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].Beat.Stay {
		t.Fatalf("leave retry = %v", acts)
	}
	rearm := actionsOf(acts, ActSetTimer)
	if len(rearm) != 1 || rearm[0].ID != TimerJoinResend || rearm[0].Delay != cfg.TMin {
		t.Fatalf("leave retry rearm = %v", acts)
	}
}

func TestParticipantLeaveRequiresDynamic(t *testing.T) {
	p := newParticipant(t, Config{TMin: 2, TMax: 10}, false)
	p.Start(0)
	if _, err := p.Leave(1); err == nil {
		t.Fatal("Leave on expanding participant succeeded")
	}
}

func TestParticipantCrash(t *testing.T) {
	p := newParticipant(t, Config{TMin: 2, TMax: 10}, true)
	p.Start(0)
	acts := p.Crash(1)
	if got := len(actionsOf(acts, ActCancelTimer)); got != 2 {
		t.Fatalf("crash cancelled %d timers, want 2", got)
	}
	if p.Status() != StatusCrashed {
		t.Fatalf("status = %v", p.Status())
	}
	if acts := p.OnBeat(Beat{From: 0, Stay: true}, 2); acts != nil {
		t.Fatal("crashed participant replied")
	}
}

func TestParticipantIgnoresStrayLeaveAck(t *testing.T) {
	p := newParticipant(t, Config{TMin: 2, TMax: 10}, true)
	p.Start(0)
	if acts := p.OnBeat(Beat{From: 0, Stay: false}, 1); acts != nil {
		t.Fatalf("stray false beat processed: %v", acts)
	}
	if p.Status() != StatusActive || p.JoinedProtocol() {
		t.Fatal("stray false beat changed state")
	}
}

func TestPlainProtocolRoundTrip(t *testing.T) {
	cfg := PlainConfig{Period: 5, MissLimit: 3, Members: []ProcID{1}}
	c, err := NewPlainCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewPlainCoordinator: %v", err)
	}
	c.Start(0)
	c.OnTimer(TimerRound, 5) // grace
	// Two misses tolerated, third suspects.
	for i := 0; i < 2; i++ {
		acts := c.OnTimer(TimerRound, Tick(10+5*i))
		if hasAction(acts, ActInactivate) {
			t.Fatalf("suspected after %d misses", i+1)
		}
	}
	acts := c.OnTimer(TimerRound, 20)
	if !hasAction(acts, ActInactivate) || c.Status() != StatusInactive {
		t.Fatalf("third miss: %v, status %v", acts, c.Status())
	}
}

func TestPlainBeatResetsMisses(t *testing.T) {
	cfg := PlainConfig{Period: 5, MissLimit: 2, Members: []ProcID{1}}
	c, err := NewPlainCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewPlainCoordinator: %v", err)
	}
	c.Start(0)
	c.OnTimer(TimerRound, 5)  // grace
	c.OnTimer(TimerRound, 10) // miss 1
	c.OnBeat(Beat{From: 1, Stay: true}, 12)
	c.OnTimer(TimerRound, 15) // reset
	c.OnTimer(TimerRound, 20) // miss 1 again
	if c.Status() != StatusActive {
		t.Fatal("suspected despite reset")
	}
	c.OnTimer(TimerRound, 25) // miss 2 → suspect
	if c.Status() != StatusInactive {
		t.Fatal("not suspected at miss limit")
	}
}

func TestPlainConfigValidate(t *testing.T) {
	good := PlainConfig{Period: 5, MissLimit: 1, Members: []ProcID{1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []PlainConfig{
		{Period: 0, MissLimit: 1, Members: []ProcID{1}},
		{Period: 5, MissLimit: 0, Members: []ProcID{1}},
		{Period: 5, MissLimit: 1},
		{Period: 5, MissLimit: 1, Members: []ProcID{0}},
		{Period: 5, MissLimit: 1, Members: []ProcID{1, 1}},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if got := good.DetectionBound(); got != 10 {
		t.Fatalf("DetectionBound = %d, want 10", got)
	}
}

func TestPlainResponder(t *testing.T) {
	r, err := NewPlainResponder(1, 20)
	if err != nil {
		t.Fatalf("NewPlainResponder: %v", err)
	}
	r.Start(0)
	acts := r.OnBeat(Beat{From: 0, Stay: true}, 5)
	if !hasAction(acts, ActSendBeat) {
		t.Fatalf("no reply: %v", acts)
	}
	r.OnTimer(TimerExpiry, 25)
	if r.Status() != StatusInactive {
		t.Fatalf("status = %v", r.Status())
	}
	if _, err := NewPlainResponder(0, 20); err == nil {
		t.Fatal("plain responder with ID 0 accepted")
	}
	if _, err := NewPlainResponder(1, 0); err == nil {
		t.Fatal("plain responder with zero bound accepted")
	}
}
