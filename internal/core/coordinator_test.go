package core

import (
	"testing"
)

// actionsOf extracts all actions of the given kind, in order.
func actionsOf(actions []Action, kind ActionKind) []Action {
	var out []Action
	for _, a := range actions {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

func hasAction(actions []Action, kind ActionKind) bool {
	return len(actionsOf(actions, kind)) > 0
}

func newBinaryP0(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		Config:     cfg,
		Membership: MembershipFixed,
		Members:    []ProcID{1},
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func TestCoordinatorConfigValidate(t *testing.T) {
	base := Config{TMin: 1, TMax: 10}
	tests := []struct {
		name string
		cfg  CoordinatorConfig
		ok   bool
	}{
		{"binary", CoordinatorConfig{Config: base, Membership: MembershipFixed, Members: []ProcID{1}}, true},
		{"static", CoordinatorConfig{Config: base, Membership: MembershipFixed, Members: []ProcID{1, 2, 3}}, true},
		{"expanding", CoordinatorConfig{Config: base, Membership: MembershipExpanding}, true},
		{"dynamic", CoordinatorConfig{Config: base, Membership: MembershipDynamic}, true},
		{"fixed empty", CoordinatorConfig{Config: base, Membership: MembershipFixed}, false},
		{"fixed with self", CoordinatorConfig{Config: base, Membership: MembershipFixed, Members: []ProcID{0, 1}}, false},
		{"fixed duplicate", CoordinatorConfig{Config: base, Membership: MembershipFixed, Members: []ProcID{1, 1}}, false},
		{"expanding with members", CoordinatorConfig{Config: base, Membership: MembershipExpanding, Members: []ProcID{1}}, false},
		{"unknown membership", CoordinatorConfig{Config: base, Members: []ProcID{1}}, false},
		{"bad timing", CoordinatorConfig{Config: Config{TMin: 0, TMax: 1}, Membership: MembershipFixed, Members: []ProcID{1}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCoordinator(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("NewCoordinator = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestBinaryCoordinatorFirstRound(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10})
	start := c.Start(0)
	if hasAction(start, ActSendBeat) {
		t.Fatal("original protocol must not beat before the first round expires")
	}
	timers := actionsOf(start, ActSetTimer)
	if len(timers) != 1 || timers[0].ID != TimerRound || timers[0].Delay != 10 {
		t.Fatalf("start timers = %v, want round@10", timers)
	}
	// First timeout: initial grace (rcvd=true) keeps t=tmax and beats.
	acts := c.OnTimer(TimerRound, 10)
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].To != 1 || !beats[0].Beat.Stay {
		t.Fatalf("first round beats = %v", beats)
	}
	if c.RoundLength() != 10 {
		t.Fatalf("t = %d after grace round, want 10", c.RoundLength())
	}
}

func TestRevisedCoordinatorBeatsImmediately(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10, Revised: true})
	start := c.Start(0)
	beats := actionsOf(start, ActSendBeat)
	if len(beats) != 1 || beats[0].To != 1 {
		t.Fatalf("revised start beats = %v, want one to p[1]", beats)
	}
}

func TestBinaryCoordinatorAcceleratesAndInactivates(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10})
	c.Start(0)
	now := Tick(10)
	c.OnTimer(TimerRound, now) // grace round, t=10
	// Silence from p[1]: t decays 10→5→2→1, then p[0] inactivates.
	wantT := []Tick{5, 2, 1}
	for _, w := range wantT {
		now += c.RoundLength()
		acts := c.OnTimer(TimerRound, now)
		if c.RoundLength() != w {
			t.Fatalf("t = %d, want %d", c.RoundLength(), w)
		}
		if !hasAction(acts, ActSendBeat) {
			t.Fatalf("round at t=%d did not beat", w)
		}
	}
	now += c.RoundLength()
	acts := c.OnTimer(TimerRound, now)
	sus := actionsOf(acts, ActSuspect)
	if len(sus) != 1 || sus[0].Proc != 1 {
		t.Fatalf("suspects = %v, want p[1]", sus)
	}
	inact := actionsOf(acts, ActInactivate)
	if len(inact) != 1 || inact[0].Voluntary {
		t.Fatalf("inactivate = %v, want non-voluntary", inact)
	}
	if hasAction(acts, ActSendBeat) {
		t.Fatal("inactivating round must not beat")
	}
	if c.Status() != StatusInactive {
		t.Fatalf("status = %v, want inactive", c.Status())
	}
	// Inactivated machines are inert.
	if acts := c.OnTimer(TimerRound, now+10); acts != nil {
		t.Fatalf("inactive machine reacted: %v", acts)
	}
	if acts := c.OnBeat(Beat{From: 1, Stay: true}, now+10); acts != nil {
		t.Fatalf("inactive machine accepted beat: %v", acts)
	}
}

func TestBinaryCoordinatorBeatResetsWait(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10})
	c.Start(0)
	c.OnTimer(TimerRound, 10)
	c.OnTimer(TimerRound, 20) // miss: t=5
	if c.RoundLength() != 5 {
		t.Fatalf("t = %d, want 5", c.RoundLength())
	}
	c.OnBeat(Beat{From: 1, Stay: true}, 22)
	c.OnTimer(TimerRound, 25)
	if c.RoundLength() != 10 {
		t.Fatalf("t = %d after receipt, want 10", c.RoundLength())
	}
}

// TestBinaryCoordinatorStaleBeatExtendsDetection reproduces the mechanism
// behind Figure 10(a): a reply sent just before p[1] crashes restores
// t=tmax a full round later, stretching detection to 3·tmax − tmin.
func TestBinaryCoordinatorStaleBeatExtendsDetection(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 10}
	c := newBinaryP0(t, cfg)
	c.Start(0)
	c.OnTimer(TimerRound, 10)               // beats p[1]
	c.OnBeat(Beat{From: 1, Stay: true}, 10) // reply arrives instantly; p[1] crashes now
	lastBeat := Tick(10)
	now := Tick(20)
	c.OnTimer(TimerRound, now) // rcvd → t=tmax: the stale reset
	for c.Status() == StatusActive {
		now += c.RoundLength()
		c.OnTimer(TimerRound, now)
	}
	detection := now - lastBeat
	if detection != 28 {
		t.Fatalf("detection interval = %d, want 28 (within bound %d)", detection, cfg.CoordinatorDetectionBound())
	}
	if detection <= 2*cfg.TMax {
		t.Fatal("scenario should exceed the 1998 paper's claimed 2·tmax bound")
	}
	if detection > cfg.CoordinatorDetectionBound() {
		t.Fatalf("detection %d exceeds corrected bound %d", detection, cfg.CoordinatorDetectionBound())
	}
}

func TestStaticCoordinatorMinRule(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		Config:     Config{TMin: 1, TMax: 10},
		Membership: MembershipFixed,
		Members:    []ProcID{1, 2, 3},
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Start(0)
	c.OnTimer(TimerRound, 10) // grace
	// Only p[2] answers.
	c.OnBeat(Beat{From: 2, Stay: true}, 12)
	acts := c.OnTimer(TimerRound, 20)
	// tm = [5, 10, 5] → t = 5, and all three still get beats.
	if c.RoundLength() != 5 {
		t.Fatalf("t = %d, want min(tm)=5", c.RoundLength())
	}
	if got := len(actionsOf(acts, ActSendBeat)); got != 3 {
		t.Fatalf("beats = %d, want 3", got)
	}
	// p[1] and p[3] keep silent; p[2] answers every round. The rounds
	// shrink with the silent members' tm while p[2] stays at tmax.
	c.OnBeat(Beat{From: 2, Stay: true}, 22)
	c.OnTimer(TimerRound, 25) // tm = [2,10,2]
	if c.RoundLength() != 2 {
		t.Fatalf("t = %d, want 2", c.RoundLength())
	}
	c.OnBeat(Beat{From: 2, Stay: true}, 26)
	c.OnTimer(TimerRound, 27) // tm = [1,10,1]
	if c.RoundLength() != 1 {
		t.Fatalf("t = %d, want 1", c.RoundLength())
	}
	c.OnBeat(Beat{From: 2, Stay: true}, 27)
	acts = c.OnTimer(TimerRound, 28) // p1,p3 exhausted
	sus := actionsOf(acts, ActSuspect)
	if len(sus) != 2 || sus[0].Proc != 1 || sus[1].Proc != 3 {
		t.Fatalf("suspects = %v, want p[1],p[3]", sus)
	}
	if c.Status() != StatusInactive {
		t.Fatalf("status = %v, want inactive", c.Status())
	}
}

func TestExpandingCoordinatorAdmitsJoiner(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		Config:     Config{TMin: 2, TMax: 10},
		Membership: MembershipExpanding,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Start(0)
	if len(c.Members()) != 0 {
		t.Fatal("expanding coordinator must start with no members")
	}
	// Idle rounds with no members keep t at tmax and send nothing.
	acts := c.OnTimer(TimerRound, 10)
	if hasAction(acts, ActSendBeat) || c.RoundLength() != 10 {
		t.Fatalf("idle round: %v, t=%d", acts, c.RoundLength())
	}
	// A join request is admitted silently; the ack is the next broadcast.
	if acts := c.OnBeat(Beat{From: 7, Stay: true}, 12); hasAction(acts, ActSendBeat) {
		t.Fatal("join must not be acknowledged out of band")
	}
	if got := c.Members(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("members = %v, want [7]", got)
	}
	acts = c.OnTimer(TimerRound, 20)
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].To != 7 {
		t.Fatalf("beats = %v, want to p[7]", beats)
	}
}

func TestDynamicCoordinatorLeave(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		Config:     Config{TMin: 2, TMax: 10},
		Membership: MembershipDynamic,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Start(0)
	c.OnBeat(Beat{From: 3, Stay: true}, 1)
	c.OnBeat(Beat{From: 4, Stay: true}, 1)
	if len(c.Members()) != 2 {
		t.Fatalf("members = %v", c.Members())
	}
	// p[3] leaves; the ack carries the same false parameter.
	acts := c.OnBeat(Beat{From: 3, Stay: false}, 5)
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || beats[0].To != 3 || beats[0].Beat.Stay {
		t.Fatalf("leave ack = %v", beats)
	}
	if got := c.Members(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("members after leave = %v, want [4]", got)
	}
	// Leaving is permanent: a rejoin attempt is ignored...
	c.OnBeat(Beat{From: 3, Stay: true}, 6)
	if len(c.Members()) != 1 {
		t.Fatal("departed process rejoined")
	}
	// ...but a retried leave is re-acknowledged (ack loss tolerance).
	acts = c.OnBeat(Beat{From: 3, Stay: false}, 7)
	if got := actionsOf(acts, ActSendBeat); len(got) != 1 || got[0].Beat.Stay {
		t.Fatalf("leave retry ack = %v", acts)
	}
	// The departed process no longer drives acceleration: only p[4]
	// matters, and it answers, so p[0] never inactivates.
	now := Tick(10)
	for i := 0; i < 8; i++ {
		c.OnBeat(Beat{From: 4, Stay: true}, now)
		c.OnTimer(TimerRound, now)
		now += c.RoundLength()
	}
	if c.Status() != StatusActive {
		t.Fatalf("status = %v, want active", c.Status())
	}
}

func TestCoordinatorCrashStopsEverything(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10})
	c.Start(0)
	acts := c.Crash(3)
	if !hasAction(acts, ActCancelTimer) {
		t.Fatal("crash must cancel the round timer")
	}
	inact := actionsOf(acts, ActInactivate)
	if len(inact) != 1 || !inact[0].Voluntary {
		t.Fatalf("inactivate = %v, want voluntary", inact)
	}
	if c.Status() != StatusCrashed {
		t.Fatalf("status = %v", c.Status())
	}
	if acts := c.Crash(4); acts != nil {
		t.Fatal("double crash must be a no-op")
	}
	if acts := c.OnTimer(TimerRound, 10); acts != nil {
		t.Fatal("crashed coordinator reacted to timer")
	}
}

func TestCoordinatorIgnoresSelfAndStrangers(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10})
	c.Start(0)
	if acts := c.OnBeat(Beat{From: 0, Stay: true}, 1); acts != nil {
		t.Fatal("self-beat accepted")
	}
	c.OnBeat(Beat{From: 42, Stay: true}, 1) // stranger: fixed membership ignores
	if len(c.Members()) != 1 {
		t.Fatalf("members = %v", c.Members())
	}
	c.OnTimer(TimerRound, 10)
	c.OnTimer(TimerRound, 20) // no beat from p[1] → decay
	if c.RoundLength() != 5 {
		t.Fatal("stranger beat must not count as p[1]'s reply")
	}
}

func TestCoordinatorStartIdempotent(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 1, TMax: 10})
	if acts := c.Start(0); len(acts) == 0 {
		t.Fatal("first Start returned nothing")
	}
	if acts := c.Start(0); acts != nil {
		t.Fatal("second Start must be a no-op")
	}
}

func TestTwoPhaseCoordinatorDropsToTMin(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 4, TMax: 10, TwoPhase: true})
	c.Start(0)
	c.OnTimer(TimerRound, 10) // grace
	c.OnTimer(TimerRound, 20) // miss → t=tmin
	if c.RoundLength() != 4 {
		t.Fatalf("t = %d, want tmin=4", c.RoundLength())
	}
	acts := c.OnTimer(TimerRound, 24) // second miss → inactivate
	if !hasAction(acts, ActInactivate) || c.Status() != StatusInactive {
		t.Fatalf("two-phase second miss: %v, status %v", acts, c.Status())
	}
}

func TestMembershipString(t *testing.T) {
	if MembershipFixed.String() != "fixed" ||
		MembershipExpanding.String() != "expanding" ||
		MembershipDynamic.String() != "dynamic" {
		t.Fatal("Membership.String mismatch")
	}
	if Membership(9).String() == "" {
		t.Fatal("unknown membership must render")
	}
}
