// Package core implements the accelerated heartbeat protocols of Gouda &
// McGuire (ICDCS 1998) as pure, engine-agnostic state machines.
//
// A machine consumes events — timer expiries, received heartbeats, crash
// injections — and emits actions: beats to send, timers to (re)arm, and
// state changes. Machines never touch clocks or sockets themselves, so the
// same protocol code runs under the discrete-event simulator, the formal
// test harnesses, and the wall-clock runtime in package detector.
//
// # Protocol family
//
//   - Binary (two processes; p[0]'s waiting time halves on each missed
//     reply, resets to tmax on receipt, and p[0] inactivates when it drops
//     below tmin).
//   - Revised binary (McGuire–Gouda 2004): p[0] sends its first beat
//     immediately instead of waiting out a full round first.
//   - Two-phase: on a missed reply, the waiting time drops straight to
//     tmin instead of halving geometrically.
//   - Static: p[0] runs the binary exchange against a fixed set p[1..n]
//     with per-process waiting times; the round length is their minimum.
//   - Expanding: membership grows; joiners solicit p[0] with beats every
//     tmin until acknowledged.
//   - Dynamic: expanding plus voluntary, permanent leave; beats carry a
//     boolean (true = join/stay, false = leave).
//
// The Fixed flag applies the corrections of Atif & Mousavi (§6 of the 2009
// analysis): tightened/corrected inactivation bounds. The companion fix —
// processing deliveries before same-instant timeouts — is a property of the
// execution environment, honoured by the runtimes in this repository when
// Config.Fixed is set.
package core

import (
	"errors"
	"fmt"
)

// Tick is a duration or instant in protocol time units. tmin and tmax are
// expressed in ticks; the physical length of a tick is chosen by the
// runtime that drives the machine.
type Tick int64

// ProcID identifies a protocol participant. The coordinator is always
// process 0, matching the papers' p[0].
type ProcID int

// Coordinator is the well-known ID of p[0].
const CoordinatorID ProcID = 0

// Status is the liveness state of a participant.
type Status int

// Participant statuses. A process starts Active; crash (voluntary
// inactivation) and protocol-forced (non-voluntary) inactivation are
// permanent; Left is the dynamic protocol's graceful exit.
const (
	StatusActive Status = iota + 1
	StatusCrashed
	StatusInactive
	StatusLeft
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCrashed:
		return "crashed"
	case StatusInactive:
		return "inactive"
	case StatusLeft:
		return "left"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// TimerID names the logical timers a machine may arm. Arming an ID that is
// already pending replaces it.
type TimerID int

// Timer identifiers used by the protocol machines.
const (
	// TimerRound is p[0]'s round timer (period t).
	TimerRound TimerID = iota + 1
	// TimerExpiry is a responder's crash-suspicion watchdog.
	TimerExpiry
	// TimerJoinResend re-triggers a joiner's solicitation every tmin.
	TimerJoinResend
)

// String implements fmt.Stringer.
func (id TimerID) String() string {
	switch id {
	case TimerRound:
		return "round"
	case TimerExpiry:
		return "expiry"
	case TimerJoinResend:
		return "join-resend"
	default:
		return fmt.Sprintf("TimerID(%d)", int(id))
	}
}

// Beat is a heartbeat message. Stay is meaningful only in the dynamic
// protocol (true = join or remain, false = leave); the other protocols
// always send true. Inc is the sender's incarnation number, used by the
// rejoin extension (the analysis' future-work item: processes that may
// join again after leaving): each rejoin bumps the incarnation so that
// stale leave beats from an earlier incarnation cannot evict the new one.
type Beat struct {
	From ProcID
	Stay bool
	// Inc is the sender's incarnation in [0, 127]; 0 for protocols
	// without rejoin.
	Inc uint8
}

// ActionKind discriminates the variants of Action.
type ActionKind uint8

// Action kinds.
const (
	// ActSendBeat requests transmission of a heartbeat (To, Beat).
	ActSendBeat ActionKind = iota + 1
	// ActSetTimer arms (or re-arms) the named timer (ID, Delay).
	ActSetTimer
	// ActCancelTimer disarms the named timer if pending (ID).
	ActCancelTimer
	// ActInactivate reports that the machine stopped participating
	// (Voluntary distinguishes an injected crash from a protocol
	// decision).
	ActInactivate
	// ActJoined reports that an expanding/dynamic participant has been
	// acknowledged by p[0].
	ActJoined
	// ActLeft reports that a dynamic participant completed a graceful
	// leave.
	ActLeft
	// ActSuspect reports that the coordinator's waiting time for Proc
	// decayed below tmin — the protocol's failure signal for that
	// process. In the papers the coordinator reacts by inactivating
	// itself; Suspect additionally exposes which process triggered it,
	// which downstream failure detectors need.
	ActSuspect
	// ActRetune reports that an adaptive coordinator moved its timing
	// constants to a new operating point (TMin, TMax) within its
	// envelope. Runtimes surface it so supervisors can enter degraded
	// mode and conformance checkers can switch model level.
	ActRetune
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActSendBeat:
		return "send-beat"
	case ActSetTimer:
		return "set-timer"
	case ActCancelTimer:
		return "cancel-timer"
	case ActInactivate:
		return "inactivate"
	case ActJoined:
		return "joined"
	case ActLeft:
		return "left"
	case ActSuspect:
		return "suspect"
	case ActRetune:
		return "retune"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one effect requested by a machine; the runtime executes it.
// It is a flat tagged struct rather than an interface: machines emit
// actions on every event, and boxing each one behind an interface costs
// an allocation per action. Which fields are meaningful depends on Kind
// (see the ActionKind constants); the constructor functions SendBeat,
// SetTimer, CancelTimer, Inactivate, Joined, Left, and Suspect build
// well-formed values.
type Action struct {
	Kind ActionKind
	// To and Beat accompany ActSendBeat.
	To   ProcID
	Beat Beat
	// ID accompanies ActSetTimer and ActCancelTimer; Delay only the
	// former.
	ID    TimerID
	Delay Tick
	// Voluntary accompanies ActInactivate.
	Voluntary bool
	// Proc accompanies ActSuspect.
	Proc ProcID
	// TMin and TMax accompany ActRetune: the new operating point.
	TMin, TMax Tick
}

// SendBeat requests transmission of b to process to.
func SendBeat(to ProcID, b Beat) Action { return Action{Kind: ActSendBeat, To: to, Beat: b} }

// SetTimer arms (or re-arms) timer id to fire after delay ticks.
func SetTimer(id TimerID, delay Tick) Action {
	return Action{Kind: ActSetTimer, ID: id, Delay: delay}
}

// CancelTimer disarms timer id if pending.
func CancelTimer(id TimerID) Action { return Action{Kind: ActCancelTimer, ID: id} }

// Inactivate reports that the machine has stopped participating.
func Inactivate(voluntary bool) Action {
	return Action{Kind: ActInactivate, Voluntary: voluntary}
}

// Joined reports acknowledgement of an expanding/dynamic join.
func Joined() Action { return Action{Kind: ActJoined} }

// Left reports completion of a dynamic participant's graceful leave.
func Left() Action { return Action{Kind: ActLeft} }

// Suspect reports that proc is suspected down.
func Suspect(proc ProcID) Action { return Action{Kind: ActSuspect, Proc: proc} }

// RetuneAction reports a move to the operating point (tmin, tmax).
func RetuneAction(tmin, tmax Tick) Action {
	return Action{Kind: ActRetune, TMin: tmin, TMax: tmax}
}

// Machine is the event interface shared by every protocol role.
//
// The runtime contract: deliver Start exactly once, before anything else;
// deliver OnTimer only for timers the machine armed (a replaced or
// cancelled timer must not fire); deliver OnBeat for each received
// heartbeat, including those arriving after inactivation (crashed processes
// still receive, they just no longer react — per the papers' channel
// assumption); when Config.Fixed is set, deliver pending beats before a
// timer scheduled at the same instant (§6.1 receive priority).
//
// Action slices returned by a machine are scratch buffers owned by the
// machine: they stay valid only until the next call on the same machine.
// A runtime that needs to retain actions across calls must copy them.
type Machine interface {
	// Start initialises the machine at virtual time now.
	Start(now Tick) []Action
	// OnTimer handles expiry of a previously armed timer.
	OnTimer(id TimerID, now Tick) []Action
	// OnBeat handles a received heartbeat.
	OnBeat(b Beat, now Tick) []Action
	// Crash voluntarily inactivates the machine (fault injection).
	Crash(now Tick) []Action
	// Status reports the current liveness state.
	Status() Status
}

// Config carries the timing constants and variant switches shared by all
// machines.
type Config struct {
	// TMin is the lower bound on p[0]'s waiting time and the upper bound
	// on the round-trip channel delay, in ticks. Must satisfy
	// 0 < TMin <= TMax.
	TMin Tick
	// TMax is the upper bound on p[0]'s waiting time, in ticks.
	TMax Tick
	// TwoPhase selects the two-phase variant: a missed reply drops the
	// waiting time straight to TMin instead of halving it.
	TwoPhase bool
	// Revised selects the McGuire–Gouda 2004 revision: p[0] sends its
	// first beat immediately rather than after an initial full round.
	Revised bool
	// Fixed applies the corrected inactivation bounds of Atif & Mousavi
	// §6.2 and signals the runtime to give deliveries priority over
	// same-instant timeouts (§6.1).
	Fixed bool
}

// ErrConfig reports an invalid Config.
var ErrConfig = errors.New("core: invalid config")

// Validate checks the constraint 0 < TMin <= TMax from the papers.
func (c Config) Validate() error {
	if c.TMin <= 0 {
		//lint:allow noalloc-closure cold validation error; a valid config retunes without entering this branch
		return fmt.Errorf("%w: tmin %d must be positive", ErrConfig, c.TMin)
	}
	if c.TMax < c.TMin {
		//lint:allow noalloc-closure cold validation error; a valid config retunes without entering this branch
		return fmt.Errorf("%w: tmax %d < tmin %d", ErrConfig, c.TMax, c.TMin)
	}
	return nil
}

// ResponderBound is the time a steady-state responder (binary p[1], static
// p[i], or a joined expanding/dynamic p[i]) waits for a beat from p[0]
// before inactivating: 3·tmax − tmin in the original protocols, tightened
// to 2·tmax by the §6.2 fix.
func (c Config) ResponderBound() Tick {
	if c.Fixed {
		return 2 * c.TMax
	}
	return 3*c.TMax - c.TMin
}

// JoinerBound is the time an expanding/dynamic joiner waits for p[0]'s
// acknowledgement before inactivating: 3·tmax − tmin originally, corrected
// to 2·tmax + tmin by §6.2 (the join request can land just after a round
// timeout, so the first acknowledging beat may take up to 2·tmax + tmin).
func (c Config) JoinerBound() Tick {
	if c.Fixed {
		return 2*c.TMax + c.TMin
	}
	return 3*c.TMax - c.TMin
}

// CoordinatorDetectionBound is the worst-case interval between the last
// beat received from a process and p[0]'s resulting inactivation. The 1998
// paper claims 2·tmax; §6.2 shows the true bound is 2·tmax only when
// 2·tmin > tmax and 3·tmax − tmin otherwise (geometric-series argument).
func (c Config) CoordinatorDetectionBound() Tick {
	if c.TwoPhase {
		// A stale reply can restore t=tmax one round after the last
		// receipt; the following miss drops t to tmin (or inactivates
		// immediately when tmax == tmin), and the miss after that
		// inactivates.
		if c.TMax == c.TMin {
			return 2 * c.TMax
		}
		return 2*c.TMax + c.TMin
	}
	if 2*c.TMin > c.TMax {
		return 2 * c.TMax
	}
	return 3*c.TMax - c.TMin
}

// LossTolerance is the number of consecutive missed beats the coordinator
// absorbs before suspecting a process: the length of the halving sequence
// tmax → tmax/2 → … that stays at or above tmin (log2(tmax/tmin) for the
// accelerated protocols), or exactly one probe round for the two-phase
// variant, which drops straight to tmin.
func (c Config) LossTolerance() int {
	if c.TwoPhase {
		return 1
	}
	k := 0
	for t := c.TMax; t/2 >= c.TMin; t /= 2 {
		k++
	}
	return k
}

// NextWait applies the acceleration rule to the current per-process waiting
// time: reset to TMax on a received beat, otherwise halve (or drop to TMin
// in the two-phase variant). The returned ok is false when the new waiting
// time falls below TMin, i.e. the process must be suspected.
func (c Config) NextWait(cur Tick, received bool) (next Tick, ok bool) {
	if received {
		return c.TMax, true
	}
	if c.TwoPhase {
		// The two-phase protocol probes once at tmin; a second
		// consecutive miss (cur already tmin) exhausts it.
		if cur <= c.TMin {
			return cur, false
		}
		return c.TMin, true
	}
	next = cur / 2
	if next < c.TMin {
		return next, false
	}
	return next, true
}

// beatWire is the encoded size of a Beat.
const beatWire = 4

// ErrBadBeat reports a malformed encoded heartbeat.
var ErrBadBeat = errors.New("core: malformed beat")

// Marshal encodes the beat for a datagram transport: version, 16-bit
// sender, then a packed byte with the stay flag in bit 0 and the
// incarnation in bits 1–7.
func (b Beat) Marshal() []byte {
	return b.AppendMarshal(make([]byte, 0, beatWire))
}

// AppendMarshal appends the beat's wire encoding to dst and returns the
// extended slice; with capacity in dst it allocates nothing.
func (b Beat) AppendMarshal(dst []byte) []byte {
	packed := (b.Inc & 0x7F) << 1
	if b.Stay {
		packed |= 1
	}
	return append(dst, 1 /* version */, byte(uint16(b.From)>>8), byte(uint16(b.From)), packed)
}

// UnmarshalBeat decodes a beat produced by Marshal.
func UnmarshalBeat(data []byte) (Beat, error) {
	if len(data) != beatWire {
		//lint:allow noalloc-closure malformed-frame error path; well-formed batches never enter it
		return Beat{}, fmt.Errorf("%w: length %d", ErrBadBeat, len(data))
	}
	if data[0] != 1 {
		//lint:allow noalloc-closure malformed-frame error path; well-formed batches never enter it
		return Beat{}, fmt.Errorf("%w: version %d", ErrBadBeat, data[0])
	}
	return Beat{
		From: ProcID(int16(uint16(data[1])<<8 | uint16(data[2]))),
		Stay: data[3]&1 == 1,
		Inc:  data[3] >> 1,
	}, nil
}
