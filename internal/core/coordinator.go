package core

import (
	"fmt"
	"sort"
)

// Membership selects how the coordinator learns its peer set.
type Membership int

// Membership modes, mirroring the protocol family: the binary and static
// protocols fix the peer set up front; the expanding protocol admits
// joiners; the dynamic protocol additionally processes leaves.
const (
	MembershipFixed Membership = iota + 1
	MembershipExpanding
	MembershipDynamic
)

// String implements fmt.Stringer.
func (m Membership) String() string {
	switch m {
	case MembershipFixed:
		return "fixed"
	case MembershipExpanding:
		return "expanding"
	case MembershipDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Membership(%d)", int(m))
	}
}

// CoordinatorConfig configures a Coordinator (p[0]).
type CoordinatorConfig struct {
	Config
	// Membership selects fixed (binary/static), expanding, or dynamic
	// peer management.
	Membership Membership
	// Members is the fixed peer set; required non-empty for
	// MembershipFixed, must be empty otherwise (peers join at run time).
	Members []ProcID
	// AllowRejoin enables the rejoin extension (dynamic membership
	// only): a departed peer may join again with a higher incarnation
	// number; stale beats from its earlier incarnations are ignored.
	AllowRejoin bool
}

// Validate checks the configuration.
func (c CoordinatorConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	switch c.Membership {
	case MembershipFixed:
		if len(c.Members) == 0 {
			return fmt.Errorf("%w: fixed membership needs at least one member", ErrConfig)
		}
		seen := make(map[ProcID]bool, len(c.Members))
		for _, id := range c.Members {
			if id == CoordinatorID {
				return fmt.Errorf("%w: member list contains the coordinator", ErrConfig)
			}
			if seen[id] {
				return fmt.Errorf("%w: duplicate member %d", ErrConfig, id)
			}
			seen[id] = true
		}
	case MembershipExpanding, MembershipDynamic:
		if len(c.Members) != 0 {
			return fmt.Errorf("%w: %v membership starts empty", ErrConfig, c.Membership)
		}
	default:
		return fmt.Errorf("%w: unknown membership %d", ErrConfig, int(c.Membership))
	}
	if c.AllowRejoin && c.Membership != MembershipDynamic {
		return fmt.Errorf("%w: rejoin requires dynamic membership", ErrConfig)
	}
	return nil
}

// memberState is the coordinator's per-peer bookkeeping: the rcvd flag and
// the tm[i] waiting time of the static protocol, plus the peer's current
// incarnation for the rejoin extension.
type memberState struct {
	rcvd bool
	tm   Tick
	inc  uint8
}

// Coordinator implements p[0] for every protocol variant. The binary
// protocol is the fixed-membership instance with one member; the static
// protocol is the same with n members; the expanding and dynamic protocols
// grow (and, for dynamic, shrink) the member set at run time.
type Coordinator struct {
	cfg     CoordinatorConfig
	status  Status
	t       Tick // current round length
	members map[ProcID]*memberState
	// order caches the member IDs in ascending order, maintained on every
	// join and leave, so per-round iteration neither sorts nor allocates.
	order []ProcID
	// left records departed peers and the incarnation that left; without
	// AllowRejoin, departure is permanent.
	left    map[ProcID]uint8
	started bool
	// acts is the scratch slice behind every returned action list (see
	// the Machine contract).
	acts []Action
}

var _ Machine = (*Coordinator)(nil)

// NewCoordinator builds a p[0] machine.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		status:  StatusActive,
		t:       cfg.TMax,
		members: make(map[ProcID]*memberState),
		left:    make(map[ProcID]uint8),
	}
	for _, id := range cfg.Members {
		// rcvd starts true, as in the mCRL2 model: the first round is a
		// grace round; a peer is only suspected after missing a full
		// exchange it was given the chance to answer.
		c.members[id] = &memberState{rcvd: true, tm: cfg.TMax}
		c.insertOrdered(id)
	}
	return c, nil
}

// insertOrdered adds id to the sorted order cache.
func (c *Coordinator) insertOrdered(id ProcID) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
}

// removeOrdered drops id from the sorted order cache.
func (c *Coordinator) removeOrdered(id ProcID) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	if i < len(c.order) && c.order[i] == id {
		c.order = append(c.order[:i], c.order[i+1:]...)
	}
}

// Status implements Machine.
func (c *Coordinator) Status() Status { return c.status }

// Retune moves the coordinator to a new (tmin, tmax) operating point. It
// is meant to be called at a round boundary, before OnTimer processes the
// round: every member's waiting budget is reset to the new tmax and its
// rcvd flag raised, so the round in progress becomes a grace round at the
// new point — the adaptive variant widens instead of false-confirming a
// suspicion formed under constants it has just abandoned. The current
// round timer is left running; the next SetTimer picks up the new pace.
func (c *Coordinator) Retune(tmin, tmax Tick) error {
	if err := (Config{TMin: tmin, TMax: tmax}).Validate(); err != nil {
		return err
	}
	c.cfg.TMin, c.cfg.TMax = tmin, tmax
	c.t = tmax
	for _, m := range c.members {
		m.tm = tmax
		m.rcvd = true
	}
	return nil
}

// roundObservation reports the coordinator's view of the closing round:
// how many members it counted on and how many failed to reply. Meaningful
// immediately before OnTimer(TimerRound), which clears the rcvd flags.
func (c *Coordinator) roundObservation() (members, missed int) {
	for _, pid := range c.order {
		members++
		if !c.members[pid].rcvd {
			missed++
		}
	}
	return members, missed
}

// RoundLength returns the current waiting time t.
func (c *Coordinator) RoundLength() Tick { return c.t }

// Members returns the current peer set in ascending order. The slice is
// freshly allocated; callers may keep it.
func (c *Coordinator) Members() []ProcID {
	return append([]ProcID(nil), c.order...)
}

// Start implements Machine. The original protocol waits out a full round
// before the first beat; the revised variant beats immediately.
func (c *Coordinator) Start(now Tick) []Action {
	if c.started {
		return nil
	}
	c.started = true
	actions := append(c.acts[:0], SetTimer(TimerRound, c.t))
	if c.cfg.Revised {
		actions = c.appendSendAll(actions)
	}
	c.acts = actions
	return actions
}

// appendSendAll appends one beat per current member, in ascending ID
// order for determinism.
func (c *Coordinator) appendSendAll(actions []Action) []Action {
	for _, id := range c.order {
		actions = append(actions, SendBeat(id, Beat{From: CoordinatorID, Stay: true}))
	}
	return actions
}

// OnBeat implements Machine. A beat from a known member marks it received
// for the current round. Under expanding/dynamic membership a beat from an
// unknown, never-departed process is a join request. Under dynamic
// membership a beat with Stay=false is a leave, acknowledged immediately
// with a false beat, after which the peer no longer counts toward the
// round computation.
func (c *Coordinator) OnBeat(b Beat, now Tick) []Action {
	if c.status != StatusActive {
		return nil // crashed processes receive but do not react
	}
	if b.From == CoordinatorID {
		return nil // self-beats are a protocol error; ignore defensively
	}
	if !b.Stay && c.cfg.Membership == MembershipDynamic {
		return c.onLeave(b.From, b.Inc)
	}
	m, known := c.members[b.From]
	if known {
		if b.Inc < m.inc {
			return nil // stale beat from an earlier incarnation
		}
		m.inc = b.Inc
		m.rcvd = true
		m.tm = c.cfg.TMax
		return nil
	}
	switch c.cfg.Membership {
	case MembershipExpanding, MembershipDynamic:
		if leftInc, departed := c.left[b.From]; departed {
			if !c.cfg.AllowRejoin || b.Inc <= leftInc {
				return nil // departure is permanent (or a stale join)
			}
			delete(c.left, b.From)
		}
		// Admit the joiner. It learns of its admission from p[0]'s next
		// round broadcast, exactly as in the expanding protocol: p[0]
		// does not acknowledge out of band.
		c.members[b.From] = &memberState{rcvd: true, tm: c.cfg.TMax, inc: b.Inc}
		c.insertOrdered(b.From)
		return nil
	default:
		return nil // fixed membership ignores strangers
	}
}

// onLeave processes a dynamic-protocol leave request. The acknowledgement
// (a beat carrying the same false parameter, as the protocol prescribes)
// is idempotent so that a leaver whose ack was lost can retry. A leave
// from an incarnation older than the current member is stale — the peer
// has already rejoined — and is ignored.
func (c *Coordinator) onLeave(from ProcID, inc uint8) []Action {
	if m, known := c.members[from]; known {
		if inc < m.inc {
			return nil // stale leave from a previous incarnation
		}
		delete(c.members, from)
		c.removeOrdered(from)
	}
	if prev, ok := c.left[from]; !ok || inc > prev {
		c.left[from] = inc
	}
	c.acts = append(c.acts[:0], SendBeat(from, Beat{From: CoordinatorID, Stay: false, Inc: inc}))
	return c.acts
}

// OnTimer implements Machine. At each round timeout p[0] applies the
// acceleration rule per member, suspects members whose waiting time decayed
// below tmin (which inactivates p[0] itself, per the protocol), and
// otherwise beats every member and re-arms the round timer with the minimum
// waiting time.
func (c *Coordinator) OnTimer(id TimerID, now Tick) []Action {
	if c.status != StatusActive || id != TimerRound {
		return nil
	}
	// Iterating the sorted order cache emits suspects in ascending ID
	// order directly, with no per-round sort or allocation.
	actions := c.acts[:0]
	next := c.cfg.TMax // round length with no members: idle at tmax
	for _, pid := range c.order {
		m := c.members[pid]
		tm, ok := c.cfg.NextWait(m.tm, m.rcvd)
		if !ok {
			actions = append(actions, Suspect(pid))
		}
		m.tm = tm
		m.rcvd = false
		if tm < next {
			next = tm
		}
	}
	if len(actions) > 0 {
		c.status = StatusInactive
		actions = append(actions, Inactivate(false))
		c.acts = actions
		return actions
	}
	c.t = next
	actions = c.appendSendAll(actions)
	actions = append(actions, SetTimer(TimerRound, c.t))
	c.acts = actions
	return actions
}

// Crash implements Machine.
func (c *Coordinator) Crash(now Tick) []Action {
	if c.status != StatusActive {
		return nil
	}
	c.status = StatusCrashed
	c.acts = append(c.acts[:0], CancelTimer(TimerRound), Inactivate(true))
	return c.acts
}
