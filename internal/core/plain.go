package core

import (
	"fmt"
	"sort"
)

// PlainConfig configures the plain (non-accelerated) heartbeat baseline:
// a fixed exchange period and a fixed number of consecutive missed rounds
// tolerated before declaring a failure. This is the protocol the 1998 paper
// accelerates: to match the accelerated protocol's detection latency it
// must beat fast all the time, and a burst of MissLimit lost messages
// produces a false detection.
type PlainConfig struct {
	// Period is the fixed round length in ticks.
	Period Tick
	// MissLimit is the number of consecutive rounds without a reply after
	// which a member is suspected. Must be at least 1.
	MissLimit int
	// Members is the fixed peer set.
	Members []ProcID
}

// Validate checks the configuration.
func (c PlainConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("%w: period %d must be positive", ErrConfig, c.Period)
	}
	if c.MissLimit < 1 {
		return fmt.Errorf("%w: miss limit %d must be at least 1", ErrConfig, c.MissLimit)
	}
	if len(c.Members) == 0 {
		return fmt.Errorf("%w: plain coordinator needs at least one member", ErrConfig)
	}
	seen := make(map[ProcID]bool, len(c.Members))
	for _, id := range c.Members {
		if id == CoordinatorID {
			return fmt.Errorf("%w: member list contains the coordinator", ErrConfig)
		}
		if seen[id] {
			return fmt.Errorf("%w: duplicate member %d", ErrConfig, id)
		}
		seen[id] = true
	}
	return nil
}

// DetectionBound is the worst-case interval between a member's last beat
// arriving at p[0] and p[0] suspecting it: the remainder of the current
// round plus MissLimit further rounds.
func (c PlainConfig) DetectionBound() Tick {
	return Tick(c.MissLimit+1) * c.Period
}

// PlainCoordinator is p[0] of the baseline protocol.
type PlainCoordinator struct {
	cfg     PlainConfig
	status  Status
	rcvd    map[ProcID]bool
	misses  map[ProcID]int
	started bool
	// acts is the scratch slice behind every returned action list (see
	// the Machine contract).
	acts []Action
}

var _ Machine = (*PlainCoordinator)(nil)

// NewPlainCoordinator builds the baseline p[0].
func NewPlainCoordinator(cfg PlainConfig) (*PlainCoordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &PlainCoordinator{
		cfg:    cfg,
		status: StatusActive,
		rcvd:   make(map[ProcID]bool, len(cfg.Members)),
		misses: make(map[ProcID]int, len(cfg.Members)),
	}
	for _, id := range cfg.Members {
		c.rcvd[id] = true // first round is a grace round, as in Coordinator
	}
	return c, nil
}

// Status implements Machine.
func (c *PlainCoordinator) Status() Status { return c.status }

// Start implements Machine.
func (c *PlainCoordinator) Start(now Tick) []Action {
	if c.started {
		return nil
	}
	c.started = true
	c.acts = append(c.acts[:0], SetTimer(TimerRound, c.cfg.Period))
	return c.acts
}

// OnBeat implements Machine.
func (c *PlainCoordinator) OnBeat(b Beat, now Tick) []Action {
	if c.status != StatusActive {
		return nil
	}
	if _, known := c.rcvd[b.From]; known {
		c.rcvd[b.From] = true
	}
	return nil
}

// OnTimer implements Machine.
func (c *PlainCoordinator) OnTimer(id TimerID, now Tick) []Action {
	if c.status != StatusActive || id != TimerRound {
		return nil
	}
	var suspects []ProcID
	for _, pid := range c.cfg.Members {
		if c.rcvd[pid] {
			c.misses[pid] = 0
		} else {
			c.misses[pid]++
			if c.misses[pid] >= c.cfg.MissLimit {
				suspects = append(suspects, pid)
			}
		}
		c.rcvd[pid] = false
	}
	if len(suspects) > 0 {
		// Terminal (inactivating) path; the sort's allocation is harmless.
		//lint:allow noalloc-closure the naive baseline coordinator sorts per tick by design; kept for comparison benchmarks, outside the 0-alloc pin
		sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
		c.status = StatusInactive
		actions := c.acts[:0]
		for _, pid := range suspects {
			actions = append(actions, Suspect(pid))
		}
		actions = append(actions, Inactivate(false))
		c.acts = actions
		return actions
	}
	actions := c.acts[:0]
	for _, pid := range c.cfg.Members {
		actions = append(actions, SendBeat(pid, Beat{From: CoordinatorID, Stay: true}))
	}
	actions = append(actions, SetTimer(TimerRound, c.cfg.Period))
	c.acts = actions
	return actions
}

// Crash implements Machine.
func (c *PlainCoordinator) Crash(now Tick) []Action {
	if c.status != StatusActive {
		return nil
	}
	c.status = StatusCrashed
	c.acts = append(c.acts[:0], CancelTimer(TimerRound), Inactivate(true))
	return c.acts
}

// PlainResponder answers beats and inactivates after Bound ticks without
// one; it pairs with PlainCoordinator.
type PlainResponder struct {
	id      ProcID
	bound   Tick
	status  Status
	started bool
	// acts is the scratch slice behind every returned action list (see
	// the Machine contract).
	acts []Action
}

var _ Machine = (*PlainResponder)(nil)

// NewPlainResponder builds the baseline responder. A sound bound is
// (MissLimit+1)·Period plus the one-way delay allowance.
func NewPlainResponder(id ProcID, bound Tick) (*PlainResponder, error) {
	if id == CoordinatorID {
		return nil, fmt.Errorf("%w: responder cannot be process 0", ErrConfig)
	}
	if bound <= 0 {
		return nil, fmt.Errorf("%w: bound %d must be positive", ErrConfig, bound)
	}
	return &PlainResponder{id: id, bound: bound, status: StatusActive}, nil
}

// Status implements Machine.
func (r *PlainResponder) Status() Status { return r.status }

// Start implements Machine.
func (r *PlainResponder) Start(now Tick) []Action {
	if r.started {
		return nil
	}
	r.started = true
	r.acts = append(r.acts[:0], SetTimer(TimerExpiry, r.bound))
	return r.acts
}

// OnBeat implements Machine.
func (r *PlainResponder) OnBeat(b Beat, now Tick) []Action {
	if r.status != StatusActive || b.From != CoordinatorID {
		return nil
	}
	r.acts = append(r.acts[:0],
		SendBeat(CoordinatorID, Beat{From: r.id, Stay: true}),
		SetTimer(TimerExpiry, r.bound),
	)
	return r.acts
}

// OnTimer implements Machine.
func (r *PlainResponder) OnTimer(id TimerID, now Tick) []Action {
	if r.status != StatusActive || id != TimerExpiry {
		return nil
	}
	r.status = StatusInactive
	r.acts = append(r.acts[:0], Inactivate(false))
	return r.acts
}

// Crash implements Machine.
func (r *PlainResponder) Crash(now Tick) []Action {
	if r.status != StatusActive {
		return nil
	}
	r.status = StatusCrashed
	r.acts = append(r.acts[:0], CancelTimer(TimerExpiry), Inactivate(true))
	return r.acts
}
