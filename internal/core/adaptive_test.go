package core

import "testing"

func TestEnvelopeValidate(t *testing.T) {
	tests := []struct {
		name string
		env  Envelope
		ok   bool
	}{
		{"valid", Envelope{TMinLo: 1, TMinHi: 2, TMaxLo: 4, TMaxHi: 32}, true},
		{"degenerate point", Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 16, TMaxHi: 16}, true},
		{"zero tmin", Envelope{TMinLo: 0, TMinHi: 2, TMaxLo: 4, TMaxHi: 32}, false},
		{"tmin inverted", Envelope{TMinLo: 3, TMinHi: 2, TMaxLo: 4, TMaxHi: 32}, false},
		{"tmin above tmax", Envelope{TMinLo: 1, TMinHi: 8, TMaxLo: 4, TMaxHi: 32}, false},
		{"tmax inverted", Envelope{TMinLo: 1, TMinHi: 2, TMaxLo: 32, TMaxHi: 4}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.env.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestEnvelopeLevels(t *testing.T) {
	tests := []struct {
		env    Envelope
		levels int
	}{
		{Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 16, TMaxHi: 16}, 1},
		{Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 16}, 2},
		{Envelope{TMinLo: 1, TMinHi: 4, TMaxLo: 4, TMaxHi: 32}, 4},
		{Envelope{TMinLo: 1, TMinHi: 4, TMaxLo: 4, TMaxHi: 33}, 5}, // overshoot clamps
	}
	for _, tt := range tests {
		if got := tt.env.Levels(); got != tt.levels {
			t.Errorf("%+v.Levels() = %d, want %d", tt.env, got, tt.levels)
		}
	}
}

func TestEnvelopePoint(t *testing.T) {
	env := Envelope{TMinLo: 1, TMinHi: 3, TMaxLo: 4, TMaxHi: 33}
	// 5 levels: tmax 4, 8, 16, 32, 33(clamped); tmin 1, 2, 3(clamped)...
	want := []struct{ tmin, tmax Tick }{
		{1, 4}, {2, 8}, {3, 16}, {3, 32}, {3, 33},
	}
	if got := env.Levels(); got != len(want) {
		t.Fatalf("Levels = %d, want %d", got, len(want))
	}
	for lv, w := range want {
		tmin, tmax := env.Point(lv)
		if tmin != w.tmin || tmax != w.tmax {
			t.Errorf("Point(%d) = (%d, %d), want (%d, %d)", lv, tmin, tmax, w.tmin, w.tmax)
		}
		// Every level must be a valid Config on its own.
		if err := (Config{TMin: tmin, TMax: tmax}).Validate(); err != nil {
			t.Errorf("Point(%d) invalid as Config: %v", lv, err)
		}
	}
	// Out-of-range levels clamp.
	tmin, tmax := env.Point(-1)
	if tmin != 1 || tmax != 4 {
		t.Errorf("Point(-1) = (%d, %d), want level-0 point", tmin, tmax)
	}
	tmin, tmax = env.Point(99)
	if tmin != 3 || tmax != 33 {
		t.Errorf("Point(99) = (%d, %d), want top point", tmin, tmax)
	}
}

func TestEnvelopeResponderConfig(t *testing.T) {
	env := Envelope{TMinLo: 1, TMinHi: 2, TMaxLo: 4, TMaxHi: 32}
	cfg := env.ResponderConfig(Config{TwoPhase: true, Fixed: true})
	if cfg.TMin != 1 || cfg.TMax != 32 {
		t.Fatalf("ResponderConfig = (%d, %d), want (1, 32)", cfg.TMin, cfg.TMax)
	}
	if !cfg.TwoPhase || !cfg.Fixed {
		t.Fatalf("ResponderConfig dropped variant flags: %+v", cfg)
	}
}

func TestAdaptiveOptionsValidate(t *testing.T) {
	env := Envelope{TMinLo: 1, TMinHi: 2, TMaxLo: 4, TMaxHi: 32}
	tests := []struct {
		name string
		opts AdaptiveOptions
		ok   bool
	}{
		{"defaults", AdaptiveOptions{Envelope: env}, true},
		{"explicit", AdaptiveOptions{Envelope: env, Window: 4, WidenAt: 0.4, TightenAt: 0.1, HoldRounds: 6}, true},
		{"bad envelope", AdaptiveOptions{}, false},
		{"widen above one", AdaptiveOptions{Envelope: env, WidenAt: 1.5}, false},
		{"widen negative", AdaptiveOptions{Envelope: env, WidenAt: -0.5}, false},
		{"tighten above widen", AdaptiveOptions{Envelope: env, WidenAt: 0.3, TightenAt: 0.4}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.opts.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

// newAdaptiveP0 builds an adaptive coordinator over fixed members 1..n.
func newAdaptiveP0(t *testing.T, opts AdaptiveOptions, n int) *AdaptiveCoordinator {
	t.Helper()
	members := make([]ProcID, n)
	for i := range members {
		members[i] = ProcID(i + 1)
	}
	a, err := NewAdaptiveCoordinator(CoordinatorConfig{
		Membership: MembershipFixed,
		Members:    members,
	}, opts)
	if err != nil {
		t.Fatalf("NewAdaptiveCoordinator: %v", err)
	}
	return a
}

// runRound drives one full round: beats from the given members arrive,
// then the round timer fires.
func runRound(a *AdaptiveCoordinator, replies []ProcID, now Tick) []Action {
	for _, id := range replies {
		a.OnBeat(Beat{From: id, Stay: true}, now)
	}
	return a.OnTimer(TimerRound, now)
}

func TestAdaptiveWidensUnderLoss(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32} // 3 levels
	a := newAdaptiveP0(t, AdaptiveOptions{Envelope: env, Window: 4}, 2)
	a.Start(0)
	if lv := a.Level(); lv != 0 {
		t.Fatalf("initial level = %d, want 0", lv)
	}
	tmin, tmax := a.OperatingPoint()
	if tmin != 2 || tmax != 8 {
		t.Fatalf("initial point = (%d, %d), want (2, 8)", tmin, tmax)
	}

	// The first round is a grace round (rcvd starts true): the estimator
	// sees a clean sample and must not move.
	if acts := runRound(a, nil, 8); hasAction(acts, ActRetune) {
		t.Fatalf("retune on the grace round: %v", acts)
	}

	// Both members silent: the window now reads (2,0),(2,2) = 50% loss,
	// which meets WidenAt.
	acts := runRound(a, nil, 16)
	retunes := actionsOf(acts, ActRetune)
	if len(retunes) != 1 {
		t.Fatalf("expected one retune action, got %d in %v", len(retunes), acts)
	}
	if retunes[0].TMin != 2 || retunes[0].TMax != 16 {
		t.Fatalf("retune point = (%d, %d), want (2, 16)", retunes[0].TMin, retunes[0].TMax)
	}
	if a.Level() != 1 {
		t.Fatalf("level after widen = %d, want 1", a.Level())
	}
	// The widen converts the round into a grace round: no suspects even
	// though both members were silent, and beats go out again.
	if hasAction(acts, ActSuspect) || hasAction(acts, ActInactivate) {
		t.Fatalf("widen round must not suspect: %v", acts)
	}
	if got := len(actionsOf(acts, ActSendBeat)); got != 2 {
		t.Fatalf("expected 2 beats after grace round, got %d", got)
	}

	// Sustained silence escalates to the top level and stays clamped:
	// the post-widen window holds a single all-missed sample, 100% loss.
	runRound(a, nil, 32)
	if a.Level() != 2 {
		t.Fatalf("level = %d, want 2 (top)", a.Level())
	}
	// At the top of the envelope further loss holds saturated grace
	// rounds: each round retunes to the same (clamped) point instead of
	// accelerating toward a false confirmation.
	for i := 0; i < 8; i++ {
		acts = runRound(a, nil, Tick(64+32*i))
		retunes := actionsOf(acts, ActRetune)
		if len(retunes) != 1 || retunes[0].TMax != 32 {
			t.Fatalf("saturated round %d: want grace retune at (2, 32), got %v", i, acts)
		}
		if hasAction(acts, ActSuspect) || hasAction(acts, ActInactivate) {
			t.Fatalf("false confirmation at the top of the envelope: %v", acts)
		}
	}
	if a.Level() != 2 {
		t.Fatalf("level left the envelope: %d", a.Level())
	}
}

func TestAdaptiveFalseConfirmWithoutWidening(t *testing.T) {
	// Same silence as TestAdaptiveWidensUnderLoss against a plain
	// coordinator at the level-0 point: after the grace round, tmin=2/
	// tmax=8 decays 8 -> 4 -> 2 -> suspect on the fourth timeout. The
	// adaptive wrapper above survived the same run — that contrast is the
	// point.
	c := newBinaryP0(t, Config{TMin: 2, TMax: 8})
	c.Start(0)
	var acts []Action
	for i := 0; i < 4; i++ {
		acts = c.OnTimer(TimerRound, Tick(8*(i+1)))
	}
	if !hasAction(acts, ActSuspect) {
		t.Fatalf("plain coordinator should suspect under the same loss: %v", acts)
	}
}

func TestAdaptiveTightensAfterHold(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
	a := newAdaptiveP0(t, AdaptiveOptions{Envelope: env, Window: 2, HoldRounds: 3}, 1)
	a.Start(0)
	runRound(a, nil, 8)  // grace round, clean sample
	runRound(a, nil, 16) // (1,0),(1,1): 50% loss, widen to level 1
	if a.Level() != 1 {
		t.Fatalf("level = %d, want 1", a.Level())
	}
	// Clean rounds: no tighten until the hold streak is met.
	for i := 0; i < 2; i++ {
		acts := runRound(a, []ProcID{1}, Tick(16*(i+2)))
		if hasAction(acts, ActRetune) {
			t.Fatalf("tightened before HoldRounds: round %d, %v", i, acts)
		}
	}
	acts := runRound(a, []ProcID{1}, 64)
	retunes := actionsOf(acts, ActRetune)
	if len(retunes) != 1 || retunes[0].TMax != 8 {
		t.Fatalf("expected tighten to (2, 8), got %v", acts)
	}
	if a.Level() != 0 {
		t.Fatalf("level after tighten = %d, want 0", a.Level())
	}
}

func TestAdaptiveHysteresisMiddlingLossHolds(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
	a := newAdaptiveP0(t, AdaptiveOptions{Envelope: env, Window: 4, WidenAt: 0.5, TightenAt: 0.125, HoldRounds: 2}, 4)
	a.Start(0)
	// One of four members missing each round: 25% loss sits between the
	// thresholds — the level must not move in either direction.
	for i := 0; i < 8; i++ {
		acts := runRound(a, []ProcID{1, 2, 3}, Tick(8*(i+1)))
		if hasAction(acts, ActRetune) {
			t.Fatalf("retune inside the hysteresis band at round %d: %v", i, acts)
		}
	}
	if a.Level() != 0 {
		t.Fatalf("level = %d, want 0", a.Level())
	}
}

func TestAdaptiveSnapshot(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
	a := newAdaptiveP0(t, AdaptiveOptions{Envelope: env, Window: 4}, 4)
	a.Start(0)
	runRound(a, nil, 8)                // grace round: (4,0)
	runRound(a, []ProcID{1, 2, 3}, 16) // (4,1)
	st := a.Snapshot()
	if st.Level != 0 {
		t.Fatalf("Snapshot.Level = %d, want 0", st.Level)
	}
	if st.TMin != 2 || st.TMax != 8 {
		t.Fatalf("Snapshot point = (%d, %d), want (2, 8)", st.TMin, st.TMax)
	}
	if st.LossMilli != 125 { // 1 missed of 8 expected
		t.Fatalf("Snapshot.LossMilli = %d, want 125", st.LossMilli)
	}
	if len(st.Window) != 2 {
		t.Fatalf("Snapshot.Window = %v, want two samples", st.Window)
	}

	// Silence until the widen threshold; the retune resets the window.
	runRound(a, nil, 24) // window 5/12 missed, below WidenAt
	runRound(a, nil, 32) // window 9/16 missed: widen
	st = a.Snapshot()
	if st.Level != 1 {
		t.Fatalf("Snapshot.Level = %d, want 1", st.Level)
	}
	if len(st.Window) != 0 || st.LossMilli != 0 {
		t.Fatalf("window not reset on retune: %+v", st)
	}
}

func TestAdaptiveWindowEviction(t *testing.T) {
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
	// Window 2, WidenAt out of reach so no retune interferes.
	a := newAdaptiveP0(t, AdaptiveOptions{Envelope: env, Window: 2, WidenAt: 0.99}, 2)
	a.Start(0)
	runRound(a, nil, 8)             // grace: (2,0)
	runRound(a, nil, 16)            // (2,2)
	runRound(a, []ProcID{1, 2}, 24) // (2,0) — evicts the grace sample
	if st := a.Snapshot(); st.LossMilli != 500 {
		t.Fatalf("LossMilli = %d with (2,2),(2,0) in window, want 500", st.LossMilli)
	}
	runRound(a, []ProcID{1, 2}, 32) // (2,0) — evicts (2,2)
	if st := a.Snapshot(); st.LossMilli != 0 {
		t.Fatalf("LossMilli = %d after lossy sample evicted, want 0", st.LossMilli)
	}
}

func TestAdaptiveRetuneWhileDegradedMembership(t *testing.T) {
	// Expanding membership with no members yet: rounds contribute no
	// samples and never retune.
	env := Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 8, TMaxHi: 32}
	a, err := NewAdaptiveCoordinator(CoordinatorConfig{
		Membership: MembershipExpanding,
	}, AdaptiveOptions{Envelope: env})
	if err != nil {
		t.Fatalf("NewAdaptiveCoordinator: %v", err)
	}
	a.Start(0)
	for i := 0; i < 5; i++ {
		if acts := a.OnTimer(TimerRound, Tick(8*(i+1))); hasAction(acts, ActRetune) {
			t.Fatalf("retune with empty membership: %v", acts)
		}
	}
	if st := a.Snapshot(); len(st.Window) != 0 {
		t.Fatalf("empty rounds must not produce samples: %v", st.Window)
	}
}

func TestCoordinatorRetuneGraceRound(t *testing.T) {
	c := newBinaryP0(t, Config{TMin: 2, TMax: 8})
	c.Start(0)
	c.OnTimer(TimerRound, 8)  // grace round
	c.OnTimer(TimerRound, 16) // member 1 silent: tm decays 8 -> 4
	if err := c.Retune(2, 16); err != nil {
		t.Fatalf("Retune: %v", err)
	}
	if c.RoundLength() != 16 {
		t.Fatalf("RoundLength = %d, want 16", c.RoundLength())
	}
	// The member's budget was reset and its rcvd flag raised: four more
	// silent rounds before any suspicion (grace, then 16 -> 8 -> 4 -> 2).
	for i := 0; i < 4; i++ {
		if acts := c.OnTimer(TimerRound, Tick(32+16*i)); hasAction(acts, ActSuspect) {
			t.Fatalf("suspect on round %d after retune grace: %v", i, acts)
		}
	}
	if acts := c.OnTimer(TimerRound, 120); !hasAction(acts, ActSuspect) {
		t.Fatalf("expected suspicion once the retuned budget decayed: %v", acts)
	}
	if err := c.Retune(0, 5); err == nil {
		t.Fatal("Retune accepted an invalid point")
	}
}
