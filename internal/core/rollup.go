package core

// Rollup summaries: the wire records leaf clusters report up the
// aggregation tree of a monitoring fleet (internal/fleet). A leaf
// cluster's coordinator condenses its membership view into one Summary
// per epoch; aggregators merge child summaries with Add and report their
// own; the root's summary is the fleet-wide liveness view. The encoding
// is a fixed-size little-endian record so a shard's whole per-epoch
// output batches into one contiguous buffer (see fleet's codec).

import "fmt"

// Summary is one cluster's (or subtree's) liveness rollup for one epoch.
type Summary struct {
	// Cluster identifies the reporting cluster (leaves) or aggregator
	// subtree root (inner nodes); id spaces are disjoint by construction
	// in the fleet.
	Cluster uint32
	// Epoch is the barrier index the summary was taken at.
	Epoch uint32
	// Total is the number of monitored endpoints in the subtree.
	Total uint32
	// Alive is how many of them the protocol currently trusts (neither
	// suspected nor inactivated).
	Alive uint32
	// Detections is the cumulative count of suspicions declared in the
	// subtree since the fleet started.
	Detections uint32
}

// summaryWire is the encoded size of a Summary.
const summaryWire = 20

// ErrBadSummary reports a malformed encoded summary.
var ErrBadSummary = fmt.Errorf("core: malformed summary")

//hbvet:noalloc
// Add merges a child subtree's summary into an aggregate. Epoch follows
// the newest child so staleness checks compare against the merge result.
func (s *Summary) Add(child Summary) {
	s.Total += child.Total
	s.Alive += child.Alive
	s.Detections += child.Detections
	if child.Epoch > s.Epoch {
		s.Epoch = child.Epoch
	}
}

//hbvet:noalloc
// AppendMarshal appends the summary's wire encoding to dst and returns
// the extended slice; with capacity in dst it allocates nothing.
func (s Summary) AppendMarshal(dst []byte) []byte {
	for _, v := range [5]uint32{s.Cluster, s.Epoch, s.Total, s.Alive, s.Detections} {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

//hbvet:noalloc
// UnmarshalSummary decodes one summary from the front of data and
// returns the remaining bytes.
func UnmarshalSummary(data []byte) (Summary, []byte, error) {
	if len(data) < summaryWire {
		//lint:allow hot-path-alloc cold error path; batches are produced by AppendMarshal and always whole records
		return Summary{}, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSummary, len(data))
	}
	var f [5]uint32
	for i := range f {
		o := i * 4
		f[i] = uint32(data[o]) | uint32(data[o+1])<<8 | uint32(data[o+2])<<16 | uint32(data[o+3])<<24
	}
	return Summary{Cluster: f[0], Epoch: f[1], Total: f[2], Alive: f[3], Detections: f[4]}, data[summaryWire:], nil
}
