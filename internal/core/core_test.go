package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{TMin: 1, TMax: 10}, true},
		{"equal bounds", Config{TMin: 10, TMax: 10}, true},
		{"zero tmin", Config{TMin: 0, TMax: 10}, false},
		{"negative tmin", Config{TMin: -1, TMax: 10}, false},
		{"tmax below tmin", Config{TMin: 5, TMax: 4}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrConfig) {
				t.Fatalf("error %v is not ErrConfig", err)
			}
		})
	}
}

func TestBounds(t *testing.T) {
	tests := []struct {
		name                      string
		cfg                       Config
		responder, joiner, detect Tick
	}{
		{
			name:      "original tmin=1",
			cfg:       Config{TMin: 1, TMax: 10},
			responder: 29, joiner: 29, detect: 29,
		},
		{
			name:      "original tmin=9 (2tmin>tmax)",
			cfg:       Config{TMin: 9, TMax: 10},
			responder: 21, joiner: 21, detect: 20,
		},
		{
			name:      "original tmin=5 (2tmin==tmax)",
			cfg:       Config{TMin: 5, TMax: 10},
			responder: 25, joiner: 25, detect: 25,
		},
		{
			name:      "fixed tmin=1",
			cfg:       Config{TMin: 1, TMax: 10, Fixed: true},
			responder: 20, joiner: 21, detect: 29,
		},
		{
			name:      "fixed tmin=10",
			cfg:       Config{TMin: 10, TMax: 10, Fixed: true},
			responder: 20, joiner: 30, detect: 20,
		},
		{
			name:      "two-phase tmin=4",
			cfg:       Config{TMin: 4, TMax: 10, TwoPhase: true},
			responder: 26, joiner: 26, detect: 24,
		},
		{
			name:      "two-phase tmin=tmax",
			cfg:       Config{TMin: 10, TMax: 10, TwoPhase: true},
			responder: 20, joiner: 20, detect: 20,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.cfg.ResponderBound(); got != tt.responder {
				t.Errorf("ResponderBound() = %d, want %d", got, tt.responder)
			}
			if got := tt.cfg.JoinerBound(); got != tt.joiner {
				t.Errorf("JoinerBound() = %d, want %d", got, tt.joiner)
			}
			if got := tt.cfg.CoordinatorDetectionBound(); got != tt.detect {
				t.Errorf("CoordinatorDetectionBound() = %d, want %d", got, tt.detect)
			}
		})
	}
}

func TestNextWaitBinary(t *testing.T) {
	cfg := Config{TMin: 1, TMax: 10}
	// Receipt resets to tmax regardless of the current value.
	if next, ok := cfg.NextWait(2, true); !ok || next != 10 {
		t.Fatalf("NextWait(2, true) = %d,%v", next, ok)
	}
	// Misses halve: 10 → 5 → 2 → 1 → give up.
	want := []Tick{5, 2, 1}
	cur := Tick(10)
	for _, w := range want {
		next, ok := cfg.NextWait(cur, false)
		if !ok || next != w {
			t.Fatalf("NextWait(%d, false) = %d,%v, want %d,true", cur, next, ok, w)
		}
		cur = next
	}
	if _, ok := cfg.NextWait(cur, false); ok {
		t.Fatalf("NextWait(%d, false) should exhaust", cur)
	}
}

// TestLossTolerance pins the halving-budget count against NextWait
// itself: starting from tmax, exactly LossTolerance consecutive misses
// survive and the next one exhausts.
func TestLossTolerance(t *testing.T) {
	for _, cfg := range []Config{
		{TMin: 2, TMax: 8},
		{TMin: 2, TMax: 16},
		{TMin: 2, TMax: 128},
		{TMin: 8, TMax: 16},
		{TMin: 3, TMax: 10},
		{TMin: 10, TMax: 10},
		{TMin: 4, TMax: 10, TwoPhase: true},
		{TMin: 10, TMax: 10, TwoPhase: true},
	} {
		k := cfg.LossTolerance()
		cur := cfg.TMax
		survived := 0
		for {
			next, ok := cfg.NextWait(cur, false)
			if !ok {
				break
			}
			survived++
			cur = next
		}
		// Two-phase with tmin=tmax exhausts immediately; LossTolerance
		// still reports the one probe round the variant is defined by.
		if cfg.TwoPhase && cfg.TMin == cfg.TMax {
			continue
		}
		if survived != k {
			t.Errorf("config %+v: LossTolerance %d, but %d misses survive", cfg, k, survived)
		}
	}
}

func TestNextWaitTwoPhase(t *testing.T) {
	cfg := Config{TMin: 4, TMax: 10, TwoPhase: true}
	if next, ok := cfg.NextWait(10, false); !ok || next != 4 {
		t.Fatalf("first miss = %d,%v, want 4,true", next, ok)
	}
	if _, ok := cfg.NextWait(4, false); ok {
		t.Fatal("second consecutive miss at tmin should exhaust")
	}
	if next, ok := cfg.NextWait(4, true); !ok || next != 10 {
		t.Fatalf("receipt = %d,%v, want 10,true", next, ok)
	}
	// tmax == tmin: the first miss exhausts immediately, like binary.
	eq := Config{TMin: 10, TMax: 10, TwoPhase: true}
	if _, ok := eq.NextWait(10, false); ok {
		t.Fatal("two-phase with tmin=tmax should exhaust on first miss")
	}
}

// TestPropertyHalvingSeriesBound verifies the §6.2 geometric-series bound.
// Worst case: the last beat arrives at the start of a round of length tmax;
// that round ends with rcvd=true, resetting t=tmax; then every round
// misses. The full interval — the stale round plus the decay series — must
// not exceed CoordinatorDetectionBound: 2·tmax when 2·tmin > tmax,
// 3·tmax − tmin otherwise.
func TestPropertyHalvingSeriesBound(t *testing.T) {
	f := func(a, b uint16) bool {
		tmin := Tick(a%200) + 1
		tmax := tmin + Tick(b%200)
		cfg := Config{TMin: tmin, TMax: tmax}
		decay := Tick(0) // rounds after the reset, starting at t=tmax
		cur := tmax
		for {
			decay += cur // p[0] waits out the round, then misses
			next, ok := cfg.NextWait(cur, false)
			if !ok {
				break
			}
			cur = next
		}
		return tmax+decay <= cfg.CoordinatorDetectionBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNextWaitMonotone: the waiting time never increases on a miss
// and never leaves [tmin/2, tmax] while the protocol is live.
func TestPropertyNextWaitMonotone(t *testing.T) {
	f := func(a, b uint16, misses uint8) bool {
		tmin := Tick(a%100) + 1
		tmax := tmin + Tick(b%100)
		cfg := Config{TMin: tmin, TMax: tmax}
		cur := tmax
		for i := 0; i < int(misses%16); i++ {
			next, ok := cfg.NextWait(cur, false)
			if !ok {
				return next < tmin // exhaustion must mean sub-tmin
			}
			if next > cur || next < tmin || next > tmax {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBeatMarshalRoundTrip(t *testing.T) {
	tests := []Beat{
		{From: 0, Stay: true},
		{From: 1, Stay: false},
		{From: 255, Stay: true},
		{From: 4095, Stay: false},
	}
	for _, b := range tests {
		got, err := UnmarshalBeat(b.Marshal())
		if err != nil {
			t.Fatalf("UnmarshalBeat(%+v): %v", b, err)
		}
		if got != b {
			t.Fatalf("round trip = %+v, want %+v", got, b)
		}
	}
}

func TestUnmarshalBeatRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{1, 0, 0},       // short
		{1, 0, 0, 1, 0}, // long
		{9, 0, 0, 1},    // bad version
	}
	for _, data := range bad {
		if _, err := UnmarshalBeat(data); !errors.Is(err, ErrBadBeat) {
			t.Errorf("UnmarshalBeat(%v) = %v, want ErrBadBeat", data, err)
		}
	}
}

// TestPropertyBeatRoundTrip fuzzes the codec over the ProcID and
// incarnation ranges it supports.
func TestPropertyBeatRoundTrip(t *testing.T) {
	f := func(from uint16, stay bool, inc uint8) bool {
		b := Beat{From: ProcID(int16(from)), Stay: stay, Inc: inc & 0x7F}
		if int16(from) < 0 {
			return true // negative IDs are not constructed by the library
		}
		got, err := UnmarshalBeat(b.Marshal())
		return err == nil && got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBeatIncarnationRoundTrip(t *testing.T) {
	b := Beat{From: 3, Stay: false, Inc: 127}
	got, err := UnmarshalBeat(b.Marshal())
	if err != nil || got != b {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
}

func TestStatusAndTimerStrings(t *testing.T) {
	if StatusActive.String() != "active" || StatusLeft.String() != "left" {
		t.Fatal("Status.String mismatch")
	}
	if Status(99).String() == "" || TimerID(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
	if TimerRound.String() != "round" || TimerExpiry.String() != "expiry" {
		t.Fatal("TimerID.String mismatch")
	}
}
