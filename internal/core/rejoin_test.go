package core

import "testing"

func newRejoinPair(t *testing.T) (*Coordinator, *Participant) {
	t.Helper()
	cfg := Config{TMin: 2, TMax: 10}
	c, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		Membership:  MembershipDynamic,
		AllowRejoin: true,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	p, err := NewParticipant(cfg, 5, true)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	c.Start(0)
	p.Start(0)
	return c, p
}

// joinLeave walks the pair through a complete join and leave handshake.
func joinLeave(t *testing.T, c *Coordinator, p *Participant, now Tick) Tick {
	t.Helper()
	// Join: participant's solicitation reaches p[0]; p[0]'s beat acks.
	c.OnBeat(p.beat(true), now)
	p.OnBeat(Beat{From: 0, Stay: true}, now+1)
	if !p.JoinedProtocol() {
		t.Fatal("participant did not join")
	}
	if len(c.Members()) != 1 {
		t.Fatalf("members = %v", c.Members())
	}
	// Leave: false beat, ack with matching incarnation.
	acts, err := p.Leave(now + 2)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	leaveBeat := actionsOf(acts, ActSendBeat)[0].Beat
	ackActs := c.OnBeat(leaveBeat, now+3)
	ack := actionsOf(ackActs, ActSendBeat)[0].Beat
	p.OnBeat(ack, now+4)
	if p.Status() != StatusLeft {
		t.Fatalf("status = %v, want left", p.Status())
	}
	if len(c.Members()) != 0 {
		t.Fatalf("members after leave = %v", c.Members())
	}
	return now + 5
}

func TestRejoinHandshake(t *testing.T) {
	c, p := newRejoinPair(t)
	now := joinLeave(t, c, p, 1)

	acts, err := p.Rejoin(now)
	if err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if p.Incarnation() != 1 {
		t.Fatalf("incarnation = %d, want 1", p.Incarnation())
	}
	beats := actionsOf(acts, ActSendBeat)
	if len(beats) != 1 || !beats[0].Beat.Stay || beats[0].Beat.Inc != 1 {
		t.Fatalf("rejoin solicitation = %v", acts)
	}
	// The coordinator readmits the higher incarnation.
	c.OnBeat(beats[0].Beat, now+1)
	if got := c.Members(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("members after rejoin = %v", got)
	}
	// And the participant joins again on p[0]'s next beat.
	joined := p.OnBeat(Beat{From: 0, Stay: true}, now+2)
	if !hasAction(joined, ActJoined) || p.Status() != StatusActive {
		t.Fatalf("rejoin completion: %v, status %v", joined, p.Status())
	}
}

func TestRejoinStaleBeatsIgnored(t *testing.T) {
	c, p := newRejoinPair(t)
	now := joinLeave(t, c, p, 1)
	if _, err := p.Rejoin(now); err != nil {
		t.Fatal(err)
	}
	c.OnBeat(p.beat(true), now+1) // incarnation 1 admitted

	// A stale LEAVE from incarnation 0 (delayed in the network) must not
	// evict the new incarnation.
	c.OnBeat(Beat{From: 5, Stay: false, Inc: 0}, now+2)
	if got := c.Members(); len(got) != 1 {
		t.Fatalf("stale leave evicted the rejoined member: %v", got)
	}
	// A stale JOIN from incarnation 0 must not resurrect a member after
	// incarnation 1 leaves.
	acts, err := p.Leave(now + 3)
	if err != nil {
		t.Fatal(err)
	}
	c.OnBeat(actionsOf(acts, ActSendBeat)[0].Beat, now+4)
	if len(c.Members()) != 0 {
		t.Fatal("leave of incarnation 1 not processed")
	}
	c.OnBeat(Beat{From: 5, Stay: true, Inc: 0}, now+5)
	c.OnBeat(Beat{From: 5, Stay: true, Inc: 1}, now+5)
	if len(c.Members()) != 0 {
		t.Fatal("stale join resurrected a departed member")
	}
}

func TestRejoinStaleAckDoesNotCompleteNewLeave(t *testing.T) {
	c, p := newRejoinPair(t)
	now := joinLeave(t, c, p, 1)
	if _, err := p.Rejoin(now); err != nil {
		t.Fatal(err)
	}
	c.OnBeat(p.beat(true), now+1)
	p.OnBeat(Beat{From: 0, Stay: true}, now+2) // joined again
	if _, err := p.Leave(now + 3); err != nil {
		t.Fatal(err)
	}
	// A stale ack from the FIRST leave (incarnation 0) arrives: it must
	// not complete incarnation 1's leave.
	if acts := p.OnBeat(Beat{From: 0, Stay: false, Inc: 0}, now+4); acts != nil {
		t.Fatalf("stale ack processed: %v", acts)
	}
	if p.Status() != StatusActive {
		t.Fatalf("status = %v, want still active (leaving)", p.Status())
	}
	// The matching ack completes it.
	p.OnBeat(Beat{From: 0, Stay: false, Inc: 1}, now+5)
	if p.Status() != StatusLeft {
		t.Fatalf("status = %v, want left", p.Status())
	}
}

func TestRejoinValidation(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 10}
	// Rejoin requires dynamic.
	pe, err := NewParticipant(cfg, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	pe.Start(0)
	if _, err := pe.Rejoin(1); err == nil {
		t.Fatal("rejoin on expanding participant accepted")
	}
	// Rejoin requires a completed leave.
	pd, err := NewParticipant(cfg, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	pd.Start(0)
	if _, err := pd.Rejoin(1); err == nil {
		t.Fatal("rejoin while active accepted")
	}
	// Coordinator flag requires dynamic membership.
	if _, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		Membership:  MembershipExpanding,
		AllowRejoin: true,
	}); err == nil {
		t.Fatal("AllowRejoin with expanding membership accepted")
	}
}

func TestRejoinWithoutCoordinatorSupport(t *testing.T) {
	cfg := Config{TMin: 2, TMax: 10}
	c, err := NewCoordinator(CoordinatorConfig{Config: cfg, Membership: MembershipDynamic})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParticipant(cfg, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	p.Start(0)
	now := joinLeave(t, c, p, 1)
	if _, err := p.Rejoin(now); err != nil {
		t.Fatal(err)
	}
	// Without AllowRejoin the coordinator ignores the higher incarnation:
	// departure stays permanent, as in the original dynamic protocol.
	c.OnBeat(p.beat(true), now+1)
	if len(c.Members()) != 0 {
		t.Fatal("coordinator without AllowRejoin readmitted a departed peer")
	}
}
