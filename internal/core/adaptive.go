package core

import (
	"fmt"
	"sync/atomic"
)

// Envelope clamps the adaptive variant's retuning: every operating point
// the estimator may select satisfies TMinLo <= tmin <= TMinHi and
// TMaxLo <= tmax <= TMaxHi. The envelope is discretised into levels —
// level 0 is the most aggressive point (fastest detection, least loss
// tolerance), each widening level doubles tmax (buying one more tolerated
// consecutive loss, since tolerance is ~log2(tmax/tmin)) until TMaxHi,
// the plain-heartbeat-like top. The constraint TMinHi <= TMaxLo makes
// every (tmin, tmax) pair of every level a valid Config, so the envelope
// as a whole — not any single constant pair — is the object the model
// checker verifies (internal/models.Envelope mirrors this arithmetic).
type Envelope struct {
	// TMinLo and TMinHi bound tmin; must satisfy 0 < TMinLo <= TMinHi.
	TMinLo, TMinHi Tick
	// TMaxLo and TMaxHi bound tmax; must satisfy
	// TMinHi <= TMaxLo <= TMaxHi.
	TMaxLo, TMaxHi Tick
}

// Validate checks the envelope ordering constraints.
func (e Envelope) Validate() error {
	if e.TMinLo <= 0 {
		return fmt.Errorf("%w: envelope tmin lower bound %d must be positive", ErrConfig, e.TMinLo)
	}
	if e.TMinHi < e.TMinLo {
		return fmt.Errorf("%w: envelope tmin bounds inverted (%d > %d)", ErrConfig, e.TMinLo, e.TMinHi)
	}
	if e.TMaxLo < e.TMinHi {
		return fmt.Errorf("%w: envelope needs TMinHi <= TMaxLo, got %d > %d (levels would invert tmin <= tmax)", ErrConfig, e.TMinHi, e.TMaxLo)
	}
	if e.TMaxHi < e.TMaxLo {
		return fmt.Errorf("%w: envelope tmax bounds inverted (%d > %d)", ErrConfig, e.TMaxLo, e.TMaxHi)
	}
	return nil
}

// Levels is the number of discrete operating points: tmax doubles from
// TMaxLo until it reaches (clamped) TMaxHi.
func (e Envelope) Levels() int {
	n := 1
	for t := e.TMaxLo; t < e.TMaxHi; t *= 2 {
		n++
	}
	return n
}

// Point returns the operating point of a level (clamped to the valid
// range): tmax = min(TMaxLo·2^level, TMaxHi), tmin likewise doubled from
// TMinLo and clamped to TMinHi.
func (e Envelope) Point(level int) (tmin, tmax Tick) {
	if level < 0 {
		level = 0
	}
	if max := e.Levels() - 1; level > max {
		level = max
	}
	tmin, tmax = e.TMinLo, e.TMaxLo
	for i := 0; i < level; i++ {
		if tmin*2 <= e.TMinHi {
			tmin *= 2
		} else {
			tmin = e.TMinHi
		}
		if tmax*2 <= e.TMaxHi {
			tmax *= 2
		} else {
			tmax = e.TMaxHi
		}
	}
	return tmin, tmax
}

// ResponderConfig is the configuration participants of an adaptive
// cluster run with: the envelope's worst-case point. The coordinator's
// round length never exceeds TMaxHi at any level, so a watchdog derived
// from (TMinLo, TMaxHi) is sound at every operating point — and the wire
// format need not carry the coordinator's current level.
func (e Envelope) ResponderConfig(base Config) Config {
	base.TMin = e.TMinLo
	base.TMax = e.TMaxHi
	return base
}

// AdaptiveOptions tunes the adaptive coordinator's loss estimator. The
// zero value selects the defaults noted per field.
type AdaptiveOptions struct {
	// Envelope clamps the retuning; required.
	Envelope Envelope
	// Window is the number of recent rounds the loss estimate averages
	// over (default 8).
	Window int
	// WidenAt is the loss fraction at or above which the coordinator
	// widens one level (default 0.5 — at that rate the current level is
	// one bad coin-flip streak from a false confirmation).
	WidenAt float64
	// TightenAt is the loss fraction at or below which a round counts as
	// clean; only HoldRounds consecutive clean rounds tighten one level
	// (default 0.125). Must stay below WidenAt for hysteresis.
	TightenAt float64
	// HoldRounds is the clean-round streak required before each tighten
	// (default: Window), so one quiet window never undoes a widen that a
	// still-live partition forced.
	HoldRounds int
}

// withDefaults resolves the zero-value knobs.
func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.WidenAt == 0 {
		o.WidenAt = 0.5
	}
	if o.TightenAt == 0 {
		o.TightenAt = 0.125
	}
	if o.HoldRounds <= 0 {
		o.HoldRounds = o.Window
	}
	return o
}

// Validate checks the resolved options.
func (o AdaptiveOptions) Validate() error {
	if err := o.Envelope.Validate(); err != nil {
		return err
	}
	o = o.withDefaults()
	if o.WidenAt <= 0 || o.WidenAt > 1 {
		return fmt.Errorf("%w: WidenAt %v out of (0,1]", ErrConfig, o.WidenAt)
	}
	if o.TightenAt < 0 || o.TightenAt >= o.WidenAt {
		return fmt.Errorf("%w: TightenAt %v must be in [0, WidenAt)", ErrConfig, o.TightenAt)
	}
	return nil
}

// LossSample is one round's estimator input: how many members the
// coordinator counted on and how many failed to reply.
type LossSample struct {
	Expected, Missed int32
}

// AdaptiveState is a monitoring snapshot of the estimator; see
// AdaptiveCoordinator.Snapshot.
type AdaptiveState struct {
	// Level is the current envelope level.
	Level int
	// TMin and TMax are the current operating point.
	TMin, TMax Tick
	// LossMilli is the windowed loss estimate in thousandths.
	LossMilli int64
	// Window holds the retained samples in ring order (not time order —
	// the snapshot is a gauge, not a trace).
	Window []LossSample
}

// AdaptiveCoordinator wraps a Coordinator with loss-driven retuning: it
// estimates the loss rate from the beat gaps each round exposes (the
// members whose reply did not arrive), and moves the inner coordinator
// between the envelope's operating points — widening under sustained
// loss so the protocol degrades toward plain-heartbeat robustness
// instead of false-confirming, tightening back only after a full streak
// of clean rounds. Every move is surfaced as an ActRetune action, so
// supervisors and conformance checkers see each transition.
//
// Like every Machine it is driven under its node's lock; the level and
// estimator window are additionally published through sync/atomic so
// Snapshot may be called from any goroutine under a wall clock.
type AdaptiveCoordinator struct {
	inner  *Coordinator
	opts   AdaptiveOptions
	levels int

	// level and lossMilli are gauges: written by the machine goroutine,
	// readable concurrently. Atomic-everywhere (see hbvet
	// sync-discipline).
	level     int32
	lossMilli int64
	// ring is the estimator window, one packed LossSample per slot;
	// every access is atomic so Snapshot can read it lock-free.
	ring []int64

	pos, filled     int
	sumExp, sumMiss int64
	clean           int
	acts            []Action
}

var _ Machine = (*AdaptiveCoordinator)(nil)

// NewAdaptiveCoordinator builds an adaptive p[0]. The TMin/TMax of cc are
// ignored: the coordinator starts at the envelope's level-0 point.
func NewAdaptiveCoordinator(cc CoordinatorConfig, opts AdaptiveOptions) (*AdaptiveCoordinator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	cc.Config.TMin, cc.Config.TMax = opts.Envelope.Point(0)
	inner, err := NewCoordinator(cc)
	if err != nil {
		return nil, err
	}
	return &AdaptiveCoordinator{
		inner:  inner,
		opts:   opts,
		levels: opts.Envelope.Levels(),
		ring:   make([]int64, opts.Window),
	}, nil
}

// Inner exposes the wrapped coordinator (membership inspection in tests).
func (a *AdaptiveCoordinator) Inner() *Coordinator { return a.inner }

// Envelope returns the clamp the coordinator retunes within.
func (a *AdaptiveCoordinator) Envelope() Envelope { return a.opts.Envelope }

// Level returns the current envelope level.
func (a *AdaptiveCoordinator) Level() int { return int(atomic.LoadInt32(&a.level)) }

// OperatingPoint returns the current (tmin, tmax).
func (a *AdaptiveCoordinator) OperatingPoint() (tmin, tmax Tick) {
	return a.opts.Envelope.Point(a.Level())
}

// Snapshot returns the estimator gauges; safe from any goroutine.
func (a *AdaptiveCoordinator) Snapshot() AdaptiveState {
	st := AdaptiveState{
		Level:     a.Level(),
		LossMilli: atomic.LoadInt64(&a.lossMilli),
	}
	st.TMin, st.TMax = a.opts.Envelope.Point(st.Level)
	for i := range a.ring {
		packed := atomic.LoadInt64(&a.ring[i])
		if packed == 0 {
			continue
		}
		st.Window = append(st.Window, unpackSample(packed))
	}
	return st
}

// packSample encodes a sample with a presence marker in the top bit
// region (Expected+1), so an all-zero slot means "empty".
func packSample(s LossSample) int64 {
	return int64(s.Expected+1)<<32 | int64(s.Missed)
}

func unpackSample(packed int64) LossSample {
	return LossSample{Expected: int32(packed>>32) - 1, Missed: int32(packed & 0xFFFFFFFF)}
}

// Start implements Machine.
func (a *AdaptiveCoordinator) Start(now Tick) []Action { return a.inner.Start(now) }

// OnBeat implements Machine.
func (a *AdaptiveCoordinator) OnBeat(b Beat, now Tick) []Action { return a.inner.OnBeat(b, now) }

// Crash implements Machine.
func (a *AdaptiveCoordinator) Crash(now Tick) []Action { return a.inner.Crash(now) }

// Status implements Machine.
func (a *AdaptiveCoordinator) Status() Status { return a.inner.Status() }

// OnTimer implements Machine. At each round boundary the estimator
// ingests the closing round's reply gaps first; if the windowed loss
// estimate crosses a threshold, the inner coordinator is retuned before
// it applies the acceleration rule — so a widen converts the round into
// a grace round at the new operating point instead of a false
// confirmation — and the ActRetune is prepended to the round's actions.
func (a *AdaptiveCoordinator) OnTimer(id TimerID, now Tick) []Action {
	if id != TimerRound || a.inner.Status() != StatusActive {
		return a.inner.OnTimer(id, now)
	}
	members, missed := a.inner.roundObservation()
	tmin, tmax, retuned := a.observeRound(members, missed)
	if !retuned {
		return a.inner.OnTimer(id, now)
	}
	// The point came from Envelope.Point, so Retune cannot reject it.
	_ = a.inner.Retune(tmin, tmax)
	a.acts = append(a.acts[:0], RetuneAction(tmin, tmax))
	a.acts = append(a.acts, a.inner.OnTimer(id, now)...)
	return a.acts
}

// observeRound pushes one round's sample and applies the hysteresis
// rule. It reports the new operating point when the level changed.
func (a *AdaptiveCoordinator) observeRound(members, missed int) (tmin, tmax Tick, retuned bool) {
	if members > 0 {
		evicted := atomic.LoadInt64(&a.ring[a.pos])
		if evicted != 0 {
			s := unpackSample(evicted)
			a.sumExp -= int64(s.Expected)
			a.sumMiss -= int64(s.Missed)
		} else {
			a.filled++
		}
		atomic.StoreInt64(&a.ring[a.pos], packSample(LossSample{Expected: int32(members), Missed: int32(missed)}))
		a.pos = (a.pos + 1) % len(a.ring)
		a.sumExp += int64(members)
		a.sumMiss += int64(missed)
	}
	if a.sumExp == 0 {
		return 0, 0, false
	}
	rate := float64(a.sumMiss) / float64(a.sumExp)
	atomic.StoreInt64(&a.lossMilli, a.sumMiss*1000/a.sumExp)

	level := int(atomic.LoadInt32(&a.level))
	switch {
	case rate >= a.opts.WidenAt:
		a.clean = 0
		if level < a.levels-1 {
			// Widen one level: samples gathered at the abandoned point do
			// not argue about the new one, so the window restarts.
			level++
			a.resetWindow()
			atomic.StoreInt32(&a.level, int32(level))
		}
		// At the top of the envelope this is a saturated grace: the point
		// is unchanged, but the retune still resets every member budget,
		// so as long as the measured loss stays at or above WidenAt the
		// coordinator behaves like a plain (non-accelerating) heartbeat —
		// graceful degradation instead of a false confirmation. The
		// rolling window keeps filling, so acceleration (and with it real
		// suspicion) resumes as soon as the loss subsides.
		tmin, tmax = a.opts.Envelope.Point(level)
		return tmin, tmax, true
	case rate <= a.opts.TightenAt:
		a.clean++
		if a.clean < a.opts.HoldRounds || level == 0 {
			return 0, 0, false
		}
		level--
	default:
		a.clean = 0
		return 0, 0, false
	}
	a.clean = 0
	a.resetWindow()
	atomic.StoreInt32(&a.level, int32(level))
	tmin, tmax = a.opts.Envelope.Point(level)
	return tmin, tmax, true
}

// resetWindow clears the estimator after a retune: samples gathered at
// the abandoned operating point do not argue about the new one.
func (a *AdaptiveCoordinator) resetWindow() {
	for i := range a.ring {
		atomic.StoreInt64(&a.ring[i], 0)
	}
	a.pos, a.filled = 0, 0
	a.sumExp, a.sumMiss = 0, 0
	atomic.StoreInt64(&a.lossMilli, 0)
}
