// Rejoin-under-partition: the paper-level requirements R1–R3 (see
// internal/models) reinterpreted as runtime monitors over a detector
// cluster's event trace. This file lives in package core_test so it can
// drive the full runtime stack (detector + faults) against the core
// machines without an import cycle.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
)

// TestRejoinAfterLongPartition partitions a dynamic member for longer
// than the responder bound 3·tmax − tmin — long enough that every process
// provably winds down — then heals the link. With the self-healing
// supervisor in place the member must rejoin and the network re-form,
// and the recorded trace must satisfy the runtime reading of R1–R3:
//
//	R1: the coordinator suspects the partitioned process within its
//	    detection bound of the partition onset.
//	R2: no healthy participant is non-voluntarily inactivated while the
//	    coordinator is still up (participant winddown follows, never
//	    precedes, the coordinator's).
//	R3: the coordinator's own non-voluntary inactivation is justified: it
//	    happens at or after the partition, with a same-instant suspicion.
func TestRejoinAfterLongPartition(t *testing.T) {
	cfg := core.Config{TMin: 2, TMax: 10}
	const (
		partitionAt = 500
		healAt      = 600 // duration 100 >> ResponderBound (3·10−2 = 28)
		horizon     = 3000
	)
	if healAt-partitionAt <= int(cfg.ResponderBound()) {
		t.Fatalf("partition window %d not past the responder bound %d",
			healAt-partitionAt, cfg.ResponderBound())
	}
	c, err := detector.NewCluster(detector.ClusterConfig{
		Protocol:    detector.ProtocolDynamic,
		Core:        cfg,
		N:           2,
		Seed:        31,
		AllowRejoin: true,
		Faults: &faults.Schedule{Events: []faults.Event{
			{At: partitionAt, Kind: faults.KindPartition, Node: 2},
			{At: healAt, Kind: faults.KindHeal, Node: 2},
		}},
		Heal: &detector.SupervisorConfig{
			CheckEvery: 8,
			Backoff:    detector.Backoff{Base: 2, Max: 32},
			Seed:       31,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Sim.RunUntil(horizon)

	// --- End state: the healed member rejoined and the network re-formed.
	for id := core.ProcID(1); id <= 2; id++ {
		if got := c.Participants[id].Status(); got != core.StatusActive {
			t.Errorf("p[%d] = %v at horizon, want active", id, got)
		}
	}
	if got := c.Coordinator.Status(); got != core.StatusActive {
		t.Errorf("p[0] = %v at horizon, want active", got)
	}
	joins := 0
	for _, e := range c.Events {
		if e.Node == 2 && e.Kind == detector.EventJoined {
			joins++
		}
	}
	if joins < 2 {
		t.Fatalf("p[2] joined %d times, want initial + post-heal: %v", joins, c.Events)
	}

	// --- Clean prefix: nothing suspicious before the partition.
	for _, e := range c.Events {
		if e.Time < partitionAt &&
			(e.Kind == detector.EventSuspect || e.Kind == detector.EventInactivated) {
			t.Fatalf("event before any fault: %+v", e)
		}
	}

	// --- R1: suspicion of the partitioned process within the bound.
	var suspectAt core.Tick = -1
	for _, e := range c.Events {
		if e.Node == 0 && e.Kind == detector.EventSuspect && e.Proc == 2 {
			suspectAt = e.Time
			break
		}
	}
	if suspectAt < 0 {
		t.Fatalf("R1: partitioned p[2] never suspected: %v", c.Events)
	}
	if bound := core.Tick(partitionAt) + cfg.CoordinatorDetectionBound() + cfg.TMin; suspectAt > bound {
		t.Fatalf("R1: suspicion at %d, after the bound %d", suspectAt, bound)
	}

	// --- R2/R3: locate the first non-voluntary inactivations.
	firstInact := map[int]core.Tick{} // node -> time, first non-voluntary only
	for _, e := range c.Events {
		if e.Kind == detector.EventInactivated && !e.Voluntary {
			if _, seen := firstInact[int(e.Node)]; !seen {
				firstInact[int(e.Node)] = e.Time
			}
		}
	}
	coordInact, coordDied := firstInact[0]
	if !coordDied {
		t.Fatalf("coordinator never wound down despite the partition: %v", c.Events)
	}
	// R3: justified — at or after the partition, with same-instant suspicion.
	if coordInact < partitionAt {
		t.Fatalf("R3: coordinator inactivated at %d, before the partition", coordInact)
	}
	if coordInact < suspectAt {
		t.Fatalf("R3: coordinator inactivated at %d without a prior/same-instant suspicion (suspect at %d)",
			coordInact, suspectAt)
	}
	// R2: the healthy participant p[1] never goes down while p[0] is up.
	if p1Inact, died := firstInact[1]; died && p1Inact < coordInact {
		t.Fatalf("R2: p[1] inactivated at %d while the coordinator was alive until %d",
			p1Inact, coordInact)
	}

	// --- Self-healing actually did the work: restarts happened.
	if c.Supervisor.Restarts(0) == 0 {
		t.Fatal("supervisor never restarted the coordinator")
	}
	if c.Supervisor.Restarts(2) == 0 {
		t.Fatal("supervisor never restarted the partitioned node")
	}
}
