package core

import "fmt"

// Responder implements p[1] of the binary protocol and p[i] of the static
// protocol: it answers every beat from p[0] immediately and inactivates
// after ResponderBound ticks without one.
type Responder struct {
	cfg     Config
	id      ProcID
	status  Status
	started bool
	// acts is the scratch slice behind every returned action list (see
	// the Machine contract).
	acts []Action
}

var _ Machine = (*Responder)(nil)

// NewResponder builds a responder with the given process ID (must not be
// the coordinator's).
func NewResponder(cfg Config, id ProcID) (*Responder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id == CoordinatorID {
		return nil, fmt.Errorf("%w: responder cannot be process 0", ErrConfig)
	}
	return &Responder{cfg: cfg, id: id, status: StatusActive}, nil
}

// ID returns the responder's process ID.
func (r *Responder) ID() ProcID { return r.id }

// Status implements Machine.
func (r *Responder) Status() Status { return r.status }

// Start implements Machine: arm the crash-suspicion watchdog.
func (r *Responder) Start(now Tick) []Action {
	if r.started {
		return nil
	}
	r.started = true
	r.acts = append(r.acts[:0], SetTimer(TimerExpiry, r.cfg.ResponderBound()))
	return r.acts
}

// OnBeat implements Machine: reply right away and push out the watchdog.
func (r *Responder) OnBeat(b Beat, now Tick) []Action {
	if r.status != StatusActive || b.From != CoordinatorID {
		return nil
	}
	r.acts = append(r.acts[:0],
		SendBeat(CoordinatorID, Beat{From: r.id, Stay: true}),
		SetTimer(TimerExpiry, r.cfg.ResponderBound()),
	)
	return r.acts
}

// OnTimer implements Machine: the watchdog fired, so p[0] or the channel is
// presumed down.
func (r *Responder) OnTimer(id TimerID, now Tick) []Action {
	if r.status != StatusActive || id != TimerExpiry {
		return nil
	}
	r.status = StatusInactive
	r.acts = append(r.acts[:0], Inactivate(false))
	return r.acts
}

// Crash implements Machine.
func (r *Responder) Crash(now Tick) []Action {
	if r.status != StatusActive {
		return nil
	}
	r.status = StatusCrashed
	r.acts = append(r.acts[:0], CancelTimer(TimerExpiry), Inactivate(true))
	return r.acts
}

// Participant implements p[i] of the expanding and dynamic protocols: it
// solicits p[0] with a beat every tmin until acknowledged (joined), then
// behaves like a Responder. With Dynamic set it can additionally Leave.
type Participant struct {
	cfg     Config
	id      ProcID
	dynamic bool
	status  Status
	joined  bool
	leaving bool
	started bool
	inc     uint8
	// acts is the scratch slice behind every returned action list (see
	// the Machine contract).
	acts []Action
}

var _ Machine = (*Participant)(nil)

// NewParticipant builds an expanding-protocol joiner; dynamic additionally
// enables the leave half of the dynamic protocol.
func NewParticipant(cfg Config, id ProcID, dynamic bool) (*Participant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id == CoordinatorID {
		return nil, fmt.Errorf("%w: participant cannot be process 0", ErrConfig)
	}
	return &Participant{cfg: cfg, id: id, dynamic: dynamic, status: StatusActive}, nil
}

// ID returns the participant's process ID.
func (p *Participant) ID() ProcID { return p.id }

// Status implements Machine.
func (p *Participant) Status() Status { return p.status }

// JoinedProtocol reports whether p[0] has acknowledged this participant.
func (p *Participant) JoinedProtocol() bool { return p.joined }

// Incarnation returns the participant's current incarnation number.
func (p *Participant) Incarnation() uint8 { return p.inc }

// beat returns this participant's heartbeat with the given Stay parameter.
func (p *Participant) beat(stay bool) Beat {
	return Beat{From: p.id, Stay: stay, Inc: p.inc}
}

// Start implements Machine: send the first join solicitation immediately
// (the expanding protocol's initial state is urgent — a process cannot
// abstain by idling) and arm both the resend and give-up timers.
func (p *Participant) Start(now Tick) []Action {
	if p.started {
		return nil
	}
	p.started = true
	p.acts = append(p.acts[:0],
		SendBeat(CoordinatorID, p.beat(true)),
		SetTimer(TimerJoinResend, p.cfg.TMin),
		SetTimer(TimerExpiry, p.cfg.JoinerBound()),
	)
	return p.acts
}

// OnBeat implements Machine. The first beat from p[0] acknowledges the
// join. A leaving participant answers any p[0] beat with a false beat, and
// treats a false beat from p[0] as the leave acknowledgement.
func (p *Participant) OnBeat(b Beat, now Tick) []Action {
	if p.status != StatusActive || b.From != CoordinatorID {
		return nil
	}
	if p.leaving {
		if !b.Stay {
			if b.Inc != p.inc {
				return nil // ack for an earlier incarnation's leave
			}
			// Leave acknowledged.
			p.status = StatusLeft
			p.acts = append(p.acts[:0],
				CancelTimer(TimerJoinResend),
				CancelTimer(TimerExpiry),
				Left(),
			)
			return p.acts
		}
		// p[0] has not processed the leave yet; repeat it.
		p.acts = append(p.acts[:0], SendBeat(CoordinatorID, p.beat(false)))
		return p.acts
	}
	if !b.Stay {
		return nil // stray leave-ack; we are not leaving
	}
	actions := append(p.acts[:0],
		SendBeat(CoordinatorID, p.beat(true)),
		SetTimer(TimerExpiry, p.cfg.ResponderBound()),
	)
	if !p.joined {
		p.joined = true
		actions = append(actions,
			CancelTimer(TimerJoinResend),
			Joined(),
		)
	}
	p.acts = actions
	return actions
}

// OnTimer implements Machine.
func (p *Participant) OnTimer(id TimerID, now Tick) []Action {
	if p.status != StatusActive {
		return nil
	}
	switch id {
	case TimerJoinResend:
		if p.joined && !p.leaving {
			return nil
		}
		// Re-solicit (join, or leave retry) every tmin.
		p.acts = append(p.acts[:0],
			SendBeat(CoordinatorID, p.beat(!p.leaving)),
			SetTimer(TimerJoinResend, p.cfg.TMin),
		)
		return p.acts
	case TimerExpiry:
		if p.leaving {
			// A leaving process is never inactivated non-voluntarily;
			// it keeps retrying the leave instead.
			return nil
		}
		p.status = StatusInactive
		p.acts = append(p.acts[:0],
			CancelTimer(TimerJoinResend),
			Inactivate(false),
		)
		return p.acts
	default:
		return nil
	}
}

// Leave starts a graceful departure (dynamic protocol only): the
// participant beats p[0] with a false parameter, retrying every tmin, until
// p[0] acknowledges in kind. From this point the participant can no longer
// be non-voluntarily inactivated.
func (p *Participant) Leave(now Tick) ([]Action, error) {
	if !p.dynamic {
		return nil, fmt.Errorf("%w: leave requires the dynamic protocol", ErrConfig)
	}
	if p.status != StatusActive || p.leaving {
		return nil, nil
	}
	p.leaving = true
	p.acts = append(p.acts[:0],
		SendBeat(CoordinatorID, p.beat(false)),
		SetTimer(TimerJoinResend, p.cfg.TMin),
		CancelTimer(TimerExpiry),
	)
	return p.acts, nil
}

// Rejoin re-enters the protocol after a completed leave (the rejoin
// extension; requires a coordinator built with AllowRejoin). The
// participant bumps its incarnation and solicits afresh; beats from its
// earlier incarnations are ignored by the coordinator.
func (p *Participant) Rejoin(now Tick) ([]Action, error) {
	if !p.dynamic {
		return nil, fmt.Errorf("%w: rejoin requires the dynamic protocol", ErrConfig)
	}
	if p.status != StatusLeft {
		return nil, fmt.Errorf("%w: rejoin requires a completed leave (status %v)", ErrConfig, p.status)
	}
	if p.inc == 0x7F {
		return nil, fmt.Errorf("%w: incarnation space exhausted", ErrConfig)
	}
	p.inc++
	p.status = StatusActive
	p.joined = false
	p.leaving = false
	p.acts = append(p.acts[:0],
		SendBeat(CoordinatorID, p.beat(true)),
		SetTimer(TimerJoinResend, p.cfg.TMin),
		SetTimer(TimerExpiry, p.cfg.JoinerBound()),
	)
	return p.acts, nil
}

// Crash implements Machine.
func (p *Participant) Crash(now Tick) []Action {
	if p.status != StatusActive {
		return nil
	}
	p.status = StatusCrashed
	p.acts = append(p.acts[:0],
		CancelTimer(TimerJoinResend),
		CancelTimer(TimerExpiry),
		Inactivate(true),
	)
	return p.acts
}
