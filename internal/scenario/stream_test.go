package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/conform"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/models"
)

// streamCampaign is adaptiveCampaign with online checking: the trials run
// a StreamChecker as their observer instead of record-and-replay.
func streamCampaign(variant models.Variant, sc TopologyScenario, trials, workers int) CampaignConfig {
	cfg := adaptiveCampaign(variant, sc, trials, workers)
	cfg.Stream = true
	return cfg
}

// requireNoDivergenceIncidents runs a streaming campaign and fails on any
// unconfirmed-divergence incident, rendering the first one.
func requireNoDivergenceIncidents(t *testing.T, cfg CampaignConfig) *CampaignResult {
	t.Helper()
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	for _, inc := range res.Incidents {
		if inc.Kind == conform.IncidentDivergence {
			var b strings.Builder
			if err := inc.Render(&b, "divergence incident"); err != nil {
				t.Fatalf("render: %v", err)
			}
			t.Fatalf("unconfirmed divergence incident:\n%s", b.String())
		}
	}
	return res
}

// TestStreamCampaignMatchesOffline pins the campaign-scale differential:
// the same chaos campaign checked online (StreamChecker per trial) and
// offline (record, then replay) must agree on every aggregate — same
// retunes, saturations, confirmed/degraded divergences, survival — with
// the streaming run reporting no incidents the offline run did not.
func TestStreamCampaignMatchesOffline(t *testing.T) {
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	offline := requireNoUnconfirmed(t, adaptiveCampaign(models.Static, sc, 20, 4))
	stream := requireNoDivergenceIncidents(t, streamCampaign(models.Static, sc, 20, 4))
	if stream.Retunes == 0 {
		t.Fatal("streaming campaign saw no retunes — the adaptive path was never exercised")
	}
	// Campaigns must agree aggregate-for-aggregate once the streaming-only
	// incident list is set aside.
	norm := *stream
	norm.Incidents = nil
	if !reflect.DeepEqual(&norm, offline) {
		t.Fatalf("streaming and offline campaigns disagree:\n  stream:  %+v\n  offline: %+v", &norm, offline)
	}
}

// TestStreamCampaignWorkerDeterminism: online checking preserves the
// campaign determinism guarantee at any worker count.
func TestStreamCampaignWorkerDeterminism(t *testing.T) {
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	seq := requireNoDivergenceIncidents(t, streamCampaign(models.Static, sc, 20, 1))
	par := requireNoDivergenceIncidents(t, streamCampaign(models.Static, sc, 20, 8))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("worker count changed the streaming campaign result:\n  1 worker: %+v\n  8 workers: %+v", seq, par)
	}
}

// TestStreamCampaignComposesWithHeal: streaming adaptive conformance is
// the one mode that runs under a supervisor — restarts surface as
// by-design labels the piecewise checker confirms, not as failures.
func TestStreamCampaignComposesWithHeal(t *testing.T) {
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamCampaign(models.Static, sc, 10, 2)
	cfg.Heal = &detector.SupervisorConfig{}
	res := requireNoDivergenceIncidents(t, cfg)
	if res.Restarts.N() != 10 {
		t.Fatalf("restart samples = %d, want one per trial", res.Restarts.N())
	}
}

// TestStreamCampaignValidation pins the configuration errors.
func TestStreamCampaignValidation(t *testing.T) {
	sc, err := RackLossScenario(2)
	if err != nil {
		t.Fatal(err)
	}
	base := CampaignConfig{Schedule: sc.Schedule, Horizon: 100, Trials: 1}

	noConform := base
	noConform.Stream = true
	if _, err := RunCampaign(noConform); !errors.Is(err, ErrScenario) {
		t.Fatalf("Stream without Conform: err = %v, want ErrScenario", err)
	}

	// Heal still cannot combine with offline conformance…
	offlineHeal := streamCampaign(models.Static, sc, 1, 1)
	offlineHeal.Stream = false
	offlineHeal.Heal = &detector.SupervisorConfig{}
	if _, err := RunCampaign(offlineHeal); !errors.Is(err, ErrScenario) {
		t.Fatalf("offline Conform+Heal: err = %v, want ErrScenario", err)
	}

	// …nor with a streaming check that has no envelope (restarts would be
	// unconfirmed divergences, not by-design ones).
	plainHeal := base
	plainHeal.Stream = true
	plainHeal.Heal = &detector.SupervisorConfig{}
	plainHeal.Conform = &conform.CampaignCheck{
		Model: models.Config{TMin: 2, TMax: 4, Variant: models.Static, N: 2, Fixed: true},
	}
	if _, err := RunCampaign(plainHeal); !errors.Is(err, ErrScenario) {
		t.Fatalf("plain streaming Conform+Heal: err = %v, want ErrScenario", err)
	}
}

// TestStreamMutantIncidentReachesSupervisor wires the full grading path:
// a defective detector (participant watchdog one tick late) under a
// supervisor with the stream checker attached must produce a structured
// divergence incident, count it in the supervisor's metrics, and emit it
// as an EventIncident carrying the one-line summary.
func TestStreamMutantIncidentReachesSupervisor(t *testing.T) {
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	check := &conform.CampaignCheck{Model: model}
	sc, err := conform.NewStreamChecker(conform.StreamConfig{Check: check, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	wrap, err := conform.Mutation("expiry+1")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := conform.ClusterFor(model)
	if err != nil {
		t.Fatal(err)
	}
	cc.Seed = 3
	cc.Faults = &faults.Schedule{Events: []faults.Event{
		{At: 9, Kind: faults.KindCrash, Node: 0},
	}}
	cc.WrapMachine = wrap
	cc.Observe = sc
	cc.Heal = &detector.SupervisorConfig{}
	c, err := detector.NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	sc.BindSupervisor(c.Supervisor)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(30)
	c.Stop()
	res, err := sc.Finish(0)
	if err != nil {
		t.Fatal(err)
	}

	if res.Unconfirmed == nil {
		t.Fatal("mutant expiry+1 produced no divergence incident")
	}
	if got := c.Supervisor.Metrics().Incidents; got < 1 {
		t.Fatalf("supervisor Incidents = %d, want >= 1", got)
	}
	found := false
	for _, e := range c.Events {
		if e.Kind == detector.EventIncident && e.Detail == res.Unconfirmed.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EventIncident with detail %q in cluster events", res.Unconfirmed.String())
	}
}

// TestStreamFleetScale is the fleet stress: thousands of independent
// 2-endpoint clusters under the rack-loss chaos schedule, each checked
// online. 10k monitored endpoints at full size (5000 trials x 2
// participants); shortened under -short.
func TestStreamFleetScale(t *testing.T) {
	trials := 5000
	if testing.Short() {
		trials = 250
	}
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamCampaign(models.Static, sc, trials, 8)
	res := requireNoDivergenceIncidents(t, cfg)
	if got := res.Survived.Trials; got != trials {
		t.Fatalf("observed %d trials, want %d", got, trials)
	}
	if res.Retunes == 0 || res.Saturations == 0 {
		t.Fatalf("fleet campaign never exercised the envelope: retunes=%d saturations=%d",
			res.Retunes, res.Saturations)
	}
}

// benchCampaign is the online-vs-offline cost comparison behind
// EXPERIMENTS.md's streaming-overhead numbers: the same 10-trial
// rack-loss chaos campaign, checked by record-then-replay (offline) or by
// a StreamChecker riding each trial's cluster (online).
func benchCampaign(b *testing.B, stream bool) {
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		b.Fatal(err)
	}
	cfg := adaptiveCampaign(models.Static, sc, 10, 1)
	cfg.Stream = stream
	// Warm the shared per-level spec cache so the one-off LTS builds are
	// not attributed to whichever benchmark runs first.
	if _, err := RunCampaign(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCampaign(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignOffline(b *testing.B) { benchCampaign(b, false) }
func BenchmarkCampaignStream(b *testing.B)  { benchCampaign(b, true) }
