// Package scenario runs Monte-Carlo experiments on simulated heartbeat
// clusters: detection latency under crash injection, steady-state message
// overhead, and false-detection probability under message loss. These
// regenerate the quantitative trade-off the ICDCS'98 paper argues for —
// acceleration keeps the plain protocol's detection latency at a fraction
// of its message rate, and tolerates bursts of ~log2(tmax/tmin) losses
// where the plain protocol tolerates MissLimit.
package scenario

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrScenario reports an invalid experiment configuration.
var ErrScenario = errors.New("scenario: invalid configuration")

// DetectionConfig parameterises a crash-detection latency experiment.
type DetectionConfig struct {
	// Cluster is the deployment under test (its Seed is re-derived per
	// trial).
	Cluster detector.ClusterConfig
	// CrashAt is the virtual time the victim crashes.
	CrashAt sim.Time
	// CrashJitter, when positive, offsets each trial's crash time by a
	// per-trial uniform draw from [0, CrashJitter), decorrelating the
	// crash from the protocol's round phase.
	CrashJitter sim.Time
	// Victim is the participant to crash (defaults to 1).
	Victim core.ProcID
	// Horizon bounds each trial.
	Horizon sim.Time
	// Trials is the number of independent runs.
	Trials int
	// Seed derives per-trial seeds.
	Seed int64
}

// DetectionResult summarises a detection experiment.
type DetectionResult struct {
	// Delays are crash-to-suspicion latencies in ticks, one per trial
	// that detected.
	Delays stats.Sample
	// Missed counts trials with no detection before the horizon.
	Missed int
	// Bound is the protocol's worst-case detection bound (plus one
	// round-trip for the crash-to-missed-beat offset).
	Bound core.Tick
}

// MeasureDetection crashes the victim in each trial and measures the time
// until the coordinator suspects it.
func MeasureDetection(cfg DetectionConfig) (*DetectionResult, error) {
	if cfg.Trials < 1 || cfg.Horizon <= cfg.CrashAt {
		return nil, fmt.Errorf("%w: need trials >= 1 and horizon > crash time", ErrScenario)
	}
	if cfg.Victim == 0 {
		cfg.Victim = 1
	}
	out := &DetectionResult{
		Bound: cfg.Cluster.Core.CoordinatorDetectionBound() + cfg.Cluster.Core.TMin,
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		cc := cfg.Cluster
		cc.Seed = cfg.Seed + int64(trial)
		c, err := detector.NewCluster(cc)
		if err != nil {
			return nil, err
		}
		if err := c.Start(); err != nil {
			return nil, err
		}
		crashAt := cfg.CrashAt
		if cfg.CrashJitter > 0 {
			crashAt += sim.Time(c.Sim.Rand().Int63n(int64(cfg.CrashJitter)))
		}
		c.Sim.RunUntil(crashAt)
		victim, ok := c.Participants[cfg.Victim]
		if !ok {
			return nil, fmt.Errorf("%w: no participant %d", ErrScenario, cfg.Victim)
		}
		victim.Crash()
		c.Sim.RunUntil(cfg.Horizon)
		if ev, found := c.FirstEvent(netem.NodeID(core.CoordinatorID), detector.EventSuspect); found {
			out.Delays.Add(float64(ev.Time - core.Tick(crashAt)))
		} else {
			out.Missed++
		}
	}
	return out, nil
}

// OverheadConfig parameterises a steady-state message-rate experiment.
type OverheadConfig struct {
	Cluster detector.ClusterConfig
	// Duration is the fault-free observation window.
	Duration sim.Time
}

// OverheadResult summarises steady-state traffic.
type OverheadResult struct {
	// MessagesPerTick is the total send rate across all links.
	MessagesPerTick float64
	// Sent is the raw message count.
	Sent uint64
	// FalselyInactivated reports a protocol breakdown during the
	// fault-free window (should never happen without loss).
	FalselyInactivated bool
}

// MeasureOverhead runs the cluster fault-free and reports the message
// rate.
func MeasureOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: need a positive duration", ErrScenario)
	}
	c, err := detector.NewCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	c.Sim.RunUntil(cfg.Duration)
	st := c.Net.Stats()
	_, inactivated := c.FirstEvent(netem.NodeID(core.CoordinatorID), detector.EventInactivated)
	return &OverheadResult{
		MessagesPerTick:    float64(st.Total.Sent) / float64(cfg.Duration),
		Sent:               st.Total.Sent,
		FalselyInactivated: inactivated,
	}, nil
}

// PlainOverhead computes the baseline's message rate analytically for
// comparison: 2·n beats per period (each member exchange is a beat and a
// reply).
func PlainOverhead(n int, period core.Tick) float64 {
	return 2 * float64(n) / float64(period)
}

// ReliabilityConfig parameterises a false-detection experiment: the
// cluster runs fault-free but with lossy links; any non-voluntary
// inactivation is a false detection.
type ReliabilityConfig struct {
	Cluster detector.ClusterConfig
	// LossProb is the per-message loss probability applied to all links.
	LossProb float64
	// Horizon bounds each trial.
	Horizon sim.Time
	// Trials is the number of independent runs.
	Trials int
	// Seed derives per-trial seeds.
	Seed int64
}

// ReliabilityResult summarises false-detection frequency.
type ReliabilityResult struct {
	// FalseDetection counts trials where some process non-voluntarily
	// inactivated despite no crash.
	FalseDetection stats.Ratio
	// TimeToFalse samples the inactivation times of failing trials.
	TimeToFalse stats.Sample
}

// MeasureReliability runs fault-free trials under loss and counts
// breakdowns.
func MeasureReliability(cfg ReliabilityConfig) (*ReliabilityResult, error) {
	if cfg.Trials < 1 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: need trials >= 1 and a positive horizon", ErrScenario)
	}
	out := &ReliabilityResult{}
	for trial := 0; trial < cfg.Trials; trial++ {
		cc := cfg.Cluster
		cc.Seed = cfg.Seed + int64(trial)
		cc.Link.LossProb = cfg.LossProb
		c, err := detector.NewCluster(cc)
		if err != nil {
			return nil, err
		}
		if err := c.Start(); err != nil {
			return nil, err
		}
		c.Sim.RunUntil(cfg.Horizon)
		failed := false
		for _, e := range c.Events {
			if e.Kind == detector.EventInactivated && !e.Voluntary {
				failed = true
				out.TimeToFalse.Add(float64(e.Time))
				break
			}
		}
		out.FalseDetection.Observe(failed)
	}
	return out, nil
}

// CampaignConfig parameterises a fault-campaign experiment: the cluster
// runs under a scripted fault schedule — optionally with a self-healing
// supervisor — and the outcome of each trial is recorded.
type CampaignConfig struct {
	// Cluster is the deployment under test (its Seed is re-derived per
	// trial; Faults and Heal are overridden by the fields below).
	Cluster detector.ClusterConfig
	// Schedule is the fault script applied to every trial.
	Schedule *faults.Schedule
	// Heal, if non-nil, runs each trial under a supervisor.
	Heal *detector.SupervisorConfig
	// Horizon bounds each trial.
	Horizon sim.Time
	// Trials is the number of independent runs.
	Trials int
	// Seed derives per-trial seeds.
	Seed int64
	// Conform, if non-nil, records every trial's abstract event trace and
	// checks it for inclusion in the named model's LTS; divergences land in
	// CampaignResult.Divergences. The cluster's protocol shape (variant,
	// timing constants, N) is derived from Conform.Model, overriding the
	// corresponding Cluster fields, so runtime and model cannot drift
	// apart; the Cluster's Link and Seed knobs still apply. Requires a
	// model-expressible Schedule (conform.CheckSchedule) and Heal == nil —
	// supervisor restarts have no model counterpart.
	//
	// When Conform.Envelope is set the campaign is adaptive: the Cluster
	// must carry matching core.AdaptiveOptions (the envelopes are compared
	// field by field), traces are checked piecewise across the envelope's
	// per-level specifications, and only unconfirmed divergences land in
	// Divergences — confirmed ones (envelope retunes, by-design leave and
	// rejoin events) are tallied in Retunes and ConfirmedDivergences.
	Conform *conform.CampaignCheck
	// Stream, if set (requires Conform), checks each trial online instead
	// of record-and-replay: a conform.StreamChecker rides the cluster as
	// its observer and advances the model frontier event by event, so a
	// defect surfaces the moment it happens, with bounded memory, not at
	// trial teardown. Divergences and R1–R3 violations land as structured
	// incidents in CampaignResult.Incidents, and — when Heal is set — on
	// the trial supervisor's grading path (detector.EventIncident,
	// SupervisorMetrics.Incidents). Streaming adaptive campaigns
	// (Conform.Envelope set) are the one conformance mode that composes
	// with Heal: supervisor restarts carry by-design non-model labels the
	// piecewise checker classifies as confirmed divergences.
	Stream bool
	// Workers is the number of concurrent trials; values below 2 run on
	// the calling goroutine. Each trial owns its simulator and cluster and
	// derives its seed from Seed and the trial index alone, so the result
	// is identical at any worker count.
	Workers int
}

// CampaignResult summarises a fault campaign.
type CampaignResult struct {
	// Survived counts trials whose coordinator is still active at the
	// horizon.
	Survived stats.Ratio
	// Restarts samples supervisor restarts per trial (all nodes summed).
	Restarts stats.Sample
	// Events samples liveness events per trial.
	Events stats.Sample
	// Faults aggregates the fault layer's counters across all trials.
	Faults faults.Stats
	// ScheduleErrors counts schedule events that failed at fire time
	// across all trials (see detector.Cluster.FaultErrors); nonzero
	// means part of the schedule never took effect.
	ScheduleErrors int
	// Divergences holds one trace divergence per non-conforming trial
	// (conformance checking enabled and the detector stepped outside its
	// model). Adaptive campaigns only report unconfirmed divergences here.
	Divergences []*conform.Divergence
	// ConfirmedDivergences counts by-design divergences across all trials
	// of an adaptive campaign (leave handshakes, rejoins, stray beats).
	ConfirmedDivergences int
	// DegradedDivergences counts divergences tolerated while degraded:
	// after a saturated retune the runtime intentionally runs as a plain
	// heartbeat, off the accelerated model, until the next level change.
	DegradedDivergences int
	// Retunes counts model-confirmed envelope transitions across all
	// trials of an adaptive campaign.
	Retunes int
	// Saturations counts retunes that re-held the envelope ceiling — the
	// entries into degraded (plain-heartbeat) operation.
	Saturations int
	// Incidents aggregates the structured incidents of streaming trials
	// (Stream set), in trial order: unconfirmed model divergences and
	// R1–R3 trace-monitor violations, each with its event tail and blamed
	// process. Offline campaigns report divergences in Divergences
	// instead.
	Incidents []*conform.Incident
}

// RunCampaign replays the schedule over Trials independent clusters.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Trials < 1 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: need trials >= 1 and a positive horizon", ErrScenario)
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("%w: campaign needs a fault schedule", ErrScenario)
	}
	var spec *conform.Spec
	adaptive := false
	if cfg.Stream && cfg.Conform == nil {
		return nil, fmt.Errorf("%w: streaming conformance needs Conform", ErrScenario)
	}
	if cfg.Conform != nil {
		if cfg.Heal != nil && (!cfg.Stream || cfg.Conform.Envelope == nil) {
			return nil, fmt.Errorf("%w: offline conformance checking cannot model supervisor restarts (use Stream with an envelope)", ErrScenario)
		}
		if err := conform.CheckSchedule(cfg.Schedule); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		base, err := conform.ClusterFor(cfg.Conform.Model)
		if err != nil {
			return nil, err
		}
		cfg.Cluster.Protocol = base.Protocol
		cfg.Cluster.Core = base.Core
		cfg.Cluster.N = base.N
		if env := cfg.Conform.Envelope; env != nil {
			ad := cfg.Cluster.Adaptive
			if ad == nil {
				return nil, fmt.Errorf("%w: envelope conformance needs an adaptive cluster", ErrScenario)
			}
			ce := ad.Envelope
			if int32(ce.TMinLo) != env.TMinLo || int32(ce.TMinHi) != env.TMinHi ||
				int32(ce.TMaxLo) != env.TMaxLo || int32(ce.TMaxHi) != env.TMaxHi {
				return nil, fmt.Errorf("%w: cluster envelope %+v does not match model envelope %+v",
					ErrScenario, ce, *env)
			}
			adaptive = true
			// Build every level's spec up front, outside the workers.
			for level := 0; level < env.Levels(); level++ {
				if _, err := cfg.Conform.SpecAt(level); err != nil {
					return nil, err
				}
			}
		} else {
			if cfg.Cluster.Adaptive != nil {
				return nil, fmt.Errorf("%w: adaptive cluster needs Conform.Envelope", ErrScenario)
			}
			if spec, err = cfg.Conform.Spec(); err != nil {
				return nil, err
			}
		}
	}
	type trialOutcome struct {
		survived    bool
		hasRestarts bool
		restarts    float64
		events      float64
		faults      faults.Stats
		schedErrs   int
		div         *conform.Divergence
		incidents   []*conform.Incident
		confirmed   int
		degraded    int
		retunes     int
		saturations int
		err         error
	}
	runTrial := func(trial int) trialOutcome {
		cc := cfg.Cluster
		cc.Seed = cfg.Seed + int64(trial)
		// Vary the fault layer across trials while keeping the campaign
		// as a whole deterministic: trial 0 replays the schedule's own
		// seed exactly; later trials offset it. A zero schedule seed
		// already falls back to the per-trial cluster seed.
		sched := *cfg.Schedule
		if sched.Seed != 0 {
			sched.Seed += int64(trial)
		}
		cc.Faults = &sched
		cc.Heal = cfg.Heal
		var rec *conform.Recorder
		var sc *conform.StreamChecker
		if cfg.Stream {
			var err error
			sc, err = conform.NewStreamChecker(conform.StreamConfig{
				Check:   cfg.Conform,
				Horizon: core.Tick(cfg.Horizon),
			})
			if err != nil {
				return trialOutcome{err: err}
			}
			cc.Observe = sc
		} else if spec != nil || adaptive {
			rec = conform.NewRecorder()
			cc.Observe = rec
		}
		c, err := detector.NewCluster(cc)
		if err != nil {
			return trialOutcome{err: err}
		}
		if sc != nil && c.Supervisor != nil {
			sc.BindSupervisor(c.Supervisor)
		}
		if err := c.Start(); err != nil {
			return trialOutcome{err: err}
		}
		c.Sim.RunUntil(cfg.Horizon)
		c.Stop()
		var o trialOutcome
		switch {
		case sc != nil:
			// The no-loss premise of R2/R3, mirroring conform.Run.
			lost := c.Net.Stats().Total.Lost
			if c.Faults != nil {
				fs := c.Faults.Stats()
				lost += fs.DroppedMuted + fs.DroppedPartition + fs.DroppedLoss
			}
			sres, err := sc.Finish(lost)
			if err != nil {
				return trialOutcome{err: err}
			}
			o.incidents = sres.Incidents
			o.confirmed = sres.Confirmed
			o.degraded = sres.Degraded
			o.retunes = sres.Retunes
			o.saturations = sres.Saturations
		case adaptive:
			pr, err := cfg.Conform.CheckTraceAdaptive(rec.Events(), core.Tick(cfg.Horizon))
			if err != nil {
				return trialOutcome{err: err}
			}
			o.div = pr.Unconfirmed
			o.confirmed = pr.Confirmed
			o.degraded = pr.Degraded
			o.retunes = pr.Retunes
			o.saturations = pr.Saturations
		case rec != nil:
			o.div = spec.CheckTrace(rec.Events(), core.Tick(cfg.Horizon))
		}
		o.survived = c.Coordinator.Status() == core.StatusActive
		if c.Supervisor != nil {
			restarts := c.Supervisor.Restarts(c.Coordinator.ID())
			for _, n := range c.Participants {
				restarts += c.Supervisor.Restarts(n.ID())
			}
			o.hasRestarts, o.restarts = true, float64(restarts)
		}
		o.events = float64(len(c.Events))
		o.faults = c.Faults.Stats()
		o.schedErrs = len(c.FaultErrors())
		return o
	}

	outs := make([]trialOutcome, cfg.Trials)
	if workers := min(cfg.Workers, cfg.Trials); workers > 1 {
		// Workers claim trial indices from an atomic counter and write to
		// per-trial slots; aggregation below runs in trial order, so the
		// result is independent of claim interleaving.
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					trial := int(next.Add(1)) - 1
					if trial >= cfg.Trials {
						return
					}
					outs[trial] = runTrial(trial)
				}
			}()
		}
		wg.Wait()
	} else {
		for trial := 0; trial < cfg.Trials; trial++ {
			outs[trial] = runTrial(trial)
			if outs[trial].err != nil {
				break // aggregation below stops at this trial
			}
		}
	}

	out := &CampaignResult{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.div != nil {
			out.Divergences = append(out.Divergences, o.div)
		}
		out.Incidents = append(out.Incidents, o.incidents...)
		out.Survived.Observe(o.survived)
		if o.hasRestarts {
			out.Restarts.Add(o.restarts)
		}
		out.Events.Add(o.events)
		out.Faults.Intercepted += o.faults.Intercepted
		out.Faults.DroppedMuted += o.faults.DroppedMuted
		out.Faults.DroppedPartition += o.faults.DroppedPartition
		out.Faults.DroppedLoss += o.faults.DroppedLoss
		out.Faults.Duplicated += o.faults.Duplicated
		out.Faults.Delayed += o.faults.Delayed
		out.Faults.Slowed += o.faults.Slowed
		out.Faults.SendErrors += o.faults.SendErrors
		out.ScheduleErrors += o.schedErrs
		out.ConfirmedDivergences += o.confirmed
		out.DegradedDivergences += o.degraded
		out.Retunes += o.retunes
		out.Saturations += o.saturations
	}
	return out, nil
}

// PlainCluster assembles a plain-heartbeat baseline deployment with the
// same shape as detector.NewCluster, for the comparison experiments.
type PlainCluster struct {
	Sim          *sim.Simulator
	Net          *netem.Network
	Coordinator  *detector.Node
	Participants map[core.ProcID]*detector.Node
	Events       []detector.Event
}

// PlainClusterConfig parameterises the baseline deployment.
type PlainClusterConfig struct {
	// Plain carries the baseline constants; its Members list is derived
	// from N.
	Period    core.Tick
	MissLimit int
	N         int
	Link      netem.LinkConfig
	Seed      int64
}

// NewPlainCluster builds and starts a baseline cluster.
func NewPlainCluster(cfg PlainClusterConfig) (*PlainCluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: need at least one participant", ErrScenario)
	}
	s := sim.New(sim.WithSeed(cfg.Seed))
	net, err := netem.NewNetwork(s, cfg.Link)
	if err != nil {
		return nil, err
	}
	pc := &PlainCluster{
		Sim:          s,
		Net:          net,
		Participants: make(map[core.ProcID]*detector.Node, cfg.N),
	}
	clock := detector.SimClock{Sim: s}
	sink := detector.EventFunc(func(e detector.Event) { pc.Events = append(pc.Events, e) })

	members := make([]core.ProcID, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		members = append(members, core.ProcID(i))
	}
	coord, err := core.NewPlainCoordinator(core.PlainConfig{
		Period: cfg.Period, MissLimit: cfg.MissLimit, Members: members,
	})
	if err != nil {
		return nil, err
	}
	pc.Coordinator, err = detector.NewNode(detector.Config{
		ID: netem.NodeID(core.CoordinatorID), Machine: coord,
		Clock: clock, Transport: net, Events: sink,
	})
	if err != nil {
		return nil, err
	}
	// The responder bound mirrors the coordinator's detection bound plus
	// a round-trip allowance.
	bound := core.Tick(cfg.MissLimit+2) * cfg.Period
	for _, pid := range members {
		r, err := core.NewPlainResponder(pid, bound)
		if err != nil {
			return nil, err
		}
		node, err := detector.NewNode(detector.Config{
			ID: netem.NodeID(pid), Machine: r,
			Clock: clock, Transport: net, Events: sink,
		})
		if err != nil {
			return nil, err
		}
		pc.Participants[pid] = node
	}
	if err := pc.Coordinator.Start(); err != nil {
		return nil, err
	}
	for _, pid := range members {
		if err := pc.Participants[pid].Start(); err != nil {
			return nil, err
		}
	}
	return pc, nil
}

// MeasurePlainReliability is MeasureReliability for the baseline.
func MeasurePlainReliability(cfg PlainClusterConfig, lossProb float64, horizon sim.Time, trials int, seed int64) (*ReliabilityResult, error) {
	if trials < 1 || horizon <= 0 {
		return nil, fmt.Errorf("%w: need trials >= 1 and a positive horizon", ErrScenario)
	}
	out := &ReliabilityResult{}
	for trial := 0; trial < trials; trial++ {
		cc := cfg
		cc.Seed = seed + int64(trial)
		cc.Link.LossProb = lossProb
		pc, err := NewPlainCluster(cc)
		if err != nil {
			return nil, err
		}
		pc.Sim.RunUntil(horizon)
		failed := false
		for _, e := range pc.Events {
			if e.Kind == detector.EventInactivated && !e.Voluntary {
				failed = true
				out.TimeToFalse.Add(float64(e.Time))
				break
			}
		}
		out.FalseDetection.Observe(failed)
	}
	return out, nil
}

// MeasurePlainDetection crashes the victim under the baseline protocol.
func MeasurePlainDetection(cfg PlainClusterConfig, crashAt, horizon sim.Time, trials int, seed int64) (*DetectionResult, error) {
	if trials < 1 || horizon <= crashAt {
		return nil, fmt.Errorf("%w: need trials >= 1 and horizon > crash time", ErrScenario)
	}
	out := &DetectionResult{Bound: core.Tick(cfg.MissLimit+1)*cfg.Period + 1}
	for trial := 0; trial < trials; trial++ {
		cc := cfg
		cc.Seed = seed + int64(trial)
		pc, err := NewPlainCluster(cc)
		if err != nil {
			return nil, err
		}
		pc.Sim.RunUntil(crashAt)
		pc.Participants[1].Crash()
		pc.Sim.RunUntil(horizon)
		detected := false
		for _, e := range pc.Events {
			if e.Kind == detector.EventSuspect && e.Node == 0 {
				out.Delays.Add(float64(e.Time - core.Tick(crashAt)))
				detected = true
				break
			}
		}
		if !detected {
			out.Missed++
		}
	}
	return out, nil
}
