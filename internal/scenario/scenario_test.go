package scenario

import (
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/netem"
)

func binaryCluster() detector.ClusterConfig {
	return detector.ClusterConfig{
		Protocol: detector.ProtocolBinary,
		Core:     core.Config{TMin: 2, TMax: 16},
	}
}

func TestMeasureDetectionWithinBound(t *testing.T) {
	res, err := MeasureDetection(DetectionConfig{
		Cluster: binaryCluster(),
		CrashAt: 100,
		Horizon: 400,
		Trials:  20,
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("MeasureDetection: %v", err)
	}
	if res.Missed != 0 {
		t.Fatalf("missed %d detections", res.Missed)
	}
	maxDelay, err := res.Delays.Max()
	if err != nil {
		t.Fatal(err)
	}
	if maxDelay > float64(res.Bound) {
		t.Fatalf("max delay %v exceeds bound %d", maxDelay, res.Bound)
	}
	if minDelay, _ := res.Delays.Min(); minDelay <= 0 {
		t.Fatalf("min delay %v not positive", minDelay)
	}
}

func TestMeasureDetectionValidation(t *testing.T) {
	if _, err := MeasureDetection(DetectionConfig{Cluster: binaryCluster(), Trials: 0, Horizon: 10, CrashAt: 1}); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := MeasureDetection(DetectionConfig{Cluster: binaryCluster(), Trials: 1, Horizon: 5, CrashAt: 10}); err == nil {
		t.Fatal("horizon before crash accepted")
	}
}

func TestMeasureOverheadAcceleratedVsPlain(t *testing.T) {
	// Accelerated: one exchange (2 messages) per tmax in steady state.
	res, err := MeasureOverhead(OverheadConfig{
		Cluster:  binaryCluster(),
		Duration: 4000,
	})
	if err != nil {
		t.Fatalf("MeasureOverhead: %v", err)
	}
	if res.FalselyInactivated {
		t.Fatal("fault-free run inactivated")
	}
	want := 2.0 / 16
	if res.MessagesPerTick < want*0.9 || res.MessagesPerTick > want*1.1 {
		t.Fatalf("accelerated rate %v, want about %v", res.MessagesPerTick, want)
	}
	// A plain protocol matching the accelerated detection bound (about
	// 3·tmax − tmin = 46 ticks) with MissLimit 2 needs period ~15, i.e.
	// roughly the same rate; matching the accelerated protocol's
	// worst-case loss tolerance (3 consecutive losses) at that detection
	// bound needs period ~11, i.e. more traffic.
	plain := PlainOverhead(1, 11)
	if plain <= res.MessagesPerTick {
		t.Fatalf("plain rate %v should exceed accelerated %v at equal tolerance", plain, res.MessagesPerTick)
	}
}

func TestMeasureReliabilityMonotoneInLoss(t *testing.T) {
	base := ReliabilityConfig{
		Cluster: binaryCluster(),
		Horizon: 2000,
		Trials:  40,
		Seed:    7,
	}
	low := base
	low.LossProb = 0.02
	high := base
	high.LossProb = 0.45
	resLow, err := MeasureReliability(low)
	if err != nil {
		t.Fatal(err)
	}
	resHigh, err := MeasureReliability(high)
	if err != nil {
		t.Fatal(err)
	}
	pLow, _ := resLow.FalseDetection.Value()
	pHigh, _ := resHigh.FalseDetection.Value()
	if pHigh <= pLow {
		t.Fatalf("false detection not increasing in loss: %v (2%%) vs %v (45%%)", pLow, pHigh)
	}
	if pHigh < 0.5 {
		t.Fatalf("45%% loss should usually break the protocol, got %v", pHigh)
	}
}

func TestPlainClusterRunsAndDetects(t *testing.T) {
	cfg := PlainClusterConfig{Period: 8, MissLimit: 3, N: 2}
	res, err := MeasurePlainDetection(cfg, 100, 400, 10, 3)
	if err != nil {
		t.Fatalf("MeasurePlainDetection: %v", err)
	}
	if res.Missed != 0 {
		t.Fatalf("missed %d", res.Missed)
	}
	maxDelay, _ := res.Delays.Max()
	if maxDelay > float64(res.Bound)+8 {
		t.Fatalf("delay %v beyond bound %d", maxDelay, res.Bound)
	}
}

func TestPlainMoreFragileAtEqualRate(t *testing.T) {
	// At roughly equal steady-state rates, the plain protocol with
	// MissLimit 1 breaks far more often than the accelerated one, whose
	// effective miss budget is log2(tmax/tmin) consecutive rounds.
	loss := 0.15
	horizon := 3000
	acc, err := MeasureReliability(ReliabilityConfig{
		Cluster:  binaryCluster(), // tmax=16 → 2/16 msgs/tick
		LossProb: loss,
		Horizon:  3000,
		Trials:   60,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MeasurePlainReliability(
		PlainClusterConfig{Period: 16, MissLimit: 1, N: 1}, // 2/16 msgs/tick
		loss, 3000, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	pAcc, _ := acc.FalseDetection.Value()
	pPlain, _ := plain.FalseDetection.Value()
	if pPlain <= pAcc {
		t.Fatalf("plain %v should be more fragile than accelerated %v at equal rate (horizon %d)",
			pPlain, pAcc, horizon)
	}
}

func TestPlainClusterValidation(t *testing.T) {
	if _, err := NewPlainCluster(PlainClusterConfig{Period: 8, MissLimit: 1, N: 0}); err == nil {
		t.Fatal("zero participants accepted")
	}
	if _, err := MeasurePlainReliability(PlainClusterConfig{Period: 8, MissLimit: 1, N: 1}, 0.1, 0, 1, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := MeasurePlainDetection(PlainClusterConfig{Period: 8, MissLimit: 1, N: 1}, 10, 5, 1, 1); err == nil {
		t.Fatal("bad horizon accepted")
	}
}

func TestReliabilityValidation(t *testing.T) {
	if _, err := MeasureReliability(ReliabilityConfig{Cluster: binaryCluster(), Trials: 0, Horizon: 10}); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := MeasureOverhead(OverheadConfig{Cluster: binaryCluster(), Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestMeasureDetectionStaticVictims(t *testing.T) {
	cfg := DetectionConfig{
		Cluster: detector.ClusterConfig{
			Protocol: detector.ProtocolStatic,
			Core:     core.Config{TMin: 2, TMax: 16},
			N:        3,
			Link:     netem.LinkConfig{MaxDelay: 1},
		},
		CrashAt: 200,
		Victim:  2,
		Horizon: 600,
		Trials:  10,
		Seed:    5,
	}
	res, err := MeasureDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 {
		t.Fatalf("missed %d", res.Missed)
	}
}

func TestRunCampaignSelfHealing(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{At: 0, Kind: faults.KindLoss, AllLinks: true,
			GE: &faults.GilbertElliott{PGoodBad: 0.02, PBadGood: 0.4, LossBad: 0.8}},
		{At: 200, Kind: faults.KindCrash, Node: 1},
		{At: 800, Kind: faults.KindRestart, Node: 1},
	}}
	cluster := detector.ClusterConfig{
		Protocol:    detector.ProtocolDynamic,
		Core:        core.Config{TMin: 2, TMax: 16},
		N:           2,
		AllowRejoin: true,
	}
	heal := &detector.SupervisorConfig{CheckEvery: 8, Backoff: detector.Backoff{Base: 2, Max: 32}}
	res, err := RunCampaign(CampaignConfig{
		Cluster:  cluster,
		Schedule: sched,
		Heal:     heal,
		Horizon:  4000,
		Trials:   10,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	surv, err := res.Survived.Value()
	if err != nil {
		t.Fatal(err)
	}
	if surv < 0.5 {
		t.Fatalf("self-healing survival %v, want >= 0.5", surv)
	}
	if mean, _ := res.Restarts.Mean(); mean <= 0 {
		t.Fatalf("no restarts recorded (mean %v); supervisor idle?", mean)
	}
	if res.Faults.DroppedLoss == 0 {
		t.Fatal("GE loss never dropped anything")
	}
	// Without healing, the scripted crash winds the network down for good.
	bare, err := RunCampaign(CampaignConfig{
		Cluster:  cluster,
		Schedule: sched,
		Horizon:  4000,
		Trials:   10,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	bareSurv, err := bare.Survived.Value()
	if err != nil {
		t.Fatal(err)
	}
	if bareSurv >= surv {
		t.Fatalf("healing did not help: healed %v vs bare %v", surv, bareSurv)
	}
}

// TestCampaignWorkersDeterminism pins the parallel-trials contract: a
// campaign aggregates to the same result at any worker count, because
// each trial is seeded independently and outcomes are folded in trial
// order.
func TestCampaignWorkersDeterminism(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{At: 50, Kind: faults.KindCrash, Node: 1},
	}}
	base := CampaignConfig{
		Cluster: detector.ClusterConfig{
			Protocol: detector.ProtocolStatic,
			Core:     core.Config{TMin: 2, TMax: 16},
			N:        2,
		},
		Schedule: sched,
		Horizon:  400,
		Trials:   8,
		Seed:     11,
		Workers:  1,
	}
	want, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Survived != want.Survived ||
			got.Events.N() != want.Events.N() || got.Events.Sum() != want.Events.Sum() ||
			got.Faults != want.Faults ||
			got.ScheduleErrors != want.ScheduleErrors ||
			len(got.Divergences) != len(want.Divergences) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestRunCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{Cluster: binaryCluster(), Horizon: 10, Trials: 1}); err == nil {
		t.Fatal("campaign without a schedule accepted")
	}
	if _, err := RunCampaign(CampaignConfig{
		Cluster: binaryCluster(), Schedule: &faults.Schedule{}, Horizon: 0, Trials: 1,
	}); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

// TestRunCampaignConformance attaches the model conformance checker to a
// crash campaign: the healthy detector conforms in every trial, and a
// deliberately defective one (late participant watchdog) is reported as a
// divergence — wiring proof that campaigns catch runtime/model drift.
func TestRunCampaignConformance(t *testing.T) {
	model := models.Config{TMin: 2, TMax: 4, Variant: models.Binary, N: 1, Fixed: true}
	sched := &faults.Schedule{Events: []faults.Event{
		{At: 9, Kind: faults.KindCrash, Node: 0},
	}}
	check := &conform.CampaignCheck{Model: model}
	res, err := RunCampaign(CampaignConfig{
		Cluster:  detector.ClusterConfig{}, // shape comes from the model
		Schedule: sched,
		Horizon:  30,
		Trials:   5,
		Seed:     3,
		Conform:  check,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("healthy detector diverged: %v", res.Divergences[0])
	}

	wrap, err := conform.Mutation("expiry+1")
	if err != nil {
		t.Fatal(err)
	}
	res, err = RunCampaign(CampaignConfig{
		Cluster:  detector.ClusterConfig{WrapMachine: wrap},
		Schedule: sched,
		Horizon:  30,
		Trials:   5,
		Seed:     3,
		Conform:  check,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 5 {
		t.Fatalf("mutant divergences = %d, want one per trial", len(res.Divergences))
	}

	// Guard rails: supervisors and non-model faults are rejected.
	if _, err := RunCampaign(CampaignConfig{
		Schedule: sched, Horizon: 30, Trials: 1, Conform: check,
		Heal: &detector.SupervisorConfig{},
	}); err == nil {
		t.Fatal("conformance with a supervisor accepted")
	}
	if _, err := RunCampaign(CampaignConfig{
		Schedule: &faults.Schedule{Events: []faults.Event{
			{At: 1, Kind: faults.KindDrift, Node: 1, Num: 2, Den: 1},
		}},
		Horizon: 30, Trials: 1, Conform: check,
	}); err == nil {
		t.Fatal("conformance with a drift schedule accepted")
	}
}
