package scenario

import (
	"fmt"
	"strings"

	"repro/internal/faults"
)

// TopologyScenario is a named, parsed correlated-failure script for chaos
// campaigns. Text is the schedule DSL the scenario was built from, kept
// so experiment logs can reproduce the run with hbsim -faults.
type TopologyScenario struct {
	Name     string
	Text     string
	Schedule *faults.Schedule
}

// twoRackTopo renders the topo directive for a coordinator plus n
// participants split across two racks in two zones: rack 0 (zone 0)
// holds the coordinator and the first half of the participants, rack 1
// (zone 1) the rest (for n == 1, the lone participant).
func twoRackTopo(n int) string {
	var racks []string
	for node := 0; node <= n; node++ {
		rack := 0
		if node > n/2 {
			rack = 1
		}
		racks = append(racks, fmt.Sprintf("%d:%d", node, rack))
	}
	return fmt.Sprintf("topo racks=%s zones=1:1", strings.Join(racks, ","))
}

// rackNodes lists the participants twoRackTopo places in a rack.
func rackNodes(n, rack int) []int {
	var out []int
	for node := 1; node <= n; node++ {
		inOne := node > n/2
		if (rack == 1) == inOne {
			out = append(out, node)
		}
	}
	return out
}

func parseScenario(name, text string) (TopologyScenario, error) {
	sched, err := faults.ParseSchedule(text)
	if err != nil {
		return TopologyScenario{}, fmt.Errorf("scenario %s: %w", name, err)
	}
	return TopologyScenario{Name: name, Text: text, Schedule: sched}, nil
}

// RackLossScenario is correlated bursty loss: every link crossing rack
// 1's boundary runs a shared-fate Gilbert–Elliott process over
// [200, 800), so all of the rack's members go lossy and recover
// together — the failure mode the adaptive coordinator's widen/tighten
// path exists for.
func RackLossScenario(n int) (TopologyScenario, error) {
	text := twoRackTopo(n) + "\n" +
		"rackloss t=200 rack=1 pgb=0.25 pbg=0.25 lg=0.6 lb=0.95\n" +
		"rackloss t=800 rack=1\n"
	return parseScenario("rack-loss", text)
}

// WANDelayScenario is asymmetric inter-zone latency: beats from the
// coordinator's zone to zone 1 take one extra tick over [150, 700),
// replies return undelayed. The delay stays within the round-trip
// allowance (tmin/2 per direction for tmin >= 2), so conformance must
// hold throughout.
func WANDelayScenario(n int) (TopologyScenario, error) {
	text := twoRackTopo(n) + "\n" +
		"zonedelay t=150 from=0 to=1 mindelay=1 maxdelay=1\n" +
		"zonedelay t=700 from=0 to=1 mindelay=0 maxdelay=0\n"
	return parseScenario("wan-delay", text)
}

// ChurnStormScenario is staggered voluntary churn: every participant of
// rack 1 — and, for clusters with three or more participants, the last
// member of rack 0 — leaves in sequence from t=250 and rejoins 80 ticks
// later. Dynamic clusters with rejoin enabled only.
func ChurnStormScenario(n int) (TopologyScenario, error) {
	nodes := rackNodes(n, 1)
	if n >= 3 {
		inner := rackNodes(n, 0)
		nodes = append(nodes, inner[len(inner)-1])
	}
	var ids []string
	for _, node := range nodes {
		ids = append(ids, fmt.Sprintf("%d", node))
	}
	text := twoRackTopo(n) + "\n" +
		fmt.Sprintf("churn t=250 stagger=20 down=80 nodes=%s\n", strings.Join(ids, ","))
	return parseScenario("churn-storm", text)
}
