package scenario

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/models"
)

// campaignEnvelope is the degradation envelope the topology campaigns
// run: two operating points (tmax 4 and 8) over a fixed tmin. Kept to
// two levels so the top-level specification stays around half a million
// states — the piecewise checker reseeds its frontier to all of them on
// every saturated retune.
var campaignEnvelope = models.Envelope{TMinLo: 2, TMinHi: 2, TMaxLo: 4, TMaxHi: 8}

// campaignN is the cluster size each variant's campaign runs at. Static
// LTSs stay small enough for two participants; the expanding and dynamic
// state spaces grow much faster (join phases, rejoin interleavings), so
// their campaigns run the coordinator-plus-one shape.
func campaignN(variant models.Variant) int {
	if variant == models.Static {
		return 2
	}
	return 1
}

// campaignChecks shares one CampaignCheck (and so one per-level spec
// cache) per variant across all topology tests — the specs are by far
// the most expensive part of a campaign.
var (
	campaignChecksMu sync.Mutex
	campaignChecks   = map[models.Variant]*conform.CampaignCheck{}
)

func campaignCheck(variant models.Variant) *conform.CampaignCheck {
	campaignChecksMu.Lock()
	defer campaignChecksMu.Unlock()
	if c, ok := campaignChecks[variant]; ok {
		return c
	}
	tmin, tmax := campaignEnvelope.Point(0)
	c := &conform.CampaignCheck{
		Model:    models.Config{TMin: tmin, TMax: tmax, Variant: variant, N: campaignN(variant), Fixed: true},
		Envelope: &campaignEnvelope,
	}
	campaignChecks[variant] = c
	return c
}

// adaptiveCampaign assembles an adaptive conformance campaign over one
// topology scenario: the cluster follows Conform.Model (variant, N,
// Fixed) with the coordinator retuning inside campaignEnvelope, and
// every trial's trace is checked piecewise against the per-level specs.
// The estimator reacts within one bad round (Window 2, WidenAt 0.25):
// the level-0 point has a single halving of headroom, so a slower
// estimator would let acceleration confirm a suspect before the first
// widen.
func adaptiveCampaign(variant models.Variant, sc TopologyScenario, trials, workers int) CampaignConfig {
	return CampaignConfig{
		Cluster: detector.ClusterConfig{
			Adaptive: &core.AdaptiveOptions{
				Envelope: core.Envelope{
					TMinLo: core.Tick(campaignEnvelope.TMinLo), TMinHi: core.Tick(campaignEnvelope.TMinHi),
					TMaxLo: core.Tick(campaignEnvelope.TMaxLo), TMaxHi: core.Tick(campaignEnvelope.TMaxHi),
				},
				Window: 2, WidenAt: 0.25, TightenAt: 0.1, HoldRounds: 4,
			},
			AllowRejoin: variant == models.Dynamic,
		},
		Schedule: sc.Schedule,
		Horizon:  1200,
		Trials:   trials,
		Seed:     101,
		Conform:  campaignCheck(variant),
		Workers:  workers,
	}
}

// requireNoUnconfirmed runs the campaign and fails on any unconfirmed
// divergence, rendering the first one.
func requireNoUnconfirmed(t *testing.T, cfg CampaignConfig) *CampaignResult {
	t.Helper()
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(res.Divergences) != 0 {
		var b strings.Builder
		if err := res.Divergences[0].Render(&b, "unconfirmed divergence"); err != nil {
			t.Fatalf("render: %v", err)
		}
		t.Fatalf("%d unconfirmed divergences; first:\n%s", len(res.Divergences), b.String())
	}
	return res
}

func TestTopologyCampaignRackLoss(t *testing.T) {
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	res := requireNoUnconfirmed(t, adaptiveCampaign(models.Static, sc, 70, 4))
	// The correlated burst must actually drive the adaptive path: rounds
	// widen under the rack's loss and tighten back after it clears, and
	// every one of those transitions was confirmed against the envelope.
	if res.Retunes == 0 {
		t.Fatal("rack-loss campaign produced no retunes — the adaptive path was never exercised")
	}
	if res.Faults.DroppedLoss == 0 {
		t.Fatal("rack-loss campaign dropped nothing — the schedule missed the links")
	}
	// Sustained bursty loss must also drive some trial all the way to the
	// envelope ceiling: saturation, the verified degradation endpoint.
	if res.Saturations == 0 {
		t.Fatal("rack-loss campaign never saturated — degraded mode was not exercised")
	}
}

func TestTopologyCampaignWANDelay(t *testing.T) {
	sc, err := WANDelayScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	res := requireNoUnconfirmed(t, adaptiveCampaign(models.Static, sc, 70, 4))
	if res.Faults.Slowed == 0 {
		t.Fatal("wan-delay campaign slowed nothing — the schedule missed the links")
	}
}

func TestTopologyCampaignChurnStorm(t *testing.T) {
	sc, err := ChurnStormScenario(campaignN(models.Dynamic))
	if err != nil {
		t.Fatal(err)
	}
	res := requireNoUnconfirmed(t, adaptiveCampaign(models.Dynamic, sc, 70, 4))
	// The storm's leave/rejoin handshakes are outside the model's scope by
	// design; the piecewise checker must classify them, not fail on them.
	if res.ConfirmedDivergences == 0 {
		t.Fatal("churn campaign confirmed no divergences — the storm never fired")
	}
}

// TestTopologyCampaignWorkerDeterminism pins the acceptance requirement
// that a campaign's result is identical at any worker count.
func TestTopologyCampaignWorkerDeterminism(t *testing.T) {
	sc, err := RackLossScenario(campaignN(models.Static))
	if err != nil {
		t.Fatal(err)
	}
	seq := requireNoUnconfirmed(t, adaptiveCampaign(models.Static, sc, 20, 1))
	par := requireNoUnconfirmed(t, adaptiveCampaign(models.Static, sc, 20, 8))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("worker count changed the campaign result:\n  1 worker: %+v\n  8 workers: %+v", seq, par)
	}
}

// TestChaosSmoke is the CI chaos gate: one seeded topology campaign per
// variant with conformance on, gated on zero unconfirmed divergences.
// Kept small so it stays fast under -race.
func TestChaosSmoke(t *testing.T) {
	for _, tc := range []struct {
		variant  models.Variant
		scenario func(int) (TopologyScenario, error)
	}{
		{models.Static, RackLossScenario},
		{models.Expanding, WANDelayScenario},
		{models.Dynamic, ChurnStormScenario},
	} {
		sc, err := tc.scenario(campaignN(tc.variant))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(tc.variant.String()+"/"+sc.Name, func(t *testing.T) {
			requireNoUnconfirmed(t, adaptiveCampaign(tc.variant, sc, 10, 2))
		})
	}
}
