package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mc"
)

func sampleTrace() []mc.Step {
	return []mc.Step{
		{Label: "", Time: 0},
		{Label: "p[0]: start", Time: 0},
		{Label: "tick", Delay: true, Time: 1},
		{Label: "timeout p[0]", Time: 10},
		{Label: "p[0]: send beat", Time: 10},
		{Label: "deliver beat to p[1]", Time: 11},
		{Label: "p[1]: send beat", Time: 11},
		{Label: "lose beat from p[1]", Time: 12},
		{Label: "inactivate nv p[1]", Time: 30},
	}
}

func TestEventsDropTicksAndInit(t *testing.T) {
	evs := Events(sampleTrace())
	if len(evs) != 7 {
		t.Fatalf("events = %d, want 7", len(evs))
	}
	for _, e := range evs {
		if e.Text == "tick" || e.Text == "" {
			t.Fatalf("tick or empty survived: %+v", e)
		}
	}
}

func TestLaneClassification(t *testing.T) {
	tests := []struct {
		label string
		lane  string
	}{
		{"p[0]: send beat", "p[0]"},
		{"timeout p[0]", "p[0]"},
		{"inactivate nv p[1]", "p[1]"},
		{"crash p[2]", "p[2]"},
		{"deliver beat to p[1]", ChannelLane},
		{"lose join beat from p[2]", ChannelLane},
		{"p[1] gives no reply", ChannelLane},
		{"error R1 p[1]", "p[1]"},
	}
	for _, tt := range tests {
		if got := laneOf(tt.label); got != tt.lane {
			t.Errorf("laneOf(%q) = %q, want %q", tt.label, got, tt.lane)
		}
	}
}

func TestLanesOrdering(t *testing.T) {
	evs := Events(sampleTrace())
	lanes := Lanes(evs)
	want := []string{"p[0]", "p[1]", ChannelLane}
	if len(lanes) != len(want) {
		t.Fatalf("lanes = %v", lanes)
	}
	for i := range want {
		if lanes[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", lanes, want)
		}
	}
}

func TestRenderShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "Figure X", sampleTrace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "p[0]") || !strings.Contains(out, "channel") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	if !strings.Contains(out, "   30 ") {
		t.Fatalf("timestamp missing:\n%s", out)
	}
	// Repeated timestamps are blanked for readability.
	if strings.Count(out, "   10 ") != 1 {
		t.Fatalf("timestamp 10 should appear once:\n%s", out)
	}
	// Each event row exists.
	if !strings.Contains(out, "send beat") || !strings.Contains(out, "inactivate nv") {
		t.Fatalf("events missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Fatalf("got %q", buf.String())
	}
}

func TestSummary(t *testing.T) {
	s := Summary(sampleTrace())
	if !strings.Contains(s, "t=10") || !strings.Contains(s, "p[1]") {
		t.Fatalf("summary = %q", s)
	}
	lines := strings.Count(s, "\n")
	if lines != 7 {
		t.Fatalf("summary lines = %d, want 7", lines)
	}
}

func TestTextOfStripsPrefix(t *testing.T) {
	if got := textOf("p[0]: send beat", "p[0]"); got != "send beat" {
		t.Fatalf("textOf = %q", got)
	}
	if got := textOf("timeout p[0]", "p[0]"); got != "timeout p[0]" {
		t.Fatalf("textOf = %q", got)
	}
}
