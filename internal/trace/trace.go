// Package trace renders model-checking counter-example traces as ASCII
// message-sequence charts, in the spirit of Figures 10–13 of the analysis:
// one lane per process plus a channel lane, with virtual timestamps.
package trace

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"

	"repro/internal/mc"
)

// Event is one visible step of a trace.
type Event struct {
	// Time is the virtual time of the event.
	Time int
	// Lane is the participant the event belongs to ("p[0]", "p[1]", ...,
	// or "channel").
	Lane string
	// Text is the displayed description.
	Text string
}

// ChannelLane is the lane used for message loss and delivery events.
const ChannelLane = "channel"

var procRe = regexp.MustCompile(`p\[\d+\]`)

// laneOf classifies a transition label into a lane using the labelling
// conventions of internal/models.
func laneOf(label string) string {
	switch {
	case strings.HasPrefix(label, "deliver "),
		strings.HasPrefix(label, "lose "),
		strings.Contains(label, "gives no reply"):
		return ChannelLane
	}
	if m := procRe.FindString(label); m != "" {
		return m
	}
	return ChannelLane
}

// textOf strips the lane prefix from a label for display.
func textOf(label, lane string) string {
	if lane == ChannelLane {
		return label
	}
	if rest, ok := strings.CutPrefix(label, lane+": "); ok {
		return rest
	}
	return label
}

// Events extracts the visible events of a trace, dropping delay steps and
// the initial pseudo-step.
func Events(steps []mc.Step) []Event {
	var out []Event
	for _, s := range steps {
		if s.Delay || s.Label == "" {
			continue
		}
		lane := laneOf(s.Label)
		out = append(out, Event{Time: s.Time, Lane: lane, Text: textOf(s.Label, lane)})
	}
	return out
}

// Lanes returns the lanes appearing in the events: processes in index
// order first, then the channel lane.
func Lanes(events []Event) []string {
	seen := map[string]bool{}
	var procs []string
	hasChannel := false
	for _, e := range events {
		if seen[e.Lane] {
			continue
		}
		seen[e.Lane] = true
		if e.Lane == ChannelLane {
			hasChannel = true
		} else {
			procs = append(procs, e.Lane)
		}
	}
	sort.Strings(procs)
	if hasChannel {
		procs = append(procs, ChannelLane)
	}
	return procs
}

// Render writes the trace as an ASCII sequence chart. The title is printed
// above the chart; pass "" to omit it.
func Render(w io.Writer, title string, steps []mc.Step) error {
	events := Events(steps)
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	lanes := Lanes(events)
	width := make(map[string]int, len(lanes))
	for _, l := range lanes {
		width[l] = len(l)
	}
	for _, e := range events {
		if len(e.Text) > width[e.Lane] {
			width[e.Lane] = len(e.Text)
		}
	}

	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	// Header.
	var sb strings.Builder
	sb.WriteString(" time ")
	for _, l := range lanes {
		fmt.Fprintf(&sb, "| %-*s ", width[l], l)
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	sb.Reset()
	sb.WriteString("------")
	for _, l := range lanes {
		sb.WriteString("+")
		sb.WriteString(strings.Repeat("-", width[l]+2))
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	// Rows.
	lastTime := -1
	for _, e := range events {
		sb.Reset()
		if e.Time != lastTime {
			fmt.Fprintf(&sb, "%5d ", e.Time)
			lastTime = e.Time
		} else {
			sb.WriteString("      ")
		}
		for _, l := range lanes {
			if l == e.Lane {
				fmt.Fprintf(&sb, "| %-*s ", width[l], e.Text)
			} else {
				fmt.Fprintf(&sb, "| %-*s ", width[l], "")
			}
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a one-line-per-event rendering, convenient for test
// failure messages and logs.
func Summary(steps []mc.Step) string {
	var sb strings.Builder
	for _, e := range Events(steps) {
		fmt.Fprintf(&sb, "t=%-4d %-8s %s\n", e.Time, e.Lane, e.Text)
	}
	return sb.String()
}
