package ensemble

import (
	"math"
	"testing"
)

// TestRNGAdjacentStreamsIndependent pins the stream-splitting contract:
// fast-mode streams for distinct trials must not be shifted windows of
// one splitmix64 sequence. The original init set the counter start to
// mix64(seed) + trial·golden, so trial t+1's k-th draw equalled trial
// t's (k+1)-th draw — adjacent trials maximally correlated. With the
// start re-mixed, no draw may recur across a block of neighbouring
// streams (64-bit values colliding by chance is ~2^-64 per pair).
func TestRNGAdjacentStreamsIndependent(t *testing.T) {
	const trials = 16
	const draws = 4096
	for _, seed := range []int64{0, 1, 7, 99, -3} {
		seen := make(map[uint64]int, trials*draws)
		for trial := int64(0); trial < trials; trial++ {
			var r rngState
			r.init(seed, trial, false)
			for k := 0; k < draws; k++ {
				v := r.next()
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed %d: draw %#x of trial %d already produced by trial %d — overlapping streams",
						seed, v, trial, prev)
				}
				seen[v] = int(trial)
			}
		}
	}
}

// TestRNGStreamsNotShifted is the targeted regression for the window
// bug: trial t+1's stream must not reproduce trial t's stream at any
// small lag, in either direction.
func TestRNGStreamsNotShifted(t *testing.T) {
	const draws = 256
	var a, b rngState
	a.init(7, 100, false)
	b.init(7, 101, false)
	var sa, sb [draws]uint64
	for k := 0; k < draws; k++ {
		sa[k], sb[k] = a.next(), b.next()
	}
	for lag := -4; lag <= 4; lag++ {
		matches := 0
		for k := 0; k < draws; k++ {
			j := k + lag
			if j >= 0 && j < draws && sb[k] == sa[j] {
				matches++
			}
		}
		if matches > 0 {
			t.Fatalf("adjacent streams share %d draws at lag %d", matches, lag)
		}
	}
}

// TestRNGAdjacentStreamsUncorrelated checks the float64 draws of
// neighbouring trials for linear correlation: |r| over 8192 paired
// uniforms should be ~N(0, 1/n), so 5 sigma ≈ 0.055 is a generous,
// deterministic bound (fixed seeds, no flakiness).
func TestRNGAdjacentStreamsUncorrelated(t *testing.T) {
	const n = 8192
	for trial := int64(0); trial < 8; trial++ {
		var a, b rngState
		a.init(42, trial, false)
		b.init(42, trial+1, false)
		var sx, sy, sxx, syy, sxy float64
		for k := 0; k < n; k++ {
			x, y := a.float64(), b.float64()
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		cov := sxy/n - (sx/n)*(sy/n)
		vx := sxx/n - (sx/n)*(sx/n)
		vy := syy/n - (sy/n)*(sy/n)
		r := cov / math.Sqrt(vx*vy)
		if math.Abs(r) > 5/math.Sqrt(n) {
			t.Fatalf("trials %d,%d: correlation %v beyond 5 sigma", trial, trial+1, r)
		}
	}
}

// TestRNGStreamRepeatable pins that re-initialising the same (seed,
// trial) reproduces the stream exactly — the reproducibility half of
// the splitting contract.
func TestRNGStreamRepeatable(t *testing.T) {
	var a, b rngState
	a.init(13, 5, false)
	b.init(13, 5, false)
	for k := 0; k < 64; k++ {
		if va, vb := a.next(), b.next(); va != vb {
			t.Fatalf("draw %d diverges on identical keys: %#x vs %#x", k, va, vb)
		}
	}
}
