package ensemble

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
)

// q3Config is the Q3 false-detection workload: binary {2,16} under loss,
// fast RNG — the shape the throughput acceptance criterion is measured on.
func q3Config(trials, workers int) Config {
	return Config{
		Protocol: ProtocolBinary,
		Core:     core.Config{TMin: 2, TMax: 16},
		N:        1,
		Link:     netem.LinkConfig{LossProb: 0.1},
		Horizon:  4000,
		Trials:   trials,
		Seed:     99,
		Workers:  workers,
		Block:    128,
	}
}

// TestEnsembleWorkerDeterminism pins the byte-identical-at-any-worker-
// count contract: identical campaigns at workers 1 and 8 must agree on
// every aggregate, including the float (Welford) fields and every sketch
// bucket. Run under -race in CI, it doubles as the data-race check on the
// block-claiming discipline.
func TestEnsembleWorkerDeterminism(t *testing.T) {
	configs := []Config{
		q3Config(3000, 1),
		{
			Protocol: ProtocolExpanding,
			Core:     core.Config{TMin: 2, TMax: 16, Fixed: true},
			N:        3,
			Link:     netem.LinkConfig{LossProb: 0.05, MaxDelay: 1},
			CrashAt:  160, CrashJitter: 16, Victim: 2,
			Horizon: 352,
			Trials:  3000,
			Seed:    7,
			Block:   64,
		},
	}
	for _, base := range configs {
		base.Workers = 1
		one, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		base.Workers = 8
		eight, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if one.Trials != eight.Trials || one.Rounds != eight.Rounds || one.Sent != eight.Sent ||
			one.Detected != eight.Detected || one.Missed != eight.Missed ||
			one.FalseTrials != eight.FalseTrials || one.CoordInactivated != eight.CoordInactivated {
			t.Fatalf("counts diverge across worker counts:\n1: %+v\n8: %+v", one, eight)
		}
		if one.Delay != eight.Delay || one.TimeToFalse != eight.TimeToFalse {
			t.Fatalf("Welford aggregates diverge across worker counts:\ndelay %+v vs %+v\nttf %+v vs %+v",
				one.Delay, eight.Delay, one.TimeToFalse, eight.TimeToFalse)
		}
		for name, pair := range map[string][2][]uint64{
			"delay": {one.DelayQ.Buckets, eight.DelayQ.Buckets},
			"ttf":   {one.TimeToFalseQ.Buckets, eight.TimeToFalseQ.Buckets},
		} {
			a, b := pair[0], pair[1]
			if len(a) != len(b) {
				t.Fatalf("%s sketch shapes diverge", name)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s sketch bucket %d diverges: %d vs %d", name, i, a[i], b[i])
				}
			}
		}
	}
}

// TestEnsembleRunRepeatable pins same-seed reproducibility of the fast
// RNG path across two fresh runs.
func TestEnsembleRunRepeatable(t *testing.T) {
	a, err := Run(q3Config(2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(q3Config(2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.FalseTrials != b.FalseTrials || a.Sent != b.Sent || a.TimeToFalse != b.TimeToFalse {
		t.Fatalf("same-seed runs diverge: %+v vs %+v", a, b)
	}
}

// TestEnsembleValidation exercises the config guards.
func TestEnsembleValidation(t *testing.T) {
	bad := []Config{
		{}, // unknown protocol
		func() Config { c := q3Config(10, 1); c.Link.DupProb = 0.1; return c }(),          // dup not vectorized
		func() Config { c := q3Config(10, 1); c.Link.MaxDelay = 2; return c }(),           // MaxDelay >= TMin
		func() Config { c := q3Config(10, 1); c.Trials = 0; return c }(),                  // no trials
		func() Config { c := q3Config(10, 1); c.CrashAt = 5; return c }(),                 // crash without victim
		func() Config { c := q3Config(10, 1); c.Victim = 4; c.CrashAt = 5; return c }(),   // victim out of range
		func() Config { c := q3Config(10, 1); c.Core = core.Config{TMax: 4}; return c }(), // core invalid
		func() Config { c := q3Config(10, 1); c.Link.LossProb = 1.5; return c }(),         // loss out of range
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
